// Command pcfbench runs the experiment harness that regenerates the tables
// and figures of the paper's evaluation and prints their series as report
// rows.
//
// Usage:
//
//	pcfbench -list
//	pcfbench -experiment fig30 -locations 1,2,4,8 -elements 20000
//	pcfbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		all        = flag.Bool("all", false, "run every experiment")
		experiment = flag.String("experiment", "", "comma-separated experiment ids to run (e.g. fig30,fig51)")
		locations  = flag.String("locations", "1,2,4,8", "comma-separated machine sizes to sweep")
		elements   = flag.Int64("elements", 20000, "elements per location (weak-scaling unit)")
		graphScale = flag.Int("graphscale", 10, "log2 of the SSCA2 graph vertex count")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Description)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.ElementsPerLocation = *elements
	cfg.GraphScale = *graphScale
	cfg.Locations = nil
	for _, tok := range strings.Split(*locations, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p <= 0 {
			fmt.Fprintf(os.Stderr, "pcfbench: invalid location count %q\n", tok)
			os.Exit(2)
		}
		cfg.Locations = append(cfg.Locations, p)
	}

	var selected []bench.Experiment
	switch {
	case *all:
		selected = bench.All()
	case *experiment != "":
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pcfbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "pcfbench: pass -all, -experiment <id>, or -list")
		os.Exit(2)
	}

	for _, e := range selected {
		fmt.Printf("# %s — %s\n", e.ID, e.Description)
		bench.PrintRows(e.Run(cfg))
		fmt.Println()
	}
}
