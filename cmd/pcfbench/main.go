// Command pcfbench runs the experiment harness that regenerates the tables
// and figures of the paper's evaluation and prints their series as report
// rows.
//
// Usage:
//
//	pcfbench -list
//	pcfbench -experiment fig30 -locations 1,2,4,8 -elements 20000
//	pcfbench -all
//
// Machine-readable output and the benchmark-regression gate:
//
//	pcfbench -experiment bulk,directory,redist,views -json            # one JSON record per row
//	pcfbench -experiment ... -json -counters > BENCH_baseline.json    # deterministic counter rows only
//	pcfbench -experiment ... -baseline BENCH_baseline.json            # compare, exit 1 on >10% growth
//
// Wall-clock mode (calibrated timed repetitions; ns/op, allocs/op, B/op):
//
//	pcfbench -time -experiment bulk,views,matrix,directory -json > BENCH_time.json
//	pcfbench -time -experiment ... -baseline BENCH_time.json          # exit 1 on allocs/op growth
//	pcfbench -time -experiment bulk -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// jsonRow is the machine-readable form of one report row.
type jsonRow struct {
	Experiment string  `json:"experiment"`
	Series     string  `json:"series"`
	Param      string  `json:"param"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
}

// counterUnits are the units whose values count requests, not time: they
// are deterministic for a fixed configuration, which is what makes them
// pinnable by the CI regression gate.  Timing rows ("ms") and timing-derived
// ratios ("x") are excluded.
var counterUnits = map[string]bool{
	"msgs": true, "rmis": true, "RMIs": true, "bytes": true, "ops": true,
}

// regressionTolerance is how much a pinned counter may grow before the
// baseline comparison fails.
const regressionTolerance = 0.10

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		all        = flag.Bool("all", false, "run every experiment")
		experiment = flag.String("experiment", "", "comma-separated experiment ids to run (e.g. fig30,fig51)")
		locations  = flag.String("locations", "1,2,4,8", "comma-separated machine sizes to sweep")
		elements   = flag.Int64("elements", 20000, "elements per location (weak-scaling unit)")
		graphScale = flag.Int("graphscale", 10, "log2 of the SSCA2 graph vertex count")
		transportF = flag.String("transport", "", "interconnect for the experiment machines: inproc, wire, tcp, proc, chaos or chaos-tcp (default: PCF_TRANSPORT, else inproc); proc re-executes pcfbench one OS process per location")
		chaosSeed  = flag.Int64("chaos-seed", -1, "reseed the chaos wire's fault schedule (chaos transports only; -1 keeps PCF_CHAOS_SEED / the default)")
		jsonOut    = flag.Bool("json", false, "emit one JSON record per row instead of the report table (includes wire-level fault counters)")
		counters   = flag.Bool("counters", false, "with -json: emit only deterministic counter rows (msgs/rmis/bytes/ops)")
		baseline   = flag.String("baseline", "", "compare counter rows against this JSON baseline; exit 1 on >10% growth (with -time: allocs/op gate, ns advisory)")
		timeMode   = flag.Bool("time", false, "run the timed variants: calibrated repetitions emitting ns/op, allocs/op and B/op rows instead of counters")
		timeBudget = flag.Duration("timebudget", 0, "with -time: minimum duration of each calibrated measured section (default 50ms)")
		adaptive   = flag.Bool("adaptive", false, "enable adaptive aggregation (EWMA-sized flush batches) in the experiment machines; changes message counts, so not for counter baselines")
		aggMax     = flag.Int("aggmax", 0, "with -adaptive: bound on the adaptive aggregation target (0 keeps the runtime default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Description)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.ElementsPerLocation = *elements
	cfg.GraphScale = *graphScale
	cfg.TimedMinTime = *timeBudget
	cfg.Adaptive = *adaptive
	cfg.AggregationMax = *aggMax
	if *chaosSeed >= 0 {
		// The chaos schedule is resolved from the environment when the
		// transport factory is built, so the flag must land first.
		os.Setenv("PCF_CHAOS_SEED", strconv.FormatInt(*chaosSeed, 10))
	}
	cfg.Locations = nil
	for _, tok := range strings.Split(*locations, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p <= 0 {
			fmt.Fprintf(os.Stderr, "pcfbench: invalid location count %q\n", tok)
			os.Exit(2)
		}
		cfg.Locations = append(cfg.Locations, p)
	}

	transportName := *transportF
	if transportName == "" {
		transportName = os.Getenv("PCF_TRANSPORT")
	}
	// The wire tap reports the wire-level traffic and fault counters the runs
	// accumulated; it stays nil in multi-process mode, where the transport
	// factory must be the proc one unwrapped (the runtime recognises it by
	// identity) and the counters surface through Machine.WireStats instead.
	var tap *wireTap
	if transportName == "proc" {
		// Multi-process mode.  The parent re-executes itself, one process per
		// location, under the launcher; the children run the experiments over
		// the proc transport and only rank 0 reports.
		rank, nprocs, child := runtime.ProcRank()
		if !child {
			if len(cfg.Locations) != 1 {
				fmt.Fprintf(os.Stderr, "pcfbench: -transport=proc needs a single -locations value (one process per location), got %q\n", *locations)
				os.Exit(2)
			}
			if err := runtime.LaunchSelf(cfg.Locations[0], "PCF_TRANSPORT=proc"); err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		runtime.ChildMain()
		defer runtime.ChildDone()
		if len(cfg.Locations) != 1 || cfg.Locations[0] != nprocs {
			fmt.Fprintf(os.Stderr, "pcfbench: proc child of %d processes got -locations %q (must match)\n", nprocs, *locations)
			os.Exit(2)
		}
		cfg.Transport = runtime.ProcTransport
		if rank != 0 {
			// Every rank runs the same experiments (SPMD discipline) and folds
			// the same machine-wide statistics; one report is enough.
			devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				os.Exit(2)
			}
			os.Stdout = devnull
		}
	} else {
		if *transportF != "" {
			factory, err := resolveTransport(*transportF)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				os.Exit(2)
			}
			cfg.Transport = factory
		} else {
			cfg.Transport = runtime.TransportFromEnv()
		}
		tap = &wireTap{inner: cfg.Transport}
		cfg.Transport = tap.factory
	}

	// In -time mode the experiment ids resolve to their timed variants: the
	// same workloads, measured with calibrated repetitions instead of
	// counter snapshots.
	find, everything := bench.Find, bench.All
	if *timeMode {
		find, everything = bench.FindTimed, bench.TimedExperiments
	}
	var selected []bench.Experiment
	switch {
	case *all:
		selected = everything()
	case *experiment != "":
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "pcfbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "pcfbench: pass -all, -experiment <id>, or -list")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
			}
		}()
	}

	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
			os.Exit(2)
		}
		pass := false
		if *timeMode {
			pass = compareTimeBaseline(selected, cfg, base)
		} else {
			pass = compareBaseline(selected, cfg, base)
		}
		if !pass {
			// os.Exit skips the deferred profile flush; stop explicitly so a
			// failing gate still leaves a usable CPU profile behind.
			if *cpuProfile != "" {
				pprof.StopCPUProfile()
			}
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	for _, e := range selected {
		if !*jsonOut {
			fmt.Printf("# %s — %s\n", e.ID, e.Description)
			bench.PrintRows(e.Run(cfg))
			fmt.Println()
			continue
		}
		for _, r := range sortedRows(e.Run(cfg)) {
			if *counters && !counterUnits[r.Unit] {
				continue
			}
			if err := enc.Encode(jsonRow{Experiment: r.Experiment, Series: r.Series, Param: r.Param, Value: r.Value, Unit: r.Unit}); err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				os.Exit(2)
			}
		}
	}
	if *jsonOut && !*counters && !*timeMode && tap != nil {
		// Wire-level counters are transport-DEPENDENT by design (they
		// describe the wire, not the workload), so they carry their own
		// "wire" unit: the -counters baseline and the regression gate ignore
		// them, and fault-free runs keep their counter rows byte-identical.
		for _, r := range tap.rows() {
			if err := enc.Encode(r); err != nil {
				fmt.Fprintf(os.Stderr, "pcfbench: %v\n", err)
				os.Exit(2)
			}
		}
	}
}

// wireTap wraps the selected transport factory so the final WireStats of
// every machine run are accumulated for the harness report.
type wireTap struct {
	inner runtime.TransportFactory

	mu    sync.Mutex
	name  string
	total transport.WireStats
}

func (w *wireTap) factory(m *runtime.Machine) runtime.Transport {
	return tapTransport{Transport: w.inner(m), tap: w}
}

// add folds one run's counters into the tap.
func (w *wireTap) add(name string, s transport.WireStats) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.name = name
	w.total.FramesSent += s.FramesSent
	w.total.FramesReceived += s.FramesReceived
	w.total.BytesSent += s.BytesSent
	w.total.BytesReceived += s.BytesReceived
	w.total.Connections += s.Connections
	w.total.DialRetries += s.DialRetries
	w.total.DataFrames += s.DataFrames
	w.total.Acks += s.Acks
	w.total.Retransmits += s.Retransmits
	w.total.DuplicatesDropped += s.DuplicatesDropped
	w.total.OutOfOrder += s.OutOfOrder
	w.total.RendezvousFallbacks += s.RendezvousFallbacks
	w.total.Delayed += s.Delayed
	w.total.Duplicated += s.Duplicated
	w.total.Dropped += s.Dropped
	w.total.Reconnects += s.Reconnects
}

// rows renders the accumulated wire counters as JSON rows: the protocol and
// fault-injection counters that tell whether (and how hard) the wire was
// exercised, keyed by the wire stack's name.
func (w *wireTap) rows() []jsonRow {
	w.mu.Lock()
	defer w.mu.Unlock()
	series := []struct {
		label string
		value int64
	}{
		{"frames-sent", w.total.FramesSent},
		{"data-frames", w.total.DataFrames},
		{"acks", w.total.Acks},
		{"retransmits", w.total.Retransmits},
		{"duplicates-dropped", w.total.DuplicatesDropped},
		{"out-of-order", w.total.OutOfOrder},
		{"rendezvous-fallbacks", w.total.RendezvousFallbacks},
		{"delayed", w.total.Delayed},
		{"duplicated", w.total.Duplicated},
		{"dropped", w.total.Dropped},
		{"reconnects", w.total.Reconnects},
		{"dial-retries", w.total.DialRetries},
	}
	rows := make([]jsonRow, 0, len(series))
	for _, s := range series {
		rows = append(rows, jsonRow{Experiment: "wirestats", Series: s.label, Param: w.name, Value: float64(s.value), Unit: "wire"})
	}
	return rows
}

// tapTransport forwards everything to the run's real transport and reports
// the final counters when the run tears it down.
type tapTransport struct {
	runtime.Transport
	tap *wireTap
}

func (t tapTransport) Close() error {
	t.tap.add(t.Transport.Name(), t.Transport.WireStats())
	return t.Transport.Close()
}

// resolveTransport maps the -transport flag to a factory by reusing the
// PCF_TRANSPORT resolution table (which panics on unknown names — here that
// becomes a flag error instead of a crash).
func resolveTransport(name string) (factory runtime.TransportFactory, err error) {
	defer func() {
		if r := recover(); r != nil {
			factory, err = nil, fmt.Errorf("invalid -transport %q (want inproc, wire, tcp, proc, chaos or chaos-tcp)", name)
		}
	}()
	os.Setenv("PCF_TRANSPORT", name)
	return runtime.TransportFromEnv(), nil
}

// sortedRows orders rows the way PrintRows does, so JSON output (and the
// checked-in baseline) is stable across runs.
func sortedRows(rows []bench.Row) []bench.Row {
	return bench.SortRows(rows)
}

// loadBaseline reads a JSON-lines baseline produced by -json.
func loadBaseline(path string) ([]jsonRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []jsonRow
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r jsonRow
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("baseline %s: %w", path, err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("baseline %s holds no rows", path)
	}
	return rows, nil
}

// compareBaseline reruns the selected experiments and checks every counter
// row the baseline pins for them against the fresh value.  Baseline rows of
// experiments that were not selected are ignored, so a subset run (e.g. the
// TCP-loopback bulk check) compares only its own counters.  It reports each
// regression and returns false when any pinned counter grew beyond the
// tolerance (or a pinned row disappeared).
func compareBaseline(selected []bench.Experiment, cfg bench.Config, base []jsonRow) bool {
	current := map[string]float64{}
	selectedIDs := map[string]bool{}
	for _, e := range selected {
		selectedIDs[e.ID] = true
		for _, r := range e.Run(cfg) {
			current[r.Experiment+"|"+r.Series+"|"+r.Param] = r.Value
		}
	}
	ok := true
	var checked, improved int
	for _, b := range base {
		if !counterUnits[b.Unit] || !selectedIDs[b.Experiment] {
			continue
		}
		key := b.Experiment + "|" + b.Series + "|" + b.Param
		cur, found := current[key]
		if !found {
			fmt.Printf("MISSING  %-10s %-42s %-24s (baseline %.0f %s)\n", b.Experiment, b.Series, b.Param, b.Value, b.Unit)
			ok = false
			continue
		}
		checked++
		switch {
		case cur <= b.Value:
			if cur < b.Value {
				improved++
			}
		case b.Value == 0:
			// Growth from a zero baseline has no meaningful percentage (the
			// old report printed a flat "+100%" here, whether the counter
			// grew to 1 or to 1 million); report the new traffic distinctly.
			fmt.Printf("NEW       %-10s %-42s %-24s 0 -> %.0f %s (counter grew from a zero baseline)\n",
				b.Experiment, b.Series, b.Param, cur, b.Unit)
			ok = false
		case (cur-b.Value)/b.Value > regressionTolerance:
			fmt.Printf("REGRESSED %-10s %-42s %-24s %.0f -> %.0f %s (+%.1f%%)\n",
				b.Experiment, b.Series, b.Param, b.Value, cur, b.Unit, growthPct(b.Value, cur))
			ok = false
		}
	}
	fmt.Printf("bench-regression: %d counters checked, %d improved, pass=%v\n", checked, improved, ok)
	if improved > 0 {
		fmt.Println("note: improved counters stay green; refresh BENCH_baseline.json to pin the better values")
	}
	return ok
}

// growthPct reports growth relative to a non-zero baseline; zero baselines
// take the distinct NEW path in compareBaseline instead of a misleading flat
// percentage.
func growthPct(base, cur float64) float64 {
	return (cur - base) / base * 100
}

// allocsSlack is the absolute allocs/op headroom on top of the relative
// tolerance: per-section scaffolding (machine bring-up, calibration) is
// amortised over the repetition count, which varies slightly between runs,
// so a fraction of an allocation of jitter is expected even when the
// workload itself is allocation-identical.
const allocsSlack = 1.0

// compareTimeBaseline reruns the selected timed experiments and checks them
// against a BENCH_time.json baseline.  Only allocs/op rows gate (allocation
// counts are deterministic for a fixed workload and Go version); ns/op and
// B/op changes are reported as advisory lines — CI machines differ too much
// in speed to fail on nanoseconds.  Rows are keyed by experiment, series,
// param AND unit: a timed series emits one row per unit, so the counter
// gate's three-part key would collide here.
func compareTimeBaseline(selected []bench.Experiment, cfg bench.Config, base []jsonRow) bool {
	current := map[string]float64{}
	selectedIDs := map[string]bool{}
	for _, e := range selected {
		selectedIDs[e.ID] = true
		for _, r := range e.Run(cfg) {
			current[r.Experiment+"|"+r.Series+"|"+r.Param+"|"+r.Unit] = r.Value
		}
	}
	ok := true
	var gated, advisories int
	for _, b := range base {
		if !selectedIDs[b.Experiment] {
			continue
		}
		key := b.Experiment + "|" + b.Series + "|" + b.Param + "|" + b.Unit
		cur, found := current[key]
		if !found {
			fmt.Printf("MISSING  %-10s %-38s %-24s (baseline %.3f %s)\n", b.Experiment, b.Series, b.Param, b.Value, b.Unit)
			ok = false
			continue
		}
		switch b.Unit {
		case "allocs":
			gated++
			if cur > b.Value*(1+regressionTolerance)+allocsSlack {
				fmt.Printf("REGRESSED %-10s %-38s %-24s %.2f -> %.2f allocs/op\n",
					b.Experiment, b.Series, b.Param, b.Value, cur)
				ok = false
			}
		case "ns", "bytes-alloc":
			if b.Value > 0 && (cur-b.Value)/b.Value > 0.5 {
				fmt.Printf("ADVISORY  %-10s %-38s %-24s %.1f -> %.1f %s (+%.0f%%, not gated)\n",
					b.Experiment, b.Series, b.Param, b.Value, cur, b.Unit, growthPct(b.Value, cur))
				advisories++
			}
		}
	}
	fmt.Printf("bench-time: %d allocs/op rows gated, %d timing advisories, pass=%v\n", gated, advisories, ok)
	return ok
}
