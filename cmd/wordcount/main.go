// Command wordcount runs the paper's MapReduce word-count application
// (Fig. 59) on the simulated machine: the input corpus (a text file, or a
// synthetic Zipf corpus when no file is given) is split over the locations,
// counted with the MapReduce pAlgorithm into a pHashMap, and the most
// frequent words are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/containers/passoc"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	var (
		locations = flag.Int("locations", 4, "number of simulated locations")
		file      = flag.String("file", "", "input text file (default: synthetic Zipf corpus)")
		words     = flag.Int("words", 200000, "synthetic corpus size per location")
		vocab     = flag.Int("vocab", 20000, "synthetic corpus vocabulary size")
		top       = flag.Int("top", 10, "number of most frequent words to print")
	)
	flag.Parse()

	var corpus []string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wordcount: %v\n", err)
			os.Exit(1)
		}
		corpus = strings.Fields(strings.ToLower(string(data)))
	}

	type kv struct {
		Word  string
		Count int64
	}
	var (
		mu     sync.Mutex
		global []kv
		total  int64
	)

	m := runtime.NewMachine(*locations, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		var local []string
		if corpus != nil {
			// Split the file's words evenly over the locations.
			per := (len(corpus) + loc.NumLocations() - 1) / loc.NumLocations()
			lo := loc.ID() * per
			hi := lo + per
			if lo > len(corpus) {
				lo = len(corpus)
			}
			if hi > len(corpus) {
				hi = len(corpus)
			}
			local = corpus[lo:hi]
		} else {
			local = workload.Zipf(loc, *words, *vocab, 1.2)
		}
		counts := passoc.NewHashMap[string, int64](loc, partition.StringHash)
		palgo.WordCount(loc, local, counts)

		// Each location reports its local share of the result.
		var mine []kv
		var localTotal int64
		counts.LocalRange(func(w string, c int64) bool {
			mine = append(mine, kv{Word: w, Count: c})
			localTotal += c
			return true
		})
		grand := runtime.AllReduceSum(loc, localTotal)
		mu.Lock()
		global = append(global, mine...)
		total = grand
		mu.Unlock()
		loc.Fence()
	})

	sort.Slice(global, func(i, j int) bool { return global[i].Count > global[j].Count })
	fmt.Printf("locations=%d total-words=%d distinct-words=%d\n", *locations, total, len(global))
	for i := 0; i < *top && i < len(global); i++ {
		fmt.Printf("%3d. %-20s %d\n", i+1, global[i].Word, global[i].Count)
	}
	stats := m.Stats()
	fmt.Printf("rmi: async=%d sync=%d messages=%d fences=%d\n",
		stats.AsyncRMIs, stats.SyncRMIs, stats.MessagesSent, stats.Fences)
}
