// Command pcflaunch starts a multi-process SPMD job: it runs one OS process
// per location and serves the control plane the processes synchronise over
// (collective rounds, fault propagation, shutdown supervision).  The
// launched program must call runtime.ChildMain early in main() and build its
// machine with the proc transport (PCF_TRANSPORT=proc is exported to every
// child by default, so runtime.TransportFromEnv picks it up unchanged).
//
// Usage:
//
//	pcflaunch -n 4 [-grace 15s] -- prog [args...]
//
// Every child receives the same command line; ranks differ only in the
// PCF_PROC_RANK / PCF_PROC_NPROCS / PCF_PROC_CONTROL environment variables.
// pcflaunch exits 0 when all children shut down cleanly, and nonzero with
// the first failure otherwise (a child that exited nonzero, was killed, or
// lost its control connection mid-run).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/runtime"
)

func main() {
	n := flag.Int("n", 2, "number of processes (= machine locations)")
	grace := flag.Duration("grace", 15*time.Second,
		"how long survivors may run after the first child failure before being killed")
	noEnv := flag.Bool("no-transport-env", false,
		"do not export PCF_TRANSPORT=proc to the children (program selects its transport itself)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pcflaunch -n N [-grace D] -- prog [args...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var env []string
	if !*noEnv {
		env = append(env, "PCF_TRANSPORT=proc")
	}
	if err := runtime.Launch(runtime.LaunchSpec{
		NProcs: *n,
		Prog:   args[0],
		Args:   args[1:],
		Env:    env,
		Grace:  *grace,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
