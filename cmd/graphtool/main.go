// Command graphtool builds a distributed pGraph (an SSCA2-style clustered
// graph or a 2-D mesh) and runs the pGraph algorithms of the paper's
// evaluation on it: BFS, connected components, find-sources and page rank.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/containers/pgraph"
	"repro/internal/graphalgo"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	var (
		locations = flag.Int("locations", 4, "number of simulated locations")
		kind      = flag.String("graph", "ssca2", "input graph: ssca2 or mesh")
		scale     = flag.Int("scale", 12, "log2 vertex count (ssca2) / sqrt scale (mesh)")
		algo      = flag.String("algo", "bfs", "algorithm: bfs, cc, sources, pagerank")
	)
	flag.Parse()

	var (
		mu     sync.Mutex
		report string
	)
	start := time.Now()
	m := runtime.NewMachine(*locations, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		var g *pgraph.Graph[int64, int8]
		var gf *pgraph.Graph[float64, int8]
		switch *kind {
		case "ssca2":
			p := workload.DefaultSSCA2(*scale)
			g = pgraph.New[int64, int8](loc, p.NumVertices())
			workload.BuildSSCA2Static(loc, g, p)
		case "mesh":
			side := int64(1) << (*scale / 2)
			mp := workload.Mesh2DParams{Rows: side, Cols: side}
			gf = pgraph.New[float64, int8](loc, mp.NumVertices())
			workload.BuildMesh2D(loc, gf, mp)
		default:
			if loc.ID() == 0 {
				fmt.Fprintf(os.Stderr, "graphtool: unknown graph kind %q\n", *kind)
			}
			return
		}

		var line string
		switch *algo {
		case "bfs":
			if g == nil {
				line = "bfs requires -graph ssca2"
				break
			}
			res := graphalgo.BFS(loc, g, 0)
			reached := graphalgo.ReachedCount(loc, res)
			maxLvl := graphalgo.MaxLevel(loc, res)
			line = fmt.Sprintf("bfs: vertices=%d reached=%d max-level=%d", g.NumVertices(), reached, maxLvl)
		case "cc":
			if g == nil {
				line = "cc requires -graph ssca2"
				break
			}
			labels := graphalgo.ConnectedComponents(loc, g)
			n := graphalgo.NumComponents(loc, labels)
			line = fmt.Sprintf("connected components: vertices=%d components=%d", g.NumVertices(), n)
		case "sources":
			if g == nil {
				line = "sources requires -graph ssca2"
				break
			}
			_, total := graphalgo.FindSources(loc, g)
			line = fmt.Sprintf("find-sources: vertices=%d sources=%d", g.NumVertices(), total)
		case "pagerank":
			if gf == nil {
				line = "pagerank requires -graph mesh"
				break
			}
			ranks := graphalgo.PageRank(loc, gf, graphalgo.DefaultPageRank())
			sum := graphalgo.RankSum(loc, ranks)
			line = fmt.Sprintf("pagerank: vertices=%d rank-sum=%.4f", gf.NumVertices(), sum)
		default:
			line = fmt.Sprintf("unknown algorithm %q", *algo)
		}
		if loc.ID() == 0 {
			mu.Lock()
			report = line
			mu.Unlock()
		}
		loc.Fence()
	})

	fmt.Printf("%s  (locations=%d, %.2fs)\n", report, *locations, time.Since(start).Seconds())
	s := m.Stats()
	fmt.Printf("rmi: handled=%d messages=%d fences=%d\n", s.RMIsHandled, s.MessagesSent, s.Fences)
}
