// Package repro is the root of a Go reproduction of "The STAPL Parallel
// Container Framework" (Tanase et al., PPoPP 2011 / Tanase's dissertation,
// Texas A&M, 2010).
//
// The library lives under internal/: the simulated run-time system
// (internal/runtime), the Parallel Container Framework core (internal/core),
// the pContainers (internal/containers/...), pViews (internal/views),
// pAlgorithms (internal/palgo, internal/graphalgo, internal/euler), the
// workload generators (internal/workload) and the experiment harness
// (internal/bench).  Executables are under cmd/ and runnable examples under
// examples/.  See README.md, DESIGN.md and EXPERIMENTS.md.
//
// The root package exists to host the repository-level benchmarks
// (bench_test.go), one per table and figure of the paper's evaluation.
package repro
