package repro

import (
	"testing"

	"repro/internal/bench"
)

// Each benchmark regenerates one table or figure of the paper's evaluation
// by running the corresponding experiment from internal/bench at a reduced
// scale (SmallConfig); `go test -bench` reports nanoseconds per full
// experiment execution.  cmd/pcfbench runs the same experiments at the
// default scale and prints the per-series rows.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := bench.SmallConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := exp.Run(cfg)
		if len(rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// Figure 27: pArray constructor execution time for various input sizes.
func BenchmarkFig27ArrayConstructor(b *testing.B) { benchExperiment(b, "fig27") }

// Figure 28: pArray local method invocations for various container sizes.
func BenchmarkFig28ArrayLocalMethods(b *testing.B) { benchExperiment(b, "fig28") }

// Figure 29: pArray methods for various input sizes.
func BenchmarkFig29ArrayMethodsSizes(b *testing.B) { benchExperiment(b, "fig29") }

// Figure 30: set_element, get_element and split_phase_get_element.
func BenchmarkFig30ArraySyncAsyncSplit(b *testing.B) { benchExperiment(b, "fig30") }

// Figure 31: pArray methods for various percentages of remote invocations.
func BenchmarkFig31ArrayRemoteFraction(b *testing.B) { benchExperiment(b, "fig31") }

// Figure 32: pArray local and remote method invocations vs container size.
func BenchmarkFig32ArrayLocalRemote(b *testing.B) { benchExperiment(b, "fig32") }

// Figure 33: generic algorithms on pArray (weak scaling).
func BenchmarkFig33ArrayAlgorithms(b *testing.B) { benchExperiment(b, "fig33") }

// Figure 34 and Tables XXII/XXIII: pArray memory consumption study.
func BenchmarkFig34ArrayMemory(b *testing.B) { benchExperiment(b, "fig34") }

// Figure 39: pList methods.
func BenchmarkFig39ListMethods(b *testing.B) { benchExperiment(b, "fig39") }

// Figure 40: p_for_each/p_generate/p_accumulate on pArray vs pList.
func BenchmarkFig40ListVsArrayAlgos(b *testing.B) { benchExperiment(b, "fig40") }

// Figure 41: weak scaling of p_for_each with packed vs spread placement.
func BenchmarkFig41PlacementWeakScaling(b *testing.B) { benchExperiment(b, "fig41") }

// Figure 42: pList vs pVector under a mixed dynamic workload.
func BenchmarkFig42ListVsVectorMix(b *testing.B) { benchExperiment(b, "fig42") }

// Figure 43: Euler tour weak scaling.
func BenchmarkFig43EulerTourWeakScaling(b *testing.B) { benchExperiment(b, "fig43") }

// Figure 44: Euler tour applications.
func BenchmarkFig44EulerTourApps(b *testing.B) { benchExperiment(b, "fig44") }

// Figures 49/50: static and dynamic pGraph methods on SSCA2 inputs.
func BenchmarkFig49GraphMethods(b *testing.B) { benchExperiment(b, "fig49") }

// Figure 51: find-sources with static / dynamic (forwarding / no
// forwarding) partitions.
func BenchmarkFig51FindSources(b *testing.B) { benchExperiment(b, "fig51") }

// Figure 52: comparison of pGraph partitions (address translation).
func BenchmarkFig52GraphPartitions(b *testing.B) { benchExperiment(b, "fig52") }

// Figures 53/54/55: pGraph algorithms.
func BenchmarkFig53GraphAlgorithms(b *testing.B) { benchExperiment(b, "fig53") }

// Figure 56: page rank for two different input meshes.
func BenchmarkFig56PageRank(b *testing.B) { benchExperiment(b, "fig56") }

// Figure 59: MapReduce word count.
func BenchmarkFig59MapReduceWordCount(b *testing.B) { benchExperiment(b, "fig59") }

// Figure 60: generic algorithms on associative pContainers.
func BenchmarkFig60AssociativeAlgos(b *testing.B) { benchExperiment(b, "fig60") }

// Figure 62: composition — pArray<pArray>, pList<pArray> and pMatrix
// row-minimum comparison.
func BenchmarkFig62Composition(b *testing.B) { benchExperiment(b, "fig62") }

// Bulk element operations: SetBulk/GetBulk grouped per destination vs the
// per-element path amortised only by RMI aggregation.  Reports time,
// message and byte deltas per mode.
func BenchmarkBulkVsElementwise(b *testing.B) { benchExperiment(b, "bulk") }

// pMatrix 2-D kernels: coarsened matvec/matmul vs element-wise traversal,
// 2-D Jacobi row-halo sweeps and the row-blocked → checkerboard relayout,
// with deterministic message/RMI/byte series.
func BenchmarkMatrixKernels(b *testing.B) { benchExperiment(b, "matrix") }

// Redistribution subsystem: skew a distribution, rebalance with the
// load-balance advisor, measure imbalance and migration traffic.
func BenchmarkRedistributeRebalance(b *testing.B) { benchExperiment(b, "redist") }

// Storage representations: dense vs compressed resident and migration bytes
// (the sparse experiment).
func BenchmarkSparseStorage(b *testing.B) { benchExperiment(b, "sparse") }

// Distributed-directory resolution: repeat remote access through the
// method-forwarding triangle with the per-location resolution cache on and
// off, measuring RMI and message deltas.
func BenchmarkDirectoryCachedAccess(b *testing.B) { benchExperiment(b, "directory") }

// Composable pView algebra: coarsened vs element-wise execution, zipped
// axpy/dot, overlap-halo Jacobi sweeps and Segmented-of-Zip reduction,
// with deterministic message/RMI/byte series.
func BenchmarkViewsComposition(b *testing.B) { benchExperiment(b, "views") }

// Design-choice ablation: RMI aggregation factor.
func BenchmarkAblationAggregation(b *testing.B) { benchExperiment(b, "ablation-aggregation") }

// Design-choice ablation: thread-safety manager policy.
func BenchmarkAblationLocking(b *testing.B) { benchExperiment(b, "ablation-locking") }
