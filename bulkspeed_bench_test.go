package repro

import (
	"testing"

	"repro/internal/containers/parray"
	"repro/internal/runtime"
)

// BenchmarkBulkSetGet pins the wall-clock cost of the container bulk path:
// chunked SetBulk/GetBulk from each location against the next location's
// block, the access pattern of the bulk-vs-elementwise experiment.  One
// benchmark iteration moves `chunk` elements (b.N iterations total), so
// ns/op is nanoseconds per 1024-element bulk set+get round trip.
func BenchmarkBulkSetGet(b *testing.B) {
	const chunk = 1024
	const perLoc = 4096
	m := runtime.NewMachine(2, runtime.DefaultConfig())
	b.ReportAllocs()
	m.Execute(func(loc *runtime.Location) {
		a := parray.New[int64](loc, int64(loc.NumLocations())*perLoc)
		next := (loc.ID() + 1) % loc.NumLocations()
		base := int64(next) * perLoc
		idxs := make([]int64, chunk)
		vals := make([]int64, chunk)
		for i := range idxs {
			idxs[i] = base + int64(i)
			vals[i] = int64(i)
		}
		loc.Barrier()
		if loc.ID() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.SetBulk(idxs, vals)
				got := a.GetBulk(idxs)
				if len(got) != chunk {
					b.Errorf("GetBulk returned %d values, want %d", len(got), chunk)
				}
			}
			b.StopTimer()
		}
		loc.Barrier()
	})
}
