// Command stencil demonstrates the workloads that only view composition
// enables: a 1-D Jacobi heat-diffusion stencil over the overlap/halo face
// of the pView algebra, and the zipped dot-product / axpy kernels over two
// pArrays.  The halo cells of each location's share travel as one grouped
// bulk request per neighbour per sweep; the zipped kernels coarsen into
// native chunks and stay message-free when the operands are aligned.
//
// Usage:
//
//	stencil -locations 4 -n 64 -sweeps 100
package main

import (
	"flag"
	"fmt"

	"repro/internal/containers/parray"
	"repro/internal/palgo"
	"repro/internal/runtime"
	"repro/internal/views"
)

func main() {
	var (
		locations = flag.Int("locations", 4, "number of locations (simulated processors)")
		n         = flag.Int64("n", 64, "field size")
		sweeps    = flag.Int("sweeps", 100, "Jacobi sweeps")
	)
	flag.Parse()

	m := runtime.NewMachine(*locations, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		// --- Jacobi: a hot left boundary diffusing into a cold rod.
		cur := parray.New[float64](loc, *n)
		next := parray.New[float64](loc, *n)
		cv, nv := views.NewArrayNative(cur), views.NewArrayNative(next)
		palgo.Generate(loc, cv, func(i int64) float64 {
			if i == 0 {
				return 100
			}
			return 0
		})
		palgo.Copy[float64](loc, cv, nv)
		final := palgo.Jacobi1D(loc, cv, nv, *sweeps)
		residual := palgo.JacobiResidual(loc, final)

		// --- Zipped kernels over two freshly generated vectors.
		x := parray.New[float64](loc, *n)
		y := parray.New[float64](loc, *n)
		xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
		palgo.Generate(loc, xv, func(i int64) float64 { return float64(i % 10) })
		palgo.Fill[float64](loc, yv, 1)
		palgo.Axpy[float64](loc, 0.5, xv, yv) // y = 0.5*x + 1
		dot := palgo.Dot[float64](loc, xv, yv)

		if loc.ID() == 0 {
			fmt.Printf("jacobi: %d sweeps over %d cells on %d locations, residual %.6f\n",
				*sweeps, *n, loc.NumLocations(), residual)
			fmt.Printf("temperature profile: x[0]=%.2f x[n/4]=%.3f x[n/2]=%.4f x[n-1]=%.4f\n",
				final.Get(0), final.Get(*n/4), final.Get(*n/2), final.Get(*n-1))
			fmt.Printf("dot(x, 0.5*x+1) = %.2f\n", dot)
		}
		loc.Fence()
	})
	s := m.Stats()
	fmt.Printf("traffic: %d RMIs, %d messages, %d simulated bytes (%d bulk ops)\n",
		s.RMIsSent, s.MessagesSent, s.BytesSimulated, s.BulkOps)
}
