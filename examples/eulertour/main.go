// Eulertour: the pList-chapter application (Figs. 43/44) — build a
// distributed tree, construct its Euler tour, rank it with parallel pointer
// jumping, and derive the tree applications (parents and subtree sizes).
//
// Run with: go run ./examples/eulertour
package main

import (
	"fmt"
	"sync"

	"repro/internal/euler"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	const locations = 4
	params := workload.ForestParams{SubtreesPerLocation: 4, SubtreeHeight: 5}

	var (
		mu                        sync.Mutex
		vertices, arcs, parents   int64
		rootSubtree, subtreeCount int64
	)

	machine := runtime.NewMachine(locations, runtime.DefaultConfig())
	machine.Execute(func(loc *runtime.Location) {
		// Every location owns a few complete binary subtrees hanging off a
		// shared global root.
		edges, verts, root := workload.TreeEdges(loc, params)
		g := euler.BuildTree(loc, verts, edges)

		tour := euler.BuildTour(loc, g, root)
		rank := tour.Rank(loc)
		fns := tour.Applications(loc, rank)

		nv := g.NumVertices()
		np := runtime.AllReduceSum(loc, int64(len(fns.Parent)))
		var rootSz, nSub int64
		for v, s := range fns.SubtreeSize {
			if v == root {
				rootSz = s
			}
			if s == int64(1)<<params.SubtreeHeight-1 {
				nSub++
			}
		}
		rootSz = runtime.AllReduceMax(loc, rootSz)
		nSub = runtime.AllReduceSum(loc, nSub)

		if loc.ID() == 0 {
			mu.Lock()
			vertices, arcs, parents = nv, tour.NumArcs, np
			rootSubtree, subtreeCount = rootSz, nSub
			mu.Unlock()
		}
		loc.Fence()
	})

	fmt.Printf("tree: %d vertices, euler tour of %d arcs on %d locations\n", vertices, arcs, locations)
	fmt.Printf("rooting assigned %d parents (every non-root vertex exactly once)\n", parents)
	fmt.Printf("root subtree size %d; %d complete subtrees of %d vertices found\n",
		rootSubtree, subtreeCount, 1<<params.SubtreeHeight-1)
}
