// Matrixmin: the composition study of Fig. 62 — compute the minimum of every
// row of a matrix three ways: with a composed pArray of pArrays, with a
// pList of pArrays (both via nested pAlgorithm invocations), and with a
// row-blocked pMatrix whose rows are stored locally.  The pMatrix wins
// because its row data never leaves the owning location.
//
// Run with: go run ./examples/matrixmin
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/composed"
	"repro/internal/containers/pmatrix"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func main() {
	const (
		locations = 4
		rows      = 16
		cols      = 4000
	)
	sizes := make([]int64, rows)
	for i := range sizes {
		sizes[i] = cols
	}
	fill := func(r, c int64) int64 { return (r*7919+c*104729)%100000 + r }
	min := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}

	var (
		mu      sync.Mutex
		timings = map[string]time.Duration{}
		mins    []int64
	)
	record := func(name string, d time.Duration, result []int64) {
		mu.Lock()
		timings[name] = d
		if mins == nil {
			mins = result
		} else {
			for i := range result {
				if result[i] != mins[i] {
					fmt.Printf("MISMATCH row %d: %d vs %d\n", i, result[i], mins[i])
				}
			}
		}
		mu.Unlock()
	}

	machine := runtime.NewMachine(locations, runtime.DefaultConfig())
	machine.Execute(func(loc *runtime.Location) {
		// (a) pArray of pArrays with nested reductions.
		apa := composed.NewArrayOfArrays[int64](loc, sizes)
		apa.NestedFill(fill)
		start := time.Now()
		resA := apa.NestedReduce(min)
		dA := time.Since(start)

		// (b) pList of pArrays.
		lpa := composed.NewListOfArrays[int64](loc, sizes)
		lpa.NestedFill(fill)
		start = time.Now()
		resL := lpa.NestedReduce(min)
		dL := time.Since(start)

		// (c) row-blocked pMatrix: every row is local to one location.
		m := pmatrix.New[int64](loc, rows, cols, pmatrix.WithLayout(partition.RowBlocked))
		m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return fill(g.Row, g.Col) })
		loc.Fence()
		start = time.Now()
		local := map[int64]int64{}
		m.LocalRowRange(func(row int64, _ int64, vals []int64) {
			best := vals[0]
			for _, v := range vals[1:] {
				best = min(best, v)
			}
			local[row] = best
		})
		// Combine per-row minima machine-wide (rows are fully local under
		// the row-blocked layout, so this just collects them).
		type kv struct{ R, V int64 }
		flat := make([]kv, 0, len(local))
		for r, v := range local {
			flat = append(flat, kv{r, v})
		}
		gathered := runtime.AllGatherT(loc, flat)
		resM := make([]int64, rows)
		for _, part := range gathered {
			for _, e := range part {
				resM[e.R] = e.V
			}
		}
		dM := time.Since(start)
		loc.Fence()

		if loc.ID() == 0 {
			record("pArray<pArray>", dA, resA)
			record("pList<pArray>", dL, resL)
			record("pMatrix (row-blocked)", dM, resM)
		}
		loc.Fence()
	})

	fmt.Printf("row minima of a %dx%d matrix on %d locations\n", rows, cols, locations)
	for _, name := range []string{"pArray<pArray>", "pList<pArray>", "pMatrix (row-blocked)"} {
		fmt.Printf("%-24s %8.2f ms\n", name, float64(timings[name].Microseconds())/1000)
	}
	fmt.Printf("first three row minima: %v\n", mins[:3])
}
