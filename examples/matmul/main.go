// Command matmul demonstrates the 2-D pMatrix subsystem: a panel-blocked
// matrix-matrix product (C = A·B) whose B panels arrive as one grouped bulk
// request per owner and whose C contributions flush as one bulk RMI per
// destination per panel, a coarsened matrix-vector product against a
// pVector, and a checkerboard → row-blocked relayout through the shared
// redistribution engine.  The result is checked against a sequential
// reference.
//
// Usage:
//
//	matmul -locations 4 -n 24
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func main() {
	var (
		locations = flag.Int("locations", 4, "number of locations (simulated processors)")
		n         = flag.Int64("n", 24, "matrix dimension (n x n)")
	)
	flag.Parse()

	aElem := func(r, c int64) int64 { return (r-c)%5 + 3 }
	bElem := func(r, c int64) int64 { return r%4 + c%3 + 1 }
	xElem := func(c int64) int64 { return c%7 + 1 }

	// Sequential references.
	d := *n
	refC := make([]int64, d*d)
	for r := int64(0); r < d; r++ {
		for j := int64(0); j < d; j++ {
			var acc int64
			for k := int64(0); k < d; k++ {
				acc += aElem(r, k) * bElem(k, j)
			}
			refC[r*d+j] = acc
		}
	}
	refY := make([]int64, d)
	for r := int64(0); r < d; r++ {
		var acc int64
		for c := int64(0); c < d; c++ {
			acc += aElem(r, c) * xElem(c)
		}
		refY[r] = acc
	}

	var mulMS, vecMS, relayoutMS float64
	mismatches := 0
	m := runtime.NewMachine(*locations, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		// --- C = A·B with a checkerboard C and row-blocked operands.
		a := pmatrix.New[int64](loc, d, d)
		b := pmatrix.New[int64](loc, d, d)
		c := pmatrix.New[int64](loc, d, d, pmatrix.WithLayout(partition.Checkerboard))
		a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return aElem(g.Row, g.Col) })
		b.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return bElem(g.Row, g.Col) })
		loc.Fence()
		start := time.Now()
		palgo.MatMul[int64](loc, a, b, c)
		dMul := time.Since(start)

		// --- y = A·x against a pVector.
		x := pvector.New[int64](loc, d)
		x.LocalUpdate(func(gid int64, _ int64) int64 { return xElem(gid) })
		y := pvector.New[int64](loc, d)
		loc.Fence()
		start = time.Now()
		palgo.MatVec[int64](loc, a, x, y)
		dVec := time.Since(start)

		// --- Relayout C onto a row-blocked decomposition and verify both
		// results from location 0.
		start = time.Now()
		c.Relayout(partition.RowBlocked, 0)
		dRelayout := time.Since(start)
		if loc.ID() == 0 {
			bad := 0
			for r := int64(0); r < d && bad < 3; r++ {
				for j := int64(0); j < d && bad < 3; j++ {
					if got := c.Get(r, j); got != refC[r*d+j] {
						fmt.Printf("MISMATCH C[%d,%d] = %d, want %d\n", r, j, got, refC[r*d+j])
						bad++
					}
				}
			}
			for r := int64(0); r < d && bad < 3; r++ {
				if got := y.Get(r); got != refY[r] {
					fmt.Printf("MISMATCH y[%d] = %d, want %d\n", r, got, refY[r])
					bad++
				}
			}
			mulMS = float64(dMul.Microseconds()) / 1000
			vecMS = float64(dVec.Microseconds()) / 1000
			relayoutMS = float64(dRelayout.Microseconds()) / 1000
			mismatches = bad
		}
		loc.Fence()
	})

	fmt.Printf("%dx%d matrices on %d locations\n", d, d, *locations)
	fmt.Printf("matmul (panel blocked)       %8.2f ms\n", mulMS)
	fmt.Printf("matvec (coarsened)           %8.2f ms\n", vecMS)
	fmt.Printf("relayout checker->row        %8.2f ms\n", relayoutMS)
	s := m.Stats()
	fmt.Printf("traffic: %d RMIs, %d messages, %d simulated bytes (%d bulk ops)\n",
		s.RMIsSent, s.MessagesSent, s.BytesSimulated, s.BulkOps)
	if mismatches > 0 {
		fmt.Println("FAILED: results diverge from the sequential reference")
		os.Exit(1)
	}
	fmt.Println("verified against the sequential reference")
}
