// Quickstart: the "hello world" of the library, mirroring the paper's pArray
// example (Fig. 26).  It builds a simulated 4-location machine, constructs a
// distributed pArray, writes it with the p_generate pAlgorithm, reads
// elements through the shared-object view from any location, and reduces it
// with p_accumulate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/containers/parray"
	"repro/internal/palgo"
	"repro/internal/runtime"
	"repro/internal/views"
)

func main() {
	const locations = 4
	const n = 1000

	var once sync.Once
	machine := runtime.NewMachine(locations, runtime.DefaultConfig())

	// Execute runs the function SPMD-style: one goroutine per location,
	// just as a STAPL program runs one process per location.
	machine.Execute(func(loc *runtime.Location) {
		// Collective construction: every location calls New and receives
		// its own representative of the same distributed array.
		pa := parray.New[int64](loc, n)

		// p_generate over the native view: every location fills the
		// elements it stores, with no communication.
		v := views.NewArrayNative(pa)
		palgo.Generate(loc, v, func(i int64) int64 { return i * i })

		// Shared-object view: any location can read any element; remote
		// reads become RMIs under the hood.
		if loc.ID() == 1 {
			fmt.Printf("[location %d] element 0 = %d, element %d = %d\n",
				loc.ID(), pa.Get(0), n-1, pa.Get(n-1))
		}

		// Asynchronous remote write plus fence: the paper's default
		// relaxed consistency model.
		if loc.ID() == 2 {
			pa.Set(0, 42)
		}
		loc.Fence()

		// p_accumulate: a machine-wide reduction, result available on
		// every location.
		sum := palgo.Accumulate(loc, v, 0, func(a, b int64) int64 { return a + b })
		// MemorySize is collective, so every location participates; one
		// location prints the results.
		mem := pa.MemorySize()
		once.Do(func() {
			fmt.Printf("sum of squares (with element 0 overwritten to 42) = %d\n", sum)
			fmt.Printf("container memory: %v\n", mem)
		})
		loc.Fence()
	})

	stats := machine.Stats()
	fmt.Printf("rmi traffic: %d async, %d sync, %d messages, %d fences\n",
		stats.AsyncRMIs, stats.SyncRMIs, stats.MessagesSent, stats.Fences)
}
