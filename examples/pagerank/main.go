// Pagerank: the Fig. 56 application — build a 2-D mesh as a distributed
// pGraph and compute page rank with the computation-migration style pGraph
// algorithm, then report the highest-ranked vertices.
//
// Run with: go run ./examples/pagerank
package main

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/graphalgo"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	const locations = 4
	mesh := workload.Mesh2DParams{Rows: 64, Cols: 64}

	type ranked struct {
		Vertex int64
		Rank   float64
	}
	var (
		mu  sync.Mutex
		all []ranked
		sum float64
	)

	machine := runtime.NewMachine(locations, runtime.DefaultConfig())
	machine.Execute(func(loc *runtime.Location) {
		// A static pGraph with one vertex per mesh cell, edges to the
		// 4-neighbourhood.
		g := pgraph.New[float64, int8](loc, mesh.NumVertices())
		workload.BuildMesh2D(loc, g, mesh)

		params := graphalgo.DefaultPageRank()
		params.Iterations = 30
		ranks := graphalgo.PageRank(loc, g, params)
		total := graphalgo.RankSum(loc, ranks)

		mu.Lock()
		for vd, r := range ranks {
			all = append(all, ranked{Vertex: vd, Rank: r})
		}
		sum = total
		mu.Unlock()
		loc.Fence()
	})

	sort.Slice(all, func(i, j int) bool { return all[i].Rank > all[j].Rank })
	fmt.Printf("page rank over a %dx%d mesh on %d locations (rank sum %.4f)\n",
		mesh.Rows, mesh.Cols, locations, sum)
	for i := 0; i < 5 && i < len(all); i++ {
		r, c := all[i].Vertex/mesh.Cols, all[i].Vertex%mesh.Cols
		fmt.Printf("%d. vertex (%d,%d)  rank %.6f\n", i+1, r, c, all[i].Rank)
	}
	fmt.Println("(cells bordering the low-degree corners accumulate the largest ranks on an undirected mesh)")
}
