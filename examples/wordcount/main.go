// Wordcount: the Fig. 59 MapReduce application — every location generates
// its share of a Zipf-distributed corpus (standing in for the paper's
// Wikipedia dump), the MapReduce pAlgorithm aggregates word counts into a
// distributed pHashMap, and the most frequent words are printed.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/containers/passoc"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func main() {
	const (
		locations   = 4
		wordsPerLoc = 100000
		vocabulary  = 5000
	)

	type entry struct {
		Word  string
		Count int64
	}
	var (
		mu      sync.Mutex
		entries []entry
		total   int64
	)

	machine := runtime.NewMachine(locations, runtime.DefaultConfig())
	machine.Execute(func(loc *runtime.Location) {
		corpus := workload.Zipf(loc, wordsPerLoc, vocabulary, 1.2)
		counts := passoc.NewHashMap[string, int64](loc, partition.StringHash)

		// MapReduce: map emits (word, 1); the reduce combiner is the
		// pHashMap's atomic Apply, so concurrent emissions of the same word
		// from different locations aggregate correctly.
		palgo.WordCount(loc, corpus, counts)

		var localTotal int64
		var mine []entry
		counts.LocalRange(func(w string, c int64) bool {
			mine = append(mine, entry{Word: w, Count: c})
			localTotal += c
			return true
		})
		grand := runtime.AllReduceSum(loc, localTotal)
		mu.Lock()
		entries = append(entries, mine...)
		total = grand
		mu.Unlock()
		loc.Fence()
	})

	sort.Slice(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
	fmt.Printf("counted %d words (%d distinct) across %d locations\n", total, len(entries), locations)
	for i := 0; i < 10 && i < len(entries); i++ {
		fmt.Printf("%2d. %-12s %6d\n", i+1, entries[i].Word, entries[i].Count)
	}
}
