package bench

import (
	"strings"
	"testing"
)

// tinyConfig keeps the smoke test of the experiment harness fast.
func tinyConfig() Config {
	return Config{Locations: []int{2}, ElementsPerLocation: 300, GraphScale: 6}
}

func TestAllExperimentsProduceRows(t *testing.T) {
	cfg := tinyConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rows := e.Run(cfg)
			if len(rows) == 0 {
				t.Fatalf("experiment %s produced no rows", e.ID)
			}
			for _, r := range rows {
				if r.Experiment != e.ID {
					t.Errorf("row tagged %q, want %q", r.Experiment, e.ID)
				}
				if r.Series == "" || r.Param == "" || r.Unit == "" {
					t.Errorf("incomplete row: %+v", r)
				}
				if r.Value < 0 {
					t.Errorf("negative measurement: %+v", r)
				}
				if r.String() == "" {
					t.Error("empty row formatting")
				}
			}
		})
	}
}

func TestFindAndDescriptions(t *testing.T) {
	if _, ok := Find("fig30"); !ok {
		t.Fatal("fig30 not registered")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("unknown experiment found")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
		if !strings.HasPrefix(e.ID, "fig") && !strings.HasPrefix(e.ID, "ablation") &&
			e.ID != "redist" && e.ID != "bulk" && e.ID != "directory" && e.ID != "views" && e.ID != "matrix" &&
			e.ID != "sparse" {
			t.Errorf("unexpected experiment id %s", e.ID)
		}
	}
	// Every figure of the paper's evaluation chapters is covered.
	for _, id := range []string{"fig27", "fig28", "fig29", "fig30", "fig31", "fig32", "fig33", "fig34",
		"fig39", "fig40", "fig41", "fig42", "fig43", "fig44", "fig49", "fig51", "fig52", "fig53",
		"fig56", "fig59", "fig60", "fig62"} {
		if !seen[id] {
			t.Errorf("figure %s has no experiment", id)
		}
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	s := SmallConfig()
	if len(d.Locations) == 0 || len(s.Locations) == 0 {
		t.Fatal("configs must sweep at least one machine size")
	}
	if d.ElementsPerLocation <= s.ElementsPerLocation {
		t.Fatal("default config should be larger than the small config")
	}
}

func TestFig30ShowsLocalRemoteShape(t *testing.T) {
	// The paper's qualitative result: asynchronous remote writes are
	// cheaper than synchronous remote reads (they overlap), and the
	// split-phase flavour sits in between or close to async.
	cfg := Config{Locations: []int{4}, ElementsPerLocation: 2000, GraphScale: 6}
	rows := Fig30ArraySyncAsyncSplit(cfg)
	var async, sync float64
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Series, "set_element (async)"):
			async = r.Value
		case strings.HasPrefix(r.Series, "get_element (sync)"):
			sync = r.Value
		}
	}
	if async == 0 || sync == 0 {
		t.Fatalf("missing series: %+v", rows)
	}
	if async >= sync {
		t.Errorf("expected asynchronous writes (%.3fms) to be faster than synchronous reads (%.3fms)", async, sync)
	}
}

func TestRedistRebalancesBelowThreshold(t *testing.T) {
	// Acceptance shape of the redistribution subsystem: every family
	// starts from a measurable skew and the advisor's proposal brings the
	// imbalance factor to at most 1.1x.
	cfg := Config{Locations: []int{4}, ElementsPerLocation: 2000, GraphScale: 6}
	rows := RedistributeRebalance(cfg)
	var checkedBefore, checkedAfter int
	for _, r := range rows {
		switch {
		case strings.Contains(r.Series, "imbalance (before)"):
			checkedBefore++
			if r.Value < 1.5 {
				t.Errorf("%s %s: expected a skewed start, got %.3fx", r.Series, r.Param, r.Value)
			}
		case strings.Contains(r.Series, "imbalance (after)"):
			checkedAfter++
			if r.Value > 1.1 {
				t.Errorf("%s %s: rebalance left imbalance %.3fx > 1.1x", r.Series, r.Param, r.Value)
			}
		}
	}
	if checkedBefore != 5 || checkedAfter != 5 {
		t.Fatalf("expected 5 before and 5 after measurements, got %d/%d", checkedBefore, checkedAfter)
	}
}

func TestViewCoarseningMessageReduction(t *testing.T) {
	// Acceptance floor of the pView algebra: pAlgorithm kernels over
	// coarsened composed views must issue at least 5x fewer messages than
	// element-wise traversal of the same views at the default aggregation
	// factor (16).  The element-wise path pays one request per element
	// (amortised 16x by aggregation, plus two messages per synchronous
	// read); the coarsened path walks native chunks in place and ships the
	// remote remainder as one grouped request per (chunk, owner) pair.
	cfg := Config{Locations: []int{4}, ElementsPerLocation: 2000, GraphScale: 6}
	rows := ViewsComposition(cfg)
	vals := map[string]float64{}
	for _, r := range rows {
		vals[r.Series] = r.Value
	}
	for _, kernel := range []struct{ elem, coar string }{
		{"p_for_each messages (elementwise)", "p_for_each messages (coarsened)"},
		{"axpy messages (elementwise)", "axpy messages (zip coarsened)"},
	} {
		elem, okE := vals[kernel.elem]
		coar, okC := vals[kernel.coar]
		if !okE || !okC {
			t.Fatalf("missing series %q/%q in %+v", kernel.elem, kernel.coar, rows)
		}
		if coar <= 0 {
			t.Fatalf("%s = %v, expected remote traffic", kernel.coar, coar)
		}
		if elem < 5*coar {
			t.Errorf("%s=%v vs %s=%v: want >= 5x fewer messages", kernel.elem, elem, kernel.coar, coar)
		}
	}
	// The native path of the composed views stays message-free.
	if v := vals["segmented zip reduce messages"]; v != 0 {
		t.Errorf("segmented zip reduce sent %v messages, want 0", v)
	}
	if v := vals["dot messages (zip native)"]; v != 0 {
		t.Errorf("zip-native dot sent %v messages, want 0", v)
	}
}

func TestMatrixMessageReduction(t *testing.T) {
	// Acceptance floor of the pMatrix promotion: the coarsened 2-D kernels
	// must issue at least 5x fewer messages than element-wise traversal of
	// the same matrices at the default aggregation factor.  The element-wise
	// paths pay one request per remote x / B element (two messages per
	// synchronous read); the blocked paths move x strips / B panels as one
	// grouped request per owner and flush partials as one bulk RMI per
	// destination per panel.
	cfg := Config{Locations: []int{4}, ElementsPerLocation: 2000, GraphScale: 6}
	rows := MatrixKernels(cfg)
	vals := map[string]float64{}
	for _, r := range rows {
		vals[r.Series] = r.Value
	}
	for _, kernel := range []struct{ elem, coar string }{
		{"matvec messages (elementwise)", "matvec messages (coarsened)"},
		{"matmul messages (elementwise)", "matmul messages (blocked)"},
	} {
		elem, okE := vals[kernel.elem]
		coar, okC := vals[kernel.coar]
		if !okE || !okC {
			t.Fatalf("missing series %q/%q in %+v", kernel.elem, kernel.coar, rows)
		}
		if coar <= 0 {
			t.Fatalf("%s = %v, expected remote traffic", kernel.coar, coar)
		}
		if elem < 5*coar {
			t.Errorf("%s=%v vs %s=%v: want >= 5x fewer messages", kernel.elem, elem, kernel.coar, coar)
		}
	}
	// The Jacobi row-halo exchange stays bounded: a handful of grouped
	// requests per sweep, not one per boundary element.
	if v, ok := vals["jacobi2d messages/sweep"]; !ok || v <= 0 {
		t.Errorf("jacobi2d messages/sweep = %v, expected halo traffic", v)
	}
}

func TestDirectoryRMIReduction(t *testing.T) {
	// Acceptance shape of the directory resolution cache: on the repeat
	// remote reads of the method-forwarding triangle the cached mode must
	// issue measurably fewer RMIs and messages than the pure forwarding
	// path.  The analytic expectation with 8 rounds is 1.6x for RMIs and
	// ~1.26x for messages (response accounting dilutes the message ratio);
	// the floors (1.4x RMIs, 1.15x messages) leave room for aggregation
	// noise while staying far above break-even.
	cfg := Config{Locations: []int{4}, ElementsPerLocation: 2000, GraphScale: 6}
	rows := DirectoryCachedAccess(cfg)
	want := map[string]float64{}
	for _, r := range rows {
		want[r.Series] = r.Value
	}
	rmiRed, ok := want["rmi reduction"]
	if !ok {
		t.Fatalf("missing rmi reduction row: %+v", rows)
	}
	if rmiRed < 1.4 {
		t.Errorf("cached repeat remote reads should cut RMIs by at least 1.4x, got %.2fx", rmiRed)
	}
	msgRed, ok := want["message reduction"]
	if !ok {
		t.Fatalf("missing message reduction row: %+v", rows)
	}
	if msgRed < 1.15 {
		t.Errorf("cached repeat remote reads should cut messages by at least 1.15x, got %.2fx", msgRed)
	}
	if want["rmis (cached)"] >= want["rmis (uncached)"] {
		t.Errorf("cached path issued %v RMIs, uncached %v — cache bought nothing",
			want["rmis (cached)"], want["rmis (uncached)"])
	}
}
