package bench

import (
	"fmt"

	"repro/internal/containers/parray"
	"repro/internal/core"
	"repro/internal/palgo"
	"repro/internal/runtime"
	"repro/internal/views"
)

// Fig27ArrayConstructor measures pArray construction time for growing input
// sizes on each machine size (paper Fig. 27).
func Fig27ArrayConstructor(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		for _, mult := range []int64{1, 2, 4} {
			n := cfg.ElementsPerLocation * int64(p) * mult
			ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
				d := timeSection(loc, func() {
					a := parray.New[int64](loc, n)
					_ = a
					loc.Fence()
				})
				out.add("constructor", d)
			})
			rows = append(rows, rowsFromSeries("fig27", fmt.Sprintf("P=%d N=%d", p, n), ts)...)
		}
	}
	return rows
}

// Fig28ArrayLocalMethods measures purely local pArray method invocations
// (each location touches only its own sub-domain) for several container
// sizes (paper Fig. 28).
func Fig28ArrayLocalMethods(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			doms := a.LocalSubdomains()
			out.add("set_element (local)", timeSection(loc, func() {
				for _, d := range doms {
					for i := d.Lo; i < d.Hi; i++ {
						a.Set(i, i)
					}
				}
				loc.Fence()
			}))
			out.add("get_element (local)", timeSection(loc, func() {
				var sink int64
				for _, d := range doms {
					for i := d.Lo; i < d.Hi; i++ {
						sink += a.Get(i)
					}
				}
				_ = sink
				loc.Fence()
			}))
			out.add("apply_set (local)", timeSection(loc, func() {
				for _, d := range doms {
					for i := d.Lo; i < d.Hi; i++ {
						a.ApplySet(i, func(x int64) int64 { return x + 1 })
					}
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig28", fmt.Sprintf("P=%d N=%d", p, n), ts)...)
	}
	return rows
}

// Fig29ArrayMethodsSizes measures set/get element cost as the container size
// grows, at the largest machine size (paper Fig. 29).
func Fig29ArrayMethodsSizes(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	for _, mult := range []int64{1, 2, 4, 8} {
		n := cfg.ElementsPerLocation * int64(p) * mult
		ops := cfg.ElementsPerLocation
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			r := loc.Rand()
			out.add("set_element", timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					a.Set(r.Int63n(n), k)
				}
				loc.Fence()
			}))
			out.add("get_element", timeSection(loc, func() {
				var sink int64
				for k := int64(0); k < ops; k++ {
					sink += a.Get(r.Int63n(n))
				}
				_ = sink
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig29", fmt.Sprintf("P=%d N=%d", p, n), ts)...)
	}
	return rows
}

// Fig30ArraySyncAsyncSplit compares the three element-access flavours —
// asynchronous set_element, synchronous get_element and split-phase
// get_element — on an all-remote access pattern (paper Fig. 30).
func Fig30ArraySyncAsyncSplit(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // the comparison needs remote accesses
		}
		n := cfg.ElementsPerLocation * int64(p)
		ops := cfg.ElementsPerLocation
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			// Remote indices: the block of the next location.
			next := (loc.ID() + 1) % loc.NumLocations()
			base := int64(next) * (n / int64(loc.NumLocations()))
			out.add("set_element (async)", timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					a.Set(base+k%cfg.ElementsPerLocation, k)
				}
				loc.Fence()
			}))
			out.add("get_element (sync)", timeSection(loc, func() {
				var sink int64
				for k := int64(0); k < ops; k++ {
					sink += a.Get(base + k%cfg.ElementsPerLocation)
				}
				_ = sink
				loc.Fence()
			}))
			out.add("split_phase_get_element", timeSection(loc, func() {
				const window = 64
				futs := make([]*runtime.FutureOf[int64], 0, window)
				var sink int64
				for k := int64(0); k < ops; k++ {
					futs = append(futs, a.GetSplit(base+k%cfg.ElementsPerLocation))
					if len(futs) == window {
						for _, f := range futs {
							sink += f.Get()
						}
						futs = futs[:0]
					}
				}
				for _, f := range futs {
					sink += f.Get()
				}
				_ = sink
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig30", fmt.Sprintf("P=%d ops/loc=%d", p, ops), ts)...)
	}
	return rows
}

// Fig31ArrayRemoteFraction measures element methods as the fraction of
// remote invocations grows from 0% to 100% (paper Fig. 31).
func Fig31ArrayRemoteFraction(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	if p == 1 {
		return rows
	}
	n := cfg.ElementsPerLocation * int64(p)
	ops := cfg.ElementsPerLocation
	for _, pct := range []int{0, 25, 50, 75, 100} {
		pct := pct
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			doms := a.LocalSubdomains()
			local := doms[0]
			next := (loc.ID() + 1) % loc.NumLocations()
			remoteBase := int64(next) * (n / int64(loc.NumLocations()))
			r := loc.Rand()
			out.add("set_element", timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					if r.Intn(100) < pct {
						a.Set(remoteBase+k%local.Size(), k)
					} else {
						a.Set(local.Lo+k%local.Size(), k)
					}
				}
				loc.Fence()
			}))
			out.add("get_element", timeSection(loc, func() {
				var sink int64
				for k := int64(0); k < ops; k++ {
					if r.Intn(100) < pct {
						sink += a.Get(remoteBase + k%local.Size())
					} else {
						sink += a.Get(local.Lo + k%local.Size())
					}
				}
				_ = sink
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig31", fmt.Sprintf("P=%d remote=%d%%", p, pct), ts)...)
	}
	return rows
}

// Fig32ArrayLocalRemote measures a fixed mixed (10% remote) workload as the
// container size grows (paper Fig. 32).
func Fig32ArrayLocalRemote(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	for _, mult := range []int64{1, 2, 4} {
		n := cfg.ElementsPerLocation * int64(p) * mult
		ops := cfg.ElementsPerLocation
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			r := loc.Rand()
			doms := a.LocalSubdomains()
			local := doms[0]
			out.add("mixed set/get (10% remote)", timeSection(loc, func() {
				var sink int64
				for k := int64(0); k < ops; k++ {
					if r.Intn(100) < 10 {
						sink += a.Get(r.Int63n(n))
					} else {
						a.Set(local.Lo+k%local.Size(), k)
					}
				}
				_ = sink
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig32", fmt.Sprintf("P=%d N=%d", p, n), ts)...)
	}
	return rows
}

// Fig33ArrayAlgorithms runs the generic pAlgorithms (p_generate, p_for_each,
// p_accumulate) on a pArray in a weak-scaling sweep (paper Fig. 33), over
// both the native and the balanced view (the native view is the paper's
// fast path).
func Fig33ArrayAlgorithms(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			nat := views.NewArrayNative(a)
			bal := views.NewBalanced[int64](nat)
			out.add("p_generate (native view)", timeSection(loc, func() {
				palgo.Generate(loc, nat, func(i int64) int64 { return i })
			}))
			out.add("p_for_each (native view)", timeSection(loc, func() {
				palgo.TransformInPlace(loc, nat, func(_ int64, x int64) int64 { return x + 1 })
			}))
			out.add("p_accumulate (native view)", timeSection(loc, func() {
				palgo.Accumulate(loc, nat, 0, func(a, b int64) int64 { return a + b })
			}))
			out.add("p_accumulate (balanced view)", timeSection(loc, func() {
				palgo.Accumulate(loc, bal, 0, func(a, b int64) int64 { return a + b })
			}))
		})
		rows = append(rows, rowsFromSeries("fig33", fmt.Sprintf("P=%d N/P=%d", p, cfg.ElementsPerLocation), ts)...)
	}
	return rows
}

// Fig34ArrayMemory reports the pArray data and metadata footprint for
// several container sizes and numbers of bContainers, reproducing the
// memory-consumption study (Fig. 34 and Tables XXII/XXIII).
func Fig34ArrayMemory(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	for _, mult := range []int64{1, 4} {
		n := cfg.ElementsPerLocation * int64(p) * mult
		var usage core.MemoryUsage
		m := machine(cfg, p)
		m.Execute(func(loc *runtime.Location) {
			a := parray.New[int64](loc, n)
			u := a.MemorySize()
			if loc.ID() == 0 {
				usage = u
			}
			loc.Fence()
		})
		param := fmt.Sprintf("P=%d N=%d", p, n)
		rows = append(rows,
			Row{Experiment: "fig34", Series: "data bytes", Param: param, Value: float64(usage.Data), Unit: "bytes"},
			Row{Experiment: "fig34", Series: "metadata bytes", Param: param, Value: float64(usage.Metadata), Unit: "bytes"},
			Row{Experiment: "fig34", Series: "metadata fraction", Param: param, Value: float64(usage.Metadata) / float64(usage.Total()), Unit: "ratio"},
		)
	}
	return rows
}

// AblationAggregation compares remote asynchronous writes with RMI
// aggregation disabled and enabled, the RTS design choice called out in
// Chapter III.B.
func AblationAggregation(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	if p == 1 {
		return rows
	}
	n := cfg.ElementsPerLocation * int64(p)
	ops := cfg.ElementsPerLocation
	for _, agg := range []int{1, 16, 64} {
		rcfg := runtime.DefaultConfig()
		rcfg.Aggregation = agg
		rcfg.Transport = cfg.Transport
		var elapsed float64
		var msgs int64
		m := runtime.NewMachine(p, rcfg)
		m.Execute(func(loc *runtime.Location) {
			a := parray.New[int64](loc, n)
			next := (loc.ID() + 1) % loc.NumLocations()
			base := int64(next) * (n / int64(loc.NumLocations()))
			d := timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					a.Set(base+k%cfg.ElementsPerLocation, k)
				}
				loc.Fence()
			})
			if loc.ID() == 0 {
				elapsed = ms(d)
			}
			loc.Fence()
		})
		msgs = m.Stats().MessagesSent
		param := fmt.Sprintf("P=%d aggregation=%d", p, agg)
		rows = append(rows,
			Row{Experiment: "ablation-aggregation", Series: "remote async writes", Param: param, Value: elapsed, Unit: "ms"},
			Row{Experiment: "ablation-aggregation", Series: "messages", Param: param, Value: float64(msgs), Unit: "msgs"},
		)
	}
	return rows
}

// AblationLocking compares the thread-safety manager policies (per
// bContainer, per location, none) on a local update workload, the Chapter VI
// customisation knob.
func AblationLocking(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	n := cfg.ElementsPerLocation * int64(p)
	policies := []struct {
		name   string
		policy core.LockPolicy
	}{
		{"per-bContainer locking", core.PolicyPerBContainer},
		{"per-location locking", core.PolicyPerLocation},
		{"no locking", core.PolicyNone},
	}
	for _, pol := range policies {
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n, parray.WithTraits(core.Traits{Locking: pol.policy}))
			doms := a.LocalSubdomains()
			out.add(pol.name, timeSection(loc, func() {
				for _, d := range doms {
					for i := d.Lo; i < d.Hi; i++ {
						a.ApplySet(i, func(x int64) int64 { return x + 1 })
					}
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("ablation-locking", fmt.Sprintf("P=%d N=%d", p, n), ts)...)
	}
	return rows
}
