package bench

import (
	"fmt"
	"testing"

	"repro/internal/runtime"
	"repro/internal/transport"
)

// equivalenceExperiments are the pinned experiments of the cross-transport
// suite: every counter row they report must be identical over every
// transport.  They cover the six communication-heavy subsystems (bulk
// batching, the distributed directory, redistribution, the view algebra,
// the 2-D matrix kernels and the compressed storage representations).
var equivalenceExperiments = []string{"bulk", "directory", "redist", "views", "matrix", "sparse"}

// counterUnits are the row units that count logical communication events.
// They are incremented at send/execute time, independent of how frames move,
// so they must not change with the transport.  Time-derived rows ("ms",
// "ops/s" and the speedup ratios in "x") legitimately vary run to run.
var counterUnits = map[string]bool{
	"msgs":  true,
	"rmis":  true,
	"RMIs":  true,
	"bytes": true,
	"ops":   true,
}

// counterRows filters rows to the deterministic counter series, in report
// order.
func counterRows(rows []Row) []Row {
	var out []Row
	for _, r := range SortRows(rows) {
		if counterUnits[r.Unit] {
			out = append(out, r)
		}
	}
	return out
}

// rowKey renders a row for byte-exact comparison across transports.
func rowKey(r Row) string {
	return fmt.Sprintf("%s|%s|%s|%v|%s", r.Experiment, r.Series, r.Param, r.Value, r.Unit)
}

// equivalenceConfig is the pinned scale of the suite: small enough for the
// socket transports, large enough that every experiment crosses location
// boundaries.
func equivalenceConfig(factory runtime.TransportFactory) Config {
	return Config{
		Locations:           []int{2, 4},
		ElementsPerLocation: 1000,
		GraphScale:          6,
		Transport:           factory,
	}
}

// runCounterRows executes one pinned experiment over the given transport and
// returns its counter rows.
func runCounterRows(t *testing.T, id string, factory runtime.TransportFactory) []Row {
	t.Helper()
	exp, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q is not registered", id)
	}
	return counterRows(exp.Run(equivalenceConfig(factory)))
}

// TestCrossTransportEquivalence re-runs the pinned experiments over the
// in-process transport, the TCP loopback wire and the fault-injecting chaos
// wire, asserting that every counter row is identical: same series, same
// parameters, same values, byte for byte.  This is the suite's core claim —
// the wire may delay, duplicate or drop frames, but the logical
// communication structure of an experiment must not move at all.
func TestCrossTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-transport equivalence is not a -short test")
	}
	alternatives := []struct {
		name    string
		factory runtime.TransportFactory
	}{
		{"tcp-loopback", runtime.TCPLoopbackTransport},
		{"chaos", runtime.ChaosTransport(transport.DefaultChaosConfig())},
	}
	for _, id := range equivalenceExperiments {
		t.Run(id, func(t *testing.T) {
			baseline := runCounterRows(t, id, runtime.InprocTransport)
			if len(baseline) == 0 {
				t.Fatalf("experiment %s reports no counter rows; the equivalence suite would assert nothing", id)
			}
			for _, alt := range alternatives {
				t.Run(alt.name, func(t *testing.T) {
					got := runCounterRows(t, id, alt.factory)
					if len(got) != len(baseline) {
						t.Fatalf("%d counter rows over %s, %d over inproc", len(got), alt.name, len(baseline))
					}
					for i := range baseline {
						if rowKey(got[i]) != rowKey(baseline[i]) {
							t.Errorf("row %d diverges:\n  inproc: %s\n  %s: %s", i, rowKey(baseline[i]), alt.name, rowKey(got[i]))
						}
					}
				})
			}
		})
	}
}

// TestTransportThreadedThroughBenchConfig pins that Config.Transport really
// reaches the experiment machines: a counting factory must be invoked once
// per machine Execute of the experiment.
func TestTransportThreadedThroughBenchConfig(t *testing.T) {
	builds := 0
	cfg := equivalenceConfig(func(m *runtime.Machine) runtime.Transport {
		builds++
		return runtime.InprocTransport(m)
	})
	cfg.Locations = []int{2}
	exp, _ := Find("bulk")
	exp.Run(cfg)
	if builds == 0 {
		t.Fatal("Config.Transport factory never invoked by the experiment")
	}
}
