package bench

import (
	"fmt"

	"repro/internal/composed"
	"repro/internal/containers/passoc"
	"repro/internal/containers/pmatrix"
	"repro/internal/domain"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// Fig59MapReduceWordCount measures the MapReduce word count over a synthetic
// Zipf-distributed corpus that stands in for the paper's Wikipedia dump
// (paper Fig. 59), weak-scaled with a fixed corpus size per location.
func Fig59MapReduceWordCount(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		wordsPerLoc := int(cfg.ElementsPerLocation)
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			corpus := workload.Zipf(loc, wordsPerLoc, 5000, 1.2)
			counts := passoc.NewHashMap[string, int64](loc, partition.StringHash)
			out.add("map_reduce word count", timeSection(loc, func() {
				palgo.WordCount(loc, corpus, counts)
			}))
		})
		rows = append(rows, rowsFromSeries("fig59", fmt.Sprintf("P=%d words/loc=%d", p, wordsPerLoc), ts)...)
	}
	return rows
}

// Fig60AssociativeAlgos measures inserts, finds and a map-reduce style
// aggregation over associative pContainers (pHashMap and the sorted pMap),
// reproducing the generic-algorithm scalability study of Fig. 60.
func Fig60AssociativeAlgos(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		keysPerLoc := cfg.ElementsPerLocation
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			h := passoc.NewHashMap[int64, int64](loc, partition.Int64Hash)
			base := int64(loc.ID()) * keysPerLoc
			out.add("pHashMap insert", timeSection(loc, func() {
				for k := int64(0); k < keysPerLoc; k++ {
					h.Insert(base+k, k)
				}
				loc.Fence()
			}))
			out.add("pHashMap find", timeSection(loc, func() {
				r := loc.Rand()
				total := keysPerLoc * int64(loc.NumLocations())
				for k := int64(0); k < keysPerLoc; k++ {
					h.Find(r.Int63n(total))
				}
				loc.Fence()
			}))
			out.add("pHashMap p_for_each (local ranges)", timeSection(loc, func() {
				var sum int64
				h.LocalRange(func(_ int64, v int64) bool { sum += v; return true })
				runtime.AllReduceSum(loc, sum)
				loc.Fence()
			}))
			// Sorted pMap with value-based partition.
			total := keysPerLoc * int64(loc.NumLocations())
			m := passoc.NewMap[int64, int64](loc, func(a, b int64) bool { return a < b },
				passoc.UniformInt64Splitters(0, total, loc.NumLocations()))
			out.add("pMap insert (value-partitioned)", timeSection(loc, func() {
				for k := int64(0); k < keysPerLoc; k++ {
					m.Insert(base+k, k)
				}
				loc.Fence()
			}))
			out.add("pMap find", timeSection(loc, func() {
				r := loc.Rand()
				for k := int64(0); k < keysPerLoc; k++ {
					m.Find(r.Int63n(total))
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig60", fmt.Sprintf("P=%d keys/loc=%d", p, keysPerLoc), ts)...)
	}
	return rows
}

// Fig62Composition compares three ways to compute per-row minima of a
// rows×cols value set (paper Fig. 62): a pArray of pArrays, a pList of
// pArrays (both using nested pAlgorithm invocations), and a row-blocked
// pMatrix whose rows are local, which is the paper's winner.
func Fig62Composition(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	nrows := int64(32)
	ncols := cfg.ElementsPerLocation / 4
	sizes := make([]int64, nrows)
	for i := range sizes {
		sizes[i] = ncols
	}
	minOp := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	param := fmt.Sprintf("P=%d rows=%d cols=%d", p, nrows, ncols)

	ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
		apa := composed.NewArrayOfArrays[int64](loc, sizes)
		apa.NestedFill(func(o, i int64) int64 { return o*1_000_000 + i })
		out.add("pArray<pArray> row minima", timeSection(loc, func() {
			apa.NestedReduce(minOp)
		}))
	})
	rows = append(rows, rowsFromSeries("fig62", param, ts)...)

	ts = runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
		lpa := composed.NewListOfArrays[int64](loc, sizes)
		lpa.NestedFill(func(o, i int64) int64 { return o*1_000_000 + i })
		out.add("pList<pArray> row minima", timeSection(loc, func() {
			lpa.NestedReduce(minOp)
		}))
	})
	rows = append(rows, rowsFromSeries("fig62", param, ts)...)

	ts = runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
		m := pmatrix.New[int64](loc, nrows, ncols, pmatrix.WithLayout(partition.RowBlocked))
		m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*1_000_000 + g.Col })
		loc.Fence()
		out.add("pMatrix row minima (rows local)", timeSection(loc, func() {
			mins := make(map[int64]int64)
			m.LocalRowRange(func(row int64, _ int64, vals []int64) {
				best := vals[0]
				for _, v := range vals[1:] {
					if v < best {
						best = v
					}
				}
				if cur, ok := mins[row]; !ok || best < cur {
					mins[row] = best
				}
			})
			loc.Fence()
		}))
	})
	rows = append(rows, rowsFromSeries("fig62", param, ts)...)
	return rows
}
