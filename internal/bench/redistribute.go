package bench

import (
	"fmt"

	"repro/internal/containers/parray"
	"repro/internal/containers/passoc"
	"repro/internal/containers/pgraph"
	"repro/internal/containers/plist"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// RedistributeRebalance exercises the shared redistribution subsystem
// (Chapter V, Section G) across the container families that implement it:
// each scenario skews a container's distribution so one location holds at
// least half of the elements, asks the load-balance advisor for a balanced
// proposal, redistributes, and reports the imbalance factor before and
// after the migration together with the RMI and simulated-byte traffic the
// migration cost (from Machine.Stats()).
func RedistributeRebalance(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		rows = append(rows, redistArray(cfg, p, n)...)
		rows = append(rows, redistVector(cfg, p, n)...)
		rows = append(rows, redistHashMap(cfg, p, n)...)
		rows = append(rows, redistGraph(cfg, p, n)...)
		rows = append(rows, redistList(cfg, p, n)...)
	}
	return rows
}

// skewedSizes gives the first location about three quarters of the n
// elements and splits the rest evenly, the skew the rebalance scenarios
// start from.
func skewedSizes(n int64, p int) []int64 {
	sizes := make([]int64, p)
	if p == 1 {
		sizes[0] = n
		return sizes
	}
	rest := n / 4
	each := rest / int64(p-1)
	sizes[0] = n - each*int64(p-1)
	for i := 1; i < p; i++ {
		sizes[i] = each
	}
	return sizes
}

// redistReport converts one scenario's measurements into report rows.
func redistReport(family string, p int, n int64, before, after float64, rmis, bytes int64) []Row {
	param := fmt.Sprintf("P=%d N=%d", p, n)
	return []Row{
		{Experiment: "redist", Series: family + " imbalance (before)", Param: param, Value: before, Unit: "x"},
		{Experiment: "redist", Series: family + " imbalance (after)", Param: param, Value: after, Unit: "x"},
		{Experiment: "redist", Series: family + " migration traffic", Param: param, Value: float64(rmis), Unit: "RMIs"},
		{Experiment: "redist", Series: family + " migration volume", Param: param, Value: float64(bytes), Unit: "bytes"},
	}
}

// redistScenario runs one skew→rebalance scenario SPMD and gathers location
// 0's measurements (written only by the location-0 goroutine and read after
// Execute joins every goroutine).  body returns the imbalance factor before
// and after its rebalance step; the migration traffic is the stat delta
// around body's rebalance, which body brackets with the snapshot callback.
// Each location snapshots its own share and the deltas are summed with a
// collective — the scheme that makes the delta machine-wide on EVERY
// transport (see measuredRun): under the multi-process transport a location
// can only read its own process's counters mid-run.
func redistScenario(cfg Config, p int, body func(loc *runtime.Location, snapshot func()) (before, after float64)) (before, after float64, rmis, bytes int64) {
	m := machine(cfg, p)
	m.Execute(func(loc *runtime.Location) {
		var pre runtime.Stats
		b, a := body(loc, func() {
			pre = loc.Stats()
			loc.Barrier()
		})
		local := loc.Stats().Sub(pre)
		total := runtime.AllReduceT(loc, local, runtime.Stats.Add)
		if loc.ID() == 0 {
			before, after = b, a
			rmis = total.RMIsSent
			bytes = total.BytesSimulated
		}
	})
	return before, after, rmis, bytes
}

func redistArray(cfg Config, p int, n int64) []Row {
	before, after, rmis, bytes := redistScenario(cfg, p, func(loc *runtime.Location, snapshot func()) (float64, float64) {
		part, err := partition.NewExplicit(domain.NewRange1D(0, n), skewedSizes(n, p))
		if err != nil {
			panic(err)
		}
		a := parray.New[int64](loc, n,
			parray.WithPartition(part),
			parray.WithMapper(partition.NewBlockedMapper(p, p)))
		a.UpdateLocal(func(gid int64, _ int64) int64 { return gid })
		loc.Fence()
		b := partition.CollectLoad(loc, a.LocalSize()).Imbalance()
		snapshot()
		a.Rebalance()
		return b, partition.CollectLoad(loc, a.LocalSize()).Imbalance()
	})
	return redistReport("pArray", p, n, before, after, rmis, bytes)
}

func redistVector(cfg Config, p int, n int64) []Row {
	before, after, rmis, bytes := redistScenario(cfg, p, func(loc *runtime.Location, snapshot func()) (float64, float64) {
		v := pvector.New[int64](loc, n)
		v.LocalUpdate(func(gid int64, _ int64) int64 { return gid })
		loc.Fence()
		// Skew: move everything but the tail blocks' minimum onto
		// location 0 with an explicit partition, then rebalance back.
		part, err := partition.NewExplicit(domain.NewRange1D(0, n), skewedSizes(n, p))
		if err != nil {
			panic(err)
		}
		v.Redistribute(part, partition.NewBlockedMapper(p, p))
		b := partition.CollectLoad(loc, v.LocalSize()).Imbalance()
		snapshot()
		v.Rebalance()
		return b, partition.CollectLoad(loc, v.LocalSize()).Imbalance()
	})
	return redistReport("pVector", p, n, before, after, rmis, bytes)
}

func redistHashMap(cfg Config, p int, n int64) []Row {
	before, after, rmis, bytes := redistScenario(cfg, p, func(loc *runtime.Location, snapshot func()) (float64, float64) {
		h := passoc.NewHashMap[int64, int64](loc, partition.Int64Hash,
			passoc.HashOption{SubdomainsPerLocation: 4})
		// Each location inserts its share of the keys.
		for k := int64(loc.ID()); k < n; k += int64(p) {
			h.Insert(k, k*2)
		}
		loc.Fence()
		// Skew: remap every hash bucket onto location 0.
		h.Redistribute(h.Partition(), partition.NewArbitraryMapper(make([]int, h.Partition().NumSubdomains()), p))
		b := partition.CollectLoad(loc, h.LocalSize()).Imbalance()
		snapshot()
		h.Rebalance()
		return b, partition.CollectLoad(loc, h.LocalSize()).Imbalance()
	})
	return redistReport("pHashMap", p, n, before, after, rmis, bytes)
}

func redistList(cfg Config, p int, n int64) []Row {
	// Keep the list smaller than the flat containers: per-element directory
	// publication makes construction communication-heavy.
	nl := n / 4
	if nl < int64(p) {
		nl = int64(p)
	}
	before, after, rmis, bytes := redistScenario(cfg, p, func(loc *runtime.Location, snapshot func()) (float64, float64) {
		l := plist.New[int64](loc, plist.WithDirectory())
		// Skew: location 0 pushes (almost) everything, the others a token
		// share — the shape PushAnywhere produces under one hot producer.
		sizes := skewedSizes(nl, p)
		for i := int64(0); i < sizes[loc.ID()]; i++ {
			l.PushAnywhere(int64(loc.ID())*nl + i)
		}
		loc.Fence()
		b := partition.CollectLoad(loc, l.LocalSize()).Imbalance()
		snapshot()
		l.Rebalance()
		return b, partition.CollectLoad(loc, l.LocalSize()).Imbalance()
	})
	return redistReport("pList", p, nl, before, after, rmis, bytes)
}

func redistGraph(cfg Config, p int, n int64) []Row {
	// Keep the graph an order of magnitude smaller than the flat
	// containers: every vertex ships its adjacency too.
	nv := n / 8
	if nv < int64(p) {
		nv = int64(p)
	}
	before, after, rmis, bytes := redistScenario(cfg, p, func(loc *runtime.Location, snapshot func()) (float64, float64) {
		g := pgraph.New[int64, int64](loc, nv)
		// A ring plus a chord per vertex, striped over the locations.
		for vd := int64(loc.ID()); vd < nv; vd += int64(p) {
			g.AddEdgeAsync(vd, (vd+1)%nv, vd)
			g.AddEdgeAsync(vd, (vd*7+3)%nv, vd)
		}
		loc.Fence()
		// Skew the vertex set onto location 0.
		part, err := partition.NewExplicit(domain.NewRange1D(0, nv), skewedSizes(nv, p))
		if err != nil {
			panic(err)
		}
		g.Redistribute(part, partition.NewBlockedMapper(p, p))
		b := partition.CollectLoad(loc, g.LocalSize()).Imbalance()
		snapshot()
		g.RebalanceVertices()
		return b, partition.CollectLoad(loc, g.LocalSize()).Imbalance()
	})
	return redistReport("pGraph", p, nv, before, after, rmis, bytes)
}
