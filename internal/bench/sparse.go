package bench

import (
	"fmt"

	"repro/internal/containers/parray"
	"repro/internal/containers/passoc"
	"repro/internal/containers/pmatrix"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// SparseStorage compares the dense and compressed storage representations
// behind the same container interfaces: a flag pArray vs the adaptive
// array/bitmap CompressedSet over one key universe, and a dense pMatrix vs
// the CSR SparseMatrix over one nonzero population.  At each density it
// reports the resident footprint of both representations and the traffic a
// full migration costs (every sub-domain moves: the set rotates its mapper
// by one location, the matrix switches row-blocked → checkerboard), so the
// regression gate pins both the in-memory and the on-the-wire effect of the
// representation choice.  All rows are deterministic counters, identical on
// every transport: construction writes only locally owned elements and the
// migrations are measured with per-location stat deltas folded collectively.
func SparseStorage(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // migration traffic needs somewhere to go
		}
		for _, stride := range []int64{100, 20, 5} {
			rows = append(rows, sparseSetRows(cfg, p, stride)...)
			rows = append(rows, sparseMatrixRows(cfg, p, stride)...)
		}
	}
	return rows
}

// sparseCosts is one representation pair's measurements: resident bytes for
// both representations and the machine-wide stat deltas of their migrations.
type sparseCosts struct {
	denseRes, compRes int64
	dense, comp       runtime.Stats
}

// sparseReport renders one pair's measurements as report rows.  The
// reduction rows are ratios of deterministic integer counters, so they are
// exact and the gate can pin the compression factor itself.
func sparseReport(family, param string, c sparseCosts) []Row {
	rows := []Row{
		{Experiment: "sparse", Series: family + " resident (dense)", Param: param, Value: float64(c.denseRes), Unit: "bytes"},
		{Experiment: "sparse", Series: family + " resident (compressed)", Param: param, Value: float64(c.compRes), Unit: "bytes"},
		{Experiment: "sparse", Series: family + " migration bytes (dense)", Param: param, Value: float64(c.dense.BytesSimulated), Unit: "bytes"},
		{Experiment: "sparse", Series: family + " migration bytes (compressed)", Param: param, Value: float64(c.comp.BytesSimulated), Unit: "bytes"},
		{Experiment: "sparse", Series: family + " migration rmis (dense)", Param: param, Value: float64(c.dense.RMIsSent), Unit: "rmis"},
		{Experiment: "sparse", Series: family + " migration rmis (compressed)", Param: param, Value: float64(c.comp.RMIsSent), Unit: "rmis"},
		{Experiment: "sparse", Series: family + " migration messages (dense)", Param: param, Value: float64(c.dense.MessagesSent), Unit: "msgs"},
		{Experiment: "sparse", Series: family + " migration messages (compressed)", Param: param, Value: float64(c.comp.MessagesSent), Unit: "msgs"},
	}
	if c.compRes > 0 {
		rows = append(rows, Row{Experiment: "sparse", Series: family + " resident reduction", Param: param,
			Value: float64(c.denseRes) / float64(c.compRes), Unit: "x"})
	}
	if c.comp.BytesSimulated > 0 {
		rows = append(rows, Row{Experiment: "sparse", Series: family + " migration byte reduction", Param: param,
			Value: float64(c.dense.BytesSimulated) / float64(c.comp.BytesSimulated), Unit: "x"})
	}
	return rows
}

// sparseMeasure wraps one collective migration in the per-location stat
// delta fold that is machine-wide on every transport (see measuredRun).
func sparseMeasure(loc *runtime.Location, body func()) runtime.Stats {
	pre := loc.Stats()
	loc.Barrier()
	body()
	return runtime.AllReduceT(loc, loc.Stats().Sub(pre), runtime.Stats.Add)
}

// rotatedMapper maps sub-domain i (blocked home: location i) to location
// i+1 mod p: every element of every sub-domain migrates.
func rotatedMapper(nsub, p int) *partition.ArbitraryMapper {
	rot := make([]int, nsub)
	for i := range rot {
		rot[i] = (i + 1) % p
	}
	return partition.NewArbitraryMapper(rot, p)
}

// sparseSetRows measures flag-pArray vs CompressedSet over a universe of n
// keys at membership density 1/stride.  Members are every stride-th key;
// each location inserts only the members it owns, so construction is
// communication-free and the measured deltas are pure migration traffic.
func sparseSetRows(cfg Config, p int, stride int64) []Row {
	// A multiple of the chunk population so the universe spans many chunks;
	// the flag array stores all n slots either way.
	n := cfg.ElementsPerLocation * int64(p) * 8
	var out sparseCosts
	m := machine(cfg, p)
	m.Execute(func(loc *runtime.Location) {
		a := parray.New[int64](loc, n)
		a.UpdateLocal(func(gid int64, _ int64) int64 {
			if gid%stride == 0 {
				return 1
			}
			return 0
		})
		s := passoc.NewCompressedSet(loc, n)
		for k := int64(0); k < n; k += stride {
			if s.Mapper().Map(s.Partition().Find(k).BCID) == loc.ID() {
				s.Insert(k)
			}
		}
		loc.Fence()
		denseRes := a.MemorySize().Total()
		compRes := s.MemorySize().Total()
		dStats := sparseMeasure(loc, func() {
			a.Redistribute(a.Partition(), rotatedMapper(a.Partition().NumSubdomains(), p))
		})
		cStats := sparseMeasure(loc, func() {
			s.Redistribute(s.Partition(), rotatedMapper(s.Partition().NumSubdomains(), p))
		})
		if loc.ID() == 0 {
			out = sparseCosts{denseRes: denseRes, compRes: compRes, dense: dStats, comp: cStats}
		}
	})
	param := fmt.Sprintf("P=%d N=%d density=%d%%", p, n, 100/stride)
	return sparseReport("set", param, out)
}

// sparseMatrixRows measures dense pMatrix vs CSR SparseMatrix over a dv×dv
// grid with a nonzero at every stride-th linear index.  Both start
// row-blocked and relayout to checkerboard: the dense matrix ships every
// element, the sparse one ships delta-compressed row fragments.
func sparseMatrixRows(cfg Config, p int, stride int64) []Row {
	dv := isqrt(cfg.ElementsPerLocation * int64(p))
	var out sparseCosts
	m := machine(cfg, p)
	m.Execute(func(loc *runtime.Location) {
		member := func(r, c int64) bool { return (r*dv+c)%stride == 0 }
		d := pmatrix.New[int64](loc, dv, dv)
		d.UpdateLocal(func(g domain.Index2D, _ int64) int64 {
			if member(g.Row, g.Col) {
				return g.Row + g.Col + 1
			}
			return 0
		})
		s := pmatrix.NewSparse[int64](loc, dv, dv)
		rs, cs := s.LocalBlocks()
		for b := range rs {
			for r := rs[b].Lo; r < rs[b].Hi; r++ {
				for c := cs[b].Lo; c < cs[b].Hi; c++ {
					if member(r, c) {
						s.SetLocal(r, c, r+c+1)
					}
				}
			}
		}
		loc.Fence()
		denseRes := d.MemorySize().Total()
		compRes := s.MemorySize().Total()
		dStats := sparseMeasure(loc, func() { d.Relayout(partition.Checkerboard, 0) })
		cStats := sparseMeasure(loc, func() { s.Relayout(partition.Checkerboard, 0) })
		if loc.ID() == 0 {
			out = sparseCosts{denseRes: denseRes, compRes: compRes, dense: dStats, comp: cStats}
		}
	})
	param := fmt.Sprintf("P=%d N=%d density=%d%%", p, dv*dv, 100/stride)
	return sparseReport("matrix", param, out)
}
