package bench

import (
	"fmt"

	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// MatrixKernels measures what the 2-D pMatrix subsystem buys over
// element-wise traversal on the kernels of the paper's matrix composition
// studies (Figs. 61/62 route through pMatrix): a matrix-vector product whose
// x strips and y partials move as grouped bulk requests vs one RMI per
// element, a panel-blocked matrix-matrix product vs a per-element triple
// loop, a 2-D Jacobi sweep whose boundary rows travel as one halo request
// per neighbour per sweep, and the row-blocked → checkerboard relayout
// traffic through the shared redistribution engine.  The RMI / message /
// byte series count requests, not time, so the CI regression gate pins them.
func MatrixKernels(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // the comparisons need remote traffic
		}
		n := cfg.ElementsPerLocation * int64(p)
		// Matrix-vector and Jacobi operate on a dv×dv matrix (≈ n elements);
		// the matrix-matrix comparison is cubic in its dimension, so it runs
		// at dm ≈ n^(1/3) to keep the per-element baseline tractable.
		dv := isqrt(n)
		dm := icbrt(n)
		if dm < 8 {
			dm = 8
		}
		param := fmt.Sprintf("P=%d N=%d", p, n)
		add := func(series string, value float64, unit string) {
			rows = append(rows, Row{Experiment: "matrix", Series: series, Param: param, Value: value, Unit: unit})
		}

		// --- MatVec: y = A·x over a row-blocked dv×dv matrix.  The
		// element-wise path pays one request per remote x element; the
		// coarsened path reads each block's x strip as one grouped request
		// per owner and flushes row partials as one CombineBulk per owner.
		aElem := func(r, c int64) int64 { return (r+c)%7 + 1 }
		xElem := func(c int64) int64 { return c%5 + 1 }
		matvecSetup := func(loc *runtime.Location) (*pmatrix.Matrix[int64], *pvector.Vector[int64], *pvector.Vector[int64]) {
			a := pmatrix.New[int64](loc, dv, dv)
			a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return aElem(g.Row, g.Col) })
			x := pvector.New[int64](loc, dv)
			x.LocalUpdate(func(gid int64, _ int64) int64 { return xElem(gid) })
			y := pvector.New[int64](loc, dv)
			loc.Fence()
			return a, x, y
		}
		mvElemMS, mvElemStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			a, x, y := matvecSetup(loc)
			return func() {
				rs, cs := a.LocalBlocks()
				for b := range rs {
					for r := rs[b].Lo; r < rs[b].Hi; r++ {
						var acc int64
						for c := cs[b].Lo; c < cs[b].Hi; c++ {
							acc += a.Get(r, c) * x.Get(c)
						}
						y.Set(r, acc)
					}
				}
				loc.Fence()
			}
		})
		// Correctness of the kernels against sequential references is pinned
		// by the palgo unit tests; the measured bodies stay check-free so
		// the baseline counters record kernel traffic only.
		mvCoarMS, mvCoarStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			a, x, y := matvecSetup(loc)
			return func() {
				palgo.MatVec[int64](loc, a, x, y)
			}
		})
		add("matvec (elementwise)", mvElemMS, "ms")
		add("matvec (coarsened)", mvCoarMS, "ms")
		add("matvec rmis (elementwise)", float64(mvElemStats.RMIsSent), "rmis")
		add("matvec rmis (coarsened)", float64(mvCoarStats.RMIsSent), "rmis")
		add("matvec messages (elementwise)", float64(mvElemStats.MessagesSent), "msgs")
		add("matvec messages (coarsened)", float64(mvCoarStats.MessagesSent), "msgs")
		add("matvec bytes (elementwise)", float64(mvElemStats.BytesSimulated), "bytes")
		add("matvec bytes (coarsened)", float64(mvCoarStats.BytesSimulated), "bytes")
		if mvCoarStats.MessagesSent > 0 {
			add("matvec message reduction", float64(mvElemStats.MessagesSent)/float64(mvCoarStats.MessagesSent), "x")
		}

		// --- MatMul: C = A·B over row-blocked dm×dm matrices.  The blocked
		// schedule fetches each panel's B strip once per owner and flushes C
		// contributions as one bulk RMI per destination per panel; the
		// element-wise triple loop pays one synchronous request per remote
		// B element.
		bElem := func(r, c int64) int64 { return r%3 + c%4 + 1 }
		matmulSetup := func(loc *runtime.Location) (*pmatrix.Matrix[int64], *pmatrix.Matrix[int64], *pmatrix.Matrix[int64]) {
			a := pmatrix.New[int64](loc, dm, dm)
			a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return aElem(g.Row, g.Col) })
			b := pmatrix.New[int64](loc, dm, dm)
			b.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return bElem(g.Row, g.Col) })
			c := pmatrix.New[int64](loc, dm, dm)
			loc.Fence()
			return a, b, c
		}
		mmElemMS, mmElemStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			a, b, c := matmulSetup(loc)
			return func() {
				rs, cs := a.LocalBlocks()
				for blk := range rs {
					for r := rs[blk].Lo; r < rs[blk].Hi; r++ {
						for j := int64(0); j < dm; j++ {
							var acc int64
							for k := cs[blk].Lo; k < cs[blk].Hi; k++ {
								acc += a.Get(r, k) * b.Get(k, j)
							}
							c.Set(r, j, acc)
						}
					}
				}
				loc.Fence()
			}
		})
		mmBlockMS, mmBlockStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			a, b, c := matmulSetup(loc)
			return func() {
				palgo.MatMul[int64](loc, a, b, c)
			}
		})
		add("matmul (elementwise)", mmElemMS, "ms")
		add("matmul (blocked)", mmBlockMS, "ms")
		add("matmul rmis (elementwise)", float64(mmElemStats.RMIsSent), "rmis")
		add("matmul rmis (blocked)", float64(mmBlockStats.RMIsSent), "rmis")
		add("matmul messages (elementwise)", float64(mmElemStats.MessagesSent), "msgs")
		add("matmul messages (blocked)", float64(mmBlockStats.MessagesSent), "msgs")
		add("matmul bytes (elementwise)", float64(mmElemStats.BytesSimulated), "bytes")
		add("matmul bytes (blocked)", float64(mmBlockStats.BytesSimulated), "bytes")
		if mmBlockStats.MessagesSent > 0 {
			add("matmul message reduction", float64(mmElemStats.MessagesSent)/float64(mmBlockStats.MessagesSent), "x")
		}

		// --- 2-D Jacobi over the row-halo face: each location's boundary
		// rows travel as one grouped request per neighbour per sweep.
		const sweeps = 4
		jacMS, jacStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			cur := pmatrix.New[float64](loc, dv, dv)
			next := pmatrix.New[float64](loc, dv, dv)
			init := func(g domain.Index2D, _ float64) float64 {
				if g.Row == 0 {
					return 100
				}
				return 0
			}
			cur.UpdateLocal(init)
			next.UpdateLocal(init)
			loc.Fence()
			return func() {
				palgo.Jacobi2D(loc, cur, next, sweeps)
			}
		})
		add("jacobi2d (row halo)", jacMS, "ms")
		add("jacobi2d messages/sweep", float64(jacStats.MessagesSent)/sweeps, "msgs")
		add("jacobi2d rmis/sweep", float64(jacStats.RMIsSent)/sweeps, "rmis")
		add("jacobi2d bytes/sweep", float64(jacStats.BytesSimulated)/sweeps, "bytes")

		// --- Relayout: row-blocked → checkerboard through the shared
		// redistribution engine (the migration traffic is the deterministic
		// cost of the 2-D data-placement switch).
		relayoutMS, relayoutStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			m := pmatrix.New[int64](loc, dv, dv)
			m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*dv + g.Col })
			loc.Fence()
			return func() {
				m.Relayout(partition.Checkerboard, 0)
			}
		})
		add("relayout row->checkerboard", relayoutMS, "ms")
		add("relayout rmis", float64(relayoutStats.RMIsSent), "rmis")
		add("relayout bytes", float64(relayoutStats.BytesSimulated), "bytes")
	}
	return rows
}

// isqrt returns the integer square root of n.
func isqrt(n int64) int64 {
	var r int64
	for r*r <= n {
		r++
	}
	return r - 1
}

// icbrt returns the integer cube root of n.
func icbrt(n int64) int64 {
	var r int64
	for r*r*r <= n {
		r++
	}
	return r - 1
}
