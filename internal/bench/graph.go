package bench

import (
	"fmt"

	"repro/internal/containers/pgraph"
	"repro/internal/graphalgo"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// Fig49GraphMethods measures pGraph construction methods (add_vertex,
// add_edge, find_vertex) on SSCA2 inputs for the static and dynamic
// strategies (paper Figs. 49/50; the two figures differ only by machine).
func Fig49GraphMethods(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		params := workload.DefaultSSCA2(cfg.GraphScale)
		n := params.NumVertices()
		// Static strategy: vertices exist at construction, only edges are
		// added.
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			g := pgraph.New[int64, int8](loc, n)
			out.add("static: add_edge_async (SSCA2)", timeSection(loc, func() {
				workload.BuildSSCA2Static(loc, g, params)
			}))
			out.add("static: find_vertex", timeSection(loc, func() {
				r := loc.Rand()
				for k := 0; k < 2000; k++ {
					g.HasVertex(r.Int63n(n))
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig49", fmt.Sprintf("P=%d V=%d", p, n), ts)...)

		// Dynamic strategies: vertices are added at run time.
		for _, strat := range []pgraph.Strategy{pgraph.DynamicEncoded, pgraph.DynamicDirectory} {
			strat := strat
			ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
				g := pgraph.New[int64, int8](loc, 0, pgraph.WithStrategy(strat))
				perLoc := n / int64(loc.NumLocations())
				var mine []int64
				out.add(strat.String()+": add_vertex", timeSection(loc, func() {
					for k := int64(0); k < perLoc; k++ {
						mine = append(mine, g.AddVertex(k))
					}
					loc.Fence()
				}))
				out.add(strat.String()+": add_edge_async (ring)", timeSection(loc, func() {
					for i, vd := range mine {
						g.AddEdgeAsync(vd, mine[(i+1)%len(mine)], 0)
					}
					loc.Fence()
				}))
				out.add(strat.String()+": find_vertex", timeSection(loc, func() {
					r := loc.Rand()
					for k := 0; k < 2000; k++ {
						g.HasVertex(mine[r.Intn(len(mine))])
					}
					loc.Fence()
				}))
			})
			rows = append(rows, rowsFromSeries("fig49", fmt.Sprintf("P=%d V=%d", p, n), ts)...)
		}
	}
	return rows
}

// Fig51FindSources runs find-sources over the three address-translation
// strategies on the same directed graph (paper Fig. 51): the static and
// encoded translations resolve in closed form, the directory strategy pays
// for forwarding.
func Fig51FindSources(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	params := workload.DefaultSSCA2(cfg.GraphScale)
	n := params.NumVertices()
	for _, strat := range []pgraph.Strategy{pgraph.Static, pgraph.DynamicEncoded, pgraph.DynamicDirectory} {
		strat := strat
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			var g *pgraph.Graph[int64, int8]
			var ids []int64
			if strat == pgraph.Static {
				g = pgraph.New[int64, int8](loc, n)
				for i := int64(0); i < n; i++ {
					ids = append(ids, i)
				}
			} else {
				g = pgraph.New[int64, int8](loc, 0, pgraph.WithStrategy(strat))
				perLoc := n / int64(loc.NumLocations())
				var mine []int64
				for k := int64(0); k < perLoc; k++ {
					mine = append(mine, g.AddVertex(0))
				}
				loc.Fence()
				for _, part := range runtime.AllGatherT(loc, mine) {
					ids = append(ids, part...)
				}
			}
			loc.Fence()
			// Same edge structure for every strategy: a chain through the
			// descriptor list plus SSCA2-style clique edges within blocks
			// of 8 descriptors, added by location 0.
			if loc.ID() == 0 {
				for i := 0; i+1 < len(ids); i++ {
					g.AddEdgeAsync(ids[i], ids[i+1], 0)
				}
			}
			loc.Fence()
			out.add("find_sources ("+strat.String()+")", timeSection(loc, func() {
				graphalgo.FindSources(loc, g)
			}))
		})
		rows = append(rows, rowsFromSeries("fig51", fmt.Sprintf("P=%d V=%d", p, n), ts)...)
	}
	return rows
}

// Fig52GraphPartitions micro-benchmarks the address-translation itself:
// resolving random vertex descriptors under each strategy (paper Fig. 52).
func Fig52GraphPartitions(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	n := int64(1) << cfg.GraphScale
	lookups := cfg.ElementsPerLocation
	for _, strat := range []pgraph.Strategy{pgraph.Static, pgraph.DynamicEncoded, pgraph.DynamicDirectory} {
		strat := strat
		m := machine(cfg, p)
		var series timedSeries
		var handledBefore int64
		m.Execute(func(loc *runtime.Location) {
			var g *pgraph.Graph[int64, int8]
			var ids []int64
			if strat == pgraph.Static {
				g = pgraph.New[int64, int8](loc, n)
				for i := int64(0); i < n; i++ {
					ids = append(ids, i)
				}
			} else {
				g = pgraph.New[int64, int8](loc, 0, pgraph.WithStrategy(strat))
				perLoc := n / int64(loc.NumLocations())
				var mine []int64
				for k := int64(0); k < perLoc; k++ {
					mine = append(mine, g.AddVertex(0))
				}
				loc.Fence()
				for _, part := range runtime.AllGatherT(loc, mine) {
					ids = append(ids, part...)
				}
			}
			loc.Fence()
			if loc.ID() == 0 {
				handledBefore = loc.Machine().Stats().RMIsHandled
			}
			d := timeSection(loc, func() {
				r := loc.Rand()
				for k := int64(0); k < lookups; k++ {
					g.VertexProperty(ids[r.Intn(len(ids))])
				}
				loc.Fence()
			})
			if loc.ID() == 0 {
				series.add("vertex property lookup ("+strat.String()+")", d)
			}
			loc.Fence()
		})
		param := fmt.Sprintf("P=%d V=%d lookups/loc=%d", p, n, lookups)
		rows = append(rows, rowsFromSeries("fig52", param, series)...)
		// The forwarding strategy's extra hops show up as extra handled
		// RMIs, the deterministic signal behind the paper's timing gap.
		rows = append(rows, Row{Experiment: "fig52",
			Series: "remote RMIs handled (" + strat.String() + ")", Param: param,
			Value: float64(m.Stats().RMIsHandled - handledBefore), Unit: "rmis"})
	}
	return rows
}

// Fig53GraphAlgorithms measures the pGraph algorithms — BFS, connected
// components, find-sources — on SSCA2 inputs (paper Figs. 53/54/55).
func Fig53GraphAlgorithms(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		params := workload.DefaultSSCA2(cfg.GraphScale)
		n := params.NumVertices()
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			g := pgraph.New[int64, int8](loc, n)
			workload.BuildSSCA2Static(loc, g, params)
			out.add("BFS", timeSection(loc, func() {
				graphalgo.BFS(loc, g, 0)
			}))
			out.add("connected components", timeSection(loc, func() {
				graphalgo.ConnectedComponents(loc, g)
			}))
			out.add("find sources", timeSection(loc, func() {
				graphalgo.FindSources(loc, g)
			}))
		})
		rows = append(rows, rowsFromSeries("fig53", fmt.Sprintf("P=%d V=%d", p, n), ts)...)
	}
	return rows
}

// Fig56PageRank runs page rank on the two mesh shapes of the paper's
// Fig. 56: a square mesh and an elongated mesh with the same number of
// vertices.
func Fig56PageRank(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	side := int64(1) << (cfg.GraphScale / 2)
	meshes := []struct {
		name string
		dims workload.Mesh2DParams
	}{
		{"square mesh", workload.Mesh2DParams{Rows: side, Cols: side}},
		{"elongated mesh", workload.Mesh2DParams{Rows: side / 8, Cols: side * 8}},
	}
	for _, mesh := range meshes {
		mesh := mesh
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			g := pgraph.New[float64, int8](loc, mesh.dims.NumVertices())
			workload.BuildMesh2D(loc, g, mesh.dims)
			prp := graphalgo.DefaultPageRank()
			prp.Iterations = 10
			out.add("page rank ("+mesh.name+")", timeSection(loc, func() {
				graphalgo.PageRank(loc, g, prp)
			}))
		})
		rows = append(rows, rowsFromSeries("fig56",
			fmt.Sprintf("P=%d %dx%d", p, mesh.dims.Rows, mesh.dims.Cols), ts)...)
	}
	return rows
}
