// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (Chapters VIII–XIII) on the
// simulated machine.  Each experiment is a function that runs the paper's
// workload at a configurable scale and returns the series of rows the paper
// plots; cmd/pcfbench prints them and the root-level Go benchmarks wrap them
// for `go test -bench`.
//
// Absolute times differ from the paper's Cray XT4 / IBM P5 numbers — the
// substrate here is a single-process simulation — but the relations the
// paper reports (local ≪ remote, async < split-phase < sync, native view <
// balanced view, pList constant-time updates vs. pVector shifts, forwarding
// vs. closed-form translation, pMatrix vs. composed containers) are
// reproduced; EXPERIMENTS.md records the comparison.
package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/runtime"
)

// Row is one measurement of an experiment: one point of one series of one
// figure.
type Row struct {
	Experiment string  // e.g. "fig30"
	Series     string  // e.g. "get_element (sync)"
	Param      string  // x-axis label, e.g. "P=4 N=100000" or "remote=25%"
	Value      float64 // measured value
	Unit       string  // "ms", "ops/s", "bytes", ...
}

// String formats the row as a report line.
func (r Row) String() string {
	return fmt.Sprintf("%-8s %-38s %-28s %12.3f %s", r.Experiment, r.Series, r.Param, r.Value, r.Unit)
}

// Config scales every experiment.  The defaults keep the full suite in the
// order of a minute on a laptop; increase ElementsPerLocation / Locations to
// stress the machine harder.
type Config struct {
	// Locations is the list of machine sizes (processor counts) swept by
	// the scaling experiments.
	Locations []int
	// ElementsPerLocation is the weak-scaling unit: containers hold
	// ElementsPerLocation × P elements.
	ElementsPerLocation int64
	// GraphScale is the log2 number of vertices of the SSCA2 graphs.
	GraphScale int
	// Verbose prints every row as it is produced.
	Verbose bool
	// Transport builds the interconnect every experiment machine uses.  Nil
	// keeps the runtime default (the PCF_TRANSPORT environment variable, or
	// in-process delivery).  Because the machine statistics are counted at
	// logical send time, a deterministic experiment must report identical
	// counter rows over every transport — the cross-transport equivalence
	// suite in bench_transport_test.go asserts exactly that.
	Transport runtime.TransportFactory
	// Adaptive turns on the runtime's adaptive aggregation in every
	// experiment machine.  It changes message counts, so counter runs that
	// feed the byte-identical baseline must leave it off; the timed series
	// accept it for what-if measurements.
	Adaptive bool
	// AggregationMax bounds the adaptive aggregation target (zero keeps the
	// runtime default).  Only meaningful with Adaptive.
	AggregationMax int
	// TimedMinTime is the calibration floor of the timed series: each
	// measured section is rerun with growing repetition counts until it
	// lasts at least this long.  Zero means DefaultTimedMinTime.
	TimedMinTime time.Duration
}

// DefaultConfig returns the scale used by the committed bench outputs.
func DefaultConfig() Config {
	return Config{
		Locations:           []int{1, 2, 4, 8},
		ElementsPerLocation: 20000,
		GraphScale:          10,
		Verbose:             false,
	}
}

// SmallConfig returns a reduced scale suitable for quick runs and unit
// benches.
func SmallConfig() Config {
	return Config{
		Locations:           []int{2, 4},
		ElementsPerLocation: 4000,
		GraphScale:          8,
	}
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID          string
	Description string
	Run         func(cfg Config) []Row
}

// All returns every experiment of the per-experiment index in DESIGN.md, in
// paper order.
func All() []Experiment {
	return []Experiment{
		{"fig27", "pArray constructor time vs input size", Fig27ArrayConstructor},
		{"fig28", "pArray local method invocations vs container size", Fig28ArrayLocalMethods},
		{"fig29", "pArray methods for various input sizes", Fig29ArrayMethodsSizes},
		{"fig30", "pArray set/get/split-phase-get element methods", Fig30ArraySyncAsyncSplit},
		{"fig31", "pArray methods vs percentage of remote invocations", Fig31ArrayRemoteFraction},
		{"fig32", "pArray local and remote invocations vs container size", Fig32ArrayLocalRemote},
		{"fig33", "generic algorithms on pArray (weak scaling)", Fig33ArrayAlgorithms},
		{"fig34", "pArray memory consumption (data vs metadata, Tables XXII/XXIII)", Fig34ArrayMemory},
		{"fig39", "pList methods", Fig39ListMethods},
		{"fig40", "p_for_each/p_generate/p_accumulate on pArray vs pList", Fig40ListVsArrayAlgos},
		{"fig41", "p_for_each weak scaling, packed vs spread placement", Fig41PlacementWeakScaling},
		{"fig42", "pList vs pVector under a dynamic operation mix", Fig42ListVsVectorMix},
		{"fig43", "Euler tour weak scaling", Fig43EulerTourWeakScaling},
		{"fig44", "Euler tour applications", Fig44EulerTourApps},
		{"fig49", "pGraph methods (static vs dynamic) with SSCA2 inputs", Fig49GraphMethods},
		{"fig51", "find-sources across address-translation strategies", Fig51FindSources},
		{"fig52", "pGraph partition address-translation comparison", Fig52GraphPartitions},
		{"fig53", "pGraph algorithms (BFS, components, find-sources)", Fig53GraphAlgorithms},
		{"fig56", "page rank on square vs elongated meshes", Fig56PageRank},
		{"fig59", "MapReduce word count on a Zipf corpus", Fig59MapReduceWordCount},
		{"fig60", "generic algorithms on associative pContainers", Fig60AssociativeAlgos},
		{"fig62", "composition: pArray<pArray>, pList<pArray>, pMatrix row-min", Fig62Composition},
		{"bulk", "bulk element operations vs per-element RMIs", BulkVsElementwise},
		{"matrix", "pMatrix 2-D kernels: coarsened matvec/matmul vs element-wise, 2-D jacobi, relayout", MatrixKernels},
		{"views", "composable pView algebra: coarsened vs elementwise, zip, overlap halo, segmented", ViewsComposition},
		{"redist", "redistribution and load balancing: skew, rebalance, traffic", RedistributeRebalance},
		{"sparse", "storage representations: dense vs compressed resident and migration bytes by density", SparseStorage},
		{"directory", "distributed-directory resolution: cached vs uncached repeat remote access", DirectoryCachedAccess},
		{"ablation-aggregation", "RMI aggregation on/off (design-choice ablation)", AblationAggregation},
		{"ablation-locking", "thread-safety manager policies (design-choice ablation)", AblationLocking},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// SortRows returns the rows ordered by experiment then series (the report
// order); the input is not modified.
func SortRows(rows []Row) []Row {
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Experiment != sorted[j].Experiment {
			return sorted[i].Experiment < sorted[j].Experiment
		}
		return sorted[i].Series < sorted[j].Series
	})
	return sorted
}

// PrintRows writes rows grouped by experiment and series.
func PrintRows(rows []Row) {
	for _, r := range SortRows(rows) {
		fmt.Println(r)
	}
}

// maxElapsed returns the maximum elapsed time across all locations since
// each location's start instant (the paper reports the maximum over
// processors).  Collective.
func maxElapsed(loc *runtime.Location, start time.Time) time.Duration {
	us := time.Since(start).Microseconds()
	return time.Duration(runtime.AllReduceMax(loc, us)) * time.Microsecond
}

// ms converts a duration to milliseconds for report rows.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// machine builds a machine with the default RTS configuration over the
// experiment configuration's transport.
func machine(cfg Config, p int) *runtime.Machine {
	rcfg := runtime.DefaultConfig()
	rcfg.Transport = cfg.Transport
	rcfg.AdaptiveAggregation = cfg.Adaptive
	rcfg.AggregationMax = cfg.AggregationMax
	return runtime.NewMachine(p, rcfg)
}
