package bench

import (
	"fmt"
	"time"

	"repro/internal/containers/parray"
	"repro/internal/containers/plist"
	"repro/internal/containers/pvector"
	"repro/internal/euler"
	"repro/internal/palgo"
	"repro/internal/runtime"
	"repro/internal/views"
	"repro/internal/workload"
)

// Fig39ListMethods measures the pList dynamic methods: the communication-free
// push_anywhere, the global-end push_back, insert_async before a known GID,
// and erase (paper Fig. 39).
func Fig39ListMethods(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		ops := cfg.ElementsPerLocation
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			l := plist.New[int64](loc)
			gids := make([]plist.GID, 0, ops)
			out.add("push_anywhere", timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					gids = append(gids, l.PushAnywhere(k))
				}
				loc.Fence()
			}))
			out.add("insert_async (before local GID)", timeSection(loc, func() {
				for k := int64(0); k < ops; k++ {
					l.InsertAsync(gids[k%int64(len(gids))], k)
				}
				loc.Fence()
			}))
			out.add("push_back (global end)", timeSection(loc, func() {
				for k := int64(0); k < ops/10; k++ {
					l.PushBack(k)
				}
				loc.Fence()
			}))
			out.add("erase", timeSection(loc, func() {
				for _, g := range gids {
					l.Erase(g)
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig39", fmt.Sprintf("P=%d ops/loc=%d", p, ops), ts)...)
	}
	return rows
}

// Fig40ListVsArrayAlgos runs the same generic algorithms over a pArray and a
// pList of the same size (paper Fig. 40): the pArray's random access makes
// it faster, the pList pays for per-segment traversal.
func Fig40ListVsArrayAlgos(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			a := parray.New[int64](loc, n)
			nat := views.NewArrayNative(a)
			l := plist.New[int64](loc)
			for k := int64(0); k < cfg.ElementsPerLocation; k++ {
				l.PushAnywhere(k)
			}
			loc.Fence()
			out.add("p_generate on pArray", timeSection(loc, func() {
				palgo.Generate(loc, nat, func(i int64) int64 { return i })
			}))
			out.add("p_for_each on pArray", timeSection(loc, func() {
				palgo.TransformInPlace(loc, nat, func(_ int64, x int64) int64 { return x + 1 })
			}))
			out.add("p_accumulate on pArray", timeSection(loc, func() {
				palgo.Accumulate(loc, nat, 0, func(a, b int64) int64 { return a + b })
			}))
			out.add("p_for_each on pList (segments)", timeSection(loc, func() {
				l.LocalUpdate(func(_ plist.GID, x int64) int64 { return x + 1 })
				loc.Fence()
			}))
			out.add("p_accumulate on pList (segments)", timeSection(loc, func() {
				var local int64
				l.LocalRange(func(_ plist.GID, x int64) bool { local += x; return true })
				runtime.AllReduceSum(loc, local)
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig40", fmt.Sprintf("P=%d N/P=%d", p, cfg.ElementsPerLocation), ts)...)
	}
	return rows
}

// Fig41PlacementWeakScaling reproduces the placement experiment: the same
// weak-scaling p_for_each with all locations on one "node" (cheap
// communication) versus spread across nodes (expensive communication),
// modelled with the RTS RemoteDelay hook.
func Fig41PlacementWeakScaling(cfg Config) []Row {
	var rows []Row
	placements := []struct {
		name  string
		delay func(src, dst int) time.Duration
	}{
		{"same node (curve a)", func(src, dst int) time.Duration { return 0 }},
		{"different nodes (curve b)", func(src, dst int) time.Duration { return 20 * time.Microsecond }},
	}
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		for _, pl := range placements {
			rcfg := runtime.DefaultConfig()
			rcfg.RemoteDelay = pl.delay
			rcfg.Transport = cfg.Transport
			var elapsed float64
			m := runtime.NewMachine(p, rcfg)
			m.Execute(func(loc *runtime.Location) {
				a := parray.New[int64](loc, n)
				nat := views.NewArrayNative(a)
				// A balanced view shifted by one location's worth of
				// elements forces a fraction of remote traffic, which is
				// what exposes the placement difference.
				d := timeSection(loc, func() {
					palgo.Generate(loc, views.NewBalanced[int64](views.NewStrided[int64](nat, 1, 1)), func(i int64) int64 { return i })
				})
				if loc.ID() == 0 {
					elapsed = ms(d)
				}
				loc.Fence()
			})
			rows = append(rows, Row{Experiment: "fig41", Series: "p_for_each " + pl.name,
				Param: fmt.Sprintf("P=%d N/P=%d", p, cfg.ElementsPerLocation), Value: elapsed, Unit: "ms"})
		}
	}
	return rows
}

// Fig42ListVsVectorMix runs the mixed read/write/insert/delete workload over
// pList and pVector (paper Fig. 42): pList's constant-time updates win as
// soon as the mix contains structural operations.
func Fig42ListVsVectorMix(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		opsPerLoc := int(cfg.ElementsPerLocation / 4)
		mix := workload.DefaultMix()
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			ops := workload.OpStream(loc, opsPerLoc, mix)
			// pList: operations target this location's own segment.
			l := plist.New[int64](loc)
			seed := make([]plist.GID, 0, 128)
			for k := int64(0); k < 128; k++ {
				seed = append(seed, l.PushAnywhere(k))
			}
			loc.Fence()
			out.add("pList mix", timeSection(loc, func() {
				live := append([]plist.GID(nil), seed...)
				for _, op := range ops {
					g := live[loc.Rand().Intn(len(live))]
					switch op {
					case workload.OpRead:
						l.Get(g)
					case workload.OpWrite:
						l.Set(g, 1)
					case workload.OpInsert:
						live = append(live, l.Insert(g, 2))
					case workload.OpDelete:
						if len(live) > 64 {
							last := live[len(live)-1]
							live = live[:len(live)-1]
							l.Erase(last)
						}
					}
				}
				loc.Fence()
			}))
			// pVector: positional operations with index shifting and
			// metadata broadcasts.  Each location works inside its own
			// block (the paper's kernels also give every processor its own
			// slice of the operation stream); structural operations still
			// pay the element shifting plus the machine-wide metadata
			// update that pList avoids.  Operations stay away from block
			// boundaries by a safety margin and the stream is fenced in
			// batches, so concurrent index shifts from other locations
			// never push an access outside its block between fences.
			const batch = 32
			margin := int64(batch * loc.NumLocations())
			v := pvector.New[int64](loc, int64(loc.NumLocations())*8*margin)
			loc.Fence()
			out.add("pVector mix", timeSection(loc, func() {
				for k, op := range ops {
					d := v.LocalDomain()
					span := d.Size() - 2*margin
					if span <= 0 {
						v.PushBack(0)
					} else {
						idx := d.Lo + margin + loc.Rand().Int63n(span)
						switch op {
						case workload.OpRead:
							v.Get(idx)
						case workload.OpWrite:
							v.Set(idx, 1)
						case workload.OpInsert:
							v.Insert(idx, 2)
						case workload.OpDelete:
							if span > 8 {
								v.Erase(idx)
							}
						}
					}
					if (k+1)%batch == 0 {
						loc.Fence()
					}
				}
				loc.Fence()
			}))
		})
		rows = append(rows, rowsFromSeries("fig42", fmt.Sprintf("P=%d ops/loc=%d", p, opsPerLoc), ts)...)
	}
	return rows
}

// Fig43EulerTourWeakScaling measures the Euler tour construction and list
// ranking with a fixed number of subtrees per location (paper Fig. 43).
func Fig43EulerTourWeakScaling(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		params := workload.ForestParams{SubtreesPerLocation: 8, SubtreeHeight: 6}
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			edges, vertices, root := workload.TreeEdges(loc, params)
			g := euler.BuildTree(loc, vertices, edges)
			var tour *euler.Tour
			out.add("euler tour construction", timeSection(loc, func() {
				tour = euler.BuildTour(loc, g, root)
			}))
			out.add("list ranking (pointer jumping)", timeSection(loc, func() {
				tour.Rank(loc)
			}))
		})
		rows = append(rows, rowsFromSeries("fig43",
			fmt.Sprintf("P=%d subtrees/loc=%d height=%d", p, params.SubtreesPerLocation, params.SubtreeHeight), ts)...)
	}
	return rows
}

// Fig44EulerTourApps measures the Euler tour applications (rooting the tree
// and subtree sizes) for two subtree counts per location (paper Fig. 44).
func Fig44EulerTourApps(cfg Config) []Row {
	var rows []Row
	p := cfg.Locations[len(cfg.Locations)-1]
	for _, subtrees := range []int{4, 8} {
		params := workload.ForestParams{SubtreesPerLocation: subtrees, SubtreeHeight: 6}
		ts := runTimed(cfg, p, func(loc *runtime.Location, out *timedSeries) {
			edges, vertices, root := workload.TreeEdges(loc, params)
			g := euler.BuildTree(loc, vertices, edges)
			tour := euler.BuildTour(loc, g, root)
			rank := tour.Rank(loc)
			out.add("tree rooting + subtree sizes", timeSection(loc, func() {
				tour.Applications(loc, rank)
			}))
		})
		rows = append(rows, rowsFromSeries("fig44",
			fmt.Sprintf("P=%d subtrees/loc=%d", p, subtrees), ts)...)
	}
	return rows
}
