package bench

import (
	"fmt"

	"repro/internal/containers/parray"
	"repro/internal/domain"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/views"
)

// ViewsComposition measures what the composable pView algebra buys on the
// scenarios the paper's evaluation depends on (Figs. 33, 40, 41, 60, 62
// route through views): a generic algorithm over a balanced view of a
// skewed container executed coarsened (native chunks walked in place, the
// remote remainder shipped as grouped bulk requests) versus element-wise; a
// zipped axpy/dot over two differently distributed arrays; a 1-D Jacobi
// stencil whose halo cells travel as one bulk request per neighbour per
// sweep; and a Segmented-of-Zip reduction that stays entirely native.  The
// RMI / message / byte series are deterministic (they count requests, not
// time), which is what lets the CI regression gate pin them.
func ViewsComposition(cfg Config) []Row {
	var rows []Row
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		param := fmt.Sprintf("P=%d N=%d", p, n)
		add := func(series string, value float64, unit string) {
			rows = append(rows, Row{Experiment: "views", Series: series, Param: param, Value: value, Unit: unit})
		}

		// --- Coarsened vs element-wise p_for_each over a balanced view of
		// a skewed pArray: most locations' work shares live in location 0's
		// memory, the exact scenario where coarsening decides the message
		// bill.
		skewedView := func(loc *runtime.Location) views.Balanced[int64] {
			part, err := partition.NewExplicit(domain.NewRange1D(0, n), skewedSizes(n, p))
			if err != nil {
				panic(err)
			}
			a := parray.New[int64](loc, n,
				parray.WithPartition(part),
				parray.WithMapper(partition.NewBlockedMapper(p, p)))
			return views.NewBalanced[int64](views.NewArrayNative(a))
		}
		elemMS, elemStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			v := skewedView(loc)
			return func() {
				for _, r := range v.LocalRanges(loc) {
					for i := r.Lo; i < r.Hi; i++ {
						v.Set(i, v.Get(i)+1)
					}
				}
				loc.Fence()
			}
		})
		coarMS, coarStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			v := skewedView(loc)
			return func() {
				palgo.TransformInPlace(loc, v, func(_ int64, x int64) int64 { return x + 1 })
			}
		})
		add("p_for_each (elementwise)", elemMS, "ms")
		add("p_for_each (coarsened)", coarMS, "ms")
		add("p_for_each rmis (elementwise)", float64(elemStats.RMIsSent), "rmis")
		add("p_for_each rmis (coarsened)", float64(coarStats.RMIsSent), "rmis")
		add("p_for_each messages (elementwise)", float64(elemStats.MessagesSent), "msgs")
		add("p_for_each messages (coarsened)", float64(coarStats.MessagesSent), "msgs")
		add("p_for_each bytes (elementwise)", float64(elemStats.BytesSimulated), "bytes")
		add("p_for_each bytes (coarsened)", float64(coarStats.BytesSimulated), "bytes")
		if coarStats.MessagesSent > 0 {
			add("p_for_each message reduction", float64(elemStats.MessagesSent)/float64(coarStats.MessagesSent), "x")
		}

		// --- Zipped axpy over two differently distributed arrays: x is
		// blocked evenly, y is skewed onto location 0; the zip follows x's
		// decomposition, so y supplies the remote remainder.
		zipSetup := func(loc *runtime.Location) (views.ArrayNative[int64], views.ArrayNative[int64]) {
			x := parray.New[int64](loc, n)
			part, err := partition.NewExplicit(domain.NewRange1D(0, n), skewedSizes(n, p))
			if err != nil {
				panic(err)
			}
			y := parray.New[int64](loc, n,
				parray.WithPartition(part),
				parray.WithMapper(partition.NewBlockedMapper(p, p)))
			xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
			palgo.Generate(loc, xv, func(i int64) int64 { return i })
			palgo.Generate(loc, yv, func(i int64) int64 { return 2 * i })
			return xv, yv
		}
		axpyElemMS, axpyElemStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			xv, yv := zipSetup(loc)
			z := views.NewZip2[int64, int64](xv, yv)
			return func() {
				for _, r := range z.LocalRanges(loc) {
					for i := r.Lo; i < r.Hi; i++ {
						pr := z.Get(i)
						yv.Set(i, 3*pr.First+pr.Second)
					}
				}
				loc.Fence()
			}
		})
		axpyCoarMS, axpyCoarStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			xv, yv := zipSetup(loc)
			return func() {
				palgo.Axpy[int64](loc, 3, xv, yv)
			}
		})
		add("axpy (elementwise)", axpyElemMS, "ms")
		add("axpy (zip coarsened)", axpyCoarMS, "ms")
		add("axpy rmis (elementwise)", float64(axpyElemStats.RMIsSent), "rmis")
		add("axpy rmis (zip coarsened)", float64(axpyCoarStats.RMIsSent), "rmis")
		add("axpy messages (elementwise)", float64(axpyElemStats.MessagesSent), "msgs")
		add("axpy messages (zip coarsened)", float64(axpyCoarStats.MessagesSent), "msgs")
		add("axpy bytes (elementwise)", float64(axpyElemStats.BytesSimulated), "bytes")
		add("axpy bytes (zip coarsened)", float64(axpyCoarStats.BytesSimulated), "bytes")
		if axpyCoarStats.MessagesSent > 0 {
			add("axpy message reduction", float64(axpyElemStats.MessagesSent)/float64(axpyCoarStats.MessagesSent), "x")
		}

		// --- Zipped dot product (native × native: stays message-free).
		dotMS, dotStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			x := parray.New[int64](loc, n)
			y := parray.New[int64](loc, n)
			xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
			palgo.Fill[int64](loc, xv, 1)
			palgo.Fill[int64](loc, yv, 2)
			return func() {
				if got := palgo.Dot[int64](loc, xv, yv); got != 2*n {
					panic(fmt.Sprintf("bench: dot = %d, want %d", got, 2*n))
				}
			}
		})
		add("dot (zip native)", dotMS, "ms")
		add("dot messages (zip native)", float64(dotStats.MessagesSent), "msgs")

		// --- 1-D Jacobi over the overlap/halo face: the boundary cells of
		// each location's share travel as one grouped request per neighbour
		// per sweep.
		const sweeps = 4
		jacMS, jacStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			cur := parray.New[float64](loc, n)
			next := parray.New[float64](loc, n)
			cv, nv := views.NewArrayNative(cur), views.NewArrayNative(next)
			palgo.Generate(loc, cv, func(i int64) float64 {
				if i == 0 {
					return 100
				}
				return 0
			})
			return func() {
				palgo.Jacobi1D(loc, cv, nv, sweeps)
			}
		})
		add("jacobi (overlap halo)", jacMS, "ms")
		add("jacobi messages/sweep", float64(jacStats.MessagesSent)/sweeps, "msgs")
		add("jacobi rmis/sweep", float64(jacStats.RMIsSent)/sweeps, "rmis")
		add("jacobi bytes/sweep", float64(jacStats.BytesSimulated)/sweeps, "bytes")

		// --- Nested composition: a Segmented over a Zip of two native
		// arrays reduces entirely inside native chunks — zero messages.
		segMS, segStats := measuredRun(cfg, p, func(loc *runtime.Location) func() {
			x := parray.New[int64](loc, n)
			y := parray.New[int64](loc, n)
			xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
			palgo.Fill[int64](loc, xv, 1)
			palgo.Fill[int64](loc, yv, 3)
			seg := views.NewSegmented[views.Pair[int64, int64]](loc, views.NewZip2[int64, int64](xv, yv))
			return func() {
				sum, _ := palgo.Reduce(loc, seg, func(a, b views.Pair[int64, int64]) views.Pair[int64, int64] {
					return views.Pair[int64, int64]{First: a.First + b.First, Second: a.Second + b.Second}
				})
				if sum.First != n || sum.Second != 3*n {
					panic(fmt.Sprintf("bench: segmented zip reduce = %+v", sum))
				}
			}
		})
		add("segmented zip reduce", segMS, "ms")
		add("segmented zip reduce messages", float64(segStats.MessagesSent), "msgs")
	}
	return rows
}

// measuredRun executes one measured section SPMD on p locations: build runs
// first (construction and input generation are excluded from the
// measurement), then the returned body runs between per-location stat
// snapshots whose deltas are summed with a collective.  The collective is
// what makes the delta machine-wide on EVERY transport: under the
// multi-process transport a location can only read its own process's
// counters mid-run, so each location contributes its own share and the
// AllReduce produces the same machine-wide delta an in-process fold would.
// It returns location 0's elapsed milliseconds and the stat delta of the
// section.
func measuredRun(cfg Config, p int, build func(loc *runtime.Location) func()) (float64, runtime.Stats) {
	m := machine(cfg, p)
	var delta runtime.Stats
	var elapsed float64
	m.Execute(func(loc *runtime.Location) {
		body := build(loc)
		loc.Fence()
		pre := loc.Stats()
		loc.Barrier()
		d := timeSection(loc, body)
		loc.Barrier()
		local := loc.Stats().Sub(pre)
		total := runtime.AllReduceT(loc, local, runtime.Stats.Add)
		if loc.ID() == 0 {
			delta = total
			elapsed = ms(d)
		}
		loc.Barrier()
	})
	return elapsed, runtime.Stats{
		RMIsSent:       delta.RMIsSent,
		MessagesSent:   delta.MessagesSent,
		RMIsHandled:    delta.RMIsHandled,
		BulkRMIs:       delta.BulkRMIs,
		BulkOps:        delta.BulkOps,
		BytesSimulated: delta.BytesSimulated,
	}
}
