package bench

import (
	"sync"
	"time"

	"repro/internal/runtime"
)

// timedSeries is an ordered list of (series label, duration) pairs produced
// by one machine run.
type timedSeries struct {
	labels []string
	values []time.Duration
}

func (t *timedSeries) add(label string, d time.Duration) {
	t.labels = append(t.labels, label)
	t.values = append(t.values, d)
}

// runTimed runs fn SPMD on p locations; fn fills a timedSeries using
// collective timing helpers (every location must add the same series in the
// same order).  Location 0's series is returned.
func runTimed(cfg Config, p int, fn func(loc *runtime.Location, out *timedSeries)) timedSeries {
	var result timedSeries
	var mu sync.Mutex
	machine(cfg, p).Execute(func(loc *runtime.Location) {
		var local timedSeries
		fn(loc, &local)
		if loc.ID() == 0 {
			mu.Lock()
			result = local
			mu.Unlock()
		}
	})
	return result
}

// rowsFromSeries converts a timedSeries into report rows.
func rowsFromSeries(exp, param string, ts timedSeries) []Row {
	rows := make([]Row, 0, len(ts.labels))
	for i, lbl := range ts.labels {
		rows = append(rows, Row{Experiment: exp, Series: lbl, Param: param, Value: ms(ts.values[i]), Unit: "ms"})
	}
	return rows
}

// timeSection measures one collective section: it synchronises all
// locations, runs body, and returns the maximum elapsed time over all
// locations.  body typically ends with the fence that the paper's kernels
// include in the measured time (Fig. 24).
func timeSection(loc *runtime.Location, body func()) time.Duration {
	loc.Barrier()
	start := time.Now()
	body()
	return maxElapsed(loc, start)
}
