package bench

import (
	"fmt"
	"sync"

	"repro/internal/containers/parray"
	"repro/internal/runtime"
)

// BulkVsElementwise compares per-element element methods against the bulk
// element methods on the remote-heavy access pattern of Fig. 30 (every
// location touches the next location's block).  The per-element path pays
// one request descriptor per element and relies on the RTS aggregation
// buffer (Aggregation: 16 by default) to amortise messages; the bulk path
// resolves and groups a whole batch once and ships one sized RMI per
// destination.  For each machine size the experiment reports elapsed time,
// throughput, and the RMI / message / simulated-byte deltas of both modes.
func BulkVsElementwise(cfg Config) []Row {
	var rows []Row
	const chunk = 1024 // bulk batch size per SetBulk/GetBulk call
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // the comparison needs remote traffic
		}
		n := cfg.ElementsPerLocation * int64(p)
		ops := cfg.ElementsPerLocation

		type modeResult struct {
			setMS, getMS float64
			stats        runtime.Stats
		}
		run := func(bulk bool) modeResult {
			var res modeResult
			var mu sync.Mutex
			m := machine(cfg, p)
			m.Execute(func(loc *runtime.Location) {
				a := parray.New[int64](loc, n)
				next := (loc.ID() + 1) % loc.NumLocations()
				base := int64(next) * (n / int64(loc.NumLocations()))
				idxs := make([]int64, 0, chunk)
				setD := timeSection(loc, func() {
					if bulk {
						for lo := int64(0); lo < ops; lo += chunk {
							hi := lo + chunk
							if hi > ops {
								hi = ops
							}
							// Fresh slices: asynchronous bulk writes
							// retain their arguments until the fence.
							bi := make([]int64, 0, hi-lo)
							bv := make([]int64, 0, hi-lo)
							for k := lo; k < hi; k++ {
								bi = append(bi, base+k%cfg.ElementsPerLocation)
								bv = append(bv, k)
							}
							a.SetBulk(bi, bv)
						}
					} else {
						for k := int64(0); k < ops; k++ {
							a.Set(base+k%cfg.ElementsPerLocation, k)
						}
					}
					loc.Fence()
				})
				getD := timeSection(loc, func() {
					var sink int64
					if bulk {
						for lo := int64(0); lo < ops; lo += chunk {
							hi := lo + chunk
							if hi > ops {
								hi = ops
							}
							idxs = idxs[:0]
							for k := lo; k < hi; k++ {
								idxs = append(idxs, base+k%cfg.ElementsPerLocation)
							}
							for _, v := range a.GetBulk(idxs) {
								sink += v
							}
						}
					} else {
						for k := int64(0); k < ops; k++ {
							sink += a.Get(base + k%cfg.ElementsPerLocation)
						}
					}
					_ = sink
					loc.Fence()
				})
				if loc.ID() == 0 {
					mu.Lock()
					res.setMS = ms(setD)
					res.getMS = ms(getD)
					mu.Unlock()
				}
				loc.Fence()
			})
			res.stats = m.Stats()
			return res
		}

		elem := run(false)
		bulk := run(true)
		param := fmt.Sprintf("P=%d ops/loc=%d", p, ops)
		add := func(series string, value float64, unit string) {
			rows = append(rows, Row{Experiment: "bulk", Series: series, Param: param, Value: value, Unit: unit})
		}
		add("set_element (elementwise)", elem.setMS, "ms")
		add("set_bulk", bulk.setMS, "ms")
		add("get_element (sync)", elem.getMS, "ms")
		add("get_bulk", bulk.getMS, "ms")
		add("messages (elementwise)", float64(elem.stats.MessagesSent), "msgs")
		add("messages (bulk)", float64(bulk.stats.MessagesSent), "msgs")
		add("rmis (elementwise)", float64(elem.stats.RMIsSent), "rmis")
		add("rmis (bulk)", float64(bulk.stats.RMIsSent), "rmis")
		add("bytes (elementwise)", float64(elem.stats.BytesSimulated), "bytes")
		add("bytes (bulk)", float64(bulk.stats.BytesSimulated), "bytes")
		if bulk.stats.MessagesSent > 0 {
			add("message reduction", float64(elem.stats.MessagesSent)/float64(bulk.stats.MessagesSent), "x")
		}
		if bulk.setMS > 0 && bulk.getMS > 0 {
			add("set speedup", elem.setMS/bulk.setMS, "x")
			add("get speedup", elem.getMS/bulk.getMS, "x")
		}
	}
	return rows
}
