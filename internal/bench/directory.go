package bench

import (
	"fmt"
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// DirectoryCachedAccess measures what the per-location resolution cache of
// the shared distributed directory buys on repeat remote accesses.  The
// workload is the method-forwarding triangle of the DynamicDirectory
// pGraph: every location repeatedly reads vertex properties of the next
// location's vertices, restricted to descriptors whose directory home is
// neither the reader nor the owner — the exact pattern where every uncached
// access pays the directory hop (reader → home → owner, two RMIs per read,
// every round).  With the cache the first round forwards once and fills the
// requester's cache (one extra directory RMI); every later round ships
// straight to the owner — one RMI per read — so with R rounds the RMI count
// approaches half the uncached path's.  With fewer than three locations the
// triangle cannot exist (the home always coincides with reader or owner);
// the degenerate all-remote set is measured instead and the cache roughly
// breaks even.  The experiment reports elapsed time, RMIs, messages and the
// directory-maintenance traffic (DirectoryRMIs) of both modes.
func DirectoryCachedAccess(cfg Config) []Row {
	var rows []Row
	const rounds = 8
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // the comparison needs remote traffic
		}
		nv := cfg.ElementsPerLocation / 4
		if nv < 16 {
			nv = 16
		}

		type modeResult struct {
			readMS float64
			rmis   int64
			msgs   int64
			dirs   int64
		}
		runMode := func(cached bool) modeResult {
			var res modeResult
			var mu sync.Mutex
			var preRMIs, preMsgs, preDirs int64
			m := machine(cfg, p)
			m.Execute(func(loc *runtime.Location) {
				g := pgraph.New[int64, int8](loc, 0,
					pgraph.WithStrategy(pgraph.DynamicDirectory),
					pgraph.WithDirectoryCache(cached))
				vds := make([]int64, nv)
				for i := range vds {
					vds[i] = g.AddVertex(int64(loc.ID())*nv + int64(i))
				}
				loc.Fence()
				owner := (loc.ID() + 1) % loc.NumLocations()
				next := runtime.AllGatherT(loc, vds)[owner]
				reads := next
				if p >= 3 {
					reads = make([]int64, 0, len(next))
					for _, vd := range next {
						if h := g.Directory().HomeOf(vd); h != loc.ID() && h != owner {
							reads = append(reads, vd)
						}
					}
				}
				if loc.ID() == 0 {
					s := m.Stats()
					preRMIs, preMsgs, preDirs = s.RMIsSent, s.MessagesSent, s.DirectoryRMIs
				}
				loc.Barrier()
				d := timeSection(loc, func() {
					var sink int64
					for r := 0; r < rounds; r++ {
						for _, vd := range reads {
							v, _ := g.VertexProperty(vd)
							sink += v
						}
					}
					_ = sink
					loc.Fence()
				})
				if loc.ID() == 0 {
					mu.Lock()
					res.readMS = ms(d)
					mu.Unlock()
				}
				loc.Fence()
			})
			s := m.Stats()
			res.rmis = s.RMIsSent - preRMIs
			res.msgs = s.MessagesSent - preMsgs
			res.dirs = s.DirectoryRMIs - preDirs
			return res
		}

		uncached := runMode(false)
		cached := runMode(true)
		param := fmt.Sprintf("P=%d verts/loc=%d rounds=%d", p, nv, rounds)
		add := func(series string, value float64, unit string) {
			rows = append(rows, Row{Experiment: "directory", Series: series, Param: param, Value: value, Unit: unit})
		}
		add("repeat remote reads (uncached)", uncached.readMS, "ms")
		add("repeat remote reads (cached)", cached.readMS, "ms")
		add("rmis (uncached)", float64(uncached.rmis), "rmis")
		add("rmis (cached)", float64(cached.rmis), "rmis")
		add("messages (uncached)", float64(uncached.msgs), "msgs")
		add("messages (cached)", float64(cached.msgs), "msgs")
		add("directory maintenance (uncached)", float64(uncached.dirs), "rmis")
		add("directory maintenance (cached)", float64(cached.dirs), "rmis")
		if cached.rmis > 0 {
			add("rmi reduction", float64(uncached.rmis)/float64(cached.rmis), "x")
		}
		if cached.msgs > 0 {
			add("message reduction", float64(uncached.msgs)/float64(cached.msgs), "x")
		}
	}
	return rows
}
