package bench

import (
	"fmt"
	goruntime "runtime"
	"time"

	"repro/internal/containers/parray"
	"repro/internal/containers/pgraph"
	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/palgo"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/views"
)

// This file is the wall-clock half of the harness: where the counter
// experiments report deterministic message/RMI/byte series (pinned
// byte-identical by the regression gate), the timed experiments report ns/op,
// allocs/op and B/op for the same workloads.  Time is machine-dependent by
// nature, so these rows are tracked as a trajectory (BENCH_time.json) rather
// than gated on exact values — with one exception: allocs/op is deterministic
// for a fixed workload and Go version, which is what lets CI fail on
// allocation growth while treating nanoseconds as advisory.
//
// Containers persist across Execute runs on one machine (registered objects
// survive), so each timed experiment builds its containers once and measures
// subsequent Executes only: construction cost never pollutes the steady-state
// numbers, exactly like testing.B setup outside ResetTimer.

// DefaultTimedMinTime is the calibration floor used when Config.TimedMinTime
// is zero: measured sections are grown until they last at least this long.
const DefaultTimedMinTime = 50 * time.Millisecond

// maxCalibratedReps caps the calibration growth, mirroring testing.B's 1e9
// iteration cap scaled to whole measured sections.
const maxCalibratedReps = 1 << 24

func (c Config) timedMinTime() time.Duration {
	if c.TimedMinTime > 0 {
		return c.TimedMinTime
	}
	return DefaultTimedMinTime
}

// Measurement is one calibrated timed result, normalised per logical
// operation (element access, element visit, property read — the experiment
// decides what an op is).
type Measurement struct {
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
}

// MeasureOp runs body with a growing repetition count until the measured
// section lasts at least minTime, then reports per-op time and allocation.
// body(reps) must perform reps repetitions of the workload (opsPerRep
// logical ops each) and return the duration of the measured section itself,
// so per-call scaffolding the body excludes (barriers, machine bring-up)
// stays out of ns/op.  Allocations are measured around the whole body call —
// process-wide, like testing.AllocsPerRun — which is why the final
// calibrated call, with its large rep count, is the one that is reported:
// fixed per-call allocation is amortised to noise.
//
// body is called once with reps=1 before measuring, as a warm-up: pools
// fill, lazy tables build, first-touch paths run cold exactly once.
func MeasureOp(minTime time.Duration, opsPerRep int64, body func(reps int) time.Duration) Measurement {
	if opsPerRep <= 0 {
		panic("bench: MeasureOp needs opsPerRep >= 1")
	}
	body(1) // warm-up, discarded
	reps := 1
	for {
		goruntime.GC()
		var before, after goruntime.MemStats
		goruntime.ReadMemStats(&before)
		elapsed := body(reps)
		goruntime.ReadMemStats(&after)
		if elapsed >= minTime || reps >= maxCalibratedReps {
			ops := float64(reps) * float64(opsPerRep)
			return Measurement{
				NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / ops,
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / ops,
			}
		}
		reps = growReps(reps, elapsed, minTime)
	}
}

// growReps predicts the repetition count that reaches minTime, with
// testing.B's safety margins: overshoot by 20%, grow at least +1, at most
// 100x, never past the cap.
func growReps(prev int, elapsed, minTime time.Duration) int {
	next := prev * 100
	if elapsed > 0 {
		predicted := int(1.2 * float64(prev) * float64(minTime) / float64(elapsed))
		if predicted < next {
			next = predicted
		}
	}
	if next <= prev {
		next = prev + 1
	}
	if next > maxCalibratedReps {
		next = maxCalibratedReps
	}
	return next
}

// timedRows renders one measurement as its three trajectory rows.  The units
// ("ns", "allocs", "bytes-alloc") are deliberately absent from pcfbench's
// counterUnits set, so timed rows can never leak into the byte-identical
// counter baseline.
func timedRows(exp, series, param string, m Measurement) []Row {
	return []Row{
		{Experiment: exp, Series: series, Param: param, Value: m.NsPerOp, Unit: "ns"},
		{Experiment: exp, Series: series, Param: param, Value: m.AllocsPerOp, Unit: "allocs"},
		{Experiment: exp, Series: series, Param: param, Value: m.BytesPerOp, Unit: "bytes-alloc"},
	}
}

// TimedExperiments returns the wall-clock experiment registry: timed
// variants of the counter experiments pcfbench runs under -time.  IDs match
// the counter experiments they shadow, so `-time -experiment bulk` times the
// workload that `-experiment bulk` counts.
func TimedExperiments() []Experiment {
	return []Experiment{
		{"bulk", "timed: bulk vs elementwise element access (ns/allocs per element)", TimedBulk},
		{"views", "timed: coarsened vs elementwise traversal over a balanced view", TimedViews},
		{"matrix", "timed: coarsened vs elementwise matrix-vector product", TimedMatrix},
		{"directory", "timed: cached vs uncached repeat remote directory reads", TimedDirectory},
		{"sparse", "timed: CSR SpMV vs dense matrix-vector product", TimedSparse},
		{"samplesort", "timed: distributed sample sort (ns per element)", TimedSamplesort},
	}
}

// FindTimed returns the timed experiment with the given id.
func FindTimed(id string) (Experiment, bool) {
	for _, e := range TimedExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// TimedBulk times the four access modes of the bulk experiment — bulk and
// elementwise set/get against the next location's block — per element.
// Location 0 drives; the other locations serve requests.
func TimedBulk(cfg Config) []Row {
	var rows []Row
	const chunk = 1024
	minTime := cfg.timedMinTime()
	for _, p := range cfg.Locations {
		if p == 1 {
			continue // the workload needs remote traffic
		}
		n := cfg.ElementsPerLocation * int64(p)
		m := machine(cfg, p)
		arrs := make([]*parray.Array[int64], p)
		m.Execute(func(loc *runtime.Location) {
			arrs[loc.ID()] = parray.New[int64](loc, n)
		})
		// Location 0 targets location 1's block with a fixed chunk of
		// indices; the slices are never mutated, so the asynchronous bulk
		// writes may retain them across repetitions.
		idxs := make([]int64, chunk)
		vals := make([]int64, chunk)
		base := n / int64(p) // first index owned by location 1
		for i := range idxs {
			idxs[i] = base + int64(i)%cfg.ElementsPerLocation
			vals[i] = int64(i)
		}
		param := fmt.Sprintf("P=%d chunk=%d", p, chunk)
		drive := func(body func(a *parray.Array[int64])) func(reps int) time.Duration {
			return func(reps int) time.Duration {
				var elapsed time.Duration
				m.Execute(func(loc *runtime.Location) {
					loc.Barrier()
					if loc.ID() == 0 {
						a := arrs[0]
						start := time.Now()
						for r := 0; r < reps; r++ {
							body(a)
						}
						// One-sided: the serving locations are parked at the
						// closing barrier, not in a collective fence.
						loc.OneSidedFence()
						elapsed = time.Since(start)
					}
					loc.Barrier()
				})
				return elapsed
			}
		}
		var sink int64
		measures := []struct {
			series string
			body   func(a *parray.Array[int64])
		}{
			{"set_bulk", func(a *parray.Array[int64]) { a.SetBulk(idxs, vals) }},
			{"get_bulk", func(a *parray.Array[int64]) {
				for _, v := range a.GetBulk(idxs) {
					sink += v
				}
			}},
			{"set_element (elementwise)", func(a *parray.Array[int64]) {
				for i := 0; i < chunk; i++ {
					a.Set(idxs[i], vals[i])
				}
			}},
			{"get_element (sync)", func(a *parray.Array[int64]) {
				for i := 0; i < chunk; i++ {
					sink += a.Get(idxs[i])
				}
			}},
		}
		for _, ms := range measures {
			got := MeasureOp(minTime, chunk, drive(ms.body))
			rows = append(rows, timedRows("bulk", ms.series, param, got)...)
		}
		_ = sink
	}
	return rows
}

// TimedViews times the coarsened vs elementwise p_for_each over a balanced
// view of a skewed pArray — the views experiment's headline comparison —
// per element visited.  The traversal is collective: every location works
// its balanced share each repetition.
func TimedViews(cfg Config) []Row {
	var rows []Row
	minTime := cfg.timedMinTime()
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		m := machine(cfg, p)
		vs := make([]views.Balanced[int64], p)
		m.Execute(func(loc *runtime.Location) {
			part, err := partition.NewExplicit(domain.NewRange1D(0, n), skewedSizes(n, p))
			if err != nil {
				panic(err)
			}
			a := parray.New[int64](loc, n,
				parray.WithPartition(part),
				parray.WithMapper(partition.NewBlockedMapper(p, p)))
			vs[loc.ID()] = views.NewBalanced[int64](views.NewArrayNative(a))
		})
		param := fmt.Sprintf("P=%d N=%d", p, n)
		collective := func(body func(loc *runtime.Location, v views.Balanced[int64])) func(reps int) time.Duration {
			return func(reps int) time.Duration {
				var elapsed time.Duration
				m.Execute(func(loc *runtime.Location) {
					v := vs[loc.ID()]
					loc.Barrier()
					start := time.Now()
					for r := 0; r < reps; r++ {
						body(loc, v)
					}
					loc.Barrier()
					if loc.ID() == 0 {
						elapsed = time.Since(start)
					}
				})
				return elapsed
			}
		}
		coar := MeasureOp(minTime, n, collective(func(loc *runtime.Location, v views.Balanced[int64]) {
			palgo.TransformInPlace(loc, v, func(_ int64, x int64) int64 { return x + 1 })
		}))
		rows = append(rows, timedRows("views", "p_for_each (coarsened)", param, coar)...)
		elem := MeasureOp(minTime, n, collective(func(loc *runtime.Location, v views.Balanced[int64]) {
			for _, r := range v.LocalRanges(loc) {
				for i := r.Lo; i < r.Hi; i++ {
					v.Set(i, v.Get(i)+1)
				}
			}
			loc.Fence()
		}))
		rows = append(rows, timedRows("views", "p_for_each (elementwise)", param, elem)...)
	}
	return rows
}

// TimedMatrix times the coarsened vs elementwise matrix-vector product of
// the matrix experiment, per multiply-add (dv×dv of them per repetition).
func TimedMatrix(cfg Config) []Row {
	var rows []Row
	minTime := cfg.timedMinTime()
	for _, p := range cfg.Locations {
		if p == 1 {
			continue
		}
		n := cfg.ElementsPerLocation * int64(p)
		dv := isqrt(n)
		m := machine(cfg, p)
		as := make([]*pmatrix.Matrix[int64], p)
		xs := make([]*pvector.Vector[int64], p)
		ys := make([]*pvector.Vector[int64], p)
		m.Execute(func(loc *runtime.Location) {
			a := pmatrix.New[int64](loc, dv, dv)
			a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return (g.Row+g.Col)%7 + 1 })
			x := pvector.New[int64](loc, dv)
			x.LocalUpdate(func(gid int64, _ int64) int64 { return gid%5 + 1 })
			y := pvector.New[int64](loc, dv)
			loc.Fence()
			as[loc.ID()], xs[loc.ID()], ys[loc.ID()] = a, x, y
		})
		param := fmt.Sprintf("P=%d N=%d", p, dv*dv)
		collective := func(body func(loc *runtime.Location, id int)) func(reps int) time.Duration {
			return func(reps int) time.Duration {
				var elapsed time.Duration
				m.Execute(func(loc *runtime.Location) {
					loc.Barrier()
					start := time.Now()
					for r := 0; r < reps; r++ {
						body(loc, loc.ID())
					}
					loc.Barrier()
					if loc.ID() == 0 {
						elapsed = time.Since(start)
					}
				})
				return elapsed
			}
		}
		coar := MeasureOp(minTime, dv*dv, collective(func(loc *runtime.Location, id int) {
			palgo.MatVec[int64](loc, as[id], xs[id], ys[id])
		}))
		rows = append(rows, timedRows("matrix", "matvec (coarsened)", param, coar)...)
		elem := MeasureOp(minTime, dv*dv, collective(func(loc *runtime.Location, id int) {
			a, x, y := as[id], xs[id], ys[id]
			rs, cs := a.LocalBlocks()
			for b := range rs {
				for r := rs[b].Lo; r < rs[b].Hi; r++ {
					var acc int64
					for c := cs[b].Lo; c < cs[b].Hi; c++ {
						acc += a.Get(r, c) * x.Get(c)
					}
					y.Set(r, acc)
				}
			}
			loc.Fence()
		}))
		rows = append(rows, timedRows("matrix", "matvec (elementwise)", param, elem)...)
	}
	return rows
}

// TimedSparse times y = A·x on the same 1%-density matrix held dense
// (palgo.MatVec over pMatrix) and compressed (palgo.SpMV over the CSR
// SparseMatrix), per dense-equivalent multiply-add (dv×dv of them per
// repetition — the shared denominator that makes the two series
// comparable: SpMV does only the nnz of that work).
func TimedSparse(cfg Config) []Row {
	var rows []Row
	minTime := cfg.timedMinTime()
	const stride = 100 // 1% density
	for _, p := range cfg.Locations {
		if p == 1 {
			continue
		}
		n := cfg.ElementsPerLocation * int64(p)
		dv := isqrt(n)
		m := machine(cfg, p)
		ds := make([]*pmatrix.Matrix[int64], p)
		ss := make([]*pmatrix.SparseMatrix[int64], p)
		xs := make([]*pvector.Vector[int64], p)
		ys := make([]*pvector.Vector[int64], p)
		m.Execute(func(loc *runtime.Location) {
			member := func(r, c int64) bool { return (r*dv+c)%stride == 0 }
			d := pmatrix.New[int64](loc, dv, dv)
			d.UpdateLocal(func(g domain.Index2D, _ int64) int64 {
				if member(g.Row, g.Col) {
					return g.Row + 2*g.Col + 1
				}
				return 0
			})
			s := pmatrix.NewSparse[int64](loc, dv, dv)
			rs, cs := s.LocalBlocks()
			for b := range rs {
				for r := rs[b].Lo; r < rs[b].Hi; r++ {
					for c := cs[b].Lo; c < cs[b].Hi; c++ {
						if member(r, c) {
							s.SetLocal(r, c, r+2*c+1)
						}
					}
				}
			}
			x := pvector.New[int64](loc, dv)
			x.LocalUpdate(func(gid int64, _ int64) int64 { return gid%5 + 1 })
			y := pvector.New[int64](loc, dv)
			loc.Fence()
			ds[loc.ID()], ss[loc.ID()], xs[loc.ID()], ys[loc.ID()] = d, s, x, y
		})
		param := fmt.Sprintf("P=%d N=%d density=1%%", p, dv*dv)
		collective := func(body func(loc *runtime.Location, id int)) func(reps int) time.Duration {
			return func(reps int) time.Duration {
				var elapsed time.Duration
				m.Execute(func(loc *runtime.Location) {
					loc.Barrier()
					start := time.Now()
					for r := 0; r < reps; r++ {
						body(loc, loc.ID())
					}
					loc.Barrier()
					if loc.ID() == 0 {
						elapsed = time.Since(start)
					}
				})
				return elapsed
			}
		}
		dense := MeasureOp(minTime, dv*dv, collective(func(loc *runtime.Location, id int) {
			palgo.MatVec[int64](loc, ds[id], xs[id], ys[id])
		}))
		rows = append(rows, timedRows("sparse", "matvec (dense)", param, dense)...)
		sparse := MeasureOp(minTime, dv*dv, collective(func(loc *runtime.Location, id int) {
			palgo.SpMV[int64](loc, ss[id], xs[id], ys[id])
		}))
		rows = append(rows, timedRows("sparse", "matvec (csr spmv)", param, sparse)...)
	}
	return rows
}

// TimedSamplesort times the distributed sample sort per element.  Each
// repetition re-scrambles the array locally (a fixed multiplicative hash,
// outside the timed section's interest but inside the body — amortised by
// calibration like any per-rep setup) and times the collective sort.
func TimedSamplesort(cfg Config) []Row {
	var rows []Row
	minTime := cfg.timedMinTime()
	for _, p := range cfg.Locations {
		n := cfg.ElementsPerLocation * int64(p)
		m := machine(cfg, p)
		as := make([]*parray.Array[int64], p)
		m.Execute(func(loc *runtime.Location) {
			as[loc.ID()] = parray.New[int64](loc, n)
		})
		param := fmt.Sprintf("P=%d N=%d", p, n)
		got := MeasureOp(minTime, n, func(reps int) time.Duration {
			var elapsed time.Duration
			m.Execute(func(loc *runtime.Location) {
				a := as[loc.ID()]
				var total time.Duration
				for r := 0; r < reps; r++ {
					a.UpdateLocal(func(gid int64, _ int64) int64 {
						return (gid*2654435761 + 12345) % n
					})
					loc.Fence()
					loc.Barrier()
					start := time.Now()
					palgo.SampleSort(loc, a, func(x, y int64) bool { return x < y })
					loc.Barrier()
					total += time.Since(start)
				}
				if loc.ID() == 0 {
					elapsed = total
				}
			})
			return elapsed
		})
		rows = append(rows, timedRows("samplesort", "sample sort", param, got)...)
	}
	return rows
}

// TimedDirectory times repeat remote vertex-property reads through the
// distributed directory, cached and uncached, per read.  Location 0 reads
// the triangle descriptors (home ∉ {reader, owner}) of the next location's
// vertices — the directory experiment's steady-state pattern.
func TimedDirectory(cfg Config) []Row {
	var rows []Row
	minTime := cfg.timedMinTime()
	for _, p := range cfg.Locations {
		if p == 1 {
			continue
		}
		nv := cfg.ElementsPerLocation / 4
		if nv < 16 {
			nv = 16
		}
		for _, cached := range []bool{false, true} {
			m := machine(cfg, p)
			gs := make([]*pgraph.Graph[int64, int8], p)
			var reads []int64 // location 0's read set
			m.Execute(func(loc *runtime.Location) {
				g := pgraph.New[int64, int8](loc, 0,
					pgraph.WithStrategy(pgraph.DynamicDirectory),
					pgraph.WithDirectoryCache(cached))
				vds := make([]int64, nv)
				for i := range vds {
					vds[i] = g.AddVertex(int64(loc.ID())*nv + int64(i))
				}
				loc.Fence()
				gs[loc.ID()] = g
				if loc.ID() == 0 {
					owner := 1 % p
					next := runtime.AllGatherT(loc, vds)[owner]
					reads = next
					if p >= 3 {
						reads = make([]int64, 0, len(next))
						for _, vd := range next {
							if h := g.Directory().HomeOf(vd); h != loc.ID() && h != owner {
								reads = append(reads, vd)
							}
						}
					}
				} else {
					runtime.AllGatherT(loc, vds)
				}
				loc.Fence()
			})
			if len(reads) == 0 {
				continue
			}
			series := "repeat remote reads (uncached)"
			if cached {
				series = "repeat remote reads (cached)"
			}
			param := fmt.Sprintf("P=%d verts/loc=%d", p, nv)
			got := MeasureOp(minTime, int64(len(reads)), func(reps int) time.Duration {
				var elapsed time.Duration
				m.Execute(func(loc *runtime.Location) {
					loc.Barrier()
					if loc.ID() == 0 {
						g := gs[0]
						var sink int64
						start := time.Now()
						for r := 0; r < reps; r++ {
							for _, vd := range reads {
								v, _ := g.VertexProperty(vd)
								sink += v
							}
						}
						elapsed = time.Since(start)
						_ = sink
					}
					loc.Barrier()
				})
				return elapsed
			})
			rows = append(rows, timedRows("directory", series, param, got)...)
		}
	}
	return rows
}
