package domain

import (
	"testing"
	"testing/quick"
)

func TestRange1DBasics(t *testing.T) {
	r := NewRange1D(5, 12)
	if r.First() != 5 || r.Last() != 12 {
		t.Fatalf("first/last = %d/%d, want 5/12", r.First(), r.Last())
	}
	if r.Size() != 7 {
		t.Fatalf("size = %d, want 7", r.Size())
	}
	if !r.Contains(5) || !r.Contains(11) || r.Contains(12) || r.Contains(4) {
		t.Fatal("containment wrong")
	}
	if r.Invalid() != -1 {
		t.Fatalf("invalid = %d", r.Invalid())
	}
	if r.Next(5) != 6 || r.Prev(6) != 5 || r.Advance(5, 3) != 8 || r.Offset(8) != 3 {
		t.Fatal("enumeration ops wrong")
	}
	if !r.Less(5, 6) || r.Less(6, 5) {
		t.Fatal("order wrong")
	}
	if r.Empty() {
		t.Fatal("non-empty range reported empty")
	}
	if !NewRange1D(3, 3).Empty() {
		t.Fatal("empty range not reported empty")
	}
	if NewRange1D(10, 2).Size() != 0 {
		t.Fatal("inverted range should be empty")
	}
}

func TestRange1DIntersect(t *testing.T) {
	a := NewRange1D(0, 10)
	b := NewRange1D(5, 20)
	c := a.Intersect(b)
	if c.Lo != 5 || c.Hi != 10 {
		t.Fatalf("intersect = %+v, want [5,10)", c)
	}
	d := a.Intersect(NewRange1D(20, 30))
	if !d.Empty() {
		t.Fatalf("disjoint intersect should be empty, got %+v", d)
	}
}

func TestRange1DSplitProperties(t *testing.T) {
	// Property: splitting into n blocks yields a partition — blocks are
	// contiguous, disjoint, ordered, cover the range, and sizes differ by
	// at most one (Definition 9/11 of the paper).
	prop := func(loRaw, sizeRaw int32, nRaw uint8) bool {
		lo := int64(loRaw % 1000)
		size := int64(sizeRaw%10000 + 10000)
		n := int(nRaw%32) + 1
		r := NewRange1D(lo, lo+size)
		blocks := r.Split(n)
		if len(blocks) != n {
			return false
		}
		var total int64
		prev := lo
		minSz, maxSz := int64(1<<62), int64(0)
		for _, b := range blocks {
			if b.Lo != prev {
				return false
			}
			prev = b.Hi
			total += b.Size()
			if b.Size() < minSz {
				minSz = b.Size()
			}
			if b.Size() > maxSz {
				maxSz = b.Size()
			}
		}
		return prev == r.Hi && total == r.Size() && maxSz-minSz <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange1DSplitBlockedProperties(t *testing.T) {
	prop := func(sizeRaw int32, bsRaw uint8) bool {
		size := int64(sizeRaw % 5000)
		if size < 0 {
			size = -size
		}
		size++
		bs := int64(bsRaw%64) + 1
		r := NewRange1D(0, size)
		blocks := r.SplitBlocked(bs)
		var total int64
		prev := int64(0)
		for i, b := range blocks {
			if b.Lo != prev {
				return false
			}
			prev = b.Hi
			total += b.Size()
			if i < len(blocks)-1 && b.Size() != bs {
				return false
			}
			if b.Size() > bs || b.Size() == 0 {
				return false
			}
		}
		return total == size
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange1DSplitDegenerate(t *testing.T) {
	r := NewRange1D(0, 3)
	blocks := r.Split(8)
	if len(blocks) != 8 {
		t.Fatalf("want 8 blocks, got %d", len(blocks))
	}
	var total int64
	for _, b := range blocks {
		total += b.Size()
	}
	if total != 3 {
		t.Fatalf("blocks cover %d elements, want 3", total)
	}
	if got := r.Split(0); len(got) != 1 {
		t.Fatalf("split(0) should fall back to one block, got %d", len(got))
	}
	if got := r.SplitBlocked(0); len(got) == 0 {
		t.Fatal("splitBlocked(0) returned no blocks")
	}
}

func TestRange2D(t *testing.T) {
	r := NewRange2D(3, 4)
	if r.Size() != 12 {
		t.Fatalf("size = %d, want 12", r.Size())
	}
	if !r.Contains(Index2D{0, 0}) || !r.Contains(Index2D{2, 3}) || r.Contains(Index2D{3, 0}) || r.Contains(Index2D{0, 4}) {
		t.Fatal("containment wrong")
	}
	if r.First() != (Index2D{0, 0}) {
		t.Fatal("first wrong")
	}
	// Walk the whole domain in row-major order via Next.
	g := r.First()
	for i := int64(0); i < r.Size(); i++ {
		if r.Offset(g) != i {
			t.Fatalf("offset(%v) = %d, want %d", g, r.Offset(g), i)
		}
		if r.Advance(r.First(), i) != g {
			t.Fatalf("advance mismatch at %d", i)
		}
		if i > 0 && !r.Less(r.Prev(g), g) {
			t.Fatalf("order violated at %v", g)
		}
		g = r.Next(g)
	}
	if r.Contains(g) {
		t.Fatal("walk did not terminate at the domain end")
	}
	if r.Invalid() != (Index2D{-1, -1}) {
		t.Fatal("invalid wrong")
	}
	if NewRange2D(-2, 5).Size() != 0 {
		t.Fatal("negative rows should clamp to empty")
	}
}

func TestEnumerated(t *testing.T) {
	e := NewEnumerated[string]("", "red", "blue", "black")
	if e.Size() != 3 {
		t.Fatalf("size = %d", e.Size())
	}
	if e.First() != "red" || e.Last() != "" {
		t.Fatalf("first/last = %q/%q", e.First(), e.Last())
	}
	if !e.Contains("blue") || e.Contains("green") {
		t.Fatal("containment wrong")
	}
	if e.Next("red") != "blue" || e.Prev("blue") != "red" || e.Next("black") != "" {
		t.Fatal("next/prev wrong")
	}
	if e.Advance("red", 2) != "black" || e.Advance("red", 5) != "" {
		t.Fatal("advance wrong")
	}
	if e.Offset("black") != 2 || e.Offset("green") != -1 {
		t.Fatal("offset wrong")
	}
	if !e.Less("red", "black") || e.Less("black", "red") {
		t.Fatal("order should follow enumeration, not lexicographic order")
	}
	if !e.Less("red", "zzz") || e.Less("zzz", "red") {
		t.Fatal("members should order before non-members")
	}
	got := e.GIDs()
	if len(got) != 3 || got[0] != "red" {
		t.Fatalf("GIDs = %v", got)
	}
	empty := NewEnumerated[string]("")
	if empty.First() != "" || empty.Size() != 0 {
		t.Fatal("empty enumeration wrong")
	}
}

func TestKeyDomain(t *testing.T) {
	less := func(a, b string) bool { return a < b }
	d := NewKeyDomain("", less)
	if !d.Contains("anything") {
		t.Fatal("unbounded key domain must contain every key")
	}
	if d.First() != "" || d.Last() != "" {
		t.Fatal("unbounded domain bounds should be the invalid key")
	}
	r := NewKeyRange("", less, "a", "c")
	if !r.Contains("a") || !r.Contains("b") || !r.Contains("aa") || r.Contains("c") || r.Contains("zz") {
		t.Fatal("bounded key domain containment wrong")
	}
	if r.First() != "a" || r.Last() != "c" {
		t.Fatal("bounded key domain bounds wrong")
	}
	if !r.Less("a", "b") {
		t.Fatal("less wrong")
	}
	if r.Invalid() != "" {
		t.Fatal("invalid wrong")
	}
}

func TestFilteredDomain(t *testing.T) {
	base := NewRange1D(0, 10)
	even := NewFiltered[int64](base, func(g int64) bool { return g%2 == 0 })
	if even.Size() != 5 {
		t.Fatalf("size = %d, want 5", even.Size())
	}
	if even.First() != 0 {
		t.Fatalf("first = %d", even.First())
	}
	if even.Next(0) != 2 || even.Next(8) != 10 {
		t.Fatal("next wrong")
	}
	if even.Prev(4) != 2 {
		t.Fatal("prev wrong")
	}
	if even.Prev(0) != base.Invalid() {
		t.Fatal("prev before first should be invalid")
	}
	if !even.Contains(4) || even.Contains(5) || even.Contains(12) {
		t.Fatal("containment wrong")
	}
	if even.Advance(0, 3) != 6 {
		t.Fatalf("advance = %d, want 6", even.Advance(0, 3))
	}
	if even.Offset(6) != 3 {
		t.Fatalf("offset = %d, want 3", even.Offset(6))
	}
	if even.Offset(7) != -1 {
		t.Fatal("offset of non-member should be -1")
	}
	if even.Last() != 10 || even.Invalid() != -1 {
		t.Fatal("last/invalid wrong")
	}
	if !even.Less(2, 4) {
		t.Fatal("less wrong")
	}
	// Filter that rejects everything.
	none := NewFiltered[int64](base, func(int64) bool { return false })
	if none.Size() != 0 {
		t.Fatal("empty filter size wrong")
	}
	if none.First() != base.Last() {
		t.Fatal("empty filter First should be one-past-the-end")
	}
}

func TestRange1DEnumerationProperty(t *testing.T) {
	// Property: Offset and Advance are inverses within the domain.
	prop := func(loRaw int16, szRaw uint16, offRaw uint16) bool {
		lo := int64(loRaw)
		size := int64(szRaw%1000) + 1
		r := NewRange1D(lo, lo+size)
		off := int64(offRaw) % size
		g := r.Advance(r.First(), off)
		return r.Contains(g) && r.Offset(g) == off
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRange2DEnumerationProperty(t *testing.T) {
	prop := func(rRaw, cRaw uint8, offRaw uint16) bool {
		rows := int64(rRaw%20) + 1
		cols := int64(cRaw%20) + 1
		d := NewRange2D(rows, cols)
		off := int64(offRaw) % d.Size()
		g := d.Advance(d.First(), off)
		return d.Contains(g) && d.Offset(g) == off
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
