// Package domain implements the pContainer domain concepts of the STAPL
// Parallel Container Framework: sets of global identifiers (GIDs) with
// optional total orders, finite ordered domains with first/last/next/prev/
// advance/offset operations, multi-dimensional index domains, enumerated
// domains and composed (filtered, intersected) domains.
//
// Domains describe *which* elements a container (or a view of it) holds;
// partitions (package partition) decompose domains into sub-domains that are
// then mapped to locations.
package domain

// GID constraints: 1-D indexed containers use int64 indices, 2-D containers
// use Index2D, associative containers use their key type.

// Index2D is the GID type of two-dimensional indexed containers (pMatrix).
type Index2D struct {
	Row, Col int64
}

// Ordered is the ordered-domain concept (Table V of the paper): a set of
// GIDs with a total order, a first GID and a one-past-the-end "last" GID.
type Ordered[G any] interface {
	// First returns the first GID of the domain according to the order.
	First() G
	// Last returns the conventional one-past-the-end GID: every GID in
	// the domain compares less than it, and it is not itself a member.
	Last() G
	// Contains reports whether gid belongs to the domain.
	Contains(gid G) bool
	// Less compares two GIDs according to the domain order.
	Less(a, b G) bool
	// Invalid returns a GID value reserved to represent "no element".
	Invalid() G
}

// Finite is the finite ordered domain concept (Table VI): an Ordered domain
// with a known cardinality and enumeration operations.
type Finite[G any] interface {
	Ordered[G]
	// Size returns the number of GIDs in the domain.
	Size() int64
	// Next returns the GID following gid in the enumeration.
	Next(gid G) G
	// Prev returns the GID preceding gid in the enumeration.
	Prev(gid G) G
	// Advance returns the n-th GID after gid.
	Advance(gid G, n int64) G
	// Offset returns the position of gid within the enumeration.
	Offset(gid G) int64
}

// Range1D is the finite ordered domain [First, Last) over int64 indices,
// the domain used by pArray, pVector and as building block for pMatrix.
type Range1D struct {
	Lo, Hi int64 // half-open interval [Lo, Hi)
}

// NewRange1D builds the domain [lo, hi).  hi < lo is treated as empty.
func NewRange1D(lo, hi int64) Range1D {
	if hi < lo {
		hi = lo
	}
	return Range1D{Lo: lo, Hi: hi}
}

// First returns the first index.
func (r Range1D) First() int64 { return r.Lo }

// Last returns the one-past-the-end index.
func (r Range1D) Last() int64 { return r.Hi }

// Contains reports whether gid lies in [Lo, Hi).
func (r Range1D) Contains(gid int64) bool { return gid >= r.Lo && gid < r.Hi }

// Less compares indices.
func (r Range1D) Less(a, b int64) bool { return a < b }

// Invalid returns the reserved invalid index.
func (r Range1D) Invalid() int64 { return -1 }

// Size returns the number of indices.
func (r Range1D) Size() int64 { return r.Hi - r.Lo }

// Empty reports whether the domain holds no indices.
func (r Range1D) Empty() bool { return r.Hi <= r.Lo }

// Next returns gid+1.
func (r Range1D) Next(gid int64) int64 { return gid + 1 }

// Prev returns gid-1.
func (r Range1D) Prev(gid int64) int64 { return gid - 1 }

// Advance returns gid+n.
func (r Range1D) Advance(gid int64, n int64) int64 { return gid + n }

// Offset returns the position of gid relative to the first index.
func (r Range1D) Offset(gid int64) int64 { return gid - r.Lo }

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range1D) Intersect(o Range1D) Range1D {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return NewRange1D(lo, hi)
}

// Split partitions the range into n contiguous blocks whose sizes differ by
// at most one (the "split" of Definition 11), returning the blocks in order.
func (r Range1D) Split(n int) []Range1D {
	if n <= 0 {
		n = 1
	}
	size := r.Size()
	out := make([]Range1D, 0, n)
	base := size / int64(n)
	rem := size % int64(n)
	lo := r.Lo
	for i := 0; i < n; i++ {
		sz := base
		if int64(i) < rem {
			sz++
		}
		out = append(out, Range1D{Lo: lo, Hi: lo + sz})
		lo += sz
	}
	return out
}

// SplitBlocked partitions the range into consecutive blocks of the given
// block size (the last block may be smaller).
func (r Range1D) SplitBlocked(blockSize int64) []Range1D {
	if blockSize <= 0 {
		blockSize = 1
	}
	var out []Range1D
	for lo := r.Lo; lo < r.Hi; lo += blockSize {
		hi := lo + blockSize
		if hi > r.Hi {
			hi = r.Hi
		}
		out = append(out, Range1D{Lo: lo, Hi: hi})
	}
	if len(out) == 0 {
		out = append(out, r)
	}
	return out
}

var (
	_ Finite[int64] = Range1D{}
)

// Range2D is the finite ordered (row-major) domain of a two-dimensional
// indexed container: rows [0,Rows) × cols [0,Cols).
type Range2D struct {
	Rows, Cols int64
}

// NewRange2D builds a rows×cols domain.
func NewRange2D(rows, cols int64) Range2D {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return Range2D{Rows: rows, Cols: cols}
}

// First returns index (0,0).
func (r Range2D) First() Index2D { return Index2D{0, 0} }

// Last returns the conventional one-past-the-end index (Rows, 0).
func (r Range2D) Last() Index2D { return Index2D{r.Rows, 0} }

// Contains reports membership.
func (r Range2D) Contains(g Index2D) bool {
	return g.Row >= 0 && g.Row < r.Rows && g.Col >= 0 && g.Col < r.Cols
}

// Less orders indices row-major.
func (r Range2D) Less(a, b Index2D) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// Invalid returns the reserved invalid index.
func (r Range2D) Invalid() Index2D { return Index2D{-1, -1} }

// Size returns Rows*Cols.
func (r Range2D) Size() int64 { return r.Rows * r.Cols }

// Next advances one position in row-major order.
func (r Range2D) Next(g Index2D) Index2D {
	g.Col++
	if g.Col >= r.Cols {
		g.Col = 0
		g.Row++
	}
	return g
}

// Prev moves one position back in row-major order.
func (r Range2D) Prev(g Index2D) Index2D {
	g.Col--
	if g.Col < 0 {
		g.Col = r.Cols - 1
		g.Row--
	}
	return g
}

// Advance advances n positions in row-major order.
func (r Range2D) Advance(g Index2D, n int64) Index2D {
	off := r.Offset(g) + n
	return Index2D{Row: off / r.Cols, Col: off % r.Cols}
}

// Offset returns the row-major linearised position of g.
func (r Range2D) Offset(g Index2D) int64 { return g.Row*r.Cols + g.Col }

var _ Finite[Index2D] = Range2D{}

// Enumerated is a finite ordered domain given by an explicit list of GIDs in
// enumeration order (the paper's "enumeration of individual elements").
type Enumerated[G comparable] struct {
	gids    []G
	pos     map[G]int64
	invalid G
}

// NewEnumerated builds an enumerated domain over the given GIDs, in the
// given order; invalid is the reserved not-an-element value.
func NewEnumerated[G comparable](invalid G, gids ...G) *Enumerated[G] {
	e := &Enumerated[G]{gids: append([]G(nil), gids...), pos: make(map[G]int64, len(gids)), invalid: invalid}
	for i, g := range e.gids {
		e.pos[g] = int64(i)
	}
	return e
}

// First returns the first GID (or the invalid GID if empty).
func (e *Enumerated[G]) First() G {
	if len(e.gids) == 0 {
		return e.invalid
	}
	return e.gids[0]
}

// Last returns the one-past-the-end GID, represented by the invalid value.
func (e *Enumerated[G]) Last() G { return e.invalid }

// Contains reports membership.
func (e *Enumerated[G]) Contains(g G) bool { _, ok := e.pos[g]; return ok }

// Less orders by enumeration position; GIDs outside the domain compare
// greater than every member (so Last() is maximal).
func (e *Enumerated[G]) Less(a, b G) bool {
	pa, oka := e.pos[a]
	pb, okb := e.pos[b]
	switch {
	case oka && okb:
		return pa < pb
	case oka:
		return true
	default:
		return false
	}
}

// Invalid returns the reserved invalid GID.
func (e *Enumerated[G]) Invalid() G { return e.invalid }

// Size returns the number of GIDs.
func (e *Enumerated[G]) Size() int64 { return int64(len(e.gids)) }

// Next returns the GID after g in enumeration order, or the invalid GID.
func (e *Enumerated[G]) Next(g G) G {
	p, ok := e.pos[g]
	if !ok || p+1 >= int64(len(e.gids)) {
		return e.invalid
	}
	return e.gids[p+1]
}

// Prev returns the GID before g, or the invalid GID.
func (e *Enumerated[G]) Prev(g G) G {
	p, ok := e.pos[g]
	if !ok || p == 0 {
		return e.invalid
	}
	return e.gids[p-1]
}

// Advance returns the n-th GID after g.
func (e *Enumerated[G]) Advance(g G, n int64) G {
	p, ok := e.pos[g]
	if !ok || p+n < 0 || p+n >= int64(len(e.gids)) {
		return e.invalid
	}
	return e.gids[p+n]
}

// Offset returns the enumeration position of g, or -1 if absent.
func (e *Enumerated[G]) Offset(g G) int64 {
	p, ok := e.pos[g]
	if !ok {
		return -1
	}
	return p
}

// GIDs returns the enumeration (a copy).
func (e *Enumerated[G]) GIDs() []G { return append([]G(nil), e.gids...) }

// KeyDomain is the (potentially infinite) open ordered domain of associative
// containers: all keys of type K ordered by less, optionally restricted to
// the half-open interval [Lo, Hi).
type KeyDomain[K any] struct {
	less    func(a, b K) bool
	invalid K
	bounded bool
	lo, hi  K
}

// NewKeyDomain builds an unbounded key domain ordered by less.
func NewKeyDomain[K any](invalid K, less func(a, b K) bool) *KeyDomain[K] {
	return &KeyDomain[K]{less: less, invalid: invalid}
}

// NewKeyRange builds the key domain restricted to [lo, hi).
func NewKeyRange[K any](invalid K, less func(a, b K) bool, lo, hi K) *KeyDomain[K] {
	return &KeyDomain[K]{less: less, invalid: invalid, bounded: true, lo: lo, hi: hi}
}

// First returns the lower bound for bounded domains, the invalid key
// otherwise (an unbounded key universe has no first element).
func (d *KeyDomain[K]) First() K {
	if d.bounded {
		return d.lo
	}
	return d.invalid
}

// Last returns the upper bound for bounded domains, the invalid key
// otherwise.
func (d *KeyDomain[K]) Last() K {
	if d.bounded {
		return d.hi
	}
	return d.invalid
}

// Contains reports whether k belongs to the domain.
func (d *KeyDomain[K]) Contains(k K) bool {
	if !d.bounded {
		return true
	}
	return !d.less(k, d.lo) && d.less(k, d.hi)
}

// Less compares keys.
func (d *KeyDomain[K]) Less(a, b K) bool { return d.less(a, b) }

// Invalid returns the reserved invalid key.
func (d *KeyDomain[K]) Invalid() K { return d.invalid }

var _ Ordered[string] = (*KeyDomain[string])(nil)

// Filtered restricts a finite ordered domain to the GIDs accepted by a
// predicate (the paper's filtered domain, e.g. "every second element").
type Filtered[G any] struct {
	Base   Finite[G]
	Accept func(G) bool
}

// NewFiltered builds a filtered domain over base.
func NewFiltered[G any](base Finite[G], accept func(G) bool) *Filtered[G] {
	return &Filtered[G]{Base: base, Accept: accept}
}

// First returns the first accepted GID.
func (f *Filtered[G]) First() G {
	g := f.Base.First()
	for f.Base.Contains(g) && !f.Accept(g) {
		g = f.Base.Next(g)
	}
	if !f.Base.Contains(g) {
		return f.Base.Last()
	}
	return g
}

// Last returns the base domain's one-past-the-end GID.
func (f *Filtered[G]) Last() G { return f.Base.Last() }

// Contains reports membership (in the base domain and accepted).
func (f *Filtered[G]) Contains(g G) bool { return f.Base.Contains(g) && f.Accept(g) }

// Less compares using the base order.
func (f *Filtered[G]) Less(a, b G) bool { return f.Base.Less(a, b) }

// Invalid returns the base domain's invalid GID.
func (f *Filtered[G]) Invalid() G { return f.Base.Invalid() }

// Size counts the accepted GIDs (linear in the base domain size).
func (f *Filtered[G]) Size() int64 {
	var n int64
	for g := f.Base.First(); f.Base.Contains(g); g = f.Base.Next(g) {
		if f.Accept(g) {
			n++
		}
	}
	return n
}

// Next returns the next accepted GID after g.
func (f *Filtered[G]) Next(g G) G {
	g = f.Base.Next(g)
	for f.Base.Contains(g) && !f.Accept(g) {
		g = f.Base.Next(g)
	}
	if !f.Base.Contains(g) {
		return f.Base.Last()
	}
	return g
}

// Prev returns the previous accepted GID before g.
func (f *Filtered[G]) Prev(g G) G {
	g = f.Base.Prev(g)
	for f.Base.Contains(g) && !f.Accept(g) {
		g = f.Base.Prev(g)
	}
	if !f.Base.Contains(g) {
		return f.Base.Invalid()
	}
	return g
}

// Advance applies Next n times.
func (f *Filtered[G]) Advance(g G, n int64) G {
	for i := int64(0); i < n; i++ {
		g = f.Next(g)
	}
	return g
}

// Offset returns the position of g among accepted GIDs.
func (f *Filtered[G]) Offset(g G) int64 {
	var n int64
	for x := f.First(); f.Base.Contains(x); x = f.Next(x) {
		if !f.Base.Less(x, g) && !f.Base.Less(g, x) {
			return n
		}
		n++
	}
	return -1
}

var _ Finite[int64] = (*Filtered[int64])(nil)
