package bcontainer

import (
	"fmt"
	"unsafe"

	"repro/internal/partition"
)

// Edge is one directed adjacency record stored with its source vertex.
// Undirected pGraphs store each edge twice, once per endpoint, as the paper
// does.
type Edge[EP any] struct {
	Source, Target int64
	Property       EP
}

// Vertex is one vertex record of a graph base container: its descriptor
// (GID), user property and out-adjacency list.
type Vertex[VP any, EP any] struct {
	Descriptor int64
	Property   VP
	Edges      []Edge[EP]
}

// OutDegree returns the number of out-edges.
func (v *Vertex[VP, EP]) OutDegree() int { return len(v.Edges) }

// Graph is the base container of pGraph: adjacency-list storage for the
// vertices (and their out-edges) assigned to one sub-domain.  A static graph
// can additionally freeze its adjacency into CSR form (FreezeCSR): one
// packed edge array shared by every vertex, each Edges field re-sliced into
// its span — traversal order and the mutation API are unchanged, but the
// per-vertex allocations and their capacity slack collapse into a single
// contiguous block.
type Graph[VP any, EP any] struct {
	bcid     partition.BCID
	vertices map[int64]*Vertex[VP, EP]
	order    []int64 // insertion order, for deterministic traversal
	numEdges int64
	csr      []Edge[EP] // packed adjacency when frozen, nil otherwise
}

// NewGraph returns an empty graph base container.
func NewGraph[VP any, EP any](bcid partition.BCID) *Graph[VP, EP] {
	return &Graph[VP, EP]{bcid: bcid, vertices: make(map[int64]*Vertex[VP, EP])}
}

// BCID returns the sub-domain identifier.
func (g *Graph[VP, EP]) BCID() partition.BCID { return g.bcid }

// Size returns the number of stored vertices.
func (g *Graph[VP, EP]) Size() int64 { return int64(len(g.vertices)) }

// Empty reports whether no vertices are stored.
func (g *Graph[VP, EP]) Empty() bool { return len(g.vertices) == 0 }

// Clear removes all vertices and edges.
func (g *Graph[VP, EP]) Clear() {
	g.vertices = make(map[int64]*Vertex[VP, EP])
	g.order = nil
	g.numEdges = 0
	g.csr = nil
}

// FreezeCSR repacks every vertex's adjacency into one contiguous edge array
// (compressed sparse rows over the local vertex order) and re-slices each
// Edges field into its span with exact capacity.  Reads are unchanged; a
// later AddEdge to a frozen vertex appends, which copies that vertex's span
// out of the packed array — correctness never depends on staying frozen.
// Idempotent; a re-freeze after mutations repacks.
func (g *Graph[VP, EP]) FreezeCSR() {
	packed := make([]Edge[EP], 0, g.numEdges)
	for _, vd := range g.order {
		v := g.vertices[vd]
		start := len(packed)
		packed = append(packed, v.Edges...)
		v.Edges = packed[start:len(packed):len(packed)]
	}
	g.csr = packed
}

// CSRFrozen reports whether the adjacency is currently packed (true between
// FreezeCSR and the next Clear; edge mutations on individual vertices leave
// the remaining spans packed).
func (g *Graph[VP, EP]) CSRFrozen() bool { return g.csr != nil }

// NumEdges returns the number of locally stored adjacency records.
func (g *Graph[VP, EP]) NumEdges() int64 { return g.numEdges }

// AddVertex stores a vertex with the given descriptor and property.  It
// reports whether the vertex was newly added (false when the descriptor was
// already present, in which case the property is left unchanged).
func (g *Graph[VP, EP]) AddVertex(vd int64, prop VP) bool {
	if _, ok := g.vertices[vd]; ok {
		return false
	}
	g.vertices[vd] = &Vertex[VP, EP]{Descriptor: vd, Property: prop}
	g.order = append(g.order, vd)
	return true
}

// DeleteVertex removes the vertex and its out-edges, reporting whether it
// existed.  In-edges stored with other vertices (possibly on other
// locations) are the owning pGraph's responsibility, as in the paper, where
// delete_vertex is not a single atomic transaction.
func (g *Graph[VP, EP]) DeleteVertex(vd int64) bool {
	v, ok := g.vertices[vd]
	if !ok {
		return false
	}
	g.numEdges -= int64(len(v.Edges))
	delete(g.vertices, vd)
	for i, x := range g.order {
		if x == vd {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return true
}

// HasVertex reports whether the vertex is stored locally.
func (g *Graph[VP, EP]) HasVertex(vd int64) bool { _, ok := g.vertices[vd]; return ok }

// Vertex returns the stored vertex record.
func (g *Graph[VP, EP]) Vertex(vd int64) (*Vertex[VP, EP], bool) {
	v, ok := g.vertices[vd]
	return v, ok
}

func (g *Graph[VP, EP]) mustVertex(vd int64) *Vertex[VP, EP] {
	v, ok := g.vertices[vd]
	if !ok {
		panic(fmt.Sprintf("bcontainer: vertex %d not stored in this bContainer", vd))
	}
	return v
}

// Property returns the property of a locally stored vertex.
func (g *Graph[VP, EP]) Property(vd int64) VP { return g.mustVertex(vd).Property }

// SetProperty replaces the property of a locally stored vertex.
func (g *Graph[VP, EP]) SetProperty(vd int64, p VP) { g.mustVertex(vd).Property = p }

// ApplyVertex applies fn to the property of a locally stored vertex in
// place.
func (g *Graph[VP, EP]) ApplyVertex(vd int64, fn func(VP) VP) {
	v := g.mustVertex(vd)
	v.Property = fn(v.Property)
}

// AddEdge appends an out-edge to the locally stored source vertex.  When
// multi is false an existing (source,target) adjacency suppresses the
// insertion and AddEdge reports false.
func (g *Graph[VP, EP]) AddEdge(src, tgt int64, prop EP, multi bool) bool {
	v := g.mustVertex(src)
	if !multi {
		for _, e := range v.Edges {
			if e.Target == tgt {
				return false
			}
		}
	}
	v.Edges = append(v.Edges, Edge[EP]{Source: src, Target: tgt, Property: prop})
	g.numEdges++
	return true
}

// DeleteEdge removes the first out-edge (src → tgt) and reports whether one
// existed.
func (g *Graph[VP, EP]) DeleteEdge(src, tgt int64) bool {
	v, ok := g.vertices[src]
	if !ok {
		return false
	}
	for i, e := range v.Edges {
		if e.Target == tgt {
			v.Edges = append(v.Edges[:i], v.Edges[i+1:]...)
			g.numEdges--
			return true
		}
	}
	return false
}

// FindEdge returns the first out-edge (src → tgt).
func (g *Graph[VP, EP]) FindEdge(src, tgt int64) (Edge[EP], bool) {
	if v, ok := g.vertices[src]; ok {
		for _, e := range v.Edges {
			if e.Target == tgt {
				return e, true
			}
		}
	}
	var zero Edge[EP]
	return zero, false
}

// OutDegree returns the out-degree of a locally stored vertex.
func (g *Graph[VP, EP]) OutDegree(vd int64) int { return g.mustVertex(vd).OutDegree() }

// OutEdges returns a copy of the out-edges of a locally stored vertex.
func (g *Graph[VP, EP]) OutEdges(vd int64) []Edge[EP] {
	return append([]Edge[EP](nil), g.mustVertex(vd).Edges...)
}

// RangeVertices iterates locally stored vertices in insertion order,
// stopping early if fn returns false.
func (g *Graph[VP, EP]) RangeVertices(fn func(v *Vertex[VP, EP]) bool) {
	for _, vd := range g.order {
		if !fn(g.vertices[vd]) {
			return
		}
	}
}

// VertexDescriptors returns the locally stored descriptors in insertion
// order (a copy).
func (g *Graph[VP, EP]) VertexDescriptors() []int64 { return append([]int64(nil), g.order...) }

// MemoryBytes reports data and metadata footprints: properties and edge
// records are data, the descriptor index is metadata.
func (g *Graph[VP, EP]) MemoryBytes() (data, meta int64) {
	var vp VP
	var ep EP
	data = int64(len(g.vertices))*int64(unsafe.Sizeof(vp)) + g.numEdges*(16+int64(unsafe.Sizeof(ep)))
	meta = int64(len(g.vertices))*24 + int64(unsafe.Sizeof(*g))
	return data, meta
}
