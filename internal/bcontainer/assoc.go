package bcontainer

import (
	"sort"
	"unsafe"

	"repro/internal/partition"
)

// HashMap is the base container of unordered pair-associative pContainers
// (pHashMap): per-location hash storage with amortised O(1) insert, find and
// erase.
type HashMap[K comparable, V any] struct {
	bcid partition.BCID
	m    map[K]V
}

// NewHashMap returns an empty hash-map base container.
func NewHashMap[K comparable, V any](bcid partition.BCID) *HashMap[K, V] {
	return &HashMap[K, V]{bcid: bcid, m: make(map[K]V)}
}

// BCID returns the sub-domain identifier.
func (h *HashMap[K, V]) BCID() partition.BCID { return h.bcid }

// Size returns the number of stored pairs.
func (h *HashMap[K, V]) Size() int64 { return int64(len(h.m)) }

// Empty reports whether no pairs are stored.
func (h *HashMap[K, V]) Empty() bool { return len(h.m) == 0 }

// Clear removes all pairs.
func (h *HashMap[K, V]) Clear() { h.m = make(map[K]V) }

// Insert stores (k, v), overwriting any previous value, and reports whether
// the key was newly inserted.
func (h *HashMap[K, V]) Insert(k K, v V) bool {
	_, existed := h.m[k]
	h.m[k] = v
	return !existed
}

// InsertIfAbsent stores (k, v) only when the key is absent and reports
// whether it inserted (the semantics of simple associative insert).
func (h *HashMap[K, V]) InsertIfAbsent(k K, v V) bool {
	if _, existed := h.m[k]; existed {
		return false
	}
	h.m[k] = v
	return true
}

// Find returns the value stored under k.
func (h *HashMap[K, V]) Find(k K) (V, bool) { v, ok := h.m[k]; return v, ok }

// Erase removes k and reports whether it was present.
func (h *HashMap[K, V]) Erase(k K) bool {
	if _, ok := h.m[k]; !ok {
		return false
	}
	delete(h.m, k)
	return true
}

// Apply applies fn to the value stored under k (inserting the zero value
// first if the key is absent) and stores the result back.  It is the
// building block of data-parallel reductions into maps (MapReduce).
func (h *HashMap[K, V]) Apply(k K, fn func(V) V) {
	h.m[k] = fn(h.m[k])
}

// Range iterates the stored pairs in unspecified order, stopping early if fn
// returns false.
func (h *HashMap[K, V]) Range(fn func(k K, v V) bool) {
	for k, v := range h.m {
		if !fn(k, v) {
			return
		}
	}
}

// Keys returns all stored keys in unspecified order.
func (h *HashMap[K, V]) Keys() []K {
	out := make([]K, 0, len(h.m))
	for k := range h.m {
		out = append(out, k)
	}
	return out
}

// MemoryBytes reports data and metadata footprints.
func (h *HashMap[K, V]) MemoryBytes() (data, meta int64) {
	var k K
	var v V
	per := int64(unsafe.Sizeof(k)) + int64(unsafe.Sizeof(v))
	return int64(len(h.m)) * per, int64(len(h.m))*16 + int64(unsafe.Sizeof(*h))
}

// SortedMap is the base container of ordered pair-associative pContainers
// (pMap): keys are kept sorted, giving O(log n) find and ordered traversal,
// like the tree-backed STL map the paper wraps.
type SortedMap[K any, V any] struct {
	bcid partition.BCID
	less func(a, b K) bool
	keys []K
	vals []V
}

// NewSortedMap returns an empty sorted-map base container ordered by less.
func NewSortedMap[K any, V any](bcid partition.BCID, less func(a, b K) bool) *SortedMap[K, V] {
	return &SortedMap[K, V]{bcid: bcid, less: less}
}

// BCID returns the sub-domain identifier.
func (s *SortedMap[K, V]) BCID() partition.BCID { return s.bcid }

// Size returns the number of stored pairs.
func (s *SortedMap[K, V]) Size() int64 { return int64(len(s.keys)) }

// Empty reports whether no pairs are stored.
func (s *SortedMap[K, V]) Empty() bool { return len(s.keys) == 0 }

// Clear removes all pairs.
func (s *SortedMap[K, V]) Clear() { s.keys, s.vals = nil, nil }

// lowerBound returns the first position whose key is not less than k.
func (s *SortedMap[K, V]) lowerBound(k K) int {
	return sort.Search(len(s.keys), func(i int) bool { return !s.less(s.keys[i], k) })
}

func (s *SortedMap[K, V]) equal(a, b K) bool { return !s.less(a, b) && !s.less(b, a) }

// Insert stores (k, v), overwriting any previous value, and reports whether
// the key was newly inserted.
func (s *SortedMap[K, V]) Insert(k K, v V) bool {
	i := s.lowerBound(k)
	if i < len(s.keys) && s.equal(s.keys[i], k) {
		s.vals[i] = v
		return false
	}
	s.keys = append(s.keys, k)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = k
	s.vals = append(s.vals, v)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = v
	return true
}

// InsertIfAbsent stores (k, v) only when the key is absent.
func (s *SortedMap[K, V]) InsertIfAbsent(k K, v V) bool {
	i := s.lowerBound(k)
	if i < len(s.keys) && s.equal(s.keys[i], k) {
		return false
	}
	return s.Insert(k, v)
}

// Find returns the value stored under k.
func (s *SortedMap[K, V]) Find(k K) (V, bool) {
	i := s.lowerBound(k)
	if i < len(s.keys) && s.equal(s.keys[i], k) {
		return s.vals[i], true
	}
	var zero V
	return zero, false
}

// Erase removes k and reports whether it was present.
func (s *SortedMap[K, V]) Erase(k K) bool {
	i := s.lowerBound(k)
	if i >= len(s.keys) || !s.equal(s.keys[i], k) {
		return false
	}
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
	return true
}

// Apply applies fn to the value stored under k (inserting a zero value if
// absent) and stores the result back.
func (s *SortedMap[K, V]) Apply(k K, fn func(V) V) {
	i := s.lowerBound(k)
	if i < len(s.keys) && s.equal(s.keys[i], k) {
		s.vals[i] = fn(s.vals[i])
		return
	}
	var zero V
	s.Insert(k, fn(zero))
}

// Range iterates pairs in key order, stopping early if fn returns false.
func (s *SortedMap[K, V]) Range(fn func(k K, v V) bool) {
	for i, k := range s.keys {
		if !fn(k, s.vals[i]) {
			return
		}
	}
}

// Keys returns the stored keys in order (a copy).
func (s *SortedMap[K, V]) Keys() []K { return append([]K(nil), s.keys...) }

// MinKey returns the smallest stored key.
func (s *SortedMap[K, V]) MinKey() (K, bool) {
	if len(s.keys) == 0 {
		var zero K
		return zero, false
	}
	return s.keys[0], true
}

// MaxKey returns the largest stored key.
func (s *SortedMap[K, V]) MaxKey() (K, bool) {
	if len(s.keys) == 0 {
		var zero K
		return zero, false
	}
	return s.keys[len(s.keys)-1], true
}

// MemoryBytes reports data and metadata footprints.
func (s *SortedMap[K, V]) MemoryBytes() (data, meta int64) {
	var k K
	var v V
	per := int64(unsafe.Sizeof(k)) + int64(unsafe.Sizeof(v))
	return int64(len(s.keys)) * per, int64(unsafe.Sizeof(*s))
}
