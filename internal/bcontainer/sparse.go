package bcontainer

import (
	"fmt"
	"sort"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/transport"
)

// SparseMatrixBlock is the CSR sibling of MatrixBlock: the elements of one
// rectangular sub-domain stored as compressed sparse rows — a row-pointer
// array plus parallel (column, value) arrays holding only the explicitly set
// entries, sorted by column within each row.  Absent entries read as the
// zero value, so a sparse block is element-for-element interchangeable with
// a dense one whose unset elements are zero, at a footprint that scales with
// the nonzeros.
type SparseMatrixBlock[T any] struct {
	bcid partition.BCID
	rows domain.Range1D
	cols domain.Range1D

	rowPtr []int64 // len rows.Size()+1; entries of row r live in [rowPtr[r-lo], rowPtr[r-lo+1])
	nzCols []int64 // global column indices, ascending within each row
	vals   []T
}

// NewSparseMatrixBlock returns an empty (all-zero) CSR block covering
// rows × cols.
func NewSparseMatrixBlock[T any](bcid partition.BCID, rows, cols domain.Range1D) *SparseMatrixBlock[T] {
	return &SparseMatrixBlock[T]{
		bcid:   bcid,
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int64, rows.Size()+1),
	}
}

// BCID returns the sub-domain identifier.
func (m *SparseMatrixBlock[T]) BCID() partition.BCID { return m.bcid }

// Rows returns the block's row range.
func (m *SparseMatrixBlock[T]) Rows() domain.Range1D { return m.rows }

// Cols returns the block's column range.
func (m *SparseMatrixBlock[T]) Cols() domain.Range1D { return m.cols }

// Size returns the dense capacity of the sub-domain (rows × cols), like the
// dense block: the block represents every element, it just stores few.
func (m *SparseMatrixBlock[T]) Size() int64 { return m.rows.Size() * m.cols.Size() }

// NNZ returns the number of explicitly stored entries.
func (m *SparseMatrixBlock[T]) NNZ() int64 { return int64(len(m.vals)) }

// Empty reports whether no entries are explicitly stored.
func (m *SparseMatrixBlock[T]) Empty() bool { return len(m.vals) == 0 }

// Clear removes every explicit entry (all elements read as zero again).
func (m *SparseMatrixBlock[T]) Clear() {
	m.rowPtr = make([]int64, m.rows.Size()+1)
	m.nzCols, m.vals = nil, nil
}

func (m *SparseMatrixBlock[T]) checkIndex(g domain.Index2D) {
	if !m.rows.Contains(g.Row) || !m.cols.Contains(g.Col) {
		panic(fmt.Sprintf("bcontainer: index (%d,%d) outside sparse block rows %v cols %v", g.Row, g.Col, m.rows, m.cols))
	}
}

// rowSpan returns the [lo, hi) positions of row's entries in nzCols/vals.
func (m *SparseMatrixBlock[T]) rowSpan(row int64) (int, int) {
	r := row - m.rows.Lo
	return int(m.rowPtr[r]), int(m.rowPtr[r+1])
}

// find returns the position of (row, col), or the insertion position and
// false when the entry is absent.
func (m *SparseMatrixBlock[T]) find(g domain.Index2D) (int, bool) {
	lo, hi := m.rowSpan(g.Row)
	i := lo + sort.Search(hi-lo, func(k int) bool { return m.nzCols[lo+k] >= g.Col })
	return i, i < hi && m.nzCols[i] == g.Col
}

// Get returns the element at g — the stored entry, or the zero value.
func (m *SparseMatrixBlock[T]) Get(g domain.Index2D) T {
	m.checkIndex(g)
	if i, ok := m.find(g); ok {
		return m.vals[i]
	}
	var zero T
	return zero
}

// Set stores val at g as an explicit entry (inserting or overwriting).
func (m *SparseMatrixBlock[T]) Set(g domain.Index2D, val T) {
	m.checkIndex(g)
	i, ok := m.find(g)
	if ok {
		m.vals[i] = val
		return
	}
	m.nzCols = append(m.nzCols, 0)
	copy(m.nzCols[i+1:], m.nzCols[i:])
	m.nzCols[i] = g.Col
	var zero T
	m.vals = append(m.vals, zero)
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = val
	for r := g.Row - m.rows.Lo + 1; r < int64(len(m.rowPtr)); r++ {
		m.rowPtr[r]++
	}
}

// Apply applies fn to the element at g in place (reading zero when absent,
// storing the result as an explicit entry).
func (m *SparseMatrixBlock[T]) Apply(g domain.Index2D, fn func(T) T) {
	m.checkIndex(g)
	if i, ok := m.find(g); ok {
		m.vals[i] = fn(m.vals[i])
		return
	}
	var zero T
	m.Set(g, fn(zero))
}

// Erase removes the explicit entry at g (the element reads as zero after),
// reporting whether one was stored.
func (m *SparseMatrixBlock[T]) Erase(g domain.Index2D) bool {
	m.checkIndex(g)
	i, ok := m.find(g)
	if !ok {
		return false
	}
	m.nzCols = append(m.nzCols[:i], m.nzCols[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	for r := g.Row - m.rows.Lo + 1; r < int64(len(m.rowPtr)); r++ {
		m.rowPtr[r]--
	}
	return true
}

// RowNZ returns the raw CSR storage of one row — the ascending global column
// indices and their values — without copying.  It is the native span the
// coarsened sparse kernels walk; callers follow the native-view discipline
// (read-only, own work decomposition, fence between conflicting phases).
func (m *SparseMatrixBlock[T]) RowNZ(row int64) (cols []int64, vals []T) {
	if !m.rows.Contains(row) {
		panic(fmt.Sprintf("bcontainer: row %d outside sparse block rows %v", row, m.rows))
	}
	lo, hi := m.rowSpan(row)
	return m.nzCols[lo:hi:hi], m.vals[lo:hi:hi]
}

// RangeNZ iterates the stored entries in row-major order, stopping early if
// fn returns false.
func (m *SparseMatrixBlock[T]) RangeNZ(fn func(g domain.Index2D, val T) bool) {
	for r := m.rows.Lo; r < m.rows.Hi; r++ {
		lo, hi := m.rowSpan(r)
		for i := lo; i < hi; i++ {
			if !fn(domain.Index2D{Row: r, Col: m.nzCols[i]}, m.vals[i]) {
				return
			}
		}
	}
}

// InstallRow merges one wire row into the block.  The fast path — the row is
// locally empty, the normal case during relayout — splices the whole row in
// one copy; otherwise entries merge individually.
func (m *SparseMatrixBlock[T]) InstallRow(seg SparseRow[T]) {
	if len(seg.Cols) == 0 {
		return
	}
	lo, hi := m.rowSpan(seg.Row)
	if lo == hi {
		i := lo
		m.nzCols = append(m.nzCols, seg.Cols...)
		copy(m.nzCols[i+len(seg.Cols):], m.nzCols[i:])
		copy(m.nzCols[i:], seg.Cols)
		m.vals = append(m.vals, seg.Vals...)
		copy(m.vals[i+len(seg.Vals):], m.vals[i:])
		copy(m.vals[i:], seg.Vals)
		for r := seg.Row - m.rows.Lo + 1; r < int64(len(m.rowPtr)); r++ {
			m.rowPtr[r] += int64(len(seg.Cols))
		}
		return
	}
	for k, c := range seg.Cols {
		m.Set(domain.Index2D{Row: seg.Row, Col: c}, seg.Vals[k])
	}
}

// MemoryBytes reports data and metadata footprints: values and column
// indices are data (they scale with the nonzeros), the row-pointer array is
// metadata.
func (m *SparseMatrixBlock[T]) MemoryBytes() (data, meta int64) {
	var t T
	data = int64(len(m.vals))*int64(unsafe.Sizeof(t)) + int64(len(m.nzCols))*8
	meta = int64(len(m.rowPtr))*8 + int64(unsafe.Sizeof(*m))
	return data, meta
}

// SparseRow is the wire form of one CSR row: the global row index plus the
// row's (column, value) entries in ascending column order.  It is the
// element type sparse relayout/migration ships — encoded bytes scale with
// the row's nonzeros, never with the column span.
type SparseRow[T any] struct {
	Row  int64
	Cols []int64
	Vals []T
}

// SparseRowCodec derives the wire codec for SparseRow[T] from the element
// codec: row varint, entry count, delta-compressed ascending columns, then
// the values.  Decoding validates the structure (monotone columns, sane
// counts) so corrupt frames fail sticky instead of building broken rows.
func SparseRowCodec[T any](elem transport.Codec[T]) transport.Codec[SparseRow[T]] {
	return transport.Codec[SparseRow[T]]{
		Name: "bcontainer.sparse-row[" + elem.Name + "]",
		Encode: func(b *transport.Buffer, v SparseRow[T]) {
			b.PutVarint(v.Row)
			b.PutUvarint(uint64(len(v.Cols)))
			prev := int64(0)
			for i, c := range v.Cols {
				if i == 0 {
					b.PutVarint(c)
				} else {
					b.PutUvarint(uint64(c - prev))
				}
				prev = c
			}
			for _, x := range v.Vals {
				elem.Encode(b, x)
			}
		},
		Decode: func(b *transport.Buffer) SparseRow[T] {
			row := b.Varint()
			n := b.Uvarint()
			if n > uint64(b.Remaining()) {
				b.Fail("sparse row: %d entries, %d bytes left", n, b.Remaining())
				return SparseRow[T]{}
			}
			cols := make([]int64, n)
			prev := int64(0)
			for i := range cols {
				if i == 0 {
					cols[i] = b.Varint()
				} else {
					d := b.Uvarint()
					if d == 0 {
						b.Fail("sparse row: non-increasing columns")
						return SparseRow[T]{}
					}
					cols[i] = prev + int64(d)
				}
				prev = cols[i]
			}
			vals := make([]T, n)
			for i := range vals {
				vals[i] = elem.Decode(b)
			}
			if b.Err() != nil {
				return SparseRow[T]{}
			}
			return SparseRow[T]{Row: row, Cols: cols, Vals: vals}
		},
	}
}

// EncodedRowBytes returns the exact wire size of one row under codec c (the
// byte-accounting hook sparse migration specs use).
func EncodedRowBytes[T any](c transport.Codec[SparseRow[T]], scratch *transport.Buffer, v SparseRow[T]) int {
	scratch.Reset(scratch.Bytes()[:0])
	c.Encode(scratch, v)
	return scratch.Len()
}
