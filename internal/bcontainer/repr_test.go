package bcontainer

import (
	"bytes"
	"testing"

	"repro/internal/domain"
	"repro/internal/transport"
)

// TestSetChunkTransitions pins the roaring-style representation switch: fill
// to the threshold and the chunk is an array, one more insert converts it to
// a bitmap, removing back below converts it to an array again — with
// membership preserved across both transitions.
func TestSetChunkTransitions(t *testing.T) {
	c := NewSetChunk()
	for k := 0; k < ArrayMaxCard; k++ {
		if !c.Insert(uint16(k * 7 % SetChunkSize)) {
			t.Fatalf("insert %d not new", k)
		}
	}
	if c.Kind() != ReprArray || c.Cardinality() != ArrayMaxCard {
		t.Fatalf("at threshold: kind=%v card=%d, want array/%d", c.Kind(), c.Cardinality(), ArrayMaxCard)
	}
	// The insert past the threshold must switch to the bitmap representation.
	extra := uint16(4000)
	if !c.Insert(extra) {
		t.Fatal("threshold-crossing insert not new")
	}
	if c.Kind() != ReprBitmap || c.Cardinality() != ArrayMaxCard+1 {
		t.Fatalf("past threshold: kind=%v card=%d, want bitmap/%d", c.Kind(), c.Cardinality(), ArrayMaxCard+1)
	}
	for k := 0; k < ArrayMaxCard; k++ {
		if !c.Contains(uint16(k * 7 % SetChunkSize)) {
			t.Fatalf("member %d lost in array→bitmap switch", k)
		}
	}
	// Removing back to the threshold must switch back to the array.
	if !c.Remove(extra) {
		t.Fatal("remove of present member failed")
	}
	if c.Kind() != ReprArray || c.Cardinality() != ArrayMaxCard {
		t.Fatalf("below threshold: kind=%v card=%d, want array/%d", c.Kind(), c.Cardinality(), ArrayMaxCard)
	}
	for k := 0; k < ArrayMaxCard; k++ {
		if !c.Contains(uint16(k * 7 % SetChunkSize)) {
			t.Fatalf("member %d lost in bitmap→array switch", k)
		}
	}
	if c.Contains(extra) {
		t.Fatal("removed member still present")
	}
}

// TestSetChunkEncode pins the wire form of both representations: byte-exact
// round trips and an EncodedBytes that matches the actual encoding.
func TestSetChunkEncode(t *testing.T) {
	cases := map[string]func() *SetChunk{
		"empty": NewSetChunk,
		"array": func() *SetChunk {
			c := NewSetChunk()
			for k := 0; k < 100; k++ {
				c.Insert(uint16(k * 41 % SetChunkSize))
			}
			return c
		},
		"bitmap": func() *SetChunk {
			c := NewSetChunk()
			for k := 0; k < 2*ArrayMaxCard; k++ {
				c.Insert(uint16(k * 5 % SetChunkSize))
			}
			return c
		},
	}
	for name, mk := range cases {
		c := mk()
		enc := transport.NewBuffer()
		c.Encode(enc)
		if got := c.EncodedBytes(); got != enc.Len() {
			t.Fatalf("%s: EncodedBytes=%d, actual=%d", name, got, enc.Len())
		}
		dec := DecodeSetChunk(transport.NewReader(enc.Bytes()))
		if dec.Cardinality() != c.Cardinality() || dec.Kind() != c.Kind() {
			t.Fatalf("%s: decode card=%d kind=%v, want %d/%v", name, dec.Cardinality(), dec.Kind(), c.Cardinality(), c.Kind())
		}
		re := transport.NewBuffer()
		dec.Encode(re)
		if !bytes.Equal(enc.Bytes(), re.Bytes()) {
			t.Fatalf("%s: re-encoding differs", name)
		}
	}
}

// TestCompressedSetBasics exercises the chunked set across chunk boundaries:
// membership, ordered traversal, per-chunk representation, and the
// resident-bytes contrast with domain-scaled dense storage.
func TestCompressedSetBasics(t *testing.T) {
	s := NewCompressedSet(3)
	if s.BCID() != 3 || !s.Empty() {
		t.Fatal("metadata wrong")
	}
	keys := []int64{0, 1, SetChunkSize - 1, SetChunkSize, 3 * SetChunkSize, 3*SetChunkSize + 7, 1 << 40}
	for _, k := range keys {
		if !s.Insert(k) {
			t.Fatalf("insert %d not new", k)
		}
		if s.Insert(k) {
			t.Fatalf("re-insert %d reported new", k)
		}
	}
	if s.Size() != int64(len(keys)) || s.NumChunks() != 4 {
		t.Fatalf("size=%d chunks=%d", s.Size(), s.NumChunks())
	}
	var got []int64
	s.Range(func(k int64) bool { got = append(got, k); return true })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Range not ascending: %v", got)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("Range visited %d of %d", len(got), len(keys))
	}
	if kind, ok := s.ChunkKind(0); !ok || kind != ReprArray {
		t.Fatal("sparse chunk should be array-represented")
	}
	if !s.Erase(SetChunkSize) || s.Contains(SetChunkSize) {
		t.Fatal("erase failed")
	}
	if s.Erase(SetChunkSize) {
		t.Fatal("double erase reported success")
	}
	if s.NumChunks() != 3 {
		t.Fatal("emptied chunk not released")
	}

	// Fill one chunk past the threshold: its representation flips to bitmap
	// while the others stay arrays, and resident bytes stay far below one
	// word per domain slot.
	for k := int64(0); k <= ArrayMaxCard; k++ {
		s.Insert(5*SetChunkSize + k)
	}
	if kind, _ := s.ChunkKind(5 * SetChunkSize); kind != ReprBitmap {
		t.Fatal("dense chunk should have switched to bitmap")
	}
	data, _ := s.MemoryBytes()
	if dense := int64(1<<40) * 8; data >= dense/1000 {
		t.Fatalf("compressed data bytes %d not ≪ dense %d", data, dense)
	}
}

// TestCompressedSetSegments pins the segment round trip: Segments →
// wire-encode → decode → InstallSegment reproduces the set member-for-member,
// and ByteSize matches the encoding exactly.
func TestCompressedSetSegments(t *testing.T) {
	s := NewCompressedSet(0)
	for k := int64(0); k < 3000; k++ {
		s.Insert(k * 11 % (4 * SetChunkSize))
	}
	rebuilt := NewCompressedSet(1)
	for _, seg := range s.Segments() {
		enc := transport.NewBuffer()
		SetSegmentCodec.Encode(enc, seg)
		if enc.Len() != seg.ByteSize() {
			t.Fatalf("chunk %d: ByteSize=%d, encoded=%d", seg.Chunk, seg.ByteSize(), enc.Len())
		}
		dec := SetSegmentCodec.Decode(transport.NewReader(enc.Bytes()))
		rebuilt.InstallSegment(dec)
	}
	if rebuilt.Size() != s.Size() {
		t.Fatalf("rebuilt size %d, want %d", rebuilt.Size(), s.Size())
	}
	s.Range(func(k int64) bool {
		if !rebuilt.Contains(k) {
			t.Fatalf("member %d lost in segment round trip", k)
		}
		return true
	})
}

// TestSparseBlockDenseEquivalence fills a CSR block and a dense block with
// the same pattern and requires element-for-element equality over the whole
// sub-domain (dense→CSR construction equivalence), then pins Erase, Apply
// and the native row span.
func TestSparseBlockDenseEquivalence(t *testing.T) {
	rows, cols := domain.NewRange1D(10, 42), domain.NewRange1D(5, 69)
	sp := NewSparseMatrixBlock[int64](1, rows, cols)
	dn := NewMatrixBlock[int64](2, rows, cols)
	for r := rows.Lo; r < rows.Hi; r++ {
		for c := cols.Lo; c < cols.Hi; c++ {
			if (r*31+c*17)%13 == 0 {
				g := domain.Index2D{Row: r, Col: c}
				sp.Set(g, r*1000+c)
				dn.Set(g, r*1000+c)
			}
		}
	}
	if sp.NNZ() == 0 || sp.NNZ() == sp.Size() {
		t.Fatalf("degenerate fill: nnz=%d", sp.NNZ())
	}
	for r := rows.Lo; r < rows.Hi; r++ {
		for c := cols.Lo; c < cols.Hi; c++ {
			g := domain.Index2D{Row: r, Col: c}
			if sp.Get(g) != dn.Get(g) {
				t.Fatalf("(%d,%d): sparse=%d dense=%d", r, c, sp.Get(g), dn.Get(g))
			}
		}
	}
	// Native row spans agree with Get and are ascending.
	for r := rows.Lo; r < rows.Hi; r++ {
		cs, vs := sp.RowNZ(r)
		for i := range cs {
			if i > 0 && cs[i-1] >= cs[i] {
				t.Fatalf("row %d: columns not ascending", r)
			}
			if sp.Get(domain.Index2D{Row: r, Col: cs[i]}) != vs[i] {
				t.Fatalf("row %d col %d: span disagrees with Get", r, cs[i])
			}
		}
	}
	g := domain.Index2D{Row: 13, Col: 26}
	sp.Apply(g, func(v int64) int64 { return v + 1 })
	dn.Apply(g, func(v int64) int64 { return v + 1 })
	if sp.Get(g) != dn.Get(g) {
		t.Fatal("Apply diverged from dense")
	}
	was := sp.NNZ()
	if !sp.Erase(g) || sp.Get(g) != 0 || sp.NNZ() != was-1 {
		t.Fatal("Erase did not zero the element")
	}
	if sp.Erase(g) {
		t.Fatal("double erase reported success")
	}
	data, _ := sp.MemoryBytes()
	denseData, _ := dn.MemoryBytes()
	if data >= denseData {
		t.Fatalf("sparse data bytes %d not below dense %d", data, denseData)
	}
}

// TestSparseRowCodec pins the CSR row wire form: byte-exact round trips,
// EncodedRowBytes equals the real encoding, and InstallRow's splice fast
// path reproduces entries exactly.
func TestSparseRowCodec(t *testing.T) {
	codec := SparseRowCodec(transport.Int64Codec)
	rows, cols := domain.NewRange1D(0, 8), domain.NewRange1D(0, 1<<20)
	src := NewSparseMatrixBlock[int64](0, rows, cols)
	for i := int64(0); i < 200; i++ {
		src.Set(domain.Index2D{Row: i % 8, Col: (i * 5003) % (1 << 20)}, i)
	}
	dst := NewSparseMatrixBlock[int64](1, rows, cols)
	scratch := transport.NewBuffer()
	for r := rows.Lo; r < rows.Hi; r++ {
		cs, vs := src.RowNZ(r)
		seg := SparseRow[int64]{Row: r, Cols: cs, Vals: vs}
		first, second, err := codec.RoundTrip(seg)
		if err != nil || !bytes.Equal(first, second) {
			t.Fatalf("row %d: round trip: %v", r, err)
		}
		if EncodedRowBytes(codec, scratch, seg) != len(first) {
			t.Fatalf("row %d: EncodedRowBytes mismatch", r)
		}
		dst.InstallRow(seg)
	}
	if dst.NNZ() != src.NNZ() {
		t.Fatalf("install: nnz %d, want %d", dst.NNZ(), src.NNZ())
	}
	src.RangeNZ(func(g domain.Index2D, v int64) bool {
		if dst.Get(g) != v {
			t.Fatalf("(%d,%d) lost in install", g.Row, g.Col)
		}
		return true
	})
}

// TestGraphFreezeCSR pins the CSR adjacency freeze: traversal is unchanged,
// post-freeze edge mutation is safe (copy-out on append), and re-freeze
// repacks.
func TestGraphFreezeCSR(t *testing.T) {
	g := NewGraph[int64, int8](0)
	for v := int64(0); v < 50; v++ {
		g.AddVertex(v, v*10)
	}
	for v := int64(0); v < 50; v++ {
		g.AddEdge(v, (v+1)%50, int8(v%7), true)
		g.AddEdge(v, (v+13)%50, int8(v%5), true)
	}
	type adj struct {
		vd    int64
		edges []Edge[int8]
	}
	snapshot := func() []adj {
		var out []adj
		g.RangeVertices(func(v *Vertex[int64, int8]) bool {
			out = append(out, adj{v.Descriptor, append([]Edge[int8](nil), v.Edges...)})
			return true
		})
		return out
	}
	before := g.NumEdges()
	want := snapshot()
	g.FreezeCSR()
	if !g.CSRFrozen() || g.NumEdges() != before {
		t.Fatal("freeze changed edge count")
	}
	got := snapshot()
	for i := range want {
		if got[i].vd != want[i].vd || len(got[i].edges) != len(want[i].edges) {
			t.Fatalf("vertex %d adjacency changed by freeze", want[i].vd)
		}
		for j := range want[i].edges {
			if got[i].edges[j] != want[i].edges[j] {
				t.Fatalf("vertex %d edge %d changed by freeze", want[i].vd, j)
			}
		}
	}
	// Mutating one frozen vertex must not disturb its neighbours' spans.
	g.AddEdge(7, 20, 1, true)
	g.DeleteEdge(8, 9)
	if g.OutDegree(7) != 3 {
		t.Fatal("post-freeze AddEdge lost")
	}
	if d := g.OutDegree(8); d != 1 {
		t.Fatalf("post-freeze DeleteEdge: degree %d", d)
	}
	for _, v := range []int64{6, 9, 10} {
		cur := g.OutEdges(v)
		for i, e := range want[v].edges {
			if cur[i] != e {
				t.Fatalf("vertex %d disturbed by neighbour mutation", v)
			}
		}
	}
	g.FreezeCSR() // re-freeze after mutation repacks cleanly
	if g.OutDegree(7) != 3 || g.OutDegree(8) != 1 {
		t.Fatal("re-freeze lost mutations")
	}
}
