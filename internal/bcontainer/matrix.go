package bcontainer

import (
	"fmt"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
)

// MatrixBlock is the base container of pMatrix: dense row-major storage for
// one rectangular block of a two-dimensional domain.
type MatrixBlock[T any] struct {
	bcid partition.BCID
	rows domain.Range1D
	cols domain.Range1D
	data []T
}

// NewMatrixBlock allocates storage for the block rows × cols.
func NewMatrixBlock[T any](bcid partition.BCID, rows, cols domain.Range1D) *MatrixBlock[T] {
	return &MatrixBlock[T]{bcid: bcid, rows: rows, cols: cols, data: make([]T, rows.Size()*cols.Size())}
}

// BCID returns the sub-domain identifier.
func (m *MatrixBlock[T]) BCID() partition.BCID { return m.bcid }

// Rows returns the global row range of the block.
func (m *MatrixBlock[T]) Rows() domain.Range1D { return m.rows }

// Cols returns the global column range of the block.
func (m *MatrixBlock[T]) Cols() domain.Range1D { return m.cols }

// Size returns the number of stored elements.
func (m *MatrixBlock[T]) Size() int64 { return int64(len(m.data)) }

// Empty reports whether the block stores no elements.
func (m *MatrixBlock[T]) Empty() bool { return len(m.data) == 0 }

// Clear zeroes the stored elements.
func (m *MatrixBlock[T]) Clear() {
	var zero T
	for i := range m.data {
		m.data[i] = zero
	}
}

func (m *MatrixBlock[T]) index(g domain.Index2D) int {
	if !m.rows.Contains(g.Row) || !m.cols.Contains(g.Col) {
		panic(fmt.Sprintf("bcontainer: index %v outside block rows %v cols %v", g, m.rows, m.cols))
	}
	return int((g.Row-m.rows.Lo)*m.cols.Size() + (g.Col - m.cols.Lo))
}

// Get returns the element at the given global 2-D index.
func (m *MatrixBlock[T]) Get(g domain.Index2D) T { return m.data[m.index(g)] }

// Set stores val at the given global 2-D index.
func (m *MatrixBlock[T]) Set(g domain.Index2D, val T) { m.data[m.index(g)] = val }

// Apply applies fn to the element at the given global 2-D index in place.
func (m *MatrixBlock[T]) Apply(g domain.Index2D, fn func(T) T) {
	i := m.index(g)
	m.data[i] = fn(m.data[i])
}

// Range iterates the block's elements in row-major order, stopping early if
// fn returns false.
func (m *MatrixBlock[T]) Range(fn func(g domain.Index2D, val T) bool) {
	i := 0
	for r := m.rows.Lo; r < m.rows.Hi; r++ {
		for c := m.cols.Lo; c < m.cols.Hi; c++ {
			if !fn(domain.Index2D{Row: r, Col: c}, m.data[i]) {
				return
			}
			i++
		}
	}
}

// Update replaces every element with the value fn returns for it.
func (m *MatrixBlock[T]) Update(fn func(g domain.Index2D, val T) T) {
	i := 0
	for r := m.rows.Lo; r < m.rows.Hi; r++ {
		for c := m.cols.Lo; c < m.cols.Hi; c++ {
			m.data[i] = fn(domain.Index2D{Row: r, Col: c}, m.data[i])
			i++
		}
	}
}

// Slice exposes the whole block's row-major backing storage.  Like
// Array.Slice it is the raw-segment escape hatch of the native views: the
// caller follows the bracket-free native-view discipline (only touch data in
// its own work decomposition, separate conflicting phases with fences).
func (m *MatrixBlock[T]) Slice() []T { return m.data }

// RowSlice returns the contiguous storage of one global row restricted to
// this block's columns.  The caller must hold the container's data bracket.
func (m *MatrixBlock[T]) RowSlice(row int64) []T {
	if !m.rows.Contains(row) {
		panic(fmt.Sprintf("bcontainer: row %d outside block rows %v", row, m.rows))
	}
	start := (row - m.rows.Lo) * m.cols.Size()
	return m.data[start : start+m.cols.Size()]
}

// MemoryBytes reports data and metadata footprints.
func (m *MatrixBlock[T]) MemoryBytes() (data, meta int64) {
	var t T
	return int64(len(m.data)) * int64(unsafe.Sizeof(t)), int64(unsafe.Sizeof(*m))
}
