package bcontainer

import (
	"fmt"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
)

// Vector is the base container of pVector: contiguous growable storage for
// an index sub-domain, supporting O(1) access by GID, amortised O(1)
// push_back and O(n) insert/erase at arbitrary positions (the classic
// vector/list trade-off the paper's Fig. 42 experiment measures).
type Vector[T any] struct {
	bcid partition.BCID
	// lo is the first global index stored; the k-th element has global
	// index lo+k.  Inserting or erasing shifts the indices of the
	// elements after the mutation point, as in a sequential vector.
	lo   int64
	data []T
}

// NewVector allocates a vector base container for the given sub-domain and
// fills it with size zero values.
func NewVector[T any](bcid partition.BCID, dom domain.Range1D) *Vector[T] {
	return &Vector[T]{bcid: bcid, lo: dom.Lo, data: make([]T, dom.Size())}
}

// BCID returns the sub-domain identifier.
func (v *Vector[T]) BCID() partition.BCID { return v.bcid }

// Size returns the number of stored elements.
func (v *Vector[T]) Size() int64 { return int64(len(v.data)) }

// Empty reports whether no elements are stored.
func (v *Vector[T]) Empty() bool { return len(v.data) == 0 }

// Clear removes all elements.
func (v *Vector[T]) Clear() { v.data = v.data[:0] }

// Domain returns the contiguous global index range currently stored.
func (v *Vector[T]) Domain() domain.Range1D {
	return domain.Range1D{Lo: v.lo, Hi: v.lo + int64(len(v.data))}
}

func (v *Vector[T]) index(gid int64) int {
	i := gid - v.lo
	if i < 0 || i >= int64(len(v.data)) {
		panic(fmt.Sprintf("bcontainer: GID %d outside vector block [%d,%d)", gid, v.lo, v.lo+int64(len(v.data))))
	}
	return int(i)
}

// Get returns the element with the given global index.
func (v *Vector[T]) Get(gid int64) T { return v.data[v.index(gid)] }

// Set stores val at the given global index.
func (v *Vector[T]) Set(gid int64, val T) { v.data[v.index(gid)] = val }

// Apply applies fn to the element with the given global index in place.
func (v *Vector[T]) Apply(gid int64, fn func(T) T) { i := v.index(gid); v.data[i] = fn(v.data[i]) }

// PushBack appends val to the end of the block, returning its global index.
func (v *Vector[T]) PushBack(val T) int64 {
	v.data = append(v.data, val)
	return v.lo + int64(len(v.data)) - 1
}

// PopBack removes the last element.  It panics on an empty block.
func (v *Vector[T]) PopBack() T {
	if len(v.data) == 0 {
		panic("bcontainer: PopBack on empty vector block")
	}
	x := v.data[len(v.data)-1]
	v.data = v.data[:len(v.data)-1]
	return x
}

// Insert inserts val before the element with global index gid (linear time:
// later elements shift up by one position).
func (v *Vector[T]) Insert(gid int64, val T) {
	i := gid - v.lo
	if i < 0 || i > int64(len(v.data)) {
		panic(fmt.Sprintf("bcontainer: insert position %d outside [%d,%d]", gid, v.lo, v.lo+int64(len(v.data))))
	}
	v.data = append(v.data, val)
	copy(v.data[i+1:], v.data[i:])
	v.data[i] = val
}

// Erase removes the element with global index gid (linear time).
func (v *Vector[T]) Erase(gid int64) {
	i := v.index(gid)
	copy(v.data[i:], v.data[i+1:])
	v.data = v.data[:len(v.data)-1]
}

// Range iterates elements in index order, stopping early if fn returns
// false.
func (v *Vector[T]) Range(fn func(gid int64, val T) bool) {
	for i, x := range v.data {
		if !fn(v.lo+int64(i), x) {
			return
		}
	}
}

// Update replaces every element with the value fn returns for it.
func (v *Vector[T]) Update(fn func(gid int64, val T) T) {
	for i := range v.data {
		v.data[i] = fn(v.lo+int64(i), v.data[i])
	}
}

// Slice exposes the underlying storage for native-view algorithms.
func (v *Vector[T]) Slice() []T { return v.data }

// SetBase rebases the block so its first element has global index lo.  The
// owning pVector uses it after global renumbering.
func (v *Vector[T]) SetBase(lo int64) { v.lo = lo }

// MemoryBytes reports data and metadata footprints.
func (v *Vector[T]) MemoryBytes() (data, meta int64) {
	var t T
	return int64(cap(v.data)) * int64(unsafe.Sizeof(t)), int64(unsafe.Sizeof(*v))
}
