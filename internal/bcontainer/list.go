package bcontainer

import (
	"fmt"
	"unsafe"

	"repro/internal/partition"
)

// List is the base container of pList: a doubly-linked list whose nodes have
// stable local identifiers, so the GID of an element (location id + local
// node id) remains valid across insertions and deletions elsewhere in the
// list — the property that gives pList its O(1) splice/insert behaviour in
// the paper.
type List[T any] struct {
	bcid   partition.BCID
	nextID int64
	nodes  map[int64]*listNode[T]
	head   *listNode[T]
	tail   *listNode[T]
	size   int64
}

type listNode[T any] struct {
	id         int64
	value      T
	prev, next *listNode[T]
}

// NewList returns an empty list base container.
func NewList[T any](bcid partition.BCID) *List[T] {
	return &List[T]{bcid: bcid, nodes: make(map[int64]*listNode[T])}
}

// BCID returns the sub-domain identifier.
func (l *List[T]) BCID() partition.BCID { return l.bcid }

// Size returns the number of stored elements.
func (l *List[T]) Size() int64 { return l.size }

// Empty reports whether the list is empty.
func (l *List[T]) Empty() bool { return l.size == 0 }

// Clear removes all elements.
func (l *List[T]) Clear() {
	l.nodes = make(map[int64]*listNode[T])
	l.head, l.tail, l.size = nil, nil, 0
}

func (l *List[T]) newNode(val T) *listNode[T] {
	n := &listNode[T]{id: l.nextID, value: val}
	l.nextID++
	l.nodes[n.id] = n
	l.size++
	return n
}

// newNodeID creates a node under an explicit, caller-allocated identifier.
// Directory-backed pLists allocate globally unique ids (birth location +
// counter) so an element keeps its id when it migrates between base
// containers; a list must not mix explicit and counter-assigned ids.
func (l *List[T]) newNodeID(id int64, val T) *listNode[T] {
	if _, dup := l.nodes[id]; dup {
		panic(fmt.Sprintf("bcontainer: duplicate list node id %d", id))
	}
	n := &listNode[T]{id: id, value: val}
	l.nodes[id] = n
	l.size++
	return n
}

// PushBack appends val and returns the new element's local identifier.
func (l *List[T]) PushBack(val T) int64 {
	n := l.newNode(val)
	l.linkBack(n)
	return n.id
}

// PushFront prepends val and returns the new element's local identifier.
func (l *List[T]) PushFront(val T) int64 {
	n := l.newNode(val)
	l.linkFront(n)
	return n.id
}

// linkBack appends an existing node at the tail.
func (l *List[T]) linkBack(n *listNode[T]) {
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
}

// linkFront prepends an existing node at the head.
func (l *List[T]) linkFront(n *listNode[T]) {
	if l.head == nil {
		l.head, l.tail = n, n
	} else {
		n.next = l.head
		l.head.prev = n
		l.head = n
	}
}

// PushBackID appends val under an explicit node id (see newNodeID).
func (l *List[T]) PushBackID(id int64, val T) {
	l.linkBack(l.newNodeID(id, val))
}

// PushFrontID prepends val under an explicit node id (see newNodeID).
func (l *List[T]) PushFrontID(id int64, val T) {
	l.linkFront(l.newNodeID(id, val))
}

// InsertBeforeID inserts val under an explicit node id before the element
// with local id at (see newNodeID).
func (l *List[T]) InsertBeforeID(at, id int64, val T) {
	ref := l.node(at)
	n := l.newNodeID(id, val)
	n.prev = ref.prev
	n.next = ref
	if ref.prev != nil {
		ref.prev.next = n
	} else {
		l.head = n
	}
	ref.prev = n
}

func (l *List[T]) node(id int64) *listNode[T] {
	n, ok := l.nodes[id]
	if !ok {
		panic(fmt.Sprintf("bcontainer: list node %d does not exist", id))
	}
	return n
}

// InsertBefore inserts val before the element with the given local id and
// returns the new element's local id.
func (l *List[T]) InsertBefore(id int64, val T) int64 {
	at := l.node(id)
	n := l.newNode(val)
	n.prev = at.prev
	n.next = at
	if at.prev != nil {
		at.prev.next = n
	} else {
		l.head = n
	}
	at.prev = n
	return n.id
}

// Erase removes the element with the given local id and returns its value.
func (l *List[T]) Erase(id int64) T {
	n := l.node(id)
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	delete(l.nodes, id)
	l.size--
	return n.value
}

// PopFront removes and returns the first element's value.  It panics on an
// empty list.
func (l *List[T]) PopFront() T {
	if l.head == nil {
		panic("bcontainer: PopFront on empty list block")
	}
	return l.Erase(l.head.id)
}

// PopBack removes and returns the last element's value.  It panics on an
// empty list.
func (l *List[T]) PopBack() T {
	if l.tail == nil {
		panic("bcontainer: PopBack on empty list block")
	}
	return l.Erase(l.tail.id)
}

// Get returns the value of the element with the given local id.
func (l *List[T]) Get(id int64) T { return l.node(id).value }

// Set replaces the value of the element with the given local id.
func (l *List[T]) Set(id int64, val T) { l.node(id).value = val }

// Apply applies fn to the element with the given local id in place.
func (l *List[T]) Apply(id int64, fn func(T) T) { n := l.node(id); n.value = fn(n.value) }

// Contains reports whether a node with the given local id exists.
func (l *List[T]) Contains(id int64) bool { _, ok := l.nodes[id]; return ok }

// FrontID returns the local id of the first element, or -1 if empty.
func (l *List[T]) FrontID() int64 {
	if l.head == nil {
		return -1
	}
	return l.head.id
}

// BackID returns the local id of the last element, or -1 if empty.
func (l *List[T]) BackID() int64 {
	if l.tail == nil {
		return -1
	}
	return l.tail.id
}

// NextID returns the local id of the element following id, or -1 at the end.
func (l *List[T]) NextID(id int64) int64 {
	n := l.node(id)
	if n.next == nil {
		return -1
	}
	return n.next.id
}

// PrevID returns the local id of the element preceding id, or -1 at the
// beginning.
func (l *List[T]) PrevID(id int64) int64 {
	n := l.node(id)
	if n.prev == nil {
		return -1
	}
	return n.prev.id
}

// Range iterates elements from front to back, stopping early if fn returns
// false.
func (l *List[T]) Range(fn func(id int64, val T) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.id, n.value) {
			return
		}
	}
}

// Update replaces every element with the value fn returns for it, in
// front-to-back order.
func (l *List[T]) Update(fn func(id int64, val T) T) {
	for n := l.head; n != nil; n = n.next {
		n.value = fn(n.id, n.value)
	}
}

// Values returns the values in list order (a copy).
func (l *List[T]) Values() []T {
	out := make([]T, 0, l.size)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.value)
	}
	return out
}

// SpliceBack appends all elements of other (in order) to this list and
// clears other.  Node identifiers of the spliced elements are reassigned in
// this list.
func (l *List[T]) SpliceBack(other *List[T]) {
	for n := other.head; n != nil; n = n.next {
		l.PushBack(n.value)
	}
	other.Clear()
}

// MemoryBytes reports data and metadata footprints: node values are data,
// links and the id index are metadata.
func (l *List[T]) MemoryBytes() (data, meta int64) {
	var t T
	data = l.size * int64(unsafe.Sizeof(t))
	meta = l.size*(3*8) + int64(unsafe.Sizeof(*l)) // prev/next/id per node
	return data, meta
}
