package bcontainer

import (
	"sort"
	"unsafe"

	"repro/internal/partition"
	"repro/internal/transport"
)

// CompressedSet is a base container for sets of int64 keys stored through
// the adaptive representation seam: members are grouped into aligned chunks
// of SetChunkSize consecutive keys, each chunk a SetChunk that switches
// array↔bitmap by cardinality.  Resident bytes scale with the members (2
// bytes each in sparse chunks, bounded by SetChunkSize/8 per chunk in dense
// ones), not with the key universe — the compressed counterpart of storing
// one flag word per possible key.
type CompressedSet struct {
	bcid   partition.BCID
	chunks map[int64]*SetChunk // chunk index (key >> SetChunkBits) → chunk
	card   int64
}

// NewCompressedSet returns an empty compressed set base container.
func NewCompressedSet(bcid partition.BCID) *CompressedSet {
	return &CompressedSet{bcid: bcid, chunks: make(map[int64]*SetChunk)}
}

// BCID returns the sub-domain identifier.
func (s *CompressedSet) BCID() partition.BCID { return s.bcid }

// Size returns the number of members.
func (s *CompressedSet) Size() int64 { return s.card }

// Empty reports whether no members are stored.
func (s *CompressedSet) Empty() bool { return s.card == 0 }

// Clear removes all members.
func (s *CompressedSet) Clear() {
	s.chunks = make(map[int64]*SetChunk)
	s.card = 0
}

// NumChunks returns the number of resident chunks.
func (s *CompressedSet) NumChunks() int { return len(s.chunks) }

// Insert adds key and reports whether it was newly added.
func (s *CompressedSet) Insert(key int64) bool {
	ci := key >> SetChunkBits
	c := s.chunks[ci]
	if c == nil {
		c = NewSetChunk()
		s.chunks[ci] = c
	}
	if c.Insert(uint16(key & SetChunkMask)) {
		s.card++
		return true
	}
	return false
}

// Contains reports membership of key.
func (s *CompressedSet) Contains(key int64) bool {
	c := s.chunks[key>>SetChunkBits]
	return c != nil && c.Contains(uint16(key&SetChunkMask))
}

// Erase removes key and reports whether it was a member.  An emptied chunk
// is released.
func (s *CompressedSet) Erase(key int64) bool {
	ci := key >> SetChunkBits
	c := s.chunks[ci]
	if c == nil || !c.Remove(uint16(key&SetChunkMask)) {
		return false
	}
	s.card--
	if c.Cardinality() == 0 {
		delete(s.chunks, ci)
	}
	return true
}

// ChunkKind reports the representation of the chunk holding key, and whether
// such a chunk is resident (it is the transition-assertion hook of the
// roaring pattern).
func (s *CompressedSet) ChunkKind(key int64) (ReprKind, bool) {
	c := s.chunks[key>>SetChunkBits]
	if c == nil {
		return ReprArray, false
	}
	return c.Kind(), true
}

// chunkIndices returns the resident chunk indices in ascending order.
func (s *CompressedSet) chunkIndices() []int64 {
	idx := make([]int64, 0, len(s.chunks))
	for ci := range s.chunks {
		idx = append(idx, ci)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// Range iterates the members in ascending key order, stopping early if fn
// returns false.
func (s *CompressedSet) Range(fn func(key int64) bool) {
	for _, ci := range s.chunkIndices() {
		base := ci << SetChunkBits
		stop := false
		s.chunks[ci].Range(func(k uint16) bool {
			if !fn(base | int64(k)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Segments returns the resident chunks as wire segments in ascending chunk
// order.  The segments alias the live chunks; callers that mutate the set
// before shipping them must copy first.
func (s *CompressedSet) Segments() []SetSegment {
	out := make([]SetSegment, 0, len(s.chunks))
	for _, ci := range s.chunkIndices() {
		out = append(out, SetSegment{Chunk: ci, Set: s.chunks[ci]})
	}
	return out
}

// InstallSegment merges one segment's members into the set.
func (s *CompressedSet) InstallSegment(seg SetSegment) {
	base := seg.Chunk << SetChunkBits
	seg.Set.Range(func(k uint16) bool {
		s.Insert(base | int64(k))
		return true
	})
}

// MemoryBytes reports data and metadata footprints: representation payloads
// are data, the chunk index is metadata.
func (s *CompressedSet) MemoryBytes() (data, meta int64) {
	for _, c := range s.chunks {
		data += c.MemoryBytes()
	}
	meta = int64(len(s.chunks))*24 + int64(unsafe.Sizeof(*s))
	return data, meta
}

// SetSegment is the wire form of one compressed-set chunk: the chunk index
// plus its adaptive payload.  It is the element type compressed-set
// migration ships — the encoded form is exactly the resident representation,
// so migration bytes scale with members, not key span.
type SetSegment struct {
	Chunk int64
	Set   *SetChunk
}

// ByteSize returns the exact encoded size of the segment (the Sizer hook the
// runtime's byte accounting consults).
func (g SetSegment) ByteSize() int {
	return varintLen(g.Chunk) + g.Set.EncodedBytes()
}

// varintLen returns the encoded length of v as a zig-zag varint.
func varintLen(v int64) int {
	return uvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// SetSegmentCodec encodes SetSegment values; it is registered with the wire
// codec registry so compressed-set migration is self-decoding across process
// boundaries.
var SetSegmentCodec = transport.RegisterTyped(transport.Register(transport.Codec[SetSegment]{
	Name: "bcontainer.set-segment",
	Encode: func(b *transport.Buffer, v SetSegment) {
		b.PutVarint(v.Chunk)
		v.Set.Encode(b)
	},
	Decode: func(b *transport.Buffer) SetSegment {
		return SetSegment{Chunk: b.Varint(), Set: DecodeSetChunk(b)}
	},
}, setSegmentSamples()...))

// setSegmentSamples builds registry self-check samples covering both
// representations and the array→bitmap boundary.
func setSegmentSamples() []SetSegment {
	sparse := NewSetChunk()
	for k := 0; k < 40; k++ {
		sparse.Insert(uint16(k * 97 % SetChunkSize))
	}
	dense := NewSetChunk()
	for k := 0; k <= ArrayMaxCard; k++ {
		dense.Insert(uint16(k * 3 % SetChunkSize))
	}
	return []SetSegment{
		{Chunk: 0, Set: NewSetChunk()},
		{Chunk: 5, Set: sparse},
		{Chunk: -3, Set: dense},
	}
}
