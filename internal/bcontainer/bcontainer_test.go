package bcontainer

import (
	"testing"
	"testing/quick"

	"repro/internal/domain"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray[int](2, domain.NewRange1D(10, 20))
	if a.BCID() != 2 || a.Size() != 10 || a.Empty() {
		t.Fatal("metadata wrong")
	}
	if a.Domain() != domain.NewRange1D(10, 20) {
		t.Fatal("domain wrong")
	}
	a.Set(10, 5)
	a.Set(19, 7)
	if a.Get(10) != 5 || a.Get(19) != 7 || a.Get(15) != 0 {
		t.Fatal("get/set wrong")
	}
	a.Apply(10, func(x int) int { return x * 2 })
	if a.Get(10) != 10 {
		t.Fatal("apply wrong")
	}
	if got := a.ApplyGet(19, func(x int) any { return x + 1 }); got != 8 {
		t.Fatalf("applyGet = %v", got)
	}
	if a.Get(19) != 7 {
		t.Fatal("applyGet must not modify the element")
	}
	var sum int
	a.Range(func(gid int64, v int) bool { sum += v; return true })
	if sum != 17 {
		t.Fatalf("range sum = %d", sum)
	}
	a.Update(func(gid int64, v int) int { return 1 })
	if a.Get(15) != 1 {
		t.Fatal("update wrong")
	}
	if len(a.Slice()) != 10 {
		t.Fatal("slice wrong")
	}
	d, m := a.MemoryBytes()
	if d != 80 || m <= 0 {
		t.Fatalf("memory = %d,%d", d, m)
	}
	a.Clear()
	if a.Get(10) != 0 {
		t.Fatal("clear should zero elements")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain access should panic")
		}
	}()
	a.Get(20)
}

func TestArrayRangeEarlyStop(t *testing.T) {
	a := NewArray[int](0, domain.NewRange1D(0, 100))
	count := 0
	a.Range(func(int64, int) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector[string](1, domain.NewRange1D(5, 8))
	if v.Size() != 3 || v.BCID() != 1 {
		t.Fatal("metadata wrong")
	}
	v.Set(5, "a")
	v.Set(7, "c")
	if v.Get(5) != "a" || v.Get(6) != "" || v.Get(7) != "c" {
		t.Fatal("get/set wrong")
	}
	gid := v.PushBack("d")
	if gid != 8 || v.Size() != 4 || v.Get(8) != "d" {
		t.Fatal("push_back wrong")
	}
	v.Insert(6, "b")
	if v.Size() != 5 || v.Get(6) != "b" || v.Get(7) != "" || v.Get(8) != "c" {
		t.Fatalf("insert shifted wrong: %v", v.Slice())
	}
	v.Erase(7)
	if v.Size() != 4 || v.Get(7) != "c" {
		t.Fatal("erase wrong")
	}
	if got := v.PopBack(); got != "d" || v.Size() != 3 {
		t.Fatalf("pop_back = %q", got)
	}
	v.Apply(5, func(s string) string { return s + "!" })
	if v.Get(5) != "a!" {
		t.Fatal("apply wrong")
	}
	if v.Domain() != domain.NewRange1D(5, 8) {
		t.Fatalf("domain = %v", v.Domain())
	}
	v.SetBase(100)
	if v.Get(100) != "a!" {
		t.Fatal("rebase wrong")
	}
	var collected []string
	v.Range(func(gid int64, s string) bool { collected = append(collected, s); return true })
	if len(collected) != 3 || collected[0] != "a!" {
		t.Fatalf("range = %v", collected)
	}
	v.Update(func(gid int64, s string) string { return "x" })
	if v.Get(101) != "x" {
		t.Fatal("update wrong")
	}
	d, m := v.MemoryBytes()
	if d <= 0 || m <= 0 {
		t.Fatal("memory accounting wrong")
	}
	v.Clear()
	if !v.Empty() {
		t.Fatal("clear wrong")
	}
}

func TestVectorPanics(t *testing.T) {
	v := NewVector[int](0, domain.NewRange1D(0, 2))
	mustPanic(t, func() { v.Get(5) })
	mustPanic(t, func() { v.Insert(9, 1) })
	v.Clear()
	mustPanic(t, func() { v.PopBack() })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestVectorInsertEraseProperty(t *testing.T) {
	// Property: a random interleaving of push_back / insert / erase keeps
	// the vector equivalent to the same operations on a plain slice.
	prop := func(ops []uint8) bool {
		v := NewVector[int](0, domain.NewRange1D(0, 0))
		var ref []int
		val := 0
		for _, op := range ops {
			switch {
			case op%3 == 0 || len(ref) == 0:
				v.PushBack(val)
				ref = append(ref, val)
			case op%3 == 1:
				pos := int(op) % len(ref)
				v.Insert(int64(pos), val)
				ref = append(ref, 0)
				copy(ref[pos+1:], ref[pos:])
				ref[pos] = val
			default:
				pos := int(op) % len(ref)
				v.Erase(int64(pos))
				ref = append(ref[:pos], ref[pos+1:]...)
			}
			val++
		}
		if v.Size() != int64(len(ref)) {
			return false
		}
		for i, want := range ref {
			if v.Get(int64(i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestListBasics(t *testing.T) {
	l := NewList[int](3)
	if !l.Empty() || l.BCID() != 3 {
		t.Fatal("metadata wrong")
	}
	a := l.PushBack(1)
	b := l.PushBack(2)
	c := l.PushFront(0)
	if l.Size() != 3 {
		t.Fatalf("size = %d", l.Size())
	}
	if got := l.Values(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("values = %v", got)
	}
	if l.FrontID() != c || l.BackID() != b {
		t.Fatal("front/back ids wrong")
	}
	if l.NextID(c) != a || l.PrevID(a) != c || l.NextID(b) != -1 || l.PrevID(c) != -1 {
		t.Fatal("links wrong")
	}
	d := l.InsertBefore(b, 99)
	if got := l.Values(); got[2] != 99 || got[3] != 2 {
		t.Fatalf("insert before wrong: %v", got)
	}
	if !l.Contains(d) || l.Contains(12345) {
		t.Fatal("contains wrong")
	}
	l.Set(d, 100)
	if l.Get(d) != 100 {
		t.Fatal("get/set wrong")
	}
	l.Apply(d, func(x int) int { return x + 1 })
	if l.Get(d) != 101 {
		t.Fatal("apply wrong")
	}
	if got := l.Erase(d); got != 101 || l.Size() != 3 {
		t.Fatal("erase wrong")
	}
	if got := l.PopFront(); got != 0 {
		t.Fatalf("pop_front = %d", got)
	}
	if got := l.PopBack(); got != 2 {
		t.Fatalf("pop_back = %d", got)
	}
	if l.Size() != 1 {
		t.Fatal("size after pops wrong")
	}
	l.Update(func(id int64, v int) int { return v * 10 })
	if l.Get(a) != 10 {
		t.Fatal("update wrong")
	}
	d1, m1 := l.MemoryBytes()
	if d1 <= 0 || m1 <= 0 {
		t.Fatal("memory accounting wrong")
	}
	l.Clear()
	if !l.Empty() || l.FrontID() != -1 || l.BackID() != -1 {
		t.Fatal("clear wrong")
	}
	mustPanic(t, func() { l.PopFront() })
	mustPanic(t, func() { l.Get(a) })
}

func TestListStableIDs(t *testing.T) {
	// The defining pList property: identifiers remain valid while other
	// elements are inserted and erased.
	l := NewList[int](0)
	ids := make([]int64, 0, 100)
	for i := 0; i < 100; i++ {
		ids = append(ids, l.PushBack(i))
	}
	for i := 0; i < 50; i++ {
		l.Erase(ids[2*i])
	}
	for i := 0; i < 50; i++ {
		if !l.Contains(ids[2*i+1]) {
			t.Fatalf("surviving id %d invalidated", ids[2*i+1])
		}
		if l.Get(ids[2*i+1]) != 2*i+1 {
			t.Fatalf("value of surviving id changed")
		}
	}
	if l.Size() != 50 {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestListSplice(t *testing.T) {
	a := NewList[int](0)
	b := NewList[int](1)
	a.PushBack(1)
	a.PushBack(2)
	b.PushBack(3)
	b.PushBack(4)
	a.SpliceBack(b)
	if a.Size() != 4 || !b.Empty() {
		t.Fatal("splice sizes wrong")
	}
	got := a.Values()
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("splice order = %v", got)
		}
	}
}

func TestListOrderProperty(t *testing.T) {
	// Property: Values() order always matches a reference slice under a
	// random sequence of PushBack/PushFront.
	prop := func(ops []bool) bool {
		l := NewList[int](0)
		var ref []int
		for i, front := range ops {
			if front {
				l.PushFront(i)
				ref = append([]int{i}, ref...)
			} else {
				l.PushBack(i)
				ref = append(ref, i)
			}
		}
		got := l.Values()
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapBasics(t *testing.T) {
	h := NewHashMap[string, int](0)
	if !h.Empty() {
		t.Fatal("new map not empty")
	}
	if !h.Insert("a", 1) || h.Insert("a", 2) {
		t.Fatal("insert newness wrong")
	}
	if v, ok := h.Find("a"); !ok || v != 2 {
		t.Fatal("find wrong")
	}
	if !h.InsertIfAbsent("b", 3) || h.InsertIfAbsent("a", 9) {
		t.Fatal("insertIfAbsent wrong")
	}
	if v, _ := h.Find("a"); v != 2 {
		t.Fatal("insertIfAbsent must not overwrite")
	}
	h.Apply("c", func(v int) int { return v + 10 })
	if v, _ := h.Find("c"); v != 10 {
		t.Fatal("apply on absent key should start from zero value")
	}
	if h.Size() != 3 || len(h.Keys()) != 3 {
		t.Fatal("size/keys wrong")
	}
	if !h.Erase("b") || h.Erase("b") {
		t.Fatal("erase wrong")
	}
	count := 0
	h.Range(func(k string, v int) bool { count++; return true })
	if count != 2 {
		t.Fatal("range wrong")
	}
	d, m := h.MemoryBytes()
	if d <= 0 || m <= 0 {
		t.Fatal("memory wrong")
	}
	h.Clear()
	if !h.Empty() {
		t.Fatal("clear wrong")
	}
}

func TestSortedMapBasics(t *testing.T) {
	s := NewSortedMap[int, string](0, func(a, b int) bool { return a < b })
	for _, k := range []int{5, 1, 3, 2, 4} {
		if !s.Insert(k, "v") {
			t.Fatal("insert newness wrong")
		}
	}
	if s.Insert(3, "w") {
		t.Fatal("re-insert should report existing")
	}
	if v, ok := s.Find(3); !ok || v != "w" {
		t.Fatal("find wrong")
	}
	if _, ok := s.Find(9); ok {
		t.Fatal("find of absent key wrong")
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	if mn, _ := s.MinKey(); mn != 1 {
		t.Fatal("min wrong")
	}
	if mx, _ := s.MaxKey(); mx != 5 {
		t.Fatal("max wrong")
	}
	if !s.InsertIfAbsent(6, "z") || s.InsertIfAbsent(6, "y") {
		t.Fatal("insertIfAbsent wrong")
	}
	if !s.Erase(1) || s.Erase(1) {
		t.Fatal("erase wrong")
	}
	s.Apply(10, func(v string) string { return v + "!" })
	if v, _ := s.Find(10); v != "!" {
		t.Fatal("apply absent wrong")
	}
	s.Apply(10, func(v string) string { return v + "!" })
	if v, _ := s.Find(10); v != "!!" {
		t.Fatal("apply present wrong")
	}
	// Ordered traversal.
	var seen []int
	s.Range(func(k int, v string) bool { seen = append(seen, k); return true })
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("range not ordered: %v", seen)
		}
	}
	d, m := s.MemoryBytes()
	if d <= 0 || m <= 0 {
		t.Fatal("memory wrong")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("clear wrong")
	}
	if _, ok := s.MinKey(); ok {
		t.Fatal("min of empty map should not exist")
	}
	if _, ok := s.MaxKey(); ok {
		t.Fatal("max of empty map should not exist")
	}
}

func TestSortedMapMatchesHashMapProperty(t *testing.T) {
	// Property: after the same random operation sequence, SortedMap and
	// HashMap hold the same key→value mapping.
	prop := func(ops []int16) bool {
		sm := NewSortedMap[int, int](0, func(a, b int) bool { return a < b })
		hm := NewHashMap[int, int](0)
		for i, op := range ops {
			k := int(op % 32)
			switch i % 3 {
			case 0, 1:
				sm.Insert(k, i)
				hm.Insert(k, i)
			default:
				sm.Erase(k)
				hm.Erase(k)
			}
		}
		if sm.Size() != hm.Size() {
			return false
		}
		ok := true
		hm.Range(func(k, v int) bool {
			sv, found := sm.Find(k)
			if !found || sv != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBlock(t *testing.T) {
	m := NewMatrixBlock[float64](0, domain.NewRange1D(2, 5), domain.NewRange1D(10, 14))
	if m.Size() != 12 || m.BCID() != 0 || m.Empty() {
		t.Fatal("metadata wrong")
	}
	if m.Rows() != domain.NewRange1D(2, 5) || m.Cols() != domain.NewRange1D(10, 14) {
		t.Fatal("ranges wrong")
	}
	m.Set(domain.Index2D{Row: 3, Col: 12}, 2.5)
	if m.Get(domain.Index2D{Row: 3, Col: 12}) != 2.5 {
		t.Fatal("get/set wrong")
	}
	m.Apply(domain.Index2D{Row: 3, Col: 12}, func(x float64) float64 { return x * 2 })
	if m.Get(domain.Index2D{Row: 3, Col: 12}) != 5.0 {
		t.Fatal("apply wrong")
	}
	row := m.RowSlice(3)
	if len(row) != 4 || row[2] != 5.0 {
		t.Fatalf("row slice = %v", row)
	}
	count := 0
	var sum float64
	m.Range(func(g domain.Index2D, v float64) bool { count++; sum += v; return true })
	if count != 12 || sum != 5.0 {
		t.Fatalf("range count=%d sum=%v", count, sum)
	}
	m.Update(func(g domain.Index2D, v float64) float64 { return 1 })
	if m.Get(domain.Index2D{Row: 2, Col: 10}) != 1 {
		t.Fatal("update wrong")
	}
	d, meta := m.MemoryBytes()
	if d != 96 || meta <= 0 {
		t.Fatalf("memory = %d,%d", d, meta)
	}
	m.Clear()
	if m.Get(domain.Index2D{Row: 2, Col: 10}) != 0 {
		t.Fatal("clear wrong")
	}
	mustPanic(t, func() { m.Get(domain.Index2D{Row: 7, Col: 10}) })
	mustPanic(t, func() { m.RowSlice(99) })
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph[string, float64](0)
	if !g.Empty() || g.BCID() != 0 {
		t.Fatal("metadata wrong")
	}
	if !g.AddVertex(1, "a") || g.AddVertex(1, "dup") {
		t.Fatal("addVertex newness wrong")
	}
	g.AddVertex(2, "b")
	g.AddVertex(3, "c")
	if g.Size() != 3 {
		t.Fatal("size wrong")
	}
	if g.Property(1) != "a" {
		t.Fatal("re-adding a vertex must not overwrite its property")
	}
	if !g.AddEdge(1, 2, 0.5, true) || !g.AddEdge(1, 3, 1.5, true) || !g.AddEdge(2, 3, 2.5, true) {
		t.Fatal("addEdge wrong")
	}
	if g.AddEdge(1, 2, 9.9, false) {
		t.Fatal("non-multi addEdge should reject duplicate")
	}
	if !g.AddEdge(1, 2, 9.9, true) {
		t.Fatal("multi addEdge should accept duplicate")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("numEdges = %d", g.NumEdges())
	}
	if g.OutDegree(1) != 3 || g.OutDegree(3) != 0 {
		t.Fatal("outDegree wrong")
	}
	if e, ok := g.FindEdge(1, 3); !ok || e.Property != 1.5 {
		t.Fatal("findEdge wrong")
	}
	if _, ok := g.FindEdge(3, 1); ok {
		t.Fatal("findEdge of absent edge wrong")
	}
	if !g.DeleteEdge(1, 2) || g.NumEdges() != 3 {
		t.Fatal("deleteEdge wrong")
	}
	if g.DeleteEdge(9, 1) {
		t.Fatal("deleteEdge from absent vertex should report false")
	}
	g.SetProperty(2, "bb")
	if g.Property(2) != "bb" {
		t.Fatal("setProperty wrong")
	}
	g.ApplyVertex(2, func(s string) string { return s + "!" })
	if g.Property(2) != "bb!" {
		t.Fatal("applyVertex wrong")
	}
	if v, ok := g.Vertex(1); !ok || v.OutDegree() != 2 {
		t.Fatal("vertex lookup wrong")
	}
	if !g.HasVertex(3) || g.HasVertex(99) {
		t.Fatal("hasVertex wrong")
	}
	descs := g.VertexDescriptors()
	if len(descs) != 3 || descs[0] != 1 || descs[2] != 3 {
		t.Fatalf("descriptors = %v", descs)
	}
	count := 0
	g.RangeVertices(func(v *Vertex[string, float64]) bool { count++; return true })
	if count != 3 {
		t.Fatal("rangeVertices wrong")
	}
	if len(g.OutEdges(1)) != 2 {
		t.Fatal("outEdges wrong")
	}
	if !g.DeleteVertex(1) || g.DeleteVertex(1) {
		t.Fatal("deleteVertex wrong")
	}
	if g.Size() != 2 || g.NumEdges() != 1 {
		t.Fatalf("after delete: %d vertices, %d edges", g.Size(), g.NumEdges())
	}
	d, m := g.MemoryBytes()
	if d <= 0 || m <= 0 {
		t.Fatal("memory wrong")
	}
	g.Clear()
	if !g.Empty() || g.NumEdges() != 0 {
		t.Fatal("clear wrong")
	}
	mustPanic(t, func() { g.Property(42) })
}
