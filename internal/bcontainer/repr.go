package bcontainer

import (
	"math/bits"

	"repro/internal/transport"
)

// This file is the storage-representation seam of the base containers: a
// chunked set store whose chunks switch between two physical representations
// by cardinality, the roaring-bitmap pattern.  A chunk covers one aligned run
// of SetChunkSize consecutive keys; below ArrayMaxCard members it is a sorted
// uint16 array (2 bytes per member), above it a fixed bitmap (SetChunkSize/8
// bytes regardless of cardinality).  The crossover is chosen so the array
// never exceeds the bitmap's footprint: ArrayMaxCard*2 == SetChunkSize/8.
// Representation switching happens inside Insert/Remove — callers observe
// set semantics only — and the current representation is exposed (Kind) so
// tests can assert the transitions, the way the roaring exemplars do.

const (
	// SetChunkBits is the log2 of the chunk key span.
	SetChunkBits = 12
	// SetChunkSize is the number of consecutive keys one chunk covers (4096).
	SetChunkSize = 1 << SetChunkBits
	// SetChunkMask extracts the in-chunk key from a global id.
	SetChunkMask = SetChunkSize - 1
	// ArrayMaxCard is the cardinality at which an array chunk converts to a
	// bitmap on the next insert (and a bitmap converts back once a remove
	// brings it down to this count).
	ArrayMaxCard = 256
	// bitmapWords is the fixed word count of a bitmap chunk.
	bitmapWords = SetChunkSize / 64
)

// ReprKind names the physical representation a chunk currently uses.
type ReprKind uint8

const (
	// ReprArray is the sorted-uint16-array representation (low cardinality).
	ReprArray ReprKind = iota
	// ReprBitmap is the fixed-size bitmap representation (high cardinality).
	ReprBitmap
)

func (k ReprKind) String() string {
	if k == ReprBitmap {
		return "bitmap"
	}
	return "array"
}

// SetChunk is the adaptive store for one aligned run of SetChunkSize keys.
// Keys are chunk-relative (0 .. SetChunkSize-1).
type SetChunk struct {
	kind ReprKind
	card int
	arr  []uint16 // sorted members, ReprArray only
	bits []uint64 // bitmapWords words, ReprBitmap only
}

// NewSetChunk returns an empty chunk in array representation.
func NewSetChunk() *SetChunk { return &SetChunk{} }

// Kind returns the current physical representation.
func (c *SetChunk) Kind() ReprKind { return c.kind }

// Cardinality returns the number of members.
func (c *SetChunk) Cardinality() int { return c.card }

// Contains reports membership of the chunk-relative key k.
func (c *SetChunk) Contains(k uint16) bool {
	if c.kind == ReprBitmap {
		return c.bits[k>>6]&(1<<(k&63)) != 0
	}
	i := c.search(k)
	return i < len(c.arr) && c.arr[i] == k
}

// search returns the insertion position of k in the sorted array.
func (c *SetChunk) search(k uint16) int {
	lo, hi := 0, len(c.arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.arr[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds k and reports whether it was newly added, converting an array
// chunk at ArrayMaxCard members to a bitmap before the insert that would
// exceed the threshold.
func (c *SetChunk) Insert(k uint16) bool {
	if c.kind == ReprBitmap {
		w, m := k>>6, uint64(1)<<(k&63)
		if c.bits[w]&m != 0 {
			return false
		}
		c.bits[w] |= m
		c.card++
		return true
	}
	i := c.search(k)
	if i < len(c.arr) && c.arr[i] == k {
		return false
	}
	if c.card >= ArrayMaxCard {
		c.toBitmap()
		return c.Insert(k)
	}
	c.arr = append(c.arr, 0)
	copy(c.arr[i+1:], c.arr[i:])
	c.arr[i] = k
	c.card++
	return true
}

// Remove deletes k and reports whether it was a member, converting a bitmap
// chunk back to an array once the cardinality drops to ArrayMaxCard.
func (c *SetChunk) Remove(k uint16) bool {
	if c.kind == ReprBitmap {
		w, m := k>>6, uint64(1)<<(k&63)
		if c.bits[w]&m == 0 {
			return false
		}
		c.bits[w] &^= m
		c.card--
		if c.card <= ArrayMaxCard {
			c.toArray()
		}
		return true
	}
	i := c.search(k)
	if i >= len(c.arr) || c.arr[i] != k {
		return false
	}
	c.arr = append(c.arr[:i], c.arr[i+1:]...)
	c.card--
	return true
}

// toBitmap converts the array representation to a bitmap.
func (c *SetChunk) toBitmap() {
	bits := make([]uint64, bitmapWords)
	for _, k := range c.arr {
		bits[k>>6] |= 1 << (k & 63)
	}
	c.bits, c.arr, c.kind = bits, nil, ReprBitmap
}

// toArray converts the bitmap representation to a sorted array.
func (c *SetChunk) toArray() {
	arr := make([]uint16, 0, c.card)
	for w, word := range c.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w<<6|b))
			word &^= 1 << b
		}
	}
	c.arr, c.bits, c.kind = arr, nil, ReprArray
}

// Min returns the smallest member, with ok=false on an empty chunk.  The
// compressed-set migration router uses it to pick the sub-domain a segment
// belongs to.
func (c *SetChunk) Min() (uint16, bool) {
	if c.card == 0 {
		return 0, false
	}
	if c.kind == ReprArray {
		return c.arr[0], true
	}
	for w, word := range c.bits {
		if word != 0 {
			return uint16(w<<6 | bits.TrailingZeros64(word)), true
		}
	}
	return 0, false
}

// Range iterates the members in ascending order, stopping early if fn
// returns false.
func (c *SetChunk) Range(fn func(k uint16) bool) {
	if c.kind == ReprBitmap {
		for w, word := range c.bits {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(uint16(w<<6 | b)) {
					return
				}
				word &^= 1 << b
			}
		}
		return
	}
	for _, k := range c.arr {
		if !fn(k) {
			return
		}
	}
}

// MemoryBytes returns the resident size of the chunk's payload storage.
func (c *SetChunk) MemoryBytes() int64 {
	if c.kind == ReprBitmap {
		return int64(len(c.bits)) * 8
	}
	return int64(cap(c.arr)) * 2
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedBytes returns the exact wire size of Encode's output.
func (c *SetChunk) EncodedBytes() int {
	if c.kind == ReprBitmap {
		return 1 + bitmapWords*8
	}
	n := 1 + uvarintLen(uint64(c.card))
	prev := uint16(0)
	for i, k := range c.arr {
		d := uint64(k)
		if i > 0 {
			d = uint64(k - prev)
		}
		n += uvarintLen(d)
		prev = k
	}
	return n
}

// Encode appends the chunk's wire form: a kind byte, then either the
// delta-compressed sorted member list (array) or the raw words (bitmap).
func (c *SetChunk) Encode(b *transport.Buffer) {
	b.PutU8(uint8(c.kind))
	if c.kind == ReprBitmap {
		for _, w := range c.bits {
			b.PutU64(w)
		}
		return
	}
	b.PutUvarint(uint64(c.card))
	prev := uint16(0)
	for i, k := range c.arr {
		if i == 0 {
			b.PutUvarint(uint64(k))
		} else {
			b.PutUvarint(uint64(k - prev))
		}
		prev = k
	}
}

// DecodeSetChunk reads one chunk off the buffer.  Corrupt input records a
// sticky buffer error and returns an empty chunk rather than panicking.
func DecodeSetChunk(b *transport.Buffer) *SetChunk {
	c := NewSetChunk()
	switch ReprKind(b.U8()) {
	case ReprBitmap:
		words := make([]uint64, bitmapWords)
		card := 0
		for i := range words {
			words[i] = b.U64()
			card += bits.OnesCount64(words[i])
		}
		if b.Err() != nil {
			return NewSetChunk()
		}
		c.kind, c.bits, c.card = ReprBitmap, words, card
		if card <= ArrayMaxCard {
			// Canonical form keeps low cardinalities in array representation;
			// accept the wire form but normalise so re-encoding is stable.
			c.toArray()
		}
	case ReprArray:
		n := b.Uvarint()
		if n > ArrayMaxCard {
			b.Fail("set chunk: array cardinality %d exceeds threshold", n)
			return NewSetChunk()
		}
		arr := make([]uint16, 0, n)
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d := b.Uvarint()
			k := d
			if i > 0 {
				k = prev + d
				if d == 0 {
					b.Fail("set chunk: non-increasing member list")
					return NewSetChunk()
				}
			}
			if k >= SetChunkSize {
				b.Fail("set chunk: member %d out of chunk range", k)
				return NewSetChunk()
			}
			arr = append(arr, uint16(k))
			prev = k
		}
		if b.Err() != nil {
			return NewSetChunk()
		}
		c.arr, c.card = arr, len(arr)
	default:
		b.Fail("set chunk: unknown representation kind")
	}
	return c
}
