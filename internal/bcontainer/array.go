package bcontainer

import (
	"fmt"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
)

// Array is the base container of pArray: fixed-size storage for the
// contiguous index sub-domain assigned to it, supporting O(1) access by GID.
// It corresponds to the paper's valarray-backed p_array_bcontainer.
type Array[T any] struct {
	bcid partition.BCID
	dom  domain.Range1D
	data []T
}

// NewArray allocates storage for the given sub-domain.
func NewArray[T any](bcid partition.BCID, dom domain.Range1D) *Array[T] {
	return &Array[T]{bcid: bcid, dom: dom, data: make([]T, dom.Size())}
}

// BCID returns the sub-domain identifier.
func (a *Array[T]) BCID() partition.BCID { return a.bcid }

// Domain returns the index sub-domain stored by this base container.
func (a *Array[T]) Domain() domain.Range1D { return a.dom }

// Size returns the number of stored elements.
func (a *Array[T]) Size() int64 { return int64(len(a.data)) }

// Empty reports whether the base container stores no elements.
func (a *Array[T]) Empty() bool { return len(a.data) == 0 }

// Clear zeroes the stored elements (the sub-domain itself is fixed, so the
// capacity is retained).
func (a *Array[T]) Clear() {
	var zero T
	for i := range a.data {
		a.data[i] = zero
	}
}

// contains panics when gid falls outside the sub-domain; the distribution
// manager never routes such a GID here, so this guards framework bugs.
func (a *Array[T]) index(gid int64) int {
	if !a.dom.Contains(gid) {
		panic(fmt.Sprintf("bcontainer: GID %d outside sub-domain [%d,%d)", gid, a.dom.Lo, a.dom.Hi))
	}
	return int(gid - a.dom.Lo)
}

// Get returns the element with the given GID.
func (a *Array[T]) Get(gid int64) T { return a.data[a.index(gid)] }

// Set stores val at the given GID.
func (a *Array[T]) Set(gid int64, val T) { a.data[a.index(gid)] = val }

// Apply applies fn to the element with the given GID and stores the result
// back (the paper's apply_set).
func (a *Array[T]) Apply(gid int64, fn func(T) T) { i := a.index(gid); a.data[i] = fn(a.data[i]) }

// ApplyGet applies fn to the element and returns fn's result without
// modifying the element (the paper's apply_get).
func (a *Array[T]) ApplyGet(gid int64, fn func(T) any) any { return fn(a.data[a.index(gid)]) }

// Range iterates the stored elements in GID order, stopping early if fn
// returns false.
func (a *Array[T]) Range(fn func(gid int64, val T) bool) {
	for i, v := range a.data {
		if !fn(a.dom.Lo+int64(i), v) {
			return
		}
	}
}

// Update iterates the stored elements in GID order, replacing each element
// with the value fn returns.
func (a *Array[T]) Update(fn func(gid int64, val T) T) {
	for i := range a.data {
		a.data[i] = fn(a.dom.Lo+int64(i), a.data[i])
	}
}

// Slice exposes the underlying storage for zero-copy local algorithms
// operating on native views.  The caller must hold the container's data
// bracket for the duration of the use.
func (a *Array[T]) Slice() []T { return a.data }

// MemoryBytes reports the data bytes (elements) and metadata bytes (domain
// bookkeeping), matching the paper's memory_size split.
func (a *Array[T]) MemoryBytes() (data, meta int64) {
	var t T
	return int64(len(a.data)) * int64(unsafe.Sizeof(t)), int64(unsafe.Sizeof(*a))
}
