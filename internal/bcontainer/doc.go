// Package bcontainer provides the base containers (bContainers) used by the
// STAPL pContainers: the per-location storage units that hold one
// sub-domain's worth of elements.
//
// The paper builds its bContainers on top of STL containers (valarray,
// vector, list, map, hash_map) and third-party storage.  Here each base
// container is implemented from scratch on Go slices, maps and linked
// nodes, and satisfies core.BContainer (Table III) plus a container-specific
// element interface that the owning pContainer drives through typed invoke
// actions.
//
// Base containers are deliberately not internally synchronised: the PCF's
// thread-safety manager (package core) brackets every access, exactly as the
// paper separates storage from concurrency control.
package bcontainer
