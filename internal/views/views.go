// Package views implements the STAPL pView concept (Chapter III.A): light
// abstract-data-type layers over pContainers that decouple pAlgorithms from
// storage.  A view provides element access plus a per-location work
// decomposition (LocalRanges); pAlgorithms are SPMD functions driven by that
// decomposition.
//
// The views here mirror Table II of the paper: the native view (aligned with
// the container distribution, all accesses local), the balanced view (equal
// index shares per location regardless of distribution), strided, overlap
// and transform views, plus a segment view over pList.
package views

import (
	"repro/internal/containers/parray"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/runtime"
)

// RandomAccess is the one-dimensional random-access ADT: read and write by
// global index.
type RandomAccess[T any] interface {
	Size() int64
	Get(i int64) T
	Set(i int64, v T)
}

// BulkAccess is the optional bulk extension of RandomAccess: read or write a
// whole batch of indices with one resolution and one message per owning
// location.  Views over containers with bulk element methods implement it;
// pAlgorithms probe for it with a type assertion and fall back to
// element-wise access otherwise.
type BulkAccess[T any] interface {
	// GetBulk returns the elements at the given indices, in order.
	GetBulk(idxs []int64) []T
	// SetBulk stores vals[k] at idxs[k] for every k (asynchronous, like
	// Set: completion is guaranteed by the next fence).
	SetBulk(idxs []int64, vals []T)
}

// Partitioned is a RandomAccess view that also tells each location which
// index ranges it should process.  All pAlgorithms in package palgo consume
// Partitioned views.
type Partitioned[T any] interface {
	RandomAccess[T]
	// LocalRanges returns the index ranges assigned to the calling
	// location.  The union over all locations covers [0, Size()) exactly
	// once.
	LocalRanges(loc *runtime.Location) []domain.Range1D
}

// ArrayNative is the native view of a pArray: element i of the view is
// element i of the array, and each location processes exactly the indices it
// stores, so all accesses made by an algorithm following LocalRanges are
// local (array_1d_view over the native partition).
type ArrayNative[T any] struct {
	A *parray.Array[T]
}

// NewArrayNative builds the native view of a pArray.
func NewArrayNative[T any](a *parray.Array[T]) ArrayNative[T] { return ArrayNative[T]{A: a} }

// Size returns the number of elements.
func (v ArrayNative[T]) Size() int64 { return v.A.Size() }

// Get reads element i (local or remote).
func (v ArrayNative[T]) Get(i int64) T { return v.A.Get(i) }

// Set writes element i (local or remote).
func (v ArrayNative[T]) Set(i int64, x T) { v.A.Set(i, x) }

// GetBulk reads a batch of elements through the pArray's bulk path.
func (v ArrayNative[T]) GetBulk(idxs []int64) []T { return v.A.GetBulk(idxs) }

// SetBulk writes a batch of elements through the pArray's bulk path.
func (v ArrayNative[T]) SetBulk(idxs []int64, vals []T) { v.A.SetBulk(idxs, vals) }

// LocalRanges returns the sub-domains stored on the calling location.
func (v ArrayNative[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.A.LocalSubdomains()
}

// LocalSpans reports the index ranges stored in this location's memory
// (identical to the native work decomposition).
func (v ArrayNative[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.A.LocalSubdomains()
}

// LocalSegment exposes the raw storage backing a locally stored run.
func (v ArrayNative[T]) LocalSegment(r domain.Range1D) ([]T, bool) { return v.A.LocalSegment(r) }

// VectorNative is the native view of a pVector.
type VectorNative[T any] struct {
	V *pvector.Vector[T]
}

// NewVectorNative builds the native view of a pVector.
func NewVectorNative[T any](v *pvector.Vector[T]) VectorNative[T] { return VectorNative[T]{V: v} }

// Size returns the number of elements.
func (v VectorNative[T]) Size() int64 { return v.V.Size() }

// Get reads element i.
func (v VectorNative[T]) Get(i int64) T { return v.V.Get(i) }

// Set writes element i.
func (v VectorNative[T]) Set(i int64, x T) { v.V.Set(i, x) }

// GetBulk reads a batch of elements through the pVector's bulk path.
func (v VectorNative[T]) GetBulk(idxs []int64) []T { return v.V.GetBulk(idxs) }

// SetBulk writes a batch of elements through the pVector's bulk path.
func (v VectorNative[T]) SetBulk(idxs []int64, vals []T) { v.V.SetBulk(idxs, vals) }

// LocalRanges returns the contiguous block stored on the calling location.
func (v VectorNative[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	d := v.V.LocalDomain()
	if d.Empty() {
		return nil
	}
	return []domain.Range1D{d}
}

// LocalSpans reports the index ranges stored in this location's memory.
func (v VectorNative[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.LocalRanges(loc)
}

// LocalSegment exposes the raw storage backing a locally stored run.
func (v VectorNative[T]) LocalSegment(r domain.Range1D) ([]T, bool) { return v.V.LocalSegment(r) }

// Balanced re-partitions any RandomAccess collection into equal index shares
// per location (balance_view).  Accesses may be remote when the underlying
// distribution differs from the balanced split; that cost is exactly what
// the native-vs-balanced experiments measure.
type Balanced[T any] struct {
	Base RandomAccess[T]
}

// NewBalanced builds a balanced view over any random-access collection.
func NewBalanced[T any](base RandomAccess[T]) Balanced[T] { return Balanced[T]{Base: base} }

// Size returns the number of elements.
func (v Balanced[T]) Size() int64 { return v.Base.Size() }

// Get reads element i.
func (v Balanced[T]) Get(i int64) T { return v.Base.Get(i) }

// Set writes element i.
func (v Balanced[T]) Set(i int64, x T) { v.Base.Set(i, x) }

// GetBulk reads a batch through the base's bulk path when it has one —
// exactly the case (balanced view over a differently distributed container)
// where the batch spans remote locations and grouping pays off.
func (v Balanced[T]) GetBulk(idxs []int64) []T {
	if b, ok := v.Base.(BulkAccess[T]); ok {
		return b.GetBulk(idxs)
	}
	out := make([]T, len(idxs))
	for k, i := range idxs {
		out[k] = v.Base.Get(i)
	}
	return out
}

// SetBulk writes a batch through the base's bulk path when it has one.
func (v Balanced[T]) SetBulk(idxs []int64, vals []T) {
	if b, ok := v.Base.(BulkAccess[T]); ok {
		b.SetBulk(idxs, vals)
		return
	}
	for k, i := range idxs {
		v.Base.Set(i, vals[k])
	}
}

// LocalRanges gives the calling location the i-th of P equal shares.
func (v Balanced[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	blocks := domain.NewRange1D(0, v.Base.Size()).Split(loc.NumLocations())
	b := blocks[loc.ID()]
	if b.Empty() {
		return nil
	}
	return []domain.Range1D{b}
}

// LocalSpans reports the base's locally stored ranges (the balanced view
// re-partitions the work, not the storage: view index i is base index i).
func (v Balanced[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	if src, ok := v.Base.(LocalitySource); ok {
		return src.LocalSpans(loc)
	}
	return nil
}

// LocalSegment delegates to the base's raw storage when it exposes one.
func (v Balanced[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if d, ok := v.Base.(DirectAccess[T]); ok {
		return d.LocalSegment(r)
	}
	return nil, false
}

// Strided exposes every stride-th element of a base view starting at offset,
// as a dense view of its own (strided_1D_view).
type Strided[T any] struct {
	Base          Partitioned[T]
	Offset, Strd  int64
	logicalLength int64
}

// NewStrided builds a strided view; stride must be positive.
func NewStrided[T any](base Partitioned[T], offset, stride int64) Strided[T] {
	if stride <= 0 {
		stride = 1
	}
	n := base.Size()
	var length int64
	if offset < n {
		length = (n - offset + stride - 1) / stride
	}
	return Strided[T]{Base: base, Offset: offset, Strd: stride, logicalLength: length}
}

// Size returns the number of selected elements.
func (v Strided[T]) Size() int64 { return v.logicalLength }

// Get reads the i-th selected element.
func (v Strided[T]) Get(i int64) T { return v.Base.Get(v.Offset + i*v.Strd) }

// Set writes the i-th selected element.
func (v Strided[T]) Set(i int64, x T) { v.Base.Set(v.Offset+i*v.Strd, x) }

// LocalRanges splits the logical (strided) domain evenly per location.
func (v Strided[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	blocks := domain.NewRange1D(0, v.logicalLength).Split(loc.NumLocations())
	b := blocks[loc.ID()]
	if b.Empty() {
		return nil
	}
	return []domain.Range1D{b}
}

// LocalSpans maps the base's locally stored ranges into the strided index
// space: view index i is local when base index Offset+i*Strd is.
func (v Strided[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	src, ok := v.Base.(LocalitySource)
	if !ok {
		return nil
	}
	var out []domain.Range1D
	for _, s := range src.LocalSpans(loc) {
		// Smallest i with Offset+i*Strd >= s.Lo, first i with base >= s.Hi.
		lo := (s.Lo - v.Offset + v.Strd - 1) / v.Strd
		hi := (s.Hi - v.Offset + v.Strd - 1) / v.Strd
		if lo < 0 {
			lo = 0
		}
		if hi > v.logicalLength {
			hi = v.logicalLength
		}
		if r := domain.NewRange1D(lo, hi); !r.Empty() {
			out = append(out, r)
		}
	}
	return out
}

// LocalSegment exposes the base's raw storage for unit-stride windows (a
// strided run is not contiguous in the base for Strd > 1).
func (v Strided[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if v.Strd != 1 {
		return nil, false
	}
	if d, ok := v.Base.(DirectAccess[T]); ok {
		return d.LocalSegment(domain.NewRange1D(r.Lo+v.Offset, r.Hi+v.Offset))
	}
	return nil, false
}

// Transform presents a read-only element-wise transformation of a base view
// (transform_pview): reads return fn(base value); writes are not supported.
type Transform[T any, U any] struct {
	Base Partitioned[T]
	Fn   func(T) U
}

// NewTransform builds a transform view.
func NewTransform[T any, U any](base Partitioned[T], fn func(T) U) Transform[T, U] {
	return Transform[T, U]{Base: base, Fn: fn}
}

// Size returns the number of elements.
func (v Transform[T, U]) Size() int64 { return v.Base.Size() }

// Get returns fn applied to the base element.
func (v Transform[T, U]) Get(i int64) U { return v.Fn(v.Base.Get(i)) }

// Set panics: transform views are read-only.
func (v Transform[T, U]) Set(int64, U) { panic("views: transform view is read-only") }

// GetBulk reads the base elements through its bulk path (when it has one)
// and maps them, so a transformed remote batch still costs one grouped
// request per owning location.
func (v Transform[T, U]) GetBulk(idxs []int64) []U {
	var vals []T
	if b, ok := v.Base.(BulkAccess[T]); ok {
		vals = b.GetBulk(idxs)
	} else {
		vals = make([]T, 0, len(idxs))
		for _, i := range idxs {
			vals = append(vals, v.Base.Get(i))
		}
	}
	out := make([]U, len(vals))
	for k, x := range vals {
		out[k] = v.Fn(x)
	}
	return out
}

// SetBulk panics: transform views are read-only.
func (v Transform[T, U]) SetBulk([]int64, []U) { panic("views: transform view is read-only") }

// LocalRanges delegates to the base view.
func (v Transform[T, U]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.Base.LocalRanges(loc)
}

// LocalSpans delegates to the base view (the mapping is element-wise, so
// locality is unchanged).
func (v Transform[T, U]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	if src, ok := v.Base.(LocalitySource); ok {
		return src.LocalSpans(loc)
	}
	return nil
}

// Overlap presents overlapping windows of a base view (overlap_view): window
// i covers base indices [i*Core, i*Core+Left+Core+Right), as in Fig. 2 of
// the paper.  Windows are read through GetWindow; the view's element type is
// the window itself.
type Overlap[T any] struct {
	Base              Partitioned[T]
	Core, Left, Right int64
}

// NewOverlap builds an overlap view with core size c, left overlap l and
// right overlap r.
func NewOverlap[T any](base Partitioned[T], c, l, r int64) Overlap[T] {
	if c <= 0 {
		c = 1
	}
	return Overlap[T]{Base: base, Core: c, Left: l, Right: r}
}

// Size returns the number of complete windows.
func (v Overlap[T]) Size() int64 {
	window := v.Left + v.Core + v.Right
	n := v.Base.Size()
	if n < window {
		return 0
	}
	return (n-window)/v.Core + 1
}

// GetWindow returns a copy of window i.
func (v Overlap[T]) GetWindow(i int64) []T {
	window := v.Left + v.Core + v.Right
	out := make([]T, 0, window)
	start := i * v.Core
	for k := int64(0); k < window; k++ {
		out = append(out, v.Base.Get(start+k))
	}
	return out
}

// LocalRanges splits the window index space evenly per location.
func (v Overlap[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	blocks := domain.NewRange1D(0, v.Size()).Split(loc.NumLocations())
	b := blocks[loc.ID()]
	if b.Empty() {
		return nil
	}
	return []domain.Range1D{b}
}

// Slice is an in-memory Partitioned view over a plain Go slice, replicated
// on every location.  It is useful as an algorithm input generated on the
// fly and in tests; each location processes an equal share.
type Slice[T any] struct {
	Data []T
}

// NewSlice wraps a slice (shared by all locations of the simulated machine).
func NewSlice[T any](data []T) Slice[T] { return Slice[T]{Data: data} }

// Size returns the slice length.
func (v Slice[T]) Size() int64 { return int64(len(v.Data)) }

// Get reads element i.
func (v Slice[T]) Get(i int64) T { return v.Data[i] }

// Set writes element i.
func (v Slice[T]) Set(i int64, x T) { v.Data[i] = x }

// GetBulk reads a batch of elements.
func (v Slice[T]) GetBulk(idxs []int64) []T {
	out := make([]T, len(idxs))
	for k, i := range idxs {
		out[k] = v.Data[i]
	}
	return out
}

// SetBulk writes a batch of elements.
func (v Slice[T]) SetBulk(idxs []int64, vals []T) {
	for k, i := range idxs {
		v.Data[i] = vals[k]
	}
}

// LocalRanges gives each location an equal share.
func (v Slice[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	blocks := domain.NewRange1D(0, v.Size()).Split(loc.NumLocations())
	b := blocks[loc.ID()]
	if b.Empty() {
		return nil
	}
	return []domain.Range1D{b}
}

// LocalSpans reports the whole domain: the slice is replicated shared
// memory, so every index is local to every location.
func (v Slice[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	d := domain.NewRange1D(0, v.Size())
	if d.Empty() {
		return nil
	}
	return []domain.Range1D{d}
}

// LocalSegment exposes the backing slice directly.
func (v Slice[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if r.Lo < 0 || r.Hi > v.Size() {
		return nil, false
	}
	return v.Data[r.Lo:r.Hi], true
}

var (
	_ Partitioned[int] = ArrayNative[int]{}
	_ Partitioned[int] = VectorNative[int]{}
	_ Partitioned[int] = Balanced[int]{}
	_ Partitioned[int] = Strided[int]{}
	_ Partitioned[int] = Slice[int]{}
	_ Partitioned[int] = Transform[string, int]{}

	_ BulkAccess[int] = ArrayNative[int]{}
	_ BulkAccess[int] = VectorNative[int]{}
	_ BulkAccess[int] = Balanced[int]{}
	_ BulkAccess[int] = Slice[int]{}
	_ BulkAccess[int] = Transform[string, int]{}

	_ LocalitySource = ArrayNative[int]{}
	_ LocalitySource = VectorNative[int]{}
	_ LocalitySource = Balanced[int]{}
	_ LocalitySource = Strided[int]{}
	_ LocalitySource = Slice[int]{}
	_ LocalitySource = Transform[string, int]{}

	_ DirectAccess[int] = ArrayNative[int]{}
	_ DirectAccess[int] = VectorNative[int]{}
	_ DirectAccess[int] = Balanced[int]{}
	_ DirectAccess[int] = Strided[int]{}
	_ DirectAccess[int] = Slice[int]{}
)
