package views

import (
	"testing"

	"repro/internal/containers/parray"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// fillNative writes i into element i of the array through its native view.
func fillNative(loc *runtime.Location, a *parray.Array[int64]) {
	nat := NewArrayNative(a)
	for _, r := range nat.LocalRanges(loc) {
		for i := r.Lo; i < r.Hi; i++ {
			nat.Set(i, i)
		}
	}
	loc.Fence()
}

// skewedArray builds an array whose elements all live on location 0.
func skewedArray(t *testing.T, loc *runtime.Location, n int64) *parray.Array[int64] {
	t.Helper()
	sizes := make([]int64, loc.NumLocations())
	sizes[0] = n
	part, err := partition.NewExplicit(domain.NewRange1D(0, n), sizes)
	if err != nil {
		t.Fatal(err)
	}
	return parray.New[int64](loc, n,
		parray.WithPartition(part),
		parray.WithMapper(partition.NewBlockedMapper(loc.NumLocations(), loc.NumLocations())))
}

func TestZipView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 40)
		b := parray.New[int64](loc, 40)
		fillNative(loc, a)
		av, bv := NewArrayNative(a), NewArrayNative(b)
		z := NewZip2[int64, int64](av, bv)
		if z.Size() != 40 {
			t.Errorf("zip size = %d", z.Size())
		}
		checkCoverage[Pair[int64, int64]](t, loc, z)
		// Writes through the zip land in both constituents.
		for _, r := range z.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				z.Set(i, Pair[int64, int64]{First: i, Second: 2 * i})
			}
		}
		loc.Fence()
		if p := z.Get(17); p.First != 17 || p.Second != 34 {
			t.Errorf("zip Get(17) = %+v", p)
		}
		if got := b.Get(39); got != 78 {
			t.Errorf("second constituent missed the write: %d", got)
		}
		// Bulk reads return pairs in order.
		ps := z.GetBulk([]int64{3, 9, 21})
		if len(ps) != 3 || ps[1].First != 9 || ps[1].Second != 18 {
			t.Errorf("zip GetBulk = %+v", ps)
		}
		// Aligned native constituents make the whole share native.
		for _, c := range Coarsen[Pair[int64, int64]](loc, z) {
			if c.Kind != ChunkNative {
				t.Errorf("aligned zip produced bulk chunk %+v", c)
			}
		}
		loc.Fence()
	})
}

func TestZipMismatchedSizes(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 10)
		b := parray.New[int64](loc, 6)
		z := NewZip2[int64, int64](NewArrayNative(a), NewArrayNative(b))
		if z.Size() != 6 {
			t.Errorf("zip of 10 and 6 has size %d", z.Size())
		}
		checkCoverage[Pair[int64, int64]](t, loc, z)
		loc.Fence()
	})
}

func TestSubrangeView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 40)
		fillNative(loc, a)
		s := NewSubrange[int64](NewArrayNative(a), 10, 20)
		if s.Size() != 20 {
			t.Errorf("subrange size = %d", s.Size())
		}
		checkCoverage[int64](t, loc, s)
		if s.Get(0) != 10 || s.Get(19) != 29 {
			t.Errorf("subrange reads wrong: %d %d", s.Get(0), s.Get(19))
		}
		// Clamping: a window reaching past the end shrinks.
		if NewSubrange[int64](NewArrayNative(a), 35, 100).Size() != 5 {
			t.Error("subrange should clamp to the base domain")
		}
		// Empty window.
		if NewSubrange[int64](NewArrayNative(a), 50, 10).Size() != 0 {
			t.Error("out-of-domain subrange should be empty")
		}
		loc.Fence()
	})
}

func TestSegmentedView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 40)
		fillNative(loc, a)
		seg := NewSegmented[int64](loc, NewArrayNative(a))
		if seg.NumSegments() != 4 {
			t.Fatalf("segments = %d", seg.NumSegments())
		}
		checkCoverage[int64](t, loc, seg)
		// Segment list is identical on every location and aligned with the
		// storage: segment k belongs to location k here.
		for k := 0; k < seg.NumSegments(); k++ {
			if seg.SegmentOwner(k) != k {
				t.Errorf("segment %d owned by %d", k, seg.SegmentOwner(k))
			}
			sub := seg.Segment(k)
			if sub.Size() != 10 || sub.Get(0) != int64(k)*10 {
				t.Errorf("segment %d = size %d first %d", k, sub.Size(), sub.Get(0))
			}
		}
		// The segmented work decomposition coarsens fully native.
		for _, c := range Coarsen[int64](loc, seg) {
			if c.Kind != ChunkNative {
				t.Errorf("segmented native view produced bulk chunk %+v", c)
			}
		}
		loc.Fence()
	})
}

func TestSegmentedOfZip(t *testing.T) {
	// Nested composition: a Segmented over a Zip of two native arrays.
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 44)
		b := parray.New[int64](loc, 44)
		fillNative(loc, a)
		fillNative(loc, b)
		z := NewZip2[int64, int64](NewArrayNative(a), NewArrayNative(b))
		seg := NewSegmented[Pair[int64, int64]](loc, z)
		checkCoverage[Pair[int64, int64]](t, loc, seg)
		if seg.NumSegments() != 4 {
			t.Errorf("segments = %d", seg.NumSegments())
		}
		// Each segment reads through both constituents.
		var localSum int64
		for _, r := range seg.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				p := seg.Get(i)
				localSum += p.First + p.Second
			}
		}
		want := int64(44*43) / 2 * 2
		if total := runtime.AllReduceSum(loc, localSum); total != want {
			t.Errorf("segmented zip sum = %d, want %d", total, want)
		}
		// Aligned all the way down: the nested composition stays native.
		for _, c := range Coarsen[Pair[int64, int64]](loc, seg) {
			if c.Kind != ChunkNative {
				t.Errorf("segmented zip produced bulk chunk %+v", c)
			}
		}
		loc.Fence()
	})
}

func TestFilteredView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 40)
		fillNative(loc, a)
		// Keep multiples of three.
		f := NewFiltered[int64](loc, NewArrayNative(a), func(_ int64, x int64) bool { return x%3 == 0 })
		if f.Size() != 14 { // 0,3,...,39
			t.Fatalf("filtered size = %d", f.Size())
		}
		checkCoverage[int64](t, loc, f)
		if f.Get(0) != 0 || f.Get(13) != 39 {
			t.Errorf("filtered reads wrong: %d %d", f.Get(0), f.Get(13))
		}
		if f.BaseIndex(1) != 3 {
			t.Errorf("BaseIndex(1) = %d", f.BaseIndex(1))
		}
		// Writes pass through to the base element.
		loc.Barrier()
		if loc.ID() == 0 {
			f.Set(2, -6) // base index 6
		}
		loc.Fence()
		if a.Get(6) != -6 {
			t.Errorf("filtered write missed the base: %d", a.Get(6))
		}
		// The filtered view over a native base coarsens fully native.
		for _, c := range Coarsen[int64](loc, f) {
			if c.Kind != ChunkNative {
				t.Errorf("filtered native view produced bulk chunk %+v", c)
			}
		}
		loc.Fence()
	})
}

func TestFilteredRejectAll(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 10)
		f := NewFiltered[int64](loc, NewArrayNative(a), func(int64, int64) bool { return false })
		if f.Size() != 0 {
			t.Errorf("size = %d", f.Size())
		}
		if len(f.LocalRanges(loc)) != 0 {
			t.Error("reject-all filter should assign no work")
		}
		if len(Coarsen[int64](loc, f)) != 0 {
			t.Error("reject-all filter should coarsen to nothing")
		}
		loc.Fence()
	})
}

func TestCompositionEmptyDomains(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 0)
		b := parray.New[int64](loc, 0)
		av := NewArrayNative(a)
		z := NewZip2[int64, int64](av, NewArrayNative(b))
		if z.Size() != 0 || len(z.LocalRanges(loc)) != 0 {
			t.Error("empty zip should have no domain and no work")
		}
		seg := NewSegmented[int64](loc, av)
		if seg.Size() != 0 || seg.NumSegments() != 0 {
			t.Errorf("empty segmented: size %d, %d segments", seg.Size(), seg.NumSegments())
		}
		f := NewFiltered[int64](loc, av, func(int64, int64) bool { return true })
		if f.Size() != 0 {
			t.Error("filter of empty view should be empty")
		}
		if got := ExchangeHalo[int64](loc, av, 1, 1); len(got) != 0 {
			t.Errorf("halo exchange over empty view returned %d chunks", len(got))
		}
		if len(Coarsen[Pair[int64, int64]](loc, z)) != 0 {
			t.Error("empty view should coarsen to nothing")
		}
		loc.Fence()
	})
}

func TestCompositionSingleLocation(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 12)
		b := parray.New[int64](loc, 12)
		fillNative(loc, a)
		fillNative(loc, b)
		z := NewZip2[int64, int64](NewArrayNative(a), NewArrayNative(b))
		seg := NewSegmented[Pair[int64, int64]](loc, z)
		if seg.NumSegments() != 1 || seg.SegmentOwner(0) != 0 {
			t.Errorf("single-location segments: %d", seg.NumSegments())
		}
		checkCoverage[Pair[int64, int64]](t, loc, seg)
		for _, c := range Coarsen[Pair[int64, int64]](loc, seg) {
			if c.Kind != ChunkNative {
				t.Errorf("single location produced bulk chunk %+v", c)
			}
		}
		chunks := ExchangeHalo[int64](loc, NewArrayNative(a), 2, 2)
		if len(chunks) != 1 || chunks[0].Lo != 0 || int64(len(chunks[0].Data)) != 12 {
			t.Errorf("single-location halo chunks = %+v", chunks)
		}
		loc.Fence()
	})
}

func TestExchangeHaloBoundaries(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 40)
		fillNative(loc, a)
		nat := NewArrayNative(a)
		chunks := ExchangeHalo[int64](loc, nat, 2, 3)
		if len(chunks) != 1 {
			t.Fatalf("chunks = %d", len(chunks))
		}
		c := chunks[0]
		core := nat.LocalRanges(loc)[0]
		if c.Core != core {
			t.Errorf("core = %v, want %v", c.Core, core)
		}
		// The halo is clamped at the machine/domain boundaries.
		wantLo := core.Lo - 2
		if wantLo < 0 {
			wantLo = 0
		}
		wantHi := core.Hi + 3
		if wantHi > 40 {
			wantHi = 40
		}
		if c.Lo != wantLo || c.Lo+int64(len(c.Data)) != wantHi {
			t.Errorf("halo window = [%d, %d), want [%d, %d)", c.Lo, c.Lo+int64(len(c.Data)), wantLo, wantHi)
		}
		// Every materialised cell holds the right value, including the
		// cells fetched from neighbouring locations.
		for i := wantLo; i < wantHi; i++ {
			if c.At(i) != i {
				t.Errorf("halo cell %d = %d", i, c.At(i))
			}
		}
		loc.Fence()
	})
}

func TestExchangeHaloRemoteTrafficIsGrouped(t *testing.T) {
	// The halo of a location's share costs one bulk request per
	// neighbouring owner, not one RMI per halo cell.
	p := 4
	m := runtime.NewMachine(p, runtime.DefaultConfig())
	var before, after runtime.Stats
	m.Execute(func(loc *runtime.Location) {
		a := parray.New[int64](loc, 400)
		fillNative(loc, a)
		loc.Fence()
		if loc.ID() == 0 {
			before = m.Stats()
		}
		loc.Barrier()
		chunks := ExchangeHalo[int64](loc, NewArrayNative(a), 8, 8)
		if len(chunks) != 1 {
			panic("expected one chunk per location")
		}
		loc.Fence()
		if loc.ID() == 0 {
			after = m.Stats()
		}
		loc.Barrier()
	})
	rmis := after.RMIsSent - before.RMIsSent
	// Interior locations fetch two halos, boundary locations one: 6 bulk
	// requests at P=4 (each halo is 8 cells, so the per-element path would
	// have been 48 RMIs).
	if rmis > 6 {
		t.Errorf("halo exchange issued %d RMIs, want <= 6 grouped requests", rmis)
	}
	if ops := after.BulkOps - before.BulkOps; ops != 48 {
		t.Errorf("halo exchange carried %d bulk ops, want 48", ops)
	}
}

func TestCoarsenClassification(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		n := int64(40)
		a := skewedArray(t, loc, n)
		bal := NewBalanced[int64](NewArrayNative(a))
		chunks := Coarsen[int64](loc, bal)
		// The chunks tile the location's share exactly once.
		var covered int64
		for _, c := range chunks {
			covered += c.Range.Size()
		}
		if total := runtime.AllReduceSum(loc, covered); total != n {
			t.Errorf("chunks cover %d of %d", total, n)
		}
		// Location 0 owns all storage: its share is native, everyone
		// else's is pure bulk remainder.
		for _, c := range chunks {
			want := ChunkBulk
			if loc.ID() == 0 {
				want = ChunkNative
			}
			if c.Kind != want {
				t.Errorf("location %d chunk %+v, want kind %v", loc.ID(), c, want)
			}
		}
		// Native chunks expose the raw storage.
		if loc.ID() == 0 {
			for _, c := range chunks {
				seg, ok := Segment[int64](bal, c.Range)
				if !ok || int64(len(seg)) != c.Range.Size() {
					t.Errorf("no segment for native chunk %+v", c)
				}
			}
		}
		loc.Fence()
	})
}

func TestWriteRangeSplitsLocalAndRemote(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		a := parray.New[int64](loc, 20)
		nat := NewArrayNative(a)
		loc.Fence()
		// Location 0 writes a range straddling the boundary between its
		// block [0,10) and location 1's block [10,20).
		if loc.ID() == 0 {
			vals := make([]int64, 12)
			for k := range vals {
				vals[k] = int64(100 + k)
			}
			WriteRange[int64](loc, nat, domain.NewRange1D(4, 16), vals)
		}
		loc.Fence()
		for i := int64(4); i < 16; i++ {
			if got := nat.Get(i); got != 96+i {
				t.Errorf("WriteRange element %d = %d, want %d", i, got, 96+i)
			}
		}
		loc.Fence()
	})
}
