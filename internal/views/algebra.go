package views

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/runtime"
)

// This file implements the composition layer of the pView algebra: views
// built from other views.  Every adaptor here is again a Partitioned view
// (so compositions nest arbitrarily: a Segmented of a Zip of a Strided is
// just another view), propagates the bulk element path of its constituents,
// and — where the composition permits — propagates locality, so Coarsen can
// still carve native chunks out of deeply composed views.

// Pair is the element type of a two-view zip.
type Pair[A any, B any] struct {
	First  A
	Second B
}

// Zip2 presents two equally indexed views as one view of pairs
// (zip_view): element i is (a[i], b[i]).  Reads and writes touch both
// constituents; the work decomposition follows the first view, which is the
// one algorithms usually keep native.
type Zip2[A any, B any] struct {
	A Partitioned[A]
	B Partitioned[B]
}

// NewZip2 builds a zip view; the views should have equal sizes (the zip
// domain is the intersection).
func NewZip2[A any, B any](a Partitioned[A], b Partitioned[B]) Zip2[A, B] {
	return Zip2[A, B]{A: a, B: b}
}

// Size returns the common domain size.
func (v Zip2[A, B]) Size() int64 {
	n := v.A.Size()
	if m := v.B.Size(); m < n {
		n = m
	}
	return n
}

// Get reads both constituents at i.
func (v Zip2[A, B]) Get(i int64) Pair[A, B] {
	return Pair[A, B]{First: v.A.Get(i), Second: v.B.Get(i)}
}

// Set writes both constituents at i.
func (v Zip2[A, B]) Set(i int64, p Pair[A, B]) {
	v.A.Set(i, p.First)
	v.B.Set(i, p.Second)
}

// GetBulk reads a batch from both constituents through their bulk paths.
func (v Zip2[A, B]) GetBulk(idxs []int64) []Pair[A, B] {
	as := ReadBatch[A](v.A, idxs)
	bs := ReadBatch[B](v.B, idxs)
	out := make([]Pair[A, B], len(idxs))
	for k := range out {
		out[k] = Pair[A, B]{First: as[k], Second: bs[k]}
	}
	return out
}

// SetBulk writes a batch into both constituents through their bulk paths.
func (v Zip2[A, B]) SetBulk(idxs []int64, vals []Pair[A, B]) {
	as := make([]A, len(vals))
	bs := make([]B, len(vals))
	for k, p := range vals {
		as[k] = p.First
		bs[k] = p.Second
	}
	WriteBatch[A](v.A, idxs, as)
	WriteBatch[B](v.B, idxs, bs)
}

// LocalRanges follows the first view's decomposition, clipped to the zip
// domain.
func (v Zip2[A, B]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	dom := domain.NewRange1D(0, v.Size())
	var out []domain.Range1D
	for _, r := range v.A.LocalRanges(loc) {
		if c := r.Intersect(dom); !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// LocalSpans reports the indices where BOTH constituents are local: only
// there can a zipped access stay message-free.
func (v Zip2[A, B]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	a := localSpansOf(v.A, loc)
	b := localSpansOf(v.B, loc)
	dom := domain.NewRange1D(0, v.Size())
	var out []domain.Range1D
	for _, s := range intersectSpans(a, b) {
		if c := s.Intersect(dom); !c.Empty() {
			out = append(out, c)
		}
	}
	return out
}

// intersectSpans intersects two sorted, merged span lists.
func intersectSpans(a, b []domain.Range1D) []domain.Range1D {
	var out []domain.Range1D
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ov := a[i].Intersect(b[j])
		if !ov.Empty() {
			out = append(out, ov)
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// ReadBatch reads the elements at idxs through the view's bulk path when it
// has one, element-wise otherwise.
func ReadBatch[T any](v RandomAccess[T], idxs []int64) []T {
	if b, ok := any(v).(BulkAccess[T]); ok {
		return b.GetBulk(idxs)
	}
	out := make([]T, len(idxs))
	for k, i := range idxs {
		out[k] = v.Get(i)
	}
	return out
}

// WriteBatch writes vals at idxs through the view's bulk path when it has
// one.  Like SetBulk it retains both slices until the next fence.
func WriteBatch[T any](v RandomAccess[T], idxs []int64, vals []T) {
	if b, ok := any(v).(BulkAccess[T]); ok {
		b.SetBulk(idxs, vals)
		return
	}
	for k, i := range idxs {
		v.Set(i, vals[k])
	}
}

// Subrange presents the window [Off, Off+Len) of a base view re-indexed
// from zero.  It is the element view of Segmented and useful on its own
// (slice_view).
type Subrange[T any] struct {
	Base     Partitioned[T]
	Off, Len int64
}

// NewSubrange builds a window over base; the window is clamped to the base
// domain.
func NewSubrange[T any](base Partitioned[T], off, length int64) Subrange[T] {
	if off < 0 {
		off = 0
	}
	if max := base.Size() - off; length > max {
		length = max
	}
	if length < 0 {
		length = 0
	}
	return Subrange[T]{Base: base, Off: off, Len: length}
}

// Size returns the window length.
func (v Subrange[T]) Size() int64 { return v.Len }

// Get reads window element i.
func (v Subrange[T]) Get(i int64) T { return v.Base.Get(v.Off + i) }

// Set writes window element i.
func (v Subrange[T]) Set(i int64, x T) { v.Base.Set(v.Off+i, x) }

// shift maps window indices into the base index space.
func (v Subrange[T]) shift(idxs []int64) []int64 {
	out := make([]int64, len(idxs))
	for k, i := range idxs {
		out[k] = i + v.Off
	}
	return out
}

// GetBulk reads a batch through the base's bulk path.
func (v Subrange[T]) GetBulk(idxs []int64) []T { return ReadBatch[T](v.Base, v.shift(idxs)) }

// SetBulk writes a batch through the base's bulk path.
func (v Subrange[T]) SetBulk(idxs []int64, vals []T) { WriteBatch[T](v.Base, v.shift(idxs), vals) }

// window returns the window as a base index range.
func (v Subrange[T]) window() domain.Range1D { return domain.NewRange1D(v.Off, v.Off+v.Len) }

// LocalRanges intersects the base decomposition with the window: across all
// locations the window is covered exactly once.
func (v Subrange[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.clipShift(v.Base.LocalRanges(loc))
}

// LocalSpans intersects the base's local spans with the window.
func (v Subrange[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	if src, ok := v.Base.(LocalitySource); ok {
		return v.clipShift(src.LocalSpans(loc))
	}
	return nil
}

func (v Subrange[T]) clipShift(rs []domain.Range1D) []domain.Range1D {
	w := v.window()
	var out []domain.Range1D
	for _, r := range rs {
		if c := r.Intersect(w); !c.Empty() {
			out = append(out, domain.NewRange1D(c.Lo-v.Off, c.Hi-v.Off))
		}
	}
	return out
}

// LocalSegment exposes the base's raw storage shifted into the window.
func (v Subrange[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if d, ok := v.Base.(DirectAccess[T]); ok {
		return d.LocalSegment(domain.NewRange1D(r.Lo+v.Off, r.Hi+v.Off))
	}
	return nil, false
}

// Segmented presents a view as an ordered sequence of segments aligned with
// the per-location storage of the base (segmented view, the paper's
// view-of-views): segment k is a Subrange over one location's span.  The
// segmented view is itself a Partitioned view of the flat elements whose
// work decomposition IS the segment list, so algorithms running over it
// process whole segments in place; segment-level algorithms use Segment(k)
// to recurse into one segment as an independent view.
type Segmented[T any] struct {
	Base  Partitioned[T]
	segs  []domain.Range1D
	owner []int
	// aligned records whether the segments came from storage locality (and
	// owned segments may be reported as local spans) or from the base's
	// work decomposition only.
	aligned bool
}

// NewSegmented builds the segmented view collectively: every location
// contributes its spans (its local storage when the base reports locality,
// its work share otherwise), and the gathered spans — which tile the domain
// exactly once — become the segment list, identical on every location.
func NewSegmented[T any](loc *runtime.Location, base Partitioned[T]) Segmented[T] {
	spans := localSpansOf(base, loc)
	aligned := spans != nil
	if spans == nil {
		spans = base.LocalRanges(loc)
	}
	all := runtime.AllGatherT(loc, spans)
	var segs []domain.Range1D
	var owner []int
	for who, part := range all {
		for _, s := range part {
			if !s.Empty() {
				segs = append(segs, s)
				owner = append(owner, who)
			}
		}
	}
	ord := make([]int, len(segs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool { return segs[ord[i]].Lo < segs[ord[j]].Lo })
	sortedSegs := make([]domain.Range1D, len(segs))
	sortedOwner := make([]int, len(segs))
	for k, i := range ord {
		sortedSegs[k] = segs[i]
		sortedOwner[k] = owner[i]
	}
	// The gathered spans must tile [0, Size()) exactly once; replicated
	// bases (every index local everywhere) and irregular compositions do
	// not, so fall back to an even split with one segment per location.
	if !tiles(sortedSegs, base.Size()) {
		sortedSegs = sortedSegs[:0]
		sortedOwner = sortedOwner[:0]
		for who, s := range domain.NewRange1D(0, base.Size()).Split(loc.NumLocations()) {
			if !s.Empty() {
				sortedSegs = append(sortedSegs, s)
				sortedOwner = append(sortedOwner, who)
			}
		}
		aligned = false
	}
	return Segmented[T]{Base: base, segs: sortedSegs, owner: sortedOwner, aligned: aligned}
}

// tiles reports whether the sorted ranges cover [0, n) exactly once.
func tiles(rs []domain.Range1D, n int64) bool {
	var cur int64
	for _, r := range rs {
		if r.Lo != cur {
			return false
		}
		cur = r.Hi
	}
	return cur == n
}

// NumSegments returns the number of segments.
func (v Segmented[T]) NumSegments() int { return len(v.segs) }

// SegmentRange returns segment k as a flat index range.
func (v Segmented[T]) SegmentRange(k int) domain.Range1D { return v.segs[k] }

// SegmentOwner returns the location that contributed segment k.
func (v Segmented[T]) SegmentOwner(k int) int { return v.owner[k] }

// Segment returns segment k as an independent view (re-indexed from zero),
// the "view of views" access path: algorithms recurse into it like into any
// other Partitioned view.
func (v Segmented[T]) Segment(k int) Subrange[T] {
	s := v.segs[k]
	return Subrange[T]{Base: v.Base, Off: s.Lo, Len: s.Size()}
}

// Size returns the flat element count.
func (v Segmented[T]) Size() int64 { return v.Base.Size() }

// Get reads flat element i.
func (v Segmented[T]) Get(i int64) T { return v.Base.Get(i) }

// Set writes flat element i.
func (v Segmented[T]) Set(i int64, x T) { v.Base.Set(i, x) }

// GetBulk reads a batch through the base's bulk path.
func (v Segmented[T]) GetBulk(idxs []int64) []T { return ReadBatch[T](v.Base, idxs) }

// SetBulk writes a batch through the base's bulk path.
func (v Segmented[T]) SetBulk(idxs []int64, vals []T) { WriteBatch[T](v.Base, idxs, vals) }

// LocalRanges assigns every location the segments it contributed — the
// segment list is the work decomposition.
func (v Segmented[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	var out []domain.Range1D
	for k, s := range v.segs {
		if v.owner[k] == loc.ID() {
			out = append(out, s)
		}
	}
	return out
}

// LocalSpans reports the owned segments when they were derived from storage
// locality, and delegates to the base otherwise.
func (v Segmented[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	if v.aligned {
		return v.LocalRanges(loc)
	}
	return localSpansOf(v.Base, loc)
}

// LocalSegment exposes the base's raw storage.
func (v Segmented[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if d, ok := v.Base.(DirectAccess[T]); ok {
		return d.LocalSegment(r)
	}
	return nil, false
}

// Filtered presents the base elements accepted by a predicate as a dense
// view of their own (filter_view).  The accepted index set is computed
// collectively at construction — each location scans its own share — and
// the (index-only) mapping is replicated on every location, so element
// access needs no extra communication afterwards.  Writes pass through to
// the base.
type Filtered[T any] struct {
	Base Partitioned[T]
	idx  []int64          // accepted base indices, ascending (replicated)
	mine []domain.Range1D // view positions this location's scan contributed
}

// NewFiltered builds the filtered view collectively: accept is applied to
// every element exactly once machine-wide (each location scans its
// LocalRanges through the bulk read path).
func NewFiltered[T any](loc *runtime.Location, base Partitioned[T], accept func(i int64, x T) bool) Filtered[T] {
	var local []int64
	for _, r := range base.LocalRanges(loc) {
		vals := ReadChunk[T](base, r)
		for k, x := range vals {
			if i := r.Lo + int64(k); accept(i, x) {
				local = append(local, i)
			}
		}
	}
	all := runtime.AllGatherT(loc, local)
	var idx []int64
	for _, part := range all {
		idx = append(idx, part...)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	f := Filtered[T]{Base: base, idx: idx}
	// This location's scan ranges hold consecutive runs of accepted
	// indices, so its view positions are contiguous per scanned range.
	for _, r := range base.LocalRanges(loc) {
		lo := sort.Search(len(idx), func(k int) bool { return idx[k] >= r.Lo })
		hi := sort.Search(len(idx), func(k int) bool { return idx[k] >= r.Hi })
		if p := domain.NewRange1D(int64(lo), int64(hi)); !p.Empty() {
			f.mine = append(f.mine, p)
		}
	}
	return f
}

// Size returns the number of accepted elements.
func (v Filtered[T]) Size() int64 { return int64(len(v.idx)) }

// BaseIndex returns the base index of view element i.
func (v Filtered[T]) BaseIndex(i int64) int64 { return v.idx[i] }

// Get reads accepted element i.
func (v Filtered[T]) Get(i int64) T { return v.Base.Get(v.idx[i]) }

// Set writes through to the base element backing accepted element i.
func (v Filtered[T]) Set(i int64, x T) { v.Base.Set(v.idx[i], x) }

// mapIdxs translates view positions to base indices.
func (v Filtered[T]) mapIdxs(idxs []int64) []int64 {
	out := make([]int64, len(idxs))
	for k, i := range idxs {
		out[k] = v.idx[i]
	}
	return out
}

// GetBulk reads a batch through the base's bulk path.
func (v Filtered[T]) GetBulk(idxs []int64) []T { return ReadBatch[T](v.Base, v.mapIdxs(idxs)) }

// SetBulk writes a batch through the base's bulk path.
func (v Filtered[T]) SetBulk(idxs []int64, vals []T) { WriteBatch[T](v.Base, v.mapIdxs(idxs), vals) }

// LocalRanges assigns each location the view positions of the elements its
// scan accepted, which tiles the filtered domain exactly once.
func (v Filtered[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return append([]domain.Range1D(nil), v.mine...)
}

// LocalSpans maps the base's local spans into view positions.
func (v Filtered[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	src, ok := v.Base.(LocalitySource)
	if !ok {
		return nil
	}
	var out []domain.Range1D
	for _, s := range src.LocalSpans(loc) {
		lo := sort.Search(len(v.idx), func(k int) bool { return v.idx[k] >= s.Lo })
		hi := sort.Search(len(v.idx), func(k int) bool { return v.idx[k] >= s.Hi })
		if p := domain.NewRange1D(int64(lo), int64(hi)); !p.Empty() {
			out = append(out, p)
		}
	}
	return out
}

var (
	_ Partitioned[Pair[int, string]] = Zip2[int, string]{}
	_ BulkAccess[Pair[int, string]]  = Zip2[int, string]{}
	_ LocalitySource                 = Zip2[int, string]{}

	_ Partitioned[int]  = Subrange[int]{}
	_ BulkAccess[int]   = Subrange[int]{}
	_ LocalitySource    = Subrange[int]{}
	_ DirectAccess[int] = Subrange[int]{}

	_ Partitioned[int]  = Segmented[int]{}
	_ BulkAccess[int]   = Segmented[int]{}
	_ LocalitySource    = Segmented[int]{}
	_ DirectAccess[int] = Segmented[int]{}

	_ Partitioned[int] = Filtered[int]{}
	_ BulkAccess[int]  = Filtered[int]{}
	_ LocalitySource   = Filtered[int]{}
)
