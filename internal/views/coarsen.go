package views

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/runtime"
)

// This file implements the coarsening pass of the pView algebra: the step
// that turns an arbitrarily composed view into per-location work the
// runtime can execute at container speed.  A view describes WHAT to access
// (domain + mapping function); Coarsen decides HOW: which index runs of the
// calling location's share sit in its own memory (and can be walked through
// a raw storage segment, approaching native array speed) and which form the
// remote remainder that must be serviced through the bulk element path
// (one sized RMI per chunk per owning location instead of one request per
// element).  pAlgorithms iterate LocalChunks instead of hand-rolling their
// own chunk loops.

// LocalitySource is implemented by views that can report which parts of
// their index domain resolve to the calling location's memory.  The spans
// are in VIEW index space (after any re-indexing the view applies) and must
// be disjoint; they need not be sorted.  Composed views derive their spans
// from their constituents: a Zip is local where every constituent is local,
// a Strided view maps its base's spans through the stride, and so on.
//
// A view without a LocalitySource is treated as having no local spans: its
// whole share coarsens into bulk chunks, which is always correct (the bulk
// path short-circuits locally owned elements) just not as fast.
type LocalitySource interface {
	LocalSpans(loc *runtime.Location) []domain.Range1D
}

// DirectAccess is implemented by views that can expose the raw local
// storage backing a run of view indices.  LocalSegment returns the backing
// slice for view indices [r.Lo, r.Hi) — element k of the returned slice is
// view element r.Lo+k — and ok=false when the run is not backed by one
// contiguous piece of this location's memory.
//
// Algorithms may only request segments inside their own work decomposition
// (LocalRanges) and must separate phases that touch the same elements with
// fences, exactly the discipline the paper's native views demand; the
// segment bypasses the container's per-access locking in exchange for
// raw-slice speed.
type DirectAccess[T any] interface {
	LocalSegment(r domain.Range1D) ([]T, bool)
}

// ChunkKind classifies a coarsened chunk by its cheapest access path.
type ChunkKind int

const (
	// ChunkNative marks a run whose elements all live in the calling
	// location's memory: algorithms walk it through LocalSegment when the
	// view offers one, or through the (message-free) local bulk path.
	ChunkNative ChunkKind = iota
	// ChunkBulk marks the remote remainder: the run is serviced through
	// BulkAccess, one grouped request per owning location per batch.
	ChunkBulk
)

// LocalChunk is one contiguous run of view indices produced by Coarsen,
// tagged with the access path the composition allows for it.
type LocalChunk struct {
	Range domain.Range1D
	Kind  ChunkKind
}

// localSpansOf returns the view's local spans, sorted and merged, or nil
// when the view does not expose locality information.
func localSpansOf(v any, loc *runtime.Location) []domain.Range1D {
	src, ok := v.(LocalitySource)
	if !ok {
		return nil
	}
	spans := append([]domain.Range1D(nil), src.LocalSpans(loc)...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	// Merge touching spans so the classification below emits maximal runs.
	out := spans[:0]
	for _, s := range spans {
		if s.Empty() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Hi >= s.Lo {
			if s.Hi > out[n-1].Hi {
				out[n-1].Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Coarsen partitions the calling location's share of the view (its
// LocalRanges) into native chunks — runs stored in this location's memory —
// plus the remote remainder as bulk chunks.  The chunks cover the share
// exactly once, in ascending index order within each range.
func Coarsen[T any](loc *runtime.Location, v Partitioned[T]) []LocalChunk {
	ranges := v.LocalRanges(loc)
	if len(ranges) == 0 {
		return nil
	}
	spans := localSpansOf(v, loc)
	var out []LocalChunk
	for _, r := range ranges {
		out = appendClassified(out, r, spans)
	}
	return out
}

// appendClassified splits r against the sorted local spans, appending
// native chunks for overlaps and bulk chunks for the gaps.
func appendClassified(out []LocalChunk, r domain.Range1D, spans []domain.Range1D) []LocalChunk {
	cur := r.Lo
	// Skip spans entirely before r.
	i := sort.Search(len(spans), func(k int) bool { return spans[k].Hi > r.Lo })
	for ; i < len(spans) && spans[i].Lo < r.Hi; i++ {
		ov := r.Intersect(spans[i])
		if ov.Empty() {
			continue
		}
		if cur < ov.Lo {
			out = append(out, LocalChunk{Range: domain.NewRange1D(cur, ov.Lo), Kind: ChunkBulk})
		}
		out = append(out, LocalChunk{Range: ov, Kind: ChunkNative})
		cur = ov.Hi
	}
	if cur < r.Hi {
		out = append(out, LocalChunk{Range: domain.NewRange1D(cur, r.Hi), Kind: ChunkBulk})
	}
	return out
}

// iota64 returns a fresh slice of the consecutive indices [lo, hi).
func iota64(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// ReadChunk reads the view elements [r.Lo, r.Hi) into a fresh slice, using
// the view's bulk path when it has one.  Bulk gets are synchronous, so the
// index slice is not retained past the call.
func ReadChunk[T any](v RandomAccess[T], r domain.Range1D) []T {
	if b, ok := any(v).(BulkAccess[T]); ok {
		return b.GetBulk(iota64(r.Lo, r.Hi))
	}
	out := make([]T, 0, r.Size())
	for i := r.Lo; i < r.Hi; i++ {
		out = append(out, v.Get(i))
	}
	return out
}

// WriteChunk writes vals to the view elements [r.Lo, r.Hi), using the
// view's bulk path when it has one.  Bulk sets are asynchronous and retain
// their argument slices until the next fence; callers hand over ownership
// of vals and must not reuse it before the fence.
func WriteChunk[T any](v RandomAccess[T], r domain.Range1D, vals []T) {
	if b, ok := any(v).(BulkAccess[T]); ok {
		b.SetBulk(iota64(r.Lo, r.Hi), vals)
		return
	}
	for k, i := 0, r.Lo; i < r.Hi; k, i = k+1, i+1 {
		v.Set(i, vals[k])
	}
}

// Segment returns the raw local storage backing [r.Lo, r.Hi) when the view
// exposes it, and ok=false otherwise.
func Segment[T any](v RandomAccess[T], r domain.Range1D) ([]T, bool) {
	if d, ok := any(v).(DirectAccess[T]); ok {
		return d.LocalSegment(r)
	}
	return nil, false
}

// WriteRange writes vals (one value per index of [r.Lo, r.Hi)) into the
// view, coarsening the range first: runs backed by local storage are copied
// directly, the remainder goes through the bulk path in one grouped write
// per run.  Like WriteChunk it takes ownership of vals until the next
// fence.
func WriteRange[T any](loc *runtime.Location, v Partitioned[T], r domain.Range1D, vals []T) {
	if r.Empty() {
		return
	}
	spans := localSpansOf(any(v), loc)
	for _, c := range appendClassified(nil, r, spans) {
		part := vals[c.Range.Lo-r.Lo : c.Range.Hi-r.Lo]
		if c.Kind == ChunkNative {
			if seg, ok := Segment[T](v, c.Range); ok {
				copy(seg, part)
				continue
			}
		}
		WriteChunk[T](v, c.Range, part)
	}
}
