package views

import (
	"sort"

	"repro/internal/containers/pmatrix"
	"repro/internal/domain"
	"repro/internal/runtime"
)

// This file implements the 2-D face of the pView algebra: views over a
// pMatrix that present its rows×cols domain through the one-dimensional
// Partitioned interface every pAlgorithm (and Coarsen, and ExchangeHalo)
// already consumes.  The linearisation is row-major — view index
// i = row*Cols + col — so a row-blocked matrix coarsens into one native
// segment per location, a checkerboard into one run per stored row, and the
// remote remainder of any composition ships through the matrix's bulk
// element path, one grouped request per owning location.  Row, column,
// transpose and sub-block adaptors re-map the linearisation and propagate
// locality (and, where storage stays contiguous, raw segments) so 2-D
// compositions coarsen like the 1-D ones.

// MatrixView is the native 2-D view of a pMatrix in row-major linearisation.
type MatrixView[T any] struct {
	M *pmatrix.Matrix[T]
}

// NewMatrixView builds the row-major view of a pMatrix.
func NewMatrixView[T any](m *pmatrix.Matrix[T]) MatrixView[T] { return MatrixView[T]{M: m} }

// Size returns rows*cols.
func (v MatrixView[T]) Size() int64 { return v.M.Size() }

// index2D maps a row-major linear index to its 2-D index.
func (v MatrixView[T]) index2D(i int64) domain.Index2D {
	c := v.M.Cols()
	return domain.Index2D{Row: i / c, Col: i % c}
}

// to2D maps a linear index batch to 2-D indices.
func (v MatrixView[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = v.index2D(i)
	}
	return out
}

// Get reads linear element i.
func (v MatrixView[T]) Get(i int64) T {
	g := v.index2D(i)
	return v.M.Get(g.Row, g.Col)
}

// Set writes linear element i.
func (v MatrixView[T]) Set(i int64, x T) {
	g := v.index2D(i)
	v.M.Set(g.Row, g.Col, x)
}

// GetBulk reads a batch through the matrix's grouped bulk path.
func (v MatrixView[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch through the matrix's grouped bulk path.
func (v MatrixView[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

// mergeRuns sorts runs by lower bound, drops empty ones and merges exactly
// adjacent neighbours, in place.  The per-row runs of the 2-D views collapse
// through it: full-width (or full-height, for the transpose) blocks become
// one run per block.
func mergeRuns(runs []domain.Range1D) []domain.Range1D {
	sort.Slice(runs, func(i, j int) bool { return runs[i].Lo < runs[j].Lo })
	merged := runs[:0]
	for _, r := range runs {
		if r.Empty() {
			continue
		}
		if n := len(merged); n > 0 && merged[n-1].Hi == r.Lo {
			merged[n-1].Hi = r.Hi
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// localLinearRuns lists the linear runs of this location's blocks: one run
// per stored row, merged where the linearisation keeps neighbouring rows
// adjacent (full-width blocks collapse to one run per block).
func (v MatrixView[T]) localLinearRuns() []domain.Range1D {
	cols := v.M.Cols()
	rows, colRanges := v.M.LocalBlocks()
	var runs []domain.Range1D
	for b := range rows {
		for r := rows[b].Lo; r < rows[b].Hi; r++ {
			runs = append(runs, domain.NewRange1D(r*cols+colRanges[b].Lo, r*cols+colRanges[b].Hi))
		}
	}
	return mergeRuns(runs)
}

// LocalRanges assigns every location the linear runs of the blocks it
// stores: the native 2-D work decomposition (the runs of all locations tile
// the domain exactly once because the blocks do).
func (v MatrixView[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.localLinearRuns()
}

// LocalSpans reports the same runs: the view is storage-aligned.
func (v MatrixView[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.localLinearRuns()
}

// LocalSegment exposes the raw block storage backing a linear run.
func (v MatrixView[T]) LocalSegment(r domain.Range1D) ([]T, bool) { return v.M.LinearSegment(r) }

// Row returns the 1-D view of one matrix row; its work decomposition keeps
// each column strip on the location storing it.
func (v MatrixView[T]) Row(row int64) MatrixRow[T] { return MatrixRow[T]{M: v.M, R: row} }

// Col returns the 1-D view of one matrix column.
func (v MatrixView[T]) Col(col int64) MatrixCol[T] { return MatrixCol[T]{M: v.M, C: col} }

// Transpose returns the column-major re-linearisation of the matrix.
func (v MatrixView[T]) Transpose() MatrixTranspose[T] { return MatrixTranspose[T]{M: v.M} }

// SubBlock returns the rectangular window rows×cols as a dense 2-D view of
// its own.
func (v MatrixView[T]) SubBlock(rows, cols domain.Range1D) MatrixSub[T] {
	full := domain.NewRange1D(0, v.M.Rows())
	rows = rows.Intersect(full)
	cols = cols.Intersect(domain.NewRange1D(0, v.M.Cols()))
	return MatrixSub[T]{M: v.M, RowR: rows, ColR: cols}
}

// MatrixRow is the view of one matrix row (row_view): element i is
// M[row, i].
type MatrixRow[T any] struct {
	M *pmatrix.Matrix[T]
	R int64
}

// Size returns the number of columns.
func (v MatrixRow[T]) Size() int64 { return v.M.Cols() }

// Get reads column i of the row.
func (v MatrixRow[T]) Get(i int64) T { return v.M.Get(v.R, i) }

// Set writes column i of the row.
func (v MatrixRow[T]) Set(i int64, x T) { v.M.Set(v.R, i, x) }

// GetBulk reads a batch of columns as one grouped row-strip request per
// owning location.
func (v MatrixRow[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch of columns through the grouped bulk path.
func (v MatrixRow[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

func (v MatrixRow[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = domain.Index2D{Row: v.R, Col: i}
	}
	return out
}

// localColRuns returns the column ranges of this location's blocks that
// contain the row.
func (v MatrixRow[T]) localColRuns() []domain.Range1D {
	rows, cols := v.M.LocalBlocks()
	var out []domain.Range1D
	for b := range rows {
		if rows[b].Contains(v.R) && !cols[b].Empty() {
			out = append(out, cols[b])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// LocalRanges assigns the row's column strips to the locations storing them
// (locations not storing any part of the row contribute no work).
func (v MatrixRow[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.localColRuns()
}

// LocalSpans reports the locally stored column strips.
func (v MatrixRow[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.localColRuns()
}

// LocalSegment exposes the raw row-strip storage.
func (v MatrixRow[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	return v.M.RowSegment(v.R, r)
}

// MatrixCol is the view of one matrix column: element i is M[i, col].
// Column elements are strided in the row-major block storage, so the view
// propagates locality but no raw segments.
type MatrixCol[T any] struct {
	M *pmatrix.Matrix[T]
	C int64
}

// Size returns the number of rows.
func (v MatrixCol[T]) Size() int64 { return v.M.Rows() }

// Get reads row i of the column.
func (v MatrixCol[T]) Get(i int64) T { return v.M.Get(i, v.C) }

// Set writes row i of the column.
func (v MatrixCol[T]) Set(i int64, x T) { v.M.Set(i, v.C, x) }

// GetBulk reads a batch of rows through the grouped bulk path.
func (v MatrixCol[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch of rows through the grouped bulk path.
func (v MatrixCol[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

func (v MatrixCol[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = domain.Index2D{Row: i, Col: v.C}
	}
	return out
}

// localRowRuns returns the row ranges of this location's blocks that contain
// the column.
func (v MatrixCol[T]) localRowRuns() []domain.Range1D {
	rows, cols := v.M.LocalBlocks()
	var out []domain.Range1D
	for b := range rows {
		if cols[b].Contains(v.C) && !rows[b].Empty() {
			out = append(out, rows[b])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	return out
}

// LocalRanges assigns the column's row strips to the locations storing them.
func (v MatrixCol[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.localRowRuns()
}

// LocalSpans reports the locally stored row strips.
func (v MatrixCol[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.localRowRuns()
}

// MatrixTranspose presents the matrix in column-major linearisation: view
// index i is M[i % Rows, i / Rows], so iterating the view walks columns.
// Writes pass through (the view transposes the traversal, not the data).
type MatrixTranspose[T any] struct {
	M *pmatrix.Matrix[T]
}

// Size returns rows*cols.
func (v MatrixTranspose[T]) Size() int64 { return v.M.Size() }

func (v MatrixTranspose[T]) index2D(i int64) domain.Index2D {
	r := v.M.Rows()
	return domain.Index2D{Row: i % r, Col: i / r}
}

func (v MatrixTranspose[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = v.index2D(i)
	}
	return out
}

// Get reads transposed element i.
func (v MatrixTranspose[T]) Get(i int64) T {
	g := v.index2D(i)
	return v.M.Get(g.Row, g.Col)
}

// Set writes transposed element i.
func (v MatrixTranspose[T]) Set(i int64, x T) {
	g := v.index2D(i)
	v.M.Set(g.Row, g.Col, x)
}

// GetBulk reads a batch through the grouped bulk path.
func (v MatrixTranspose[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch through the grouped bulk path.
func (v MatrixTranspose[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

// localLinearRuns lists the column-major runs of this location's blocks: one
// run per stored column, merged where adjacent (full-height blocks collapse
// to one run per block).
func (v MatrixTranspose[T]) localLinearRuns() []domain.Range1D {
	rowsN := v.M.Rows()
	rows, cols := v.M.LocalBlocks()
	var runs []domain.Range1D
	for b := range rows {
		for c := cols[b].Lo; c < cols[b].Hi; c++ {
			runs = append(runs, domain.NewRange1D(c*rowsN+rows[b].Lo, c*rowsN+rows[b].Hi))
		}
	}
	return mergeRuns(runs)
}

// LocalRanges assigns every location the column-major runs of its blocks.
func (v MatrixTranspose[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.localLinearRuns()
}

// LocalSpans reports the same runs: the view is storage-aligned, just
// re-ordered (column runs are strided in block storage, so there are no raw
// segments).
func (v MatrixTranspose[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.localLinearRuns()
}

// MatrixSub is the dense view of a rectangular window of the matrix,
// re-linearised row-major from zero: view index i is
// M[RowR.Lo + i/w, ColR.Lo + i%w] with w = ColR.Size().
type MatrixSub[T any] struct {
	M          *pmatrix.Matrix[T]
	RowR, ColR domain.Range1D
}

// Rows returns the window height.
func (v MatrixSub[T]) Rows() int64 { return v.RowR.Size() }

// Cols returns the window width.
func (v MatrixSub[T]) Cols() int64 { return v.ColR.Size() }

// Size returns the window element count.
func (v MatrixSub[T]) Size() int64 { return v.RowR.Size() * v.ColR.Size() }

func (v MatrixSub[T]) index2D(i int64) domain.Index2D {
	w := v.ColR.Size()
	return domain.Index2D{Row: v.RowR.Lo + i/w, Col: v.ColR.Lo + i%w}
}

func (v MatrixSub[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = v.index2D(i)
	}
	return out
}

// Get reads window element i.
func (v MatrixSub[T]) Get(i int64) T {
	g := v.index2D(i)
	return v.M.Get(g.Row, g.Col)
}

// Set writes window element i.
func (v MatrixSub[T]) Set(i int64, x T) {
	g := v.index2D(i)
	v.M.Set(g.Row, g.Col, x)
}

// GetBulk reads a batch through the grouped bulk path.
func (v MatrixSub[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch through the grouped bulk path.
func (v MatrixSub[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

// localRuns lists the window's linear runs backed by this location's blocks:
// the intersection of each block with the window, one run per window row.
func (v MatrixSub[T]) localRuns() []domain.Range1D {
	w := v.ColR.Size()
	rows, cols := v.M.LocalBlocks()
	var runs []domain.Range1D
	for b := range rows {
		rr := rows[b].Intersect(v.RowR)
		cc := cols[b].Intersect(v.ColR)
		if rr.Empty() || cc.Empty() {
			continue
		}
		for r := rr.Lo; r < rr.Hi; r++ {
			base := (r - v.RowR.Lo) * w
			runs = append(runs, domain.NewRange1D(base+cc.Lo-v.ColR.Lo, base+cc.Hi-v.ColR.Lo))
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Lo < runs[j].Lo })
	return runs
}

// LocalRanges assigns each location the window runs its blocks back; across
// locations they tile the window exactly once.
func (v MatrixSub[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	return v.localRuns()
}

// LocalSpans reports the same runs (storage-aligned).
func (v MatrixSub[T]) LocalSpans(loc *runtime.Location) []domain.Range1D {
	return v.localRuns()
}

// LocalSegment exposes raw storage for runs inside one window row.
func (v MatrixSub[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if r.Empty() {
		return nil, false
	}
	w := v.ColR.Size()
	if w == 0 || r.Lo/w != (r.Hi-1)/w {
		return nil, false
	}
	row := v.RowR.Lo + r.Lo/w
	lo := v.ColR.Lo + r.Lo%w
	return v.M.RowSegment(row, domain.NewRange1D(lo, lo+r.Size()))
}

// SparseMatrixView is the row-major view of a CSR-backed sparse pMatrix.
// It presents the full dense domain — element i reads entry (i/Cols, i%Cols),
// zero when unset — through the same Partitioned interface as MatrixView, so
// every pAlgorithm composes with either storage representation unchanged.
// Dense raw segments do not exist in CSR storage, so the view offers no
// LocalSegment; instead the stored entries are reachable natively:
// RangeLocalNZ walks this location's blocks through their CSR row spans
// without materialising zeros (the access path SpMV and the sparse
// reductions coarsen over).
type SparseMatrixView[T any] struct {
	M *pmatrix.SparseMatrix[T]
}

// NewSparseMatrixView builds the row-major view of a sparse pMatrix.
func NewSparseMatrixView[T any](m *pmatrix.SparseMatrix[T]) SparseMatrixView[T] {
	return SparseMatrixView[T]{M: m}
}

// Size returns rows*cols (the dense domain, like the container).
func (v SparseMatrixView[T]) Size() int64 { return v.M.Size() }

func (v SparseMatrixView[T]) index2D(i int64) domain.Index2D {
	c := v.M.Cols()
	return domain.Index2D{Row: i / c, Col: i % c}
}

func (v SparseMatrixView[T]) to2D(idxs []int64) []domain.Index2D {
	out := make([]domain.Index2D, len(idxs))
	for k, i := range idxs {
		out[k] = v.index2D(i)
	}
	return out
}

// Get reads view element i (zero when no entry is stored).
func (v SparseMatrixView[T]) Get(i int64) T {
	g := v.index2D(i)
	return v.M.Get(g.Row, g.Col)
}

// Set writes view element i as an explicit entry.
func (v SparseMatrixView[T]) Set(i int64, x T) {
	g := v.index2D(i)
	v.M.Set(g.Row, g.Col, x)
}

// GetBulk reads a batch through the matrix's grouped bulk path.
func (v SparseMatrixView[T]) GetBulk(idxs []int64) []T { return v.M.GetBulk(v.to2D(idxs)) }

// SetBulk writes a batch through the matrix's grouped bulk path.
func (v SparseMatrixView[T]) SetBulk(idxs []int64, vals []T) { v.M.SetBulk(v.to2D(idxs), vals) }

// LocalRanges assigns every location the linear runs of the blocks it
// stores, exactly like the dense view: ownership is a property of the block
// partition, not of the storage representation.
func (v SparseMatrixView[T]) LocalRanges(loc *runtime.Location) []domain.Range1D {
	cols := v.M.Cols()
	rows, colRanges := v.M.LocalBlocks()
	var runs []domain.Range1D
	for b := range rows {
		for r := rows[b].Lo; r < rows[b].Hi; r++ {
			runs = append(runs, domain.NewRange1D(r*cols+colRanges[b].Lo, r*cols+colRanges[b].Hi))
		}
	}
	return mergeRuns(runs)
}

// RangeLocalNZ applies fn to every locally stored entry as (linear view
// index, value), walking the CSR blocks through their native row spans — the
// coarsened access path for algorithms that only need the nonzeros.
func (v SparseMatrixView[T]) RangeLocalNZ(fn func(i int64, val T) bool) {
	cols := v.M.Cols()
	v.M.RangeLocalNZ(func(g domain.Index2D, val T) bool {
		return fn(g.Row*cols+g.Col, val)
	})
}

var (
	_ Partitioned[int]  = MatrixView[int]{}
	_ BulkAccess[int]   = MatrixView[int]{}
	_ LocalitySource    = MatrixView[int]{}
	_ DirectAccess[int] = MatrixView[int]{}

	_ Partitioned[int] = SparseMatrixView[int]{}
	_ BulkAccess[int]  = SparseMatrixView[int]{}

	_ Partitioned[int]  = MatrixRow[int]{}
	_ BulkAccess[int]   = MatrixRow[int]{}
	_ LocalitySource    = MatrixRow[int]{}
	_ DirectAccess[int] = MatrixRow[int]{}

	_ Partitioned[int] = MatrixCol[int]{}
	_ BulkAccess[int]  = MatrixCol[int]{}
	_ LocalitySource   = MatrixCol[int]{}

	_ Partitioned[int] = MatrixTranspose[int]{}
	_ BulkAccess[int]  = MatrixTranspose[int]{}
	_ LocalitySource   = MatrixTranspose[int]{}

	_ Partitioned[int]  = MatrixSub[int]{}
	_ BulkAccess[int]   = MatrixSub[int]{}
	_ LocalitySource    = MatrixSub[int]{}
	_ DirectAccess[int] = MatrixSub[int]{}
)
