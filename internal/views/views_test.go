package views

import (
	"testing"

	"repro/internal/containers/parray"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

// checkCoverage verifies that LocalRanges over all locations tile [0, size)
// exactly once.
func checkCoverage[T any](t *testing.T, loc *runtime.Location, v Partitioned[T]) {
	t.Helper()
	var local int64
	for _, r := range v.LocalRanges(loc) {
		local += r.Size()
	}
	if total := runtime.AllReduceSum(loc, local); total != v.Size() {
		t.Errorf("local ranges cover %d of %d elements", total, v.Size())
	}
}

func TestArrayNativeView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 40)
		v := NewArrayNative(pa)
		if v.Size() != 40 {
			t.Errorf("size = %d", v.Size())
		}
		checkCoverage[int](t, loc, v)
		// Native ranges are exactly the local sub-domains.
		ranges := v.LocalRanges(loc)
		if len(ranges) != 1 || ranges[0].Size() != 10 {
			t.Errorf("native ranges = %v", ranges)
		}
		// Writes through the view are visible through the container.
		for _, r := range ranges {
			for i := r.Lo; i < r.Hi; i++ {
				v.Set(i, int(i)+1)
			}
		}
		loc.Fence()
		if got := v.Get(39); got != 40 {
			t.Errorf("Get(39) = %d", got)
		}
		loc.Fence()
	})
}

func TestVectorNativeView(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		pv := pvector.New[int](loc, 10)
		v := NewVectorNative(pv)
		if v.Size() != 10 {
			t.Errorf("size = %d", v.Size())
		}
		checkCoverage[int](t, loc, v)
		v.Set(int64(loc.ID()*5), 7)
		loc.Fence()
		if v.Get(5) != 7 || v.Get(0) != 7 {
			t.Error("view writes lost")
		}
		loc.Fence()
	})
}

func TestBalancedView(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		// A pArray whose distribution is deliberately skewed: blocked with
		// a large block so location 0 owns everything.
		pa := parray.New[int](loc, 32)
		bal := NewBalanced[int](NewArrayNative(pa))
		checkCoverage[int](t, loc, bal)
		ranges := bal.LocalRanges(loc)
		if len(ranges) != 1 || ranges[0].Size() != 8 {
			t.Errorf("balanced ranges = %v", ranges)
		}
		// Every location gets a distinct range.
		if ranges[0].Lo != int64(loc.ID())*8 {
			t.Errorf("location %d range starts at %d", loc.ID(), ranges[0].Lo)
		}
		loc.Fence()
	})
}

func TestStridedView(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 20)
		base := NewArrayNative(pa)
		for _, r := range base.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				base.Set(i, int(i))
			}
		}
		loc.Fence()
		// Every second element starting at 1: 1,3,5,...,19 → 10 elements.
		st := NewStrided[int](base, 1, 2)
		if st.Size() != 10 {
			t.Errorf("strided size = %d", st.Size())
		}
		checkCoverage[int](t, loc, st)
		if st.Get(0) != 1 || st.Get(9) != 19 {
			t.Errorf("strided get wrong: %d %d", st.Get(0), st.Get(9))
		}
		// All locations must finish the read-only checks above before any
		// location starts mutating element 0 below.
		loc.Barrier()
		if loc.ID() == 0 {
			st.Set(0, 100)
		}
		loc.Fence()
		if pa.Get(1) != 100 {
			t.Error("strided set did not hit base index 1")
		}
		// Degenerate stride.
		if NewStrided[int](base, 0, 0).Strd != 1 {
			t.Error("stride 0 should clamp to 1")
		}
		// Offset beyond the end.
		if NewStrided[int](base, 25, 2).Size() != 0 {
			t.Error("out-of-range offset should give an empty view")
		}
		loc.Fence()
	})
}

func TestTransformView(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 10)
		base := NewArrayNative(pa)
		for _, r := range base.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				base.Set(i, int(i))
			}
		}
		loc.Fence()
		tv := NewTransform[int, string](base, func(x int) string {
			if x%2 == 0 {
				return "even"
			}
			return "odd"
		})
		if tv.Size() != 10 {
			t.Error("size wrong")
		}
		if tv.Get(2) != "even" || tv.Get(3) != "odd" {
			t.Error("transform read wrong")
		}
		checkCoverage[string](t, loc, tv)
		defer func() {
			if recover() == nil {
				t.Error("transform Set should panic")
			}
			loc.Fence()
		}()
		tv.Set(0, "x")
	})
}

func TestOverlapView(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		// Paper example (Fig. 2): A[0,10], c=2, l=2, r=1 → windows of 5
		// starting every 2: A[0..4], A[2..6], A[4..8], A[6..10].
		pa := parray.New[int](loc, 11)
		base := NewArrayNative(pa)
		for _, r := range base.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				base.Set(i, int(i))
			}
		}
		loc.Fence()
		ov := NewOverlap[int](base, 2, 2, 1)
		if ov.Size() != 4 {
			t.Fatalf("windows = %d, want 4", ov.Size())
		}
		w := ov.GetWindow(1)
		if len(w) != 5 || w[0] != 2 || w[4] != 6 {
			t.Errorf("window 1 = %v", w)
		}
		w = ov.GetWindow(3)
		if w[0] != 6 || w[4] != 10 {
			t.Errorf("window 3 = %v", w)
		}
		var localWindows int64
		for _, r := range ov.LocalRanges(loc) {
			localWindows += r.Size()
		}
		if total := runtime.AllReduceSum(loc, localWindows); total != 4 {
			t.Errorf("window coverage = %d", total)
		}
		// A view too small for a single window has no windows.
		small := parray.New[int](loc, 3)
		if NewOverlap[int](NewArrayNative(small), 2, 2, 1).Size() != 0 {
			t.Error("small overlap view should be empty")
		}
		loc.Fence()
	})
}

func TestSliceView(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		data := []int{1, 2, 3, 4, 5, 6}
		v := NewSlice(data)
		if v.Size() != 6 {
			t.Error("size wrong")
		}
		checkCoverage[int](t, loc, v)
		if v.Get(3) != 4 {
			t.Error("get wrong")
		}
		loc.Fence()
	})
}

func TestEmptyRangesForTinyCollections(t *testing.T) {
	run(8, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 2)
		bal := NewBalanced[int](NewArrayNative(pa))
		var local int64
		for _, r := range bal.LocalRanges(loc) {
			if r.Empty() {
				t.Error("empty range returned; expected it to be omitted")
			}
			local += r.Size()
		}
		if total := runtime.AllReduceSum(loc, local); total != 2 {
			t.Errorf("coverage = %d", total)
		}
		loc.Fence()
	})
}

func TestViewDomainsMatchRange1D(t *testing.T) {
	// LocalRanges entries must be well-formed ranges.
	run(3, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 17)
		for _, v := range []Partitioned[int]{NewArrayNative(pa), NewBalanced[int](NewArrayNative(pa))} {
			for _, r := range v.LocalRanges(loc) {
				if r.Size() <= 0 || r.Lo < 0 || r.Hi > 17 {
					t.Errorf("malformed range %v", r)
				}
				if r != domain.NewRange1D(r.Lo, r.Hi) {
					t.Errorf("range not normalised: %v", r)
				}
			}
		}
		loc.Fence()
	})
}
