package views

import (
	"testing"

	"repro/internal/containers/pmatrix"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// fillMatrix writes the row-major pattern r*cols+c through local updates.
func fillMatrix(loc *runtime.Location, m *pmatrix.Matrix[int64]) {
	cols := m.Cols()
	m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*cols + g.Col })
	loc.Fence()
}

func TestMatrixViewCoarsensNative(t *testing.T) {
	const rows, cols = int64(8), int64(6)
	run(4, func(loc *runtime.Location) {
		m := pmatrix.New[int64](loc, rows, cols) // row-blocked
		fillMatrix(loc, m)
		v := NewMatrixView(m)
		if v.Size() != rows*cols {
			t.Fatalf("size = %d", v.Size())
		}
		// Row-blocked, full-width blocks: the whole share coarsens into one
		// native chunk backed by one raw segment.
		chunks := Coarsen[int64](loc, v)
		if len(chunks) != 1 || chunks[0].Kind != ChunkNative {
			t.Fatalf("chunks = %+v, want one native chunk", chunks)
		}
		seg, ok := Segment[int64](v, chunks[0].Range)
		if !ok || int64(len(seg)) != chunks[0].Range.Size() {
			t.Fatalf("segment ok=%v len=%d", ok, len(seg))
		}
		if seg[0] != chunks[0].Range.Lo {
			t.Errorf("segment value = %d, want %d", seg[0], chunks[0].Range.Lo)
		}
		// The linear view agrees with 2-D access everywhere.
		for i := int64(0); i < v.Size(); i += 7 {
			if got := v.Get(i); got != i {
				t.Errorf("Get(%d) = %d", i, got)
			}
		}
		loc.Fence()
	})
}

func TestMatrixViewCheckerboardRuns(t *testing.T) {
	const rows, cols = int64(8), int64(8)
	run(4, func(loc *runtime.Location) {
		m := pmatrix.New[int64](loc, rows, cols, pmatrix.WithLayout(partition.Checkerboard))
		fillMatrix(loc, m)
		v := NewMatrixView(m)
		// A 2x2 checkerboard stores 4 half-width rows per location: four
		// native runs, none mergeable.
		spans := v.LocalSpans(loc)
		if len(spans) != 4 {
			t.Fatalf("spans = %v, want 4 half-rows", spans)
		}
		var total int64
		for _, s := range spans {
			total += s.Size()
			seg, ok := Segment[int64](v, s)
			if !ok {
				t.Fatalf("span %v has no raw segment", s)
			}
			if seg[0] != s.Lo {
				t.Errorf("span %v segment starts with %d", s, seg[0])
			}
		}
		if total != rows*cols/4 {
			t.Errorf("local spans cover %d elements, want %d", total, rows*cols/4)
		}
		// The work decomposition tiles the domain exactly once machine-wide.
		all := runtime.AllGatherT(loc, v.LocalRanges(loc))
		counted := make([]int, rows*cols)
		for _, part := range all {
			for _, r := range part {
				for i := r.Lo; i < r.Hi; i++ {
					counted[i]++
				}
			}
		}
		for i, n := range counted {
			if n != 1 {
				t.Fatalf("linear index %d covered %d times", i, n)
			}
		}
		loc.Fence()
	})
}

func TestMatrixRowColViews(t *testing.T) {
	const rows, cols = int64(6), int64(8)
	run(4, func(loc *runtime.Location) {
		m := pmatrix.New[int64](loc, rows, cols, pmatrix.WithLayout(partition.Checkerboard))
		fillMatrix(loc, m)
		v := NewMatrixView(m)

		row := v.Row(2)
		if row.Size() != cols {
			t.Fatalf("row size = %d", row.Size())
		}
		for c := int64(0); c < cols; c++ {
			if got := row.Get(c); got != 2*cols+c {
				t.Errorf("row.Get(%d) = %d", c, got)
			}
		}
		// The row's work decomposition tiles the row exactly once.
		all := runtime.AllGatherT(loc, row.LocalRanges(loc))
		var covered int64
		for _, part := range all {
			for _, r := range part {
				covered += r.Size()
				// Stored strips expose raw segments.
				if _, ok := row.LocalSegment(r); len(part) > 0 && !ok && len(row.localColRuns()) > 0 {
					// only the owning location may request its own run
					_ = ok
				}
			}
		}
		if covered != cols {
			t.Errorf("row ranges cover %d, want %d", covered, cols)
		}
		// Native coarsening walks the local strip through a raw segment.
		for _, ch := range Coarsen[int64](loc, row) {
			if ch.Kind != ChunkNative {
				t.Errorf("row chunk %+v not native", ch)
			}
			if seg, ok := Segment[int64](row, ch.Range); !ok || seg[0] != 2*cols+ch.Range.Lo {
				t.Errorf("row segment ok=%v", ok)
			}
		}

		col := v.Col(3)
		if col.Size() != rows {
			t.Fatalf("col size = %d", col.Size())
		}
		for r := int64(0); r < rows; r++ {
			if got := col.Get(r); got != r*cols+3 {
				t.Errorf("col.Get(%d) = %d", r, got)
			}
		}
		colAll := runtime.AllGatherT(loc, col.LocalRanges(loc))
		covered = 0
		for _, part := range colAll {
			for _, r := range part {
				covered += r.Size()
			}
		}
		if covered != rows {
			t.Errorf("col ranges cover %d, want %d", covered, rows)
		}
		// All locations must finish the read-only checks before any of them
		// starts mutating through the column view.
		loc.Barrier()
		// Bulk writes through the column view land in the matrix.
		if len(col.LocalRanges(loc)) > 0 {
			r := col.LocalRanges(loc)[0]
			idxs := []int64{r.Lo}
			col.SetBulk(idxs, []int64{-7})
		}
		loc.Fence()
		found := int64(0)
		m.RangeLocal(func(g domain.Index2D, val int64) bool {
			if val == -7 && g.Col == 3 {
				found++
			}
			return true
		})
		if total := runtime.AllReduceSum(loc, found); total == 0 {
			t.Error("column bulk write did not land")
		}
		loc.Fence()
	})
}

func TestMatrixTransposeAndSubBlock(t *testing.T) {
	const rows, cols = int64(6), int64(4)
	run(2, func(loc *runtime.Location) {
		m := pmatrix.New[int64](loc, rows, cols)
		fillMatrix(loc, m)
		v := NewMatrixView(m)

		tr := v.Transpose()
		if tr.Size() != rows*cols {
			t.Fatalf("transpose size = %d", tr.Size())
		}
		// Column-major: index i reads M[i%rows, i/rows].
		for i := int64(0); i < tr.Size(); i++ {
			r, c := i%rows, i/rows
			if got := tr.Get(i); got != r*cols+c {
				t.Fatalf("transpose.Get(%d) = %d, want %d", i, got, r*cols+c)
			}
		}
		// Transposed work tiles the domain once.
		all := runtime.AllGatherT(loc, tr.LocalRanges(loc))
		var covered int64
		for _, part := range all {
			for _, r := range part {
				covered += r.Size()
			}
		}
		if covered != rows*cols {
			t.Errorf("transpose ranges cover %d", covered)
		}

		sub := v.SubBlock(domain.NewRange1D(1, 5), domain.NewRange1D(1, 3))
		if sub.Rows() != 4 || sub.Cols() != 2 || sub.Size() != 8 {
			t.Fatalf("sub dims = %dx%d", sub.Rows(), sub.Cols())
		}
		for i := int64(0); i < sub.Size(); i++ {
			r, c := 1+i/2, 1+i%2
			if got := sub.Get(i); got != r*cols+c {
				t.Fatalf("sub.Get(%d) = %d, want %d", i, got, r*cols+c)
			}
		}
		// Sub-block coarsening yields native chunks with raw segments on the
		// owning location.
		for _, ch := range Coarsen[int64](loc, sub) {
			if ch.Kind == ChunkNative {
				if _, ok := Segment[int64](sub, ch.Range); !ok {
					t.Errorf("native sub chunk %+v lacks a segment", ch)
				}
			}
		}
		// All locations must finish the read-only checks before any of them
		// starts mutating through the sub-block.
		loc.Barrier()
		// Writes through the sub-block update the base matrix.
		subAll := sub.LocalRanges(loc)
		if len(subAll) > 0 {
			sub.Set(subAll[0].Lo, 1000)
		}
		loc.Fence()
		var found int64
		m.RangeLocal(func(_ domain.Index2D, val int64) bool {
			if val == 1000 {
				found++
			}
			return true
		})
		if total := runtime.AllReduceSum(loc, found); total == 0 {
			t.Error("sub-block write did not land")
		}
		loc.Fence()
	})
}
