package views

import (
	"repro/internal/domain"
	"repro/internal/runtime"
)

// This file implements the stencil face of the overlap view: coarsened halo
// exchange.  Where the windowed Overlap view hands algorithms one window at
// a time (one GetWindow per window, each a fresh traversal), ExchangeHalo
// materialises a location's whole share plus its boundary cells in one pass:
// the interior comes straight out of local storage (or the message-free
// local bulk path) and the halo cells owned by other locations travel as
// ONE grouped bulk request per neighbouring owner — AsyncRMIBulk underneath
// — instead of one RMI per boundary element.

// HaloChunk is one contiguous piece of the calling location's share of a
// view, materialised together with its left/right halo cells.
type HaloChunk[T any] struct {
	// Core is the range of view indices this chunk owns (a work range of
	// the underlying decomposition).
	Core domain.Range1D
	// Lo is the view index of Data[0]: max(0, Core.Lo-left).  The halo is
	// clamped at the domain boundary, so Data covers
	// [Lo, min(size, Core.Hi+right)).
	Lo int64
	// Data holds the materialised elements.  At(i) indexes it by view
	// index.
	Data []T
}

// At returns the materialised element at view index i; i must lie inside
// the chunk's clamped halo window.
func (c HaloChunk[T]) At(i int64) T { return c.Data[i-c.Lo] }

// ExchangeHalo materialises the calling location's share of the view with
// left/right halo cells of the given widths (clamped at the domain
// boundary).  Native runs are copied from local storage; everything else —
// including the remote halo cells — is fetched through the view's bulk
// path, grouped per owning location.  Collective in the sense that every
// location typically calls it once per stencil step; it contains no global
// synchronisation of its own.
func ExchangeHalo[T any](loc *runtime.Location, v Partitioned[T], left, right int64) []HaloChunk[T] {
	return ExchangeHaloInto(loc, v, left, right, nil)
}

// ExchangeHaloInto is ExchangeHalo with buffer reuse: the Data slices of
// reuse (a previous call's result) are recycled when their sizes still fit,
// so iterative stencils allocate their halo windows once instead of once
// per sweep.  The reuse slice must no longer be in use.
func ExchangeHaloInto[T any](loc *runtime.Location, v Partitioned[T], left, right int64, reuse []HaloChunk[T]) []HaloChunk[T] {
	if left < 0 {
		left = 0
	}
	if right < 0 {
		right = 0
	}
	n := v.Size()
	spans := localSpansOf(v, loc)
	var out []HaloChunk[T]
	for _, core := range v.LocalRanges(loc) {
		if core.Empty() {
			continue
		}
		lo := core.Lo - left
		if lo < 0 {
			lo = 0
		}
		hi := core.Hi + right
		if hi > n {
			hi = n
		}
		ext := domain.NewRange1D(lo, hi)
		var buf []T
		if k := len(out); k < len(reuse) && int64(cap(reuse[k].Data)) >= ext.Size() {
			buf = reuse[k].Data[:ext.Size()]
		} else {
			buf = make([]T, ext.Size())
		}
		chunk := HaloChunk[T]{Core: core, Lo: lo, Data: buf}
		for _, c := range appendClassified(nil, ext, spans) {
			dst := chunk.Data[c.Range.Lo-lo : c.Range.Hi-lo]
			if c.Kind == ChunkNative {
				if seg, ok := Segment[T](v, c.Range); ok {
					copy(dst, seg)
					continue
				}
			}
			copy(dst, ReadChunk[T](v, c.Range))
		}
		out = append(out, chunk)
	}
	return out
}
