package graphalgo

import (
	"math"
	"testing"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

// buildChain creates a directed chain 0 -> 1 -> ... -> n-1.
func buildChain(loc *runtime.Location, n int64) *pgraph.Graph[int64, int8] {
	g := pgraph.New[int64, int8](loc, n)
	if loc.ID() == 0 {
		for v := int64(0); v < n-1; v++ {
			g.AddEdgeAsync(v, v+1, 0)
		}
	}
	loc.Fence()
	return g
}

func TestBFSOnChain(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		g := buildChain(loc, 64)
		res := BFS(loc, g, 0)
		// Every local vertex is reached with level == descriptor.
		for vd, lvl := range res.LocalLevels() {
			if lvl != vd {
				t.Errorf("level(%d) = %d", vd, lvl)
			}
		}
		if n := ReachedCount(loc, res); n != 64 {
			t.Errorf("reached = %d", n)
		}
		if m := MaxLevel(loc, res); m != 63 {
			t.Errorf("max level = %d", m)
		}
		loc.Fence()
	})
}

func TestBFSOnSSCA2ReachesWholeComponent(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		p := workload.DefaultSSCA2(8)
		g := pgraph.New[int64, int8](loc, p.NumVertices())
		workload.BuildSSCA2Static(loc, g, p)
		res := BFS(loc, g, 0)
		reached := ReachedCount(loc, res)
		if reached < 2 {
			t.Errorf("BFS from 0 reached only %d vertices", reached)
		}
		// Level of the root is 0 wherever it is stored.
		if g.IsLocal(0) && res.Level(0) != 0 {
			t.Errorf("root level = %d", res.Level(0))
		}
		loc.Fence()
	})
}

func TestBFSUnreachableVertices(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		// Two disjoint chains: 0..9 and 10..19 (no edge between them).
		g := pgraph.New[int64, int8](loc, 20)
		if loc.ID() == 0 {
			for v := int64(0); v < 9; v++ {
				g.AddEdgeAsync(v, v+1, 0)
			}
			for v := int64(10); v < 19; v++ {
				g.AddEdgeAsync(v, v+1, 0)
			}
		}
		loc.Fence()
		res := BFS(loc, g, 0)
		if n := ReachedCount(loc, res); n != 10 {
			t.Errorf("reached = %d, want 10", n)
		}
		for vd := range res.LocalLevels() {
			if vd >= 10 {
				t.Errorf("unreachable vertex %d was assigned a level", vd)
			}
		}
		loc.Fence()
	})
}

func TestConnectedComponents(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		// Undirected graph with three components: a ring of 8, a path of 4,
		// and 4 isolated vertices.
		g := pgraph.New[int64, int8](loc, 16, pgraph.WithDirected(false))
		if loc.ID() == 0 {
			for v := int64(0); v < 8; v++ {
				g.AddEdgeAsync(v, (v+1)%8, 0)
			}
			for v := int64(8); v < 11; v++ {
				g.AddEdgeAsync(v, v+1, 0)
			}
		}
		loc.Fence()
		labels := ConnectedComponents(loc, g)
		// Local labels must equal the component minimum.
		for vd, lbl := range labels {
			switch {
			case vd < 8 && lbl != 0:
				t.Errorf("vertex %d label %d, want 0", vd, lbl)
			case vd >= 8 && vd < 12 && lbl != 8:
				t.Errorf("vertex %d label %d, want 8", vd, lbl)
			case vd >= 12 && lbl != vd:
				t.Errorf("isolated vertex %d label %d", vd, lbl)
			}
		}
		if n := NumComponents(loc, labels); n != 6 {
			t.Errorf("components = %d, want 6", n)
		}
		loc.Fence()
	})
}

func TestInDegreesAndFindSources(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		// A "fan" DAG: sources 0,1,2 all point to 3; 3 points to 4..7.
		g := pgraph.New[int64, int8](loc, 8)
		if loc.ID() == 0 {
			g.AddEdgeAsync(0, 3, 0)
			g.AddEdgeAsync(1, 3, 0)
			g.AddEdgeAsync(2, 3, 0)
			for v := int64(4); v < 8; v++ {
				g.AddEdgeAsync(3, v, 0)
			}
		}
		loc.Fence()
		deg := InDegrees(loc, g)
		for vd, d := range deg {
			want := int64(0)
			if vd == 3 {
				want = 3
			} else if vd >= 4 {
				want = 1
			}
			if d != want {
				t.Errorf("in-degree(%d) = %d, want %d", vd, d, want)
			}
		}
		locals, total := FindSources(loc, g)
		if total != 3 {
			t.Errorf("sources = %d, want 3", total)
		}
		for _, vd := range locals {
			if vd > 2 {
				t.Errorf("vertex %d reported as source", vd)
			}
		}
		loc.Fence()
	})
}

func TestFindSourcesAcrossStrategies(t *testing.T) {
	// The Fig. 51 experiment: the same computation over the three address
	// translation strategies must produce the same answer.
	for _, strat := range []pgraph.Strategy{pgraph.Static, pgraph.DynamicEncoded, pgraph.DynamicDirectory} {
		strat := strat
		run(2, func(loc *runtime.Location) {
			var g *pgraph.Graph[int64, int8]
			var ids []int64
			if strat == pgraph.Static {
				g = pgraph.New[int64, int8](loc, 12)
				for i := int64(0); i < 12; i++ {
					ids = append(ids, i)
				}
			} else {
				g = pgraph.New[int64, int8](loc, 0, pgraph.WithStrategy(strat))
				// Each location creates 6 vertices; descriptors shared.
				var mine []int64
				for i := 0; i < 6; i++ {
					mine = append(mine, g.AddVertex(0))
				}
				loc.Fence()
				all := runtime.AllGatherT(loc, mine)
				for _, part := range all {
					ids = append(ids, part...)
				}
			}
			loc.Fence()
			// Chain over the first 10 ids: ids[0] is the only source among
			// the chained vertices; the remaining 2 are isolated sources.
			if loc.ID() == 0 {
				for i := 0; i < 9; i++ {
					g.AddEdgeAsync(ids[i], ids[i+1], 0)
				}
			}
			loc.Fence()
			_, total := FindSources(loc, g)
			if total != 3 {
				t.Errorf("strategy %v: sources = %d, want 3", strat, total)
			}
			loc.Fence()
		})
	}
}

func TestPageRankOnRing(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		// A directed ring: perfectly symmetric, so all ranks are equal.
		const n = 32
		g := pgraph.New[float64, int8](loc, n)
		if loc.ID() == 0 {
			for v := int64(0); v < n; v++ {
				g.AddEdgeAsync(v, (v+1)%n, 0)
			}
		}
		loc.Fence()
		ranks := PageRank(loc, g, DefaultPageRank())
		for vd, r := range ranks {
			if math.Abs(r-1.0/n) > 1e-6 {
				t.Errorf("rank(%d) = %v, want %v", vd, r, 1.0/n)
			}
		}
		if s := RankSum(loc, ranks); math.Abs(s-1.0) > 1e-6 {
			t.Errorf("rank sum = %v", s)
		}
		loc.Fence()
	})
}

func TestPageRankCoarsenedMatchesVisitScatter(t *testing.T) {
	// The coarsened scatter plan (static graphs) and the per-edge Visit
	// fallback (dynamic graphs) must agree on the ranks of the same
	// topology: a ring with chords built under both strategies.
	const n = int64(48)
	collect := func(dynamic bool) map[int64]float64 {
		out := make(map[int64]float64)
		run(4, func(loc *runtime.Location) {
			var g *pgraph.Graph[float64, int8]
			if dynamic {
				g = pgraph.New[float64, int8](loc, 0, pgraph.WithStrategy(pgraph.DynamicEncoded))
				if loc.ID() == 0 {
					for v := int64(0); v < n; v++ {
						g.AddVertexWithDescriptor(v, 0)
					}
				}
				loc.Fence()
			} else {
				g = pgraph.New[float64, int8](loc, n)
			}
			if loc.ID() == 0 {
				for v := int64(0); v < n; v++ {
					g.AddEdgeAsync(v, (v+1)%n, 0)
					g.AddEdgeAsync(v, (v*5+3)%n, 0)
				}
			}
			loc.Fence()
			ranks := PageRank(loc, g, PageRankParams{Damping: 0.85, Iterations: 15})
			all := runtime.AllGatherT(loc, rankPairs(ranks))
			if loc.ID() == 0 {
				for _, part := range all {
					for _, rp := range part {
						out[rp.VD] = rp.Rank
					}
				}
			}
			loc.Fence()
		})
		return out
	}
	static := collect(false)
	dynamic := collect(true)
	if len(static) != int(n) || len(dynamic) != int(n) {
		t.Fatalf("rank maps incomplete: %d / %d of %d", len(static), len(dynamic), n)
	}
	for vd, r := range static {
		if math.Abs(r-dynamic[vd]) > 1e-9 {
			t.Errorf("rank(%d): coarsened %v vs visit %v", vd, r, dynamic[vd])
		}
	}
}

type rankPair struct {
	VD   int64
	Rank float64
}

func rankPairs(m map[int64]float64) []rankPair {
	out := make([]rankPair, 0, len(m))
	for vd, r := range m {
		out = append(out, rankPair{VD: vd, Rank: r})
	}
	return out
}

func TestPageRankCoarsenedScatterShipsBulk(t *testing.T) {
	// On a static graph the scatter phase must run over the coarsened
	// plan: bulk requests per destination instead of one Visit per edge.
	const n = int64(64)
	const iters = 5
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	var stats runtime.Stats
	m.Execute(func(loc *runtime.Location) {
		g := pgraph.New[float64, int8](loc, n)
		if loc.ID() == 0 {
			for v := int64(0); v < n; v++ {
				g.AddEdgeAsync(v, (v+1)%n, 0)
			}
		}
		loc.Fence()
		PageRank(loc, g, PageRankParams{Damping: 0.85, Iterations: iters})
		loc.Fence()
	})
	stats = m.Stats()
	if stats.BulkRMIs == 0 {
		t.Error("coarsened page-rank scatter issued no bulk RMIs")
	}
	// Each location's targets span at most two remote destinations on the
	// ring (its own block plus the boundary neighbour), so the per-sweep
	// bulk request count stays O(P), far below one RMI per edge.
	if stats.BulkRMIs > int64(iters)*4*2 {
		t.Errorf("scatter issued %d bulk RMIs, want <= %d", stats.BulkRMIs, iters*4*2)
	}
}

func TestPageRankOnMeshPrefersCenter(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		m := workload.Mesh2DParams{Rows: 9, Cols: 9}
		g := pgraph.New[float64, int8](loc, m.NumVertices())
		workload.BuildMesh2D(loc, g, m)
		params := DefaultPageRank()
		params.Iterations = 30
		ranks := PageRank(loc, g, params)
		// Gather the center and corner ranks wherever they live.
		center := m.VertexID(4, 4)
		corner := m.VertexID(0, 0)
		localPair := [2]float64{-1, -1}
		if r, ok := ranks[center]; ok {
			localPair[0] = r
		}
		if r, ok := ranks[corner]; ok {
			localPair[1] = r
		}
		both := runtime.AllReduceT(loc, localPair, func(a, b [2]float64) [2]float64 {
			out := a
			if b[0] >= 0 {
				out[0] = b[0]
			}
			if b[1] >= 0 {
				out[1] = b[1]
			}
			return out
		})
		if both[0] <= both[1] {
			t.Errorf("center rank %v should exceed corner rank %v", both[0], both[1])
		}
		if s := RankSum(loc, ranks); math.Abs(s-1.0) > 1e-3 {
			t.Errorf("rank sum = %v", s)
		}
		loc.Fence()
	})
}

func TestPageRankToleranceStopsEarly(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		const n = 16
		g := pgraph.New[float64, int8](loc, n)
		if loc.ID() == 0 {
			for v := int64(0); v < n; v++ {
				g.AddEdgeAsync(v, (v+1)%n, 0)
			}
		}
		loc.Fence()
		params := PageRankParams{Damping: 0.85, Iterations: 1000, Tolerance: 1e-3}
		ranks := PageRank(loc, g, params)
		if s := RankSum(loc, ranks); math.Abs(s-1.0) > 1e-3 {
			t.Errorf("rank sum = %v", s)
		}
		loc.Fence()
	})
}

func TestPageRankEmptyGraph(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		g := pgraph.New[float64, int8](loc, 0, pgraph.WithStrategy(pgraph.DynamicEncoded))
		ranks := PageRank(loc, g, DefaultPageRank())
		if len(ranks) != 0 {
			t.Errorf("ranks of empty graph = %v", ranks)
		}
		loc.Fence()
	})
}
