package graphalgo

import (
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// ccEngine holds per-location connected-component labels.
type ccEngine struct {
	mu      sync.Mutex
	label   map[int64]int64
	changed bool
}

func (e *ccEngine) propose(vd, label int64) {
	e.mu.Lock()
	if cur, ok := e.label[vd]; ok && label < cur {
		e.label[vd] = label
		e.changed = true
	}
	e.mu.Unlock()
}

// ConnectedComponents labels every vertex with the smallest vertex
// descriptor in its (weakly) connected component using iterative label
// propagation, and returns each location's labels for its local vertices.
// For directed graphs the propagation follows out-edges only, so it computes
// reachability-based components; build the graph undirected to get the
// standard weakly connected components.  Collective.
func ConnectedComponents[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP]) map[int64]int64 {
	eng := &ccEngine{label: make(map[int64]int64)}
	h := loc.RegisterObject(eng)
	loc.Barrier()

	// Initialise every local vertex's label with its own descriptor.
	for _, vd := range g.LocalVertices() {
		eng.label[vd] = vd
	}
	loc.Fence()

	for {
		eng.mu.Lock()
		eng.changed = false
		snapshot := make(map[int64]int64, len(eng.label))
		for k, v := range eng.label {
			snapshot[k] = v
		}
		eng.mu.Unlock()

		// Push every local vertex's label to its neighbours.
		for vd, lbl := range snapshot {
			lbl := lbl
			g.Visit(vd, func(og *pgraph.Graph[VP, EP], v *pgraph.Vertex[VP, EP]) {
				for _, e := range v.Edges {
					tgt := e.Target
					og.Visit(tgt, func(tg *pgraph.Graph[VP, EP], tv *pgraph.Vertex[VP, EP]) {
						tg.Location().Object(h).(*ccEngine).propose(tv.Descriptor, lbl)
					})
				}
			})
		}
		loc.Fence()

		eng.mu.Lock()
		changed := int64(0)
		if eng.changed {
			changed = 1
		}
		eng.mu.Unlock()
		if runtime.AllReduceSum(loc, changed) == 0 {
			break
		}
	}

	eng.mu.Lock()
	out := make(map[int64]int64, len(eng.label))
	for k, v := range eng.label {
		out[k] = v
	}
	eng.mu.Unlock()
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
	return out
}

// NumComponents counts the distinct component labels across the machine.
// It is a collective helper over the result of ConnectedComponents.
func NumComponents(loc *runtime.Location, labels map[int64]int64) int64 {
	// A component is counted by the location owning the vertex whose
	// descriptor equals the label (each component has exactly one such
	// representative vertex).
	var local int64
	for vd, lbl := range labels {
		if vd == lbl {
			local++
		}
	}
	return runtime.AllReduceSum(loc, local)
}
