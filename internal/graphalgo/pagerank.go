package graphalgo

import (
	"math"
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// PageRankParams configures the iterative page-rank computation of Fig. 56.
type PageRankParams struct {
	Damping    float64
	Iterations int
	// Tolerance, when positive, stops early once the global L1 change of
	// the rank vector drops below it.
	Tolerance float64
}

// DefaultPageRank returns the parameters used by the benches: damping 0.85,
// 20 iterations, no early exit.
func DefaultPageRank() PageRankParams {
	return PageRankParams{Damping: 0.85, Iterations: 20}
}

// prEngine holds per-location rank state.
type prEngine struct {
	mu    sync.Mutex
	rank  map[int64]float64
	accum map[int64]float64
}

func (e *prEngine) contribute(vd int64, val float64) {
	e.mu.Lock()
	e.accum[vd] += val
	e.mu.Unlock()
}

// PageRank computes page rank over the graph and returns each location's
// ranks for its locally stored vertices.  The returned ranks sum
// (approximately) to 1 across the machine.  Collective.
func PageRank[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP], p PageRankParams) map[int64]float64 {
	n := g.NumVertices()
	if n == 0 {
		return map[int64]float64{}
	}
	eng := &prEngine{rank: make(map[int64]float64), accum: make(map[int64]float64)}
	h := loc.RegisterObject(eng)
	loc.Barrier()

	locals := g.LocalVertices()
	for _, vd := range locals {
		eng.rank[vd] = 1.0 / float64(n)
	}
	loc.Fence()

	for iter := 0; iter < p.Iterations; iter++ {
		// Scatter contributions along out-edges.
		g.RangeLocalVertices(func(v *pgraph.Vertex[VP, EP]) bool {
			eng.mu.Lock()
			r := eng.rank[v.Descriptor]
			eng.mu.Unlock()
			if len(v.Edges) == 0 {
				return true
			}
			share := r / float64(len(v.Edges))
			for _, e := range v.Edges {
				tgt := e.Target
				g.Visit(tgt, func(tg *pgraph.Graph[VP, EP], tv *pgraph.Vertex[VP, EP]) {
					tg.Location().Object(h).(*prEngine).contribute(tv.Descriptor, share)
				})
			}
			return true
		})
		loc.Fence()

		// Gather: new rank = (1-d)/n + d * accumulated contributions.
		var delta float64
		eng.mu.Lock()
		for _, vd := range locals {
			newRank := (1-p.Damping)/float64(n) + p.Damping*eng.accum[vd]
			delta += math.Abs(newRank - eng.rank[vd])
			eng.rank[vd] = newRank
			eng.accum[vd] = 0
		}
		eng.mu.Unlock()
		totalDelta := runtime.AllReduceFloat(loc, delta)
		loc.Fence()
		if p.Tolerance > 0 && totalDelta < p.Tolerance {
			break
		}
	}

	eng.mu.Lock()
	out := make(map[int64]float64, len(eng.rank))
	for k, v := range eng.rank {
		out[k] = v
	}
	eng.mu.Unlock()
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
	return out
}

// RankSum returns the global sum of ranks (should be close to 1 when the
// graph has no dangling vertices).  Collective.
func RankSum(loc *runtime.Location, ranks map[int64]float64) float64 {
	var local float64
	for _, r := range ranks {
		local += r
	}
	return runtime.AllReduceFloat(loc, local)
}
