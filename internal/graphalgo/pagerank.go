package graphalgo

import (
	"math"
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// PageRankParams configures the iterative page-rank computation of Fig. 56.
type PageRankParams struct {
	Damping    float64
	Iterations int
	// Tolerance, when positive, stops early once the global L1 change of
	// the rank vector drops below it.
	Tolerance float64
}

// DefaultPageRank returns the parameters used by the benches: damping 0.85,
// 20 iterations, no early exit.
func DefaultPageRank() PageRankParams {
	return PageRankParams{Damping: 0.85, Iterations: 20}
}

// prEngine holds per-location rank state.
type prEngine struct {
	mu    sync.Mutex
	rank  map[int64]float64
	accum map[int64]float64
}

func (e *prEngine) contribute(vd int64, val float64) {
	e.mu.Lock()
	e.accum[vd] += val
	e.mu.Unlock()
}

// contributeBulk merges one source location's combined contributions — one
// (vertex, value) pair per distinct target — under a single lock
// acquisition.
func (e *prEngine) contributeBulk(vds []int64, vals []float64) {
	e.mu.Lock()
	for k, vd := range vds {
		e.accum[vd] += vals[k]
	}
	e.mu.Unlock()
}

// scatterPlan is the coarsened neighbour-access plan of one location: the
// distinct edge targets of its local vertices, grouped by owning location.
// It is computed once before the iterations (the targets of a static graph
// never move), so each iteration only fills in the current values and ships
// ONE bulk request per destination instead of one Visit RMI per edge.
type scatterPlan struct {
	localTargets []int64         // distinct targets owned by this location
	destTargets  map[int][]int64 // distinct remote targets per owner
}

// buildScatterPlan groups the distinct out-edge targets of this location's
// vertices by owner.  The per-destination slices are immutable afterwards:
// iterations ship them directly alongside the current values.
func buildScatterPlan[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP]) *scatterPlan {
	plan := &scatterPlan{destTargets: make(map[int][]int64)}
	seen := make(map[int64]bool)
	g.RangeLocalVertices(func(v *pgraph.Vertex[VP, EP]) bool {
		for _, e := range v.Edges {
			if seen[e.Target] {
				continue
			}
			seen[e.Target] = true
			dest := g.Lookup(e.Target)
			if dest < 0 || dest >= loc.NumLocations() {
				continue // dangling descriptor: Visit would drop it too
			}
			if dest == loc.ID() {
				plan.localTargets = append(plan.localTargets, e.Target)
				continue
			}
			plan.destTargets[dest] = append(plan.destTargets[dest], e.Target)
		}
		return true
	})
	return plan
}

// PageRank computes page rank over the graph and returns each location's
// ranks for its locally stored vertices.  The returned ranks sum
// (approximately) to 1 across the machine.  Collective.
//
// On statically partitioned graphs the scatter phase runs over a coarsened
// neighbour plan: contributions are combined locally per target and each
// iteration ships one bulk message per destination location (the targets'
// owners are resolved once, before the iterations).  Dynamic graphs — whose
// descriptors may resolve through directory forwarding — fall back to
// per-edge Visit scatter.
func PageRank[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP], p PageRankParams) map[int64]float64 {
	n := g.NumVertices()
	if n == 0 {
		return map[int64]float64{}
	}
	eng := &prEngine{rank: make(map[int64]float64), accum: make(map[int64]float64)}
	h := loc.RegisterObject(eng)
	loc.Barrier()

	locals := g.LocalVertices()
	for _, vd := range locals {
		eng.rank[vd] = 1.0 / float64(n)
	}
	var plan *scatterPlan
	if g.Strategy() == pgraph.Static {
		plan = buildScatterPlan(loc, g)
	}
	loc.Fence()

	for iter := 0; iter < p.Iterations; iter++ {
		if plan != nil {
			scatterCoarsened(loc, g, eng, h, plan)
		} else {
			scatterVisit(g, eng, h)
		}
		loc.Fence()

		// Gather: new rank = (1-d)/n + d * accumulated contributions.
		var delta float64
		eng.mu.Lock()
		for _, vd := range locals {
			newRank := (1-p.Damping)/float64(n) + p.Damping*eng.accum[vd]
			delta += math.Abs(newRank - eng.rank[vd])
			eng.rank[vd] = newRank
			eng.accum[vd] = 0
		}
		eng.mu.Unlock()
		totalDelta := runtime.AllReduceFloat(loc, delta)
		loc.Fence()
		if p.Tolerance > 0 && totalDelta < p.Tolerance {
			break
		}
	}

	eng.mu.Lock()
	out := make(map[int64]float64, len(eng.rank))
	for k, v := range eng.rank {
		out[k] = v
	}
	eng.mu.Unlock()
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
	return out
}

// scatterCoarsened pushes this location's contributions along out-edges
// through the precomputed plan: combine locally per target, apply local
// targets in one bracket, ship one bulk request per remote owner.
func scatterCoarsened[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP], eng *prEngine, h runtime.Handle, plan *scatterPlan) {
	sums := make(map[int64]float64)
	g.RangeLocalVertices(func(v *pgraph.Vertex[VP, EP]) bool {
		eng.mu.Lock()
		r := eng.rank[v.Descriptor]
		eng.mu.Unlock()
		if len(v.Edges) == 0 {
			return true
		}
		share := r / float64(len(v.Edges))
		for _, e := range v.Edges {
			sums[e.Target] += share
		}
		return true
	})
	// Local targets: one lock acquisition for the whole batch.
	if len(plan.localTargets) > 0 {
		eng.mu.Lock()
		for _, vd := range plan.localTargets {
			if val, ok := sums[vd]; ok {
				eng.accum[vd] += val
			}
		}
		eng.mu.Unlock()
	}
	// Remote targets: one bulk request per destination, carrying that
	// destination's distinct (target, value) pairs.  The target slice is
	// immutable after plan construction, so it ships without copying.
	for dest, targets := range plan.destTargets {
		targets := targets
		vals := make([]float64, len(targets))
		for k, vd := range targets {
			vals[k] = sums[vd]
		}
		loc.AsyncRMIBulk(dest, h, len(targets), 16*len(targets), func(obj any, _ *runtime.Location) {
			obj.(*prEngine).contributeBulk(targets, vals)
		})
	}
}

// scatterVisit is the per-edge fallback for dynamic graphs: contributions
// travel as one Visit per edge, resolved (and possibly forwarded) by the
// graph's address translation.
func scatterVisit[VP any, EP any](g *pgraph.Graph[VP, EP], eng *prEngine, h runtime.Handle) {
	g.RangeLocalVertices(func(v *pgraph.Vertex[VP, EP]) bool {
		eng.mu.Lock()
		r := eng.rank[v.Descriptor]
		eng.mu.Unlock()
		if len(v.Edges) == 0 {
			return true
		}
		share := r / float64(len(v.Edges))
		for _, e := range v.Edges {
			g.Visit(e.Target, func(tg *pgraph.Graph[VP, EP], tv *pgraph.Vertex[VP, EP]) {
				tg.Location().Object(h).(*prEngine).contribute(tv.Descriptor, share)
			})
		}
		return true
	})
}

// RankSum returns the global sum of ranks (should be close to 1 when the
// graph has no dangling vertices).  Collective.
func RankSum(loc *runtime.Location, ranks map[int64]float64) float64 {
	var local float64
	for _, r := range ranks {
		local += r
	}
	return runtime.AllReduceFloat(loc, local)
}
