// Package graphalgo implements the pGraph algorithms evaluated in the paper
// (Chapter XI.F.3-4): level-synchronous breadth-first search, connected
// components by label propagation, find-sources for directed graphs and
// page rank, all written in the computation-migration style the pGraph's
// Visit primitive enables.
//
// Each algorithm creates one "engine" p_object per location that holds the
// algorithm's distributed state (distances, labels, accumulators) for the
// vertices stored on that location; frontier expansion and value exchange
// happen through asynchronous RMIs between engines, synchronised per
// superstep with fences, exactly as the paper's algorithms alternate
// computation and rmi_fence.
package graphalgo

import (
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// BFSResult holds, per location, the BFS levels of the vertices stored on
// that location.
type BFSResult struct {
	mu     sync.Mutex
	levels map[int64]int64
	next   []int64
}

// LocalLevels returns the level of every locally stored vertex reached by
// the search.
func (r *BFSResult) LocalLevels() map[int64]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int64]int64, len(r.levels))
	for k, v := range r.levels {
		out[k] = v
	}
	return out
}

// Level returns the level of a locally stored vertex, or -1 if it was not
// reached or is not local.
func (r *BFSResult) Level(vd int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.levels[vd]; ok {
		return l
	}
	return -1
}

// relax records a newly discovered vertex at the given level.
func (r *BFSResult) relax(vd, level int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, seen := r.levels[vd]; seen {
		return false
	}
	r.levels[vd] = level
	r.next = append(r.next, vd)
	return true
}

func (r *BFSResult) takeFrontier() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.next
	r.next = nil
	return f
}

// BFS runs a level-synchronous breadth-first search from root and returns
// each location's levels for its local vertices.  Collective.
func BFS[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP], root int64) *BFSResult {
	res := &BFSResult{levels: make(map[int64]int64)}
	h := loc.RegisterObject(res)
	loc.Barrier()

	// Seed the frontier at the root's owner.
	if g.IsLocal(root) {
		res.relax(root, 0)
	}
	loc.Fence()

	for level := int64(0); ; level++ {
		frontier := res.takeFrontier()
		// Every location must snapshot its frontier before any location
		// starts expanding, otherwise a fast neighbour's relax for the
		// *next* level could slip into this superstep's frontier and be
		// expanded one level early.
		loc.Barrier()
		// Expand the local frontier: adjacency of frontier vertices is
		// local by construction (vertices are stored with their edges).
		for _, vd := range frontier {
			g.Visit(vd, func(og *pgraph.Graph[VP, EP], v *pgraph.Vertex[VP, EP]) {
				for _, e := range v.Edges {
					tgt := e.Target
					og.Visit(tgt, func(tg *pgraph.Graph[VP, EP], tv *pgraph.Vertex[VP, EP]) {
						engine := tg.Location().Object(h).(*BFSResult)
						engine.relax(tv.Descriptor, level+1)
					})
				}
			})
		}
		loc.Fence()
		// Count the vertices discovered this superstep across the machine.
		res.mu.Lock()
		discovered := int64(len(res.next))
		res.mu.Unlock()
		if runtime.AllReduceSum(loc, discovered) == 0 {
			break
		}
	}
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
	return res
}

// ReachedCount returns the total number of vertices reached by a BFS.
// Collective.
func ReachedCount(loc *runtime.Location, res *BFSResult) int64 {
	res.mu.Lock()
	n := int64(len(res.levels))
	res.mu.Unlock()
	return runtime.AllReduceSum(loc, n)
}

// MaxLevel returns the largest BFS level across the machine (the eccentric
// distance from the root within its component).  Collective.
func MaxLevel(loc *runtime.Location, res *BFSResult) int64 {
	res.mu.Lock()
	local := int64(-1)
	for _, l := range res.levels {
		if l > local {
			local = l
		}
	}
	res.mu.Unlock()
	return runtime.AllReduceMax(loc, local)
}
