package graphalgo

import (
	"sync"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// inDegreeEngine accumulates in-degrees for the vertices stored on one
// location.
type inDegreeEngine struct {
	mu  sync.Mutex
	deg map[int64]int64
}

func (e *inDegreeEngine) add(vd int64) {
	e.mu.Lock()
	e.deg[vd]++
	e.mu.Unlock()
}

// InDegrees computes the in-degree of every vertex and returns each
// location's map for its locally stored vertices.  Collective.
func InDegrees[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP]) map[int64]int64 {
	eng := &inDegreeEngine{deg: make(map[int64]int64)}
	h := loc.RegisterObject(eng)
	loc.Barrier()

	for _, vd := range g.LocalVertices() {
		eng.mu.Lock()
		if _, ok := eng.deg[vd]; !ok {
			eng.deg[vd] = 0
		}
		eng.mu.Unlock()
	}
	// Each location scans its local adjacency and sends one increment per
	// edge to the target's owner (computation migration: the increment
	// executes where the counter lives).
	g.RangeLocalVertices(func(v *pgraph.Vertex[VP, EP]) bool {
		for _, e := range v.Edges {
			tgt := e.Target
			g.Visit(tgt, func(tg *pgraph.Graph[VP, EP], tv *pgraph.Vertex[VP, EP]) {
				tg.Location().Object(h).(*inDegreeEngine).add(tv.Descriptor)
			})
		}
		return true
	})
	loc.Fence()

	eng.mu.Lock()
	out := make(map[int64]int64, len(eng.deg))
	for k, v := range eng.deg {
		out[k] = v
	}
	eng.mu.Unlock()
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
	return out
}

// FindSources returns the descriptors of this location's vertices that have
// no incoming edges (the find-sources experiment of Fig. 51), plus the
// global source count on every location.  Collective.
func FindSources[VP any, EP any](loc *runtime.Location, g *pgraph.Graph[VP, EP]) (local []int64, total int64) {
	deg := InDegrees(loc, g)
	for vd, d := range deg {
		if d == 0 {
			local = append(local, vd)
		}
	}
	total = runtime.AllReduceSum(loc, int64(len(local)))
	return local, total
}
