package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// This file implements the bulk flavour of the distribution manager's method
// skeleton: the semantic-batching counterpart of Invoke/InvokeRet.  Where
// the per-element skeleton resolves, locks and (for remote GIDs) ships one
// request per element — leaving message amortisation to the RTS aggregation
// buffer — the bulk skeleton takes a whole slice of GIDs, resolves them all
// under ONE metadata bracket, executes every local group under ONE data
// bracket per base container, and ships ONE sized RMI per destination
// carrying that destination's entire group.  The destination performs a
// single handle lookup for the whole batch and repeats the same grouping for
// any element that needs forwarding.
//
//	InvokeBulk      — asynchronous, no results (SetBulk, ApplyBulk, ...)
//	InvokeBulkSync  — blocks until every element operation has executed;
//	                  actions typically gather results into a caller-owned
//	                  slice (GetBulk, FindBulk, ...)

// bulkTracker counts the outstanding element operations of one synchronous
// bulk invocation.  Remote handlers (and forwarded stragglers) decrement it
// as they execute their groups; the issuing goroutine blocks on done.
type bulkTracker struct {
	remaining atomic.Int64
	done      chan struct{}
}

// complete retires n element operations, closing done on the last one.
func (t *bulkTracker) complete(n int) {
	if t.remaining.Add(-int64(n)) == 0 {
		close(t.done)
	}
}

// InvokeBulk runs action once for every element of gids on the base
// container owning that element, asynchronously: the call returns as soon as
// all per-destination group requests are issued.  action receives the index
// k into gids (not the GID itself), so callers can carry per-element
// arguments in parallel slices captured by the closure.  bytesPerOp is the
// simulated marshalled size of one element operation; a destination's group
// request is accounted as len(group)*bytesPerOp bytes on one message.
//
// Ordering: a bulk request flushes the per-element aggregation buffer of its
// destination before delivery, so bulk and per-element methods on the same
// (source, destination) pair execute in invocation order.  Elements within
// one call execute in slice order per destination; elements owned by
// different destinations race, exactly like independent per-element invokes.
func (c *Container[G, B]) InvokeBulk(gids []G, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int)) {
	if len(gids) == 0 {
		return
	}
	if c.Sequential() {
		// Under the sequential model asynchronous methods execute
		// synchronously (Claim 3 of Chapter VII).
		c.InvokeBulkSync(gids, mode, bytesPerOp, action)
		return
	}
	c.bulkHop(gids, nil, mode, bytesPerOp, action, nil, 0)
}

// InvokeBulkSync runs action once for every element of gids and blocks until
// all of them — local, remote and forwarded — have executed.  It is the bulk
// counterpart of InvokeRet: gathering methods capture a results slice and
// have action write out[k], which is safe because every k is written exactly
// once and the completion signal orders those writes before the return.
func (c *Container[G, B]) InvokeBulkSync(gids []G, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int)) {
	if len(gids) == 0 {
		return
	}
	tr := &bulkTracker{done: make(chan struct{})}
	tr.remaining.Store(int64(len(gids)))
	c.bulkHop(gids, nil, mode, bytesPerOp, action, tr, 0)
	<-tr.done
}

// bulkHop performs one resolution step of a bulk invocation for the elements
// of gids selected by idxs (nil means all).  Local groups execute in place;
// remote groups are shipped as one bulk RMI per destination, where the same
// grouping repeats (method forwarding happens per group, not per element).
func (c *Container[G, B]) bulkHop(gids []G, idxs []int, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int), tr *bulkTracker, hops int) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: bulk invocation forwarded more than %d times", maxForwardHops))
	}
	self := c.loc.ID()
	n := len(gids)
	if idxs != nil {
		n = len(idxs)
	}
	at := func(i int) int {
		if idxs == nil {
			return i
		}
		return idxs[i]
	}

	// Resolve every selected element under a single metadata bracket (one
	// lock acquisition for the whole batch instead of one per element).
	// The bracket is released by defer so that a resolution panic — the
	// unresolvable-GID guard below or a fail-fast resolver — does not leak
	// the lock to a recovering caller.
	type target struct {
		dest int
		bcid partition.BCID // valid only when local
	}
	targets := make([]target, n)
	func() {
		c.ths.MetadataAccessPre(Read)
		defer c.ths.MetadataAccessPost(Read)
		for i := 0; i < n; i++ {
			info := c.resolver.Find(gids[at(i)])
			if info.Valid {
				targets[i] = target{dest: c.resolver.OwnerOf(info.BCID), bcid: info.BCID}
			} else {
				if info.Hint == self {
					panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", gids[at(i)]))
				}
				targets[i] = target{dest: info.Hint, bcid: partition.BCID(-1)}
			}
		}
	}()

	// Group by owner: local elements by base container, remote (and
	// hint-forwarded) elements by destination location.  Slice order is
	// preserved within every group.
	local := make(map[partition.BCID][]int)
	remote := make(map[int][]int)
	for i := 0; i < n; i++ {
		t := targets[i]
		if t.dest == self && t.bcid >= 0 {
			local[t.bcid] = append(local[t.bcid], at(i))
		} else {
			remote[t.dest] = append(remote[t.dest], at(i))
		}
	}

	// Execute local groups: one handle-free data bracket per base
	// container for the whole group.
	for bcid, group := range local {
		bc, ok := c.locMgr.Get(bcid)
		if !ok {
			// Metadata says local but the storage moved (transient
			// redistribution window): retry the group as a forward.
			group := group
			c.loc.AsyncRMIBulk(self, c.handle, len(group), bytesPerOp*len(group), func(obj any, _ *runtime.Location) {
				obj.(*Container[G, B]).bulkHop(gids, group, mode, bytesPerOp, action, tr, hops+1)
			})
			continue
		}
		c.ths.DataAccessPre(bcid, mode)
		for _, k := range group {
			action(c.loc, bc, k)
		}
		c.ths.DataAccessPost(bcid, mode)
		if tr != nil {
			if hops > 0 {
				// This group was shipped here: its gathered results
				// travel back as one response message.
				c.loc.AccountReply(bytesPerOp * len(group))
			}
			tr.complete(len(group))
		}
	}

	// Ship remote groups: one sized request per destination.
	for dest, group := range remote {
		group := group
		c.loc.AsyncRMIBulk(dest, c.handle, len(group), bytesPerOp*len(group), func(obj any, _ *runtime.Location) {
			obj.(*Container[G, B]).bulkHop(gids, group, mode, bytesPerOp, action, tr, hops+1)
		})
	}
}
