package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// This file implements the bulk flavour of the distribution manager's method
// skeleton: the semantic-batching counterpart of Invoke/InvokeRet.  Where
// the per-element skeleton resolves, locks and (for remote GIDs) ships one
// request per element — leaving message amortisation to the RTS aggregation
// buffer — the bulk skeleton takes a whole slice of GIDs, resolves them all
// under ONE metadata bracket, executes every local group under ONE data
// bracket per base container, and ships ONE sized RMI per destination
// carrying that destination's entire group.  The destination performs a
// single handle lookup for the whole batch and repeats the same grouping for
// any element that needs forwarding.
//
//	InvokeBulk      — asynchronous, no results (SetBulk, ApplyBulk, ...)
//	InvokeBulkSync  — blocks until every element operation has executed;
//	                  actions typically gather results into a caller-owned
//	                  slice (GetBulk, FindBulk, ...)
//
// The skeleton is on the container hot path, so its working state is pooled:
// resolution targets and group lists live in a recycled scratch, group index
// slices come from a shared pool (ownership travels with the request and the
// handler recycles them), and a shipped group rides an argument-carrying RMI
// with a static handler — steady-state bulk traffic allocates nothing per
// call beyond what the caller's own action captures.

// bulkTracker counts the outstanding element operations of one synchronous
// bulk invocation.  Remote handlers (and forwarded stragglers) decrement it
// as they execute their groups; the issuing goroutine blocks on done.
type bulkTracker struct {
	remaining atomic.Int64
	done      chan struct{}
}

// complete retires n element operations, closing done on the last one.
func (t *bulkTracker) complete(n int) {
	if t.remaining.Add(-int64(n)) == 0 {
		close(t.done)
	}
}

// InvokeBulk runs action once for every element of gids on the base
// container owning that element, asynchronously: the call returns as soon as
// all per-destination group requests are issued.  action receives the index
// k into gids (not the GID itself), so callers can carry per-element
// arguments in parallel slices captured by the closure.  bytesPerOp is the
// simulated marshalled size of one element operation; a destination's group
// request is accounted as len(group)*bytesPerOp bytes on one message.
//
// Ordering: a bulk request flushes the per-element aggregation buffer of its
// destination before delivery, so bulk and per-element methods on the same
// (source, destination) pair execute in invocation order.  Elements within
// one call execute in slice order per destination; elements owned by
// different destinations race, exactly like independent per-element invokes.
func (c *Container[G, B]) InvokeBulk(gids []G, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int)) {
	if len(gids) == 0 {
		return
	}
	if c.Sequential() {
		// Under the sequential model asynchronous methods execute
		// synchronously (Claim 3 of Chapter VII).
		c.InvokeBulkSync(gids, mode, bytesPerOp, action)
		return
	}
	c.bulkHop(gids, nil, mode, bytesPerOp, action, nil, 0)
}

// InvokeBulkSync runs action once for every element of gids and blocks until
// all of them — local, remote and forwarded — have executed.  It is the bulk
// counterpart of InvokeRet: gathering methods capture a results slice and
// have action write out[k], which is safe because every k is written exactly
// once and the completion signal orders those writes before the return.
func (c *Container[G, B]) InvokeBulkSync(gids []G, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int)) {
	if len(gids) == 0 {
		return
	}
	tr := &bulkTracker{done: make(chan struct{})}
	tr.remaining.Store(int64(len(gids)))
	c.bulkHop(gids, nil, mode, bytesPerOp, action, tr, 0)
	c.loc.WaitDone(tr.done)
}

// bulkGroup is one destination's (or one local base container's) share of a
// bulk invocation: the positions into gids it owns, in slice order.
type bulkGroup struct {
	dest int
	bcid partition.BCID // >= 0 marks a local group; -1 a shipped one
	idxs []int          // pooled; ownership transfers to whoever executes the group
}

// bulkScratch is the reusable working state of one bulkHop: the per-element
// resolution table and the group list built from it.  Group counts are small
// (a handful of base containers locally, at most P-1 destinations remotely),
// so groups are found by linear search instead of map lookups — no hashing,
// no per-call map allocation.
type bulkScratch struct {
	targets []Placement
	groups  []bulkGroup
}

var bulkScratchPool = sync.Pool{New: func() any { return new(bulkScratch) }}

func getBulkScratch(n int) *bulkScratch {
	s := bulkScratchPool.Get().(*bulkScratch)
	if cap(s.targets) < n {
		s.targets = make([]Placement, n)
	}
	s.targets = s.targets[:n]
	s.groups = s.groups[:0]
	return s
}

func putBulkScratch(s *bulkScratch) {
	for i := range s.groups {
		s.groups[i].idxs = nil // shipped or recycled by the executor
	}
	bulkScratchPool.Put(s)
}

// bulkIdxPool recycles the group index slices.  A slice's ownership follows
// the group: locally executed groups recycle it in bulkHop, shipped groups
// hand it to the destination's bulkForward, which recycles it after the hop.
var bulkIdxPool = sync.Pool{New: func() any { return make([]int, 0, 64) }}

func getBulkIdxs() []int { return bulkIdxPool.Get().([]int)[:0] }

func putBulkIdxs(idxs []int) {
	//lint:ignore SA6002 the slice header is what we pool; its backing array
	// is reused, so the boxed header allocation is amortised.
	bulkIdxPool.Put(idxs[:0])
}

// bulkArgs carries one shipped group: everything bulkForward needs to resume
// the hop at the destination.  Instances are recycled through an untyped
// pool shared by every container instantiation; a descriptor that comes back
// under the wrong type parameters is simply dropped (see getBulkArgs).
type bulkArgs[G any, B BContainer] struct {
	c          *Container[G, B]
	gids       []G
	idxs       []int
	mode       AccessMode
	bytesPerOp int
	action     func(loc *runtime.Location, bc B, k int)
	tr         *bulkTracker
	hops       int
}

var bulkArgsPool sync.Pool

func getBulkArgs[G any, B BContainer]() *bulkArgs[G, B] {
	if v := bulkArgsPool.Get(); v != nil {
		if a, ok := v.(*bulkArgs[G, B]); ok {
			return a
		}
		// A descriptor of another container family's instantiation: drop it
		// (the GC reclaims it) rather than juggle per-type pools.
	}
	return new(bulkArgs[G, B])
}

func putBulkArgs[G any, B BContainer](a *bulkArgs[G, B]) {
	*a = bulkArgs[G, B]{}
	bulkArgsPool.Put(a)
}

// bulkForward is the static handler every shipped group targets: it resumes
// the hop on the destination's representative, then recycles the group's
// index slice and the argument descriptor.  Being non-capturing, shipping a
// group allocates no closure — the pooled descriptor is the whole payload.
func bulkForward[G any, B BContainer](obj any, _ *runtime.Location, arg any) {
	a := arg.(*bulkArgs[G, B])
	obj.(*Container[G, B]).bulkHop(a.gids, a.idxs, a.mode, a.bytesPerOp, a.action, a.tr, a.hops)
	putBulkIdxs(a.idxs)
	putBulkArgs(a)
}

// shipGroup sends one group to dest as a single sized bulk request.  The
// group's index slice ownership transfers to the destination.
func (c *Container[G, B]) shipGroup(dest int, gids []G, group []int, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int), tr *bulkTracker, hops int) {
	a := getBulkArgs[G, B]()
	*a = bulkArgs[G, B]{c: c, gids: gids, idxs: group, mode: mode, bytesPerOp: bytesPerOp, action: action, tr: tr, hops: hops}
	c.loc.AsyncRMIBulkArg(dest, c.handle, len(group), bytesPerOp*len(group), bulkForward[G, B], a)
}

// bulkHop performs one resolution step of a bulk invocation for the elements
// of gids selected by idxs (nil means all).  Local groups execute in place;
// remote groups are shipped as one bulk RMI per destination, where the same
// grouping repeats (method forwarding happens per group, not per element).
func (c *Container[G, B]) bulkHop(gids []G, idxs []int, mode AccessMode, bytesPerOp int, action func(loc *runtime.Location, bc B, k int), tr *bulkTracker, hops int) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: bulk invocation forwarded more than %d times", maxForwardHops))
	}
	self := c.loc.ID()
	n := len(gids)
	if idxs != nil {
		n = len(idxs)
	}
	s := getBulkScratch(n)
	defer putBulkScratch(s)

	// Resolve every selected element under a single metadata bracket (one
	// lock acquisition for the whole batch instead of one per element).
	// Resolvers that can place a batch in one call take the bulk fast path;
	// the per-element loop is the generic fallback.  The bracket is released
	// by defer so that a fail-fast resolver panic does not leak the lock to
	// a recovering caller.
	func() {
		c.ths.MetadataAccessPre(Read)
		defer c.ths.MetadataAccessPost(Read)
		if br, ok := c.resolver.(BulkResolver[G]); ok {
			br.ResolveBulk(gids, idxs, s.targets[:n])
			return
		}
		for i := 0; i < n; i++ {
			k := i
			if idxs != nil {
				k = idxs[i]
			}
			info := c.resolver.Find(gids[k])
			if info.Valid {
				s.targets[i] = Placement{Dest: c.resolver.OwnerOf(info.BCID), BCID: info.BCID}
			} else {
				s.targets[i] = Placement{Dest: info.Hint, BCID: partition.InvalidBCID}
			}
		}
	}()

	// Group by owner: local elements by base container, remote (and
	// hint-forwarded) elements by destination location only — a remote
	// destination's elements travel as ONE request however many base
	// containers they land in there.  Slice order is preserved within every
	// group.  The group list is searched linearly with a last-group fast
	// path: resolution runs are long (consecutive GIDs usually share an
	// owner), so most elements append to the group just touched.
	last := -1
	for i := 0; i < n; i++ {
		k := i
		if idxs != nil {
			k = idxs[i]
		}
		t := s.targets[i]
		if t.BCID < 0 && t.Dest == self {
			panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", gids[k]))
		}
		key := t.BCID
		if t.Dest != self {
			key = partition.InvalidBCID
		}
		if last < 0 || s.groups[last].dest != t.Dest || s.groups[last].bcid != key {
			last = -1
			for j := range s.groups {
				if s.groups[j].dest == t.Dest && s.groups[j].bcid == key {
					last = j
					break
				}
			}
			if last < 0 {
				s.groups = append(s.groups, bulkGroup{dest: t.Dest, bcid: key, idxs: getBulkIdxs()})
				last = len(s.groups) - 1
			}
		}
		s.groups[last].idxs = append(s.groups[last].idxs, k)
	}

	// Execute local groups in place (one data bracket per base container for
	// the whole group); ship every other group as one sized request.  A
	// shipped group's index slice belongs to the destination afterwards.
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.dest == self && g.bcid >= 0 {
			bc, ok := c.locMgr.Get(g.bcid)
			if !ok {
				// Metadata says local but the storage moved (transient
				// redistribution window): retry the group as a forward.
				c.shipGroup(self, gids, g.idxs, mode, bytesPerOp, action, tr, hops+1)
				g.idxs = nil
				continue
			}
			c.ths.DataAccessPre(g.bcid, mode)
			for _, k := range g.idxs {
				action(c.loc, bc, k)
			}
			c.ths.DataAccessPost(g.bcid, mode)
			if tr != nil {
				if hops > 0 {
					// This group was shipped here: its gathered results
					// travel back as one response message.
					c.loc.AccountReply(bytesPerOp * len(g.idxs))
				}
				tr.complete(len(g.idxs))
			}
			putBulkIdxs(g.idxs)
			g.idxs = nil
			continue
		}
		c.shipGroup(g.dest, gids, g.idxs, mode, bytesPerOp, action, tr, hops+1)
		g.idxs = nil
	}
}
