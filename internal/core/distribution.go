package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// This file implements the data-distribution manager's generic method
// skeleton (Table X, Figures 8 and 17 of the paper).  Every element-wise
// container method is expressed as one of three invoke flavours:
//
//	Invoke       — asynchronous, no result (set_element, insert_async, ...)
//	InvokeRet    — synchronous, blocks for the result (get_element, ...)
//	InvokeSplit  — split-phase, returns a Future   (split_phase_get_element)
//
// Each flavour resolves the GID through the container's resolver.  If the
// owning base container is local the action runs in place under the
// thread-safety manager; otherwise the invocation is shipped to the owning
// location (or, when the partition only knows a hint, forwarded to the
// location that may know more — the paper's method forwarding), where the
// same resolution repeats.

// maxForwardHops bounds forwarding chains so that a mis-configured partition
// produces a clear failure instead of an infinite ping-pong of requests.
const maxForwardHops = 64

// Invoke runs action on the base container owning gid, asynchronously: the
// call returns as soon as the request is issued.  mode describes whether the
// action reads or writes the base container, so the thread-safety manager
// can pick a shared or exclusive lock.
func (c *Container[G, B]) Invoke(gid G, mode AccessMode, action func(loc *runtime.Location, bc B)) {
	c.InvokeSized(gid, mode, 0, action)
}

// InvokeSized is Invoke with an explicit simulated payload size for the
// action's arguments, so element methods that carry a value (set_element,
// insert_async, ...) feed the machine's byte statistics.  Remote requests
// additionally account the fixed per-request descriptor overhead inside the
// RTS; purely local invocations move no simulated bytes.
func (c *Container[G, B]) InvokeSized(gid G, mode AccessMode, bytes int, action func(loc *runtime.Location, bc B)) {
	if c.Sequential() {
		// Under the sequential model asynchronous methods execute
		// synchronously (Claim 3 of Chapter VII).
		c.InvokeRet(gid, mode, func(loc *runtime.Location, bc B) any {
			action(loc, bc)
			return nil
		})
		return
	}
	c.invokeHop(gid, mode, bytes, action, 0, false)
}

// invokeHop performs one resolution step of an asynchronous invocation.
func (c *Container[G, B]) invokeHop(gid G, mode AccessMode, bytes int, action func(loc *runtime.Location, bc B), hops int, urgent bool) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: invocation for GID %v forwarded more than %d times", gid, maxForwardHops))
	}
	dest, info := c.resolve(gid)
	if info.Valid && dest == c.loc.ID() {
		if bc, ok := c.locMgr.Get(info.BCID); ok {
			c.ths.DataAccessPre(info.BCID, mode)
			action(c.loc, bc)
			c.ths.DataAccessPost(info.BCID, mode)
			return
		}
	}
	if dest == c.loc.ID() && !info.Valid {
		panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", gid))
	}
	forward := func(obj any, _ *runtime.Location) {
		obj.(*Container[G, B]).invokeHop(gid, mode, bytes, action, hops+1, urgent)
	}
	if urgent {
		c.loc.AsyncRMIUrgent(dest, c.handle, forward)
	} else {
		c.loc.AsyncRMISized(dest, c.handle, bytes, forward)
	}
}

// InvokeRet runs action on the base container owning gid and blocks until
// its result is available (a synchronous method).
func (c *Container[G, B]) InvokeRet(gid G, mode AccessMode, action func(loc *runtime.Location, bc B) any) any {
	return c.InvokeSplit(gid, mode, action).Get()
}

// InvokeSplit starts a split-phase invocation of action on the base
// container owning gid and returns a future for its result.  The caller may
// overlap other work and call Get later; forwarding hops are delivered
// urgently so a blocked Get always makes progress.
func (c *Container[G, B]) InvokeSplit(gid G, mode AccessMode, action func(loc *runtime.Location, bc B) any) *runtime.Future {
	fut := runtime.NewFuture()
	c.invokeReplyHop(gid, mode, action, fut, 0)
	return fut
}

// invokeReplyHop performs one resolution step of a value-returning
// invocation, completing fut when the action finally runs.
func (c *Container[G, B]) invokeReplyHop(gid G, mode AccessMode, action func(loc *runtime.Location, bc B) any, fut *runtime.Future, hops int) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: invocation for GID %v forwarded more than %d times", gid, maxForwardHops))
	}
	dest, info := c.resolve(gid)
	if info.Valid && dest == c.loc.ID() {
		if bc, ok := c.locMgr.Get(info.BCID); ok {
			c.ths.DataAccessPre(info.BCID, mode)
			v := action(c.loc, bc)
			c.ths.DataAccessPost(info.BCID, mode)
			fut.Complete(v)
			if hops > 0 {
				// The result travelled back to the issuing location: one
				// response message carrying the marshalled value.
				c.loc.AccountReply(runtime.PayloadBytes(v))
			}
			return
		}
	}
	if dest == c.loc.ID() && !info.Valid {
		panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", gid))
	}
	c.loc.AsyncRMIUrgent(dest, c.handle, func(obj any, _ *runtime.Location) {
		obj.(*Container[G, B]).invokeReplyHop(gid, mode, action, fut, hops+1)
	})
}

// resolve queries the partition (under a metadata read bracket) and the
// mapper for the location responsible for gid.  The bracket is released by
// defer so that a resolver that fails fast (pList's invalid-GID panic) does
// not leak the metadata lock to a recovering caller.
func (c *Container[G, B]) resolve(gid G) (dest int, info partition.Info) {
	c.ths.MetadataAccessPre(Read)
	defer c.ths.MetadataAccessPost(Read)
	info = c.resolver.Find(gid)
	if info.Valid {
		return c.resolver.OwnerOf(info.BCID), info
	}
	return info.Hint, info
}

// InvokeAt runs action on a specific location's representative regardless of
// any GID (used by directory updates, redistribution and container-wide
// maintenance operations).  It is asynchronous.
func (c *Container[G, B]) InvokeAt(dest int, action func(loc *runtime.Location, self *Container[G, B])) {
	c.loc.AsyncRMI(dest, c.handle, func(obj any, loc *runtime.Location) {
		action(loc, obj.(*Container[G, B]))
	})
}

// InvokeAtRet runs action on a specific location's representative and blocks
// for its result.
func (c *Container[G, B]) InvokeAtRet(dest int, action func(loc *runtime.Location, self *Container[G, B]) any) any {
	return c.loc.SyncRMI(dest, c.handle, func(obj any, loc *runtime.Location) any {
		return action(loc, obj.(*Container[G, B]))
	})
}

// InvokeOnBC runs action asynchronously on the location owning the given
// sub-domain, passing it that sub-domain's base container.
func (c *Container[G, B]) InvokeOnBC(b partition.BCID, mode AccessMode, action func(loc *runtime.Location, bc B)) {
	dest := c.resolver.OwnerOf(b)
	if dest == c.loc.ID() {
		if bc, ok := c.locMgr.Get(b); ok {
			c.ths.DataAccessPre(b, mode)
			action(c.loc, bc)
			c.ths.DataAccessPost(b, mode)
			return
		}
		panic(fmt.Sprintf("core: sub-domain %d mapped to this location but has no bContainer", b))
	}
	c.loc.AsyncRMI(dest, c.handle, func(obj any, _ *runtime.Location) {
		obj.(*Container[G, B]).InvokeOnBC(b, mode, action)
	})
}
