package core

import (
	"sync"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// This file implements the shared distributed-directory subsystem: the
// second of the paper's two GID-resolution schemes (Table X).  Where a
// computable partition translates a GID with a closed form, a directory
// records ownership explicitly, sliced over the locations by a home hash:
// location hash(gid) % P holds the authoritative entry for gid.  Resolving a
// non-local GID forwards the request through the home location to the owner
// (the method-forwarding path of Fig. 7).
//
// The subsystem used to live inside pGraph as an ad-hoc map; hoisting it
// here gives every dynamic container the same three services:
//
//   - an ownership registry with asynchronous Publish / PublishBulk /
//     Unpublish / Update maintenance (PublishBulk batches entries per home
//     location, one bulk RMI each);
//   - a Resolve building block for core.Resolver implementations, with an
//     optional per-location resolution cache: once a location has learned a
//     remote GID's owner, repeat accesses skip the directory hop and ship
//     straight to the owner.  Cache entries are invalidated by a per-location
//     epoch — redistribution, element migration and ownership updates bump
//     it — and a cached resolution is marked partition.FoundCached, so a
//     stale entry costs at most one extra forward (the destination's resolver
//     re-validates local presence), never a wrong answer;
//   - MigrateElements, layered on RunMigration: a collective service that
//     moves individually named elements to explicit destinations, republishes
//     their directory entries from the new owners and invalidates every
//     location's cache.
//
// Directory maintenance traffic is attributed to the machine's DirectoryRMIs
// statistic, so experiments can separate metadata from element traffic.

// DirectoryConfig configures a Directory.
type DirectoryConfig[G comparable] struct {
	// Hash buckets GIDs over home locations (required unless Home is set).
	Hash func(G) uint64
	// Home overrides the home-location function (default hash % P).  The
	// pHashMap overlay uses it to co-locate a key's directory entry with the
	// key's closed-form hash owner.
	Home func(gid G) int
	// Cache enables the per-location resolution cache.
	Cache bool
	// OwnerLoc maps a stored owner BCID to its location (default identity,
	// the layout of location-keyed containers like pGraph and pList).
	OwnerLoc func(b partition.BCID) int
}

// Directory is the per-location representative of a distributed directory
// keyed by GID type G.  Construction is collective (SPMD discipline): every
// location must call NewDirectory at the same point of its construction
// sequence so all representatives share an RTS handle.
type Directory[G comparable] struct {
	loc      *runtime.Location
	handle   runtime.Handle
	home     func(G) int
	ownerLoc func(b partition.BCID) int
	cacheOn  bool

	// ops is the registered-operation set for this GID type (nil when G has
	// no typed codec): with it, maintenance traffic is self-decoding and the
	// directory works across process boundaries.
	ops *dirOps[G]

	// entries is the slice of the gid → owner map this location is home for.
	mu      sync.RWMutex
	entries map[G]partition.BCID

	// Resolution cache.  epoch counts invalidations; the cache only ever
	// holds entries learned at the current epoch (BumpEpoch clears it), and
	// in-flight fills carry the epoch they were requested at so fills that
	// straddle an invalidation are dropped.  pending de-duplicates concurrent
	// fill requests for the same GID.
	cacheMu sync.Mutex
	cache   map[G]partition.BCID
	pending map[G]struct{}
	epoch   uint64
	hits    int64
	misses  int64
}

// NewDirectory constructs a directory representative.  Collective; callers
// synchronise construction (the containers' constructors end with a barrier).
func NewDirectory[G comparable](loc *runtime.Location, cfg DirectoryConfig[G]) *Directory[G] {
	d := &Directory[G]{
		loc:      loc,
		home:     cfg.Home,
		ownerLoc: cfg.OwnerLoc,
		cacheOn:  cfg.Cache,
		ops:      dirOpsFor[G](),
		entries:  make(map[G]partition.BCID),
	}
	if d.home == nil {
		if cfg.Hash == nil {
			panic("core: DirectoryConfig needs Hash or Home")
		}
		p := uint64(loc.NumLocations())
		hash := cfg.Hash
		d.home = func(gid G) int { return int(hash(gid) % p) }
	}
	if d.ownerLoc == nil {
		d.ownerLoc = func(b partition.BCID) int { return int(b) }
	}
	if d.cacheOn {
		d.cache = make(map[G]partition.BCID)
		d.pending = make(map[G]struct{})
	}
	d.handle = loc.RegisterObject(d)
	return d
}

// Destroy unregisters the representative.  Collective, like construction.
func (d *Directory[G]) Destroy() { d.loc.UnregisterObject(d.handle) }

// HomeOf returns the location holding the authoritative entry for gid.
func (d *Directory[G]) HomeOf(gid G) int { return d.home(gid) }

// set installs an entry in the local slice of the registry.
func (d *Directory[G]) set(gid G, owner partition.BCID) {
	d.mu.Lock()
	d.entries[gid] = owner
	d.mu.Unlock()
}

// Publish records gid's owner in the directory, asynchronously; the entry is
// globally visible by the next fence.  New GIDs need no cache invalidation:
// no location can hold a cache entry for a GID that never resolved.
func (d *Directory[G]) Publish(gid G, owner partition.BCID) {
	home := d.home(gid)
	if home == d.loc.ID() {
		d.set(gid, owner)
		return
	}
	d.loc.AccountDirectoryRMI(1)
	if d.ops != nil {
		d.loc.AsyncRMIOpSized(home, d.handle, 0, d.ops.publish, dirEntryArgs[G]{gid: gid, owner: owner})
		return
	}
	d.loc.AsyncRMI(home, d.handle, func(obj any, _ *runtime.Location) {
		obj.(*Directory[G]).set(gid, owner)
	})
}

// PublishBulk records one owner for every GID of the batch, grouping the
// entries by home location and shipping one bulk RMI per home — the batched
// counterpart of Publish used by bulk loaders and by element migration.
// Asynchronous; the batch slice is retained until delivery.
func (d *Directory[G]) PublishBulk(gids []G, owner partition.BCID) {
	if len(gids) == 0 {
		return
	}
	self := d.loc.ID()
	byHome := make(map[int][]G)
	for _, gid := range gids {
		h := d.home(gid)
		byHome[h] = append(byHome[h], gid)
	}
	for home, group := range byHome {
		if home == self {
			d.mu.Lock()
			for _, gid := range group {
				d.entries[gid] = owner
			}
			d.mu.Unlock()
			continue
		}
		group := group
		d.loc.AccountDirectoryRMI(1)
		if d.ops != nil {
			d.loc.AsyncRMIBulkOp(home, d.handle, len(group), 16*len(group), d.ops.publishBulk,
				dirBulkArgs[G]{gids: group, owner: owner})
			continue
		}
		d.loc.AsyncRMIBulk(home, d.handle, len(group), 16*len(group), func(obj any, _ *runtime.Location) {
			od := obj.(*Directory[G])
			od.mu.Lock()
			for _, gid := range group {
				od.entries[gid] = owner
			}
			od.mu.Unlock()
		})
	}
}

// Unpublish removes gid's entry, asynchronously (element deletion).  Stale
// caches recover through the home: a request shipped to the old owner misses
// there and forwards to the home, whose missing entry makes the home the
// owner of record, exactly like a never-published GID.
func (d *Directory[G]) Unpublish(gid G) {
	home := d.home(gid)
	erase := func(od *Directory[G]) {
		od.mu.Lock()
		delete(od.entries, gid)
		od.mu.Unlock()
	}
	if home == d.loc.ID() {
		erase(d)
		return
	}
	d.loc.AccountDirectoryRMI(1)
	if d.ops != nil {
		d.loc.AsyncRMIOpSized(home, d.handle, 0, d.ops.unpublish, dirEntryArgs[G]{gid: gid})
		return
	}
	d.loc.AsyncRMI(home, d.handle, func(obj any, _ *runtime.Location) { erase(obj.(*Directory[G])) })
}

// Update replaces gid's owner after an ownership change and bumps every
// location's cache epoch so stale cached resolutions die, asynchronously
// (visible by the next fence).  Collective ownership changes (MigrateElements,
// container redistribution) bump epochs locally inside their protocol instead
// of paying the broadcast.
//
// The bump broadcast is issued BY THE HOME, after it installed the new
// entry, which closes the fill/update race: a fill requested at the new
// epoch can only have been triggered after its location received the bump,
// which the home sent after the install — per-pair FIFO then guarantees the
// home answers that fill with the new owner.  A fill answered with the old
// owner necessarily carries the old epoch and dies at install (or is wiped
// by the arriving bump).
func (d *Directory[G]) Update(gid G, owner partition.BCID) {
	home := d.home(gid)
	if home == d.loc.ID() {
		d.applyUpdate(gid, owner)
		return
	}
	d.loc.AccountDirectoryRMI(1)
	if d.ops != nil {
		d.loc.AsyncRMIOpSized(home, d.handle, 0, d.ops.update, dirEntryArgs[G]{gid: gid, owner: owner})
		return
	}
	d.loc.AsyncRMI(home, d.handle, func(obj any, _ *runtime.Location) {
		obj.(*Directory[G]).applyUpdate(gid, owner)
	})
}

// applyUpdate runs Update's home-side half: install the new entry, then
// broadcast the epoch bump (see Update's ordering argument).
func (d *Directory[G]) applyUpdate(gid G, owner partition.BCID) {
	d.set(gid, owner)
	self := d.loc.ID()
	for dest := 0; dest < d.loc.NumLocations(); dest++ {
		if dest == self {
			d.BumpEpoch()
			continue
		}
		d.loc.AccountDirectoryRMI(1)
		if d.ops != nil {
			d.loc.AsyncRMIOpSized(dest, d.handle, 0, d.ops.bump, struct{}{})
			continue
		}
		d.loc.AsyncRMI(dest, d.handle, func(obj any, _ *runtime.Location) {
			obj.(*Directory[G]).BumpEpoch()
		})
	}
}

// BumpEpoch invalidates this location's resolution cache.  Collective
// protocols that change ownership (redistribution, migration) call it on
// every location inside their synchronised section.
func (d *Directory[G]) BumpEpoch() {
	if !d.cacheOn {
		return
	}
	d.cacheMu.Lock()
	d.epoch++
	clear(d.cache)
	d.cacheMu.Unlock()
}

// Epoch returns the current cache epoch (diagnostics and tests).
func (d *Directory[G]) Epoch() uint64 {
	if !d.cacheOn {
		return 0
	}
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	return d.epoch
}

// CacheStats returns the cache hit/miss counters and current entry count.
func (d *Directory[G]) CacheStats() (hits, misses, size int64) {
	if !d.cacheOn {
		return 0, 0, 0
	}
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	return d.hits, d.misses, int64(len(d.cache))
}

// Resolve translates gid for a container resolver, after the container's own
// local fast path failed.  On the home location it consults the
// authoritative slice: a missing entry resolves to the home itself as owner
// of record, so the caller's action observes a missing element there.
// Elsewhere it consults the resolution cache — a hit ships straight to the
// cached owner (FoundCached, one hop), a miss forwards through the home
// (two hops) and starts an asynchronous cache fill so the next access hits.
func (d *Directory[G]) Resolve(gid G) partition.Info {
	self := d.loc.ID()
	home := d.home(gid)
	if home == self {
		if owner, ok := d.LocalEntry(gid); ok {
			return partition.Found(owner)
		}
		return partition.Found(partition.BCID(self))
	}
	if info, ok := d.CachedResolve(gid, home); ok {
		return info
	}
	return partition.Forward(home)
}

// LocalEntry returns the authoritative entry for a gid this location is home
// for (overlay resolvers consult it directly when the home coincides with a
// closed-form owner).
func (d *Directory[G]) LocalEntry(gid G) (partition.BCID, bool) {
	d.mu.RLock()
	owner, ok := d.entries[gid]
	d.mu.RUnlock()
	return owner, ok
}

// CachedResolve probes the resolution cache for a gid homed on another
// location.  A positive hit returns the cached owner (marked FoundCached).
// A negative hit — the home answered an earlier fill with "no entry", so
// the gid resolves by whatever the home's closed form or owner-of-record
// rule says — returns false without re-requesting, so unmigrated keys and
// missing elements do not generate a fill per access.  A cold miss records
// it, starts an asynchronous fill from the home, and returns false; the
// caller forwards to the home as if uncached.
func (d *Directory[G]) CachedResolve(gid G, home int) (partition.Info, bool) {
	if !d.cacheOn {
		return partition.Info{}, false
	}
	self := d.loc.ID()
	d.cacheMu.Lock()
	owner, ok := d.cache[gid]
	if ok && owner == partition.InvalidBCID {
		// Negative entry: forward to the home, but spawn no new fill.
		d.cacheMu.Unlock()
		return partition.Info{}, false
	}
	if ok && d.ownerLoc(owner) == self {
		// CachedResolve only runs after the local fast path missed, so a
		// self-pointing entry is stale (the element moved away): drop it
		// and fall through to the home.
		delete(d.cache, gid)
		ok = false
	}
	if ok {
		d.hits++
		d.cacheMu.Unlock()
		return partition.FoundCached(owner), true
	}
	d.misses++
	fill := false
	if _, inFlight := d.pending[gid]; !inFlight {
		d.pending[gid] = struct{}{}
		fill = true
	}
	epoch := d.epoch
	d.cacheMu.Unlock()
	if fill {
		d.requestFill(gid, home, epoch)
	}
	return partition.Info{}, false
}

// Reset drops every authoritative entry this location is home for and
// invalidates the cache.  Collective redistributions that snap all elements
// back to closed-form placement call it on every location inside their
// synchronised install phase.
func (d *Directory[G]) Reset() {
	d.mu.Lock()
	clear(d.entries)
	d.mu.Unlock()
	d.BumpEpoch()
}

// fillReplyBytes is the simulated marshalled size of a cache-fill answer
// (gid hash slot + owner).
const fillReplyBytes = 16

// requestFill asks the home for gid's owner and installs the answer in this
// location's cache, off the critical path of the access that missed.  The
// request rides the aggregation buffer, so it is delivered just ahead of the
// forwarded access that triggered it (same destination, FIFO).  The answer
// is a small response message; like the split-phase completion path it is
// routed through shared memory (the home installs the entry directly into
// the origin's representative, whose cache lock makes that safe) and
// accounted explicitly — by the time the forwarded access reaches the
// element's owner, the origin's cache is already warm, so the very next
// access skips the directory hop.
func (d *Directory[G]) requestFill(gid G, home int, epoch uint64) {
	origin := d.loc.ID()
	d.loc.AccountDirectoryRMI(1)
	d.loc.AsyncRMI(home, d.handle, func(obj any, hloc *runtime.Location) {
		hd := obj.(*Directory[G])
		hd.mu.RLock()
		owner, ok := hd.entries[gid]
		hd.mu.RUnlock()
		od := hloc.Machine().Location(origin).Object(hd.handle).(*Directory[G])
		od.fill(gid, owner, ok, epoch)
		hloc.AccountDirectoryRMI(1)
		hloc.AccountReply(fillReplyBytes)
	})
}

// Prime seeds this location's resolution cache with a resolution the caller
// just learned first-hand — typically the storage location carried back by a
// synchronous reply (e.g. pList.Insert returns the new element's placement).
// It gives the caller read-your-writes behaviour before the asynchronous
// Publish reaches the home; a no-op when the cache is disabled.
func (d *Directory[G]) Prime(gid G, owner partition.BCID) {
	if !d.cacheOn || d.ownerLoc(owner) == d.loc.ID() {
		return
	}
	d.cacheMu.Lock()
	d.cache[gid] = owner
	d.cacheMu.Unlock()
}

// fill installs one cache entry learned from the home, unless the epoch
// moved on while the fill was in flight (an ownership change invalidated
// what the home said) or the entry points at this location (local elements
// resolve through the fast path, not the cache).  A "no entry" answer is
// cached negatively (InvalidBCID): later resolutions still forward to the
// home — so a subsequently published entry is always found, one hop slower —
// but no further fills are spawned until the next epoch bump.
func (d *Directory[G]) fill(gid G, owner partition.BCID, ok bool, epoch uint64) {
	d.cacheMu.Lock()
	delete(d.pending, gid)
	if d.epoch == epoch {
		switch {
		case !ok:
			d.cache[gid] = partition.InvalidBCID
		case d.ownerLoc(owner) != d.loc.ID():
			d.cache[gid] = owner
		}
	}
	d.cacheMu.Unlock()
}

// LookupOwner returns gid's authoritative entry, querying the home location
// synchronously.  It must be called from SPMD context (not from inside an
// RMI handler); resolvers use Resolve instead.
func (d *Directory[G]) LookupOwner(gid G) (partition.BCID, bool) {
	home := d.home(gid)
	read := func(od *Directory[G]) ownerResult {
		od.mu.RLock()
		owner, ok := od.entries[gid]
		od.mu.RUnlock()
		return ownerResult{owner: owner, ok: ok}
	}
	if home == d.loc.ID() {
		r := read(d)
		return r.owner, r.ok
	}
	d.loc.AccountDirectoryRMI(1)
	out := d.loc.SyncRMI(home, d.handle, func(obj any, _ *runtime.Location) any {
		return read(obj.(*Directory[G]))
	}).(ownerResult)
	return out.owner, out.ok
}

type ownerResult struct {
	owner partition.BCID
	ok    bool
}

// LocalEntries returns the number of entries this location is home for.
func (d *Directory[G]) LocalEntries() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// MemoryBytes estimates the metadata footprint of this location's registry
// slice and cache (16 bytes per entry: key hash slot + owner).
func (d *Directory[G]) MemoryBytes() int64 {
	d.mu.RLock()
	n := int64(len(d.entries))
	d.mu.RUnlock()
	if d.cacheOn {
		d.cacheMu.Lock()
		n += int64(len(d.cache))
		d.cacheMu.Unlock()
	}
	return n * 16
}

// DirectoryMigration supplies the container-family pieces MigrateElements
// needs on top of the shared redistribution engine.  The zero values of
// NewLocal, DestBC and Keep describe a location-keyed container (one base
// container per location, BCID == location id) — the layout of pGraph and
// pList; bucket-keyed containers (pHashMap's key-migration overlay) override
// them.
type DirectoryMigration[E any, G comparable, B BContainer] struct {
	// Alloc allocates the empty staging base container for one sub-domain.
	Alloc func(b partition.BCID) B
	// Enumerate calls emit for every element currently stored locally.
	Enumerate func(emit func(e E))
	// GID returns the element's directory key.
	GID func(e E) G
	// Place stores a received element into the staging base container.
	Place func(bc B, e E)
	// Bytes returns the simulated marshalled size of e (nil: sizer registry,
	// see MigrationSpec.Bytes).
	Bytes func(e E) int
	// Ops, when non-nil, ships the element transfers as registered operations
	// (see MigrationSpec.Ops).
	Ops *MigrationOps[E]
	// Install swaps the staged storage into the container.
	Install func(lm *LocationManager[B])
	// NewLocal lists the sub-domains this location stores (default: the one
	// location-keyed base container BCID(self)).
	NewLocal []partition.BCID
	// DestBC returns the sub-domain receiving elements migrated to a
	// destination location (default: BCID(dest)).
	DestBC func(dest int) partition.BCID
	// Keep returns the sub-domain and owner of an element that is not being
	// migrated (default: it stays on this location, BCID(self)).
	Keep func(e E) (partition.BCID, int)
}

// moveReq is one element-migration request shipped through the all-gather.
// The fields are exported because the collective layer's wire form (gob under
// the multi-process transport) only marshals exported fields.
type moveReq[G comparable] struct {
	Gid  G
	Dest int
}

// MigrateElements moves individually named elements of a directory-backed
// container to explicit destination locations: the paper's element-migration
// container service, layered on RunMigration.  Collective — every location
// calls it, passing the moves it requests (gid → destination location); the
// union of all requests is applied, elements keep their GIDs, the new owners
// republish the moved entries (PublishBulk) and every location's resolution
// cache epoch is bumped before the collective completes, so no stale cached
// resolution survives the migration.  The container must be quiescent.
func MigrateElements[E any, G comparable, B BContainer](
	loc *runtime.Location,
	dir *Directory[G],
	moves map[G]int,
	spec DirectoryMigration[E, G, B],
) {
	self := loc.ID()
	// Union of every location's requests.  A request naming a location out
	// of range or an element that does not exist is ignored (the element
	// simply is not enumerated anywhere).
	reqs := make([]moveReq[G], 0, len(moves))
	for gid, dest := range moves {
		if dest >= 0 && dest < loc.NumLocations() {
			reqs = append(reqs, moveReq[G]{Gid: gid, Dest: dest})
		}
	}
	merged := make(map[G]int)
	for _, slice := range runtime.AllGatherT(loc, reqs) {
		for _, r := range slice {
			merged[r.Gid] = r.Dest
		}
	}

	newLocal := spec.NewLocal
	if newLocal == nil {
		newLocal = []partition.BCID{partition.BCID(self)}
	}
	destBC := spec.DestBC
	if destBC == nil {
		destBC = func(dest int) partition.BCID { return partition.BCID(dest) }
	}
	keep := spec.Keep
	if keep == nil {
		keep = func(E) (partition.BCID, int) { return partition.BCID(self), self }
	}

	RunMigration(loc, MigrationSpec[E, B]{
		NewLocal:  newLocal,
		Alloc:     spec.Alloc,
		Enumerate: spec.Enumerate,
		Route: func(e E) (partition.BCID, int) {
			if dest, ok := merged[spec.GID(e)]; ok {
				return destBC(dest), dest
			}
			return keep(e)
		},
		Place:   spec.Place,
		Bytes:   spec.Bytes,
		Ops:     spec.Ops,
		Install: spec.Install,
	})

	// Republish the moved entries from their new owners and invalidate every
	// location's cache; the fence drains the republications (and any cache
	// fills still in flight) before any location resumes element traffic.
	mine := make([]G, 0)
	for gid, dest := range merged {
		if dest == self {
			mine = append(mine, gid)
		}
	}
	dir.PublishBulk(mine, destBC(self))
	dir.BumpEpoch()
	loc.Fence()
	loc.Barrier()
}
