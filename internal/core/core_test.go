package core

import (
	"sync"
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// testBC is a minimal bContainer used to exercise the framework machinery
// directly, independent of the real containers.
type testBC struct {
	bcid partition.BCID
	mu   sync.Mutex
	data map[int64]int64
}

func newTestBC(b partition.BCID) *testBC { return &testBC{bcid: b, data: make(map[int64]int64)} }

func (b *testBC) BCID() partition.BCID { return b.bcid }
func (b *testBC) Size() int64          { return int64(len(b.data)) }
func (b *testBC) Empty() bool          { return len(b.data) == 0 }
func (b *testBC) Clear()               { b.data = make(map[int64]int64) }
func (b *testBC) MemoryBytes() (int64, int64) {
	return int64(len(b.data)) * 16, 32
}
func (b *testBC) set(k, v int64) { b.mu.Lock(); b.data[k] = v; b.mu.Unlock() }
func (b *testBC) get(k int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.data[k]
}

// testContainer is a tiny indexed container over testBC.
type testContainer struct {
	Container[int64, *testBC]
}

func newTestContainer(loc *runtime.Location, n int64, traits Traits) *testContainer {
	p := partition.NewBalanced(domain.NewRange1D(0, n), loc.NumLocations())
	m := partition.NewBlockedMapper(p.NumSubdomains(), loc.NumLocations())
	c := &testContainer{}
	c.InitContainer(loc, IndexedResolver{Partition: p, Mapper: m}, traits)
	for _, b := range m.LocalBCIDs(loc.ID()) {
		c.LocationManager().Add(newTestBC(b))
	}
	loc.Barrier()
	return c
}

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestLocationManager(t *testing.T) {
	lm := NewLocationManager[*testBC]()
	if lm.NumBContainers() != 0 || lm.LocalSize() != 0 {
		t.Fatal("new manager not empty")
	}
	a := newTestBC(0)
	b := newTestBC(3)
	lm.Add(a)
	lm.Add(b)
	if lm.NumBContainers() != 2 {
		t.Fatal("add failed")
	}
	if got := lm.BCIDs(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("bcids = %v", got)
	}
	if x, ok := lm.Get(3); !ok || x != b {
		t.Fatal("get failed")
	}
	if _, ok := lm.Get(9); ok {
		t.Fatal("get of absent bcid should fail")
	}
	if lm.MustGet(0) != a {
		t.Fatal("mustGet failed")
	}
	a.set(1, 1)
	a.set(2, 2)
	b.set(3, 3)
	if lm.LocalSize() != 3 {
		t.Fatalf("local size = %d", lm.LocalSize())
	}
	count := 0
	lm.ForEach(func(*testBC) { count++ })
	if count != 2 {
		t.Fatal("forEach wrong")
	}
	d, m := lm.MemoryBytes()
	if d != 48 || m <= 0 {
		t.Fatalf("memory = %d/%d", d, m)
	}
	lm.Clear()
	if lm.LocalSize() != 0 {
		t.Fatal("clear failed")
	}
	lm.Remove(0)
	if lm.NumBContainers() != 1 {
		t.Fatal("remove failed")
	}
	lm.Remove(42) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate add should panic")
		}
	}()
	lm.Add(b)
}

func TestLocationManagerMustGetPanics(t *testing.T) {
	lm := NewLocationManager[*testBC]()
	defer func() {
		if recover() == nil {
			t.Fatal("mustGet of absent bcid should panic")
		}
	}()
	lm.MustGet(1)
}

func TestThreadSafetyManagers(t *testing.T) {
	// Each manager must allow a bracketed sequence without deadlock and
	// actually serialise writers (checked by hammering a counter).
	managers := map[string]ThreadSafety{
		"none":       NoLocking{},
		"bcontainer": NewBContainerLocking(),
		"location":   NewLocationLocking(),
	}
	for name, m := range managers {
		m.MetadataAccessPre(Read)
		m.MetadataAccessPost(Read)
		m.MetadataAccessPre(Write)
		m.MetadataAccessPost(Write)
		m.DataAccessPre(0, Read)
		m.DataAccessPost(0, Read)
		m.DataAccessPre(0, Write)
		m.DataAccessPost(0, Write)
		_ = name
	}
	// Serialisation check for the locking managers.
	for _, m := range []ThreadSafety{NewBContainerLocking(), NewLocationLocking()} {
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					m.DataAccessPre(2, Write)
					counter++
					m.DataAccessPost(2, Write)
				}
			}()
		}
		wg.Wait()
		if counter != 8000 {
			t.Fatalf("lost updates under locking manager: %d", counter)
		}
	}
}

func TestTraitsSelection(t *testing.T) {
	d := DefaultTraits()
	if d.Locking != PolicyPerBContainer || d.Consistency != Relaxed {
		t.Fatal("defaults wrong")
	}
	if _, ok := d.manager().(*BContainerLocking); !ok {
		t.Fatal("default manager wrong")
	}
	if _, ok := (Traits{Locking: PolicyPerLocation}).manager().(*LocationLocking); !ok {
		t.Fatal("per-location manager wrong")
	}
	if _, ok := (Traits{Locking: PolicyNone}).manager().(NoLocking); !ok {
		t.Fatal("none manager wrong")
	}
	custom := NewLocationLocking()
	if (Traits{Custom: custom}).manager() != custom {
		t.Fatal("custom manager not honoured")
	}
}

func TestContainerBaseInvokeFlavours(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		c := newTestContainer(loc, 100, DefaultTraits())
		loc.Barrier()
		// Asynchronous writes to every index from location 0.
		if loc.ID() == 0 {
			for i := int64(0); i < 100; i++ {
				i := i
				c.Invoke(i, Write, func(_ *runtime.Location, bc *testBC) { bc.set(i, i*2) })
			}
		}
		loc.Fence()
		// Synchronous reads from every location.
		for i := int64(0); i < 100; i += 9 {
			i := i
			got := c.InvokeRet(i, Read, func(_ *runtime.Location, bc *testBC) any { return bc.get(i) })
			if got.(int64) != i*2 {
				t.Errorf("InvokeRet(%d) = %v", i, got)
			}
		}
		// Split-phase reads.
		fut := c.InvokeSplit(50, Read, func(_ *runtime.Location, bc *testBC) any { return bc.get(50) })
		if fut.Get().(int64) != 100 {
			t.Error("InvokeSplit wrong")
		}
		// Per-BC invocation.
		c.InvokeOnBC(partition.BCID(loc.ID()), Write, func(_ *runtime.Location, bc *testBC) { bc.set(-1, 7) })
		loc.Fence()
		// IsLocal / Lookup / sizes / memory.
		if !c.IsLocal(int64(loc.ID()*25)) && loc.NumLocations() == 4 {
			t.Error("IsLocal wrong for first local index")
		}
		if c.Lookup(99) != 3 {
			t.Errorf("Lookup(99) = %d", c.Lookup(99))
		}
		if c.GlobalSize() != 100+int64(loc.NumLocations()) {
			t.Errorf("global size = %d", c.GlobalSize())
		}
		if c.GlobalEmpty() {
			t.Error("non-empty container reported empty")
		}
		mu := c.GlobalMemory(10)
		if mu.Data <= 0 || mu.Metadata <= 0 {
			t.Error("memory accounting wrong")
		}
		if c.Sequential() {
			t.Error("default traits should be relaxed")
		}
		loc.Fence()
	})
}

func TestInvokeAtAndInvokeAtRet(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		c := newTestContainer(loc, 30, DefaultTraits())
		loc.Barrier()
		if loc.ID() == 0 {
			// Ask location 2 for its local size after planting data there.
			c.InvokeAt(2, func(_ *runtime.Location, self *Container[int64, *testBC]) {
				self.LocationManager().MustGet(partition.BCID(2)).set(25, 1)
			})
			got := c.InvokeAtRet(2, func(_ *runtime.Location, self *Container[int64, *testBC]) any {
				return self.LocalSize()
			})
			if got.(int64) != 1 {
				t.Errorf("remote local size = %v", got)
			}
		}
		loc.Fence()
	})
}

func TestSequentialTraitMakesInvokeSynchronous(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		c := newTestContainer(loc, 10, Traits{Locking: PolicyPerBContainer, Consistency: Sequential})
		loc.Barrier()
		if loc.ID() == 0 {
			// Under Sequential, Invoke must have completed when it returns,
			// so an immediate remote synchronous read sees the value.
			c.Invoke(9, Write, func(_ *runtime.Location, bc *testBC) { bc.set(9, 1) })
			got := c.InvokeRet(9, Read, func(_ *runtime.Location, bc *testBC) any { return bc.get(9) })
			if got.(int64) != 1 {
				t.Error("sequential Invoke did not complete synchronously")
			}
		}
		loc.Fence()
	})
}

func TestMemoryUsageArithmetic(t *testing.T) {
	a := MemoryUsage{Data: 10, Metadata: 5}
	b := MemoryUsage{Data: 1, Metadata: 2}
	s := a.Add(b)
	if s.Data != 11 || s.Metadata != 7 || s.Total() != 18 {
		t.Fatal("arithmetic wrong")
	}
	if s.String() == "" {
		t.Fatal("string empty")
	}
}

// forwardingResolver exercises the method-forwarding path: a GID's owner is
// gid mod P, but only the owner itself and the directory location (the last
// location) can resolve it; every other location returns a hint pointing at
// the directory, so requests issued elsewhere take an extra forwarding hop.
type forwardingResolver struct {
	self, dirLoc, numLoc int
}

func (r forwardingResolver) Find(gid int64) partition.Info {
	owner := int(gid) % r.numLoc
	if r.self == owner || r.self == r.dirLoc {
		return partition.Found(partition.BCID(owner))
	}
	return partition.Forward(r.dirLoc)
}

func (r forwardingResolver) OwnerOf(b partition.BCID) int { return int(b) }

func TestMethodForwarding(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		dir := loc.NumLocations() - 1
		c := &testContainer{}
		c.InitContainer(loc, forwardingResolver{self: loc.ID(), dirLoc: dir, numLoc: loc.NumLocations()}, DefaultTraits())
		c.LocationManager().Add(newTestBC(partition.BCID(loc.ID())))
		loc.Barrier()
		// Writes from location 0 must be forwarded through the directory
		// location and still land on the right owner.
		if loc.ID() == 0 {
			for g := int64(0); g < 8; g++ {
				g := g
				c.Invoke(g, Write, func(_ *runtime.Location, bc *testBC) { bc.set(g, g+100) })
			}
		}
		loc.Fence()
		// Synchronous (forwarded) reads see the data.
		if loc.ID() == 1 {
			for g := int64(0); g < 8; g++ {
				g := g
				got := c.InvokeRet(g, Read, func(_ *runtime.Location, bc *testBC) any { return bc.get(g) })
				if got.(int64) != g+100 {
					t.Errorf("forwarded read of %d = %v", g, got)
				}
			}
		}
		loc.Fence()
		// The element landed on owner gid % P, not on the directory.
		g := int64(2)
		if loc.ID() == 2 {
			bc := c.LocationManager().MustGet(partition.BCID(2))
			if bc.get(2) != 102 {
				t.Errorf("element 2 not stored on its owner: %d", bc.get(2))
			}
		}
		_ = g
		loc.Fence()
	})
}

func TestIndexedResolver(t *testing.T) {
	p := partition.NewBalanced(domain.NewRange1D(0, 100), 4)
	m := partition.NewBlockedMapper(4, 4)
	r := IndexedResolver{Partition: p, Mapper: m}
	info := r.Find(30)
	if !info.Valid || r.OwnerOf(info.BCID) != 1 {
		t.Fatalf("resolver wrong: %+v owner %d", info, r.OwnerOf(info.BCID))
	}
	// Closed-form partitions fail fast on out-of-domain GIDs rather than
	// silently forwarding to sub-domain 0.
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("out-of-domain GID should panic")
			}
		}()
		r.Find(-5)
	}()
}
