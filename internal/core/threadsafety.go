package core

import (
	"sync"

	"repro/internal/partition"
)

// LockGranularity selects how much state a method invocation locks while it
// runs (Chapter VI, Section D): nothing, one element, one base container, or
// all local state of the container.
type LockGranularity int

// Lock granularities, mirroring the paper's NONE / ELEMENT / BCONTAINER /
// LOCAL method attributes.
const (
	LockNone LockGranularity = iota
	LockElement
	LockBContainer
	LockLocal
)

// AccessMode describes whether a method reads or writes the state it locks.
type AccessMode int

// Access modes for data and metadata.
const (
	Read AccessMode = iota
	Write
)

// MethodPolicy is one row of the paper's locking-policy table: the
// granularity and data/metadata access modes of one container method.
type MethodPolicy struct {
	Granularity LockGranularity
	Data        AccessMode
	Metadata    AccessMode
}

// PolicyTable maps method identifiers to their locking policies.  Containers
// populate it in their constructors (see the pVector example in the paper)
// and the thread-safety manager consults it on every invocation.
type PolicyTable map[string]MethodPolicy

// ThreadSafety is the thread-safety manager concept (Chapter VI, Section C).
// The distribution manager brackets metadata queries and bContainer actions
// with these calls; implementations decide what, if anything, to lock.
type ThreadSafety interface {
	// MetadataAccessPre/Post bracket accesses to the partition and other
	// distribution metadata.
	MetadataAccessPre(mode AccessMode)
	MetadataAccessPost(mode AccessMode)
	// DataAccessPre/Post bracket the execution of an action on a base
	// container.
	DataAccessPre(b partition.BCID, mode AccessMode)
	DataAccessPost(b partition.BCID, mode AccessMode)
}

// NoLocking performs no synchronisation.  It is the right manager for
// read-only phases or when the algorithm's task dependence graph already
// guarantees exclusive access (the paper's NONE customisation).
type NoLocking struct{}

// MetadataAccessPre is a no-op.
func (NoLocking) MetadataAccessPre(AccessMode) {}

// MetadataAccessPost is a no-op.
func (NoLocking) MetadataAccessPost(AccessMode) {}

// DataAccessPre is a no-op.
func (NoLocking) DataAccessPre(partition.BCID, AccessMode) {}

// DataAccessPost is a no-op.
func (NoLocking) DataAccessPost(partition.BCID, AccessMode) {}

// BContainerLocking serialises access per base container with a
// reader/writer lock each, plus one reader/writer lock for the metadata.
// It is the default manager of every pContainer: incoming RMIs (served by
// the location's RMI server goroutine) and local invocations (from the SPMD
// goroutine) may touch the same base container concurrently, and this
// manager makes each method's bContainer access atomic.
type BContainerLocking struct {
	metaMu sync.RWMutex
	mu     sync.Mutex
	locks  map[partition.BCID]*sync.RWMutex
}

// NewBContainerLocking returns a per-bContainer locking manager.
func NewBContainerLocking() *BContainerLocking {
	return &BContainerLocking{locks: make(map[partition.BCID]*sync.RWMutex)}
}

func (t *BContainerLocking) lockFor(b partition.BCID) *sync.RWMutex {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.locks[b]
	if !ok {
		l = &sync.RWMutex{}
		t.locks[b] = l
	}
	return l
}

// MetadataAccessPre acquires the metadata lock.
func (t *BContainerLocking) MetadataAccessPre(mode AccessMode) {
	if mode == Write {
		t.metaMu.Lock()
	} else {
		t.metaMu.RLock()
	}
}

// MetadataAccessPost releases the metadata lock.
func (t *BContainerLocking) MetadataAccessPost(mode AccessMode) {
	if mode == Write {
		t.metaMu.Unlock()
	} else {
		t.metaMu.RUnlock()
	}
}

// DataAccessPre acquires the lock of base container b.
func (t *BContainerLocking) DataAccessPre(b partition.BCID, mode AccessMode) {
	l := t.lockFor(b)
	if mode == Write {
		l.Lock()
	} else {
		l.RLock()
	}
}

// DataAccessPost releases the lock of base container b.
func (t *BContainerLocking) DataAccessPost(b partition.BCID, mode AccessMode) {
	l := t.lockFor(b)
	if mode == Write {
		l.Unlock()
	} else {
		l.RUnlock()
	}
}

// LocationLocking serialises every data access on the location with a single
// reader/writer lock (the paper's LOCAL granularity), which some dynamic
// containers need for methods that restructure several base containers at
// once.
type LocationLocking struct {
	metaMu sync.RWMutex
	dataMu sync.RWMutex
}

// NewLocationLocking returns a whole-location locking manager.
func NewLocationLocking() *LocationLocking { return &LocationLocking{} }

// MetadataAccessPre acquires the metadata lock.
func (t *LocationLocking) MetadataAccessPre(mode AccessMode) {
	if mode == Write {
		t.metaMu.Lock()
	} else {
		t.metaMu.RLock()
	}
}

// MetadataAccessPost releases the metadata lock.
func (t *LocationLocking) MetadataAccessPost(mode AccessMode) {
	if mode == Write {
		t.metaMu.Unlock()
	} else {
		t.metaMu.RUnlock()
	}
}

// DataAccessPre acquires the location-wide data lock.
func (t *LocationLocking) DataAccessPre(_ partition.BCID, mode AccessMode) {
	if mode == Write {
		t.dataMu.Lock()
	} else {
		t.dataMu.RLock()
	}
}

// DataAccessPost releases the location-wide data lock.
func (t *LocationLocking) DataAccessPost(_ partition.BCID, mode AccessMode) {
	if mode == Write {
		t.dataMu.Unlock()
	} else {
		t.dataMu.RUnlock()
	}
}

// LockPolicy names the built-in thread-safety managers selectable through
// Traits.
type LockPolicy int

// Built-in locking policies.
const (
	// PolicyPerBContainer is the default: one reader/writer lock per base
	// container.
	PolicyPerBContainer LockPolicy = iota
	// PolicyPerLocation serialises all data accesses on a location.
	PolicyPerLocation
	// PolicyNone disables framework locking entirely.
	PolicyNone
)

// newThreadSafety instantiates the manager selected by a policy.
func newThreadSafety(p LockPolicy) ThreadSafety {
	switch p {
	case PolicyPerLocation:
		return NewLocationLocking()
	case PolicyNone:
		return NoLocking{}
	default:
		return NewBContainerLocking()
	}
}
