package core

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Resolver is the address-translation interface the distribution manager
// needs from a container's partition and partition mapper: given a GID,
// which sub-domain holds it (or which location might know), and given a
// sub-domain, which location stores it.
type Resolver[G any] interface {
	// Find returns the sub-domain holding gid, or a forwarding hint.
	Find(gid G) partition.Info
	// OwnerOf returns the location storing sub-domain b.
	OwnerOf(b partition.BCID) int
}

// Placement is one element's fully resolved owner: the destination location
// and, when resolution succeeded, the sub-domain.  BCID < 0 marks a
// forwarding hint (the element could not be resolved here; Dest may know
// more).
type Placement struct {
	Dest int
	BCID partition.BCID
}

// BulkResolver is an optional Resolver extension: resolvers that can place a
// whole batch in one call.  The bulk method skeleton prefers it over
// per-element Find/OwnerOf pairs because a batch resolver can amortise work
// across elements — e.g. memoise the last block's extent so a run of
// consecutive GIDs costs one range check each instead of a closed-form
// resolution.  For i in [0, len(out)), out[i] must receive the placement of
// gids[idxs[i]] (or gids[i] when idxs is nil), with exactly the semantics of
// Find + OwnerOf.
type BulkResolver[G any] interface {
	Resolver[G]
	ResolveBulk(gids []G, idxs []int, out []Placement)
}

// IndexedResolver adapts a one-dimensional indexed partition plus a mapper
// into a Resolver (the common case for pArray/pVector).
type IndexedResolver struct {
	Partition partition.Indexed
	Mapper    partition.Mapper
}

// Find resolves an index through the partition.
func (r IndexedResolver) Find(gid int64) partition.Info { return r.Partition.Find(gid) }

// OwnerOf resolves a sub-domain through the mapper.
func (r IndexedResolver) OwnerOf(b partition.BCID) int { return r.Mapper.Map(b) }

// ResolveBulk places a batch of indices.  When the partition guarantees
// contiguous sub-domains, the last resolved block's extent and owner are
// memoised: bulk accesses overwhelmingly touch runs of consecutive indices,
// so most elements resolve with a single range check and no mapper call.
// Non-contiguous partitions (block-cyclic) fall back to per-element
// resolution — range membership does not imply ownership there.
func (r IndexedResolver) ResolveBulk(gids []int64, idxs []int, out []Placement) {
	memo := false
	if c, ok := r.Partition.(partition.Contiguous); ok {
		memo = c.ContiguousBlocks()
	}
	var run domain.Range1D
	var cached Placement
	have := false
	for i := range out {
		k := i
		if idxs != nil {
			k = idxs[i]
		}
		g := gids[k]
		if have && run.Contains(g) {
			out[i] = cached
			continue
		}
		info := r.Partition.Find(g)
		if !info.Valid {
			out[i] = Placement{Dest: info.Hint, BCID: partition.InvalidBCID}
			have = false
			continue
		}
		cached = Placement{Dest: r.Mapper.Map(info.BCID), BCID: info.BCID}
		out[i] = cached
		if memo {
			run = r.Partition.SubDomain(info.BCID)
			have = true
		}
	}
}

// Container is the pContainer base class (Table XI): the per-location
// representative of a distributed container.  Concrete containers embed it,
// construct it collectively (SPMD) so every representative registers with
// the RTS under the same handle, and express their element-wise methods as
// Invoke / InvokeRet / InvokeSplit calls.
//
// The type parameters are the GID type G and the base-container type B
// stored by the location manager.
type Container[G any, B BContainer] struct {
	loc      *runtime.Location
	handle   runtime.Handle
	locMgr   *LocationManager[B]
	resolver Resolver[G]
	ths      ThreadSafety
	traits   Traits
}

// InitContainer initialises the embedded base in place: it records the
// location, installs the resolver and traits, creates the location manager
// and registers the representative with the RTS.  It must be called
// collectively, in the same construction order on every location, before any
// other method.  The registered object is the base itself, so remote
// invocations can recover the typed base on the destination location.
func (c *Container[G, B]) InitContainer(loc *runtime.Location, resolver Resolver[G], traits Traits) {
	c.loc = loc
	c.resolver = resolver
	c.traits = traits
	c.ths = traits.manager()
	c.locMgr = NewLocationManager[B]()
	c.handle = loc.RegisterObject(c)
}

// Destroy unregisters the representative from the RTS.  Like construction it
// should be performed on every location.
func (c *Container[G, B]) Destroy() {
	c.loc.UnregisterObject(c.handle)
}

// Location returns the location this representative lives on.
func (c *Container[G, B]) Location() *runtime.Location { return c.loc }

// Handle returns the RTS handle shared by all representatives.
func (c *Container[G, B]) Handle() runtime.Handle { return c.handle }

// LocationManager exposes the per-location base-container registry.
func (c *Container[G, B]) LocationManager() *LocationManager[B] { return c.locMgr }

// Resolver returns the installed address-translation object.
func (c *Container[G, B]) Resolver() Resolver[G] { return c.resolver }

// SetResolver replaces the address-translation object.  It is used by
// redistribution, under a metadata write bracket, and must be performed
// collectively.
func (c *Container[G, B]) SetResolver(r Resolver[G]) {
	c.ths.MetadataAccessPre(Write)
	c.resolver = r
	c.ths.MetadataAccessPost(Write)
}

// ReplaceLocationManager swaps in a new base-container registry under the
// metadata write bracket.  Redistribution uses it after migrating data into
// freshly allocated base containers.
func (c *Container[G, B]) ReplaceLocationManager(lm *LocationManager[B]) {
	c.ths.MetadataAccessPre(Write)
	c.locMgr = lm
	c.ths.MetadataAccessPost(Write)
}

// Traits returns the traits this representative was constructed with.
func (c *Container[G, B]) Traits() Traits { return c.traits }

// ThreadSafety returns the active thread-safety manager.
func (c *Container[G, B]) ThreadSafety() ThreadSafety { return c.ths }

// Sequential reports whether the container runs under the Sequential
// consistency model, in which case asynchronous methods must execute
// synchronously.
func (c *Container[G, B]) Sequential() bool { return c.traits.Consistency == Sequential }

// IsLocal reports whether gid resolves to a base container stored on this
// location (Table XII's is_local).  The metadata bracket is released by
// defer so a fail-fast resolver panic does not leak the lock.
func (c *Container[G, B]) IsLocal(gid G) bool {
	c.ths.MetadataAccessPre(Read)
	defer c.ths.MetadataAccessPost(Read)
	info := c.resolver.Find(gid)
	if !info.Valid {
		return false
	}
	return c.resolver.OwnerOf(info.BCID) == c.loc.ID()
}

// Lookup returns the location that owns gid, or that may know more about it
// (Table XII's lookup).
func (c *Container[G, B]) Lookup(gid G) int {
	c.ths.MetadataAccessPre(Read)
	defer c.ths.MetadataAccessPost(Read)
	info := c.resolver.Find(gid)
	if !info.Valid {
		return info.Hint
	}
	return c.resolver.OwnerOf(info.BCID)
}

// LocalSize returns the number of elements stored on this location.
func (c *Container[G, B]) LocalSize() int64 {
	c.ths.MetadataAccessPre(Read)
	defer c.ths.MetadataAccessPost(Read)
	return c.locMgr.LocalSize()
}

// LocalEmpty reports whether this location stores no elements.
func (c *Container[G, B]) LocalEmpty() bool { return c.LocalSize() == 0 }

// GlobalSize returns the total number of elements across all locations.
// It is a collective operation (every location must call it).
func (c *Container[G, B]) GlobalSize() int64 {
	return runtime.AllReduceSum(c.loc, c.LocalSize())
}

// GlobalEmpty reports whether the whole container is empty.  Collective.
func (c *Container[G, B]) GlobalEmpty() bool { return c.GlobalSize() == 0 }

// MemoryUsage is the per-location result of MemorySize.
type MemoryUsage struct {
	Data     int64
	Metadata int64
}

func init() {
	// MemorySize reduces MemoryUsage collectively; in multi-process mode the
	// contribution crosses the control plane as gob.
	runtime.RegisterCollectiveType(MemoryUsage{})
}

// Total returns data plus metadata bytes.
func (m MemoryUsage) Total() int64 { return m.Data + m.Metadata }

// Add accumulates another usage record.
func (m MemoryUsage) Add(o MemoryUsage) MemoryUsage {
	return MemoryUsage{Data: m.Data + o.Data, Metadata: m.Metadata + o.Metadata}
}

// String formats the usage for reports.
func (m MemoryUsage) String() string {
	return fmt.Sprintf("data=%dB metadata=%dB", m.Data, m.Metadata)
}

// LocalMemory returns this location's data/metadata footprint: the local
// base containers plus a fixed estimate for the distribution metadata.
func (c *Container[G, B]) LocalMemory(extraMetadata int64) MemoryUsage {
	d, m := c.locMgr.MemoryBytes()
	return MemoryUsage{Data: d, Metadata: m + extraMetadata}
}

// GlobalMemory sums LocalMemory over all locations.  Collective.
func (c *Container[G, B]) GlobalMemory(extraMetadata int64) MemoryUsage {
	local := c.LocalMemory(extraMetadata)
	return runtime.AllReduceT(c.loc, local, func(a, b MemoryUsage) MemoryUsage { return a.Add(b) })
}

// ForEachLocalBC applies fn to every local base container under the
// thread-safety manager's data bracket.
func (c *Container[G, B]) ForEachLocalBC(mode AccessMode, fn func(B)) {
	for _, id := range c.locMgr.BCIDs() {
		bc := c.locMgr.MustGet(id)
		c.ths.DataAccessPre(id, mode)
		fn(bc)
		c.ths.DataAccessPost(id, mode)
	}
}

// Fence is a convenience forwarding to the RTS fence.
func (c *Container[G, B]) Fence() { c.loc.Fence() }
