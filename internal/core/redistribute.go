package core

import (
	"sync"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// This file implements the shared redistribution subsystem (Chapter V,
// Section G): the collective protocol that reorganises a pContainer's
// elements according to a new partition and partition mapper.  The protocol
// is the same for every container family — allocate staging storage for the
// new distribution, ship every element to its new owner as an ordinary RMI
// on the simulated interconnect, swap the staged storage in — so the engine
// lives here and the containers only supply the family-specific pieces
// through a MigrationSpec.
//
// The protocol has three phases, separated by collective synchronisation:
//
//  1. Every location allocates the base containers the new distribution
//     assigns to it and registers a migration target with the RTS
//     (registration is collective and SPMD-ordered, so all locations obtain
//     the same handle).
//  2. Every location routes each of its elements to the element's new
//     owner: elements that stay local are placed directly (no message),
//     elements that change owner travel as asynchronous RMIs, exactly like
//     the marshalled bContainer fragments the paper ships.  A fence drains
//     the traffic.
//  3. Every location installs the staged storage and new address metadata,
//     then retires the migration target.

// MigrationSpec describes one container family's redistribution: how to
// allocate staging storage, enumerate the elements currently stored locally,
// route an element to its new sub-domain and owner location, place a
// received element into staging, and install the completed storage.
// E is the element record shipped between locations, B the base-container
// type managed by the family's location manager.
type MigrationSpec[E any, B BContainer] struct {
	// NewLocal lists the sub-domains the new distribution maps to this
	// location (typically newMapper.LocalBCIDs(self)).
	NewLocal []partition.BCID
	// Alloc allocates the empty staging base container for one sub-domain.
	Alloc func(b partition.BCID) B
	// Enumerate calls emit for every element currently stored on this
	// location.
	Enumerate func(emit func(e E))
	// Route returns the sub-domain and owner location of e under the new
	// distribution.
	Route func(e E) (partition.BCID, int)
	// Place stores a received element into the staging base container of
	// its new sub-domain.  The engine serialises Place calls per location.
	Place func(bc B, e E)
	// Bytes returns the simulated marshalled size of e, accounted against
	// the machine statistics when e changes location.  A nil Bytes counts
	// a flat 8 bytes per element.
	Bytes func(e E) int
	// Install swaps the staged storage into the container; the containers
	// also replace their resolver and distribution metadata here.  It runs
	// after all elements have arrived and before any location resumes.
	Install func(lm *LocationManager[B])
}

// migrator is the handle-addressable object that receives migrated elements
// during one redistribution; element transfers address it through ordinary
// RMIs.
type migrator[E any, B BContainer] struct {
	mu      sync.Mutex
	staging map[partition.BCID]B
	place   func(bc B, e E)
}

func (m *migrator[E, B]) recv(b partition.BCID, e E) {
	m.mu.Lock()
	m.place(m.staging[b], e)
	m.mu.Unlock()
}

// RunMigration executes the collective redistribution protocol described by
// spec.  Every location must call it with an equivalent spec (the usual SPMD
// discipline); the container must be quiescent (no element methods in
// flight — callers typically fence first).
func RunMigration[E any, B BContainer](loc *runtime.Location, spec MigrationSpec[E, B]) {
	self := loc.ID()

	// Phase 1: staging storage and collective registration.
	staging := make(map[partition.BCID]B, len(spec.NewLocal))
	for _, b := range spec.NewLocal {
		staging[b] = spec.Alloc(b)
	}
	m := &migrator[E, B]{staging: staging, place: spec.Place}
	h := loc.RegisterObject(m)
	loc.Barrier()

	// Phase 2: route every locally stored element to its new owner.
	spec.Enumerate(func(e E) {
		b, owner := spec.Route(e)
		if owner == self {
			m.recv(b, e)
			return
		}
		bytes := 8
		if spec.Bytes != nil {
			bytes = spec.Bytes(e)
		}
		loc.AsyncRMISized(owner, h, bytes, func(obj any, _ *runtime.Location) {
			obj.(*migrator[E, B]).recv(b, e)
		})
	})
	loc.Fence()

	// Phase 3: install the staged storage, retire the migration target.
	lm := NewLocationManager[B]()
	for _, b := range spec.NewLocal {
		lm.Add(staging[b])
	}
	spec.Install(lm)
	loc.UnregisterObject(h)
	loc.Barrier()
}

// IndexedElem is the element record shipped by indexed-container
// redistributions: a GID and its value.
type IndexedElem[T any] struct {
	GID int64
	Val T
}

// IndexedStore is the base-container surface an indexed redistribution
// needs: per-GID stores into the staging storage and enumeration of the
// current elements.  *bcontainer.Array[T] and *bcontainer.Vector[T] satisfy
// it.
type IndexedStore[T any] interface {
	BContainer
	Set(gid int64, val T)
	Range(fn func(gid int64, val T) bool)
}

// ElemBytes returns the simulated marshalled size of one indexed element of
// type T: the 8-byte GID plus the in-memory size of the value.
func ElemBytes[T any]() int {
	var t T
	return 8 + int(unsafe.Sizeof(t))
}

// RedistributeIndexed migrates the elements of a one-dimensional indexed
// container (pArray, pVector) into freshly allocated storage for (newPart,
// newMapper) and hands the completed location manager to install, which
// must also swap in the container's new resolver and metadata.  Collective.
func RedistributeIndexed[T any, B IndexedStore[T]](
	c *Container[int64, B],
	newPart partition.Indexed,
	newMapper partition.Mapper,
	alloc func(b partition.BCID, dom domain.Range1D) B,
	install func(lm *LocationManager[B]),
) {
	loc := c.Location()
	elemBytes := ElemBytes[T]()
	RunMigration(loc, MigrationSpec[IndexedElem[T], B]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc:    func(b partition.BCID) B { return alloc(b, newPart.SubDomain(b)) },
		Enumerate: func(emit func(IndexedElem[T])) {
			c.ForEachLocalBC(Read, func(bc B) {
				bc.Range(func(gid int64, val T) bool {
					emit(IndexedElem[T]{GID: gid, Val: val})
					return true
				})
			})
		},
		Route: func(e IndexedElem[T]) (partition.BCID, int) {
			info := newPart.Find(e.GID)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place:   func(bc B, e IndexedElem[T]) { bc.Set(e.GID, e.Val) },
		Bytes:   func(IndexedElem[T]) int { return elemBytes },
		Install: install,
	})
}
