package core

import (
	"reflect"
	"sync"
	"unsafe"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// This file implements the shared redistribution subsystem (Chapter V,
// Section G): the collective protocol that reorganises a pContainer's
// elements according to a new partition and partition mapper.  The protocol
// is the same for every container family — allocate staging storage for the
// new distribution, ship every element to its new owner as an ordinary RMI
// on the simulated interconnect, swap the staged storage in — so the engine
// lives here and the containers only supply the family-specific pieces
// through a MigrationSpec.
//
// The protocol has three phases, separated by collective synchronisation:
//
//  1. Every location allocates the base containers the new distribution
//     assigns to it and registers a migration target with the RTS
//     (registration is collective and SPMD-ordered, so all locations obtain
//     the same handle).
//  2. Every location routes each of its elements to the element's new
//     owner: elements that stay local are placed directly (no message),
//     elements that change owner travel as asynchronous RMIs, exactly like
//     the marshalled bContainer fragments the paper ships.  A fence drains
//     the traffic.
//  3. Every location installs the staged storage and new address metadata,
//     then retires the migration target.

// MigrationSpec describes one container family's redistribution: how to
// allocate staging storage, enumerate the elements currently stored locally,
// route an element to its new sub-domain and owner location, place a
// received element into staging, and install the completed storage.
// E is the element record shipped between locations, B the base-container
// type managed by the family's location manager.
type MigrationSpec[E any, B BContainer] struct {
	// NewLocal lists the sub-domains the new distribution maps to this
	// location (typically newMapper.LocalBCIDs(self)).
	NewLocal []partition.BCID
	// Alloc allocates the empty staging base container for one sub-domain.
	Alloc func(b partition.BCID) B
	// Enumerate calls emit for every element currently stored on this
	// location.
	Enumerate func(emit func(e E))
	// Route returns the sub-domain and owner location of e under the new
	// distribution.
	Route func(e E) (partition.BCID, int)
	// Place stores a received element into the staging base container of
	// its new sub-domain.  The engine serialises Place calls per location.
	Place func(bc B, e E)
	// Bytes returns the simulated marshalled size of e, accounted against
	// the machine statistics when e changes location.  A nil Bytes resolves
	// the element through the sizer registry (Location.PayloadBytes), so a
	// registered or Sizer-implementing element type is accounted at its real
	// marshalled size and only a type no tier knows falls back to the flat
	// default — counted in the SizerMisses statistic instead of silently.
	Bytes func(e E) int
	// Ops, when non-nil, ships phase-2 element transfers as registered
	// operations (RegisterMigrationOps) instead of closures, so the
	// redistribution is self-decoding on wire transports and works across
	// process boundaries.  Counter-for-counter identical to the closure path.
	Ops *MigrationOps[E]
	// Install swaps the staged storage into the container; the containers
	// also replace their resolver and distribution metadata here.  It runs
	// after all elements have arrived and before any location resumes.
	Install func(lm *LocationManager[B])
}

// migrator is the handle-addressable object that receives migrated elements
// during one redistribution; element transfers address it through ordinary
// RMIs.
type migrator[E any, B BContainer] struct {
	mu      sync.Mutex
	staging map[partition.BCID]B
	place   func(bc B, e E)
}

func (m *migrator[E, B]) recv(b partition.BCID, e E) {
	m.mu.Lock()
	m.place(m.staging[b], e)
	m.mu.Unlock()
}

// recvMig satisfies migSink[E]: the registered migration operation addresses
// the migrator through the element type alone, without knowing B.
func (m *migrator[E, B]) recvMig(b partition.BCID, e E) { m.recv(b, e) }

// migSink is the handler-side face of a migrator: registered migration
// operations type-assert the addressed object to migSink[E], so one
// registration per element type serves every base-container type that ships
// that element.
type migSink[E any] interface {
	recvMig(b partition.BCID, e E)
}

// migArgs is one registered phase-2 element transfer in flight.
type migArgs[E any] struct {
	bcid partition.BCID
	elem E
}

var migArgsPool sync.Pool

func getMigArgs[E any]() *migArgs[E] {
	if v := migArgsPool.Get(); v != nil {
		if a, ok := v.(*migArgs[E]); ok {
			return a
		}
	}
	return new(migArgs[E])
}

func putMigArgs[E any](a *migArgs[E]) {
	*a = migArgs[E]{}
	migArgsPool.Put(a)
}

// MigrationOps is the registered-operation form of the phase-2 element
// transfer for one element type: with it in a MigrationSpec, redistribution
// traffic is self-decoding (runs across process boundaries) instead of
// carrying Go closures.  Obtain one per element type from
// RegisterMigrationOps and cache it — registration names must be unique.
type MigrationOps[E any] struct {
	name string
	op   runtime.OpID
}

// RegisterMigrationOps registers the phase-2 migration operation for one
// element type and returns its handle.  name must be unique and stable across
// cooperating processes (derive it from the element codec's name, never from
// registration order); registering the same name twice panics, so callers
// cache the result per element type.
func RegisterMigrationOps[E any](name string, elem transport.Codec[E]) *MigrationOps[E] {
	codec := transport.Codec[*migArgs[E]]{
		Name: name + "/migrate-args",
		Encode: func(b *transport.Buffer, a *migArgs[E]) {
			b.PutVarint(int64(a.bcid))
			elem.Encode(b, a.elem)
		},
		Decode: func(b *transport.Buffer) *migArgs[E] {
			a := getMigArgs[E]()
			a.bcid = partition.BCID(b.Varint())
			a.elem = elem.Decode(b)
			return a
		},
	}
	o := &MigrationOps[E]{name: name}
	o.op = runtime.RegisterOp(name+"/migrate", codec,
		func(obj any, _ *runtime.Location, a *migArgs[E]) {
			obj.(migSink[E]).recvMig(a.bcid, a.elem)
			putMigArgs(a)
		},
		putMigArgs[E])
	return o
}

// RunMigration executes the collective redistribution protocol described by
// spec.  Every location must call it with an equivalent spec (the usual SPMD
// discipline); the container must be quiescent (no element methods in
// flight — callers typically fence first).
func RunMigration[E any, B BContainer](loc *runtime.Location, spec MigrationSpec[E, B]) {
	self := loc.ID()

	// Phase 1: staging storage and collective registration.
	staging := make(map[partition.BCID]B, len(spec.NewLocal))
	for _, b := range spec.NewLocal {
		staging[b] = spec.Alloc(b)
	}
	m := &migrator[E, B]{staging: staging, place: spec.Place}
	h := loc.RegisterObject(m)
	loc.Barrier()

	// Phase 2: route every locally stored element to its new owner.
	spec.Enumerate(func(e E) {
		b, owner := spec.Route(e)
		if owner == self {
			m.recv(b, e)
			return
		}
		var bytes int
		if spec.Bytes != nil {
			bytes = spec.Bytes(e)
		} else {
			bytes = loc.PayloadBytes(e)
		}
		if spec.Ops != nil {
			a := getMigArgs[E]()
			a.bcid, a.elem = b, e
			loc.AsyncRMIOpSized(owner, h, bytes, spec.Ops.op, a)
			return
		}
		loc.AsyncRMISized(owner, h, bytes, func(obj any, _ *runtime.Location) {
			obj.(*migrator[E, B]).recv(b, e)
		})
	})
	loc.Fence()

	// Phase 3: install the staged storage, retire the migration target.
	lm := NewLocationManager[B]()
	for _, b := range spec.NewLocal {
		lm.Add(staging[b])
	}
	spec.Install(lm)
	loc.UnregisterObject(h)
	loc.Barrier()
}

// IndexedElem is the element record shipped by indexed-container
// redistributions: a GID and its value.
type IndexedElem[T any] struct {
	GID int64
	Val T
}

// IndexedStore is the base-container surface an indexed redistribution
// needs: per-GID stores into the staging storage and enumeration of the
// current elements.  *bcontainer.Array[T] and *bcontainer.Vector[T] satisfy
// it.
type IndexedStore[T any] interface {
	BContainer
	Set(gid int64, val T)
	Range(fn func(gid int64, val T) bool)
}

// ElemBytes returns the simulated marshalled size of one indexed element of
// type T: the 8-byte GID plus the in-memory size of the value.
func ElemBytes[T any]() int {
	var t T
	return 8 + int(unsafe.Sizeof(t))
}

// Per-value-type cache of the indexed migration registration: one
// registration serves every indexed container at the same T (the name derives
// from the codec name, stable across processes), and a T without a typed
// codec caches nil — the closure fallback.
var (
	idxMigMu  sync.Mutex
	idxMigReg = map[reflect.Type]any{} // *MigrationOps[IndexedElem[T]] per T; nil when T has no codec
)

// indexedMigOpsFor returns the registered migration operation for
// IndexedElem[T], or nil when T has no typed codec.
func indexedMigOpsFor[T any]() *MigrationOps[IndexedElem[T]] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	idxMigMu.Lock()
	defer idxMigMu.Unlock()
	if v, ok := idxMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*MigrationOps[IndexedElem[T]])
	}
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		idxMigReg[t] = nil
		return nil
	}
	o := RegisterMigrationOps("core.indexed["+codec.Name+"]", transport.Codec[IndexedElem[T]]{
		Name: "core.indexed-elem[" + codec.Name + "]",
		Encode: func(b *transport.Buffer, v IndexedElem[T]) {
			b.PutVarint(v.GID)
			codec.Encode(b, v.Val)
		},
		Decode: func(b *transport.Buffer) IndexedElem[T] {
			return IndexedElem[T]{GID: b.Varint(), Val: codec.Decode(b)}
		},
	})
	idxMigReg[t] = o
	return o
}

// RedistributeIndexed migrates the elements of a one-dimensional indexed
// container (pArray, pVector) into freshly allocated storage for (newPart,
// newMapper) and hands the completed location manager to install, which
// must also swap in the container's new resolver and metadata.  Collective.
func RedistributeIndexed[T any, B IndexedStore[T]](
	c *Container[int64, B],
	newPart partition.Indexed,
	newMapper partition.Mapper,
	alloc func(b partition.BCID, dom domain.Range1D) B,
	install func(lm *LocationManager[B]),
) {
	loc := c.Location()
	elemBytes := ElemBytes[T]()
	RunMigration(loc, MigrationSpec[IndexedElem[T], B]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc:    func(b partition.BCID) B { return alloc(b, newPart.SubDomain(b)) },
		Enumerate: func(emit func(IndexedElem[T])) {
			c.ForEachLocalBC(Read, func(bc B) {
				bc.Range(func(gid int64, val T) bool {
					emit(IndexedElem[T]{GID: gid, Val: val})
					return true
				})
			})
		},
		Route: func(e IndexedElem[T]) (partition.BCID, int) {
			info := newPart.Find(e.GID)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place:   func(bc B, e IndexedElem[T]) { bc.Set(e.GID, e.Val) },
		Bytes:   func(IndexedElem[T]) int { return elemBytes },
		Ops:     indexedMigOpsFor[T](),
		Install: install,
	})
}
