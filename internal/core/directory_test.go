package core

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

func newTestDirectory(loc *runtime.Location, cache bool) *Directory[int64] {
	d := NewDirectory(loc, DirectoryConfig[int64]{Hash: partition.Int64Hash, Cache: cache})
	loc.Barrier()
	return d
}

func TestDirectoryPublishAndLookup(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		d := newTestDirectory(loc, false)
		// Every location publishes entries owned by itself.
		for g := int64(loc.ID()); g < 40; g += int64(loc.NumLocations()) {
			d.Publish(g, partition.BCID(loc.ID()))
		}
		loc.Fence()
		// Every location sees every entry through the home.
		for g := int64(0); g < 40; g++ {
			owner, ok := d.LookupOwner(g)
			if !ok || int(owner) != int(g)%loc.NumLocations() {
				t.Errorf("entry %d = %d,%v", g, owner, ok)
			}
		}
		if _, ok := d.LookupOwner(999); ok {
			t.Error("unpublished GID found")
		}
		// Entries are sliced over the homes, none lost.
		total := runtime.AllReduceSum(loc, int64(d.LocalEntries()))
		if total != 40 {
			t.Errorf("total entries = %d, want 40", total)
		}
		loc.Fence()
	})
}

func TestDirectoryPublishBulkAndUnpublish(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		d := newTestDirectory(loc, false)
		if loc.ID() == 0 {
			gids := make([]int64, 100)
			for i := range gids {
				gids[i] = int64(i)
			}
			d.PublishBulk(gids, partition.BCID(2))
		}
		loc.Fence()
		for g := int64(0); g < 100; g += 17 {
			if owner, ok := d.LookupOwner(g); !ok || owner != 2 {
				t.Errorf("bulk entry %d = %d,%v", g, owner, ok)
			}
		}
		loc.Barrier()
		if loc.ID() == 3 {
			d.Unpublish(5)
		}
		loc.Fence()
		if _, ok := d.LookupOwner(5); ok {
			t.Error("unpublished entry still present")
		}
		loc.Fence()
	})
}

func TestDirectoryResolveSemantics(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		d := newTestDirectory(loc, false)
		const g = int64(7)
		home := d.HomeOf(g)
		if loc.ID() == 0 {
			d.Publish(g, partition.BCID(3))
		}
		loc.Fence()
		info := d.Resolve(g)
		if loc.ID() == home {
			if !info.Valid || info.BCID != 3 {
				t.Errorf("home resolution = %+v", info)
			}
			// A GID the directory has never seen resolves to the home as
			// owner of record.
			miss := d.Resolve(int64(1 << 30))
			if !miss.Valid {
				t.Errorf("unknown GID at home should resolve to the home: %+v", miss)
			}
		} else {
			// Without a cache, non-home locations always forward to the home.
			if info.Valid || info.Hint != home {
				t.Errorf("non-home resolution = %+v, want forward to %d", info, home)
			}
		}
		loc.Fence()
	})
}

func TestDirectoryCacheFillAndHit(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		d := newTestDirectory(loc, true)
		const g = int64(11)
		home := d.HomeOf(g)
		owner := (home + 1) % loc.NumLocations()
		if loc.ID() == home {
			d.Publish(g, partition.BCID(owner))
		}
		loc.Fence()
		if loc.ID() != home && loc.ID() != owner {
			// First resolution misses and forwards; the asynchronous fill
			// lands by the fence at the latest.
			if info := d.Resolve(g); info.Valid {
				t.Errorf("cold resolution = %+v, want forward", info)
			}
		}
		loc.Fence()
		if loc.ID() != home && loc.ID() != owner {
			info := d.Resolve(g)
			if !info.Valid || !info.Cached || int(info.BCID) != owner {
				t.Errorf("warm resolution = %+v, want cached owner %d", info, owner)
			}
			hits, misses, size := d.CacheStats()
			if hits == 0 || misses == 0 || size != 1 {
				t.Errorf("cache stats = %d/%d/%d", hits, misses, size)
			}
		}
		loc.Fence()
	})
}

func TestDirectoryEpochInvalidatesCache(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		d := newTestDirectory(loc, true)
		const g = int64(3)
		home := d.HomeOf(g)
		owner := (home + 1) % loc.NumLocations()
		if loc.ID() == home {
			d.Publish(g, partition.BCID(owner))
		}
		loc.Fence()
		d.Resolve(g) // warm (or at least request the fill)
		loc.Fence()
		before := d.Epoch()
		// Every location must have recorded its pre-update epoch before the
		// updater's bump broadcast can land anywhere.
		loc.Barrier()
		// An ownership update bumps every location's epoch and clears the
		// caches; subsequent resolutions see the new owner via the home.
		newOwner := (home + 2) % loc.NumLocations()
		if loc.ID() == 0 {
			d.Update(g, partition.BCID(newOwner))
		}
		loc.Fence()
		if d.Epoch() == before {
			t.Errorf("epoch did not advance after Update")
		}
		if _, _, size := d.CacheStats(); size != 0 {
			t.Errorf("cache not cleared after Update: %d entries", size)
		}
		if owner, ok := d.LookupOwner(g); !ok || int(owner) != newOwner {
			t.Errorf("updated entry = %d,%v want %d", owner, ok, newOwner)
		}
		loc.Fence()
	})
}

func TestDirectoryStaleSelfEntryIsDropped(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		d := newTestDirectory(loc, true)
		const g = int64(9)
		home := d.HomeOf(g)
		other := 1 - home
		if loc.ID() == other {
			// Plant a stale entry naming this location itself (as if the
			// element migrated away mid-flight).  Resolve only runs after
			// the local fast path failed, so the entry must be treated as
			// stale and dropped, falling back to the home.
			d.cacheMu.Lock()
			d.cache[g] = partition.BCID(other)
			d.cacheMu.Unlock()
			info := d.Resolve(g)
			if info.Valid || info.Hint != home {
				t.Errorf("self-pointing cache entry not dropped: %+v", info)
			}
		}
		loc.Fence()
	})
}

func TestDirectoryFillRefusesSelfEntries(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		d := newTestDirectory(loc, true)
		const g = int64(9)
		home := d.HomeOf(g)
		other := 1 - home
		if loc.ID() == home {
			d.Publish(g, partition.BCID(other))
		}
		loc.Fence()
		if loc.ID() == other {
			d.Resolve(g) // triggers a fill whose answer names this location
		}
		loc.Fence()
		if loc.ID() == other {
			// Local elements resolve through the container's fast path, not
			// the cache, so the fill must not have installed the entry.
			if _, _, size := d.CacheStats(); size != 0 {
				t.Errorf("fill installed a self-pointing entry (%d cached)", size)
			}
		}
		loc.Fence()
	})
}

func TestDirectoryRequiresHashOrHome(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "Hash or Home") {
				t.Errorf("constructor did not reject empty config: %v", r)
			}
		}()
		NewDirectory[int64](loc, DirectoryConfig[int64]{})
	})
}

func TestDirectoryRMIsAccounted(t *testing.T) {
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		d := newTestDirectory(loc, true)
		for g := int64(0); g < 32; g++ {
			if d.HomeOf(g) != loc.ID() {
				continue
			}
			d.Publish(g, partition.BCID(loc.ID()))
		}
		loc.Fence()
		// Remote resolutions trigger cache fills, which are directory RMIs.
		for g := int64(0); g < 32; g++ {
			d.Resolve(g)
		}
		loc.Fence()
	})
	if m.Stats().DirectoryRMIs == 0 {
		t.Error("directory maintenance traffic not accounted")
	}
}
