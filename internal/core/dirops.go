package core

import (
	"reflect"
	"sync"

	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Registered-operation forms of the directory maintenance RMIs.  When the GID
// type has a wire codec (transport.RegisterTyped), Publish / PublishBulk /
// Unpublish / Update traffic travels as self-decoding frames — executable
// across process boundaries — instead of Go closures; a GID type without a
// codec keeps the closure paths unchanged.  Counter behaviour is identical
// either way (the Op RMI variants account exactly like their closure twins,
// and the DirectoryRMIs attribution stays with the callers).
//
// One registration serves every Directory instantiated at the same GID type:
// the operation names derive from the codec name (stable across processes and
// registration order) and the per-type result is cached, like the containers'
// element-operation registrations.

// dirEntryArgs is one publish/unpublish/update request: a GID and its owner.
type dirEntryArgs[G comparable] struct {
	gid   G
	owner partition.BCID
}

// dirBulkArgs is one batched publish request: a group of GIDs homed on the
// destination, all owned by one sub-domain.
type dirBulkArgs[G comparable] struct {
	gids  []G
	owner partition.BCID
}

// dirOps is the registered operation set of one GID type.
type dirOps[G comparable] struct {
	publish     runtime.OpID
	publishBulk runtime.OpID
	unpublish   runtime.OpID
	update      runtime.OpID
	bump        runtime.OpID
}

var (
	dirOpsMu  sync.Mutex
	dirOpsReg = map[reflect.Type]any{} // *dirOps[G] per G; nil when G has no codec
)

// emptyArgsCodec marshals the argument-less broadcast requests (epoch bumps).
var emptyArgsCodec = transport.Codec[struct{}]{
	Name:   "core.directory/empty-args",
	Encode: func(*transport.Buffer, struct{}) {},
	Decode: func(*transport.Buffer) struct{} { return struct{}{} },
}

// dirOpsFor returns the registered directory operations for GID type G, or
// nil when G has no typed codec (closure fallback).
func dirOpsFor[G comparable]() *dirOps[G] {
	t := reflect.TypeOf((*G)(nil)).Elem()
	dirOpsMu.Lock()
	defer dirOpsMu.Unlock()
	if v, ok := dirOpsReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*dirOps[G])
	}
	codec, ok := transport.TypedCodecFor[G]()
	if !ok {
		dirOpsReg[t] = nil
		return nil
	}
	name := "core.directory[" + codec.Name + "]"
	entryCodec := transport.Codec[dirEntryArgs[G]]{
		Name: name + "/entry-args",
		Encode: func(b *transport.Buffer, a dirEntryArgs[G]) {
			codec.Encode(b, a.gid)
			b.PutVarint(int64(a.owner))
		},
		Decode: func(b *transport.Buffer) dirEntryArgs[G] {
			return dirEntryArgs[G]{gid: codec.Decode(b), owner: partition.BCID(b.Varint())}
		},
	}
	bulkCodec := transport.Codec[dirBulkArgs[G]]{
		Name: name + "/bulk-args",
		Encode: func(b *transport.Buffer, a dirBulkArgs[G]) {
			b.PutUvarint(uint64(len(a.gids)))
			for _, gid := range a.gids {
				codec.Encode(b, gid)
			}
			b.PutVarint(int64(a.owner))
		},
		Decode: func(b *transport.Buffer) dirBulkArgs[G] {
			n := b.Uvarint()
			if n > uint64(b.Remaining()) {
				b.Fail("directory bulk publish: %d entries, %d bytes left", n, b.Remaining())
				return dirBulkArgs[G]{}
			}
			gids := make([]G, n)
			for i := range gids {
				gids[i] = codec.Decode(b)
			}
			return dirBulkArgs[G]{gids: gids, owner: partition.BCID(b.Varint())}
		},
	}
	o := &dirOps[G]{}
	o.publish = runtime.RegisterOp(name+"/publish", entryCodec,
		func(obj any, _ *runtime.Location, a dirEntryArgs[G]) {
			obj.(*Directory[G]).set(a.gid, a.owner)
		}, nil)
	o.publishBulk = runtime.RegisterOp(name+"/publish-bulk", bulkCodec,
		func(obj any, _ *runtime.Location, a dirBulkArgs[G]) {
			od := obj.(*Directory[G])
			od.mu.Lock()
			for _, gid := range a.gids {
				od.entries[gid] = a.owner
			}
			od.mu.Unlock()
		}, nil)
	o.unpublish = runtime.RegisterOp(name+"/unpublish", entryCodec,
		func(obj any, _ *runtime.Location, a dirEntryArgs[G]) {
			od := obj.(*Directory[G])
			od.mu.Lock()
			delete(od.entries, a.gid)
			od.mu.Unlock()
		}, nil)
	o.update = runtime.RegisterOp(name+"/update", entryCodec,
		func(obj any, _ *runtime.Location, a dirEntryArgs[G]) {
			obj.(*Directory[G]).applyUpdate(a.gid, a.owner)
		}, nil)
	o.bump = runtime.RegisterOp(name+"/bump-epoch", emptyArgsCodec,
		func(obj any, _ *runtime.Location, _ struct{}) {
			obj.(*Directory[G]).BumpEpoch()
		}, nil)
	dirOpsReg[t] = o
	return o
}
