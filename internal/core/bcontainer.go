package core

import "repro/internal/partition"

// BContainer is the base-container concept of the PCF (Table III): the
// minimal interface a per-location storage unit must expose so the framework
// can manage it.  Concrete base containers (package bcontainer) add their
// own element-level interface (Get/Set, Insert/Erase, AddVertex, ...), which
// the owning pContainer accesses through typed invoke actions.
type BContainer interface {
	// BCID returns the sub-domain identifier this base container stores.
	BCID() partition.BCID
	// Size returns the number of elements currently stored.
	Size() int64
	// Empty reports whether the base container holds no elements.
	Empty() bool
	// Clear removes all elements.
	Clear()
	// MemoryBytes returns (data bytes, metadata bytes), the two components
	// the paper's memory_size() reports (Tables XXII/XXIII).
	MemoryBytes() (data, meta int64)
}

// LocationManager is the per-location registry of base containers
// (Table IV).  Each pContainer representative owns one; it maps the BCIDs
// assigned to this location to their storage.
//
// The location manager itself is not safe for concurrent mutation: base
// containers are added during collective construction or under the
// container's metadata lock.
type LocationManager[B BContainer] struct {
	order []partition.BCID
	bcs   map[partition.BCID]B
}

// NewLocationManager returns an empty location manager.
func NewLocationManager[B BContainer]() *LocationManager[B] {
	return &LocationManager[B]{bcs: make(map[partition.BCID]B)}
}

// Add registers a base container under its BCID.
func (lm *LocationManager[B]) Add(b B) {
	id := b.BCID()
	if _, dup := lm.bcs[id]; dup {
		panic("core: duplicate bContainer registration")
	}
	lm.bcs[id] = b
	lm.order = append(lm.order, id)
}

// Remove deletes the base container with the given BCID, if present.
func (lm *LocationManager[B]) Remove(id partition.BCID) {
	if _, ok := lm.bcs[id]; !ok {
		return
	}
	delete(lm.bcs, id)
	for i, x := range lm.order {
		if x == id {
			lm.order = append(lm.order[:i], lm.order[i+1:]...)
			break
		}
	}
}

// Get returns the base container with the given BCID.
func (lm *LocationManager[B]) Get(id partition.BCID) (B, bool) {
	b, ok := lm.bcs[id]
	return b, ok
}

// MustGet returns the base container with the given BCID and panics if it is
// not managed by this location.
func (lm *LocationManager[B]) MustGet(id partition.BCID) B {
	b, ok := lm.bcs[id]
	if !ok {
		panic("core: bContainer not on this location")
	}
	return b
}

// NumBContainers returns how many base containers live on this location.
func (lm *LocationManager[B]) NumBContainers() int { return len(lm.order) }

// BCIDs returns the locally managed BCIDs in registration order.
func (lm *LocationManager[B]) BCIDs() []partition.BCID {
	return append([]partition.BCID(nil), lm.order...)
}

// ForEach applies fn to every local base container in registration order.
func (lm *LocationManager[B]) ForEach(fn func(B)) {
	for _, id := range lm.order {
		fn(lm.bcs[id])
	}
}

// LocalSize sums the sizes of all local base containers.
func (lm *LocationManager[B]) LocalSize() int64 {
	var n int64
	for _, id := range lm.order {
		n += lm.bcs[id].Size()
	}
	return n
}

// Clear clears every local base container (the elements, not the registry).
func (lm *LocationManager[B]) Clear() {
	for _, id := range lm.order {
		lm.bcs[id].Clear()
	}
}

// MemoryBytes sums the data and metadata footprint of all local base
// containers and adds the registry's own metadata.
func (lm *LocationManager[B]) MemoryBytes() (data, meta int64) {
	for _, id := range lm.order {
		d, m := lm.bcs[id].MemoryBytes()
		data += d
		meta += m
	}
	meta += int64(len(lm.order)) * 16 // registry entries
	return data, meta
}
