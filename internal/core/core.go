// Package core implements the STAPL Parallel Container Framework (PCF), the
// primary contribution of the paper: the machinery that turns a collection
// of per-location base containers into a single globally addressable,
// thread-safe, distributed pContainer.
//
// The package provides
//
//   - the bContainer concept (Table III): the minimal interface any storage
//     (sequential or concurrent) must implement to be used by a pContainer;
//   - the location manager (Table IV): the per-location registry of base
//     containers;
//   - the thread-safety manager (Chapter VI): pluggable locking policies at
//     element, bContainer, or location granularity;
//   - the data-distribution manager (Table X, Fig. 8): the generic invoke
//     skeleton that resolves a GID to its owning location and bContainer,
//     executes the requested action there — locally when possible, through
//     an RMI otherwise — and supports method forwarding when the home of a
//     GID is not known locally;
//   - the distributed directory (directory.go): the explicit-ownership
//     resolution scheme for containers whose placement is not computable,
//     with home-hashed entries, a per-location resolution cache under
//     epoch invalidation, and an element-migration service layered on the
//     shared redistribution engine;
//   - the pContainer base (Table XI): SPMD-collective construction and
//     registration with the RTS, global size and memory accounting, and the
//     traits used to customise all of the above per container instance.
//
// Concrete containers (pArray, pList, pGraph, ...) in internal/containers
// embed core.Container and express their methods as calls to Invoke /
// InvokeRet / InvokeSplit with container-specific actions, exactly as the
// paper's containers route their methods through the distribution manager.
package core
