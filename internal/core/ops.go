package core

import (
	"fmt"
	"sync"

	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// This file ports the distribution manager's element and bulk method
// skeletons to REGISTERED operations (see internal/runtime/ops.go): instead
// of shipping a Go closure per hop, the ported paths ship a pooled,
// Codec-encodable argument under a stable operation ID, so the request is
// self-decoding on wire transports and can cross a process boundary.
//
// Every path mirrors its closure twin counter-for-counter — same resolution
// brackets, same RMI flavour, same simulated byte sizes, same reply
// accounting — so an experiment's Stats are identical whichever route a
// container takes, and identical across transports (the counter-identity
// invariant the equivalence suite pins).
//
// Value-returning operations cannot carry a *Future across a process
// boundary; on a self-decoding transport the origin parks a completion
// callback under a per-location token (Location.RegisterToken) and the
// owning location answers with Location.ReplyOp.  On in-process delivery the
// future/tracker pointers ride inside the argument exactly like the closure
// paths, keeping behaviour and counters bit-identical to the pre-port code.

// ElemOps is one container family's registered element operations at a fixed
// element type: asynchronous set, synchronous get, and their bulk
// counterparts.  Construct it once per (container family, element type) with
// RegisterElemOps — typically cached per element type by the container
// package — and route the container's Set/Get/SetBulk/GetBulk through it.
type ElemOps[G any, B BContainer, V any] struct {
	name     string
	setApply func(loc *runtime.Location, bc B, gid G, v V)
	getApply func(loc *runtime.Location, bc B, gid G) V

	set     runtime.OpID
	get     runtime.OpID
	bulkSet runtime.OpID
	bulkGet runtime.OpID
}

// Name returns the registration name prefix.
func (o *ElemOps[G, B, V]) Name() string { return o.name }

// OpIDs returns the four registered operation IDs (set, get, bulk-set,
// bulk-get) for tests and diagnostics.
func (o *ElemOps[G, B, V]) OpIDs() [4]runtime.OpID {
	return [4]runtime.OpID{o.set, o.get, o.bulkSet, o.bulkGet}
}

// Pooled argument records.  Ownership follows the request: a locally applied
// argument is recycled by the hop that consumed it, a shipped argument
// belongs to the destination handler (in-process) or is recycled by the wire
// adapter after encoding (self-decoding sends).  The pools are untyped and
// shared across instantiations; a record that comes back under the wrong
// type parameters is dropped for the GC, like bulkArgsPool.

// esArgs is one element-set operation in flight.
type esArgs[G any, V any] struct {
	gid   G
	val   V
	bytes int
	hops  int
}

// egArgs is one element-get operation in flight.  fut rides only through
// in-process delivery; on a self-decoding transport the (origin, token) pair
// identifies the completion instead and fut stays nil at the destination.
type egArgs[G any, V any] struct {
	gid    G
	hops   int
	origin int
	token  uint64
	fut    *runtime.Future // never encoded
}

// bsArgs is one shipped bulk-set group: compact parallel slices owned by the
// record.
type bsArgs[G any, V any] struct {
	gids       []G
	vals       []V
	bytesPerOp int
	hops       int
}

// bgArgs is one shipped bulk-get group.  poss maps each element to its
// position in the origin's result slice.  out/tr ride only through
// in-process delivery (like egArgs.fut); over the wire the (origin, token)
// pair routes the gathered values home.
type bgArgs[G any, V any] struct {
	gids       []G
	poss       []int
	bytesPerOp int
	hops       int
	origin     int
	token      uint64
	out        []V          // never encoded
	tr         *bulkTracker // never encoded
}

// bgRet is one bulk-get reply: the gathered values plus their positions in
// the origin's result slice.
type bgRet[V any] struct {
	poss []int
	vals []V
}

var (
	esArgsPool sync.Pool
	egArgsPool sync.Pool
	bsArgsPool sync.Pool
	bgArgsPool sync.Pool
	bgRetPool  sync.Pool
)

func getEsArgs[G any, V any]() *esArgs[G, V] {
	if v := esArgsPool.Get(); v != nil {
		if a, ok := v.(*esArgs[G, V]); ok {
			return a
		}
	}
	return new(esArgs[G, V])
}

func putEsArgs[G any, V any](a *esArgs[G, V]) {
	*a = esArgs[G, V]{}
	esArgsPool.Put(a)
}

func getEgArgs[G any, V any]() *egArgs[G, V] {
	if v := egArgsPool.Get(); v != nil {
		if a, ok := v.(*egArgs[G, V]); ok {
			return a
		}
	}
	return new(egArgs[G, V])
}

func putEgArgs[G any, V any](a *egArgs[G, V]) {
	*a = egArgs[G, V]{}
	egArgsPool.Put(a)
}

func getBsArgs[G any, V any]() *bsArgs[G, V] {
	if v := bsArgsPool.Get(); v != nil {
		if a, ok := v.(*bsArgs[G, V]); ok {
			return a
		}
	}
	return new(bsArgs[G, V])
}

func putBsArgs[G any, V any](a *bsArgs[G, V]) {
	// Truncate rather than reallocate: the compact slices' capacity is the
	// point of pooling.  Stale elements are overwritten by the next fill.
	a.gids = a.gids[:0]
	a.vals = a.vals[:0]
	a.bytesPerOp, a.hops = 0, 0
	bsArgsPool.Put(a)
}

func getBgArgs[G any, V any]() *bgArgs[G, V] {
	if v := bgArgsPool.Get(); v != nil {
		if a, ok := v.(*bgArgs[G, V]); ok {
			return a
		}
	}
	return new(bgArgs[G, V])
}

func putBgArgs[G any, V any](a *bgArgs[G, V]) {
	a.gids = a.gids[:0]
	a.poss = a.poss[:0]
	a.bytesPerOp, a.hops, a.origin, a.token = 0, 0, 0, 0
	a.out, a.tr = nil, nil
	bgArgsPool.Put(a)
}

func getBgRet[V any]() *bgRet[V] {
	if v := bgRetPool.Get(); v != nil {
		if r, ok := v.(*bgRet[V]); ok {
			return r
		}
	}
	return new(bgRet[V])
}

func putBgRet[V any](r *bgRet[V]) {
	r.poss = r.poss[:0]
	r.vals = r.vals[:0]
	bgRetPool.Put(r)
}

// RegisterElemOps registers the four element operations of one container
// family at one element type and returns their handle set.  name must be
// unique and stable across cooperating processes (derive it from the codec
// names, never from registration order); registering the same name twice
// panics, so callers cache the result per element type.  setApply/getApply
// run at the owning base container under the container's data bracket.
func RegisterElemOps[G any, B BContainer, V any](
	name string,
	gidCodec transport.Codec[G],
	valCodec transport.Codec[V],
	setApply func(loc *runtime.Location, bc B, gid G, v V),
	getApply func(loc *runtime.Location, bc B, gid G) V,
) *ElemOps[G, B, V] {
	o := &ElemOps[G, B, V]{name: name, setApply: setApply, getApply: getApply}

	esCodec := transport.Codec[*esArgs[G, V]]{
		Name: name + "/set-args",
		Encode: func(b *transport.Buffer, a *esArgs[G, V]) {
			gidCodec.Encode(b, a.gid)
			valCodec.Encode(b, a.val)
			b.PutVarint(int64(a.bytes))
			b.PutVarint(int64(a.hops))
		},
		Decode: func(b *transport.Buffer) *esArgs[G, V] {
			a := getEsArgs[G, V]()
			a.gid = gidCodec.Decode(b)
			a.val = valCodec.Decode(b)
			a.bytes = int(b.Varint())
			a.hops = int(b.Varint())
			return a
		},
	}
	o.set = runtime.RegisterOp(name+"/set", esCodec,
		func(obj any, _ *runtime.Location, a *esArgs[G, V]) {
			o.setHop(obj.(*Container[G, B]), a)
		}, putEsArgs[G, V])

	egCodec := transport.Codec[*egArgs[G, V]]{
		Name: name + "/get-args",
		Encode: func(b *transport.Buffer, a *egArgs[G, V]) {
			gidCodec.Encode(b, a.gid)
			b.PutVarint(int64(a.hops))
			b.PutVarint(int64(a.origin))
			b.PutUvarint(a.token)
		},
		Decode: func(b *transport.Buffer) *egArgs[G, V] {
			a := getEgArgs[G, V]()
			a.gid = gidCodec.Decode(b)
			a.hops = int(b.Varint())
			a.origin = int(b.Varint())
			a.token = b.Uvarint()
			return a
		},
	}
	o.get = runtime.RegisterOpRet(name+"/get", egCodec, valCodec,
		func(obj any, _ *runtime.Location, a *egArgs[G, V]) {
			o.getHop(obj.(*Container[G, B]), a)
		}, putEgArgs[G, V])

	bsCodec := transport.Codec[*bsArgs[G, V]]{
		Name: name + "/bulk-set-args",
		Encode: func(b *transport.Buffer, a *bsArgs[G, V]) {
			b.PutUvarint(uint64(len(a.gids)))
			for i := range a.gids {
				gidCodec.Encode(b, a.gids[i])
				valCodec.Encode(b, a.vals[i])
			}
			b.PutVarint(int64(a.bytesPerOp))
			b.PutVarint(int64(a.hops))
		},
		Decode: func(b *transport.Buffer) *bsArgs[G, V] {
			a := getBsArgs[G, V]()
			n := int(b.Uvarint())
			for i := 0; i < n; i++ {
				if b.Err() != nil {
					break
				}
				a.gids = append(a.gids, gidCodec.Decode(b))
				a.vals = append(a.vals, valCodec.Decode(b))
			}
			a.bytesPerOp = int(b.Varint())
			a.hops = int(b.Varint())
			return a
		},
	}
	o.bulkSet = runtime.RegisterOp(name+"/bulk-set", bsCodec,
		func(obj any, _ *runtime.Location, a *bsArgs[G, V]) {
			c := obj.(*Container[G, B])
			o.bulkSetHop(c, a.gids, a.vals, a.bytesPerOp, a.hops)
			putBsArgs(a)
		}, putBsArgs[G, V])

	bgCodec := transport.Codec[*bgArgs[G, V]]{
		Name: name + "/bulk-get-args",
		Encode: func(b *transport.Buffer, a *bgArgs[G, V]) {
			b.PutUvarint(uint64(len(a.gids)))
			for i := range a.gids {
				gidCodec.Encode(b, a.gids[i])
				b.PutVarint(int64(a.poss[i]))
			}
			b.PutVarint(int64(a.bytesPerOp))
			b.PutVarint(int64(a.hops))
			b.PutVarint(int64(a.origin))
			b.PutUvarint(a.token)
		},
		Decode: func(b *transport.Buffer) *bgArgs[G, V] {
			a := getBgArgs[G, V]()
			n := int(b.Uvarint())
			for i := 0; i < n; i++ {
				if b.Err() != nil {
					break
				}
				a.gids = append(a.gids, gidCodec.Decode(b))
				a.poss = append(a.poss, int(b.Varint()))
			}
			a.bytesPerOp = int(b.Varint())
			a.hops = int(b.Varint())
			a.origin = int(b.Varint())
			a.token = b.Uvarint()
			return a
		},
	}
	brCodec := transport.Codec[*bgRet[V]]{
		Name: name + "/bulk-get-ret",
		Encode: func(b *transport.Buffer, r *bgRet[V]) {
			b.PutUvarint(uint64(len(r.poss)))
			for i := range r.poss {
				b.PutVarint(int64(r.poss[i]))
				valCodec.Encode(b, r.vals[i])
			}
		},
		Decode: func(b *transport.Buffer) *bgRet[V] {
			r := getBgRet[V]()
			n := int(b.Uvarint())
			for i := 0; i < n; i++ {
				if b.Err() != nil {
					break
				}
				r.poss = append(r.poss, int(b.Varint()))
				r.vals = append(r.vals, valCodec.Decode(b))
			}
			return r
		},
	}
	o.bulkGet = runtime.RegisterOpRet(name+"/bulk-get", bgCodec, brCodec,
		func(obj any, _ *runtime.Location, a *bgArgs[G, V]) {
			c := obj.(*Container[G, B])
			o.bulkGetHop(c, a.gids, a.poss, a.bytesPerOp, a.hops, a.origin, a.token, a.out, a.tr)
			putBgArgs(a)
		}, putBgArgs[G, V])

	return o
}

// Set stores v at gid asynchronously: the registered twin of
// Container.InvokeSized with a write action (same resolution, same RMI
// flavour, same bytes).
func (o *ElemOps[G, B, V]) Set(c *Container[G, B], gid G, v V, bytes int) {
	if c.Sequential() {
		// Asynchronous methods execute synchronously under the sequential
		// model, exactly like InvokeSized's fallback.
		c.InvokeRet(gid, Write, func(loc *runtime.Location, bc B) any {
			o.setApply(loc, bc, gid, v)
			return nil
		})
		return
	}
	a := getEsArgs[G, V]()
	a.gid, a.val, a.bytes, a.hops = gid, v, bytes, 0
	o.setHop(c, a)
}

// setHop performs one resolution step of a registered set, mirroring
// invokeHop: local elements apply in place under the data bracket (no
// counters), everything else ships the argument onward under the set op.
func (o *ElemOps[G, B, V]) setHop(c *Container[G, B], a *esArgs[G, V]) {
	if a.hops > maxForwardHops {
		panic(fmt.Sprintf("core: invocation for GID %v forwarded more than %d times", a.gid, maxForwardHops))
	}
	dest, info := c.resolve(a.gid)
	if info.Valid && dest == c.loc.ID() {
		if bc, ok := c.locMgr.Get(info.BCID); ok {
			c.ths.DataAccessPre(info.BCID, Write)
			o.setApply(c.loc, bc, a.gid, a.val)
			c.ths.DataAccessPost(info.BCID, Write)
			putEsArgs(a)
			return
		}
	}
	if dest == c.loc.ID() && !info.Valid {
		panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", a.gid))
	}
	a.hops++
	c.loc.AsyncRMIOpSized(dest, c.handle, a.bytes, o.set, a)
}

// Get returns the element at gid synchronously: the registered twin of
// Container.InvokeRet with a read action.
func (o *ElemOps[G, B, V]) Get(c *Container[G, B], gid G) V {
	return o.GetSplit(c, gid).Get().(V)
}

// GetSplit starts a split-phase registered read and returns a future for its
// value.  On a self-decoding transport the completion travels home as a
// KindReply frame addressed by a registered token; on in-process delivery
// the future pointer rides inside the argument like the closure path.
func (o *ElemOps[G, B, V]) GetSplit(c *Container[G, B], gid G) *runtime.Future {
	fut := c.loc.NewAbortableFuture()
	a := getEgArgs[G, V]()
	a.gid = gid
	if c.loc.SelfDecodingTransport() {
		a.origin = c.loc.ID()
		a.token = c.loc.RegisterToken(func(v any) bool {
			fut.Complete(v)
			return true
		})
	} else {
		a.fut = fut
	}
	o.getHop(c, a)
	return fut
}

// getHop performs one resolution step of a registered get, mirroring
// invokeReplyHop: at the owner the value is read under the data bracket, the
// reply traffic accounted when the request travelled (hops > 0), and the
// completion routed through the future or the reply op.
func (o *ElemOps[G, B, V]) getHop(c *Container[G, B], a *egArgs[G, V]) {
	if a.hops > maxForwardHops {
		panic(fmt.Sprintf("core: invocation for GID %v forwarded more than %d times", a.gid, maxForwardHops))
	}
	dest, info := c.resolve(a.gid)
	if info.Valid && dest == c.loc.ID() {
		if bc, ok := c.locMgr.Get(info.BCID); ok {
			c.ths.DataAccessPre(info.BCID, Read)
			v := o.getApply(c.loc, bc, a.gid)
			c.ths.DataAccessPost(info.BCID, Read)
			if a.hops > 0 {
				// The result travels back to the issuing location: one
				// response message carrying the marshalled value.
				c.loc.AccountReply(runtime.PayloadBytes(v))
			}
			if a.fut != nil {
				a.fut.Complete(v)
			} else {
				c.loc.ReplyOp(a.origin, c.handle, o.get, a.token, v)
			}
			putEgArgs(a)
			return
		}
	}
	if dest == c.loc.ID() && !info.Valid {
		panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", a.gid))
	}
	a.hops++
	c.loc.AsyncRMIUrgentOp(dest, c.handle, o.get, a)
}

// SetBulk stores vals[k] at gids[k] for every k, asynchronously: the
// registered twin of Container.InvokeBulk with a write action.  Both slices
// are the caller's; shipped groups copy their subsets into pooled records,
// so the caller's slices are not retained past the call.
func (o *ElemOps[G, B, V]) SetBulk(c *Container[G, B], gids []G, vals []V, bytesPerOp int) {
	if len(gids) == 0 {
		return
	}
	if c.Sequential() {
		c.InvokeBulkSync(gids, Write, bytesPerOp, func(loc *runtime.Location, bc B, k int) {
			o.setApply(loc, bc, gids[k], vals[k])
		})
		return
	}
	o.bulkSetHop(c, gids, vals, bytesPerOp, 0)
}

// bulkSetHop performs one resolution step of a registered bulk set over
// compact parallel slices, mirroring bulkHop: one metadata bracket resolves
// the whole batch, local groups apply under one data bracket per base
// container, and every other group ships ONE self-decoding bulk request
// carrying its subset.
func (o *ElemOps[G, B, V]) bulkSetHop(c *Container[G, B], gids []G, vals []V, bytesPerOp, hops int) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: bulk invocation forwarded more than %d times", maxForwardHops))
	}
	self := c.loc.ID()
	s := o.bulkResolveGroups(c, gids)
	defer putBulkScratch(s)
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.dest == self && g.bcid >= 0 {
			bc, ok := c.locMgr.Get(g.bcid)
			if !ok {
				// Metadata says local but the storage moved (transient
				// redistribution window): retry the group as a forward.
				o.shipSetGroup(c, self, gids, vals, g.idxs, bytesPerOp, hops+1)
				putBulkIdxs(g.idxs)
				g.idxs = nil
				continue
			}
			c.ths.DataAccessPre(g.bcid, Write)
			for _, k := range g.idxs {
				o.setApply(c.loc, bc, gids[k], vals[k])
			}
			c.ths.DataAccessPost(g.bcid, Write)
			putBulkIdxs(g.idxs)
			g.idxs = nil
			continue
		}
		o.shipSetGroup(c, g.dest, gids, vals, g.idxs, bytesPerOp, hops+1)
		putBulkIdxs(g.idxs)
		g.idxs = nil
	}
}

// shipSetGroup copies one group's subset into a pooled record and ships it
// as one sized bulk request under the bulk-set op.
func (o *ElemOps[G, B, V]) shipSetGroup(c *Container[G, B], dest int, gids []G, vals []V, group []int, bytesPerOp, hops int) {
	a := getBsArgs[G, V]()
	for _, k := range group {
		a.gids = append(a.gids, gids[k])
		a.vals = append(a.vals, vals[k])
	}
	a.bytesPerOp, a.hops = bytesPerOp, hops
	c.loc.AsyncRMIBulkOp(dest, c.handle, len(group), bytesPerOp*len(group), o.bulkSet, a)
}

// GetBulk reads the elements named by gids into out (out[k] receives the
// value of gids[k]) and blocks until all of them arrived: the registered
// twin of Container.InvokeBulkSync with a gathering read action.
func (o *ElemOps[G, B, V]) GetBulk(c *Container[G, B], gids []G, out []V, bytesPerOp int) {
	if len(gids) == 0 {
		return
	}
	if c.Sequential() {
		c.InvokeBulkSync(gids, Read, bytesPerOp, func(loc *runtime.Location, bc B, k int) {
			out[k] = o.getApply(loc, bc, gids[k])
		})
		return
	}
	tr := &bulkTracker{done: make(chan struct{})}
	tr.remaining.Store(int64(len(gids)))
	var token uint64
	selfDec := c.loc.SelfDecodingTransport()
	if selfDec {
		// Remote groups answer with one bgRet per group; the callback
		// scatters it into out and stays registered until every element
		// arrived (it never self-removes — groups arrive independently).
		token = c.loc.RegisterToken(func(v any) bool {
			r := v.(*bgRet[V])
			for i, pos := range r.poss {
				out[pos] = r.vals[i]
			}
			n := len(r.poss)
			putBgRet(r)
			tr.complete(n)
			return false
		})
	}
	o.bulkGetHop(c, gids, nil, bytesPerOp, 0, c.loc.ID(), token, out, tr)
	c.loc.WaitDone(tr.done)
	if selfDec {
		c.loc.UnregisterToken(token)
	}
}

// bulkGetHop performs one resolution step of a registered bulk get.  poss
// maps each element of gids to its position in the origin's result slice
// (nil means identity — the origin's own call).  out/tr are non-nil only
// while the hop runs in the origin's process; a group that crossed a
// self-decoding wire answers with ReplyOp instead.
func (o *ElemOps[G, B, V]) bulkGetHop(c *Container[G, B], gids []G, poss []int, bytesPerOp, hops, origin int, token uint64, out []V, tr *bulkTracker) {
	if hops > maxForwardHops {
		panic(fmt.Sprintf("core: bulk invocation forwarded more than %d times", maxForwardHops))
	}
	self := c.loc.ID()
	s := o.bulkResolveGroups(c, gids)
	defer putBulkScratch(s)
	for gi := range s.groups {
		g := &s.groups[gi]
		if g.dest == self && g.bcid >= 0 {
			bc, ok := c.locMgr.Get(g.bcid)
			if !ok {
				o.shipGetGroup(c, self, gids, poss, g.idxs, bytesPerOp, hops+1, origin, token, out, tr)
				putBulkIdxs(g.idxs)
				g.idxs = nil
				continue
			}
			c.ths.DataAccessPre(g.bcid, Read)
			if tr != nil {
				// In-process completion: scatter straight into the origin's
				// result slice, exactly like the closure path's action.
				for _, k := range g.idxs {
					pos := k
					if poss != nil {
						pos = poss[k]
					}
					out[pos] = o.getApply(c.loc, bc, gids[k])
				}
				c.ths.DataAccessPost(g.bcid, Read)
				if hops > 0 {
					// This group was shipped here: its gathered results
					// travel back as one response message.
					c.loc.AccountReply(bytesPerOp * len(g.idxs))
				}
				tr.complete(len(g.idxs))
			} else {
				// The group crossed a self-decoding wire: gather into one
				// reply and send it home under the origin's token.
				r := getBgRet[V]()
				for _, k := range g.idxs {
					pos := k
					if poss != nil {
						pos = poss[k]
					}
					r.poss = append(r.poss, pos)
					r.vals = append(r.vals, o.getApply(c.loc, bc, gids[k]))
				}
				c.ths.DataAccessPost(g.bcid, Read)
				c.loc.AccountReply(bytesPerOp * len(g.idxs))
				c.loc.ReplyOp(origin, c.handle, o.bulkGet, token, r)
			}
			putBulkIdxs(g.idxs)
			g.idxs = nil
			continue
		}
		o.shipGetGroup(c, g.dest, gids, poss, g.idxs, bytesPerOp, hops+1, origin, token, out, tr)
		putBulkIdxs(g.idxs)
		g.idxs = nil
	}
}

// shipGetGroup copies one group's subset (GIDs plus origin positions) into a
// pooled record and ships it under the bulk-get op.
func (o *ElemOps[G, B, V]) shipGetGroup(c *Container[G, B], dest int, gids []G, poss []int, group []int, bytesPerOp, hops, origin int, token uint64, out []V, tr *bulkTracker) {
	a := getBgArgs[G, V]()
	for _, k := range group {
		pos := k
		if poss != nil {
			pos = poss[k]
		}
		a.gids = append(a.gids, gids[k])
		a.poss = append(a.poss, pos)
	}
	a.bytesPerOp, a.hops, a.origin, a.token = bytesPerOp, hops, origin, token
	a.out, a.tr = out, tr
	c.loc.AsyncRMIBulkOp(dest, c.handle, len(group), bytesPerOp*len(group), o.bulkGet, a)
}

// bulkResolveGroups resolves gids under one metadata bracket (preferring the
// resolver's bulk fast path) and groups them by owner exactly like bulkHop:
// local elements by base container, remote elements by destination.  The
// returned scratch (and the group index slices it holds) belongs to the
// caller.
func (o *ElemOps[G, B, V]) bulkResolveGroups(c *Container[G, B], gids []G) *bulkScratch {
	self := c.loc.ID()
	n := len(gids)
	s := getBulkScratch(n)
	func() {
		c.ths.MetadataAccessPre(Read)
		defer c.ths.MetadataAccessPost(Read)
		if br, ok := c.resolver.(BulkResolver[G]); ok {
			br.ResolveBulk(gids, nil, s.targets[:n])
			return
		}
		for i := 0; i < n; i++ {
			info := c.resolver.Find(gids[i])
			if info.Valid {
				s.targets[i] = Placement{Dest: c.resolver.OwnerOf(info.BCID), BCID: info.BCID}
			} else {
				s.targets[i] = Placement{Dest: info.Hint, BCID: partition.InvalidBCID}
			}
		}
	}()
	last := -1
	for i := 0; i < n; i++ {
		t := s.targets[i]
		if t.BCID < 0 && t.Dest == self {
			panic(fmt.Sprintf("core: GID %v cannot be resolved on its directory location", gids[i]))
		}
		key := t.BCID
		if t.Dest != self {
			key = partition.InvalidBCID
		}
		if last < 0 || s.groups[last].dest != t.Dest || s.groups[last].bcid != key {
			last = -1
			for j := range s.groups {
				if s.groups[j].dest == t.Dest && s.groups[j].bcid == key {
					last = j
					break
				}
			}
			if last < 0 {
				s.groups = append(s.groups, bulkGroup{dest: t.Dest, bcid: key, idxs: getBulkIdxs()})
				last = len(s.groups) - 1
			}
		}
		s.groups[last].idxs = append(s.groups[last].idxs, i)
	}
	return s
}
