package core

// ConsistencyModel selects the memory-consistency model a pContainer's
// element-wise methods follow (Chapter VII).
type ConsistencyModel int

// Supported consistency models.
const (
	// Relaxed is the paper's default pContainer MCM: asynchronous methods
	// complete by the next fence (or by a later synchronous/split-phase
	// access of the same element from the same location), per-element
	// program order is preserved per location, and no global order is
	// guaranteed between operations on different elements.
	Relaxed ConsistencyModel = iota
	// Sequential restricts the container interface to synchronous methods
	// only, which (per Claim 3 of the paper) makes concurrent invocations
	// sequentially consistent.  Asynchronous container methods degrade to
	// their synchronous equivalents under this model.
	Sequential
)

// Traits customises a pContainer instance, mirroring the paper's traits
// template arguments: which thread-safety manager guards data and metadata,
// which consistency model element-wise methods follow, and whether method
// forwarding is enabled for partitions that support it.
type Traits struct {
	// Locking selects the thread-safety manager.
	Locking LockPolicy
	// Consistency selects the memory-consistency model.
	Consistency ConsistencyModel
	// Custom, when non-nil, overrides the manager selected by Locking.
	Custom ThreadSafety
}

// DefaultTraits returns the defaults used when a container is constructed
// without explicit traits: per-bContainer locking and the relaxed MCM.
func DefaultTraits() Traits {
	return Traits{Locking: PolicyPerBContainer, Consistency: Relaxed}
}

// manager instantiates the thread-safety manager described by the traits.
func (t Traits) manager() ThreadSafety {
	if t.Custom != nil {
		return t.Custom
	}
	return newThreadSafety(t.Locking)
}
