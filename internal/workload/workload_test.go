package workload

import (
	"testing"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestSSCA2EdgeListDeterministicAndValid(t *testing.T) {
	p := DefaultSSCA2(8)
	if p.NumVertices() != 256 {
		t.Fatalf("vertices = %d", p.NumVertices())
	}
	collect := func() [][2]int64 {
		var out [][2]int64
		SSCA2EdgeList(p, 0, p.NumVertices(), func(s, d int64) { out = append(out, [2]int64{s, d}) })
		return out
	}
	a := collect()
	b := collect()
	if len(a) == 0 {
		t.Fatal("no edges generated")
	}
	if len(a) != len(b) {
		t.Fatal("generator is not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator is not deterministic")
		}
	}
	for _, e := range a {
		if e[0] < 0 || e[0] >= 256 || e[1] < 0 || e[1] >= 256 || e[0] == e[1] {
			t.Fatalf("invalid edge %v", e)
		}
	}
	// Restricting the source range yields a subset.
	var restricted int
	SSCA2EdgeList(p, 0, 128, func(s, d int64) {
		restricted++
		if s >= 128 {
			t.Fatalf("edge source %d outside requested range", s)
		}
	})
	if restricted == 0 || restricted >= len(a) {
		t.Fatalf("restricted generation produced %d edges of %d", restricted, len(a))
	}
}

func TestBuildSSCA2Static(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		p := DefaultSSCA2(7)
		g := pgraph.New[int64, int8](loc, p.NumVertices())
		BuildSSCA2Static(loc, g, p)
		edges := g.NumEdges()
		if edges == 0 {
			t.Error("no edges inserted")
		}
		// Intra-clique edges make most vertices non-isolated.
		nonIsolated := int64(0)
		g.RangeLocalVertices(func(v *pgraph.Vertex[int64, int8]) bool {
			if len(v.Edges) > 0 {
				nonIsolated++
			}
			return true
		})
		total := runtime.AllReduceSum(loc, nonIsolated)
		if total < p.NumVertices()/2 {
			t.Errorf("only %d of %d vertices have edges", total, p.NumVertices())
		}
		loc.Fence()
	})
}

func TestBuildMesh2D(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		m := Mesh2DParams{Rows: 6, Cols: 5}
		g := pgraph.New[float64, int8](loc, m.NumVertices())
		BuildMesh2D(loc, g, m)
		// Interior vertices have degree 4; corners 2; edges 3.
		// Total directed edges = sum of degrees = 2*(#grid adjacencies).
		want := int64(2 * (m.Rows*(m.Cols-1) + (m.Rows-1)*m.Cols))
		if got := g.NumEdges(); got != want {
			t.Errorf("mesh edges = %d, want %d", got, want)
		}
		if d := g.OutDegree(m.VertexID(0, 0)); d != 2 {
			t.Errorf("corner degree = %d", d)
		}
		if d := g.OutDegree(m.VertexID(3, 2)); d != 4 {
			t.Errorf("interior degree = %d", d)
		}
		loc.Fence()
	})
}

func TestTreeEdges(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		p := ForestParams{SubtreesPerLocation: 3, SubtreeHeight: 4}
		edges, vertices, root := TreeEdges(loc, p)
		perSubtree := int64(1)<<p.SubtreeHeight - 1
		wantVerts := 3 * perSubtree
		if loc.ID() == 0 {
			wantVerts++ // global root
		}
		if int64(len(vertices)) != wantVerts {
			t.Errorf("local vertices = %d, want %d", len(vertices), wantVerts)
		}
		// Each subtree contributes perSubtree-1 internal edges plus one
		// attachment edge to the root.
		if int64(len(edges)) != 3*perSubtree {
			t.Errorf("local edges = %d, want %d", len(edges), 3*perSubtree)
		}
		if root != 0 {
			t.Errorf("root = %d", root)
		}
		// Globally the structure is a single tree: edges = vertices - 1.
		totalV := runtime.AllReduceSum(loc, int64(len(vertices)))
		totalE := runtime.AllReduceSum(loc, int64(len(edges)))
		if totalE != totalV-1 {
			t.Errorf("edges = %d, vertices = %d: not a tree", totalE, totalV)
		}
		// Descriptors never collide across locations.
		seen := map[int64]bool{}
		for _, v := range vertices {
			if seen[v] {
				t.Errorf("duplicate descriptor %d", v)
			}
			seen[v] = true
		}
		loc.Fence()
	})
}

func TestZipfCorpus(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		words := Zipf(loc, 1000, 100, 1.3)
		if len(words) != 1000 {
			t.Errorf("corpus size = %d", len(words))
		}
		freq := map[string]int{}
		for _, w := range words {
			freq[w]++
		}
		if len(freq) < 2 || len(freq) > 100 {
			t.Errorf("distinct words = %d", len(freq))
		}
		// Zipf skew: the most frequent word should dominate.
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		if max < 1000/20 {
			t.Errorf("most frequent word appears only %d times; distribution not skewed", max)
		}
		// Different locations draw different streams.
		first := runtime.AllGatherT(loc, words[0])
		if loc.ID() == 0 && loc.NumLocations() > 1 {
			allSame := true
			for _, w := range first[1:] {
				if w != first[0] {
					allSame = false
				}
			}
			_ = allSame // different seeds usually differ, but equality is legal
		}
		loc.Fence()
	})
	if ZipfExpectedDistinct(10, 100) != 10 || ZipfExpectedDistinct(1000, 100) != 100 {
		t.Error("expected-distinct helper wrong")
	}
}

func TestOpStream(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		mix := DefaultMix()
		ops := OpStream(loc, 10000, mix)
		if len(ops) != 10000 {
			t.Errorf("ops = %d", len(ops))
		}
		counts := map[OpKind]int{}
		for _, op := range ops {
			counts[op]++
		}
		if counts[OpRead] < 3000 || counts[OpWrite] < 3000 {
			t.Errorf("read/write counts too low: %v", counts)
		}
		if counts[OpInsert] < 500 || counts[OpDelete] < 500 {
			t.Errorf("insert/delete counts too low: %v", counts)
		}
		loc.Fence()
	})
}
