// Package workload provides the synthetic workload generators used by the
// benchmark harness: an SSCA2-style clustered graph generator (the paper's
// pGraph experiments), regular 2-D meshes (the page-rank inputs), binary
// forests (the Euler-tour experiments), a Zipf-distributed word corpus
// (standing in for the Simple English Wikipedia dump of Fig. 59) and the
// mixed read/write/insert/delete operation streams of Fig. 42.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/containers/pgraph"
	"repro/internal/runtime"
)

// SSCA2Params configures the clustered-graph generator modelled on the
// SSCA#2 benchmark generator the paper uses: vertices are grouped into
// cliques of random size up to MaxCliqueSize, cliques are fully connected
// internally, and inter-clique edges are added with probability
// InterCliqueProb between consecutive cliques at increasing distances.
type SSCA2Params struct {
	Scale           int     // number of vertices = 2^Scale
	MaxCliqueSize   int     // maximum vertices per clique
	InterCliqueProb float64 // probability of an inter-clique edge
	Seed            int64
}

// DefaultSSCA2 returns the generator parameters used by the benches.
func DefaultSSCA2(scale int) SSCA2Params {
	return SSCA2Params{Scale: scale, MaxCliqueSize: 8, InterCliqueProb: 0.2, Seed: 42}
}

// NumVertices returns 2^Scale.
func (p SSCA2Params) NumVertices() int64 { return int64(1) << p.Scale }

// SSCA2EdgeList enumerates the generated edges, calling emit(src, dst) for
// each.  The enumeration is deterministic for a given parameter set, and
// restricted to edges whose source lies in [loVertex, hiVertex) so that each
// location can generate only the edges it will insert.
func SSCA2EdgeList(p SSCA2Params, loVertex, hiVertex int64, emit func(src, dst int64)) {
	n := p.NumVertices()
	rng := rand.New(rand.NewSource(p.Seed))
	if p.MaxCliqueSize < 1 {
		p.MaxCliqueSize = 1
	}
	// Assign vertices to cliques deterministically.
	cliqueOf := make([]int64, n)
	var cliqueStart []int64
	var v int64
	for v < n {
		size := int64(rng.Intn(p.MaxCliqueSize) + 1)
		if v+size > n {
			size = n - v
		}
		cliqueStart = append(cliqueStart, v)
		for k := int64(0); k < size; k++ {
			cliqueOf[v+k] = int64(len(cliqueStart) - 1)
		}
		v += size
	}
	cliqueEnd := func(c int64) int64 {
		if int(c+1) < len(cliqueStart) {
			return cliqueStart[c+1]
		}
		return n
	}
	// Intra-clique edges: a full clique (directed, both orientations).
	for src := loVertex; src < hiVertex; src++ {
		c := cliqueOf[src]
		for dst := cliqueStart[c]; dst < cliqueEnd(c); dst++ {
			if dst != src {
				emit(src, dst)
			}
		}
	}
	// Inter-clique edges: each clique links to cliques at distance 1, 2, 4,
	// ... with the configured probability; the edge endpoints are the
	// cliques' first vertices.
	interRng := rand.New(rand.NewSource(p.Seed + 1))
	numCliques := int64(len(cliqueStart))
	for c := int64(0); c < numCliques; c++ {
		for d := int64(1); c+d < numCliques; d *= 2 {
			if interRng.Float64() < p.InterCliqueProb {
				src := cliqueStart[c]
				dst := cliqueStart[c+d]
				if src >= loVertex && src < hiVertex {
					emit(src, dst)
				}
			}
		}
	}
}

// BuildSSCA2Static populates a static pGraph with the SSCA2 topology:
// each location inserts the edges whose source vertex it owns.  Collective.
func BuildSSCA2Static(loc *runtime.Location, g *pgraph.Graph[int64, int8], p SSCA2Params) {
	locals := g.LocalVertices()
	if len(locals) > 0 {
		lo, hi := locals[0], locals[len(locals)-1]+1
		SSCA2EdgeList(p, lo, hi, func(src, dst int64) { g.AddEdgeAsync(src, dst, 0) })
	}
	loc.Fence()
}

// Mesh2DParams describes a rows×cols grid whose vertices are connected to
// their 4-neighbourhood (the page-rank meshes of Fig. 56: 1500×1500 vs
// 15×150000).
type Mesh2DParams struct {
	Rows, Cols int64
}

// NumVertices returns Rows*Cols.
func (m Mesh2DParams) NumVertices() int64 { return m.Rows * m.Cols }

// VertexID maps grid coordinates to a vertex descriptor.
func (m Mesh2DParams) VertexID(r, c int64) int64 { return r*m.Cols + c }

// BuildMesh2D populates a static pGraph with the 4-neighbour mesh topology.
// Each location inserts the edges of the vertices it owns.  Collective.
func BuildMesh2D(loc *runtime.Location, g *pgraph.Graph[float64, int8], m Mesh2DParams) {
	for _, vd := range g.LocalVertices() {
		r, c := vd/m.Cols, vd%m.Cols
		if r > 0 {
			g.AddEdgeAsync(vd, m.VertexID(r-1, c), 0)
		}
		if r < m.Rows-1 {
			g.AddEdgeAsync(vd, m.VertexID(r+1, c), 0)
		}
		if c > 0 {
			g.AddEdgeAsync(vd, m.VertexID(r, c-1), 0)
		}
		if c < m.Cols-1 {
			g.AddEdgeAsync(vd, m.VertexID(r, c+1), 0)
		}
	}
	loc.Fence()
}

// ForestParams describes the binary forest used by the Euler-tour
// experiments: SubtreesPerLocation complete binary trees of SubtreeHeight
// levels per location, all attached under one global root, giving a single
// tree as in the paper's Fig. 44 workload.
type ForestParams struct {
	SubtreesPerLocation int
	SubtreeHeight       int
}

// TreeEdges returns, for the calling location, the (parent, child) edges of
// its part of the tree, the local vertex descriptors, and the global root
// descriptor.  Descriptors encode the owning location so the tree can be
// loaded into a dynamic pGraph or processed directly.
func TreeEdges(loc *runtime.Location, p ForestParams) (edges [][2]int64, vertices []int64, root int64) {
	// The global root is vertex 0 on location 0.
	root = 0
	if p.SubtreeHeight < 1 {
		p.SubtreeHeight = 1
	}
	perSubtree := int64(1)<<p.SubtreeHeight - 1
	// Local descriptor space: the owning location in the high bits (as the
	// dynamic pGraph encodes homes), offset by one so location 0's first
	// subtree vertex does not collide with the global root descriptor 0.
	base := int64(loc.ID())<<40 + 1
	if loc.ID() == 0 {
		vertices = append(vertices, root)
	}
	for s := 0; s < p.SubtreesPerLocation; s++ {
		offset := base + int64(s)*perSubtree
		// Complete binary tree over [offset, offset+perSubtree).
		for i := int64(0); i < perSubtree; i++ {
			vd := offset + i
			vertices = append(vertices, vd)
			if i > 0 {
				parent := offset + (i-1)/2
				edges = append(edges, [2]int64{parent, vd})
			}
		}
		// Attach the subtree root under the global root.
		edges = append(edges, [2]int64{root, offset})
	}
	return edges, vertices, root
}

// Zipf generates n words drawn from a vocabulary of vocab words with a
// Zipf(s) frequency distribution, seeded per location, standing in for the
// Wikipedia corpus of Fig. 59.
func Zipf(loc *runtime.Location, n int, vocab int, s float64) []string {
	if vocab < 1 {
		vocab = 1
	}
	if s <= 1.0 {
		s = 1.01
	}
	z := rand.NewZipf(loc.Rand(), s, 1, uint64(vocab-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word%05d", z.Uint64())
	}
	return out
}

// OpKind is one operation of the Fig. 42 dynamic mix.
type OpKind int

// Operation kinds of the dynamic mix.
const (
	OpRead OpKind = iota
	OpWrite
	OpInsert
	OpDelete
)

// MixRatios fixes the proportion of each operation kind; they must sum to 1.
type MixRatios struct {
	Read, Write, Insert, Delete float64
}

// DefaultMix is the read-heavy mix used by the Fig. 42 experiment.
func DefaultMix() MixRatios { return MixRatios{Read: 0.4, Write: 0.4, Insert: 0.1, Delete: 0.1} }

// OpStream generates n operations with the given ratios, using the
// location-private random source.
func OpStream(loc *runtime.Location, n int, mix MixRatios) []OpKind {
	r := loc.Rand()
	out := make([]OpKind, n)
	for i := range out {
		x := r.Float64()
		switch {
		case x < mix.Read:
			out[i] = OpRead
		case x < mix.Read+mix.Write:
			out[i] = OpWrite
		case x < mix.Read+mix.Write+mix.Insert:
			out[i] = OpInsert
		default:
			out[i] = OpDelete
		}
	}
	return out
}

// ZipfExpectedDistinct estimates how many distinct words a Zipf corpus of n
// draws over the given vocabulary will contain; used by tests as a sanity
// bound.
func ZipfExpectedDistinct(n, vocab int) int {
	if n < vocab {
		return n
	}
	return int(math.Min(float64(vocab), float64(n)))
}
