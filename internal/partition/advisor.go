package partition

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/runtime"
)

// This file implements the load-balance advisor of the redistribution
// subsystem (Chapter V, Section G): collect per-location element counts
// with an RTS collective, quantify how skewed the current distribution is,
// and propose a distribution that containers can feed straight into their
// Redistribute methods.

// LoadStats records the per-location element counts the advisor collected.
type LoadStats struct {
	// Counts holds one element count per location, indexed by location id.
	Counts []int64
	// Total is the sum of Counts.
	Total int64
}

// CollectLoad gathers every location's local element count (typically the
// container's LocalSize) and returns the machine-wide load statistics on
// every location.  Collective.
func CollectLoad(loc *runtime.Location, local int64) LoadStats {
	counts := runtime.AllGatherT(loc, local)
	var total int64
	for _, c := range counts {
		total += c
	}
	return LoadStats{Counts: counts, Total: total}
}

// Imbalance returns the imbalance factor of the distribution: the largest
// per-location count divided by the mean count.  A perfectly balanced
// distribution has factor 1; a distribution with everything on one of P
// locations has factor P.  Empty distributions report 1.
func (s LoadStats) Imbalance() float64 {
	if len(s.Counts) == 0 || s.Total == 0 {
		return 1
	}
	var max int64
	for _, c := range s.Counts {
		if c > max {
			max = c
		}
	}
	mean := float64(s.Total) / float64(len(s.Counts))
	return float64(max) / mean
}

// ShouldRebalance reports whether the imbalance factor exceeds threshold
// (e.g. 1.1 to tolerate 10% skew before paying for a migration).
func (s LoadStats) ShouldRebalance(threshold float64) bool {
	return s.Imbalance() > threshold
}

// ProposeBalanced proposes the distribution that eliminates the measured
// imbalance for an indexed container over dom: a balanced partition with one
// sub-domain per location and the identity (blocked) mapper.  The result can
// be passed directly to the container's Redistribute.
func (s LoadStats) ProposeBalanced(dom domain.Range1D) (*Balanced, *BlockedMapper) {
	n := len(s.Counts)
	p := NewBalanced(dom, n)
	return p, NewBlockedMapper(p.NumSubdomains(), n)
}

// CollectSubSizes combines per-sub-domain element counts across all
// locations: each location passes a slice indexed by BCID holding the sizes
// of the sub-domains it stores (zero elsewhere); every location receives the
// complete table.  Collective.
func CollectSubSizes(loc *runtime.Location, local []int64) []int64 {
	return runtime.AllReduceT(loc, local, func(a, b []int64) []int64 {
		out := make([]int64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	})
}

// ProposeMapping assigns sub-domains to locations so that the per-location
// element loads even out, using the greedy longest-processing-time
// heuristic: sub-domains are placed in decreasing size order, each onto the
// currently least-loaded location.  Ties break towards the location with the
// fewest sub-domains so that equal-sized (in particular empty) sub-domains
// spread round-robin instead of piling onto location 0.  Containers whose
// sub-domain set is fixed (e.g. a pHashMap's hash buckets) use it to
// rebalance by remapping instead of repartitioning.
func ProposeMapping(subSizes []int64, numLoc int) *ArbitraryMapper {
	if numLoc <= 0 {
		numLoc = 1
	}
	order := make([]int, len(subSizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return subSizes[order[a]] > subSizes[order[b]]
	})
	load := make([]int64, numLoc)
	count := make([]int, numLoc)
	locs := make([]int, len(subSizes))
	for _, b := range order {
		best := 0
		for l := 1; l < numLoc; l++ {
			if load[l] < load[best] || (load[l] == load[best] && count[l] < count[best]) {
				best = l
			}
		}
		locs[b] = best
		load[best] += subSizes[b]
		count[best]++
	}
	return NewArbitraryMapper(locs, numLoc)
}
