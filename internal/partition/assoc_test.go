package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/domain"
)

func TestMatrixPartitionRowBlocked(t *testing.T) {
	dom := domain.NewRange2D(10, 6)
	p := NewMatrix(dom, 4, RowBlocked)
	if p.NumSubdomains() != 4 {
		t.Fatalf("subdomains = %d", p.NumSubdomains())
	}
	gr, gc := p.GridDims()
	if gr != 4 || gc != 1 {
		t.Fatalf("grid = %dx%d, want 4x1", gr, gc)
	}
	// Every index maps to a block containing it; blocks tile the domain.
	var total int64
	for b := 0; b < p.NumSubdomains(); b++ {
		r, c := p.Block(BCID(b))
		total += r.Size() * c.Size()
	}
	if total != dom.Size() {
		t.Fatalf("blocks cover %d elements, domain has %d", total, dom.Size())
	}
	for row := int64(0); row < dom.Rows; row++ {
		for col := int64(0); col < dom.Cols; col++ {
			g := domain.Index2D{Row: row, Col: col}
			info := p.Find(g)
			if !info.Valid {
				t.Fatalf("Find(%v) invalid", g)
			}
			r, c := p.Block(info.BCID)
			if !r.Contains(row) || !c.Contains(col) {
				t.Fatalf("Find(%v) -> block %d does not contain it", g, info.BCID)
			}
		}
	}
}

// TestMatrixPartitionOutOfDomainPanics pins the fail-fast contract: the
// matrix decomposition is closed-form, so an out-of-domain index must panic
// at the resolver instead of forwarding to location 0 (where it would
// self-forward until the hop limit tripped).
func TestMatrixPartitionOutOfDomainPanics(t *testing.T) {
	p := NewMatrix(domain.NewRange2D(10, 6), 4, RowBlocked)
	for _, g := range []domain.Index2D{
		{Row: 10, Col: 0}, {Row: 0, Col: 6}, {Row: -1, Col: 0}, {Row: 0, Col: -1},
	} {
		g := g
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Find(%v) did not panic", g)
				}
			}()
			p.Find(g)
		}()
	}
}

func TestMatrixPartitionLayouts(t *testing.T) {
	dom := domain.NewRange2D(8, 8)
	col := NewMatrix(dom, 4, ColBlocked)
	gr, gc := col.GridDims()
	if gr != 1 || gc != 4 {
		t.Fatalf("col grid = %dx%d", gr, gc)
	}
	chk := NewMatrix(dom, 4, Checkerboard)
	gr, gc = chk.GridDims()
	if gr != 2 || gc != 2 {
		t.Fatalf("checkerboard grid = %dx%d, want 2x2", gr, gc)
	}
	sizes := chk.SubSizes()
	for _, s := range sizes {
		if s != 16 {
			t.Fatalf("checkerboard block sizes = %v, want all 16", sizes)
		}
	}
	if NewMatrix(dom, 0, RowBlocked).NumSubdomains() != 1 {
		t.Fatal("n=0 should clamp to one block")
	}
}

func TestSquarestGrid(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 6: {2, 3}, 7: {1, 7}, 12: {3, 4}, 16: {4, 4}}
	for n, want := range cases {
		r, c := squarestGrid(n)
		if r != want[0] || c != want[1] {
			t.Errorf("squarestGrid(%d) = %d,%d want %d,%d", n, r, c, want[0], want[1])
		}
	}
}

func TestMatrixPartitionProperty(t *testing.T) {
	prop := func(rRaw, cRaw, nRaw uint8) bool {
		rows := int64(rRaw%30) + 1
		cols := int64(cRaw%30) + 1
		n := int(nRaw%12) + 1
		dom := domain.NewRange2D(rows, cols)
		for _, layout := range []MatrixLayout{RowBlocked, ColBlocked, Checkerboard} {
			p := NewMatrix(dom, n, layout)
			counts := make([]int64, p.NumSubdomains())
			for r := int64(0); r < rows; r++ {
				for c := int64(0); c < cols; c++ {
					info := p.Find(domain.Index2D{Row: r, Col: c})
					if !info.Valid {
						return false
					}
					counts[info.BCID]++
				}
			}
			sizes := p.SubSizes()
			for b := range counts {
				if counts[b] != sizes[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHashedPartition(t *testing.T) {
	p := NewHashed[string](4, StringHash)
	if p.NumSubdomains() != 4 {
		t.Fatal("subdomains wrong")
	}
	// Deterministic and in range.
	for _, k := range []string{"alpha", "beta", "gamma", "delta", ""} {
		a := p.Find(k)
		b := p.Find(k)
		if !a.Valid || a.BCID != b.BCID {
			t.Fatalf("hashing of %q not deterministic", k)
		}
		if a.BCID < 0 || int(a.BCID) >= 4 {
			t.Fatalf("bcid out of range: %d", a.BCID)
		}
	}
	if NewHashed[int64](0, func(int64) uint64 { return 0 }).NumSubdomains() != 1 {
		t.Fatal("n=0 should clamp to 1")
	}
}

func TestHashedPartitionSpread(t *testing.T) {
	// With many keys every sub-domain should receive a share: the hash
	// partition is what gives associative containers their balance.
	p := NewHashed[int64](8, Int64Hash)
	counts := make([]int, 8)
	for i := int64(0); i < 8000; i++ {
		counts[p.Find(i).BCID]++
	}
	for b, c := range counts {
		if c < 500 {
			t.Fatalf("sub-domain %d received only %d of 8000 keys: %v", b, c, counts)
		}
	}
}

func TestRangedPartition(t *testing.T) {
	less := func(a, b string) bool { return a < b }
	p := NewRanged([]string{"g", "p"}, less)
	if p.NumSubdomains() != 3 {
		t.Fatalf("subdomains = %d, want 3", p.NumSubdomains())
	}
	cases := map[string]BCID{"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := p.Find(k).BCID; got != want {
			t.Errorf("Find(%q) = %d, want %d", k, got, want)
		}
	}
	sp := p.Splitters()
	if len(sp) != 2 || sp[0] != "g" {
		t.Fatalf("splitters = %v", sp)
	}
	// No splitters: single sub-domain.
	single := NewRanged(nil, less)
	if single.NumSubdomains() != 1 || single.Find("anything").BCID != 0 {
		t.Fatal("empty splitter partition wrong")
	}
}

func TestRangedPartitionMonotoneProperty(t *testing.T) {
	less := func(a, b int64) bool { return a < b }
	p := NewRanged([]int64{10, 20, 30}, less)
	prop := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		// Ownership must be monotone in the key.
		return p.Find(x).BCID <= p.Find(y).BCID
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashFunctions(t *testing.T) {
	if StringHash("a") == StringHash("b") {
		t.Fatal("string hash collision on trivial inputs")
	}
	if StringHash("") == 0 {
		t.Fatal("empty string hash should be the FNV offset, not 0")
	}
	if Int64Hash(1) == Int64Hash(2) {
		t.Fatal("int64 hash collision on trivial inputs")
	}
	// SplitMix64 must spread consecutive keys across the space.
	var low, high int
	for i := int64(0); i < 1000; i++ {
		if Int64Hash(i)%2 == 0 {
			low++
		} else {
			high++
		}
	}
	if low < 400 || high < 400 {
		t.Fatalf("int64 hash poorly distributed: %d/%d", low, high)
	}
}
