// Package partition implements the partition and partition-mapper concepts
// of the STAPL Parallel Container Framework.
//
// A partition decomposes a container's domain into disjoint sub-domains;
// each sub-domain is stored in one base container (bContainer) identified by
// a BCID.  A partition mapper assigns BCIDs to locations.  Together they
// define the data distribution of a pContainer; the data-distribution
// manager (package core) uses them to resolve the location and bContainer
// that hold a given GID, possibly forwarding the request when only partial
// information is available locally.
package partition

import (
	"fmt"

	"repro/internal/domain"
)

// BCID identifies one sub-domain / base container of a partition.  BCIDs are
// dense integers in [0, NumSubdomains()).
type BCID int

// InvalidBCID is returned by lookups that cannot resolve a GID locally.
const InvalidBCID BCID = -1

// Info is the result of asking a partition where a GID lives (the paper's
// bContainer info structure returned by the partition's "where" methods).
// Either Valid is true and BCID identifies the sub-domain, or Valid is false
// and Hint names a location that may hold more information (method
// forwarding).
//
// Cached marks a resolution that came from a per-location resolution cache
// rather than an authoritative source (closed-form partition or directory
// home).  A cached resolution is a hint, not a promise: after an ownership
// change it may be stale, so the destination's resolver re-validates local
// presence and forwards once more instead of trusting it — a stale cache
// entry costs one extra hop, never a wrong answer.
type Info struct {
	BCID   BCID
	Valid  bool
	Hint   int
	Cached bool
}

// Found returns an Info naming a resolved sub-domain.
func Found(b BCID) Info { return Info{BCID: b, Valid: true} }

// FoundCached returns an Info naming a sub-domain resolved through a
// resolution cache (see Info.Cached).
func FoundCached(b BCID) Info { return Info{BCID: b, Valid: true, Cached: true} }

// Forward returns an Info that forwards resolution to another location.
func Forward(loc int) Info { return Info{BCID: InvalidBCID, Valid: false, Hint: loc} }

// Indexed is the partition interface of one-dimensional indexed containers
// (pArray, pVector): the domain is a Range1D and every GID maps to exactly
// one sub-domain, computable locally (closed form).
type Indexed interface {
	// Domain returns the partitioned domain.
	Domain() domain.Range1D
	// NumSubdomains returns the number of sub-domains (== bContainers).
	NumSubdomains() int
	// Find returns the sub-domain holding gid.
	Find(gid int64) Info
	// SubDomain returns the GID set of sub-domain b.  For non-contiguous
	// partitions (block-cyclic) the returned range is the b-th *block
	// group's* covering range; use OwnsWithin to enumerate.
	SubDomain(b BCID) domain.Range1D
	// SubSizes returns the size of every sub-domain, indexed by BCID.
	SubSizes() []int64
}

// Contiguous is an optional Indexed extension: a partition whose every
// sub-domain is exactly the Range1D reported by SubDomain (no gaps, no
// striding).  Batch resolvers use it to memoise Find over runs of
// consecutive GIDs — one SubDomain range check instead of one closed-form
// Find per element.  Block-cyclic partitions must NOT implement it: their
// SubDomain is only a covering range, so range membership does not imply
// ownership there.
type Contiguous interface {
	// ContiguousBlocks reports that SubDomain(b) is the exact GID set of
	// every sub-domain b.
	ContiguousBlocks() bool
}

// Balanced divides a Range1D into n sub-domains whose sizes differ by at
// most one (the default pArray partition).
type Balanced struct {
	dom    domain.Range1D
	blocks []domain.Range1D
}

// ContiguousBlocks marks Balanced sub-domains as exact ranges.
func (p *Balanced) ContiguousBlocks() bool { return true }

// NewBalanced builds a balanced partition of dom into n sub-domains.
func NewBalanced(dom domain.Range1D, n int) *Balanced {
	if n <= 0 {
		n = 1
	}
	return &Balanced{dom: dom, blocks: dom.Split(n)}
}

// Domain returns the partitioned domain.
func (p *Balanced) Domain() domain.Range1D { return p.dom }

// NumSubdomains returns the number of sub-domains.
func (p *Balanced) NumSubdomains() int { return len(p.blocks) }

// outOfDomain reports an index outside a closed-form partition's domain.
// The closed-form partitions know the complete static distribution, so an
// out-of-domain index can never be a transiently unresolved GID the way it
// can for a growing container (pVector's resolver forwards those): it is a
// caller bug, and failing fast beats silently routing the request to
// sub-domain 0.
func outOfDomain(gid int64, dom domain.Range1D) string {
	return fmt.Sprintf("partition: index %d outside the [%d, %d) domain", gid, dom.Lo, dom.Hi)
}

// Find locates the sub-domain containing gid using the closed form.
// It panics for indices outside the domain (see outOfDomain).
func (p *Balanced) Find(gid int64) Info {
	if !p.dom.Contains(gid) {
		panic(outOfDomain(gid, p.dom))
	}
	n := int64(len(p.blocks))
	size := p.dom.Size()
	base := size / n
	rem := size % n
	off := gid - p.dom.Lo
	// The first rem blocks have size base+1.
	var b int64
	if off < rem*(base+1) {
		if base+1 == 0 {
			b = 0
		} else {
			b = off / (base + 1)
		}
	} else {
		if base == 0 {
			b = n - 1
		} else {
			b = rem + (off-rem*(base+1))/base
		}
	}
	if b >= n {
		b = n - 1
	}
	return Found(BCID(b))
}

// SubDomain returns the GID range of sub-domain b.
func (p *Balanced) SubDomain(b BCID) domain.Range1D { return p.blocks[b] }

// SubSizes returns the sizes of all sub-domains.
func (p *Balanced) SubSizes() []int64 {
	out := make([]int64, len(p.blocks))
	for i, blk := range p.blocks {
		out[i] = blk.Size()
	}
	return out
}

// Blocked divides a Range1D into consecutive blocks of a fixed size (the
// last block may be smaller).
type Blocked struct {
	dom       domain.Range1D
	blockSize int64
	blocks    []domain.Range1D
}

// NewBlocked builds a blocked partition of dom with the given block size.
func NewBlocked(dom domain.Range1D, blockSize int64) *Blocked {
	if blockSize <= 0 {
		blockSize = 1
	}
	return &Blocked{dom: dom, blockSize: blockSize, blocks: dom.SplitBlocked(blockSize)}
}

// Domain returns the partitioned domain.
func (p *Blocked) Domain() domain.Range1D { return p.dom }

// NumSubdomains returns the number of blocks.
func (p *Blocked) NumSubdomains() int { return len(p.blocks) }

// Find locates the block containing gid.  It panics for indices outside
// the domain (see outOfDomain).
func (p *Blocked) Find(gid int64) Info {
	if !p.dom.Contains(gid) {
		panic(outOfDomain(gid, p.dom))
	}
	return Found(BCID((gid - p.dom.Lo) / p.blockSize))
}

// SubDomain returns block b.
func (p *Blocked) SubDomain(b BCID) domain.Range1D { return p.blocks[b] }

// SubSizes returns the sizes of all blocks.
func (p *Blocked) SubSizes() []int64 {
	out := make([]int64, len(p.blocks))
	for i, blk := range p.blocks {
		out[i] = blk.Size()
	}
	return out
}

// Explicit is a partition given by an explicit list of contiguous
// sub-domains (partition_blocked_explicit in the paper).
type Explicit struct {
	dom    domain.Range1D
	blocks []domain.Range1D
}

// ContiguousBlocks marks Explicit sub-domains as exact ranges.
func (p *Explicit) ContiguousBlocks() bool { return true }

// NewExplicit builds an explicit partition from consecutive block sizes.
// The sizes must sum to the domain size.
func NewExplicit(dom domain.Range1D, sizes []int64) (*Explicit, error) {
	var total int64
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("partition: negative block size %d", s)
		}
		total += s
	}
	if total != dom.Size() {
		return nil, fmt.Errorf("partition: block sizes sum to %d, domain has %d elements", total, dom.Size())
	}
	blocks := make([]domain.Range1D, len(sizes))
	lo := dom.Lo
	for i, s := range sizes {
		blocks[i] = domain.Range1D{Lo: lo, Hi: lo + s}
		lo += s
	}
	return &Explicit{dom: dom, blocks: blocks}, nil
}

// Domain returns the partitioned domain.
func (p *Explicit) Domain() domain.Range1D { return p.dom }

// NumSubdomains returns the number of explicit blocks.
func (p *Explicit) NumSubdomains() int { return len(p.blocks) }

// Find locates the block containing gid by binary search.  It panics for
// indices outside the domain (see outOfDomain); the blocks tile the domain
// exactly (NewExplicit checks the sizes), so the search cannot miss an
// in-domain index.
func (p *Explicit) Find(gid int64) Info {
	if !p.dom.Contains(gid) {
		panic(outOfDomain(gid, p.dom))
	}
	lo, hi := 0, len(p.blocks)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := p.blocks[mid]
		switch {
		case gid < b.Lo:
			hi = mid - 1
		case gid >= b.Hi:
			lo = mid + 1
		default:
			return Found(BCID(mid))
		}
	}
	panic(outOfDomain(gid, p.dom))
}

// SubDomain returns block b.
func (p *Explicit) SubDomain(b BCID) domain.Range1D { return p.blocks[b] }

// SubSizes returns the sizes of all blocks.
func (p *Explicit) SubSizes() []int64 {
	out := make([]int64, len(p.blocks))
	for i, blk := range p.blocks {
		out[i] = blk.Size()
	}
	return out
}

// BlockCyclic distributes blocks of a fixed size cyclically over a given
// number of sub-domains (partition_block_cyclic in the paper).  Sub-domain
// b owns blocks b, b+n, b+2n, ... of size blockSize.
type BlockCyclic struct {
	dom       domain.Range1D
	n         int
	blockSize int64
}

// NewBlockCyclic builds a block-cyclic partition into n sub-domains with the
// given block size.
func NewBlockCyclic(dom domain.Range1D, n int, blockSize int64) *BlockCyclic {
	if n <= 0 {
		n = 1
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	return &BlockCyclic{dom: dom, n: n, blockSize: blockSize}
}

// Domain returns the partitioned domain.
func (p *BlockCyclic) Domain() domain.Range1D { return p.dom }

// NumSubdomains returns the number of sub-domains.
func (p *BlockCyclic) NumSubdomains() int { return p.n }

// Find locates the sub-domain owning gid.  It panics for indices outside
// the domain (see outOfDomain).
func (p *BlockCyclic) Find(gid int64) Info {
	if !p.dom.Contains(gid) {
		panic(outOfDomain(gid, p.dom))
	}
	block := (gid - p.dom.Lo) / p.blockSize
	return Found(BCID(block % int64(p.n)))
}

// SubDomain returns the covering range of sub-domain b (block-cyclic
// sub-domains are not contiguous; the covering range spans the whole
// domain).  Use OwnedGIDs to enumerate the exact member GIDs.
func (p *BlockCyclic) SubDomain(b BCID) domain.Range1D { return p.dom }

// OwnedGIDs returns the GIDs owned by sub-domain b, in order.
func (p *BlockCyclic) OwnedGIDs(b BCID) []int64 {
	var out []int64
	stride := p.blockSize * int64(p.n)
	for start := p.dom.Lo + int64(b)*p.blockSize; start < p.dom.Hi; start += stride {
		for g := start; g < start+p.blockSize && g < p.dom.Hi; g++ {
			out = append(out, g)
		}
	}
	return out
}

// SubSizes returns the number of GIDs owned by each sub-domain.
func (p *BlockCyclic) SubSizes() []int64 {
	out := make([]int64, p.n)
	for g := p.dom.Lo; g < p.dom.Hi; g++ {
		out[p.Find(g).BCID]++
	}
	return out
}

var (
	_ Indexed = (*Balanced)(nil)
	_ Indexed = (*Blocked)(nil)
	_ Indexed = (*Explicit)(nil)
	_ Indexed = (*BlockCyclic)(nil)
)
