package partition

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/domain"
)

// checkCoverage verifies the partition axioms of Definition 9: every GID in
// the domain maps to exactly one sub-domain, and that sub-domain contains it.
func checkCoverage(t *testing.T, p Indexed) {
	t.Helper()
	dom := p.Domain()
	counts := make([]int64, p.NumSubdomains())
	for g := dom.Lo; g < dom.Hi; g++ {
		info := p.Find(g)
		if !info.Valid {
			t.Fatalf("Find(%d) not valid", g)
		}
		if info.BCID < 0 || int(info.BCID) >= p.NumSubdomains() {
			t.Fatalf("Find(%d) = %d out of range", g, info.BCID)
		}
		counts[info.BCID]++
	}
	sizes := p.SubSizes()
	var total int64
	for b, c := range counts {
		if c != sizes[b] {
			t.Fatalf("sub-domain %d: Find assigns %d GIDs but SubSizes reports %d", b, c, sizes[b])
		}
		total += c
	}
	if total != dom.Size() {
		t.Fatalf("partition covers %d GIDs, domain has %d", total, dom.Size())
	}
}

func TestBalancedPartition(t *testing.T) {
	p := NewBalanced(domain.NewRange1D(0, 103), 8)
	if p.NumSubdomains() != 8 {
		t.Fatalf("subdomains = %d", p.NumSubdomains())
	}
	checkCoverage(t, p)
	// Sizes differ by at most one.
	sizes := p.SubSizes()
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS-minS > 1 {
		t.Fatalf("balanced partition imbalanced: %v", sizes)
	}
	// Find agrees with SubDomain.
	for b := 0; b < p.NumSubdomains(); b++ {
		sd := p.SubDomain(BCID(b))
		for g := sd.Lo; g < sd.Hi; g++ {
			if got := p.Find(g).BCID; got != BCID(b) {
				t.Fatalf("Find(%d) = %d, want %d", g, got, b)
			}
		}
	}
	expectOutOfDomainPanic(t, func() { p.Find(-1) })
	expectOutOfDomainPanic(t, func() { p.Find(103) })
}

func TestBalancedPartitionProperty(t *testing.T) {
	prop := func(szRaw uint16, nRaw uint8, gRaw uint16) bool {
		size := int64(szRaw%5000) + 1
		n := int(nRaw%16) + 1
		p := NewBalanced(domain.NewRange1D(0, size), n)
		g := int64(gRaw) % size
		info := p.Find(g)
		if !info.Valid {
			return false
		}
		return p.SubDomain(info.BCID).Contains(g)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedSmallerThanLocations(t *testing.T) {
	// N < P: the paper specifies N sub-domains of size 1 plus empties.
	p := NewBalanced(domain.NewRange1D(0, 3), 8)
	checkCoverage(t, p)
	sizes := p.SubSizes()
	nonEmpty := 0
	for _, s := range sizes {
		if s > 0 {
			if s != 1 {
				t.Fatalf("expected singleton sub-domains, got %v", sizes)
			}
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("expected 3 non-empty sub-domains, got %d", nonEmpty)
	}
}

func TestBlockedPartition(t *testing.T) {
	p := NewBlocked(domain.NewRange1D(0, 10), 3)
	if p.NumSubdomains() != 4 {
		t.Fatalf("subdomains = %d, want 4", p.NumSubdomains())
	}
	checkCoverage(t, p)
	want := []int64{3, 3, 3, 1}
	for i, s := range p.SubSizes() {
		if s != want[i] {
			t.Fatalf("sizes = %v, want %v", p.SubSizes(), want)
		}
	}
	if p.Find(9).BCID != 3 || p.Find(0).BCID != 0 || p.Find(5).BCID != 1 {
		t.Fatal("blocked Find wrong")
	}
	if NewBlocked(domain.NewRange1D(0, 5), 0).NumSubdomains() != 5 {
		t.Fatal("zero block size should clamp to 1")
	}
}

func TestExplicitPartition(t *testing.T) {
	dom := domain.NewRange1D(1, 11) // paper example: D=[1..10]
	p, err := NewExplicit(dom, []int64{3, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, p)
	if p.SubDomain(0) != (domain.Range1D{Lo: 1, Hi: 4}) {
		t.Fatalf("block 0 = %+v", p.SubDomain(0))
	}
	if p.Find(4).BCID != 1 || p.Find(7).BCID != 1 || p.Find(8).BCID != 2 {
		t.Fatal("explicit Find wrong")
	}
	if _, err := NewExplicit(dom, []int64{3, 3}); err == nil {
		t.Fatal("mismatched sizes should error")
	}
	if _, err := NewExplicit(dom, []int64{-1, 11}); err == nil {
		t.Fatal("negative size should error")
	}
}

func TestBlockCyclicPartition(t *testing.T) {
	// partition_block_cyclic(domain[0..11), 2, BLOCK_CYCLIC(3))
	dom := domain.NewRange1D(0, 11)
	p := NewBlockCyclic(dom, 2, 3)
	checkCoverage(t, p)
	if p.Find(0).BCID != 0 || p.Find(2).BCID != 0 || p.Find(3).BCID != 1 || p.Find(6).BCID != 0 || p.Find(9).BCID != 1 {
		t.Fatal("block-cyclic ownership wrong")
	}
	owned := p.OwnedGIDs(0)
	want := []int64{0, 1, 2, 6, 7, 8}
	if len(owned) != len(want) {
		t.Fatalf("owned = %v, want %v", owned, want)
	}
	for i := range want {
		if owned[i] != want[i] {
			t.Fatalf("owned = %v, want %v", owned, want)
		}
	}
	// Cyclic with block size 1.
	p1 := NewBlockCyclic(dom, 2, 1)
	if p1.Find(0).BCID != 0 || p1.Find(1).BCID != 1 || p1.Find(2).BCID != 0 {
		t.Fatal("cyclic(1) ownership wrong")
	}
}

func TestMappers(t *testing.T) {
	bm := NewBlockedMapper(8, 4)
	if bm.NumBContainers() != 8 {
		t.Fatal("numBC wrong")
	}
	if bm.Map(0) != 0 || bm.Map(1) != 0 || bm.Map(2) != 1 || bm.Map(7) != 3 {
		t.Fatal("blocked mapper wrong")
	}
	if got := bm.LocalBCIDs(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("local bcids = %v", got)
	}
	if !bm.IsLocal(2, 1) || bm.IsLocal(2, 0) {
		t.Fatal("IsLocal wrong")
	}

	cm := NewCyclicMapper(8, 3)
	if cm.Map(0) != 0 || cm.Map(1) != 1 || cm.Map(2) != 2 || cm.Map(3) != 0 {
		t.Fatal("cyclic mapper wrong")
	}
	if got := cm.LocalBCIDs(0); len(got) != 3 {
		t.Fatalf("cyclic local bcids = %v", got)
	}
	if cm.NumBContainers() != 8 || !cm.IsLocal(3, 0) {
		t.Fatal("cyclic mapper metadata wrong")
	}

	am := NewArbitraryMapper([]int{2, 0, 1, 2}, 3)
	if am.Map(0) != 2 || am.Map(2) != 1 {
		t.Fatal("arbitrary mapper wrong")
	}
	if got := am.LocalBCIDs(2); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("arbitrary local bcids = %v", got)
	}
	if am.NumBContainers() != 4 || !am.IsLocal(3, 2) || am.IsLocal(3, 0) {
		t.Fatal("arbitrary mapper metadata wrong")
	}
}

func TestMapperEdgeCases(t *testing.T) {
	// More locations than bContainers.
	bm := NewBlockedMapper(2, 8)
	seen := map[int]bool{}
	for b := 0; b < 2; b++ {
		loc := bm.Map(BCID(b))
		if loc < 0 || loc >= 8 {
			t.Fatalf("map out of range: %d", loc)
		}
		seen[loc] = true
	}
	if len(seen) == 0 {
		t.Fatal("no locations used")
	}
	// Zero locations clamps to one.
	if NewBlockedMapper(4, 0).Map(3) != 0 {
		t.Fatal("zero-location blocked mapper should map everything to 0")
	}
	if NewCyclicMapper(4, 0).Map(3) != 0 {
		t.Fatal("zero-location cyclic mapper should map everything to 0")
	}
}

func TestMapperCoverageProperty(t *testing.T) {
	// Property: every BCID maps to a valid location and appears in exactly
	// one location's LocalBCIDs list.
	prop := func(nBCRaw, nLocRaw uint8) bool {
		nBC := int(nBCRaw%40) + 1
		nLoc := int(nLocRaw%8) + 1
		for _, m := range []Mapper{NewBlockedMapper(nBC, nLoc), NewCyclicMapper(nBC, nLoc)} {
			owners := make([]int, nBC)
			for b := 0; b < nBC; b++ {
				loc := m.Map(BCID(b))
				if loc < 0 || loc >= nLoc {
					return false
				}
				owners[b] = loc
			}
			count := 0
			for loc := 0; loc < nLoc; loc++ {
				for _, b := range m.LocalBCIDs(loc) {
					if owners[b] != loc {
						return false
					}
					count++
				}
			}
			if count != nBC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInfoHelpers(t *testing.T) {
	f := Found(3)
	if !f.Valid || f.BCID != 3 {
		t.Fatal("Found wrong")
	}
	fw := Forward(2)
	if fw.Valid || fw.Hint != 2 || fw.BCID != InvalidBCID {
		t.Fatal("Forward wrong")
	}
}

func TestMemoryBytes(t *testing.T) {
	if MemoryBytes(NewBlockedMapper(10, 2)) != 24 {
		t.Fatal("closed-form mapper should report constant metadata")
	}
	if MemoryBytes(NewArbitraryMapper(make([]int, 10), 2)) != 80 {
		t.Fatal("arbitrary mapper metadata should scale with the table")
	}
}

// expectOutOfDomainPanic asserts fn panics with the closed-form partitions'
// out-of-domain message.
func expectOutOfDomainPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-domain Find should panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "outside") {
			t.Fatalf("panic %v, want an out-of-domain message", r)
		}
	}()
	fn()
}

// TestOutOfDomainFailsFast pins the closed-form partitions' contract: an
// index outside the domain is a caller bug and panics instead of silently
// resolving to Forward(0), which used to route the request to sub-domain 0
// and let the directory chase a hint that could never converge.  (Growing
// containers that need transient forwarding, like pVector, use their own
// resolver — see that package's tests.)
func TestOutOfDomainFailsFast(t *testing.T) {
	dom := domain.NewRange1D(10, 50)
	expl, err := NewExplicit(dom, []int64{15, 25})
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string]Indexed{
		"balanced":    NewBalanced(dom, 4),
		"blocked":     NewBlocked(dom, 7),
		"explicit":    expl,
		"blockcyclic": NewBlockCyclic(dom, 3, 4),
	}
	for name, p := range parts {
		for _, gid := range []int64{9, 50, -1, 1 << 40} {
			t.Run(name, func(t *testing.T) {
				expectOutOfDomainPanic(t, func() { p.Find(gid) })
			})
		}
		// The domain boundaries themselves still resolve.
		if !p.Find(10).Valid || !p.Find(49).Valid {
			t.Fatalf("%s: in-domain boundary GIDs must resolve", name)
		}
	}
}
