package partition

import (
	"fmt"

	"repro/internal/domain"
)

// MatrixLayout selects how a two-dimensional domain is decomposed
// (p_matrix_partition in the paper): by blocks of rows, blocks of columns,
// or a 2-D checkerboard of blocks.
type MatrixLayout int

// Matrix decomposition layouts.
const (
	RowBlocked MatrixLayout = iota
	ColBlocked
	Checkerboard
)

// Matrix partitions a Range2D domain into rectangular blocks.
type Matrix struct {
	dom    domain.Range2D
	layout MatrixLayout
	// grid dimensions of the block decomposition.
	gridRows, gridCols int
	rowBlocks          []domain.Range1D
	colBlocks          []domain.Range1D
}

// NewMatrix builds a matrix partition of dom into n sub-domains using the
// given layout.  For Checkerboard the n sub-domains are arranged in the most
// square grid that divides n.
func NewMatrix(dom domain.Range2D, n int, layout MatrixLayout) *Matrix {
	if n <= 0 {
		n = 1
	}
	p := &Matrix{dom: dom, layout: layout}
	switch layout {
	case RowBlocked:
		p.gridRows, p.gridCols = n, 1
	case ColBlocked:
		p.gridRows, p.gridCols = 1, n
	default:
		p.gridRows, p.gridCols = squarestGrid(n)
	}
	p.rowBlocks = domain.NewRange1D(0, dom.Rows).Split(p.gridRows)
	p.colBlocks = domain.NewRange1D(0, dom.Cols).Split(p.gridCols)
	return p
}

// squarestGrid returns the factorisation r*c = n with r and c as close as
// possible (r <= c).
func squarestGrid(n int) (int, int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// Domain returns the partitioned 2-D domain.
func (p *Matrix) Domain() domain.Range2D { return p.dom }

// NumSubdomains returns the number of blocks.
func (p *Matrix) NumSubdomains() int { return p.gridRows * p.gridCols }

// GridDims returns the block-grid dimensions (rows, cols).
func (p *Matrix) GridDims() (int, int) { return p.gridRows, p.gridCols }

// Find returns the block owning the given 2-D index.  An index outside the
// domain fails fast with a panic: the decomposition has a closed form, so no
// other location can know more about the index, and returning Forward(0) —
// the old behaviour — made an out-of-bounds access self-forward on location
// 0 until the forward-hop limit tripped far from the caller (the same bug
// pList's invalid-GID path fixed).
func (p *Matrix) Find(g domain.Index2D) Info {
	if !p.dom.Contains(g) {
		panic(fmt.Sprintf("partition: 2-D index %v outside the %dx%d matrix domain", g, p.dom.Rows, p.dom.Cols))
	}
	br := findBlock(p.rowBlocks, g.Row)
	bc := findBlock(p.colBlocks, g.Col)
	return Found(BCID(br*p.gridCols + bc))
}

func findBlock(blocks []domain.Range1D, x int64) int {
	lo, hi := 0, len(blocks)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := blocks[mid]
		switch {
		case x < b.Lo:
			hi = mid - 1
		case x >= b.Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return len(blocks) - 1
}

// Block returns the row and column ranges of sub-domain b.
func (p *Matrix) Block(b BCID) (rows, cols domain.Range1D) {
	br := int(b) / p.gridCols
	bc := int(b) % p.gridCols
	return p.rowBlocks[br], p.colBlocks[bc]
}

// SubSizes returns the number of elements in each block.
func (p *Matrix) SubSizes() []int64 {
	out := make([]int64, p.NumSubdomains())
	for b := range out {
		r, c := p.Block(BCID(b))
		out[b] = r.Size() * c.Size()
	}
	return out
}
