package partition

// Mapper is the partition-mapper concept (Table IX): it maps sub-domain
// identifiers (BCIDs) to the locations that store the corresponding base
// containers, and can enumerate the BCIDs local to a location.
type Mapper interface {
	// Map returns the location owning sub-domain b.
	Map(b BCID) int
	// NumBContainers returns the total number of sub-domains managed.
	NumBContainers() int
	// LocalBCIDs returns the BCIDs mapped to the given location, in
	// increasing order.
	LocalBCIDs(loc int) []BCID
	// IsLocal reports whether sub-domain b is mapped to loc.
	IsLocal(b BCID, loc int) bool
}

// BlockedMapper maps m sub-domains to p locations in contiguous groups of
// ceil(m/p): sub-domains 0..k-1 go to location 0, the next k to location 1,
// and so on.
type BlockedMapper struct {
	numBC, numLoc int
	group         int
}

// NewBlockedMapper builds a blocked mapper for numBC sub-domains over
// numLoc locations.
func NewBlockedMapper(numBC, numLoc int) *BlockedMapper {
	if numLoc <= 0 {
		numLoc = 1
	}
	group := (numBC + numLoc - 1) / numLoc
	if group == 0 {
		group = 1
	}
	return &BlockedMapper{numBC: numBC, numLoc: numLoc, group: group}
}

// Map returns the owning location of b.
func (m *BlockedMapper) Map(b BCID) int {
	loc := int(b) / m.group
	if loc >= m.numLoc {
		loc = m.numLoc - 1
	}
	return loc
}

// NumBContainers returns the number of managed sub-domains.
func (m *BlockedMapper) NumBContainers() int { return m.numBC }

// LocalBCIDs returns the sub-domains owned by loc.
func (m *BlockedMapper) LocalBCIDs(loc int) []BCID {
	var out []BCID
	for b := 0; b < m.numBC; b++ {
		if m.Map(BCID(b)) == loc {
			out = append(out, BCID(b))
		}
	}
	return out
}

// IsLocal reports whether b is owned by loc.
func (m *BlockedMapper) IsLocal(b BCID, loc int) bool { return m.Map(b) == loc }

// CyclicMapper maps sub-domain b to location b mod p.
type CyclicMapper struct {
	numBC, numLoc int
}

// NewCyclicMapper builds a cyclic mapper for numBC sub-domains over numLoc
// locations.
func NewCyclicMapper(numBC, numLoc int) *CyclicMapper {
	if numLoc <= 0 {
		numLoc = 1
	}
	return &CyclicMapper{numBC: numBC, numLoc: numLoc}
}

// Map returns b mod p.
func (m *CyclicMapper) Map(b BCID) int { return int(b) % m.numLoc }

// NumBContainers returns the number of managed sub-domains.
func (m *CyclicMapper) NumBContainers() int { return m.numBC }

// LocalBCIDs returns the sub-domains owned by loc.
func (m *CyclicMapper) LocalBCIDs(loc int) []BCID {
	var out []BCID
	for b := loc; b < m.numBC; b += m.numLoc {
		out = append(out, BCID(b))
	}
	return out
}

// IsLocal reports whether b is owned by loc.
func (m *CyclicMapper) IsLocal(b BCID, loc int) bool { return m.Map(b) == loc }

// ArbitraryMapper maps each sub-domain to an explicitly given location.
type ArbitraryMapper struct {
	locs   []int
	numLoc int
}

// NewArbitraryMapper builds a mapper from an explicit BCID→location table.
func NewArbitraryMapper(locs []int, numLoc int) *ArbitraryMapper {
	cp := append([]int(nil), locs...)
	return &ArbitraryMapper{locs: cp, numLoc: numLoc}
}

// Map returns the explicit location of b.
func (m *ArbitraryMapper) Map(b BCID) int { return m.locs[b] }

// NumBContainers returns the number of managed sub-domains.
func (m *ArbitraryMapper) NumBContainers() int { return len(m.locs) }

// LocalBCIDs returns the sub-domains owned by loc.
func (m *ArbitraryMapper) LocalBCIDs(loc int) []BCID {
	var out []BCID
	for b, l := range m.locs {
		if l == loc {
			out = append(out, BCID(b))
		}
	}
	return out
}

// IsLocal reports whether b is owned by loc.
func (m *ArbitraryMapper) IsLocal(b BCID, loc int) bool { return m.locs[b] == loc }

var (
	_ Mapper = (*BlockedMapper)(nil)
	_ Mapper = (*CyclicMapper)(nil)
	_ Mapper = (*ArbitraryMapper)(nil)
)

// MemoryBytes estimates the metadata footprint of a mapper, used by the
// containers' memory_size reporting (Table XXII/XXIII experiments).
func MemoryBytes(m Mapper) int64 {
	switch v := m.(type) {
	case *ArbitraryMapper:
		return int64(len(v.locs)) * 8
	default:
		return 24 // closed-form mappers store a constant amount of state
	}
}
