package partition

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/runtime"
)

func TestLoadStatsImbalance(t *testing.T) {
	cases := []struct {
		name   string
		counts []int64
		want   float64
	}{
		{"balanced", []int64{10, 10, 10, 10}, 1},
		{"all-on-one", []int64{40, 0, 0, 0}, 4},
		{"mild", []int64{15, 10, 10, 5}, 1.5},
		{"empty", []int64{0, 0}, 1},
		{"no-locations", nil, 1},
	}
	for _, c := range cases {
		var total int64
		for _, v := range c.counts {
			total += v
		}
		s := LoadStats{Counts: c.counts, Total: total}
		if got := s.Imbalance(); got != c.want {
			t.Errorf("%s: imbalance = %v, want %v", c.name, got, c.want)
		}
	}
	s := LoadStats{Counts: []int64{15, 10, 10, 5}, Total: 40}
	if !s.ShouldRebalance(1.1) {
		t.Error("1.5x imbalance should exceed a 1.1 threshold")
	}
	if s.ShouldRebalance(2.0) {
		t.Error("1.5x imbalance should not exceed a 2.0 threshold")
	}
}

func TestCollectLoadIsCollective(t *testing.T) {
	runtime.ExecuteOn(4, func(loc *runtime.Location) {
		local := int64((loc.ID() + 1) * 10)
		s := CollectLoad(loc, local)
		if s.Total != 100 {
			t.Errorf("total = %d, want 100", s.Total)
		}
		for i, c := range s.Counts {
			if c != int64((i+1)*10) {
				t.Errorf("count[%d] = %d, want %d", i, c, (i+1)*10)
			}
		}
	})
}

func TestProposeBalanced(t *testing.T) {
	s := LoadStats{Counts: []int64{90, 5, 3, 2}, Total: 100}
	p, m := s.ProposeBalanced(domain.NewRange1D(0, 100))
	if p.NumSubdomains() != 4 || m.NumBContainers() != 4 {
		t.Fatalf("want 4 sub-domains mapped 1:1, got %d/%d", p.NumSubdomains(), m.NumBContainers())
	}
	for b := 0; b < 4; b++ {
		if p.SubDomain(BCID(b)).Size() != 25 {
			t.Errorf("sub-domain %d size = %d, want 25", b, p.SubDomain(BCID(b)).Size())
		}
		if m.Map(BCID(b)) != b {
			t.Errorf("sub-domain %d mapped to %d, want %d", b, m.Map(BCID(b)), b)
		}
	}
}

func TestProposeMappingEvensLoads(t *testing.T) {
	sizes := []int64{50, 30, 20, 10, 10, 10, 5, 5}
	m := ProposeMapping(sizes, 4)
	load := make([]int64, 4)
	for b, s := range sizes {
		load[m.Map(BCID(b))] += s
	}
	var min, max int64 = load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// 140 elements over 4 locations: the LPT heuristic lands every
	// location within one largest-remaining item of the mean.
	if max > 50 || min < 30 {
		t.Errorf("LPT loads = %v, want them near 35 each", load)
	}
	// Every sub-domain is assigned to a legal location.
	for b := range sizes {
		if l := m.Map(BCID(b)); l < 0 || l >= 4 {
			t.Errorf("sub-domain %d mapped to illegal location %d", b, l)
		}
	}
}

func TestProposeMappingSpreadsEmptyBuckets(t *testing.T) {
	// All-equal (here: all-empty) sub-domains must spread round-robin, not
	// pile onto location 0 — rebalancing an empty container would otherwise
	// skew every future insert.
	m := ProposeMapping(make([]int64, 8), 4)
	perLoc := make([]int, 4)
	for b := 0; b < 8; b++ {
		perLoc[m.Map(BCID(b))]++
	}
	for l, n := range perLoc {
		if n != 2 {
			t.Errorf("location %d got %d empty buckets, want 2 (spread %v)", l, n, perLoc)
		}
	}
}

func TestCollectSubSizes(t *testing.T) {
	runtime.ExecuteOn(4, func(loc *runtime.Location) {
		// Each location owns buckets [2*id, 2*id+1] with known sizes.
		local := make([]int64, 8)
		local[2*loc.ID()] = int64(loc.ID() + 1)
		local[2*loc.ID()+1] = int64(10 * (loc.ID() + 1))
		sizes := CollectSubSizes(loc, local)
		for i := 0; i < 4; i++ {
			if sizes[2*i] != int64(i+1) || sizes[2*i+1] != int64(10*(i+1)) {
				t.Errorf("bucket sizes for location %d = (%d,%d), want (%d,%d)",
					i, sizes[2*i], sizes[2*i+1], i+1, 10*(i+1))
			}
		}
	})
}
