package partition

import "sort"

// Hashed partitions an (unbounded) key universe into a fixed number of
// sub-domains by hashing the key, the default distribution of unordered
// associative pContainers (pHashMap, pHashSet).  The decomposition has a
// closed form, so lookups never need forwarding.
type Hashed[K comparable] struct {
	n    int
	hash func(K) uint64
}

// NewHashed builds a hashed partition into n sub-domains using the given
// hash function.
func NewHashed[K comparable](n int, hash func(K) uint64) *Hashed[K] {
	if n <= 0 {
		n = 1
	}
	return &Hashed[K]{n: n, hash: hash}
}

// NumSubdomains returns the number of sub-domains.
func (p *Hashed[K]) NumSubdomains() int { return p.n }

// Find returns the sub-domain owning key k.
func (p *Hashed[K]) Find(k K) Info {
	return Found(BCID(p.hash(k) % uint64(p.n)))
}

// Ranged partitions an ordered key universe into contiguous key ranges using
// explicit splitters (the value-based partition of sorted associative
// pContainers, Fig. 58).  Sub-domain i owns keys in [splitter[i-1],
// splitter[i]), with the first and last sub-domains open below and above.
type Ranged[K any] struct {
	splitters []K
	less      func(a, b K) bool
}

// NewRanged builds a range partition with the given splitters (must be
// sorted according to less).  With s splitters there are s+1 sub-domains.
func NewRanged[K any](splitters []K, less func(a, b K) bool) *Ranged[K] {
	return &Ranged[K]{splitters: append([]K(nil), splitters...), less: less}
}

// NumSubdomains returns the number of key ranges.
func (p *Ranged[K]) NumSubdomains() int { return len(p.splitters) + 1 }

// Find returns the sub-domain owning key k.
func (p *Ranged[K]) Find(k K) Info {
	// First splitter strictly greater than k determines the range.
	idx := sort.Search(len(p.splitters), func(i int) bool { return p.less(k, p.splitters[i]) })
	return Found(BCID(idx))
}

// Splitters returns the splitter keys (a copy).
func (p *Ranged[K]) Splitters() []K { return append([]K(nil), p.splitters...) }

// StringHash is a simple FNV-1a hash usable as the hash function of a
// Hashed[string] partition.
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Int64Hash mixes an int64 key (SplitMix64 finaliser) for Hashed[int64]
// partitions.
func Int64Hash(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
