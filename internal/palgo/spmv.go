package palgo

import (
	"fmt"
	"sort"

	"repro/internal/bcontainer"
	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/runtime"
)

// SpMV computes y = A·x for a CSR-backed sparse pMatrix (the sparse sibling
// of MatVec).  Each location walks the CSR blocks it stores through their
// native row spans — no per-element calls, no densification: only the x
// entries some stored nonzero actually multiplies are fetched, as one
// grouped bulk read per block, and the per-row partial sums flush into y as
// one grouped CombineBulk request per destination.  Work and communication
// volume scale with the nonzeros, not with rows×cols.  y is overwritten and
// must not alias x.  Collective.
func SpMV[T Numeric](loc *runtime.Location, a *pmatrix.SparseMatrix[T], x, y *pvector.Vector[T]) {
	if x.Size() != a.Cols() || y.Size() != a.Rows() {
		panic(fmt.Sprintf("palgo: SpMV dimensions %dx%d · %d -> %d", a.Rows(), a.Cols(), x.Size(), y.Size()))
	}
	if x == y {
		panic("palgo: SpMV output must not alias x")
	}
	// Phase 1: clear y (every element is owned by exactly one location).
	var zero T
	y.LocalUpdate(func(int64, T) T { return zero })
	loc.Fence()

	// Phase 2: accumulate this location's block contributions.
	var idxs []int64
	var vals []T
	a.RangeLocalBlocks(func(bc *bcontainer.SparseMatrixBlock[T]) {
		if bc.NNZ() == 0 {
			return
		}
		// Gather only the x entries this block's nonzeros touch: the sorted
		// union of the block's stored columns, one grouped read per owner.
		rows := bc.Rows()
		need := make(map[int64]int)
		for r := rows.Lo; r < rows.Hi; r++ {
			cs, _ := bc.RowNZ(r)
			for _, c := range cs {
				need[c] = 0
			}
		}
		cols := make([]int64, 0, len(need))
		for c := range need {
			cols = append(cols, c)
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		for i, c := range cols {
			need[c] = i
		}
		xs := x.GetBulk(cols)
		// Walk the rows through their native CSR spans.
		for r := rows.Lo; r < rows.Hi; r++ {
			cs, vs := bc.RowNZ(r)
			if len(cs) == 0 {
				continue
			}
			var acc T
			for k, c := range cs {
				acc += vs[k] * xs[need[c]]
			}
			idxs = append(idxs, r)
			vals = append(vals, acc)
		}
	})
	// One bulk RMI per destination carries every partial this location
	// produced; addition is commutative, so concurrent combiners are safe.
	y.CombineBulk(idxs, vals, func(cur, val T) T { return cur + val })
	loc.Fence()
}
