package palgo

import (
	"sync/atomic"
	"testing"

	"repro/internal/containers/parray"
	"repro/internal/containers/passoc"
	"repro/internal/containers/pvector"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/views"
	"repro/internal/workload"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestGenerateAndAccumulate(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 1000)
		v := views.NewArrayNative(pa)
		Generate(loc, v, func(i int64) int64 { return i })
		sum := Accumulate(loc, v, 0, func(a, b int64) int64 { return a + b })
		want := int64(999 * 1000 / 2)
		if sum != want {
			t.Errorf("sum = %d, want %d", sum, want)
		}
		// Accumulate with a non-zero initial value folds it exactly once.
		sum2 := Accumulate(loc, v, 5, func(a, b int64) int64 { return a + b })
		if sum2 != want+5 {
			t.Errorf("sum with init = %d, want %d", sum2, want+5)
		}
		loc.Fence()
	})
}

func TestForEachVisitsEveryElementOnce(t *testing.T) {
	var visits atomic.Int64
	run(3, func(loc *runtime.Location) {
		pa := parray.New[int](loc, 100)
		v := views.NewArrayNative(pa)
		ForEach(loc, v, func(i int64, x int) { visits.Add(1) })
		loc.Fence()
	})
	if visits.Load() != 100 {
		t.Fatalf("ForEach visited %d elements, want 100", visits.Load())
	}
}

func TestTransformInPlaceAndTransform(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		in := parray.New[int64](loc, 64)
		out := parray.New[int64](loc, 64)
		vin := views.NewArrayNative(in)
		vout := views.NewArrayNative(out)
		Iota(loc, vin, 0)
		TransformInPlace(loc, vin, func(i int64, x int64) int64 { return x * 2 })
		if got := in.Get(10); got != 20 {
			t.Errorf("in[10] = %d", got)
		}
		Transform(loc, vin, vout, func(x int64) int64 { return x + 1 })
		if got := out.Get(10); got != 21 {
			t.Errorf("out[10] = %d", got)
		}
		// p_for_each over the two containers with Copy.
		Copy(loc, vout, vin)
		if got := in.Get(63); got != 127 {
			t.Errorf("copied in[63] = %d", got)
		}
		loc.Fence()
	})
}

func TestCountIfFindMinMax(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 200)
		v := views.NewArrayNative(pa)
		Generate(loc, v, func(i int64) int64 { return i % 10 })
		if n := CountIf(loc, v, func(x int64) bool { return x == 3 }); n != 20 {
			t.Errorf("count = %d", n)
		}
		if idx := Find(loc, v, func(x int64) bool { return x == 7 }); idx != 7 {
			t.Errorf("find = %d", idx)
		}
		if idx := Find(loc, v, func(x int64) bool { return x == 99 }); idx != -1 {
			t.Errorf("find missing = %d", idx)
		}
		less := func(a, b int64) bool { return a < b }
		if mn, ok := MinElement(loc, v, less); !ok || mn != 0 {
			t.Errorf("min = %d,%v", mn, ok)
		}
		if mx, ok := MaxElement(loc, v, less); !ok || mx != 9 {
			t.Errorf("max = %d,%v", mx, ok)
		}
		loc.Fence()
	})
}

func TestReduceEmptyView(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 0)
		v := views.NewArrayNative(pa)
		if _, ok := Reduce(loc, v, func(a, b int64) int64 { return a + b }); ok {
			t.Error("reduce of empty view should report not-ok")
		}
		if s := Accumulate(loc, v, 42, func(a, b int64) int64 { return a + b }); s != 42 {
			t.Errorf("accumulate of empty view = %d, want init", s)
		}
		loc.Fence()
	})
}

func TestPartialSum(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 100)
		v := views.NewArrayNative(pa)
		Fill(loc, v, int64(1))
		PartialSum(loc, v, 0, func(a, b int64) int64 { return a + b })
		// Element i must now hold i+1.
		for _, i := range []int64{0, 1, 25, 50, 73, 99} {
			if got := pa.Get(i); got != i+1 {
				t.Errorf("prefix[%d] = %d, want %d", i, got, i+1)
			}
		}
		loc.Fence()
	})
}

func TestPartialSumArbitraryValues(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 31)
		v := views.NewArrayNative(pa)
		Generate(loc, v, func(i int64) int64 { return i % 5 })
		PartialSum(loc, v, 0, func(a, b int64) int64 { return a + b })
		var want int64
		for i := int64(0); i < 31; i++ {
			want += i % 5
			if got := pa.Get(i); got != want {
				t.Errorf("prefix[%d] = %d, want %d", i, got, want)
				return
			}
		}
		loc.Fence()
	})
}

func TestAdjacentDifference(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		in := parray.New[int64](loc, 20)
		out := parray.New[int64](loc, 20)
		vin := views.NewArrayNative(in)
		Generate(loc, vin, func(i int64) int64 { return i * i })
		AdjacentDifference(loc, vin, views.NewArrayNative(out), func(cur, prev int64) int64 { return cur - prev })
		if out.Get(0) != 0 {
			t.Errorf("out[0] = %d", out.Get(0))
		}
		for _, i := range []int64{1, 5, 10, 19} {
			if got := out.Get(i); got != 2*i-1 {
				t.Errorf("out[%d] = %d, want %d", i, got, 2*i-1)
			}
		}
		loc.Fence()
	})
}

func TestAlgorithmsOverBalancedAndVectorViews(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pv := pvector.New[int64](loc, 120)
		nat := views.NewVectorNative(pv)
		Generate(loc, nat, func(i int64) int64 { return 1 })
		// Balanced view over the vector gives the same reduction result.
		bal := views.NewBalanced[int64](nat)
		if s := Accumulate(loc, bal, 0, func(a, b int64) int64 { return a + b }); s != 120 {
			t.Errorf("balanced sum = %d", s)
		}
		loc.Fence()
	})
}

func TestSampleSort(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const n = 500
		pa := parray.New[int64](loc, n)
		v := views.NewArrayNative(pa)
		// Deterministic pseudo-random fill.
		Generate(loc, v, func(i int64) int64 { return (i*1103515245 + 12345) % 10007 })
		if IsSorted(loc, v, func(a, b int64) bool { return a < b }) {
			t.Error("input is unexpectedly sorted")
		}
		SampleSort(loc, pa, func(a, b int64) bool { return a < b })
		if !IsSorted(loc, v, func(a, b int64) bool { return a < b }) {
			t.Error("output is not sorted")
		}
		// The multiset of values is preserved.
		sum := Accumulate(loc, v, 0, func(a, b int64) int64 { return a + b })
		var want int64
		for i := int64(0); i < n; i++ {
			want += (i*1103515245 + 12345) % 10007
		}
		if sum != want {
			t.Errorf("sum after sort = %d, want %d", sum, want)
		}
		loc.Fence()
	})
}

func TestSampleSortSingleLocation(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		pa := parray.New[int64](loc, 50)
		v := views.NewArrayNative(pa)
		Generate(loc, v, func(i int64) int64 { return 50 - i })
		SampleSort(loc, pa, func(a, b int64) bool { return a < b })
		if !IsSorted(loc, v, func(a, b int64) bool { return a < b }) {
			t.Error("not sorted")
		}
		if pa.Get(0) != 1 || pa.Get(49) != 50 {
			t.Error("values wrong after sort")
		}
	})
}

func TestMapReduceWordCount(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		out := passoc.NewHashMap[string, int64](loc, partition.StringHash)
		// Each location contributes the same tiny corpus.
		words := []string{"a", "b", "a", "c", "a", "b"}
		WordCount(loc, words, out)
		if n, _ := out.Find("a"); n != int64(3*loc.NumLocations()) {
			t.Errorf("count(a) = %d", n)
		}
		if n, _ := out.Find("b"); n != int64(2*loc.NumLocations()) {
			t.Errorf("count(b) = %d", n)
		}
		if out.Size() != 3 {
			t.Errorf("distinct words = %d", out.Size())
		}
		loc.Fence()
	})
}

func TestMapReduceWithZipfCorpus(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		out := passoc.NewHashMap[string, int64](loc, partition.StringHash)
		corpus := workload.Zipf(loc, 2000, 50, 1.2)
		WordCount(loc, corpus, out)
		var localTotal int64
		out.LocalRange(func(_ string, c int64) bool { localTotal += c; return true })
		total := runtime.AllReduceSum(loc, localTotal)
		if total != 4000 {
			t.Errorf("total word occurrences = %d, want 4000", total)
		}
		if out.Size() <= 0 || out.Size() > 50 {
			t.Errorf("distinct words = %d", out.Size())
		}
		loc.Fence()
	})
}

func TestGenericMapReduce(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		out := passoc.NewHashMap[int64, int64](loc, partition.Int64Hash)
		// Histogram of numbers mod 5, each location over its own range.
		nums := make([]int64, 0, 100)
		for i := int64(0); i < 100; i++ {
			nums = append(nums, i)
		}
		MapReduce(loc, nums, out,
			func(x int64, emit func(int64, int64)) { emit(x%5, 1) },
			func(acc, v int64) int64 { return acc + v })
		if n, _ := out.Find(3); n != int64(20*loc.NumLocations()) {
			t.Errorf("bucket 3 = %d", n)
		}
		loc.Fence()
	})
}
