package palgo

import (
	"math"
	"testing"

	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// refMatVec computes the reference y = A·x sequentially.
func refMatVec(rows, cols int64, a func(r, c int64) int64, x func(c int64) int64) []int64 {
	out := make([]int64, rows)
	for r := int64(0); r < rows; r++ {
		var acc int64
		for c := int64(0); c < cols; c++ {
			acc += a(r, c) * x(c)
		}
		out[r] = acc
	}
	return out
}

func TestMatVecAgainstReference(t *testing.T) {
	const rows, cols = int64(12), int64(9)
	aElem := func(r, c int64) int64 { return r*3 + c%5 + 1 }
	xElem := func(c int64) int64 { return c + 1 }
	want := refMatVec(rows, cols, aElem, xElem)
	for _, layout := range []partition.MatrixLayout{partition.RowBlocked, partition.ColBlocked, partition.Checkerboard} {
		layout := layout
		run(4, func(loc *runtime.Location) {
			a := pmatrix.New[int64](loc, rows, cols, pmatrix.WithLayout(layout))
			a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return aElem(g.Row, g.Col) })
			x := pvector.New[int64](loc, cols)
			x.LocalUpdate(func(gid int64, _ int64) int64 { return xElem(gid) })
			y := pvector.New[int64](loc, rows)
			y.LocalUpdate(func(int64, int64) int64 { return -1 }) // overwritten
			loc.Fence()
			MatVec[int64](loc, a, x, y)
			for r := int64(0); r < rows; r++ {
				if got := y.Get(r); got != want[r] {
					t.Errorf("layout %v: y[%d] = %d, want %d", layout, r, got, want[r])
					return
				}
			}
			loc.Fence()
		})
	}
}

func TestMatMulAgainstReference(t *testing.T) {
	const m, k, n = int64(6), int64(5), int64(7)
	aElem := func(r, c int64) int64 { return r - c + 2 }
	bElem := func(r, c int64) int64 { return r*c%4 + 1 }
	want := make([]int64, m*n)
	for r := int64(0); r < m; r++ {
		for j := int64(0); j < n; j++ {
			var acc int64
			for kk := int64(0); kk < k; kk++ {
				acc += aElem(r, kk) * bElem(kk, j)
			}
			want[r*n+j] = acc
		}
	}
	for _, layout := range []partition.MatrixLayout{partition.RowBlocked, partition.Checkerboard} {
		layout := layout
		run(4, func(loc *runtime.Location) {
			a := pmatrix.New[int64](loc, m, k, pmatrix.WithLayout(layout))
			b := pmatrix.New[int64](loc, k, n, pmatrix.WithLayout(layout))
			c := pmatrix.New[int64](loc, m, n, pmatrix.WithLayout(layout))
			a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return aElem(g.Row, g.Col) })
			b.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return bElem(g.Row, g.Col) })
			c.UpdateLocal(func(domain.Index2D, int64) int64 { return 99 }) // overwritten
			loc.Fence()
			MatMul[int64](loc, a, b, c)
			for r := int64(0); r < m; r++ {
				for j := int64(0); j < n; j++ {
					if got := c.Get(r, j); got != want[r*n+j] {
						t.Errorf("layout %v: C[%d,%d] = %d, want %d", layout, r, j, got, want[r*n+j])
						return
					}
				}
			}
			loc.Fence()
		})
	}
}

func TestJacobi2DConverges(t *testing.T) {
	const rows, cols = int64(12), int64(10)
	run(4, func(loc *runtime.Location) {
		cur := pmatrix.New[float64](loc, rows, cols)
		next := pmatrix.New[float64](loc, rows, cols)
		// A hot top edge diffusing into a cold plate; both buffers start
		// from the same field so the fixed boundary is consistent.
		init := func(g domain.Index2D, _ float64) float64 {
			if g.Row == 0 {
				return 100
			}
			return 0
		}
		cur.UpdateLocal(init)
		next.UpdateLocal(init)
		loc.Fence()
		before := Jacobi2DResidual(loc, cur)
		final := Jacobi2D(loc, cur, next, 60)
		after := Jacobi2DResidual(loc, final)
		if !(after < before/10) {
			t.Errorf("residual %.4f -> %.4f: sweeps did not converge", before, after)
		}
		// The boundary stayed fixed and interior values are between the
		// boundary extremes.
		if got := final.Get(0, cols/2); got != 100 {
			t.Errorf("hot boundary drifted to %v", got)
		}
		if got := final.Get(rows/2, cols/2); got <= 0 || got >= 100 || math.IsNaN(got) {
			t.Errorf("interior value %v out of range", got)
		}
		loc.Fence()
	})
}

// TestJacobi2DMatchesSequential pins the sweep against a sequential
// reference on a small plate.
func TestJacobi2DMatchesSequential(t *testing.T) {
	const rows, cols = int64(6), int64(5)
	const sweeps = 7
	// Sequential reference.
	ref := make([]float64, rows*cols)
	tmp := make([]float64, rows*cols)
	for c := int64(0); c < cols; c++ {
		ref[c] = 50
	}
	copy(tmp, ref)
	for s := 0; s < sweeps; s++ {
		for r := int64(1); r < rows-1; r++ {
			for c := int64(1); c < cols-1; c++ {
				tmp[r*cols+c] = 0.25 * (ref[(r-1)*cols+c] + ref[(r+1)*cols+c] + ref[r*cols+c-1] + ref[r*cols+c+1])
			}
		}
		ref, tmp = tmp, ref
	}
	run(2, func(loc *runtime.Location) {
		cur := pmatrix.New[float64](loc, rows, cols)
		next := pmatrix.New[float64](loc, rows, cols)
		init := func(g domain.Index2D, _ float64) float64 {
			if g.Row == 0 {
				return 50
			}
			return 0
		}
		cur.UpdateLocal(init)
		next.UpdateLocal(init)
		loc.Fence()
		final := Jacobi2D(loc, cur, next, sweeps)
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				if got := final.Get(r, c); math.Abs(got-ref[r*cols+c]) > 1e-12 {
					t.Errorf("(%d,%d) = %v, want %v", r, c, got, ref[r*cols+c])
					return
				}
			}
		}
		loc.Fence()
	})
}

func TestMatVecDimensionMismatchPanics(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		a := pmatrix.New[int64](loc, 3, 4)
		x := pvector.New[int64](loc, 3) // wrong: needs 4
		y := pvector.New[int64](loc, 3)
		defer func() {
			if recover() == nil {
				t.Error("MatVec with mismatched dimensions did not panic")
			}
		}()
		MatVec[int64](loc, a, x, y)
	})
}
