package palgo

import (
	"math"
	"testing"

	"repro/internal/containers/parray"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/views"
)

func TestDotAndAxpy(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const n = 100
		x := parray.New[int64](loc, n)
		y := parray.New[int64](loc, n)
		xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
		Generate(loc, xv, func(i int64) int64 { return i })
		Generate(loc, yv, func(i int64) int64 { return 2 })
		// dot(i, 2) = 2 * sum(i) = n*(n-1).
		if got := Dot[int64](loc, xv, yv); got != n*(n-1) {
			t.Errorf("dot = %d, want %d", got, n*(n-1))
		}
		// y = 3x + y.
		Axpy[int64](loc, 3, xv, yv)
		ForEach(loc, yv, func(i int64, v int64) {
			if v != 3*i+2 {
				t.Errorf("axpy y[%d] = %d, want %d", i, v, 3*i+2)
			}
		})
		loc.Fence()
	})
}

func TestDotOverMisalignedDistributions(t *testing.T) {
	// The zip pairs a blocked array with one stored entirely on location
	// 0: the coarsened traversal must still produce the exact result.
	run(4, func(loc *runtime.Location) {
		const n = int64(64)
		x := parray.New[int64](loc, n)
		sizes := make([]int64, loc.NumLocations())
		sizes[0] = n
		part, err := partition.NewExplicit(domain.NewRange1D(0, n), sizes)
		if err != nil {
			t.Fatal(err)
		}
		y := parray.New[int64](loc, n,
			parray.WithPartition(part),
			parray.WithMapper(partition.NewBlockedMapper(loc.NumLocations(), loc.NumLocations())))
		xv, yv := views.NewArrayNative(x), views.NewArrayNative(y)
		Generate(loc, xv, func(i int64) int64 { return i })
		Generate(loc, yv, func(i int64) int64 { return i })
		var want int64
		for i := int64(0); i < n; i++ {
			want += i * i
		}
		if got := Dot[int64](loc, xv, yv); got != want {
			t.Errorf("misaligned dot = %d, want %d", got, want)
		}
		loc.Fence()
	})
}

func TestJacobi1DConvergesToLinearProfile(t *testing.T) {
	// With fixed boundaries 100 and 0 the Jacobi iteration converges to
	// the linear interpolation between them.
	run(4, func(loc *runtime.Location) {
		const n = int64(16)
		cur := parray.New[float64](loc, n)
		next := parray.New[float64](loc, n)
		cv, nv := views.NewArrayNative(cur), views.NewArrayNative(next)
		Generate(loc, cv, func(i int64) float64 {
			if i == 0 {
				return 100
			}
			return 0
		})
		Copy[float64](loc, cv, nv)
		final := Jacobi1D(loc, cv, nv, 800)
		res := JacobiResidual(loc, final)
		if res > 1e-6 {
			t.Errorf("residual after convergence = %g", res)
		}
		for _, r := range final.LocalRanges(loc) {
			for i := r.Lo; i < r.Hi; i++ {
				want := 100 * float64(n-1-i) / float64(n-1)
				if math.Abs(final.Get(i)-want) > 1e-4 {
					t.Errorf("x[%d] = %f, want %f", i, final.Get(i), want)
				}
			}
		}
		loc.Fence()
	})
}

func TestJacobi1DZeroIterations(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		cur := parray.New[float64](loc, 8)
		next := parray.New[float64](loc, 8)
		cv, nv := views.NewArrayNative(cur), views.NewArrayNative(next)
		Fill(loc, cv, 7.0)
		if final := Jacobi1D(loc, cv, nv, 0); final.Get(3) != 7 {
			t.Error("zero iterations must return the input unchanged")
		}
		loc.Fence()
	})
}

func TestAdjacentDifferenceCrossesBoundaries(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const n = int64(40)
		in := parray.New[int64](loc, n)
		out := parray.New[int64](loc, n)
		iv, ov := views.NewArrayNative(in), views.NewArrayNative(out)
		Generate(loc, iv, func(i int64) int64 { return i * i })
		AdjacentDifference(loc, iv, ov, func(cur, prev int64) int64 { return cur - prev })
		ForEach(loc, ov, func(i int64, v int64) {
			want := 2*i - 1 // i² - (i-1)²
			if i == 0 {
				want = 0
			}
			if v != want {
				t.Errorf("diff[%d] = %d, want %d", i, v, want)
			}
		})
		loc.Fence()
	})
}
