// Package palgo implements the STAPL pAlgorithms used throughout the
// paper's evaluation: the generic data-parallel algorithms (p_for_each,
// p_generate, p_accumulate, p_transform, p_count_if, p_find, p_min/max,
// p_partial_sum, p_copy), a sample sort, and a MapReduce built on the
// associative pContainers.
//
// Every algorithm is an SPMD collective: all locations call it with the same
// arguments (their own Location plus views built over shared pContainers),
// each location processes the index ranges its view assigns to it, and the
// result — where there is one — is returned on every location.
package palgo

import (
	"repro/internal/domain"
	"repro/internal/runtime"
	"repro/internal/views"
)

// bulkChunk is how many elements the algorithms batch per chunk: large
// enough to amortise resolution and messaging on the remote remainder,
// small enough to keep the scratch buffers cache-resident.  Native chunks
// are split too — walking a raw segment in 2048-element windows costs
// nothing, and views without raw segments (Zip, Transform, Filtered) fall
// back to materialising each window, so the transient working set stays
// O(bulkChunk) instead of O(local share).
const bulkChunk = 2048

// forEachCoarsened drives the coarsened execution of every pAlgorithm: the
// view is partitioned into native chunks (this location's own storage) plus
// the remote remainder (views.Coarsen), every chunk is split into batches
// of at most bulkChunk elements, and body runs once per batch.  This is
// where the paper's "views drive coarsening" happens: the algorithms no
// longer hand-roll chunk loops, the composition of the view decides what is
// walked natively and what ships as grouped bulk requests.
func forEachCoarsened[T any](loc *runtime.Location, v views.Partitioned[T], body func(c views.LocalChunk)) {
	for _, c := range views.Coarsen(loc, v) {
		for lo := c.Range.Lo; lo < c.Range.Hi; lo += bulkChunk {
			hi := lo + bulkChunk
			if hi > c.Range.Hi {
				hi = c.Range.Hi
			}
			body(views.LocalChunk{Range: domain.NewRange1D(lo, hi), Kind: c.Kind})
		}
	}
}

// readCoarsened iterates every (index, value) pair of the calling
// location's share: native chunks through the raw storage segment when the
// view exposes one, everything else through the grouped bulk read path.
func readCoarsened[T any](loc *runtime.Location, v views.Partitioned[T], fn func(i int64, x T)) {
	forEachCoarsened(loc, v, func(c views.LocalChunk) {
		if c.Kind == views.ChunkNative {
			if seg, ok := views.Segment[T](v, c.Range); ok {
				for k, x := range seg {
					fn(c.Range.Lo+int64(k), x)
				}
				return
			}
		}
		for k, x := range views.ReadChunk[T](v, c.Range) {
			fn(c.Range.Lo+int64(k), x)
		}
	})
}

// ForEach applies fn to every (index, value) pair of the view.  fn must not
// mutate the view; use Generate or TransformInPlace for mutation.
// Collective.
func ForEach[T any](loc *runtime.Location, v views.Partitioned[T], fn func(i int64, x T)) {
	readCoarsened(loc, v, fn)
	loc.Fence()
}

// Generate assigns fn(i) to every element of the view (p_generate).
// Collective.  Native chunks of the coarsened view are filled in place at
// raw-slice speed; the remote remainder ships one grouped message per
// (chunk, owner) pair instead of one request per element.
func Generate[T any](loc *runtime.Location, v views.Partitioned[T], fn func(i int64) T) {
	forEachCoarsened(loc, v, func(c views.LocalChunk) {
		if c.Kind == views.ChunkNative {
			if seg, ok := views.Segment[T](v, c.Range); ok {
				for k := range seg {
					seg[k] = fn(c.Range.Lo + int64(k))
				}
				return
			}
		}
		vals := make([]T, 0, c.Range.Size())
		for i := c.Range.Lo; i < c.Range.Hi; i++ {
			vals = append(vals, fn(i))
		}
		views.WriteChunk[T](v, c.Range, vals)
	})
	loc.Fence()
}

// TransformInPlace replaces every element with fn(index, old value)
// (p_for_each with a mutating work function).  Collective.
func TransformInPlace[T any](loc *runtime.Location, v views.Partitioned[T], fn func(i int64, x T) T) {
	forEachCoarsened(loc, v, func(c views.LocalChunk) {
		if c.Kind == views.ChunkNative {
			if seg, ok := views.Segment[T](v, c.Range); ok {
				for k := range seg {
					seg[k] = fn(c.Range.Lo+int64(k), seg[k])
				}
				return
			}
		}
		vals := views.ReadChunk[T](v, c.Range)
		for k := range vals {
			vals[k] = fn(c.Range.Lo+int64(k), vals[k])
		}
		views.WriteChunk[T](v, c.Range, vals)
	})
	loc.Fence()
}

// Transform writes fn(in[i]) into out[i] for every index (p_transform).
// The views must have equal sizes.  Aliasing between in and out is allowed
// only element-aligned (out may be a constituent of in, as in Axpy's
// Zip2(x, y) → y): each chunk is fully read before any of its indices are
// written, but chunks are not ordered against each other, so shifted or
// permuted aliasing corrupts data.  Collective.  The traversal coarsens
// over the input view; each mapped chunk is then written through the
// output view's own coarsening (raw segment where local, bulk elsewhere),
// so the two views may be distributed differently.
func Transform[T any, U any](loc *runtime.Location, in views.Partitioned[T], out views.Partitioned[U], fn func(T) U) {
	forEachCoarsened(loc, in, func(c views.LocalChunk) {
		var vals []T
		if c.Kind == views.ChunkNative {
			if seg, ok := views.Segment[T](in, c.Range); ok {
				vals = seg
			}
		}
		if vals == nil {
			vals = views.ReadChunk[T](in, c.Range)
		}
		mapped := make([]U, 0, len(vals))
		for _, x := range vals {
			mapped = append(mapped, fn(x))
		}
		views.WriteRange[U](loc, out, c.Range, mapped)
	})
	loc.Fence()
}

// Copy copies in into out element-wise (p_copy).  Collective.
func Copy[T any](loc *runtime.Location, in views.Partitioned[T], out views.Partitioned[T]) {
	Transform(loc, in, out, func(x T) T { return x })
}

// Accumulate reduces the view with op starting from init (p_accumulate):
// the result equals folding op over init and every element exactly once.
// op must be associative and commutative.  The result is returned on every
// location.  Collective.
func Accumulate[T any](loc *runtime.Location, v views.Partitioned[T], init T, op func(a, b T) T) T {
	val, ok := Reduce(loc, v, op)
	if !ok {
		return init
	}
	return op(init, val)
}

// localAcc crosses the machine as a collective contribution, so its fields
// are exported (the multi-process control plane moves contributions as gob).
type localAcc[T any] struct {
	Val   T
	Valid bool
}

// Reduce reduces the view with op over its elements only (no initial value
// is folded in); it returns (zero, false) on an empty view.  Collective.
func Reduce[T any](loc *runtime.Location, v views.Partitioned[T], op func(a, b T) T) (T, bool) {
	var acc T
	valid := false
	readCoarsened(loc, v, func(_ int64, x T) {
		if !valid {
			acc, valid = x, true
		} else {
			acc = op(acc, x)
		}
	})
	out := runtime.AllReduceT(loc, localAcc[T]{Val: acc, Valid: valid}, func(a, b localAcc[T]) localAcc[T] {
		switch {
		case !a.Valid:
			return b
		case !b.Valid:
			return a
		default:
			return localAcc[T]{Val: op(a.Val, b.Val), Valid: true}
		}
	})
	loc.Fence()
	return out.Val, out.Valid
}

// CountIf returns the number of elements satisfying pred (p_count_if).
// Collective.
func CountIf[T any](loc *runtime.Location, v views.Partitioned[T], pred func(T) bool) int64 {
	var n int64
	readCoarsened(loc, v, func(_ int64, x T) {
		if pred(x) {
			n++
		}
	})
	total := runtime.AllReduceSum(loc, n)
	loc.Fence()
	return total
}

// Find returns the smallest index whose element satisfies pred, or -1 when
// none does (p_find_if).  Collective.
func Find[T any](loc *runtime.Location, v views.Partitioned[T], pred func(T) bool) int64 {
	best := int64(-1)
	for _, r := range v.LocalRanges(loc) {
		for i := r.Lo; i < r.Hi; i++ {
			if pred(v.Get(i)) {
				best = i
				break
			}
		}
		if best >= 0 {
			break
		}
	}
	out := runtime.AllReduceInt(loc, best, func(a, b int64) int64 {
		switch {
		case a < 0:
			return b
		case b < 0:
			return a
		case a < b:
			return a
		default:
			return b
		}
	})
	loc.Fence()
	return out
}

// MinElement returns the minimum element according to less, and false on an
// empty view (p_min_element).  Collective.
func MinElement[T any](loc *runtime.Location, v views.Partitioned[T], less func(a, b T) bool) (T, bool) {
	return Reduce(loc, v, func(a, b T) T {
		if less(b, a) {
			return b
		}
		return a
	})
}

// MaxElement returns the maximum element according to less (p_max_element).
// Collective.
func MaxElement[T any](loc *runtime.Location, v views.Partitioned[T], less func(a, b T) bool) (T, bool) {
	return Reduce(loc, v, func(a, b T) T {
		if less(a, b) {
			return b
		}
		return a
	})
}

// PartialSum computes inclusive prefix sums of the view in place
// (p_partial_sum, the prefix-sums algorithmic technique): element i becomes
// op(v[0], ..., v[i]).  Collective.
func PartialSum[T any](loc *runtime.Location, v views.Partitioned[T], zero T, op func(a, b T) T) {
	ranges := v.LocalRanges(loc)
	// Phase 1: local prefix within each local range; remember each range's
	// total and first index so the cross-location offsets can be applied.
	totals := make([]T, len(ranges))
	for k, r := range ranges {
		acc := zero
		for i := r.Lo; i < r.Hi; i++ {
			acc = op(acc, v.Get(i))
			v.Set(i, acc)
		}
		totals[k] = acc
	}
	loc.Fence()
	// Phase 2: gather (first index, total) of every range in the machine
	// and compute, for each of this location's ranges, the combined total
	// of all ranges that precede it in index order.
	type rangeTotal struct {
		Lo    int64
		Total T
	}
	local := make([]rangeTotal, len(ranges))
	for k, r := range ranges {
		local[k] = rangeTotal{Lo: r.Lo, Total: totals[k]}
	}
	all := runtime.AllGatherT(loc, local)
	var flat []rangeTotal
	for _, part := range all {
		flat = append(flat, part...)
	}
	// Phase 3: add the preceding offset to every local element.
	for _, r := range ranges {
		offset := zero
		hasOffset := false
		for _, rt := range flat {
			if rt.Lo < r.Lo {
				offset = op(offset, rt.Total)
				hasOffset = true
			}
		}
		if !hasOffset {
			continue
		}
		for i := r.Lo; i < r.Hi; i++ {
			v.Set(i, op(offset, v.Get(i)))
		}
	}
	loc.Fence()
}

// AdjacentDifference writes out[i] = op(in[i], in[i-1]) for i > 0 and
// out[0] = in[0].  The views must not alias.  Collective.  The input is
// materialised with a one-element left halo (ExchangeHalo), so the
// cross-boundary neighbour of each location's first element arrives in one
// grouped request instead of one RMI per boundary.
func AdjacentDifference[T any](loc *runtime.Location, in views.Partitioned[T], out views.Partitioned[T], op func(cur, prev T) T) {
	for _, c := range views.ExchangeHalo[T](loc, in, 1, 0) {
		vals := make([]T, 0, c.Core.Size())
		for i := c.Core.Lo; i < c.Core.Hi; i++ {
			if i == 0 {
				vals = append(vals, c.At(0))
				continue
			}
			vals = append(vals, op(c.At(i), c.At(i-1)))
		}
		views.WriteRange[T](loc, out, c.Core, vals)
	}
	loc.Fence()
}

// Iota fills the view with consecutive values starting at start.
// Collective.
func Iota(loc *runtime.Location, v views.Partitioned[int64], start int64) {
	Generate(loc, v, func(i int64) int64 { return start + i })
}

// Fill assigns val to every element.  Collective.
func Fill[T any](loc *runtime.Location, v views.Partitioned[T], val T) {
	Generate(loc, v, func(int64) T { return val })
}

// balancedShare returns the calling location's share of [0, n) (a helper for
// algorithms that generate their own input rather than reading a view).
func balancedShare(loc *runtime.Location, n int64) domain.Range1D {
	return domain.NewRange1D(0, n).Split(loc.NumLocations())[loc.ID()]
}
