package palgo

import (
	"repro/internal/containers/passoc"
	"repro/internal/runtime"
)

// MapReduce runs the paper's MapReduce pattern (Fig. 59) on top of the
// associative pContainers: every location feeds its local share of the input
// through mapFn, which emits (key, value) pairs; pairs are aggregated into
// the result pHashMap with reduceFn, using the container's atomic Apply as
// the combiner.  The reduction is initiated with the key's zero value.
// Collective; returns the populated result map (also passed in by the
// caller, constructed collectively).
func MapReduce[In any, K comparable, V any](
	loc *runtime.Location,
	input []In,
	out *passoc.HashMap[K, V],
	mapFn func(In, func(K, V)),
	reduceFn func(acc V, v V) V,
) *passoc.HashMap[K, V] {
	emit := func(k K, v V) {
		out.Apply(k, func(acc V) V { return reduceFn(acc, v) })
	}
	for _, rec := range input {
		mapFn(rec, emit)
	}
	loc.Fence()
	return out
}

// WordCount counts word occurrences across all locations' local corpora,
// the workload of the paper's Fig. 59 experiment.  Collective.
func WordCount(loc *runtime.Location, localWords []string, out *passoc.HashMap[string, int64]) *passoc.HashMap[string, int64] {
	return MapReduce(loc, localWords, out,
		func(w string, emit func(string, int64)) { emit(w, 1) },
		func(acc, v int64) int64 { return acc + v },
	)
}
