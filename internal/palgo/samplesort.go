package palgo

import (
	"sort"
	"sync"

	"repro/internal/containers/parray"
	"repro/internal/domain"
	"repro/internal/runtime"
	"repro/internal/views"
)

// SampleSort sorts a pArray in place using the classic sample-sort pattern
// the paper uses to motivate bucket-level atomicity: each location samples
// its local data, splitters are agreed on collectively, every element is
// shipped to the bucket (location) owning its splitter range, buckets are
// sorted locally, and the sorted buckets are written back into the array in
// global order.  Collective.
func SampleSort[T any](loc *runtime.Location, a *parray.Array[T], less func(x, y T) bool) {
	p := loc.NumLocations()
	// Phase 1: sample local data (oversampling factor 4).
	var local []T
	a.RangeLocal(func(_ int64, x T) bool { local = append(local, x); return true })
	samples := make([]T, 0, 4*p)
	if len(local) > 0 {
		step := len(local)/(4*p) + 1
		for i := 0; i < len(local); i += step {
			samples = append(samples, local[i])
		}
	}
	allSamples := runtime.AllGatherT(loc, samples)
	var pool []T
	for _, s := range allSamples {
		pool = append(pool, s...)
	}
	sort.Slice(pool, func(i, j int) bool { return less(pool[i], pool[j]) })
	// Choose p-1 splitters.
	splitters := make([]T, 0, p-1)
	for i := 1; i < p; i++ {
		if len(pool) == 0 {
			break
		}
		splitters = append(splitters, pool[i*len(pool)/p])
	}

	// Phase 2: ship every local element to its bucket's location.  The
	// elements are grouped by destination first, so each (source, bucket)
	// pair costs one bulk RMI instead of one request per element.
	buckets := newSortBuckets[T]()
	h := loc.RegisterObject(buckets)
	loc.Barrier()
	bucketOf := func(x T) int {
		idx := sort.Search(len(splitters), func(i int) bool { return less(x, splitters[i]) })
		return idx
	}
	perDest := make([][]T, p)
	for _, x := range local {
		dest := bucketOf(x)
		perDest[dest] = append(perDest[dest], x)
	}
	for dest, xs := range perDest {
		if len(xs) == 0 {
			continue
		}
		xs := xs
		loc.AsyncRMIBulk(dest, h, len(xs), 8*len(xs), func(obj any, _ *runtime.Location) {
			obj.(*sortBuckets[T]).addAll(xs)
		})
	}
	loc.Fence()

	// Phase 3: sort the local bucket and publish bucket sizes so that each
	// location knows where its bucket starts in the global order.
	buckets.mu.Lock()
	mine := buckets.data
	buckets.mu.Unlock()
	sort.Slice(mine, func(i, j int) bool { return less(mine[i], mine[j]) })
	start := runtime.ExclusiveScan(loc, int64(len(mine)), 0, func(a, b int64) int64 { return a + b })

	// Phase 4: write the sorted bucket back into the array through the
	// coarsened range writer: the slice of the global order that lands in
	// this location's own blocks is copied straight into the raw storage,
	// and only the overhang into neighbouring locations ships as grouped
	// bulk writes.
	views.WriteRange[T](loc, views.NewArrayNative(a), domain.NewRange1D(start, start+int64(len(mine))), mine)
	loc.Fence()
	loc.UnregisterObject(h)
	loc.Barrier()
}

// sortBuckets receives the elements routed to one location during
// SampleSort.
type sortBuckets[T any] struct {
	mu   sync.Mutex
	data []T
}

func newSortBuckets[T any]() *sortBuckets[T] { return &sortBuckets[T]{} }

func (b *sortBuckets[T]) add(x T) {
	b.mu.Lock()
	b.data = append(b.data, x)
	b.mu.Unlock()
}

func (b *sortBuckets[T]) addAll(xs []T) {
	b.mu.Lock()
	b.data = append(b.data, xs...)
	b.mu.Unlock()
}

// IsSorted reports (collectively) whether the view is globally sorted
// according to less.
func IsSorted[T any](loc *runtime.Location, v views.Partitioned[T], less func(a, b T) bool) bool {
	ok := int64(1)
	for _, r := range v.LocalRanges(loc) {
		for i := r.Lo; i < r.Hi; i++ {
			if i > 0 && less(v.Get(i), v.Get(i-1)) {
				ok = 0
				break
			}
		}
	}
	agreed := runtime.AllReduceInt(loc, ok, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
	loc.Fence()
	return agreed == 1
}
