package palgo

import (
	"testing"

	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/runtime"
)

// TestSpMVMatchesDenseMatVec builds the same matrix in dense and CSR form
// and checks y = A·x agrees element-for-element between MatVec and SpMV.
func TestSpMVMatchesDenseMatVec(t *testing.T) {
	runtime.NewMachine(4, runtime.DefaultConfig()).Execute(func(loc *runtime.Location) {
		const n = 40
		a := pmatrix.New[int64](loc, n, n)
		sp := pmatrix.NewSparse[int64](loc, n, n)
		if loc.ID() == 0 {
			for r := int64(0); r < n; r++ {
				for c := int64(0); c < n; c++ {
					if (r*13+c*7)%9 == 0 {
						a.Set(r, c, r+2*c+1)
						sp.Set(r, c, r+2*c+1)
					}
				}
			}
		}
		x := pvector.New[int64](loc, n)
		x.LocalUpdate(func(i int64, _ int64) int64 { return i%5 + 1 })
		yd := pvector.New[int64](loc, n)
		ys := pvector.New[int64](loc, n)
		loc.Fence()

		MatVec(loc, a, x, yd)
		SpMV(loc, sp, x, ys)

		for i := int64(0); i < n; i++ {
			if dv, sv := yd.Get(i), ys.Get(i); dv != sv {
				t.Fatalf("y[%d]: dense %d != sparse %d", i, dv, sv)
			}
		}
		loc.Fence()
	})
}

// TestSpMVEmptyMatrix checks the all-zero edge case: y must come back zero.
func TestSpMVEmptyMatrix(t *testing.T) {
	runtime.NewMachine(2, runtime.DefaultConfig()).Execute(func(loc *runtime.Location) {
		const n = 16
		sp := pmatrix.NewSparse[int64](loc, n, n)
		x := pvector.New[int64](loc, n)
		x.LocalUpdate(func(i int64, _ int64) int64 { return i + 1 })
		y := pvector.New[int64](loc, n)
		y.LocalUpdate(func(int64, int64) int64 { return 99 }) // must be overwritten
		loc.Fence()
		SpMV(loc, sp, x, y)
		for i := int64(0); i < n; i++ {
			if got := y.Get(i); got != 0 {
				t.Fatalf("y[%d] = %d, want 0", i, got)
			}
		}
		loc.Fence()
	})
}
