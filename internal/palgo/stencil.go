// Zipped and stencil kernels: the workloads that only view composition
// enables.  Dot and Axpy run over a Zip2 of two (possibly differently
// distributed) views; Jacobi1D sweeps a 1-D field through the overlap/halo
// face of the algebra, exchanging boundary cells as grouped bulk requests.
package palgo

import (
	"math"

	"repro/internal/runtime"
	"repro/internal/views"
)

// Numeric constrains the element types of the arithmetic kernels.
type Numeric interface {
	~int | ~int32 | ~int64 | ~float32 | ~float64
}

// Dot returns the inner product Σ x[i]*y[i] (zipped p_inner_product).  The
// views must have equal sizes.  The result is returned on every location.
// Collective.
func Dot[T Numeric](loc *runtime.Location, x, y views.Partitioned[T]) T {
	prod := views.NewTransform(views.NewZip2(x, y), func(p views.Pair[T, T]) T {
		return p.First * p.Second
	})
	v, _ := Reduce[T](loc, prod, func(a, b T) T { return a + b })
	return v
}

// Axpy computes y = alpha*x + y element-wise over the zipped views (the
// BLAS axpy kernel).  The views must have equal sizes.  Collective.
func Axpy[T Numeric](loc *runtime.Location, alpha T, x, y views.Partitioned[T]) {
	Transform(loc, views.NewZip2(x, y), y, func(p views.Pair[T, T]) T {
		return alpha*p.First + p.Second
	})
}

// Jacobi1D runs iters Jacobi relaxation sweeps over the 1-D field in cur,
// using next as the ping-pong buffer: every sweep replaces each interior
// element with the mean of its two neighbours and keeps the boundary
// elements fixed (Dirichlet conditions).  Each sweep materialises the
// location's share of the input with a one-element halo per side through
// ExchangeHalo, so the boundary cells owned by neighbouring locations move
// as one grouped bulk request per neighbour per sweep.  Both views must
// have equal sizes and must not alias.  Returns the view holding the final
// field (cur for even iters, next for odd).  Collective.
func Jacobi1D(loc *runtime.Location, cur, next views.Partitioned[float64], iters int) views.Partitioned[float64] {
	n := cur.Size()
	var chunks []views.HaloChunk[float64]
	for it := 0; it < iters; it++ {
		// Recycle the previous sweep's halo windows: the fence below
		// guarantees they are no longer referenced.
		chunks = views.ExchangeHaloInto[float64](loc, cur, 1, 1, chunks)
		for _, c := range chunks {
			vals := make([]float64, 0, c.Core.Size())
			for i := c.Core.Lo; i < c.Core.Hi; i++ {
				if i == 0 || i == n-1 {
					vals = append(vals, c.At(i))
					continue
				}
				vals = append(vals, 0.5*(c.At(i-1)+c.At(i+1)))
			}
			views.WriteRange[float64](loc, next, c.Core, vals)
		}
		// The fence completes every location's writes to next before the
		// next sweep reads them (and before cur is reused as the target).
		loc.Fence()
		cur, next = next, cur
	}
	return cur
}

// JacobiResidual returns the maximum absolute difference between each
// interior element and the mean of its neighbours — the convergence measure
// of the Jacobi sweeps.  Collective.
func JacobiResidual(loc *runtime.Location, v views.Partitioned[float64]) float64 {
	n := v.Size()
	var local float64
	for _, c := range views.ExchangeHalo[float64](loc, v, 1, 1) {
		for i := c.Core.Lo; i < c.Core.Hi; i++ {
			if i == 0 || i == n-1 {
				continue
			}
			if d := math.Abs(c.At(i) - 0.5*(c.At(i-1)+c.At(i+1))); d > local {
				local = d
			}
		}
	}
	out := runtime.AllReduceT(loc, local, math.Max)
	loc.Fence()
	return out
}
