// Blocked 2-D kernels over the pMatrix subsystem: the matrix-vector product,
// a panel-blocked matrix-matrix product and a 2-D Jacobi sweep.  All three
// follow the same coarsening discipline as the 1-D kernels — walk the data a
// location already stores through raw block segments, ship everything else
// through the grouped bulk element paths — so their communication scales
// with the number of (block, owner) pairs, not with the element count.
package palgo

import (
	"fmt"

	"repro/internal/containers/pmatrix"
	"repro/internal/containers/pvector"
	"repro/internal/domain"
	"repro/internal/runtime"
	"repro/internal/views"
)

// MatVec computes y = A·x (p_matvec).  Each location walks the blocks of A
// it stores: the x strip covering a block's columns arrives as one grouped
// bulk read per owning location, the block rows stream through their raw
// row segments, and the per-row partial sums flush into y as one grouped
// CombineBulk request per owning location — so a P-location row-blocked
// matvec costs O(P) messages instead of O(rows·cols).  y is overwritten and
// must not alias x (it is cleared before the x strips are read).
// Collective.
func MatVec[T Numeric](loc *runtime.Location, a *pmatrix.Matrix[T], x, y *pvector.Vector[T]) {
	if x.Size() != a.Cols() || y.Size() != a.Rows() {
		panic(fmt.Sprintf("palgo: MatVec dimensions %dx%d · %d -> %d", a.Rows(), a.Cols(), x.Size(), y.Size()))
	}
	if x == y {
		panic("palgo: MatVec output must not alias x")
	}
	// Phase 1: clear y (every element is owned by exactly one location).
	var zero T
	y.LocalUpdate(func(int64, T) T { return zero })
	loc.Fence()

	// Phase 2: accumulate this location's block contributions.
	rows, cols := a.LocalBlocks()
	var idxs []int64
	var vals []T
	for b := range rows {
		if rows[b].Empty() || cols[b].Empty() {
			continue
		}
		// One grouped read for the x strip this block multiplies against.
		xs := x.GetBulk(iotaRange(cols[b]))
		for r := rows[b].Lo; r < rows[b].Hi; r++ {
			seg, ok := a.RowSegment(r, cols[b])
			if !ok {
				seg = a.GetRowStrip(r, cols[b])
			}
			var acc T
			for k, av := range seg {
				acc += av * xs[k]
			}
			idxs = append(idxs, r)
			vals = append(vals, acc)
		}
	}
	// One bulk RMI per destination carries every partial this location
	// produced; addition is commutative, so concurrent combiners are safe.
	y.CombineBulk(idxs, vals, func(cur, val T) T { return cur + val })
	loc.Fence()
}

// MatMul computes C = A·B with panel streaming (the SUMMA schedule adapted
// to the simulated machine): every location takes each A block it stores as
// a panel, pulls the matching B row strip with one grouped bulk read per
// owning location — the panel "broadcast" — multiplies it against the
// panel's raw row segments, and flushes the resulting C contributions as one
// bulk RMI per destination per panel.  C is overwritten and must not alias A
// or B (it is cleared before the panels are read).  Collective.
func MatMul[T Numeric](loc *runtime.Location, a, b, c *pmatrix.Matrix[T]) {
	if a.Cols() != b.Rows() || c.Rows() != a.Rows() || c.Cols() != b.Cols() {
		panic(fmt.Sprintf("palgo: MatMul dimensions %dx%d · %dx%d -> %dx%d",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), c.Rows(), c.Cols()))
	}
	if c == a || c == b {
		panic("palgo: MatMul output must not alias an operand")
	}
	var zero T
	c.UpdateLocal(func(domain.Index2D, T) T { return zero })
	loc.Fence()

	n := b.Cols()
	add := func(cur, val T) T { return cur + val }
	rowsA, colsA := a.LocalBlocks()
	for p := range rowsA {
		R, K := rowsA[p], colsA[p]
		if R.Empty() || K.Empty() || n == 0 {
			continue
		}
		// Fetch the B panel B[K, :] — one grouped request per owner.
		bIdxs := make([]domain.Index2D, 0, K.Size()*n)
		for k := K.Lo; k < K.Hi; k++ {
			for j := int64(0); j < n; j++ {
				bIdxs = append(bIdxs, domain.Index2D{Row: k, Col: j})
			}
		}
		bs := b.GetBulk(bIdxs)
		// Multiply the panel: C[R, :] += A[R, K] · B[K, :].
		cIdxs := make([]domain.Index2D, 0, R.Size()*n)
		cVals := make([]T, 0, R.Size()*n)
		for r := R.Lo; r < R.Hi; r++ {
			arow, ok := a.RowSegment(r, K)
			if !ok {
				arow = a.GetRowStrip(r, K)
			}
			for j := int64(0); j < n; j++ {
				var acc T
				for k := range arow {
					acc += arow[k] * bs[int64(k)*n+j]
				}
				cIdxs = append(cIdxs, domain.Index2D{Row: r, Col: j})
				cVals = append(cVals, acc)
			}
		}
		// One bulk RMI per destination per panel.
		c.CombineBulk(cIdxs, cVals, add)
	}
	loc.Fence()
}

// Jacobi2D runs iters five-point Jacobi relaxation sweeps over the 2-D field
// in cur, using next as the ping-pong buffer: every sweep replaces each
// interior element with the mean of its four neighbours and keeps the
// boundary ring fixed (Dirichlet conditions).  Each sweep materialises the
// location's share of the row-major matrix view with a one-row halo per side
// through ExchangeHalo, so on a row-blocked layout the neighbouring
// locations' boundary rows travel as one grouped bulk request per neighbour
// per sweep, and the halo buffers are recycled across sweeps.  Both matrices
// must have the same dimensions and must not alias.  Returns the matrix
// holding the final field (cur for even iters, next for odd).  Collective.
func Jacobi2D(loc *runtime.Location, cur, next *pmatrix.Matrix[float64], iters int) *pmatrix.Matrix[float64] {
	if cur.Rows() != next.Rows() || cur.Cols() != next.Cols() {
		panic("palgo: Jacobi2D dimension mismatch")
	}
	rows, cols := cur.Rows(), cur.Cols()
	if rows == 0 || cols == 0 {
		return cur
	}
	var chunks []views.HaloChunk[float64]
	for it := 0; it < iters; it++ {
		cv, nv := views.NewMatrixView(cur), views.NewMatrixView(next)
		// Recycle the previous sweep's halo windows: the fence below
		// guarantees they are no longer referenced.
		chunks = views.ExchangeHaloInto[float64](loc, cv, cols, cols, chunks)
		for _, ch := range chunks {
			vals := make([]float64, 0, ch.Core.Size())
			for i := ch.Core.Lo; i < ch.Core.Hi; i++ {
				r, c := i/cols, i%cols
				if r == 0 || r == rows-1 || c == 0 || c == cols-1 {
					vals = append(vals, ch.At(i))
					continue
				}
				vals = append(vals, 0.25*(ch.At(i-cols)+ch.At(i+cols)+ch.At(i-1)+ch.At(i+1)))
			}
			views.WriteRange[float64](loc, nv, ch.Core, vals)
		}
		// The fence completes every location's writes to next before the
		// next sweep reads them (and before cur is reused as the target).
		loc.Fence()
		cur, next = next, cur
	}
	return cur
}

// Jacobi2DResidual returns the maximum absolute difference between each
// interior element and the mean of its four neighbours — the convergence
// measure of the 2-D sweeps.  Collective.
func Jacobi2DResidual(loc *runtime.Location, m *pmatrix.Matrix[float64]) float64 {
	rows, cols := m.Rows(), m.Cols()
	var local float64
	if rows > 0 && cols > 0 {
		v := views.NewMatrixView(m)
		for _, ch := range views.ExchangeHalo[float64](loc, v, cols, cols) {
			for i := ch.Core.Lo; i < ch.Core.Hi; i++ {
				r, c := i/cols, i%cols
				if r == 0 || r == rows-1 || c == 0 || c == cols-1 {
					continue
				}
				d := ch.At(i) - 0.25*(ch.At(i-cols)+ch.At(i+cols)+ch.At(i-1)+ch.At(i+1))
				if d < 0 {
					d = -d
				}
				if d > local {
					local = d
				}
			}
		}
	}
	out := runtime.AllReduceT(loc, local, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
	loc.Fence()
	return out
}

// iotaRange returns the consecutive indices of r as a fresh slice.
func iotaRange(r domain.Range1D) []int64 {
	out := make([]int64, 0, r.Size())
	for i := r.Lo; i < r.Hi; i++ {
		out = append(out, i)
	}
	return out
}
