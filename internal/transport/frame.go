package transport

import "fmt"

// Frame kinds, encoded as the first byte of every frame so that wrappers
// (chaos, reliable) can classify a frame without decoding it.
const (
	// FrameData carries a batch of RMI request descriptors plus payload
	// padding.  Only data frames are subject to chaos injection.
	FrameData = 0x01
	// FrameAck is the reliable layer's cumulative acknowledgement.
	FrameAck = 0x02
)

// Request kinds carried by a request descriptor (mirrors the RMI flavours
// of the runtime).
const (
	KindAsync  = 0x01
	KindUrgent = 0x02
	KindSync   = 0x03
	KindSplit  = 0x04
	KindBulk   = 0x05
	// KindReply carries the result of a registered value-returning operation
	// back to the request's origin, addressed by a completion token.
	KindReply = 0x06
)

// RequestDescriptor is the wire form of one RMI request header.  A request
// whose operation is registered (Op != 0) is fully self-contained: the
// descriptor carries the encoded argument, and the receiving side
// reconstructs and executes the request from bytes alone.  A request
// carrying an unregistered closure has Op == 0 and no argument bytes; its
// batch takes the compatibility path through the sender-side rendezvous
// table (see BatchHeader).
type RequestDescriptor struct {
	// Handle addresses the registered p_object representative.
	Handle int32
	// Kind is one of the Kind* constants.
	Kind uint8
	// Bytes is the simulated marshalled size of the request's argument
	// payload (the workload-level accounting figure; the actual encoded
	// argument may be smaller or larger).
	Bytes uint32
	// Op identifies the registered operation (a stable 64-bit hash of its
	// registration name); 0 means an unregistered closure request.
	Op uint64
	// Token, for KindReply descriptors, names the origin's completion
	// callback.  It is 0 for every other kind (a value-returning operation
	// ships its own token inside Arg, so forwarding hops preserve it).
	Token uint64
	// Arg is the Codec-encoded argument (Op != 0 only).
	Arg []byte
}

// BatchHeader describes one mailbox batch in flight between two locations.
//
// A batch whose requests are all registered operations (Op != 0 on every
// descriptor) is self-decoding: the frame carries each request's encoded
// argument and the receiver reconstructs and executes the batch from bytes
// alone — nothing waits on the sender.  This is the only mode a
// multi-process transport supports.
//
// A batch containing an unregistered closure request takes the fallback
// path: the descriptors plus payload padding cross the wire, while the
// closure batch itself waits in the sender's rendezvous table keyed by
// (Src, Dst, Seq) and the receiving side of the single-process wire matches
// the decoded header back to the batch.  Residual use of this path is
// exposed by the WireStats.RendezvousFallbacks counter.
type BatchHeader struct {
	Src, Dst int
	// Seq numbers batches per (Src, Dst) pair, starting at 0.
	Seq uint64
	// PayloadBytes is the total simulated argument size of the batch.  The
	// frame is padded so the wire sees the simulated volume even when the
	// actual encoded arguments are smaller (see EncodeBatch).
	PayloadBytes int
}

// MaxPadBytes bounds the padding of a single frame so a pathological
// simulated size cannot allocate an unbounded frame.
const MaxPadBytes = 1 << 20

// padLen returns the actual padding carried for a simulated payload size.
func padLen(payloadBytes int) int {
	if payloadBytes < 0 {
		return 0
	}
	if payloadBytes > MaxPadBytes {
		return MaxPadBytes
	}
	return payloadBytes
}

// EncodeBatch encodes a data frame: header, request descriptors (each with
// its encoded argument when the operation is registered), payload padding.
// The frame is padded with padLen(PayloadBytes − Σ len(Arg)) zero bytes —
// the simulated volume not already carried as real argument bytes — so the
// wire sees the accounted traffic in either mode.  The result is a fresh
// slice owned by the caller.
func EncodeBatch(hdr BatchHeader, reqs []RequestDescriptor) []byte {
	b := NewBuffer()
	b.PutU8(FrameData)
	b.PutUvarint(uint64(hdr.Src))
	b.PutUvarint(uint64(hdr.Dst))
	b.PutUvarint(hdr.Seq)
	b.PutUvarint(uint64(hdr.PayloadBytes))
	b.PutUvarint(uint64(len(reqs)))
	argBytes := 0
	for _, r := range reqs {
		b.PutVarint(int64(r.Handle))
		b.PutU8(r.Kind)
		b.PutUvarint(uint64(r.Bytes))
		b.PutUvarint(r.Op)
		if r.Op != 0 {
			b.PutUvarint(r.Token)
			b.PutBlob(r.Arg)
			argBytes += len(r.Arg)
		}
	}
	pad := padLen(hdr.PayloadBytes - argBytes)
	b.buf = append(b.buf, make([]byte, pad)...)
	return b.Bytes()
}

// DecodeBatch decodes a data frame produced by EncodeBatch.
func DecodeBatch(frame []byte) (BatchHeader, []RequestDescriptor, error) {
	b := NewReader(frame)
	if kind := b.U8(); kind != FrameData {
		return BatchHeader{}, nil, fmt.Errorf("transport: expected data frame, got kind 0x%02x", kind)
	}
	var hdr BatchHeader
	hdr.Src = int(b.Uvarint())
	hdr.Dst = int(b.Uvarint())
	hdr.Seq = b.Uvarint()
	hdr.PayloadBytes = int(b.Uvarint())
	n := b.Uvarint()
	if err := b.Err(); err != nil {
		return BatchHeader{}, nil, err
	}
	if n > uint64(b.Remaining()) {
		return BatchHeader{}, nil, fmt.Errorf("transport: corrupt batch: %d descriptors, %d bytes left", n, b.Remaining())
	}
	reqs := make([]RequestDescriptor, n)
	argBytes := 0
	for i := range reqs {
		reqs[i] = RequestDescriptor{
			Handle: int32(b.Varint()),
			Kind:   b.U8(),
			Bytes:  uint32(b.Uvarint()),
			Op:     b.Uvarint(),
		}
		if reqs[i].Op != 0 {
			reqs[i].Token = b.Uvarint()
			reqs[i].Arg = b.Blob()
			argBytes += len(reqs[i].Arg)
		}
	}
	if err := b.Err(); err != nil {
		return BatchHeader{}, nil, err
	}
	if want := padLen(hdr.PayloadBytes - argBytes); b.Remaining() != want {
		return BatchHeader{}, nil, fmt.Errorf("transport: corrupt batch: %d padding bytes, want %d", b.Remaining(), want)
	}
	return hdr, reqs, nil
}

// EncodeAck encodes a cumulative acknowledgement for a (src, dst) data
// stream: every data frame of the pair with sequence <= cum has been
// delivered.  src/dst name the DATA direction (the ack itself travels
// dst -> src).
func EncodeAck(src, dst int, cum uint64) []byte {
	b := NewBuffer()
	b.PutU8(FrameAck)
	b.PutUvarint(uint64(src))
	b.PutUvarint(uint64(dst))
	b.PutUvarint(cum)
	return b.Bytes()
}

// DecodeAck decodes an acknowledgement frame.
func DecodeAck(frame []byte) (src, dst int, cum uint64, err error) {
	b := NewReader(frame)
	if kind := b.U8(); kind != FrameAck {
		return 0, 0, 0, fmt.Errorf("transport: expected ack frame, got kind 0x%02x", kind)
	}
	src = int(b.Uvarint())
	dst = int(b.Uvarint())
	cum = b.Uvarint()
	if err := b.Err(); err != nil {
		return 0, 0, 0, err
	}
	if b.Remaining() != 0 {
		return 0, 0, 0, fmt.Errorf("transport: %d trailing bytes after ack", b.Remaining())
	}
	return src, dst, cum, nil
}
