package transport

import "fmt"

// Frame kinds, encoded as the first byte of every frame so that wrappers
// (chaos, reliable) can classify a frame without decoding it.
const (
	// FrameData carries a batch of RMI request descriptors plus payload
	// padding.  Only data frames are subject to chaos injection.
	FrameData = 0x01
	// FrameAck is the reliable layer's cumulative acknowledgement.
	FrameAck = 0x02
)

// Request kinds carried by a request descriptor (mirrors the RMI flavours
// of the runtime).
const (
	KindAsync  = 0x01
	KindUrgent = 0x02
	KindSync   = 0x03
	KindSplit  = 0x04
	KindBulk   = 0x05
)

// RequestDescriptor is the wire form of one RMI request header: everything a
// remote endpoint needs to identify the invocation except the handler code
// itself (which is registered, not shipped — see the rendezvous note on
// BatchHeader).
type RequestDescriptor struct {
	// Handle addresses the registered p_object representative.
	Handle int32
	// Kind is one of the Kind* constants.
	Kind uint8
	// Bytes is the marshalled size of the request's argument payload.
	Bytes uint32
}

// BatchHeader describes one mailbox batch in flight between two locations.
//
// The runtime's requests carry Go closures, which cannot cross a process
// boundary; what crosses the wire is the request *descriptors* plus payload
// padding of the argument sizes, while the closure batch itself waits in the
// sender's rendezvous table keyed by (Src, Dst, Seq).  The receiving side of
// the loopback wire matches the decoded header back to the batch, so every
// simulated byte genuinely crosses the socket even though the closures do
// not.  A future multi-process transport replaces the rendezvous with
// registered operation decoders; the frame format already carries everything
// else it needs.
type BatchHeader struct {
	Src, Dst int
	// Seq numbers batches per (Src, Dst) pair, starting at 0.
	Seq uint64
	// PayloadBytes is the total simulated argument size of the batch; the
	// frame carries min(PayloadBytes, MaxPadBytes) bytes of padding so the
	// wire sees a realistic volume.
	PayloadBytes int
}

// MaxPadBytes bounds the padding of a single frame so a pathological
// simulated size cannot allocate an unbounded frame.
const MaxPadBytes = 1 << 20

// padLen returns the actual padding carried for a simulated payload size.
func padLen(payloadBytes int) int {
	if payloadBytes < 0 {
		return 0
	}
	if payloadBytes > MaxPadBytes {
		return MaxPadBytes
	}
	return payloadBytes
}

// EncodeBatch encodes a data frame: header, request descriptors, payload
// padding.  The result is a fresh slice owned by the caller.
func EncodeBatch(hdr BatchHeader, reqs []RequestDescriptor) []byte {
	b := NewBuffer()
	b.PutU8(FrameData)
	b.PutUvarint(uint64(hdr.Src))
	b.PutUvarint(uint64(hdr.Dst))
	b.PutUvarint(hdr.Seq)
	b.PutUvarint(uint64(hdr.PayloadBytes))
	b.PutUvarint(uint64(len(reqs)))
	for _, r := range reqs {
		b.PutVarint(int64(r.Handle))
		b.PutU8(r.Kind)
		b.PutUvarint(uint64(r.Bytes))
	}
	pad := padLen(hdr.PayloadBytes)
	b.buf = append(b.buf, make([]byte, pad)...)
	return b.Bytes()
}

// DecodeBatch decodes a data frame produced by EncodeBatch.
func DecodeBatch(frame []byte) (BatchHeader, []RequestDescriptor, error) {
	b := NewReader(frame)
	if kind := b.U8(); kind != FrameData {
		return BatchHeader{}, nil, fmt.Errorf("transport: expected data frame, got kind 0x%02x", kind)
	}
	var hdr BatchHeader
	hdr.Src = int(b.Uvarint())
	hdr.Dst = int(b.Uvarint())
	hdr.Seq = b.Uvarint()
	hdr.PayloadBytes = int(b.Uvarint())
	n := b.Uvarint()
	if err := b.Err(); err != nil {
		return BatchHeader{}, nil, err
	}
	if n > uint64(b.Remaining()) {
		return BatchHeader{}, nil, fmt.Errorf("transport: corrupt batch: %d descriptors, %d bytes left", n, b.Remaining())
	}
	reqs := make([]RequestDescriptor, n)
	for i := range reqs {
		reqs[i] = RequestDescriptor{
			Handle: int32(b.Varint()),
			Kind:   b.U8(),
			Bytes:  uint32(b.Uvarint()),
		}
	}
	if err := b.Err(); err != nil {
		return BatchHeader{}, nil, err
	}
	if want := padLen(hdr.PayloadBytes); b.Remaining() != want {
		return BatchHeader{}, nil, fmt.Errorf("transport: corrupt batch: %d padding bytes, want %d", b.Remaining(), want)
	}
	return hdr, reqs, nil
}

// EncodeAck encodes a cumulative acknowledgement for a (src, dst) data
// stream: every data frame of the pair with sequence <= cum has been
// delivered.  src/dst name the DATA direction (the ack itself travels
// dst -> src).
func EncodeAck(src, dst int, cum uint64) []byte {
	b := NewBuffer()
	b.PutU8(FrameAck)
	b.PutUvarint(uint64(src))
	b.PutUvarint(uint64(dst))
	b.PutUvarint(cum)
	return b.Bytes()
}

// DecodeAck decodes an acknowledgement frame.
func DecodeAck(frame []byte) (src, dst int, cum uint64, err error) {
	b := NewReader(frame)
	if kind := b.U8(); kind != FrameAck {
		return 0, 0, 0, fmt.Errorf("transport: expected ack frame, got kind 0x%02x", kind)
	}
	src = int(b.Uvarint())
	dst = int(b.Uvarint())
	cum = b.Uvarint()
	if err := b.Err(); err != nil {
		return 0, 0, 0, err
	}
	if b.Remaining() != 0 {
		return 0, 0, 0, fmt.Errorf("transport: %d trailing bytes after ack", b.Remaining())
	}
	return src, dst, cum, nil
}
