package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collector records delivered frames per (src, dst) pair.
type collector struct {
	mu     sync.Mutex
	frames map[[2]int][][]byte
}

func newCollector() *collector { return &collector{frames: map[[2]int][][]byte{}} }

func (c *collector) deliver(src, dst int, frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames[[2]int{src, dst}] = append(c.frames[[2]int{src, dst}], append([]byte(nil), frame...))
}

func (c *collector) pair(src, dst int) [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames[[2]int{src, dst}]
}

// testFrame builds a distinguishable data frame: the reliable layers under
// test wrap it in their own envelope, so the payload only needs identity.
func testFrame(seq int) []byte {
	b := NewBuffer()
	b.PutU8(FrameData)
	b.PutUvarint(uint64(seq))
	return b.Bytes()
}

func frameSeq(t *testing.T, frame []byte) int {
	t.Helper()
	b := NewReader(frame)
	if b.U8() != FrameData {
		t.Fatal("not a data frame")
	}
	return int(b.Uvarint())
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestInprocWireDeliversSynchronously(t *testing.T) {
	w := NewInproc(2)
	c := newCollector()
	if err := w.Start(c.deliver); err != nil {
		t.Fatal(err)
	}
	if err := w.Start(c.deliver); err == nil {
		t.Fatal("second Start must fail")
	}
	w.Send(0, 1, testFrame(1))
	if got := c.pair(0, 1); len(got) != 1 || frameSeq(t, got[0]) != 1 {
		t.Fatalf("frames = %v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Send(0, 1, testFrame(2))
	if len(c.pair(0, 1)) != 1 {
		t.Fatal("send after close must be dropped")
	}
	if s := w.WireStats(); s.FramesSent != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTCPWireDeliversAllPairsInOrder(t *testing.T) {
	const n, k = 3, 50
	w := NewTCP(n)
	c := newCollector()
	if err := w.Start(c.deliver); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seq := 0; seq < k; seq++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src != dst {
					w.Send(src, dst, testFrame(seq))
				}
			}
		}
	}
	w.Drain()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			waitFor(t, fmt.Sprintf("pair %d->%d", src, dst), func() bool {
				return len(c.pair(src, dst)) == k
			})
			// One connection and one reader per pair: arrival order is
			// send order.
			for i, f := range c.pair(src, dst) {
				if frameSeq(t, f) != i {
					t.Fatalf("pair %d->%d frame %d has seq %d", src, dst, i, frameSeq(t, f))
				}
			}
		}
	}
	if s := w.WireStats(); s.Connections != n*(n-1) || s.FramesSent != n*(n-1)*k {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTCPWireSelfSendPanics(t *testing.T) {
	w := NewTCP(2)
	if err := w.Start(func(int, int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("self-send must panic")
		}
	}()
	w.Send(1, 1, testFrame(0))
}

// reliableGuarantees drives k frames per ordered pair through a reliable
// stack and asserts FIFO exactly-once delivery per pair.
func reliableGuarantees(t *testing.T, r *Reliable, n, k int, c *collector) {
	t.Helper()
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				for seq := 0; seq < k; seq++ {
					r.Send(src, dst, testFrame(seq))
				}
			}(src, dst)
		}
	}
	wg.Wait()
	r.Drain()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			got := c.pair(src, dst)
			if len(got) != k {
				t.Fatalf("pair %d->%d delivered %d frames, want exactly %d", src, dst, len(got), k)
			}
			for i, f := range got {
				if frameSeq(t, f) != i {
					t.Fatalf("pair %d->%d frame %d has seq %d (FIFO violated)", src, dst, i, frameSeq(t, f))
				}
			}
		}
	}
}

func TestReliableOverInprocWire(t *testing.T) {
	const n, k = 3, 200
	c := newCollector()
	r := NewReliable(NewInproc(n), n)
	if err := r.Start(c.deliver); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reliableGuarantees(t, r, n, k, c)
	s := r.WireStats()
	if s.DataFrames != int64(n*(n-1)*k) || s.Retransmits != 0 || s.DuplicatesDropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestReliableOverChaosFIFOExactlyOnce is the chaos harness's core
// guarantee test: under injected delays, duplicates and connection drops
// the reliable layer must still deliver every frame of a pair exactly once,
// in order — and the fault counters must prove the faults actually fired.
func TestReliableOverChaosFIFOExactlyOnce(t *testing.T) {
	const n, k = 3, 400
	c := newCollector()
	chaos := NewChaos(NewInproc(n), DefaultChaosConfig())
	r := NewReliable(chaos, n)
	if err := r.Start(c.deliver); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reliableGuarantees(t, r, n, k, c)
	s := r.WireStats()
	if s.Delayed == 0 || s.Duplicated == 0 || s.Dropped == 0 || s.Reconnects == 0 {
		t.Fatalf("chaos injected nothing: %+v", s)
	}
	if s.Retransmits == 0 {
		t.Fatalf("drops fired but nothing was retransmitted: %+v", s)
	}
	if s.DuplicatesDropped == 0 {
		t.Fatalf("duplicates fired but none were discarded: %+v", s)
	}
}

// TestReliableOverChaosTCP runs the same guarantees over real sockets.
func TestReliableOverChaosTCP(t *testing.T) {
	const n, k = 2, 150
	c := newCollector()
	chaos := NewChaos(NewTCP(n), DefaultChaosConfig())
	r := NewReliable(chaos, n)
	if err := r.Start(c.deliver); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reliableGuarantees(t, r, n, k, c)
	s := r.WireStats()
	if s.Dropped == 0 || s.Retransmits == 0 {
		t.Fatalf("chaos over tcp injected nothing: %+v", s)
	}
}

// TestChaosSeedIsDeterministic pins the replayability contract: for the
// same seed and the same frame send order, the chaos layer makes the same
// fault decisions.  (The bare layer is tested — a reliable layer on top
// feeds retransmissions back through Send, which perturbs the counter.)
func TestChaosSeedIsDeterministic(t *testing.T) {
	run := func() WireStats {
		chaos := NewChaos(NewInproc(2), DefaultChaosConfig())
		if err := chaos.Start(func(int, int, []byte) {}); err != nil {
			t.Fatal(err)
		}
		for seq := 0; seq < 300; seq++ {
			chaos.Send(0, 1, testFrame(seq))
		}
		chaos.Drain()
		defer chaos.Close()
		s := chaos.WireStats()
		return WireStats{Delayed: s.Delayed, Duplicated: s.Duplicated, Dropped: s.Dropped}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault schedule not reproducible: %+v vs %+v", a, b)
	}
	if a.Delayed == 0 || a.Duplicated == 0 || a.Dropped == 0 {
		t.Fatalf("schedule injected nothing: %+v", a)
	}
}

// TestChaosDropEveryOneIsClamped pins the blackout guard.
func TestChaosDropEveryOneIsClamped(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.DropEvery = 1
	chaos := NewChaos(NewInproc(2), cfg)
	if chaos.cfg.DropEvery != 2 {
		t.Fatalf("DropEvery = %d, want clamp to 2", chaos.cfg.DropEvery)
	}
}

// TestReliableRejectsCorruptFrames pins the fail-fast posture of the
// protocol layer: garbage from the wire is a bug, not a recoverable event.
func TestReliableRejectsCorruptFrames(t *testing.T) {
	w := NewInproc(2)
	r := NewReliable(w, 2)
	if err := r.Start(func(int, int, []byte) {}); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for name, frame := range map[string][]byte{
		"empty":        {},
		"unknown-kind": {0x7F},
		"truncated":    {FrameData, 0xFF},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s frame must panic", name)
				}
			}()
			w.Send(0, 1, frame)
		}()
	}
}
