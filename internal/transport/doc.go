// Package transport implements the wire layer under the runtime's mailbox:
// a binary codec for request descriptors and element payloads, a framed
// point-to-point Wire abstraction, and three Wire implementations — an
// in-process reference pipe, a real TCP loopback transport with one
// connection and outgoing queue per (source, destination) pair, and a
// fault-injecting chaos wrapper (delay, duplication, connection drop +
// reconnect).
//
// The package is deliberately independent of the runtime: it moves opaque
// frames between integer-numbered endpoints.  A Wire makes NO delivery
// guarantees beyond best effort — frames may arrive late, twice, or (after
// an injected connection drop) not at all.  The Reliable wrapper restores
// the guarantees the runtime's RMI semantics need: per-(source, destination)
// FIFO order and exactly-once delivery, implemented with per-pair sequence
// numbers, an out-of-order reorder buffer, cumulative acknowledgements, and
// retransmission of unacknowledged frames when a connection drop is
// signalled.  The runtime's wire adapter (runtime.WireTransport) sits on
// top and is what converts mailbox batches into frames.
package transport
