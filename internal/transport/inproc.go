package transport

import (
	"fmt"
	"sync/atomic"
)

// InprocWire is the reference Wire: frames are handed to the deliver
// callback synchronously on the sender's goroutine.  It exists so the
// protocol layers (Reliable, Chaos) can be exercised — and their guarantees
// tested — without sockets, and as the fast wire for chaos runs of the full
// test tree.  Per-pair FIFO holds trivially (synchronous delivery), but
// layers above must not rely on it: the same stacks run over TCP and chaos.
type InprocWire struct {
	n       int
	deliver atomic.Pointer[DeliverFunc]
	closed  atomic.Bool
	sent    atomic.Int64
	bytes   atomic.Int64
}

// NewInproc builds an in-process wire between n endpoints.
func NewInproc(n int) *InprocWire { return &InprocWire{n: n} }

// Start installs the deliver callback.
func (w *InprocWire) Start(deliver DeliverFunc) error {
	if !w.deliver.CompareAndSwap(nil, &deliver) {
		return fmt.Errorf("transport: inproc wire started twice")
	}
	return nil
}

// Send delivers the frame synchronously.
func (w *InprocWire) Send(src, dst int, frame []byte) {
	if w.closed.Load() {
		return
	}
	d := w.deliver.Load()
	if d == nil {
		panic("transport: inproc wire used before Start")
	}
	w.sent.Add(1)
	w.bytes.Add(int64(len(frame)))
	(*d)(src, dst, frame)
}

// Drain is a no-op: delivery is synchronous.
func (w *InprocWire) Drain() {}

// Close stops delivery; later Sends are dropped.
func (w *InprocWire) Close() error {
	w.closed.Store(true)
	return nil
}

// Name identifies the wire.
func (w *InprocWire) Name() string { return "wire-inproc" }

// WireStats reports frames moved through the pipe.
func (w *InprocWire) WireStats() WireStats {
	return WireStats{
		FramesSent:     w.sent.Load(),
		FramesReceived: w.sent.Load(),
		BytesSent:      w.bytes.Load(),
		BytesReceived:  w.bytes.Load(),
	}
}
