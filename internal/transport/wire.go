package transport

import "time"

// DeliverFunc receives one frame on the destination side of a wire.  src and
// dst are the endpoints named by the matching Send.  Implementations of Wire
// may invoke it from arbitrary goroutines; per-pair ordering is only
// guaranteed by the Reliable wrapper, never by a raw Wire.
type DeliverFunc func(src, dst int, frame []byte)

// Wire is a best-effort frame pipe between n integer-numbered endpoints.
//
//	Send    — queue one frame for delivery from src to dst (takes ownership
//	          of the frame slice; never blocks on the receiver)
//	Drain   — block until every queued frame has left the sender (flushed
//	          to the socket / handed to the deliver callback)
//	Close   — release sockets, queues and goroutines; Send afterwards is a
//	          silent drop
//
// A raw Wire makes NO ordering, uniqueness or delivery guarantee: the chaos
// wrapper deliberately delays, duplicates and drops frames.  Layer Reliable
// on top to restore per-pair FIFO exactly-once delivery.
type Wire interface {
	// Start installs the deliver callback and brings up the receive side.
	// It must be called exactly once, before the first Send.
	Start(deliver DeliverFunc) error
	Send(src, dst int, frame []byte)
	Drain()
	Close() error
	// Name identifies the wire stack (for stats and bench reports).
	Name() string
}

// WireStats aggregates counters across a wire stack; each layer fills the
// fields it owns and adds its inner wire's counters.
type WireStats struct {
	// Frame traffic (TCP / inproc layer).
	FramesSent     int64
	FramesReceived int64
	BytesSent      int64
	BytesReceived  int64
	Connections    int64
	// DialRetries counts dial attempts that failed and were retried with
	// backoff before a connection came up (TCP layer).
	DialRetries int64
	// Reliability protocol (Reliable layer).
	DataFrames        int64 // data frames first-sent (retransmits excluded)
	Acks              int64 // acknowledgement frames sent
	Retransmits       int64 // data frames re-sent after a reconnect signal
	DuplicatesDropped int64 // received data frames discarded as duplicates
	OutOfOrder        int64 // received data frames buffered for reordering
	// RendezvousFallbacks counts requests that crossed the wire as bare
	// descriptors because their operation was an unregistered closure, so
	// the batch had to rendezvous with sender-side state (runtime adapter
	// layer).  Zero means every request was self-decoding.
	RendezvousFallbacks int64
	// Fault injection (Chaos layer).
	Delayed    int64
	Duplicated int64
	Dropped    int64
	Reconnects int64
}

// Add accumulates another stack's counters, for folding per-process wire
// statistics into job-wide totals in multi-process runs.
func (s *WireStats) Add(o WireStats) { s.add(o) }

// add accumulates an inner layer's counters.
func (s *WireStats) add(o WireStats) {
	s.FramesSent += o.FramesSent
	s.FramesReceived += o.FramesReceived
	s.BytesSent += o.BytesSent
	s.BytesReceived += o.BytesReceived
	s.Connections += o.Connections
	s.DialRetries += o.DialRetries
	s.DataFrames += o.DataFrames
	s.Acks += o.Acks
	s.Retransmits += o.Retransmits
	s.DuplicatesDropped += o.DuplicatesDropped
	s.OutOfOrder += o.OutOfOrder
	s.RendezvousFallbacks += o.RendezvousFallbacks
	s.Delayed += o.Delayed
	s.Duplicated += o.Duplicated
	s.Dropped += o.Dropped
	s.Reconnects += o.Reconnects
}

// StatsSource is implemented by wires that report traffic counters.
type StatsSource interface {
	WireStats() WireStats
}

// innerStats reads the counters of a wrapped wire, if it exposes any.
func innerStats(w Wire) WireStats {
	if s, ok := w.(StatsSource); ok {
		return s.WireStats()
	}
	return WireStats{}
}

// reconnectSignaler is implemented by wires that can signal a connection
// drop for a (src, dst) pair (the chaos wrapper).  The Reliable layer
// registers a handler and retransmits unacknowledged frames of the pair.
type reconnectSignaler interface {
	OnReconnect(fn func(src, dst int))
}

// TimedDrainer is implemented by wires whose drain can fail (a peer that
// never acknowledges): DrainErr bounds the wait and returns a diagnostic
// error instead of panicking, so the runtime can surface a wire failure as a
// structured fault.  Wrappers delegate to their inner wire's DrainErr.
type TimedDrainer interface {
	DrainErr(timeout time.Duration) error
}

// ErrorSink is implemented by wires that can report asynchronous failures
// (dial exhaustion, a peer resetting a connection mid-write) to an installed
// callback instead of panicking from an internal goroutine.  With no sink
// installed, such failures still panic — the pre-containment behaviour.
// Wrappers forward the registration to their inner wire.
type ErrorSink interface {
	OnWireError(fn func(err error))
}
