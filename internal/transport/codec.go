package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"repro/internal/domain"
)

// Buffer is the codec's byte stream: an append-only binary writer and a
// cursor-based reader over the same storage.  Encoders call the Put methods;
// decoders Reset the buffer over received bytes and call the matching Get
// methods.  Read errors (underflow, oversized blobs) are sticky: the first
// failure records Err and every later Get returns a zero value, so decoders
// can check once at the end instead of after every field.
type Buffer struct {
	buf []byte
	off int
	err error
}

// NewBuffer returns an empty encoding buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// NewReader returns a buffer positioned to decode data.  The buffer aliases
// data; the caller must not mutate it while decoding.
func NewReader(data []byte) *Buffer { return &Buffer{buf: data} }

// Reset re-arms the buffer to decode data from the start.
func (b *Buffer) Reset(data []byte) { b.buf, b.off, b.err = data, 0, nil }

// Bytes returns the encoded bytes written so far.
func (b *Buffer) Bytes() []byte { return b.buf }

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// Remaining reports how many bytes are left to decode.
func (b *Buffer) Remaining() int { return len(b.buf) - b.off }

// Err returns the first decode error, or nil.
func (b *Buffer) Err() error { return b.err }

func (b *Buffer) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("transport: "+format, args...)
	}
}

// Fail records a sticky decode error, for codecs that validate structural
// invariants beyond raw underflow (counts, ordering, value ranges).  Like the
// internal errors, only the first failure is kept.
func (b *Buffer) Fail(format string, args ...any) { b.fail(format, args...) }

// take returns the next n raw bytes, or nil after recording an underflow.
func (b *Buffer) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if n < 0 || b.off+n > len(b.buf) {
		b.fail("decode underflow: need %d bytes, have %d", n, len(b.buf)-b.off)
		return nil
	}
	out := b.buf[b.off : b.off+n]
	b.off += n
	return out
}

// PutU8 appends one byte.
func (b *Buffer) PutU8(v uint8) { b.buf = append(b.buf, v) }

// U8 decodes one byte.
func (b *Buffer) U8() uint8 {
	p := b.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// PutU32 appends a fixed-width big-endian uint32.
func (b *Buffer) PutU32(v uint32) { b.buf = binary.BigEndian.AppendUint32(b.buf, v) }

// U32 decodes a fixed-width big-endian uint32.
func (b *Buffer) U32() uint32 {
	p := b.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// PutU64 appends a fixed-width big-endian uint64.
func (b *Buffer) PutU64(v uint64) { b.buf = binary.BigEndian.AppendUint64(b.buf, v) }

// U64 decodes a fixed-width big-endian uint64.
func (b *Buffer) U64() uint64 {
	p := b.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// PutUvarint appends a variable-width unsigned integer.
func (b *Buffer) PutUvarint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }

// Uvarint decodes a variable-width unsigned integer.
func (b *Buffer) Uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Uvarint(b.buf[b.off:])
	if n <= 0 {
		b.fail("decode underflow: truncated uvarint")
		return 0
	}
	b.off += n
	return v
}

// PutVarint appends a variable-width signed integer (zig-zag).
func (b *Buffer) PutVarint(v int64) { b.buf = binary.AppendVarint(b.buf, v) }

// Varint decodes a variable-width signed integer.
func (b *Buffer) Varint() int64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Varint(b.buf[b.off:])
	if n <= 0 {
		b.fail("decode underflow: truncated varint")
		return 0
	}
	b.off += n
	return v
}

// PutF64 appends a float64 as its IEEE-754 bits.
func (b *Buffer) PutF64(v float64) { b.PutU64(math.Float64bits(v)) }

// F64 decodes a float64.
func (b *Buffer) F64() float64 { return math.Float64frombits(b.U64()) }

// PutBool appends a boolean as one byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.PutU8(1)
	} else {
		b.PutU8(0)
	}
}

// Bool decodes a boolean.
func (b *Buffer) Bool() bool { return b.U8() != 0 }

// PutBlob appends a length-prefixed byte slice.
func (b *Buffer) PutBlob(v []byte) {
	b.PutUvarint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// Blob decodes a length-prefixed byte slice.  The result is a copy, so it
// stays valid after the underlying frame buffer is recycled.
func (b *Buffer) Blob() []byte {
	n := b.Uvarint()
	if n > uint64(b.Remaining()) {
		b.fail("decode underflow: blob of %d bytes, have %d", n, b.Remaining())
		return nil
	}
	p := b.take(int(n))
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(v string) {
	b.PutUvarint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// Str decodes a length-prefixed string.  (Deliberately not named String: a
// String() string method would make Buffer an fmt.Stringer whose formatting
// mutates the decode cursor.)
func (b *Buffer) Str() string { return string(b.Blob()) }

// Codec is a generics-instantiated encoder/decoder pair for one value type.
// Container element types register a Codec once (Register); the instantiated
// Encode/Decode functions are then called directly on the hot path — no
// reflection, no interface dispatch on the value.
type Codec[T any] struct {
	// Name identifies the codec on the wire and in the registry.
	Name string
	// Encode appends the wire form of v to the buffer.
	Encode func(b *Buffer, v T)
	// Decode reads one value off the buffer.
	Decode func(b *Buffer) T
}

// RoundTrip encodes v, decodes it, re-encodes the decoded value and reports
// both encodings.  Byte-equal encodings are the codec property the wire
// depends on (a retransmitted frame must be bit-identical to the original).
func (c Codec[T]) RoundTrip(v T) (first, second []byte, err error) {
	enc := NewBuffer()
	c.Encode(enc, v)
	first = append([]byte(nil), enc.Bytes()...)
	dec := NewReader(first)
	got := c.Decode(dec)
	if dec.Err() != nil {
		return first, nil, fmt.Errorf("codec %s: decode failed: %w", c.Name, dec.Err())
	}
	if dec.Remaining() != 0 {
		return first, nil, fmt.Errorf("codec %s: %d trailing bytes after decode", c.Name, dec.Remaining())
	}
	re := NewBuffer()
	c.Encode(re, got)
	second = append([]byte(nil), re.Bytes()...)
	return first, second, nil
}

// Built-in codecs for the element types the containers instantiate in tests,
// benches and examples.
var (
	// Int64Codec encodes int64 elements (pArray/pVector/pMatrix benches).
	Int64Codec = Codec[int64]{
		Name:   "int64",
		Encode: func(b *Buffer, v int64) { b.PutVarint(v) },
		Decode: func(b *Buffer) int64 { return b.Varint() },
	}
	// IntCodec encodes int elements.
	IntCodec = Codec[int]{
		Name:   "int",
		Encode: func(b *Buffer, v int) { b.PutVarint(int64(v)) },
		Decode: func(b *Buffer) int { return int(b.Varint()) },
	}
	// Uint64Codec encodes uint64 elements (graph vertex descriptors).
	Uint64Codec = Codec[uint64]{
		Name:   "uint64",
		Encode: func(b *Buffer, v uint64) { b.PutUvarint(v) },
		Decode: func(b *Buffer) uint64 { return b.Uvarint() },
	}
	// Float64Codec encodes float64 elements (pagerank, jacobi).
	Float64Codec = Codec[float64]{
		Name:   "float64",
		Encode: func(b *Buffer, v float64) { b.PutF64(v) },
		Decode: func(b *Buffer) float64 { return b.F64() },
	}
	// BoolCodec encodes booleans.
	BoolCodec = Codec[bool]{
		Name:   "bool",
		Encode: func(b *Buffer, v bool) { b.PutBool(v) },
		Decode: func(b *Buffer) bool { return b.Bool() },
	}
	// StringCodec encodes string elements (wordcount keys).
	StringCodec = Codec[string]{
		Name:   "string",
		Encode: func(b *Buffer, v string) { b.PutString(v) },
		Decode: func(b *Buffer) string { return b.Str() },
	}
	// BytesCodec encodes opaque byte-slice elements.
	BytesCodec = Codec[[]byte]{
		Name:   "bytes",
		Encode: func(b *Buffer, v []byte) { b.PutBlob(v) },
		Decode: func(b *Buffer) []byte { return b.Blob() },
	}
	// Index2DCodec encodes 2-D GIDs (pMatrix bulk batches).
	Index2DCodec = Codec[domain.Index2D]{
		Name: "index2d",
		Encode: func(b *Buffer, v domain.Index2D) {
			b.PutVarint(v.Row)
			b.PutVarint(v.Col)
		},
		Decode: func(b *Buffer) domain.Index2D {
			return domain.Index2D{Row: b.Varint(), Col: b.Varint()}
		},
	}
)

// SliceCodec derives a codec for []T from a codec for T.
func SliceCodec[T any](elem Codec[T]) Codec[[]T] {
	return Codec[[]T]{
		Name: elem.Name + "-slice",
		Encode: func(b *Buffer, v []T) {
			b.PutUvarint(uint64(len(v)))
			for _, x := range v {
				elem.Encode(b, x)
			}
		},
		Decode: func(b *Buffer) []T {
			n := b.Uvarint()
			if n > uint64(b.Remaining()) {
				// Every element needs at least one byte; a bigger count is a
				// corrupt frame, not a huge allocation.
				b.fail("decode underflow: slice of %d elements, %d bytes left", n, b.Remaining())
				return nil
			}
			out := make([]T, n)
			for i := range out {
				out[i] = elem.Decode(b)
			}
			return out
		},
	}
}

// PairCodec derives a codec for a two-field struct from its field codecs.
func PairCodec[A, B any](first Codec[A], second Codec[B]) Codec[Pair[A, B]] {
	return Codec[Pair[A, B]]{
		Name: "pair[" + first.Name + "," + second.Name + "]",
		Encode: func(b *Buffer, v Pair[A, B]) {
			first.Encode(b, v.First)
			second.Encode(b, v.Second)
		},
		Decode: func(b *Buffer) Pair[A, B] {
			return Pair[A, B]{First: first.Decode(b), Second: second.Decode(b)}
		},
	}
}

// Pair is the generic two-field payload PairCodec encodes (index+value
// records of bulk element batches).
type Pair[A, B any] struct {
	First  A
	Second B
}

// registryEntry wraps one registered codec with type-erased self-check
// closures.  The closures are instantiated at registration time, so
// enumerating and exercising the registry needs no reflection.
type registryEntry struct {
	name string
	// roundTrips round-trips every registered sample value and returns the
	// first error (nil when all encodings are byte-identical).
	roundTrips func() error
	// encodedSizes returns the encoded size of every sample.
	encodedSizes func() []int
}

var (
	registryMu sync.RWMutex
	registry   = map[string]registryEntry{}
)

// Register records a codec under its name together with sample values used
// by the registry's self check.  It panics on a duplicate name (two element
// types must not share a wire name).  It returns the codec so registrations
// can initialise package-level variables.
func Register[T any](c Codec[T], samples ...T) Codec[T] {
	if c.Name == "" {
		panic("transport: codec with empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("transport: codec %q registered twice", c.Name))
	}
	registry[c.Name] = registryEntry{
		name: c.Name,
		roundTrips: func() error {
			for _, s := range samples {
				first, second, err := c.RoundTrip(s)
				if err != nil {
					return err
				}
				if string(first) != string(second) {
					return fmt.Errorf("codec %s: re-encoding differs (%x vs %x)", c.Name, first, second)
				}
			}
			return nil
		},
		encodedSizes: func() []int {
			sizes := make([]int, 0, len(samples))
			for _, s := range samples {
				b := NewBuffer()
				c.Encode(b, s)
				sizes = append(sizes, b.Len())
			}
			return sizes
		},
	}
	return c
}

// RegisteredCodecs returns the names of all registered codecs, sorted.
func RegisteredCodecs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SelfCheck round-trips the registered sample values of the named codec and
// returns the first failure (or an error for an unknown name).
func SelfCheck(name string) error {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: no codec registered under %q", name)
	}
	return e.roundTrips()
}

// EncodedSampleSizes returns the encoded size of every registered sample of
// the named codec (used by tests asserting zero-length and max-size cases).
func EncodedSampleSizes(name string) ([]int, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no codec registered under %q", name)
	}
	return e.encodedSizes(), nil
}

// The typed registry maps Go element types to their codecs, so generic
// framework code (the operation registry's per-element-type ports) can ask
// "does T have a wire codec?" at instantiation time.  The name registry
// above keys on wire names and serves the self check; this one keys on
// reflect.Type and serves codec *lookup*.  Reflection happens once per
// container construction, never per element.
var (
	typedMu  sync.RWMutex
	typedReg = map[reflect.Type]any{} // Codec[T] boxed per element type T
)

// RegisterTyped records c as THE codec for element type T, enabling the
// self-decoding operation paths for containers instantiated at T.  It panics
// if T already has a typed codec (two codecs for one type would make the
// wire form ambiguous).  Returns c for variable initialisation.
func RegisterTyped[T any](c Codec[T]) Codec[T] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	typedMu.Lock()
	defer typedMu.Unlock()
	if _, dup := typedReg[t]; dup {
		panic(fmt.Sprintf("transport: type %v already has a typed codec", t))
	}
	typedReg[t] = c
	return c
}

// TypedCodecFor returns the codec registered for element type T, or
// ok == false when T has none (callers fall back to closure requests).
func TypedCodecFor[T any]() (Codec[T], bool) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	typedMu.RLock()
	defer typedMu.RUnlock()
	if v, ok := typedReg[t]; ok {
		return v.(Codec[T]), true
	}
	return Codec[T]{}, false
}

// maxSample is a large payload exercising multi-byte varint length prefixes.
var maxSample = func() []byte {
	b := make([]byte, 1<<16)
	for i := range b {
		b[i] = byte(i * 131)
	}
	return b
}()

func init() {
	// The element types instantiated by the containers' tests, benches and
	// examples.  Samples cover zero values, extremes, and the cases the
	// satellite tests pin (zero-length and max-size payloads).
	Register(Int64Codec, 0, 1, -1, math.MaxInt64, math.MinInt64, 4242)
	Register(IntCodec, 0, -7, 1<<30)
	Register(Uint64Codec, 0, 1, math.MaxUint64)
	Register(Float64Codec, 0, -1.5, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64)
	Register(BoolCodec, false, true)
	Register(StringCodec, "", "a", "hello, pcf", string(maxSample))
	Register(BytesCodec, nil, []byte{}, []byte{0}, maxSample)
	Register(Index2DCodec, domain.Index2D{}, domain.Index2D{Row: -3, Col: 1 << 40})
	Register(SliceCodec(Int64Codec), nil, []int64{}, []int64{1, -2, 3})
	Register(SliceCodec(Float64Codec), nil, []float64{0, math.Inf(1), math.Inf(-1)})
	Register(PairCodec(Int64Codec, Float64Codec),
		Pair[int64, float64]{}, Pair[int64, float64]{First: -9, Second: 2.5})

	// The same built-ins, keyed by Go type for operation-registry lookup.
	RegisterTyped(Int64Codec)
	RegisterTyped(IntCodec)
	RegisterTyped(Uint64Codec)
	RegisterTyped(Float64Codec)
	RegisterTyped(BoolCodec)
	RegisterTyped(StringCodec)
	RegisterTyped(BytesCodec)
	RegisterTyped(Index2DCodec)
}
