package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig schedules the faults the chaos wrapper injects into data
// frames.  The Every counters are frame-count periods (0 disables a fault);
// the seeded generator draws the delay durations, so a given seed replays
// the same fault decisions for the same frame arrival order.
type ChaosConfig struct {
	// Seed seeds the delay generator.
	Seed int64
	// DelayEvery delays every k-th data frame by a random duration in
	// [MaxDelay/2, MaxDelay), letting later frames overtake it.
	DelayEvery int
	MaxDelay   time.Duration
	// DuplicateEvery sends every k-th data frame twice (the copy after a
	// short random delay, so the duplicate can arrive out of order too).
	DuplicateEvery int
	// DropEvery discards every k-th data frame outright — simulating a
	// connection that died with frames in flight — and then signals a
	// reconnect for the pair, which prompts the reliable layer to
	// retransmit everything unacknowledged.
	DropEvery int
	// ReconnectDelay is the pause between a drop and its reconnect signal.
	ReconnectDelay time.Duration
}

// DefaultChaosConfig returns a schedule that exercises all three faults
// heavily without making tests crawl: frequent small delays, regular
// duplicates, and a forced connection drop every 40th data frame.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:           1,
		DelayEvery:     5,
		MaxDelay:       300 * time.Microsecond,
		DuplicateEvery: 7,
		DropEvery:      40,
		ReconnectDelay: 100 * time.Microsecond,
	}
}

// Chaos wraps a Wire and injects faults into data frames (frames whose
// kind byte is FrameData).  Control traffic — acknowledgements and the
// reliable layer's retransmissions are indistinguishable from first sends,
// so those ARE subject to chaos again; only FrameAck frames pass through
// untouched, which is what lets the protocol's recovery terminate.
type Chaos struct {
	inner Wire
	cfg   ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	count int64

	onReconnect atomic.Pointer[func(src, dst int)]
	inFlight    sync.WaitGroup
	closed      atomic.Bool

	delayed    atomic.Int64
	duplicated atomic.Int64
	dropped    atomic.Int64
	reconnects atomic.Int64
}

// NewChaos wraps inner with fault injection.
func NewChaos(inner Wire, cfg ChaosConfig) *Chaos {
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 100 * time.Microsecond
	}
	if cfg.DropEvery == 1 {
		// Dropping EVERY data frame is a total blackout: retransmissions are
		// data frames too, so nothing would ever get through and recovery
		// could not terminate.  Clamp to the heaviest loss that still makes
		// progress.
		cfg.DropEvery = 2
	}
	return &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Start brings up the inner wire.
func (c *Chaos) Start(deliver DeliverFunc) error { return c.inner.Start(deliver) }

// OnReconnect registers the handler invoked after an injected connection
// drop (reconnectSignaler; the reliable layer retransmits from it).
func (c *Chaos) OnReconnect(fn func(src, dst int)) { c.onReconnect.Store(&fn) }

// OnWireError forwards asynchronous-failure reporting to the inner wire
// (ErrorSink); injected faults are schedule, not failures, and stay silent.
func (c *Chaos) OnWireError(fn func(err error)) {
	if es, ok := c.inner.(ErrorSink); ok {
		es.OnWireError(fn)
	}
}

// Send applies the fault schedule to data frames and forwards everything
// else untouched.
func (c *Chaos) Send(src, dst int, frame []byte) {
	if c.closed.Load() {
		return
	}
	if len(frame) == 0 || frame[0] != FrameData {
		c.inner.Send(src, dst, frame)
		return
	}
	c.mu.Lock()
	c.count++
	n := c.count
	drop := c.cfg.DropEvery > 0 && n%int64(c.cfg.DropEvery) == 0
	dup := !drop && c.cfg.DuplicateEvery > 0 && n%int64(c.cfg.DuplicateEvery) == 0
	delay := time.Duration(0)
	if !drop && c.cfg.DelayEvery > 0 && n%int64(c.cfg.DelayEvery) == 0 && c.cfg.MaxDelay > 0 {
		half := c.cfg.MaxDelay / 2
		delay = half + time.Duration(c.rng.Int63n(int64(half)))
	}
	dupDelay := time.Duration(0)
	if dup && c.cfg.MaxDelay > 0 {
		dupDelay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
	}
	c.mu.Unlock()

	switch {
	case drop:
		// The frame dies with the connection; the pair reconnects shortly
		// after and the layer above learns it must retransmit.
		c.dropped.Add(1)
		c.spawn(c.cfg.ReconnectDelay, func() {
			c.reconnects.Add(1)
			if fn := c.onReconnect.Load(); fn != nil {
				(*fn)(src, dst)
			}
		})
	case dup:
		c.duplicated.Add(1)
		c.inner.Send(src, dst, frame)
		c.spawn(dupDelay, func() { c.inner.Send(src, dst, frame) })
	case delay > 0:
		c.delayed.Add(1)
		c.spawn(delay, func() { c.inner.Send(src, dst, frame) })
	default:
		c.inner.Send(src, dst, frame)
	}
}

// spawn runs fn after d on a tracked goroutine, so Drain can wait for every
// delayed fault to play out.
func (c *Chaos) spawn(d time.Duration, fn func()) {
	c.inFlight.Add(1)
	go func() {
		defer c.inFlight.Done()
		if d > 0 {
			time.Sleep(d)
		}
		if !c.closed.Load() {
			fn()
		}
	}()
}

// Drain waits for delayed frames and pending reconnect signals, then drains
// the inner wire.
func (c *Chaos) Drain() {
	c.inFlight.Wait()
	c.inner.Drain()
}

// Close stops fault injection and shuts the inner wire down.
func (c *Chaos) Close() error {
	c.closed.Store(true)
	c.inFlight.Wait()
	return c.inner.Close()
}

// Name identifies the stack.
func (c *Chaos) Name() string { return "chaos+" + c.inner.Name() }

// WireStats reports injected faults plus the inner wire's traffic.
func (c *Chaos) WireStats() WireStats {
	s := WireStats{
		Delayed:    c.delayed.Load(),
		Duplicated: c.duplicated.Load(),
		Dropped:    c.dropped.Load(),
		Reconnects: c.reconnects.Load(),
	}
	s.add(innerStats(c.inner))
	return s
}
