package transport

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/domain"
)

// TestBufferPrimitivesRoundTrip drives every primitive through one buffer
// and reads it back in order.
func TestBufferPrimitivesRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PutU8(0xAB)
	b.PutU32(0xDEADBEEF)
	b.PutU64(math.MaxUint64)
	b.PutUvarint(300)
	b.PutVarint(-300)
	b.PutF64(math.Pi)
	b.PutBool(true)
	b.PutBlob([]byte("payload"))
	b.PutString("key")

	r := NewReader(b.Bytes())
	if r.U8() != 0xAB || r.U32() != 0xDEADBEEF || r.U64() != math.MaxUint64 {
		t.Fatal("fixed-width round trip wrong")
	}
	if r.Uvarint() != 300 || r.Varint() != -300 {
		t.Fatal("varint round trip wrong")
	}
	if r.F64() != math.Pi || !r.Bool() {
		t.Fatal("f64/bool round trip wrong")
	}
	if string(r.Blob()) != "payload" || r.Str() != "key" {
		t.Fatal("blob/string round trip wrong")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d after clean decode", r.Err(), r.Remaining())
	}
}

// TestBufferStickyError pins the decode-error contract: the first underflow
// records Err, every later read returns a zero value, and no read panics.
func TestBufferStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	if r.U8() != 1 {
		t.Fatal("first byte wrong")
	}
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("underflow must record an error and return zero")
	}
	first := r.Err()
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Blob() != nil || r.Str() != "" {
		t.Fatal("reads after an error must return zero values")
	}
	if r.Err() != first {
		t.Fatal("later failures must not replace the first error")
	}
	if !strings.Contains(first.Error(), "underflow") {
		t.Fatalf("error %v should name the underflow", first)
	}
}

// TestBufferBlobCorruptLength pins the corrupt-count guard: a length prefix
// larger than the remaining bytes fails cleanly instead of allocating.
func TestBufferBlobCorruptLength(t *testing.T) {
	enc := NewBuffer()
	enc.PutUvarint(1 << 40)
	r := NewReader(enc.Bytes())
	if r.Blob() != nil || r.Err() == nil {
		t.Fatal("oversized blob length must fail, not allocate")
	}
}

// TestRegisteredCodecsSelfCheck exercises every registered codec's samples
// through the byte-exact round-trip property.
func TestRegisteredCodecsSelfCheck(t *testing.T) {
	names := RegisteredCodecs()
	if len(names) == 0 {
		t.Fatal("no codecs registered")
	}
	for _, name := range names {
		if err := SelfCheck(name); err != nil {
			t.Errorf("codec %s: %v", name, err)
		}
	}
	if err := SelfCheck("no-such-codec"); err == nil {
		t.Error("unknown codec name must fail the self check")
	}
}

// TestRegisteredSampleSizeCoverage asserts the registry's samples include
// the boundary payloads the wire must handle: zero-length and max-size
// (>= 64 KiB) values for the variable-length codecs.
func TestRegisteredSampleSizeCoverage(t *testing.T) {
	for _, name := range []string{"string", "bytes"} {
		sizes, err := EncodedSampleSizes(name)
		if err != nil {
			t.Fatal(err)
		}
		minSize, maxSize := sizes[0], sizes[0]
		for _, s := range sizes {
			minSize = min(minSize, s)
			maxSize = max(maxSize, s)
		}
		// A zero-length value still carries its one-byte length prefix.
		if minSize != 1 {
			t.Errorf("codec %s: smallest sample encodes to %d bytes, want 1 (zero-length value)", name, minSize)
		}
		if maxSize < 1<<16 {
			t.Errorf("codec %s: largest sample encodes to %d bytes, want >= 64KiB", name, maxSize)
		}
	}
}

// TestRegisterRejectsDuplicates pins the registration contract.
func TestRegisterRejectsDuplicates(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate name", func() { Register(Int64Codec) })
	expectPanic("empty name", func() { Register(Codec[int64]{Name: ""}) })
}

// TestCodecPropertiesQuick checks value-identity and byte-exact re-encoding
// over randomly generated values for every scalar and composite codec.
func TestCodecPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	check := func(name string, prop any) {
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	byteExact := func(first, second []byte, err error) bool {
		return err == nil && bytes.Equal(first, second)
	}
	check("int64", func(v int64) bool {
		f, s, err := Int64Codec.RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("uint64", func(v uint64) bool {
		f, s, err := Uint64Codec.RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("float64", func(v float64) bool {
		// Byte-exact comparison covers NaN payloads, which fail ==.
		f, s, err := Float64Codec.RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("string", func(v string) bool {
		f, s, err := StringCodec.RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("bytes", func(v []byte) bool {
		f, s, err := BytesCodec.RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("index2d", func(row, col int64) bool {
		f, s, err := Index2DCodec.RoundTrip(domain.Index2D{Row: row, Col: col})
		return byteExact(f, s, err)
	})
	check("int64-slice", func(v []int64) bool {
		f, s, err := SliceCodec(Int64Codec).RoundTrip(v)
		return byteExact(f, s, err)
	})
	check("pair", func(a int64, b float64) bool {
		f, s, err := PairCodec(Int64Codec, Float64Codec).RoundTrip(Pair[int64, float64]{First: a, Second: b})
		return byteExact(f, s, err)
	})
}

// TestSliceCodecCorruptCount pins the corrupt-count guard of derived slice
// codecs: a huge element count fails instead of allocating.
func TestSliceCodecCorruptCount(t *testing.T) {
	enc := NewBuffer()
	enc.PutUvarint(1 << 50)
	r := NewReader(enc.Bytes())
	if out := SliceCodec(Int64Codec).Decode(r); out != nil || r.Err() == nil {
		t.Fatal("corrupt slice count must fail, not allocate")
	}
}

// FuzzBufferDecode feeds arbitrary bytes through every decode primitive:
// nothing may panic, and errors must be sticky.
func FuzzBufferDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(EncodeAck(1, 2, 77))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.U8()
		r.Uvarint()
		r.Varint()
		r.Blob()
		r.U32()
		r.F64()
		r.Str()
		r.U64()
		r.Bool()
		if r.Err() == nil && r.Remaining() > len(data) {
			t.Fatal("remaining grew")
		}
	})
}

// FuzzInt64Codec fuzzes the signed varint codec for byte-exact round trips.
func FuzzInt64Codec(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(math.MinInt64))
	f.Add(int64(math.MaxInt64))
	f.Fuzz(func(t *testing.T, v int64) {
		first, second, err := Int64Codec.RoundTrip(v)
		if err != nil || !bytes.Equal(first, second) {
			t.Fatalf("round trip of %d: err=%v first=%x second=%x", v, err, first, second)
		}
	})
}

// FuzzBytesCodec fuzzes the blob codec for byte-exact round trips.
func FuzzBytesCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add(maxSample)
	f.Fuzz(func(t *testing.T, v []byte) {
		first, second, err := BytesCodec.RoundTrip(v)
		if err != nil || !bytes.Equal(first, second) {
			t.Fatalf("round trip of %d bytes: err=%v", len(v), err)
		}
	})
}
