package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPWire moves frames over real kernel TCP sockets on the loopback
// interface: every endpoint owns a listener, and each (source, destination)
// pair that exchanges traffic gets its own connection with an unbounded
// outgoing queue and a dedicated writer goroutine (batched writes through a
// buffered writer, flushed whenever the queue runs dry).  Frames are
// length-prefixed; a connection opens with an 8-byte (src, dst) handshake so
// the acceptor can attribute everything it reads.
//
// In-process the sockets never fail outside Close, so a bare TCPWire is
// ordered and lossless per pair; the runtime still layers Reliable on top so
// the exact same protocol stack runs with and without chaos.
type TCPWire struct {
	n       int
	deliver DeliverFunc

	// self, when >= 0, puts the wire in MESH mode for multi-process runs:
	// only endpoint self is local, so Start opens one listener (for self),
	// Send accepts only src == self, and inbound handshakes must name self as
	// their destination.  Peer listener addresses are learned through
	// SetPeerAddrs after every process has bound and published its own.
	// self < 0 is the all-local mode, where every endpoint lives here.
	self int

	mu        sync.Mutex
	listeners []net.Listener
	addrs     []string
	out       map[int]*outConn // key src*n+dst
	closed    bool

	accepting sync.WaitGroup
	reading   sync.WaitGroup
	writing   sync.WaitGroup

	framesSent    atomic.Int64
	framesRecv    atomic.Int64
	bytesSent     atomic.Int64
	bytesRecv     atomic.Int64
	connsAccepted atomic.Int64
	dialRetries   atomic.Int64

	// errSink, when installed, receives asynchronous wire failures (dial
	// exhaustion, a peer resetting a connection mid-write) instead of the
	// failure panicking or being dropped silently.
	errSink atomic.Pointer[func(err error)]
}

// outConn is the sending half of one (src, dst) pair: a connection plus its
// outgoing queue.
type outConn struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte
	writing bool // writer holds frames it has not flushed yet
	closed  bool
	conn    net.Conn
}

// NewTCP builds a TCP loopback wire between n endpoints, all local to this
// process.  Listeners are opened by Start; connections are dialled lazily on
// first send.
func NewTCP(n int) *TCPWire {
	return &TCPWire{n: n, self: -1, out: make(map[int]*outConn)}
}

// NewTCPMesh builds the multi-process variant: a wire for n endpoints of
// which only self lives in this process.  Start binds self's listener; the
// caller then publishes Addr() to the other processes and installs the full
// table with SetPeerAddrs before the first Send.
func NewTCPMesh(n, self int) *TCPWire {
	if self < 0 || self >= n {
		panic(fmt.Sprintf("transport: tcp mesh endpoint %d outside [0,%d)", self, n))
	}
	return &TCPWire{n: n, self: self, out: make(map[int]*outConn)}
}

// Start opens the loopback listeners (one per endpoint, or only self's in
// mesh mode) and begins accepting.
func (w *TCPWire) Start(deliver DeliverFunc) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.deliver != nil {
		return errors.New("transport: tcp wire started twice")
	}
	w.deliver = deliver
	w.listeners = make([]net.Listener, w.n)
	w.addrs = make([]string, w.n)
	for i := 0; i < w.n; i++ {
		if w.self >= 0 && i != w.self {
			continue // a peer process owns this endpoint
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				if w.listeners[j] != nil {
					w.listeners[j].Close()
				}
			}
			w.deliver = nil
			return fmt.Errorf("transport: tcp listen for location %d: %w", i, err)
		}
		w.listeners[i] = ln
		w.addrs[i] = ln.Addr().String()
		w.accepting.Add(1)
		go w.acceptLoop(ln)
	}
	return nil
}

// Addr returns the listen address of this process's endpoint (mesh mode) so
// the launcher's control plane can distribute the address table.  Must be
// called after Start.
func (w *TCPWire) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.self < 0 {
		panic("transport: Addr is only meaningful for a mesh wire")
	}
	return w.addrs[w.self]
}

// SetPeerAddrs installs the full endpoint address table (mesh mode).  It
// must be called before the first Send; self's own entry is kept as bound.
func (w *TCPWire) SetPeerAddrs(addrs []string) {
	if len(addrs) != w.n {
		panic(fmt.Sprintf("transport: peer table has %d addresses for %d endpoints", len(addrs), w.n))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i, a := range addrs {
		if i == w.self {
			continue
		}
		w.addrs[i] = a
	}
}

// acceptLoop accepts inbound connections for one endpoint and spawns a
// reader per connection.
func (w *TCPWire) acceptLoop(ln net.Listener) {
	defer w.accepting.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		w.connsAccepted.Add(1)
		w.reading.Add(1)
		go w.readLoop(conn)
	}
}

// readLoop reads the handshake and then delivers length-prefixed frames
// until the connection closes.
func (w *TCPWire) readLoop(conn net.Conn) {
	defer w.reading.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	var hs [8]byte
	if _, err := io.ReadFull(br, hs[:]); err != nil {
		return
	}
	src := int(binary.BigEndian.Uint32(hs[0:4]))
	dst := int(binary.BigEndian.Uint32(hs[4:8]))
	if src < 0 || src >= w.n || dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("transport: tcp handshake names pair %d->%d outside [0,%d)", src, dst, w.n))
	}
	if w.self >= 0 && dst != w.self {
		panic(fmt.Sprintf("transport: tcp mesh endpoint %d accepted a connection destined for %d", w.self, dst))
	}
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenb[:])
		frame := make([]byte, size)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		w.framesRecv.Add(1)
		w.bytesRecv.Add(int64(size) + 4)
		w.deliver(src, dst, frame)
	}
}

// Send queues the frame on the pair's connection, dialling it first if
// needed.
func (w *TCPWire) Send(src, dst int, frame []byte) {
	if src == dst {
		panic("transport: tcp wire asked to send to self (the runtime shortcuts local requests)")
	}
	if w.self >= 0 && src != w.self {
		panic(fmt.Sprintf("transport: tcp mesh endpoint %d asked to send as %d", w.self, src))
	}
	oc := w.conn(src, dst)
	if oc == nil {
		return // wire closed
	}
	oc.mu.Lock()
	if oc.closed {
		oc.mu.Unlock()
		return
	}
	oc.queue = append(oc.queue, frame)
	oc.cond.Signal()
	oc.mu.Unlock()
}

// Dial-retry schedule: a peer's listener may come up after our first Send
// (the multi-process launcher starts processes independently), so failed
// dials back off exponentially with full jitter before the wire gives up.
const (
	dialAttempts    = 8
	dialBackoffBase = 1 * time.Millisecond
	dialBackoffCap  = 250 * time.Millisecond
)

// OnWireError installs the asynchronous-failure callback (ErrorSink).
func (w *TCPWire) OnWireError(fn func(err error)) { w.errSink.Store(&fn) }

// reportError hands an asynchronous failure to the installed sink; with no
// sink it panics — the pre-containment behaviour.
func (w *TCPWire) reportError(err error) {
	if fn := w.errSink.Load(); fn != nil {
		(*fn)(err)
		return
	}
	panic(err.Error())
}

// dial connects to dst with jittered exponential backoff, retrying transient
// refusals while the peer's listener comes up.
func (w *TCPWire) dial(src, dst int) (net.Conn, error) {
	var lastErr error
	if w.addrs[dst] == "" {
		return nil, fmt.Errorf("transport: tcp mesh endpoint %d has no address for %d (SetPeerAddrs not called?)", w.self, dst)
	}
	backoff := dialBackoffBase
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			w.dialRetries.Add(1)
			// Full jitter: sleep a uniform fraction of the current backoff so
			// simultaneous redials from many pairs spread out.
			time.Sleep(time.Duration(rand.Int63n(int64(backoff)) + 1))
			backoff *= 2
			if backoff > dialBackoffCap {
				backoff = dialBackoffCap
			}
		}
		c, err := net.Dial("tcp", w.addrs[dst])
		if err != nil {
			lastErr = err
			continue
		}
		var hs [8]byte
		binary.BigEndian.PutUint32(hs[0:4], uint32(src))
		binary.BigEndian.PutUint32(hs[4:8], uint32(dst))
		if _, err := c.Write(hs[:]); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		return c, nil
	}
	return nil, fmt.Errorf("transport: tcp dial %d->%d (%s) failed after %d attempts: %w", src, dst, w.addrs[dst], dialAttempts, lastErr)
}

// conn returns the outgoing connection for the pair, dialling and spawning
// its writer on first use.  Returns nil when the wire is closed or the dial
// retries were exhausted (with the failure reported through the error sink).
func (w *TCPWire) conn(src, dst int) *outConn {
	key := src*w.n + dst
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if oc, ok := w.out[key]; ok {
		return oc
	}
	if w.deliver == nil {
		panic("transport: tcp wire used before Start")
	}
	c, err := w.dial(src, dst)
	if err != nil {
		w.reportError(err)
		return nil
	}
	oc := &outConn{conn: c}
	oc.cond = sync.NewCond(&oc.mu)
	w.out[key] = oc
	w.writing.Add(1)
	go w.writeLoop(oc)
	return oc
}

// writeLoop drains the pair's queue into the socket, flushing whenever the
// queue runs dry (the per-connection batching that keeps frame writes off
// the senders' critical path).
func (w *TCPWire) writeLoop(oc *outConn) {
	defer w.writing.Done()
	bw := bufio.NewWriterSize(oc.conn, 1<<16)
	var lenb [4]byte
	for {
		oc.mu.Lock()
		for len(oc.queue) == 0 && !oc.closed {
			oc.cond.Wait()
		}
		if len(oc.queue) == 0 && oc.closed {
			oc.mu.Unlock()
			return
		}
		batch := oc.queue
		oc.queue = nil
		oc.writing = true
		oc.mu.Unlock()
		for _, frame := range batch {
			binary.BigEndian.PutUint32(lenb[:], uint32(len(frame)))
			if _, err := bw.Write(lenb[:]); err != nil {
				w.writeFailed(oc, err)
				return
			}
			if _, err := bw.Write(frame); err != nil {
				w.writeFailed(oc, err)
				return
			}
			w.framesSent.Add(1)
			w.bytesSent.Add(int64(len(frame)) + 4)
		}
		if err := bw.Flush(); err != nil {
			w.writeFailed(oc, err)
			return
		}
		oc.mu.Lock()
		oc.writing = false
		oc.cond.Broadcast()
		oc.mu.Unlock()
	}
}

// writeFailed marks a connection dead after a write error.  During Close
// that is the expected teardown; any other time the peer reset the
// connection mid-stream, which is reported through the error sink (when one
// is installed) so the run surfaces a transport fault instead of silently
// losing the queued frames.
func (w *TCPWire) writeFailed(oc *outConn, err error) {
	w.mu.Lock()
	closing := w.closed
	w.mu.Unlock()
	if !closing {
		if fn := w.errSink.Load(); fn != nil {
			(*fn)(fmt.Errorf("transport: tcp write failed (peer reset during drain?): %w", err))
		}
	}
	w.dropRest(oc)
}

// dropRest marks a connection dead after a write error (which in-process
// only happens once Close tore the peer down); queued frames are dropped.
func (w *TCPWire) dropRest(oc *outConn) {
	oc.mu.Lock()
	oc.closed = true
	oc.queue = nil
	oc.writing = false
	oc.cond.Broadcast()
	oc.mu.Unlock()
}

// Drain blocks until every queued frame has been written and flushed to its
// socket.  End-to-end delivery is the Reliable layer's job; Drain only
// guarantees the sending side is empty.
func (w *TCPWire) Drain() {
	w.mu.Lock()
	conns := make([]*outConn, 0, len(w.out))
	for _, oc := range w.out {
		conns = append(conns, oc)
	}
	w.mu.Unlock()
	for _, oc := range conns {
		oc.mu.Lock()
		for (len(oc.queue) > 0 || oc.writing) && !oc.closed {
			oc.cond.Wait()
		}
		oc.mu.Unlock()
	}
}

// Close tears down queues, connections and listeners and waits for every
// goroutine to exit.
func (w *TCPWire) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	listeners := w.listeners
	conns := make([]*outConn, 0, len(w.out))
	for _, oc := range w.out {
		conns = append(conns, oc)
	}
	w.mu.Unlock()

	// Let writers drain what is already queued, then stop them.
	for _, oc := range conns {
		oc.mu.Lock()
		for (len(oc.queue) > 0 || oc.writing) && !oc.closed {
			oc.cond.Wait()
		}
		oc.closed = true
		oc.cond.Broadcast()
		oc.mu.Unlock()
	}
	w.writing.Wait()
	for _, oc := range conns {
		oc.conn.Close()
	}
	for _, ln := range listeners {
		if ln != nil {
			ln.Close()
		}
	}
	w.accepting.Wait()
	w.reading.Wait()
	return nil
}

// Name identifies the wire.
func (w *TCPWire) Name() string { return "tcp" }

// WireStats reports socket-level traffic.
func (w *TCPWire) WireStats() WireStats {
	return WireStats{
		FramesSent:     w.framesSent.Load(),
		FramesReceived: w.framesRecv.Load(),
		BytesSent:      w.bytesSent.Load(),
		BytesReceived:  w.bytesRecv.Load(),
		Connections:    w.connsAccepted.Load(),
		DialRetries:    w.dialRetries.Load(),
	}
}
