package transport

import (
	"bytes"
	"testing"
)

// descEqual compares descriptors field by field (the Arg slice keeps the
// struct from being ==-comparable).
func descEqual(a, b RequestDescriptor) bool {
	return a.Handle == b.Handle && a.Kind == b.Kind && a.Bytes == b.Bytes &&
		a.Op == b.Op && a.Token == b.Token && bytes.Equal(a.Arg, b.Arg)
}

// TestBatchFrameRoundTrip covers representative batches including the
// boundary payload sizes: empty batch, zero payload, and a payload above the
// padding cap.
func TestBatchFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		hdr  BatchHeader
		reqs []RequestDescriptor
	}{
		{"empty", BatchHeader{Src: 0, Dst: 1}, nil},
		{"one", BatchHeader{Src: 3, Dst: 0, Seq: 9, PayloadBytes: 24}, []RequestDescriptor{
			{Handle: 2, Kind: KindAsync, Bytes: 24},
		}},
		{"mixed-kinds", BatchHeader{Src: 1, Dst: 2, Seq: 1 << 40, PayloadBytes: 64}, []RequestDescriptor{
			{Handle: 0, Kind: KindAsync, Bytes: 8},
			{Handle: -1, Kind: KindUrgent, Bytes: 0},
			{Handle: 7, Kind: KindSync, Bytes: 16},
			{Handle: 7, Kind: KindSplit, Bytes: 8},
			{Handle: 3, Kind: KindBulk, Bytes: 32},
		}},
		{"padding-capped", BatchHeader{Src: 0, Dst: 1, Seq: 2, PayloadBytes: MaxPadBytes + 12345}, []RequestDescriptor{
			{Handle: 1, Kind: KindBulk, Bytes: 1 << 30},
		}},
		{"self-decoding", BatchHeader{Src: 2, Dst: 0, Seq: 4, PayloadBytes: 40}, []RequestDescriptor{
			{Handle: 1, Kind: KindAsync, Bytes: 16, Op: 0xDEADBEEF, Arg: []byte{1, 2, 3}},
			{Handle: 1, Kind: KindBulk, Bytes: 24, Op: 7, Arg: []byte{9}},
		}},
		{"reply", BatchHeader{Src: 1, Dst: 0, Seq: 0, PayloadBytes: 0}, []RequestDescriptor{
			{Handle: 2, Kind: KindReply, Bytes: 0, Op: 42, Token: 17, Arg: []byte{0xFF}},
		}},
		{"mixed-op-and-closure", BatchHeader{Src: 0, Dst: 3, Seq: 11, PayloadBytes: 32}, []RequestDescriptor{
			{Handle: 4, Kind: KindAsync, Bytes: 16, Op: 99, Arg: []byte{5, 6}},
			{Handle: 4, Kind: KindAsync, Bytes: 16},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := EncodeBatch(tc.hdr, tc.reqs)
			hdr, reqs, err := DecodeBatch(frame)
			if err != nil {
				t.Fatal(err)
			}
			if hdr != tc.hdr {
				t.Fatalf("header %+v, want %+v", hdr, tc.hdr)
			}
			if len(reqs) != len(tc.reqs) {
				t.Fatalf("%d descriptors, want %d", len(reqs), len(tc.reqs))
			}
			for i := range reqs {
				if !descEqual(reqs[i], tc.reqs[i]) {
					t.Fatalf("descriptor %d = %+v, want %+v", i, reqs[i], tc.reqs[i])
				}
			}
			// Re-encoding the decoded frame must be byte-identical.
			if again := EncodeBatch(hdr, reqs); !bytes.Equal(frame, again) {
				t.Fatal("re-encoded frame differs")
			}
			// The padding actually carried is capped.
			if want := padLen(tc.hdr.PayloadBytes); want > MaxPadBytes {
				t.Fatalf("padLen exceeded cap: %d", want)
			}
		})
	}
}

// TestBatchFrameCorruption feeds malformed frames to DecodeBatch: every
// case must error, never panic.
func TestBatchFrameCorruption(t *testing.T) {
	good := EncodeBatch(BatchHeader{Src: 0, Dst: 1, Seq: 3, PayloadBytes: 16}, []RequestDescriptor{
		{Handle: 1, Kind: KindAsync, Bytes: 16},
	})
	cases := map[string][]byte{
		"empty":        {},
		"wrong-kind":   append([]byte{FrameAck}, good[1:]...),
		"truncated":    good[:len(good)-3],
		"extra-bytes":  append(append([]byte(nil), good...), 0xEE),
		"only-kind":    {FrameData},
		"count-beyond": {FrameData, 0, 1, 0, 0, 0xFF},
	}
	for name, frame := range cases {
		if _, _, err := DecodeBatch(frame); err == nil {
			t.Errorf("%s: corrupt frame decoded without error", name)
		}
	}
}

// TestAckFrameRoundTrip covers the acknowledgement frame.
func TestAckFrameRoundTrip(t *testing.T) {
	frame := EncodeAck(2, 5, 1<<33)
	src, dst, cum, err := DecodeAck(frame)
	if err != nil || src != 2 || dst != 5 || cum != 1<<33 {
		t.Fatalf("ack round trip: %d %d %d %v", src, dst, cum, err)
	}
	if _, _, _, err := DecodeAck([]byte{FrameData, 0}); err == nil {
		t.Error("data frame must not decode as an ack")
	}
	if _, _, _, err := DecodeAck([]byte{FrameAck}); err == nil {
		t.Error("truncated ack must error")
	}
}

// FuzzDecodeBatch asserts DecodeBatch never panics on arbitrary input and
// that whatever it accepts is value-stable: re-encoding the decoded frame
// and decoding again yields the same header and descriptors.  (Byte-exact
// canonicality only holds for frames we encoded ourselves — hostile input
// may use non-minimal varints.)
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(BatchHeader{Src: 0, Dst: 1}, nil))
	f.Add(EncodeBatch(BatchHeader{Src: 1, Dst: 0, Seq: 7, PayloadBytes: 32}, []RequestDescriptor{
		{Handle: 3, Kind: KindBulk, Bytes: 32},
	}))
	f.Add([]byte{FrameData, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, reqs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if hdr.PayloadBytes < 0 {
			return // only reachable from hostile headers
		}
		hdr2, reqs2, err := DecodeBatch(EncodeBatch(hdr, reqs))
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if hdr2 != hdr || len(reqs2) != len(reqs) {
			t.Fatalf("value drift: %+v vs %+v", hdr2, hdr)
		}
		for i := range reqs {
			if !descEqual(reqs2[i], reqs[i]) {
				t.Fatalf("descriptor %d drifted: %+v vs %+v", i, reqs2[i], reqs[i])
			}
		}
	})
}

// FuzzDecodeAck asserts DecodeAck never panics and accepted acks are
// value-stable under re-encoding.
func FuzzDecodeAck(f *testing.F) {
	f.Add(EncodeAck(0, 1, 0))
	f.Add(EncodeAck(3, 2, 1<<50))
	f.Fuzz(func(t *testing.T, data []byte) {
		src, dst, cum, err := DecodeAck(data)
		if err != nil {
			return
		}
		if src < 0 || dst < 0 {
			return // negative endpoints only arise from hostile input
		}
		src2, dst2, cum2, err := DecodeAck(EncodeAck(src, dst, cum))
		if err != nil || src2 != src || dst2 != dst || cum2 != cum {
			t.Fatalf("ack drifted: %d %d %d (err %v)", src2, dst2, cum2, err)
		}
	})
}
