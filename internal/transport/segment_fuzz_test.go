package transport_test

import (
	"bytes"
	"testing"

	"repro/internal/bcontainer"
	"repro/internal/transport"
)

// The storage-representation segment codecs (adaptive set chunks, CSR rows)
// carry container payloads across process boundaries, so they face the same
// hostile-input contract as the frame and primitive codecs: arbitrary bytes
// must never panic, failures must be sticky, and every accepted input must
// re-encode to a stable canonical form.

// encodeSetSegment renders one segment through the registered codec.
func encodeSetSegment(seg bcontainer.SetSegment) []byte {
	var b transport.Buffer
	bcontainer.SetSegmentCodec.Encode(&b, seg)
	return b.Bytes()
}

// FuzzSetSegmentDecode feeds arbitrary bytes to the adaptive set-chunk
// segment decoder: no panics, and any accepted input must normalise to a
// canonical encoding that is a fixed point of decode∘encode (a low-card
// bitmap on the wire is legal but re-encodes as an array).
func FuzzSetSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	sparse := bcontainer.NewSetChunk()
	for k := 0; k < 40; k++ {
		sparse.Insert(uint16(k * 97 % bcontainer.SetChunkSize))
	}
	dense := bcontainer.NewSetChunk()
	for k := 0; k <= bcontainer.ArrayMaxCard; k++ {
		dense.Insert(uint16(k * 3 % bcontainer.SetChunkSize))
	}
	f.Add(encodeSetSegment(bcontainer.SetSegment{Chunk: 0, Set: bcontainer.NewSetChunk()}))
	f.Add(encodeSetSegment(bcontainer.SetSegment{Chunk: 7, Set: sparse}))
	f.Add(encodeSetSegment(bcontainer.SetSegment{Chunk: -2, Set: dense}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := transport.NewReader(data)
		seg := bcontainer.SetSegmentCodec.Decode(r)
		if r.Err() != nil {
			return
		}
		canon := encodeSetSegment(seg)
		if got := seg.ByteSize(); got != len(canon) {
			t.Fatalf("ByteSize = %d, encoded length = %d", got, len(canon))
		}
		r2 := transport.NewReader(canon)
		seg2 := bcontainer.SetSegmentCodec.Decode(r2)
		if r2.Err() != nil {
			t.Fatalf("canonical form failed to decode: %v", r2.Err())
		}
		if again := encodeSetSegment(seg2); !bytes.Equal(canon, again) {
			t.Fatalf("canonical encoding is not a fixed point: %x vs %x", canon, again)
		}
	})
}

// FuzzSetSegmentRoundTrip builds a chunk from fuzzer-chosen members and
// checks the codec round-trips it byte-exactly with the membership intact.
func FuzzSetSegmentRoundTrip(f *testing.F) {
	f.Add(int64(0), []byte{})
	f.Add(int64(12), []byte{0, 1, 2, 3, 255, 254})
	f.Add(int64(-5), bytes.Repeat([]byte{9, 33}, 300))
	f.Fuzz(func(t *testing.T, chunk int64, raw []byte) {
		set := bcontainer.NewSetChunk()
		want := map[uint16]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			k := uint16(raw[i])<<8 | uint16(raw[i+1])
			k %= bcontainer.SetChunkSize
			set.Insert(k)
			want[k] = true
		}
		seg := bcontainer.SetSegment{Chunk: chunk, Set: set}
		first, second, err := bcontainer.SetSegmentCodec.RoundTrip(seg)
		if err != nil || !bytes.Equal(first, second) {
			t.Fatalf("round trip: err=%v first=%x second=%x", err, first, second)
		}
		got := bcontainer.SetSegmentCodec.Decode(transport.NewReader(first))
		if got.Chunk != chunk {
			t.Fatalf("chunk = %d, want %d", got.Chunk, chunk)
		}
		n := 0
		got.Set.Range(func(k uint16) bool {
			if !want[k] {
				t.Fatalf("decoded stray member %d", k)
			}
			n++
			return true
		})
		if n != len(want) {
			t.Fatalf("decoded %d members, want %d", n, len(want))
		}
	})
}

// FuzzSparseRowDecode feeds arbitrary bytes to the delta-compressed CSR row
// decoder: no panics, sticky errors on corrupt counts or non-monotone
// columns, and byte-stable re-encoding of every accepted input.
func FuzzSparseRowDecode(f *testing.F) {
	codec := bcontainer.SparseRowCodec(transport.Int64Codec)
	encode := func(v bcontainer.SparseRow[int64]) []byte {
		var b transport.Buffer
		codec.Encode(&b, v)
		return b.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0xFF})
	f.Add(encode(bcontainer.SparseRow[int64]{Row: 3}))
	f.Add(encode(bcontainer.SparseRow[int64]{
		Row:  41,
		Cols: []int64{0, 7, 8, 4095},
		Vals: []int64{-1, 2, 300, 4},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := transport.NewReader(data)
		row := codec.Decode(r)
		if r.Err() != nil {
			return
		}
		for i := 1; i < len(row.Cols); i++ {
			if row.Cols[i] <= row.Cols[i-1] {
				t.Fatalf("decoder accepted non-increasing columns: %v", row.Cols)
			}
		}
		canon := encode(row)
		var scratch transport.Buffer
		if got := bcontainer.EncodedRowBytes(codec, &scratch, row); got != len(canon) {
			t.Fatalf("EncodedRowBytes = %d, encoded length = %d", got, len(canon))
		}
		r2 := transport.NewReader(canon)
		row2 := codec.Decode(r2)
		if r2.Err() != nil {
			t.Fatalf("re-encoded row failed to decode: %v", r2.Err())
		}
		if again := encode(row2); !bytes.Equal(canon, again) {
			t.Fatalf("row encoding is not a fixed point: %x vs %x", canon, again)
		}
	})
}
