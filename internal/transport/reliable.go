package transport

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Reliable restores the delivery guarantees the runtime's RMI semantics
// need — per-(source, destination) FIFO order and exactly-once delivery —
// on top of a Wire that may delay, duplicate or (after a signalled
// connection drop) lose frames:
//
//   - every data frame carries a per-pair sequence number and is kept by
//     the sender until acknowledged;
//   - the receiver delivers strictly in sequence order, buffering frames
//     that arrive early and discarding duplicates;
//   - the receiver acknowledges cumulatively; acknowledged frames are
//     released from the retransmit buffer;
//   - when the wire signals a reconnect for a pair, every unacknowledged
//     frame of the pair is retransmitted in order.
//
// Acknowledgements and retransmissions are control traffic (FrameAck /
// re-sent FrameData); the chaos wrapper injects faults into first-class
// data frames only, which is what makes the protocol's drain terminate.
type Reliable struct {
	inner   Wire
	n       int
	deliver DeliverFunc

	send []relSend
	recv []relRecv

	dataFrames  atomic.Int64
	acks        atomic.Int64
	retransmits atomic.Int64
	dupDropped  atomic.Int64
	outOfOrder  atomic.Int64
}

type relSend struct {
	mu      sync.Mutex
	next    uint64
	unacked map[uint64][]byte // outer frame bytes by sequence number
	// resending/resendAgain coalesce reconnect signals into sequential
	// resend rounds: a signal arriving while a round is in flight marks the
	// pair dirty instead of starting a concurrent round.  Without this,
	// k drops during one round launch k full retransmissions of the whole
	// unacked set, each multiplying the drop count again — a retransmit
	// storm that grows exponentially under a slow (TCP) wire.
	resending   bool
	resendAgain bool
}

type relRecv struct {
	mu       sync.Mutex
	expected uint64
	pending  map[uint64][]byte // early inner frames by sequence number
}

// NewReliable wraps inner with the ordered exactly-once protocol for n
// endpoints.
func NewReliable(inner Wire, n int) *Reliable {
	return &Reliable{
		inner: inner,
		n:     n,
		send:  make([]relSend, n*n),
		recv:  make([]relRecv, n*n),
	}
}

// Start brings up the inner wire and registers for reconnect signals.
func (r *Reliable) Start(deliver DeliverFunc) error {
	r.deliver = deliver
	if err := r.inner.Start(r.onFrame); err != nil {
		return err
	}
	if rs, ok := r.inner.(reconnectSignaler); ok {
		rs.OnReconnect(r.resendUnacked)
	}
	return nil
}

// OnWireError forwards asynchronous-failure reporting to the inner wire
// (ErrorSink); the reliable layer itself fails only through Drain.
func (r *Reliable) OnWireError(fn func(err error)) {
	if es, ok := r.inner.(ErrorSink); ok {
		es.OnWireError(fn)
	}
}

func (r *Reliable) pair(src, dst int) int { return src*r.n + dst }

// Send assigns the frame its sequence number, files it for retransmission
// and ships it.
func (r *Reliable) Send(src, dst int, frame []byte) {
	s := &r.send[r.pair(src, dst)]
	s.mu.Lock()
	seq := s.next
	s.next++
	outer := encodeRelData(seq, frame)
	if s.unacked == nil {
		s.unacked = make(map[uint64][]byte)
	}
	s.unacked[seq] = outer
	s.mu.Unlock()
	r.dataFrames.Add(1)
	r.inner.Send(src, dst, outer)
}

// onFrame handles a frame arriving from the inner wire.
func (r *Reliable) onFrame(src, dst int, frame []byte) {
	if len(frame) == 0 {
		panic("transport: reliable received an empty frame")
	}
	switch frame[0] {
	case FrameData:
		r.onData(src, dst, frame)
	case FrameAck:
		r.onAck(frame)
	default:
		panic(fmt.Sprintf("transport: reliable received unknown frame kind 0x%02x", frame[0]))
	}
}

func (r *Reliable) onData(src, dst int, frame []byte) {
	seq, inner, err := decodeRelData(frame)
	if err != nil {
		panic(fmt.Sprintf("transport: corrupt data frame from %d to %d: %v", src, dst, err))
	}
	rv := &r.recv[r.pair(src, dst)]
	rv.mu.Lock()
	_, buffered := rv.pending[seq]
	switch {
	case seq < rv.expected || buffered:
		r.dupDropped.Add(1)
	default:
		if rv.pending == nil {
			rv.pending = make(map[uint64][]byte)
		}
		if seq != rv.expected {
			r.outOfOrder.Add(1)
		}
		rv.pending[seq] = inner
		// Deliver the in-order run that is now available.  Holding the
		// pair's receive lock across the callbacks serialises delivery, so
		// two wire goroutines cannot reorder consecutive frames.
		for {
			next, ok := rv.pending[rv.expected]
			if !ok {
				break
			}
			delete(rv.pending, rv.expected)
			rv.expected++
			r.deliver(src, dst, next)
		}
	}
	cum := rv.expected
	rv.mu.Unlock()
	if cum > 0 {
		// Cumulative acknowledgement (also re-sent for duplicates, in case
		// an earlier ack raced a retransmission).
		r.acks.Add(1)
		r.inner.Send(dst, src, EncodeAck(src, dst, cum-1))
	}
}

func (r *Reliable) onAck(frame []byte) {
	src, dst, cum, err := DecodeAck(frame)
	if err != nil {
		panic(fmt.Sprintf("transport: corrupt ack frame: %v", err))
	}
	s := &r.send[r.pair(src, dst)]
	s.mu.Lock()
	for seq := range s.unacked {
		if seq <= cum {
			delete(s.unacked, seq)
		}
	}
	s.mu.Unlock()
}

// resendSettle is the pause before each resend round, giving in-flight
// acknowledgements a moment to land so a round only re-sends what is
// genuinely still missing.
const resendSettle = 100 * time.Microsecond

// resendUnacked retransmits the unacknowledged frames of the pair in
// sequence order (the reconnect handler).  Frames that were delivered in
// the meantime are discarded as duplicates by the receiver.  Rounds are
// sequential per pair: signals arriving mid-round coalesce into one
// follow-up round (see relSend).
func (r *Reliable) resendUnacked(src, dst int) {
	s := &r.send[r.pair(src, dst)]
	s.mu.Lock()
	if s.resending {
		s.resendAgain = true
		s.mu.Unlock()
		return
	}
	s.resending = true
	s.mu.Unlock()
	for {
		time.Sleep(resendSettle)
		s.mu.Lock()
		seqs := make([]uint64, 0, len(s.unacked))
		for seq := range s.unacked {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		frames := make([][]byte, 0, len(seqs))
		for _, seq := range seqs {
			frames = append(frames, s.unacked[seq])
		}
		s.mu.Unlock()
		r.retransmits.Add(int64(len(frames)))
		for _, f := range frames {
			r.inner.Send(src, dst, f)
		}
		s.mu.Lock()
		if !s.resendAgain {
			s.resending = false
			s.mu.Unlock()
			return
		}
		s.resendAgain = false
		s.mu.Unlock()
	}
}

// drainTimeout bounds how long Drain waits for outstanding
// acknowledgements before failing fast with a protocol diagnostic.
const drainTimeout = 60 * time.Second

// Drain blocks until every sent frame has been acknowledged (hence
// delivered, in order, exactly once) and the inner wire's queues are empty.
// It panics when the protocol cannot converge within the default window; use
// DrainErr to bound the wait and handle the failure as a value.
func (r *Reliable) Drain() {
	if err := r.DrainErr(drainTimeout); err != nil {
		panic(err.Error())
	}
}

// DrainErr is Drain with an explicit budget and structured failure: it
// returns nil once every sent frame is acknowledged and the inner wire's
// queues are empty, or an error naming the stuck pairs when the budget runs
// out (a dead peer, or an aborted run whose receivers went away).
func (r *Reliable) DrainErr(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		r.inner.Drain()
		if r.allAcked() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: reliable drain stuck after %v:%s", timeout, r.describeUnacked())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (r *Reliable) allAcked() bool {
	for i := range r.send {
		s := &r.send[i]
		s.mu.Lock()
		n := len(s.unacked)
		s.mu.Unlock()
		if n != 0 {
			return false
		}
	}
	return true
}

func (r *Reliable) describeUnacked() string {
	out := ""
	for i := range r.send {
		s := &r.send[i]
		s.mu.Lock()
		if len(s.unacked) > 0 {
			seqs := make([]uint64, 0, len(s.unacked))
			for seq := range s.unacked {
				seqs = append(seqs, seq)
			}
			sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
			out += fmt.Sprintf(" pair %d->%d: %d unacked (seq %d..%d);", i/r.n, i%r.n, len(seqs), seqs[0], seqs[len(seqs)-1])
		}
		s.mu.Unlock()
	}
	if out == "" {
		out = " (no unacked frames)"
	}
	return out
}

// Close shuts the inner wire down.
func (r *Reliable) Close() error { return r.inner.Close() }

// Name identifies the stack.
func (r *Reliable) Name() string { return "reliable+" + r.inner.Name() }

// WireStats reports protocol counters plus the inner wire's traffic.
func (r *Reliable) WireStats() WireStats {
	s := WireStats{
		DataFrames:        r.dataFrames.Load(),
		Acks:              r.acks.Load(),
		Retransmits:       r.retransmits.Load(),
		DuplicatesDropped: r.dupDropped.Load(),
		OutOfOrder:        r.outOfOrder.Load(),
	}
	s.add(innerStats(r.inner))
	return s
}

// encodeRelData wraps an inner frame with the reliable envelope.
func encodeRelData(seq uint64, inner []byte) []byte {
	b := NewBuffer()
	b.PutU8(FrameData)
	b.PutUvarint(seq)
	b.PutBlob(inner)
	return b.Bytes()
}

// decodeRelData strips the reliable envelope.
func decodeRelData(frame []byte) (seq uint64, inner []byte, err error) {
	b := NewReader(frame)
	if kind := b.U8(); kind != FrameData {
		return 0, nil, fmt.Errorf("expected data envelope, got kind 0x%02x", kind)
	}
	seq = b.Uvarint()
	inner = b.Blob()
	if err := b.Err(); err != nil {
		return 0, nil, err
	}
	if b.Remaining() != 0 {
		return 0, nil, fmt.Errorf("%d trailing bytes after data envelope", b.Remaining())
	}
	return seq, inner, nil
}
