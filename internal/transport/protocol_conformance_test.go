package transport

import (
	"bytes"
	"reflect"
	"testing"
)

// Conformance tests for docs/PROTOCOL.md: every example frame in the spec is
// written out here BYTE FOR BYTE, by hand, and must encode and decode
// exactly.  A change that alters the wire format fails these tests and must
// update the spec (and bump its version note) in the same commit.

// Example 1 (PROTOCOL.md §4.4): a closure-fallback batch — one KindAsync
// descriptor with Op = 0, simulated payload 4 bytes, so the frame carries
// 4 bytes of zero padding and no argument bytes.
func TestConformanceClosureFallbackFrame(t *testing.T) {
	hdr := BatchHeader{Src: 1, Dst: 2, Seq: 5, PayloadBytes: 4}
	descs := []RequestDescriptor{{Handle: 3, Kind: KindAsync, Bytes: 4, Op: 0}}
	want := []byte{
		0x01,                   // frame kind: FrameData
		0x01,                   // Src    = 1 (uvarint)
		0x02,                   // Dst    = 2 (uvarint)
		0x05,                   // Seq    = 5 (uvarint)
		0x04,                   // PayloadBytes = 4 (uvarint)
		0x01,                   // descriptor count = 1 (uvarint)
		0x06,                   // Handle = 3 (varint, zig-zag: 3 -> 6)
		0x01,                   // Kind   = KindAsync
		0x04,                   // Bytes  = 4 (uvarint)
		0x00,                   // Op     = 0: closure fallback, no Token/Arg follow
		0x00, 0x00, 0x00, 0x00, // padding: padLen(4 - 0) = 4 zero bytes
	}
	got := EncodeBatch(hdr, descs)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded frame diverges from the spec example:\n got %x\nwant %x", got, want)
	}
	dhdr, ddescs, err := DecodeBatch(want)
	if err != nil {
		t.Fatalf("decoding the spec example: %v", err)
	}
	if dhdr != hdr || !reflect.DeepEqual(ddescs, descs) {
		t.Fatalf("decoded (%+v, %+v), want (%+v, %+v)", dhdr, ddescs, hdr, descs)
	}
}

// Example 2 (PROTOCOL.md §4.4): a self-decoding batch — one KindUrgent
// descriptor naming operation 258 with a 2-byte encoded argument.  The
// simulated payload is 3 bytes, of which 2 travel as real argument bytes, so
// exactly 1 byte of padding remains.
func TestConformanceSelfDecodingFrame(t *testing.T) {
	hdr := BatchHeader{Src: 0, Dst: 1, Seq: 0, PayloadBytes: 3}
	descs := []RequestDescriptor{{
		Handle: 2, Kind: KindUrgent, Bytes: 3, Op: 258, Token: 0,
		Arg: []byte{0xDE, 0xAD},
	}}
	want := []byte{
		0x01,       // frame kind: FrameData
		0x00,       // Src = 0
		0x01,       // Dst = 1
		0x00,       // Seq = 0
		0x03,       // PayloadBytes = 3
		0x01,       // descriptor count = 1
		0x04,       // Handle = 2 (zig-zag: 2 -> 4)
		0x02,       // Kind = KindUrgent
		0x03,       // Bytes = 3
		0x82, 0x02, // Op = 258 (uvarint, two bytes)
		0x00,       // Token = 0 (present because Op != 0)
		0x02,       // Arg blob length = 2 (uvarint)
		0xDE, 0xAD, // Arg bytes (codec-encoded argument)
		0x00, // padding: padLen(3 - 2) = 1 zero byte
	}
	got := EncodeBatch(hdr, descs)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded frame diverges from the spec example:\n got %x\nwant %x", got, want)
	}
	dhdr, ddescs, err := DecodeBatch(want)
	if err != nil {
		t.Fatalf("decoding the spec example: %v", err)
	}
	if dhdr != hdr || !reflect.DeepEqual(ddescs, descs) {
		t.Fatalf("decoded (%+v, %+v), want (%+v, %+v)", dhdr, ddescs, hdr, descs)
	}
}

// Example 3 (PROTOCOL.md §4.4): a reply frame — one KindReply descriptor
// carrying completion token 7 and a 1-byte encoded reply value for operation
// 300.  Replies account no simulated payload, so the frame has no padding.
func TestConformanceReplyFrame(t *testing.T) {
	hdr := BatchHeader{Src: 2, Dst: 0, Seq: 1, PayloadBytes: 0}
	descs := []RequestDescriptor{{
		Handle: 0, Kind: KindReply, Bytes: 0, Op: 300, Token: 7,
		Arg: []byte{0x2A},
	}}
	want := []byte{
		0x01,       // frame kind: FrameData
		0x02,       // Src = 2
		0x00,       // Dst = 0
		0x01,       // Seq = 1
		0x00,       // PayloadBytes = 0
		0x01,       // descriptor count = 1
		0x00,       // Handle = 0
		0x06,       // Kind = KindReply
		0x00,       // Bytes = 0
		0xAC, 0x02, // Op = 300 (uvarint, two bytes)
		0x07, // Token = 7: names the origin's completion callback
		0x01, // Arg blob length = 1
		0x2A, // Arg bytes (return-codec-encoded reply value)
		// no padding: padLen(0 - 1) = 0
	}
	got := EncodeBatch(hdr, descs)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded frame diverges from the spec example:\n got %x\nwant %x", got, want)
	}
	dhdr, ddescs, err := DecodeBatch(want)
	if err != nil {
		t.Fatalf("decoding the spec example: %v", err)
	}
	if dhdr != hdr || !reflect.DeepEqual(ddescs, descs) {
		t.Fatalf("decoded (%+v, %+v), want (%+v, %+v)", dhdr, ddescs, hdr, descs)
	}
}

// PROTOCOL.md §5: the acknowledgement frame.
func TestConformanceAckFrame(t *testing.T) {
	want := []byte{
		0x02, // frame kind: FrameAck
		0x01, // Src = 1 (the DATA direction; the ack travels Dst -> Src)
		0x02, // Dst = 2
		0x29, // Cum = 41: every data frame of the pair with seq <= 41 arrived
	}
	got := EncodeAck(1, 2, 41)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded ack diverges from the spec example:\n got %x\nwant %x", got, want)
	}
	src, dst, cum, err := DecodeAck(want)
	if err != nil {
		t.Fatalf("decoding the spec ack: %v", err)
	}
	if src != 1 || dst != 2 || cum != 41 {
		t.Fatalf("decoded ack (%d, %d, %d), want (1, 2, 41)", src, dst, cum)
	}
}

// PROTOCOL.md §5: the reliable data envelope wrapping an inner frame.
func TestConformanceReliableEnvelope(t *testing.T) {
	inner := []byte{0x01, 0x02, 0x03}
	want := []byte{
		0x01,             // envelope kind: FrameData
		0x09,             // per-pair sequence number = 9 (uvarint)
		0x03,             // inner frame blob length = 3 (uvarint)
		0x01, 0x02, 0x03, // inner frame bytes, verbatim
	}
	got := encodeRelData(9, inner)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoded envelope diverges from the spec example:\n got %x\nwant %x", got, want)
	}
	seq, din, err := decodeRelData(want)
	if err != nil {
		t.Fatalf("decoding the spec envelope: %v", err)
	}
	if seq != 9 || !bytes.Equal(din, inner) {
		t.Fatalf("decoded envelope (seq %d, %x), want (9, %x)", seq, din, inner)
	}
}

// PROTOCOL.md §4.3: padding is capped at MaxPadBytes (1 MiB) regardless of
// the simulated payload size, and the receiver validates the exact padding
// length it implies.
func TestConformancePaddingCap(t *testing.T) {
	hdr := BatchHeader{Src: 0, Dst: 1, Seq: 0, PayloadBytes: MaxPadBytes + 1000}
	frame := EncodeBatch(hdr, []RequestDescriptor{{Handle: 1, Kind: KindBulk, Bytes: 0, Op: 0}})
	headerLen := len(frame) - MaxPadBytes
	if headerLen <= 0 {
		t.Fatalf("frame of %d bytes carries less than the capped %d padding bytes", len(frame), MaxPadBytes)
	}
	for _, b := range frame[headerLen:] {
		if b != 0 {
			t.Fatal("padding bytes must be zero")
		}
	}
	dhdr, _, err := DecodeBatch(frame)
	if err != nil {
		t.Fatalf("decoding capped-padding frame: %v", err)
	}
	if dhdr.PayloadBytes != MaxPadBytes+1000 {
		t.Fatalf("PayloadBytes = %d survived as %d", MaxPadBytes+1000, dhdr.PayloadBytes)
	}
	// A frame whose padding does not match padLen(PayloadBytes - Σ|Arg|) is
	// rejected, not silently accepted.
	if _, _, err := DecodeBatch(frame[:len(frame)-1]); err == nil {
		t.Fatal("frame with short padding must be rejected")
	}
}

// PROTOCOL.md §7: truncated or corrupt frames are decode errors, never
// partial successes.
func TestConformanceCorruptFramesRejected(t *testing.T) {
	good := EncodeBatch(BatchHeader{Src: 0, Dst: 1, Seq: 0, PayloadBytes: 0},
		[]RequestDescriptor{{Handle: 1, Kind: KindAsync, Bytes: 0, Op: 258, Token: 0, Arg: []byte{0x01}}})
	if _, _, err := DecodeBatch(good); err != nil {
		t.Fatalf("control: %v", err)
	}
	for name, frame := range map[string][]byte{
		"empty":            {},
		"wrong kind":       {0x7F, 0x00, 0x01},
		"truncated header": good[:3],
		"truncated arg":    good[:len(good)-1],
	} {
		if _, _, err := DecodeBatch(frame); err == nil {
			t.Errorf("%s frame decoded without error", name)
		}
	}
	if _, _, _, err := DecodeAck([]byte{0x02, 0x01}); err == nil {
		t.Error("truncated ack decoded without error")
	}
}
