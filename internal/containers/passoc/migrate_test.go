package passoc

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestHashMapMigrateKeys(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		h := NewHashMap[int64, int64](loc, partition.Int64Hash,
			HashOption{SubdomainsPerLocation: 2, KeyMigration: true})
		if h.KeyDirectory() == nil {
			t.Fatal("key-migration overlay not active")
		}
		const n = 200
		for k := int64(loc.ID()); k < n; k += int64(loc.NumLocations()) {
			h.Insert(k, 10*k)
		}
		loc.Fence()
		// Location 2 pulls the "hot" keys 0..9 next to itself.
		var hot []int64
		if loc.ID() == 2 {
			for k := int64(0); k < 10; k++ {
				hot = append(hot, k)
			}
		}
		h.MigrateKeys(hot, 2)
		// Every key — migrated or not — still resolves to its value from
		// every location.
		for k := int64(0); k < n; k++ {
			if v, ok := h.Find(k); !ok || v != 10*k {
				t.Errorf("Find(%d) = %d,%v after migration", k, v, ok)
			}
		}
		loc.Barrier()
		// Updates of a migrated key land at its new bucket and stay visible.
		h.Apply(3, func(v int64) int64 { return v + 1 })
		loc.Fence()
		if v, _ := h.Find(3); v != 30+int64(loc.NumLocations()) {
			t.Errorf("migrated key lost updates: %d", v)
		}
		// Repeat remote lookups of migrated keys are served by the cache.
		if loc.ID() == 0 {
			for r := 0; r < 3; r++ {
				for k := int64(0); k < 10; k++ {
					h.Find(k)
				}
			}
			if hits, _, _ := h.KeyDirectory().CacheStats(); hits == 0 {
				t.Error("repeat lookups of migrated keys never hit the cache")
			}
		}
		loc.Fence()
		if got := h.Size(); got != n {
			t.Errorf("size = %d", got)
		}
		loc.Fence()
	})
}

func TestHashMapRedistributeResetsMigrations(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		h := NewHashMap[int64, int64](loc, partition.Int64Hash,
			HashOption{SubdomainsPerLocation: 2, KeyMigration: true})
		const n = 100
		for k := int64(loc.ID()); k < n; k += int64(loc.NumLocations()) {
			h.Insert(k, k)
		}
		loc.Fence()
		var hot []int64
		if loc.ID() == 0 {
			hot = []int64{1, 2, 3, 4, 5}
		}
		h.MigrateKeys(hot, 3)
		// A rebalance routes every pair by the closed form again: the
		// exception entries are dropped and everything still resolves.
		h.Rebalance()
		for k := int64(0); k < n; k++ {
			if v, ok := h.Find(k); !ok || v != k {
				t.Errorf("Find(%d) = %d,%v after redistribute", k, v, ok)
			}
		}
		if entries := runtime.AllReduceSum(loc, int64(h.KeyDirectory().LocalEntries())); entries != 0 {
			t.Errorf("redistribute left %d exception entries", entries)
		}
		loc.Fence()
	})
}

func TestHashMapMigrateKeysRequiresOverlay(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		h := NewHashMap[int64, int64](loc, partition.Int64Hash)
		loc.Fence()
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "KeyMigration") {
				t.Errorf("MigrateKeys without the overlay did not fail fast: %v", r)
			}
			loc.Fence()
		}()
		h.MigrateKeys(nil, 0)
	})
}
