package passoc

import (
	"reflect"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// Registered-operation routing for the hashed family, mirroring pArray's
// scheme: when both the key and value types have wire codecs
// (transport.RegisterTyped), inserts travel as self-decoding frames and the
// redistribution engine ships pairs as registered operations — both
// executable across process boundaries.  Type pairs without codecs keep the
// original closure paths unchanged.
//
// One registration serves every pHashMap instantiated at the same (K, V):
// operation names derive from the codec names (stable across processes and
// registration order) and the per-pair result is cached.

var (
	hashOpsMu  sync.Mutex
	hashOpsReg = map[[2]reflect.Type]any{} // *core.ElemOps[...] per (K, V); nil when uncodeced
	kvMigMu    sync.Mutex
	kvMigReg   = map[[2]reflect.Type]any{} // *core.MigrationOps[kvPair[K, V]] per (K, V)
)

func typePair[K comparable, V any]() [2]reflect.Type {
	return [2]reflect.Type{
		reflect.TypeOf((*K)(nil)).Elem(),
		reflect.TypeOf((*V)(nil)).Elem(),
	}
}

// hashElemOpsFor returns the registered element operations for a pHashMap at
// (K, V), or nil when either type has no typed codec (closure fallback).
func hashElemOpsFor[K comparable, V any]() *core.ElemOps[K, *bcontainer.HashMap[K, V], V] {
	t := typePair[K, V]()
	hashOpsMu.Lock()
	defer hashOpsMu.Unlock()
	if v, ok := hashOpsReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.ElemOps[K, *bcontainer.HashMap[K, V], V])
	}
	kCodec, kOK := transport.TypedCodecFor[K]()
	vCodec, vOK := transport.TypedCodecFor[V]()
	if !kOK || !vOK {
		hashOpsReg[t] = nil
		return nil
	}
	o := core.RegisterElemOps[K, *bcontainer.HashMap[K, V], V](
		"passoc.hashmap["+kCodec.Name+","+vCodec.Name+"]",
		kCodec,
		vCodec,
		func(_ *runtime.Location, bc *bcontainer.HashMap[K, V], k K, v V) { bc.Insert(k, v) },
		func(_ *runtime.Location, bc *bcontainer.HashMap[K, V], k K) V {
			v, _ := bc.Find(k)
			return v
		},
	)
	hashOpsReg[t] = o
	return o
}

// kvMigOpsFor returns the registered migration operation for kvPair[K, V], or
// nil when either type has no typed codec.
func kvMigOpsFor[K comparable, V any]() *core.MigrationOps[kvPair[K, V]] {
	t := typePair[K, V]()
	kvMigMu.Lock()
	defer kvMigMu.Unlock()
	if v, ok := kvMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.MigrationOps[kvPair[K, V]])
	}
	kCodec, kOK := transport.TypedCodecFor[K]()
	vCodec, vOK := transport.TypedCodecFor[V]()
	if !kOK || !vOK {
		kvMigReg[t] = nil
		return nil
	}
	o := core.RegisterMigrationOps("passoc.kv["+kCodec.Name+","+vCodec.Name+"]",
		transport.Codec[kvPair[K, V]]{
			Name: "passoc.kv-pair[" + kCodec.Name + "," + vCodec.Name + "]",
			Encode: func(b *transport.Buffer, p kvPair[K, V]) {
				kCodec.Encode(b, p.key)
				vCodec.Encode(b, p.val)
			},
			Decode: func(b *transport.Buffer) kvPair[K, V] {
				return kvPair[K, V]{key: kCodec.Decode(b), val: vCodec.Decode(b)}
			},
		})
	kvMigReg[t] = o
	return o
}
