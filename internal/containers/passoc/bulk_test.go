package passoc

import (
	"fmt"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// TestHashMapBulkEquivalence: InsertBulk/ApplyBulk plus a fence must leave
// the map identical to the elementwise loops, and FindBulk must agree with
// Find — including empty batches and keys hashing to the caller's own
// buckets.
func TestHashMapBulkEquivalence(t *testing.T) {
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		bulk := NewHashMap[string, int64](loc, partition.StringHash)
		elem := NewHashMap[string, int64](loc, partition.StringHash)

		var keys []string
		var vals []int64
		for i := 0; i < 80; i++ {
			keys = append(keys, fmt.Sprintf("key-%d-%d", loc.ID(), i))
			vals = append(vals, int64(loc.ID()*1000+i))
		}
		bulk.InsertBulk(keys, vals)
		for k := range keys {
			elem.Insert(keys[k], vals[k])
		}
		loc.Fence()

		// FindBulk agrees with Find, present and absent keys alike.
		probe := append(append([]string(nil), keys[:10]...), "absent-a", "absent-b")
		gotV, gotOK := bulk.FindBulk(probe)
		for k, key := range probe {
			wantV, wantOK := elem.Find(key)
			if gotOK[k] != wantOK || (wantOK && gotV[k] != wantV) {
				t.Errorf("FindBulk[%q] = (%d,%v), want (%d,%v)", key, gotV[k], gotOK[k], wantV, wantOK)
			}
		}
		loc.Fence()

		// Empty batch.
		bulk.InsertBulk(nil, nil)
		if v, ok := bulk.FindBulk(nil); len(v) != 0 || len(ok) != 0 {
			t.Error("FindBulk(nil) returned values")
		}
		loc.Fence()

		// ApplyBulk equals the elementwise Apply loop (atomic increments).
		bulk.ApplyBulk(keys, func(v int64) int64 { return v + 7 })
		for _, key := range keys {
			elem.Apply(key, func(v int64) int64 { return v + 7 })
		}
		loc.Fence()
		bulk.LocalRange(func(k string, v int64) bool {
			if ev, ok := elem.Find(k); !ok || ev != v {
				t.Errorf("key %q: bulk=%d elementwise=%d (ok=%v)", k, v, ev, ok)
			}
			return true
		})
		if got, want := bulk.Size(), elem.Size(); got != want {
			t.Errorf("sizes diverged: bulk=%d elementwise=%d", got, want)
		}
		loc.Fence()
	})
}
