package passoc

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Set is a pHashSet: a simple associative pContainer in which the key is the
// value (the paper's pSet/pHashSet).  It is a thin layer over the hashed
// pair-associative machinery.
type Set[K comparable] struct {
	m *HashMap[K, struct{}]
}

// NewSet constructs an empty pSet distributed by hashing keys with hash.
// Collective.
func NewSet[K comparable](loc *runtime.Location, hash func(K) uint64, opt ...HashOption) *Set[K] {
	return &Set[K]{m: NewHashMap[K, struct{}](loc, hash, opt...)}
}

// Insert adds k asynchronously.
func (s *Set[K]) Insert(k K) { s.m.Insert(k, struct{}{}) }

// InsertSync adds k and reports whether it was newly inserted.
func (s *Set[K]) InsertSync(k K) bool { return s.m.InsertIfAbsent(k, struct{}{}) }

// Contains reports whether k is a member.  Synchronous.
func (s *Set[K]) Contains(k K) bool { return s.m.Contains(k) }

// EraseAsync removes k asynchronously.
func (s *Set[K]) EraseAsync(k K) { s.m.EraseAsync(k) }

// Erase removes k and reports whether it was a member.  Synchronous.
func (s *Set[K]) Erase(k K) bool { return s.m.Erase(k) }

// Size returns the global number of members.  Collective.
func (s *Set[K]) Size() int64 { return s.m.Size() }

// LocalRange applies fn to every locally stored member.
func (s *Set[K]) LocalRange(fn func(k K) bool) {
	s.m.LocalRange(func(k K, _ struct{}) bool { return fn(k) })
}

// Fence forwards to the RTS fence.
func (s *Set[K]) Fence() { s.m.Fence() }

// MemorySize returns the container-wide footprint.  Collective.
func (s *Set[K]) MemorySize() core.MemoryUsage { return s.m.MemorySize() }

// MultiMap is a pMultiMap: a pair-associative pContainer that keeps every
// value inserted for a key, in insertion order per key.
type MultiMap[K comparable, V any] struct {
	m *HashMap[K, []V]
}

// NewMultiMap constructs an empty pMultiMap distributed by hashing keys.
// Collective.
func NewMultiMap[K comparable, V any](loc *runtime.Location, hash func(K) uint64, opt ...HashOption) *MultiMap[K, V] {
	return &MultiMap[K, V]{m: NewHashMap[K, []V](loc, hash, opt...)}
}

// Insert appends v to the values stored under k, asynchronously.
func (mm *MultiMap[K, V]) Insert(k K, v V) {
	mm.m.Apply(k, func(vs []V) []V { return append(vs, v) })
}

// Find returns all values stored under k (synchronous).
func (mm *MultiMap[K, V]) Find(k K) []V {
	vs, _ := mm.m.Find(k)
	return vs
}

// Count returns how many values are stored under k.  Synchronous.
func (mm *MultiMap[K, V]) Count(k K) int { return len(mm.Find(k)) }

// EraseKey removes all values stored under k, asynchronously.
func (mm *MultiMap[K, V]) EraseKey(k K) { mm.m.EraseAsync(k) }

// NumKeys returns the global number of distinct keys.  Collective.
func (mm *MultiMap[K, V]) NumKeys() int64 { return mm.m.Size() }

// LocalRange applies fn to every locally stored (key, values) pair.
func (mm *MultiMap[K, V]) LocalRange(fn func(k K, vs []V) bool) { mm.m.LocalRange(fn) }

// Fence forwards to the RTS fence.
func (mm *MultiMap[K, V]) Fence() { mm.m.Fence() }
