package passoc

import (
	"testing"

	"repro/internal/bcontainer"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestCompressedSetInsertContainsErase(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const n = 1 << 16
		s := NewCompressedSet(loc, n)
		// Every location inserts a strided share of a sparse key set.
		for k := int64(loc.ID()) * 97; k < n; k += 97 * int64(loc.NumLocations()) {
			s.Insert(k)
		}
		loc.Fence()
		if got, want := s.Size(), int64((n+96)/97); got != want {
			t.Errorf("size = %d, want %d", got, want)
		}
		if loc.ID() == 0 {
			if !s.Contains(97) {
				t.Error("Contains(97) = false, want true")
			}
			if s.Contains(98) {
				t.Error("Contains(98) = true, want false")
			}
			s.EraseAsync(97)
		}
		loc.Fence()
		if s.Contains(97) {
			t.Error("Contains(97) after erase = true, want false")
		}
		loc.Fence()
	})
}

func TestCompressedSetBulkAndSplit(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		const n = 1 << 14
		s := NewCompressedSet(loc, n)
		if loc.ID() == 0 {
			keys := make([]int64, 0, n/3)
			for k := int64(0); k < n; k += 3 {
				keys = append(keys, k)
			}
			s.InsertBulk(keys)
		}
		loc.Fence()
		got := s.ContainsBulk([]int64{0, 1, 3, 4, n - 2})
		want := []bool{true, false, true, false, false}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("ContainsBulk[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		f := s.ContainsSplit(6)
		if !f.Get() {
			t.Error("ContainsSplit(6) = false, want true")
		}
		loc.Fence()
	})
}

// TestCompressedSetRepresentationTransitions drives one chunk across the
// array→bitmap threshold and back through the pContainer API, asserting the
// physical representation at each step — the roaring transition test lifted
// to the distributed container.
func TestCompressedSetRepresentationTransitions(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		const n = 1 << 14
		s := NewCompressedSet(loc, n)
		// All keys in chunk 0, which lives on location 0.
		if loc.ID() == 0 {
			for k := int64(0); k <= bcontainer.ArrayMaxCard; k++ {
				s.Insert(k) // one past the threshold: must convert
			}
		}
		loc.Fence()
		if loc.ID() == 0 {
			if kind, ok := s.LocalChunkKind(0); !ok || kind != bcontainer.ReprBitmap {
				t.Errorf("after %d inserts: kind=%v ok=%v, want bitmap", bcontainer.ArrayMaxCard+1, kind, ok)
			}
			s.EraseAsync(0) // back down to the threshold: must convert back
		}
		loc.Fence()
		if loc.ID() == 0 {
			if kind, ok := s.LocalChunkKind(1); !ok || kind != bcontainer.ReprArray {
				t.Errorf("after erase to threshold: kind=%v ok=%v, want array", kind, ok)
			}
		}
		loc.Fence()
	})
}

// TestCompressedSetRedistribute skews the membership onto location 0 with an
// explicit partition, rebalances, and checks the members round-trip
// element-for-element against a reference map — including chunks that
// straddle the new sub-domain boundaries.
func TestCompressedSetRedistribute(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		const n = 1 << 16
		p := loc.NumLocations()
		s := NewCompressedSet(loc, n)
		// A mixed-density population: a dense run (bitmap chunks) plus a
		// sparse stride (array chunks).
		if loc.ID() == 0 {
			for k := int64(0); k < 3000; k++ {
				s.Insert(k)
			}
		}
		for k := int64(loc.ID()) * 131; k < n; k += 131 * int64(p) {
			s.Insert(k)
		}
		loc.Fence()
		sizeBefore := s.Size()

		// Skew everything onto location 0 (boundary 61 is deliberately not
		// chunk-aligned, so chunks straddle and must split).
		sizes := make([]int64, p)
		sizes[0] = n - 61*int64(p-1)
		for i := 1; i < p; i++ {
			sizes[i] = 61
		}
		part, err := partition.NewExplicit(domain.NewRange1D(0, n), sizes)
		if err != nil {
			t.Fatal(err)
		}
		s.Redistribute(part, partition.NewBlockedMapper(p, p))
		if got := s.Size(); got != sizeBefore {
			t.Errorf("size after skew = %d, want %d", got, sizeBefore)
		}

		// Rebalance back and verify membership survived both migrations.
		s.Rebalance()
		if got := s.Size(); got != sizeBefore {
			t.Errorf("size after rebalance = %d, want %d", got, sizeBefore)
		}
		// Reference check: recompute the expected membership locally.
		expect := func(k int64) bool {
			if k < 3000 {
				return true
			}
			return k%131 == 0
		}
		probes := []int64{0, 1, 2999, 3000, 131 * 7, 131*7 + 1, 131 * 499, n - 1}
		for _, k := range probes {
			if got := s.Contains(k); got != expect(k) {
				t.Errorf("Contains(%d) = %v, want %v", k, got, expect(k))
			}
		}
		// Exhaustive count via local iteration.
		var local int64
		s.LocalRange(func(k int64) bool {
			if !expect(k) {
				t.Errorf("unexpected member %d", k)
			}
			local++
			return true
		})
		if total := runtime.AllReduceSum(loc, local); total != sizeBefore {
			t.Errorf("enumerated %d members, want %d", total, sizeBefore)
		}
		loc.Fence()
	})
}
