// Package passoc implements the STAPL associative pContainers
// (Chapter XII): unordered pHashMap / pHashSet distributed by key hashing,
// the ordered pMap distributed by key ranges (value-based partition), and a
// pMultiMap storing several values per key.
//
// Associative containers are dynamic pContainers whose GIDs are the keys
// themselves; the partition has a closed form (hash or splitter search), so
// element methods never need forwarding.
package passoc

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// hashResolver routes keys through a hashed partition.
type hashResolver[K comparable] struct {
	part   *partition.Hashed[K]
	mapper partition.Mapper
}

func (r hashResolver[K]) Find(k K) partition.Info      { return r.part.Find(k) }
func (r hashResolver[K]) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// HashMap is the per-location representative of a pHashMap: an unordered
// pair-associative pContainer with amortised O(1) element methods.
type HashMap[K comparable, V any] struct {
	core.Container[K, *bcontainer.HashMap[K, V]]

	part   *partition.Hashed[K]
	mapper partition.Mapper

	// ops is the registered element-operation set for this (K, V) pair (nil
	// when either type has no wire codec): with it, inserts travel as
	// self-decoding frames.  See ops.go.
	ops *core.ElemOps[K, *bcontainer.HashMap[K, V], V]

	// dir is the exception overlay of the key-migration option (see
	// migrate.go); nil when the overlay is disabled.
	dir *core.Directory[K]
}

// HashOption customises pHashMap construction.
type HashOption struct {
	// SubdomainsPerLocation sets how many hash buckets (bContainers) each
	// location owns; the default is 1.
	SubdomainsPerLocation int
	// KeyMigration enables the directory-backed key-migration overlay:
	// MigrateKeys can move individual keys away from their hash bucket, and
	// lookups of migrated keys are served through the shared distributed
	// directory with per-location resolution caching (see migrate.go).
	KeyMigration bool
	// Traits overrides the default container traits.
	Traits *core.Traits
}

// NewHashMap constructs an empty pHashMap distributed by hashing keys with
// hash.  Collective.
func NewHashMap[K comparable, V any](loc *runtime.Location, hash func(K) uint64, opt ...HashOption) *HashMap[K, V] {
	var o HashOption
	if len(opt) > 0 {
		o = opt[0]
	}
	per := o.SubdomainsPerLocation
	if per <= 0 {
		per = 1
	}
	traits := core.DefaultTraits()
	if o.Traits != nil {
		traits = *o.Traits
	}
	p := loc.NumLocations()
	part := partition.NewHashed[K](p*per, hash)
	mapper := partition.NewBlockedMapper(part.NumSubdomains(), p)
	h := &HashMap[K, V]{part: part, mapper: mapper, ops: hashElemOpsFor[K, V]()}
	if o.KeyMigration {
		h.InitContainer(loc, migratingResolver[K, V]{h: h}, traits)
		// The exception entry for a key is homed on its closed-form hash
		// owner, so unmigrated keys never pay an extra hop (their first
		// remote access per location and epoch additionally triggers one
		// negative cache fill, after which the overlay is silent for them);
		// the home and owner functions read the live partition metadata,
		// following Redistribute's mapper swaps.
		h.dir = core.NewDirectory(loc, core.DirectoryConfig[K]{
			Home:     func(k K) int { return h.mapper.Map(h.part.Find(k).BCID) },
			OwnerLoc: func(b partition.BCID) int { return h.mapper.Map(b) },
			Cache:    true,
		})
	} else {
		h.InitContainer(loc, hashResolver[K]{part: part, mapper: mapper}, traits)
	}
	for _, b := range mapper.LocalBCIDs(loc.ID()) {
		h.LocationManager().Add(bcontainer.NewHashMap[K, V](b))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return h
}

// Insert stores (k, v) asynchronously, overwriting any existing value.
func (h *HashMap[K, V]) Insert(k K, v V) {
	if h.ops != nil {
		h.ops.Set(&h.Container, k, v, runtime.PayloadBytes(v))
		return
	}
	h.InvokeSized(k, core.Write, runtime.PayloadBytes(v), func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) { bc.Insert(k, v) })
}

// InsertSync stores (k, v) and reports whether the key was newly inserted.
func (h *HashMap[K, V]) InsertSync(k K, v V) bool {
	out := h.InvokeRet(k, core.Write, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) any {
		return bc.Insert(k, v)
	})
	return out.(bool)
}

// InsertIfAbsent stores (k, v) only when the key is absent and reports
// whether it inserted.  Synchronous.
func (h *HashMap[K, V]) InsertIfAbsent(k K, v V) bool {
	out := h.InvokeRet(k, core.Write, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) any {
		return bc.InsertIfAbsent(k, v)
	})
	return out.(bool)
}

// findResult carries a value and its presence flag through the untyped
// invoke layer.
type findResult[V any] struct {
	val V
	ok  bool
}

// Find returns the value stored under k (synchronous), with ok reporting
// whether the key exists (the paper's find_val).
func (h *HashMap[K, V]) Find(k K) (V, bool) {
	out := h.InvokeRet(k, core.Read, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) any {
		v, ok := bc.Find(k)
		return findResult[V]{val: v, ok: ok}
	}).(findResult[V])
	return out.val, out.ok
}

// FindSplit starts a split-phase find of k (the paper's split_phase_find).
func (h *HashMap[K, V]) FindSplit(k K) *runtime.FutureOf[V] {
	f := h.InvokeSplit(k, core.Read, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) any {
		v, _ := bc.Find(k)
		return v
	})
	return runtime.NewFutureOf[V](f)
}

// Contains reports whether k is present.  Synchronous.
func (h *HashMap[K, V]) Contains(k K) bool {
	_, ok := h.Find(k)
	return ok
}

// EraseAsync removes k asynchronously (the paper's erase_async).
func (h *HashMap[K, V]) EraseAsync(k K) {
	h.Invoke(k, core.Write, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) { bc.Erase(k) })
}

// Erase removes k and reports whether it was present.  Synchronous.
func (h *HashMap[K, V]) Erase(k K) bool {
	out := h.InvokeRet(k, core.Write, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) any { return bc.Erase(k) })
	return out.(bool)
}

// Apply applies fn to the value stored under k (starting from the zero value
// when absent) and stores the result, asynchronously.  Concurrent Apply
// calls to the same key are atomic, which makes it the natural reduction
// primitive for MapReduce-style aggregation.
func (h *HashMap[K, V]) Apply(k K, fn func(V) V) {
	h.Invoke(k, core.Write, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V]) { bc.Apply(k, fn) })
}

// InsertBulk stores every (keys[k], vals[k]) pair asynchronously,
// overwriting existing values.  The batch is hashed and grouped once and
// shipped as one sized RMI per owning location — the fast path for loading a
// pHashMap from a local slice (MapReduce emit, word count, ...).  Both
// slices are retained until the operations execute; callers hand over
// ownership and must not mutate them before the next Fence.
func (h *HashMap[K, V]) InsertBulk(keys []K, vals []V) {
	if len(keys) != len(vals) {
		panic("passoc: InsertBulk key/value length mismatch")
	}
	if len(keys) == 0 {
		return
	}
	bytesPerOp := runtime.PayloadBytes(keys[0]) + runtime.PayloadBytes(vals[0])
	if h.ops != nil {
		h.ops.SetBulk(&h.Container, keys, vals, bytesPerOp)
		return
	}
	h.InvokeBulk(keys, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V], k int) {
		bc.Insert(keys[k], vals[k])
	})
}

// FindBulk looks up every key and returns the values and presence flags, in
// key order (synchronous; one round trip per owning location).
func (h *HashMap[K, V]) FindBulk(keys []K) ([]V, []bool) {
	vals := make([]V, len(keys))
	oks := make([]bool, len(keys))
	h.InvokeBulkSync(keys, core.Read, 8, func(_ *runtime.Location, bc *bcontainer.HashMap[K, V], k int) {
		vals[k], oks[k] = bc.Find(keys[k])
	})
	return vals, oks
}

// ApplyBulk applies fn to the value stored under every key (starting from
// the zero value when absent) and stores the results, asynchronously — the
// bulk counterpart of Apply, and the natural sink for pre-combined
// per-location reduction maps.  The key slice is retained until the
// operations execute; do not mutate it before the next Fence.
func (h *HashMap[K, V]) ApplyBulk(keys []K, fn func(V) V) {
	if len(keys) == 0 {
		return
	}
	h.InvokeBulk(keys, core.Write, runtime.PayloadBytes(keys[0]), func(_ *runtime.Location, bc *bcontainer.HashMap[K, V], k int) {
		bc.Apply(keys[k], fn)
	})
}

// Size returns the global number of pairs.  Collective.
func (h *HashMap[K, V]) Size() int64 { return h.GlobalSize() }

// LocalRange applies fn to every locally stored pair (unspecified order).
func (h *HashMap[K, V]) LocalRange(fn func(k K, v V) bool) {
	h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) { bc.Range(fn) })
}

// Clear removes all local pairs.  Call collectively (typically between
// fences) to clear the whole container.
func (h *HashMap[K, V]) Clear() {
	h.ForEachLocalBC(core.Write, func(bc *bcontainer.HashMap[K, V]) { bc.Clear() })
}

// MemorySize returns the container-wide footprint.  Collective.
func (h *HashMap[K, V]) MemorySize() core.MemoryUsage {
	return h.GlobalMemory(partition.MemoryBytes(h.mapper) + 32)
}
