package passoc

import (
	"fmt"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestHashMapInsertFindErase(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		h := NewHashMap[string, int](loc, partition.StringHash)
		loc.Barrier()
		// Every location inserts a disjoint set of keys asynchronously.
		for i := 0; i < 50; i++ {
			h.Insert(fmt.Sprintf("k-%d-%d", loc.ID(), i), i)
		}
		loc.Fence()
		if got := h.Size(); got != int64(50*loc.NumLocations()) {
			t.Errorf("size = %d", got)
		}
		// Every location can find every key.
		for l := 0; l < loc.NumLocations(); l++ {
			for i := 0; i < 50; i += 10 {
				k := fmt.Sprintf("k-%d-%d", l, i)
				if v, ok := h.Find(k); !ok || v != i {
					t.Errorf("Find(%q) = %d,%v", k, v, ok)
				}
				if !h.Contains(k) {
					t.Errorf("Contains(%q) = false", k)
				}
			}
		}
		if _, ok := h.Find("missing"); ok {
			t.Error("found a key that was never inserted")
		}
		if h.Contains("missing") {
			t.Error("contains a key that was never inserted")
		}
		// Split-phase find.
		if f := h.FindSplit(fmt.Sprintf("k-%d-%d", loc.ID(), 7)); f.Get() != 7 {
			t.Errorf("split find = %d", f.Get())
		}
		loc.Fence()
		// Erase this location's keys.
		for i := 0; i < 50; i++ {
			h.EraseAsync(fmt.Sprintf("k-%d-%d", loc.ID(), i))
		}
		loc.Fence()
		if got := h.Size(); got != 0 {
			t.Errorf("size after erase = %d", got)
		}
		loc.Fence()
	})
}

func TestHashMapSyncVariants(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		h := NewHashMap[int64, string](loc, partition.Int64Hash)
		loc.Barrier()
		if loc.ID() == 0 {
			if !h.InsertSync(1, "a") {
				t.Error("first insert should be new")
			}
			if h.InsertSync(1, "b") {
				t.Error("second insert should overwrite, not be new")
			}
			if v, _ := h.Find(1); v != "b" {
				t.Error("overwrite lost")
			}
			if !h.InsertIfAbsent(2, "c") || h.InsertIfAbsent(2, "d") {
				t.Error("insertIfAbsent semantics wrong")
			}
			if v, _ := h.Find(2); v != "c" {
				t.Error("insertIfAbsent overwrote")
			}
			if !h.Erase(1) || h.Erase(1) {
				t.Error("erase semantics wrong")
			}
		}
		loc.Fence()
	})
}

func TestHashMapApplyIsAtomicReduction(t *testing.T) {
	// All locations increment the same counters concurrently; no update
	// may be lost (the MapReduce aggregation pattern).
	run(4, func(loc *runtime.Location) {
		h := NewHashMap[string, int64](loc, partition.StringHash)
		loc.Barrier()
		for i := 0; i < 300; i++ {
			h.Apply(fmt.Sprintf("word%d", i%7), func(v int64) int64 { return v + 1 })
		}
		loc.Fence()
		var localTotal int64
		h.LocalRange(func(_ string, v int64) bool { localTotal += v; return true })
		total := runtime.AllReduceSum(loc, localTotal)
		want := int64(300 * loc.NumLocations())
		if total != want {
			t.Errorf("total counted = %d, want %d", total, want)
		}
		if got := h.Size(); got != 7 {
			t.Errorf("distinct keys = %d, want 7", got)
		}
		loc.Fence()
	})
}

func TestHashMapMultipleBucketsPerLocation(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		h := NewHashMap[int64, int](loc, partition.Int64Hash, HashOption{SubdomainsPerLocation: 4})
		if got := h.LocationManager().NumBContainers(); got != 4 {
			t.Errorf("local buckets = %d, want 4", got)
		}
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 100; i++ {
				h.Insert(i, int(i))
			}
		}
		loc.Fence()
		for i := int64(0); i < 100; i += 11 {
			if v, ok := h.Find(i); !ok || v != int(i) {
				t.Errorf("Find(%d) = %d,%v", i, v, ok)
			}
		}
		if h.MemorySize().Data <= 0 {
			t.Error("memory accounting wrong")
		}
		h.Clear()
		loc.Fence()
		if h.Size() != 0 {
			t.Error("clear failed")
		}
		loc.Fence()
	})
}

func TestSortedMapRangePartitionAndOrder(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		splitters := UniformInt64Splitters(0, 1000, loc.NumLocations())
		m := NewMap[int64, string](loc, func(a, b int64) bool { return a < b }, splitters)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 1000; i += 7 {
				m.Insert(i, fmt.Sprint(i))
			}
		}
		loc.Fence()
		if got := m.Size(); got != 143 {
			t.Errorf("size = %d", got)
		}
		// Finds work from every location.
		for i := int64(0); i < 1000; i += 91 {
			want := i - i%7
			if v, ok := m.Find(want); !ok || v != fmt.Sprint(want) {
				t.Errorf("Find(%d) = %q,%v", want, v, ok)
			}
		}
		// Local keys are sorted and fall in this location's key range.
		keys := m.LocalKeys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Errorf("local keys not sorted: %v", keys[:i+1])
				break
			}
		}
		// Value-based partition: location 0 holds the smallest keys,
		// the last location the largest.
		if loc.ID() == 0 && len(keys) > 0 && keys[0] != 0 {
			t.Errorf("location 0 should hold key 0, first local key = %d", keys[0])
		}
		loc.Fence()
		// Sync insert / erase / split find.
		if loc.ID() == 1 {
			if !m.InsertSync(1001, "big") {
				t.Error("insertSync new wrong")
			}
			if v, ok := m.Find(1001); !ok || v != "big" {
				t.Error("find after insertSync wrong")
			}
			if f := m.FindSplit(1001); f.Get() != "big" {
				t.Error("split find wrong")
			}
			if !m.Erase(1001) || m.Erase(1001) {
				t.Error("erase wrong")
			}
			if m.Contains(1001) {
				t.Error("contains after erase wrong")
			}
			m.Apply(500, func(s string) string { return s + "!" })
		}
		loc.Fence()
		if v, _ := m.Find(500); v[len(v)-1] != '!' {
			t.Errorf("apply wrong: %q", v)
		}
		if m.MemorySize().Total() <= 0 {
			t.Error("memory wrong")
		}
		loc.Fence()
	})
}

func TestSortedMapNoSplitters(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		m := NewMap[string, int](loc, func(a, b string) bool { return a < b }, nil)
		loc.Barrier()
		if loc.ID() == 2 {
			m.Insert("b", 2)
			m.Insert("a", 1)
			m.EraseAsync("missing")
		}
		loc.Fence()
		if m.Size() != 2 {
			t.Errorf("size = %d", m.Size())
		}
		if v, ok := m.Find("a"); !ok || v != 1 {
			t.Error("find wrong")
		}
		loc.Fence()
	})
}

func TestUniformInt64Splitters(t *testing.T) {
	s := UniformInt64Splitters(0, 100, 4)
	if len(s) != 3 || s[0] != 25 || s[1] != 50 || s[2] != 75 {
		t.Fatalf("splitters = %v", s)
	}
	if UniformInt64Splitters(0, 10, 1) != nil {
		t.Fatal("single range should have no splitters")
	}
}

func TestSetSemantics(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		s := NewSet[string](loc, partition.StringHash)
		loc.Barrier()
		// Every location inserts an overlapping set of members.
		for i := 0; i < 30; i++ {
			s.Insert(fmt.Sprintf("m%d", i))
		}
		loc.Fence()
		if got := s.Size(); got != 30 {
			t.Errorf("size = %d, want 30 (duplicates collapse)", got)
		}
		if !s.Contains("m7") || s.Contains("nope") {
			t.Error("membership wrong")
		}
		if loc.ID() == 0 {
			if s.InsertSync("m7") {
				t.Error("inserting an existing member should report false")
			}
			if !s.InsertSync("new") {
				t.Error("inserting a new member should report true")
			}
			if !s.Erase("new") || s.Erase("new") {
				t.Error("erase wrong")
			}
			s.EraseAsync("m0")
		}
		s.Fence()
		if s.Contains("m0") {
			t.Error("erased member still present")
		}
		var localCount int64
		s.LocalRange(func(string) bool { localCount++; return true })
		if total := runtime.AllReduceSum(loc, localCount); total != 29 {
			t.Errorf("members counted = %d, want 29", total)
		}
		if s.MemorySize().Total() < 0 {
			t.Error("memory wrong")
		}
		loc.Fence()
	})
}

func TestMultiMapSemantics(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		mm := NewMultiMap[string, int](loc, partition.StringHash)
		loc.Barrier()
		// All locations append values under shared keys.
		for i := 0; i < 10; i++ {
			mm.Insert("shared", loc.ID()*100+i)
		}
		mm.Insert(fmt.Sprintf("own-%d", loc.ID()), loc.ID())
		mm.Fence()
		if got := mm.Count("shared"); got != 10*loc.NumLocations() {
			t.Errorf("Count(shared) = %d", got)
		}
		if got := mm.NumKeys(); got != int64(1+loc.NumLocations()) {
			t.Errorf("distinct keys = %d", got)
		}
		vs := mm.Find(fmt.Sprintf("own-%d", loc.ID()))
		if len(vs) != 1 || vs[0] != loc.ID() {
			t.Errorf("own values = %v", vs)
		}
		if len(mm.Find("missing")) != 0 {
			t.Error("missing key should have no values")
		}
		loc.Fence()
		if loc.ID() == 1 {
			mm.EraseKey("shared")
		}
		mm.Fence()
		if got := mm.Count("shared"); got != 0 {
			t.Errorf("Count after EraseKey = %d", got)
		}
		count := 0
		mm.LocalRange(func(string, []int) bool { count++; return true })
		loc.Fence()
	})
}
