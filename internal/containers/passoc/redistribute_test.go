package passoc

import (
	"fmt"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestHashMapRedistributeEmpty(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		h := NewHashMap[string, int](loc, partition.StringHash)
		h.Rebalance()
		if got := h.Size(); got != 0 {
			t.Errorf("size = %d, want 0", got)
		}
		loc.Fence()
	})
}

func TestHashMapRedistributeSingleLocation(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		h := NewHashMap[string, int](loc, partition.StringHash)
		for i := 0; i < 40; i++ {
			h.Insert(fmt.Sprintf("k-%d", i), i)
		}
		loc.Fence()
		// Repartition onto four times as many buckets.
		newPart := partition.NewHashed[string](4, partition.StringHash)
		h.Redistribute(newPart, partition.NewBlockedMapper(4, 1))
		if got := h.Size(); got != 40 {
			t.Errorf("size = %d, want 40", got)
		}
		for i := 0; i < 40; i++ {
			if v, ok := h.Find(fmt.Sprintf("k-%d", i)); !ok || v != i {
				t.Errorf("k-%d = (%d,%v), want (%d,true)", i, v, ok, i)
				return
			}
		}
		loc.Fence()
	})
}

func TestHashMapRedistributeIdentityNoTraffic(t *testing.T) {
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		h := NewHashMap[int64, int64](loc, partition.Int64Hash)
		for k := int64(loc.ID()); k < 100; k += int64(loc.NumLocations()) {
			h.Insert(k, k)
		}
		loc.Fence()
		// Same partition, same mapper: every pair stays put and the
		// migration must not touch the interconnect.
		before := m.Stats().RMIsSent
		h.Redistribute(h.Partition(), h.Mapper())
		after := m.Stats().RMIsSent
		if after != before {
			t.Errorf("identity repartition sent %d RMIs, want 0", after-before)
		}
		if got := h.Size(); got != 100 {
			t.Errorf("size = %d, want 100", got)
		}
		loc.Fence()
	})
}

// TestMapSkewRebalanceRoundTrip: the sorted family was left out of PR 1's
// redistribution wiring; this is its parity test — skew every key range onto
// location 0, verify, rebalance with the advisor, verify again.
func TestMapSkewRebalanceRoundTrip(t *testing.T) {
	const n = int64(200)
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		less := func(a, b int64) bool { return a < b }
		m := NewMap[int64, int64](loc, less, UniformInt64Splitters(0, n, 4*p))
		for k := int64(loc.ID()); k < n; k += int64(p) {
			m.Insert(k, k*13)
		}
		loc.Fence()
		// Skew: map every key range to location 0.
		m.Redistribute(m.Partition(), partition.NewArbitraryMapper(make([]int, m.Partition().NumSubdomains()), p))
		if f := partition.CollectLoad(loc, m.LocalSize()).Imbalance(); f != float64(p) {
			t.Errorf("all-on-one imbalance = %.3f, want %d", f, p)
		}
		for k := int64(0); k < n; k++ {
			if v, ok := m.Find(k); !ok || v != k*13 {
				t.Errorf("after skew: key %d = (%d,%v)", k, v, ok)
				return
			}
		}
		loc.Fence()
		m.Rebalance()
		if f := partition.CollectLoad(loc, m.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := m.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		for k := int64(0); k < n; k++ {
			if v, ok := m.Find(k); !ok || v != k*13 {
				t.Errorf("after rebalance: key %d = (%d,%v)", k, v, ok)
				return
			}
		}
		// Local traversal still visits keys in ascending order: ranges are
		// enumerated in BCID (= key-range) order and each staging range was
		// rebuilt sorted.
		keys := m.LocalKeys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Errorf("local keys out of order: %d before %d", keys[i-1], keys[i])
				break
			}
		}
		// Element methods still work against the new mapping.
		m.Insert(n+1, 1)
		loc.Fence()
		if got := m.Size(); got != n+1 {
			t.Errorf("size after insert = %d, want %d", got, n+1)
		}
		loc.Fence()
	})
}

// TestMapRedistributeNewSplitters repartitions a pMap onto finer splitters
// (more key ranges) and verifies every pair survives the move.
func TestMapRedistributeNewSplitters(t *testing.T) {
	const n = int64(120)
	run(2, func(loc *runtime.Location) {
		less := func(a, b int64) bool { return a < b }
		m := NewMap[int64, int64](loc, less, UniformInt64Splitters(0, n, 2))
		if loc.ID() == 0 {
			for k := int64(0); k < n; k++ {
				m.Insert(k, k+7)
			}
		}
		loc.Fence()
		newPart := partition.NewRanged(UniformInt64Splitters(0, n, 8), less)
		m.Redistribute(newPart, partition.NewBlockedMapper(newPart.NumSubdomains(), loc.NumLocations()))
		if got := m.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		for k := int64(0); k < n; k++ {
			if v, ok := m.Find(k); !ok || v != k+7 {
				t.Errorf("key %d = (%d,%v)", k, v, ok)
				return
			}
		}
		loc.Fence()
	})
}

// TestSetSkewRebalanceRoundTrip: pSet parity with the shared redistribution
// engine through its hashed underlay.
func TestSetSkewRebalanceRoundTrip(t *testing.T) {
	const n = int64(160)
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		s := NewSet[int64](loc, partition.Int64Hash, HashOption{SubdomainsPerLocation: 4})
		for k := int64(loc.ID()); k < n; k += int64(p) {
			s.Insert(k)
		}
		loc.Fence()
		s.Redistribute(s.Partition(), partition.NewArbitraryMapper(make([]int, s.Partition().NumSubdomains()), p))
		if f := partition.CollectLoad(loc, s.m.LocalSize()).Imbalance(); f != float64(p) {
			t.Errorf("all-on-one imbalance = %.3f, want %d", f, p)
		}
		for k := int64(0); k < n; k++ {
			if !s.Contains(k) {
				t.Errorf("after skew: member %d lost", k)
				return
			}
		}
		loc.Fence()
		s.Rebalance()
		if f := partition.CollectLoad(loc, s.m.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := s.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		for k := int64(0); k < n; k++ {
			if !s.Contains(k) {
				t.Errorf("after rebalance: member %d lost", k)
				return
			}
		}
		loc.Fence()
	})
}

func TestHashMapSkewRebalanceRoundTrip(t *testing.T) {
	const n = 200
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		h := NewHashMap[int64, int64](loc, partition.Int64Hash, HashOption{SubdomainsPerLocation: 4})
		for k := int64(loc.ID()); k < n; k += int64(p) {
			h.Insert(k, k*11)
		}
		loc.Fence()
		// Skew: map every bucket to location 0.
		h.Redistribute(h.Partition(), partition.NewArbitraryMapper(make([]int, h.Partition().NumSubdomains()), p))
		if f := partition.CollectLoad(loc, h.LocalSize()).Imbalance(); f != float64(p) {
			t.Errorf("all-on-one imbalance = %.3f, want %d", f, p)
		}
		for k := int64(0); k < n; k++ {
			if v, ok := h.Find(k); !ok || v != k*11 {
				t.Errorf("after skew: key %d = (%d,%v)", k, v, ok)
				return
			}
		}
		loc.Fence()
		h.Rebalance()
		if f := partition.CollectLoad(loc, h.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := h.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		for k := int64(0); k < n; k++ {
			if v, ok := h.Find(k); !ok || v != k*11 {
				t.Errorf("after rebalance: key %d = (%d,%v)", k, v, ok)
				return
			}
		}
		// Element methods still work against the new mapping.
		h.Insert(int64(n+1), 1)
		loc.Fence()
		if got := h.Size(); got != n+1 {
			t.Errorf("size after insert = %d, want %d", got, n+1)
		}
		loc.Fence()
	})
}
