package passoc

import (
	"unsafe"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
)

// Key migration for pHashMap: an optional overlay on the shared distributed
// directory (core.Directory) that lets individual keys live away from their
// closed-form hash bucket — e.g. hot keys pulled next to the location that
// updates them — while every other key keeps the forwarding-free hashed
// resolution.
//
// The overlay records only exceptions.  A key's directory entry is homed on
// its closed-form hash owner, so resolving an unmigrated key costs exactly
// what it always did: the hash owner checks its (usually empty) exception
// slice with one map lookup and finds the key in its bucket.  A migrated
// key forwards from the hash owner to its actual bucket; repeat accesses
// from the same location skip that hop through the per-location resolution
// cache.

// migratingResolver wraps the hashed resolution with the exception overlay:
// closed form first, then the directory's authoritative slice on the hash
// owner, then the resolution cache elsewhere.
type migratingResolver[K comparable, V any] struct {
	h *HashMap[K, V]
}

func (r migratingResolver[K, V]) Find(k K) partition.Info {
	h := r.h
	info := h.part.Find(k)
	home := h.mapper.Map(info.BCID)
	self := h.Location().ID()
	if home == self {
		if owner, ok := h.dir.LocalEntry(k); ok {
			return partition.Found(owner) // exception: key migrated away
		}
		return info // ordinary local bucket
	}
	// The key may have been migrated TO this location.  Migrated keys are
	// always placed in a location's first bucket (firstLocalBucket), so one
	// map probe under the data read bracket settles it — without this check
	// a request for a key hosted here would forward back to the hash owner
	// and ping-pong.
	b := h.firstLocalBucket(self)
	if bc, ok := h.LocationManager().Get(b); ok {
		h.ThreadSafety().DataAccessPre(b, core.Read)
		_, hosted := bc.Find(k)
		h.ThreadSafety().DataAccessPost(b, core.Read)
		if hosted {
			return partition.Found(b)
		}
	}
	if cached, ok := h.dir.CachedResolve(k, home); ok {
		return cached
	}
	// Unknown here: ship to the hash owner, which re-resolves — one hop for
	// unmigrated keys (it owns the bucket), a forward for migrated ones.
	return partition.Forward(home)
}

func (r migratingResolver[K, V]) OwnerOf(b partition.BCID) int { return r.h.mapper.Map(b) }

// migratedPair is the element record shipped during key migration: a pair
// plus the bucket it currently lives in (unmigrated pairs stay there).
type migratedPair[K comparable, V any] struct {
	key  K
	val  V
	bcid partition.BCID
}

// requireKeyMigration panics when the overlay was not enabled.
func (h *HashMap[K, V]) requireKeyMigration(op string) {
	if h.dir == nil {
		panic("passoc: " + op + " requires key migration (HashOption.KeyMigration)")
	}
}

// firstLocalBucket returns the bucket receiving keys migrated to dest.
func (h *HashMap[K, V]) firstLocalBucket(dest int) partition.BCID {
	ids := h.mapper.LocalBCIDs(dest)
	if len(ids) == 0 {
		panic("passoc: destination location owns no hash bucket")
	}
	return ids[0]
}

// MigrateKeys moves the named keys into a bucket owned by the given
// destination location, recording them as exceptions in the distributed
// directory; their values stay reachable under the same keys from every
// location, and repeat accesses from one location resolve through its
// cache.  Collective — every location passes the keys it wants moved (the
// union is applied) and the container must be quiescent.  Migrating a key
// to its own hash owner effectively undoes an earlier migration.
func (h *HashMap[K, V]) MigrateKeys(keys []K, dest int) {
	h.requireKeyMigration("MigrateKeys")
	loc := h.Location()
	moves := make(map[K]int, len(keys))
	for _, k := range keys {
		moves[k] = dest
	}
	var probe migratedPair[K, V]
	elemBytes := int(unsafe.Sizeof(probe))
	core.MigrateElements(loc, h.dir, moves, core.DirectoryMigration[migratedPair[K, V], K, *bcontainer.HashMap[K, V]]{
		NewLocal: h.mapper.LocalBCIDs(loc.ID()),
		DestBC:   h.firstLocalBucket,
		Keep: func(e migratedPair[K, V]) (partition.BCID, int) {
			return e.bcid, h.mapper.Map(e.bcid)
		},
		Alloc: func(b partition.BCID) *bcontainer.HashMap[K, V] {
			return bcontainer.NewHashMap[K, V](b)
		},
		Enumerate: func(emit func(migratedPair[K, V])) {
			h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) {
				b := bc.BCID()
				bc.Range(func(k K, v V) bool {
					emit(migratedPair[K, V]{key: k, val: v, bcid: b})
					return true
				})
			})
		},
		GID:   func(e migratedPair[K, V]) K { return e.key },
		Place: func(bc *bcontainer.HashMap[K, V], e migratedPair[K, V]) { bc.Insert(e.key, e.val) },
		Bytes: func(migratedPair[K, V]) int { return elemBytes },
		Install: func(lm *core.LocationManager[*bcontainer.HashMap[K, V]]) {
			h.ReplaceLocationManager(lm)
		},
	})
}

// KeyDirectory exposes the exception directory of the key-migration overlay
// (nil when the overlay is disabled); tests and experiments use it to
// inspect cache behaviour.
func (h *HashMap[K, V]) KeyDirectory() *core.Directory[K] { return h.dir }
