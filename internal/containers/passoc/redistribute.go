package passoc

import (
	"unsafe"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
)

// kvPair is the element record shipped between locations when a pHashMap
// redistributes.
type kvPair[K comparable, V any] struct {
	key K
	val V
}

// Redistribute reorganises the pHashMap's pairs according to a new hashed
// partition and mapper, through the shared redistribution engine in package
// core.  The new partition may change the number of hash buckets or the
// hash function; the mapper may place buckets on arbitrary locations.
// Every pair is routed by the new closed form, so keys moved by the
// key-migration overlay snap back to their hash bucket and the exception
// directory is reset (entries cleared, caches invalidated).  Collective;
// every location passes identical arguments.
func (h *HashMap[K, V]) Redistribute(newPart *partition.Hashed[K], newMapper partition.Mapper) {
	loc := h.Location()
	var probe kvPair[K, V]
	elemBytes := int(unsafe.Sizeof(probe))
	core.RunMigration(loc, core.MigrationSpec[kvPair[K, V], *bcontainer.HashMap[K, V]]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.HashMap[K, V] {
			return bcontainer.NewHashMap[K, V](b)
		},
		Enumerate: func(emit func(kvPair[K, V])) {
			h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) {
				bc.Range(func(k K, v V) bool {
					emit(kvPair[K, V]{key: k, val: v})
					return true
				})
			})
		},
		Route: func(e kvPair[K, V]) (partition.BCID, int) {
			info := newPart.Find(e.key)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.HashMap[K, V], e kvPair[K, V]) { bc.Insert(e.key, e.val) },
		Bytes: func(kvPair[K, V]) int { return elemBytes },
		Install: func(lm *core.LocationManager[*bcontainer.HashMap[K, V]]) {
			h.ReplaceLocationManager(lm)
			h.part, h.mapper = newPart, newMapper
			if h.dir != nil {
				// The overlay resolver reads the live part/mapper fields;
				// dropping the exception entries and caches here keeps
				// every slice consistent before the final barrier releases
				// element traffic.
				h.dir.Reset()
			} else {
				h.SetResolver(hashResolver[K]{part: newPart, mapper: newMapper})
			}
		},
	})
}

// Rebalance evens out the per-location pair loads by remapping the existing
// hash buckets with the load-balance advisor's greedy proposal (the bucket
// set and hash function stay fixed, so only ownership moves).  Collective.
func (h *HashMap[K, V]) Rebalance() {
	loc := h.Location()
	local := make([]int64, h.part.NumSubdomains())
	h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) {
		local[int(bc.BCID())] = bc.Size()
	})
	sizes := partition.CollectSubSizes(loc, local)
	h.Redistribute(h.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}

// Partition returns the hashed partition in use.
func (h *HashMap[K, V]) Partition() *partition.Hashed[K] { return h.part }

// Mapper returns the bucket → location mapper in use.
func (h *HashMap[K, V]) Mapper() partition.Mapper { return h.mapper }
