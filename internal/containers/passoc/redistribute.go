package passoc

import (
	"unsafe"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
)

// kvPair is the element record shipped between locations when a pHashMap
// redistributes.
type kvPair[K comparable, V any] struct {
	key K
	val V
}

// Redistribute reorganises the pHashMap's pairs according to a new hashed
// partition and mapper, through the shared redistribution engine in package
// core.  The new partition may change the number of hash buckets or the
// hash function; the mapper may place buckets on arbitrary locations.
// Every pair is routed by the new closed form, so keys moved by the
// key-migration overlay snap back to their hash bucket and the exception
// directory is reset (entries cleared, caches invalidated).  Collective;
// every location passes identical arguments.
func (h *HashMap[K, V]) Redistribute(newPart *partition.Hashed[K], newMapper partition.Mapper) {
	loc := h.Location()
	var probe kvPair[K, V]
	elemBytes := int(unsafe.Sizeof(probe))
	core.RunMigration(loc, core.MigrationSpec[kvPair[K, V], *bcontainer.HashMap[K, V]]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.HashMap[K, V] {
			return bcontainer.NewHashMap[K, V](b)
		},
		Enumerate: func(emit func(kvPair[K, V])) {
			h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) {
				bc.Range(func(k K, v V) bool {
					emit(kvPair[K, V]{key: k, val: v})
					return true
				})
			})
		},
		Route: func(e kvPair[K, V]) (partition.BCID, int) {
			info := newPart.Find(e.key)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.HashMap[K, V], e kvPair[K, V]) { bc.Insert(e.key, e.val) },
		Bytes: func(kvPair[K, V]) int { return elemBytes },
		Ops:   kvMigOpsFor[K, V](),
		Install: func(lm *core.LocationManager[*bcontainer.HashMap[K, V]]) {
			h.ReplaceLocationManager(lm)
			h.part, h.mapper = newPart, newMapper
			if h.dir != nil {
				// The overlay resolver reads the live part/mapper fields;
				// dropping the exception entries and caches here keeps
				// every slice consistent before the final barrier releases
				// element traffic.
				h.dir.Reset()
			} else {
				h.SetResolver(hashResolver[K]{part: newPart, mapper: newMapper})
			}
		},
	})
}

// Rebalance evens out the per-location pair loads by remapping the existing
// hash buckets with the load-balance advisor's greedy proposal (the bucket
// set and hash function stay fixed, so only ownership moves).  Collective.
func (h *HashMap[K, V]) Rebalance() {
	loc := h.Location()
	local := make([]int64, h.part.NumSubdomains())
	h.ForEachLocalBC(core.Read, func(bc *bcontainer.HashMap[K, V]) {
		local[int(bc.BCID())] = bc.Size()
	})
	sizes := partition.CollectSubSizes(loc, local)
	h.Redistribute(h.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}

// Partition returns the hashed partition in use.
func (h *HashMap[K, V]) Partition() *partition.Hashed[K] { return h.part }

// Mapper returns the bucket → location mapper in use.
func (h *HashMap[K, V]) Mapper() partition.Mapper { return h.mapper }

// Redistribute reorganises the pMap's pairs according to a new splitter
// (value-range) partition and mapper through the shared redistribution
// engine: the splitters may move (repartitioning the key ranges) and the
// mapper may place ranges on arbitrary locations.  PR 1 wired only the
// hashed family; the sorted family takes exactly the same three-phase path,
// it just allocates sorted staging ranges and routes by splitter search.
// Collective; every location passes identical arguments.
func (m *Map[K, V]) Redistribute(newPart *partition.Ranged[K], newMapper partition.Mapper) {
	loc := m.Location()
	var probe mapPair[K, V]
	elemBytes := int(unsafe.Sizeof(probe))
	core.RunMigration(loc, core.MigrationSpec[mapPair[K, V], *bcontainer.SortedMap[K, V]]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.SortedMap[K, V] {
			return bcontainer.NewSortedMap[K, V](b, m.less)
		},
		Enumerate: func(emit func(mapPair[K, V])) {
			m.ForEachLocalBC(core.Read, func(bc *bcontainer.SortedMap[K, V]) {
				bc.Range(func(k K, v V) bool {
					emit(mapPair[K, V]{key: k, val: v})
					return true
				})
			})
		},
		Route: func(e mapPair[K, V]) (partition.BCID, int) {
			info := newPart.Find(e.key)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.SortedMap[K, V], e mapPair[K, V]) { bc.Insert(e.key, e.val) },
		Bytes: func(mapPair[K, V]) int { return elemBytes },
		Install: func(lm *core.LocationManager[*bcontainer.SortedMap[K, V]]) {
			m.ReplaceLocationManager(lm)
			m.SetResolver(rangeResolver[K]{part: newPart, mapper: newMapper})
			m.part, m.mapper = newPart, newMapper
		},
	})
}

// mapPair is the element record shipped by pMap redistributions (keys are
// only required to be orderable, not comparable, so it cannot share kvPair).
type mapPair[K any, V any] struct {
	key K
	val V
}

// Rebalance evens out the per-location pair loads by remapping the existing
// key ranges with the load-balance advisor's greedy proposal (the splitters
// stay fixed, only range ownership moves), matching the hashed family's
// Rebalance.  Collective.
func (m *Map[K, V]) Rebalance() {
	loc := m.Location()
	local := make([]int64, m.part.NumSubdomains())
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SortedMap[K, V]) {
		local[int(bc.BCID())] = bc.Size()
	})
	sizes := partition.CollectSubSizes(loc, local)
	m.Redistribute(m.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}

// Partition returns the splitter partition in use.
func (m *Map[K, V]) Partition() *partition.Ranged[K] { return m.part }

// Mapper returns the range → location mapper in use.
func (m *Map[K, V]) Mapper() partition.Mapper { return m.mapper }

// Redistribute reorganises the pSet's members according to a new hashed
// partition and mapper (the set is a key-is-value layer over the hashed
// machinery, so it redistributes through it).  Collective.
func (s *Set[K]) Redistribute(newPart *partition.Hashed[K], newMapper partition.Mapper) {
	s.m.Redistribute(newPart, newMapper)
}

// Rebalance evens out the per-location member loads by remapping the hash
// buckets with the load-balance advisor.  Collective.
func (s *Set[K]) Rebalance() { s.m.Rebalance() }

// Partition returns the hashed partition in use.
func (s *Set[K]) Partition() *partition.Hashed[K] { return s.m.Partition() }

// Mapper returns the bucket → location mapper in use.
func (s *Set[K]) Mapper() partition.Mapper { return s.m.Mapper() }

// Redistribute reorganises the pMultiMap's (key, values) pairs according to
// a new hashed partition and mapper.  Collective.
func (mm *MultiMap[K, V]) Redistribute(newPart *partition.Hashed[K], newMapper partition.Mapper) {
	mm.m.Redistribute(newPart, newMapper)
}

// Rebalance evens out the per-location key loads by remapping the hash
// buckets with the load-balance advisor.  Collective.
func (mm *MultiMap[K, V]) Rebalance() { mm.m.Rebalance() }
