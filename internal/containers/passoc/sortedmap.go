package passoc

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// rangeResolver routes keys through a splitter-based (value) partition, the
// distribution of sorted associative pContainers (Fig. 58).
type rangeResolver[K any] struct {
	part   *partition.Ranged[K]
	mapper partition.Mapper
}

func (r rangeResolver[K]) Find(k K) partition.Info      { return r.part.Find(k) }
func (r rangeResolver[K]) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// Map is the per-location representative of a pMap: an ordered
// pair-associative pContainer whose keys are distributed by value ranges, so
// a parallel ordered traversal visits location segments in key order.
type Map[K any, V any] struct {
	core.Container[K, *bcontainer.SortedMap[K, V]]

	less   func(a, b K) bool
	part   *partition.Ranged[K]
	mapper partition.Mapper
}

// MapOption customises pMap construction.
type MapOption struct {
	// Traits overrides the default container traits.
	Traits *core.Traits
}

// NewMap constructs an empty pMap ordered by less and distributed by the
// given splitter keys (len(splitters)+1 key ranges, assigned blockwise to
// locations).  With no splitters all keys live in a single range on location
// 0.  Collective.
func NewMap[K any, V any](loc *runtime.Location, less func(a, b K) bool, splitters []K, opt ...MapOption) *Map[K, V] {
	var o MapOption
	if len(opt) > 0 {
		o = opt[0]
	}
	traits := core.DefaultTraits()
	if o.Traits != nil {
		traits = *o.Traits
	}
	part := partition.NewRanged(splitters, less)
	mapper := partition.NewBlockedMapper(part.NumSubdomains(), loc.NumLocations())
	m := &Map[K, V]{less: less, part: part, mapper: mapper}
	m.InitContainer(loc, rangeResolver[K]{part: part, mapper: mapper}, traits)
	for _, b := range mapper.LocalBCIDs(loc.ID()) {
		m.LocationManager().Add(bcontainer.NewSortedMap[K, V](b, less))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return m
}

// UniformInt64Splitters builds numRanges-1 equally spaced splitters covering
// [lo, hi), a convenient default for integer-keyed pMaps.
func UniformInt64Splitters(lo, hi int64, numRanges int) []int64 {
	if numRanges <= 1 {
		return nil
	}
	out := make([]int64, 0, numRanges-1)
	span := hi - lo
	for i := 1; i < numRanges; i++ {
		out = append(out, lo+span*int64(i)/int64(numRanges))
	}
	return out
}

// Insert stores (k, v) asynchronously, overwriting any existing value.
func (m *Map[K, V]) Insert(k K, v V) {
	m.Invoke(k, core.Write, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) { bc.Insert(k, v) })
}

// InsertSync stores (k, v) and reports whether the key was newly inserted.
func (m *Map[K, V]) InsertSync(k K, v V) bool {
	out := m.InvokeRet(k, core.Write, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) any {
		return bc.Insert(k, v)
	})
	return out.(bool)
}

// Find returns the value stored under k (synchronous).
func (m *Map[K, V]) Find(k K) (V, bool) {
	out := m.InvokeRet(k, core.Read, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) any {
		v, ok := bc.Find(k)
		return findResult[V]{val: v, ok: ok}
	}).(findResult[V])
	return out.val, out.ok
}

// FindSplit starts a split-phase find of k.
func (m *Map[K, V]) FindSplit(k K) *runtime.FutureOf[V] {
	f := m.InvokeSplit(k, core.Read, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) any {
		v, _ := bc.Find(k)
		return v
	})
	return runtime.NewFutureOf[V](f)
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	_, ok := m.Find(k)
	return ok
}

// EraseAsync removes k asynchronously.
func (m *Map[K, V]) EraseAsync(k K) {
	m.Invoke(k, core.Write, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) { bc.Erase(k) })
}

// Erase removes k and reports whether it was present.  Synchronous.
func (m *Map[K, V]) Erase(k K) bool {
	out := m.InvokeRet(k, core.Write, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) any { return bc.Erase(k) })
	return out.(bool)
}

// Apply applies fn to the value stored under k (starting from the zero value
// when absent), asynchronously.
func (m *Map[K, V]) Apply(k K, fn func(V) V) {
	m.Invoke(k, core.Write, func(_ *runtime.Location, bc *bcontainer.SortedMap[K, V]) { bc.Apply(k, fn) })
}

// Size returns the global number of pairs.  Collective.
func (m *Map[K, V]) Size() int64 { return m.GlobalSize() }

// LocalRange applies fn to every locally stored pair in key order within
// each local range.
func (m *Map[K, V]) LocalRange(fn func(k K, v V) bool) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SortedMap[K, V]) { bc.Range(fn) })
}

// LocalKeys returns the locally stored keys in order.
func (m *Map[K, V]) LocalKeys() []K {
	var out []K
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SortedMap[K, V]) { out = append(out, bc.Keys()...) })
	return out
}

// MemorySize returns the container-wide footprint.  Collective.
func (m *Map[K, V]) MemorySize() core.MemoryUsage {
	return m.GlobalMemory(partition.MemoryBytes(m.mapper) + int64(m.part.NumSubdomains())*16)
}
