package passoc

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// CompressedSet is a pSet over a dense int64 key universe [0, n) stored
// through the adaptive representation seam (bcontainer.CompressedSet): an
// indexed pContainer whose sub-domains are key ranges, with per-chunk
// array↔bitmap storage so resident bytes scale with the members rather than
// the universe.  It is the compressed counterpart of a pArray of membership
// flags — same key universe, same blocked distribution, a fraction of the
// footprint at low density — and the contrast the `sparse` bench experiment
// measures.
//
// All element methods route through registered operations (the key and the
// membership flag are the whole payload), so the container works across
// process boundaries.
type CompressedSet struct {
	core.Container[int64, *bcontainer.CompressedSet]

	dom    domain.Range1D
	part   partition.Indexed
	mapper partition.Mapper
}

// csetOps is the registered element-operation set: an asynchronous
// membership write (true inserts, false erases) and a synchronous membership
// test.  Concrete types, so one registration serves every CompressedSet.
var csetOps = core.RegisterElemOps[int64, *bcontainer.CompressedSet, bool](
	"passoc.cset", transport.Int64Codec, transport.BoolCodec,
	func(_ *runtime.Location, bc *bcontainer.CompressedSet, key int64, member bool) {
		if member {
			bc.Insert(key)
		} else {
			bc.Erase(key)
		}
	},
	func(_ *runtime.Location, bc *bcontainer.CompressedSet, key int64) bool {
		return bc.Contains(key)
	},
)

// csetMigOps is the registered migration operation: redistribution ships
// whole adaptive chunks in their resident representation.
var csetMigOps = core.RegisterMigrationOps("passoc.cset", bcontainer.SetSegmentCodec)

// memberBytes is the simulated payload of one membership write: the flag
// itself (the key travels as the GID, like every element operation).
const memberBytes = 1

// CSetOption customises CompressedSet construction.
type CSetOption func(*csetOptions)

type csetOptions struct {
	part   partition.Indexed
	mapper partition.Mapper
	traits core.Traits
	hasTr  bool
}

// WithSetPartition selects the key partition (default: balanced, one
// sub-domain per location).
func WithSetPartition(p partition.Indexed) CSetOption {
	return func(o *csetOptions) { o.part = p }
}

// WithSetMapper selects the sub-domain → location mapper (default: blocked).
func WithSetMapper(m partition.Mapper) CSetOption {
	return func(o *csetOptions) { o.mapper = m }
}

// WithSetTraits overrides the default traits.
func WithSetTraits(t core.Traits) CSetOption {
	return func(o *csetOptions) { o.traits = t; o.hasTr = true }
}

// NewCompressedSet constructs an empty compressed pSet over the key universe
// [0, n).  Collective.
func NewCompressedSet(loc *runtime.Location, n int64, opts ...CSetOption) *CompressedSet {
	var o csetOptions
	for _, fn := range opts {
		fn(&o)
	}
	dom := domain.NewRange1D(0, n)
	if o.part == nil {
		o.part = partition.NewBalanced(dom, loc.NumLocations())
	}
	if o.mapper == nil {
		o.mapper = partition.NewBlockedMapper(o.part.NumSubdomains(), loc.NumLocations())
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	s := &CompressedSet{dom: dom, part: o.part, mapper: o.mapper}
	s.InitContainer(loc, core.IndexedResolver{Partition: o.part, Mapper: o.mapper}, o.traits)
	for _, b := range o.mapper.LocalBCIDs(loc.ID()) {
		s.LocationManager().Add(bcontainer.NewCompressedSet(b))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return s
}

// Domain returns the key universe [0, n).
func (s *CompressedSet) Domain() domain.Range1D { return s.dom }

// Partition returns the key partition in use.
func (s *CompressedSet) Partition() partition.Indexed { return s.part }

// Mapper returns the sub-domain mapper in use.
func (s *CompressedSet) Mapper() partition.Mapper { return s.mapper }

// Insert adds key asynchronously.
func (s *CompressedSet) Insert(key int64) {
	s.checkKey(key)
	csetOps.Set(&s.Container, key, true, memberBytes)
}

// EraseAsync removes key asynchronously.
func (s *CompressedSet) EraseAsync(key int64) {
	s.checkKey(key)
	csetOps.Set(&s.Container, key, false, memberBytes)
}

// Contains reports membership of key.  Synchronous.
func (s *CompressedSet) Contains(key int64) bool {
	s.checkKey(key)
	return csetOps.Get(&s.Container, key)
}

// ContainsSplit starts a split-phase membership test of key.
func (s *CompressedSet) ContainsSplit(key int64) *runtime.FutureOf[bool] {
	s.checkKey(key)
	return runtime.NewFutureOf[bool](csetOps.GetSplit(&s.Container, key))
}

// InsertBulk adds every key asynchronously: the batch is resolved once and
// shipped as one sized RMI per owning location.  The slice is retained until
// the operations execute; do not mutate it before the next Fence.
func (s *CompressedSet) InsertBulk(keys []int64) {
	if len(keys) == 0 {
		return
	}
	flags := make([]bool, len(keys))
	for i, k := range keys {
		s.checkKey(k)
		flags[i] = true
	}
	csetOps.SetBulk(&s.Container, keys, flags, memberBytes)
}

// ContainsBulk tests every key and returns the flags in key order
// (synchronous; one round trip per owning location).
func (s *CompressedSet) ContainsBulk(keys []int64) []bool {
	for _, k := range keys {
		s.checkKey(k)
	}
	out := make([]bool, len(keys))
	csetOps.GetBulk(&s.Container, keys, out, memberBytes)
	return out
}

func (s *CompressedSet) checkKey(key int64) {
	if !s.dom.Contains(key) {
		panic("passoc: compressed-set key outside the universe")
	}
}

// Size returns the global number of members.  Collective.
func (s *CompressedSet) Size() int64 { return s.GlobalSize() }

// LocalRange applies fn to every locally stored member in ascending key
// order (per base container).
func (s *CompressedSet) LocalRange(fn func(key int64) bool) {
	s.ForEachLocalBC(core.Read, func(bc *bcontainer.CompressedSet) { bc.Range(fn) })
}

// LocalChunkKind reports the physical representation of the resident chunk
// covering key on this location (ok=false when this location stores no such
// chunk) — the transition-assertion hook of the roaring pattern, lifted to
// the pContainer.
func (s *CompressedSet) LocalChunkKind(key int64) (kind bcontainer.ReprKind, ok bool) {
	s.ForEachLocalBC(core.Read, func(bc *bcontainer.CompressedSet) {
		if k, resident := bc.ChunkKind(key); resident {
			kind, ok = k, true
		}
	})
	return kind, ok
}

// MemorySize returns the container-wide footprint.  Collective.
func (s *CompressedSet) MemorySize() core.MemoryUsage {
	return s.GlobalMemory(partition.MemoryBytes(s.mapper) + 32)
}

// Redistribute reorganises the members according to a new indexed partition
// of the same universe and a new mapper, through the shared redistribution
// engine.  Unlike the flat families, the unit of migration is one adaptive
// chunk in its resident representation (a SetSegment): migration bytes scale
// with the members shipped, never with the key span.  A chunk whose key span
// straddles a new sub-domain boundary is split by regrouping its members
// into per-target chunks.  Collective.
func (s *CompressedSet) Redistribute(newPart partition.Indexed, newMapper partition.Mapper) {
	loc := s.Location()
	core.RunMigration(loc, core.MigrationSpec[bcontainer.SetSegment, *bcontainer.CompressedSet]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.CompressedSet {
			return bcontainer.NewCompressedSet(b)
		},
		Enumerate: func(emit func(bcontainer.SetSegment)) {
			s.ForEachLocalBC(core.Read, func(bc *bcontainer.CompressedSet) {
				for _, seg := range bc.Segments() {
					base := seg.Chunk << bcontainer.SetChunkBits
					hi := base + bcontainer.SetChunkMask
					if hi >= s.dom.Hi {
						hi = s.dom.Hi - 1
					}
					// Whole-chunk fast path: the chunk's key span (clamped to
					// the universe) lands in one target sub-domain, so the
					// resident chunk ships as-is (the old storage is immutable
					// for the whole migration and dropped at install, so no
					// copy is needed).
					if newPart.Find(base).BCID == newPart.Find(hi).BCID {
						emit(seg)
						continue
					}
					// Straddling chunk: regroup members by target.  The
					// partition's sub-domains are contiguous ranges, so
					// ascending members change target monotonically.
					var cur *bcontainer.SetChunk
					var curTarget partition.BCID
					seg.Set.Range(func(k uint16) bool {
						t := newPart.Find(base | int64(k)).BCID
						if cur == nil || t != curTarget {
							if cur != nil {
								emit(bcontainer.SetSegment{Chunk: seg.Chunk, Set: cur})
							}
							cur, curTarget = bcontainer.NewSetChunk(), t
						}
						cur.Insert(k)
						return true
					})
					if cur != nil {
						emit(bcontainer.SetSegment{Chunk: seg.Chunk, Set: cur})
					}
				}
			})
		},
		Route: func(seg bcontainer.SetSegment) (partition.BCID, int) {
			k, _ := seg.Set.Min()
			info := newPart.Find(seg.Chunk<<bcontainer.SetChunkBits | int64(k))
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.CompressedSet, seg bcontainer.SetSegment) {
			bc.InstallSegment(seg)
		},
		Bytes: func(seg bcontainer.SetSegment) int { return seg.ByteSize() },
		Ops:   csetMigOps,
		Install: func(lm *core.LocationManager[*bcontainer.CompressedSet]) {
			s.ReplaceLocationManager(lm)
			s.SetResolver(core.IndexedResolver{Partition: newPart, Mapper: newMapper})
			s.part, s.mapper = newPart, newMapper
		},
	})
}

// Rebalance evens out the per-location member counts by remapping the
// existing sub-domains with the load-balance advisor's greedy proposal (the
// key partition stays fixed, only ownership moves) — membership density is
// not uniform over the universe, so unlike the flat static families the
// proposal is measured, not closed-form.  Collective.
func (s *CompressedSet) Rebalance() {
	loc := s.Location()
	local := make([]int64, s.part.NumSubdomains())
	s.ForEachLocalBC(core.Read, func(bc *bcontainer.CompressedSet) {
		local[int(bc.BCID())] = bc.Size()
	})
	sizes := partition.CollectSubSizes(loc, local)
	s.Redistribute(s.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}
