package pvector

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestVectorRedistributeEmpty(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		v := New[int](loc, 0)
		v.Rebalance()
		if got := v.GlobalSize(); got != 0 {
			t.Errorf("global size = %d, want 0", got)
		}
		loc.Fence()
	})
}

func TestVectorRedistributeSingleLocation(t *testing.T) {
	const n = 24
	run(1, func(loc *runtime.Location) {
		v := New[int](loc, n)
		for i := int64(0); i < n; i++ {
			v.Set(i, int(i)+5)
		}
		loc.Fence()
		part := partition.NewBlocked(domain.NewRange1D(0, n), 5)
		v.Redistribute(part, partition.NewBlockedMapper(part.NumSubdomains(), 1))
		for i := int64(0); i < n; i++ {
			if got := v.Get(i); got != int(i)+5 {
				t.Errorf("element %d = %d, want %d", i, got, int(i)+5)
				return
			}
		}
		loc.Fence()
	})
}

func TestVectorRedistributeIdentityNoTraffic(t *testing.T) {
	const n = 80
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		p := loc.NumLocations()
		v := New[int64](loc, n)
		v.LocalUpdate(func(gid, _ int64) int64 { return gid + 9 })
		loc.Fence()
		// The constructor's distribution is already one balanced block
		// per location, so a balanced repartition moves nothing.
		before := m.Stats().RMIsSent
		v.Redistribute(partition.NewBalanced(domain.NewRange1D(0, n), p), partition.NewBlockedMapper(p, p))
		after := m.Stats().RMIsSent
		if after != before {
			t.Errorf("identity repartition sent %d RMIs, want 0", after-before)
		}
		// Keep the verification reads out of the stats windows of the
		// other locations.
		loc.Barrier()
		for i := int64(0); i < n; i++ {
			if got := v.Get(i); got != i+9 {
				t.Errorf("element %d = %d, want %d", i, got, i+9)
				return
			}
		}
		loc.Fence()
	})
}

func TestVectorRedistributeRejectsBlockCyclic(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		v := New[int](loc, 16)
		loc.Fence()
		defer func() {
			if recover() == nil {
				t.Error("Redistribute with a block-cyclic partition should panic")
			}
		}()
		v.Redistribute(partition.NewBlockCyclic(domain.NewRange1D(0, 16), 2, 4), partition.NewBlockedMapper(2, 1))
	})
}

func TestVectorSkewRebalanceRoundTrip(t *testing.T) {
	const n = 160
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		v := New[int64](loc, n)
		v.LocalUpdate(func(gid, _ int64) int64 { return gid * 7 })
		loc.Fence()
		skew, err := partition.NewExplicit(domain.NewRange1D(0, n), []int64{n - int64(p) + 1, 1, 1, 1})
		if err != nil {
			t.Fatalf("explicit partition: %v", err)
		}
		v.Redistribute(skew, partition.NewBlockedMapper(p, p))
		if f := partition.CollectLoad(loc, v.LocalSize()).Imbalance(); f < 1.5 {
			t.Errorf("skewed distribution expected, imbalance = %.3f", f)
		}
		for i := int64(0); i < n; i++ {
			if got := v.Get(i); got != i*7 {
				t.Errorf("after skew: element %d = %d, want %d", i, got, i*7)
				return
			}
		}
		loc.Fence()
		v.Rebalance()
		if f := partition.CollectLoad(loc, v.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := v.Size(); got != n {
			t.Errorf("size = %d, want %d", got, n)
		}
		for i := int64(0); i < n; i++ {
			if got := v.Get(i); got != i*7 {
				t.Errorf("after rebalance: element %d = %d, want %d", i, got, i*7)
				return
			}
		}
		// Structural mutations still work against the new metadata.
		loc.Barrier()
		if loc.ID() == 0 {
			v.PushBack(int64(n) * 7)
		}
		loc.Fence()
		if got := v.Size(); got != n+1 {
			t.Errorf("size after push_back = %d, want %d", got, n+1)
		}
		if got := v.Get(n); got != int64(n)*7 {
			t.Errorf("pushed element = %d, want %d", got, int64(n)*7)
		}
		loc.Fence()
	})
}
