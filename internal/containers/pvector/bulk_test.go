package pvector

import (
	"testing"

	"repro/internal/runtime"
)

// TestBulkEquivalence: SetBulk/ApplyBulk plus a fence must leave the vector
// identical to the elementwise loops, and GetBulk must agree with Get —
// including empty and all-local batches.
func TestBulkEquivalence(t *testing.T) {
	const n = int64(4 * 50)
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		bulk := New[int64](loc, n)
		elem := New[int64](loc, n)

		var idxs, vals []int64
		for i := int64(loc.ID()); i < n; i += int64(loc.NumLocations()) {
			idxs = append(idxs, i)
			vals = append(vals, 100*int64(loc.ID())+i)
		}
		bulk.SetBulk(idxs, vals)
		for k := range idxs {
			elem.Set(idxs[k], vals[k])
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if got, want := bulk.Get(i), elem.Get(i); got != want {
				t.Errorf("index %d: bulk=%d elementwise=%d", i, got, want)
			}
		}
		loc.Fence()

		got := bulk.GetBulk(idxs)
		for k, i := range idxs {
			if want := bulk.Get(i); got[k] != want {
				t.Errorf("GetBulk[%d] (index %d) = %d, want %d", k, i, got[k], want)
			}
		}

		// Empty batch.
		bulk.SetBulk(nil, nil)
		if out := bulk.GetBulk(nil); len(out) != 0 {
			t.Errorf("GetBulk(nil) returned %d values", len(out))
		}
		loc.Fence()

		// All-local batch.
		d := bulk.LocalDomain()
		var lIdxs, lVals []int64
		for i := d.Lo; i < d.Hi; i++ {
			lIdxs = append(lIdxs, i)
			lVals = append(lVals, -i)
		}
		bulk.SetBulk(lIdxs, lVals)
		for k := range lIdxs {
			elem.Set(lIdxs[k], lVals[k])
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if got, want := bulk.Get(i), elem.Get(i); got != want {
				t.Errorf("after local batch, index %d: bulk=%d elementwise=%d", i, got, want)
			}
		}
		loc.Fence()

		// ApplyBulk equals the elementwise Apply loop.
		bulk.ApplyBulk(idxs, func(x int64) int64 { return 3 * x })
		for _, i := range idxs {
			elem.Apply(i, func(x int64) int64 { return 3 * x })
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if got, want := bulk.Get(i), elem.Get(i); got != want {
				t.Errorf("after apply, index %d: bulk=%d elementwise=%d", i, got, want)
			}
		}
		loc.Fence()
	})
}
