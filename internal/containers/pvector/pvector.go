// Package pvector implements the STAPL pVector: a sequence pContainer that
// also satisfies the indexed interface.  Like its sequential counterpart it
// offers O(1) access by index and amortised O(1) push_back, but pays linear
// time (element shifting plus distributed metadata updates) for insertions
// and deletions in the middle — the trade-off against pList that the paper's
// Fig. 42 experiment quantifies.
package pvector

import (
	"sort"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// blockTable is the pVector's distribution metadata: the current size of
// every block (bContainer).  Indices are positional, so the table also
// yields the prefix sums needed to locate the block owning a global index.
// Each location keeps a replica; structural updates are broadcast
// asynchronously and synchronised at fences, following the container's
// relaxed consistency model.
type blockTable struct {
	mu     sync.RWMutex
	sizes  []int64
	prefix []int64 // prefix[i] = first global index of block i
}

func newBlockTable(sizes []int64) *blockTable {
	t := &blockTable{}
	t.reset(sizes)
	return t
}

func (t *blockTable) reset(sizes []int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sizes = append([]int64(nil), sizes...)
	t.rebuildLocked()
}

func (t *blockTable) rebuildLocked() {
	t.prefix = make([]int64, len(t.sizes))
	var acc int64
	for i, s := range t.sizes {
		t.prefix[i] = acc
		acc += s
	}
}

func (t *blockTable) adjust(block int, delta int64) {
	t.mu.Lock()
	t.sizes[block] += delta
	t.rebuildLocked()
	t.mu.Unlock()
}

func (t *blockTable) total() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.sizes) == 0 {
		return 0
	}
	return t.prefix[len(t.prefix)-1] + t.sizes[len(t.sizes)-1]
}

// locate returns the block containing global index i and the index of the
// block's first element.
func (t *blockTable) locate(i int64) (block int, base int64, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= t.prefixTotalLocked() {
		return 0, 0, false
	}
	// Last block whose first index is <= i.
	b := sort.Search(len(t.prefix), func(k int) bool { return t.prefix[k] > i }) - 1
	return b, t.prefix[b], true
}

func (t *blockTable) prefixTotalLocked() int64 {
	if len(t.sizes) == 0 {
		return 0
	}
	return t.prefix[len(t.prefix)-1] + t.sizes[len(t.sizes)-1]
}

func (t *blockTable) blockBase(block int) int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.prefix[block]
}

func (t *blockTable) snapshot() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]int64(nil), t.sizes...)
}

// vectorResolver resolves positional indices through the block table.
type vectorResolver struct {
	table  *blockTable
	mapper partition.Mapper
}

func (r vectorResolver) Find(gid int64) partition.Info {
	if b, _, ok := r.table.locate(gid); ok {
		return partition.Found(partition.BCID(b))
	}
	return partition.Forward(0)
}

func (r vectorResolver) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// Vector is the per-location representative of a pVector of element type T.
type Vector[T any] struct {
	core.Container[int64, *bcontainer.Vector[T]]

	table  *blockTable
	mapper partition.Mapper
	traits core.Traits
}

// Option customises pVector construction.
type Option func(*voptions)

type voptions struct {
	traits core.Traits
	hasTr  bool
}

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *voptions) { o.traits = t; o.hasTr = true } }

// New constructs a pVector with n initial (zero-valued) elements, one block
// per location.  Collective.
func New[T any](loc *runtime.Location, n int64, opts ...Option) *Vector[T] {
	var o voptions
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	p := loc.NumLocations()
	blocks := domain.NewRange1D(0, n).Split(p)
	sizes := make([]int64, p)
	for i, b := range blocks {
		sizes[i] = b.Size()
	}
	v := &Vector[T]{table: newBlockTable(sizes), mapper: partition.NewBlockedMapper(p, p), traits: o.traits}
	v.InitContainer(loc, vectorResolver{table: v.table, mapper: v.mapper}, o.traits)
	self := loc.ID()
	v.LocationManager().Add(bcontainer.NewVector[T](partition.BCID(self), blocks[self]))
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return v
}

// Size returns the current global number of elements as recorded by this
// location's replica of the block table.  After a fence all replicas agree.
func (v *Vector[T]) Size() int64 { return v.table.total() }

// Get returns the element at global index i (synchronous).
func (v *Vector[T]) Get(i int64) T {
	out := v.InvokeRet(i, core.Read, func(_ *runtime.Location, bc *bcontainer.Vector[T]) any { return bc.Get(i) })
	return out.(T)
}

// Set stores val at global index i (asynchronous).
func (v *Vector[T]) Set(i int64, val T) {
	v.InvokeSized(i, core.Write, runtime.PayloadBytes(val), func(_ *runtime.Location, bc *bcontainer.Vector[T]) { bc.Set(i, val) })
}

// Apply applies fn to the element at global index i in place (asynchronous).
func (v *Vector[T]) Apply(i int64, fn func(T) T) {
	v.Invoke(i, core.Write, func(_ *runtime.Location, bc *bcontainer.Vector[T]) { bc.Apply(i, fn) })
}

// GetSplit starts a split-phase read of index i.
func (v *Vector[T]) GetSplit(i int64) *runtime.FutureOf[T] {
	f := v.InvokeSplit(i, core.Read, func(_ *runtime.Location, bc *bcontainer.Vector[T]) any { return bc.Get(i) })
	return runtime.NewFutureOf[T](f)
}

// SetBulk stores vals[k] at global index idxs[k] for every k, asynchronously:
// the batch is resolved against the block table once and shipped as one
// sized RMI per owning location.  Both slices are retained until the
// operations execute; callers hand over ownership and must not mutate them
// before the next Fence.
func (v *Vector[T]) SetBulk(idxs []int64, vals []T) {
	if len(idxs) != len(vals) {
		panic("pvector: SetBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 8 + runtime.PayloadBytes(vals[0]) // index + value
	v.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.Vector[T], k int) {
		bc.Set(idxs[k], vals[k])
	})
}

// GetBulk returns the elements at the given global indices, in order
// (synchronous; one round trip per owning location).
func (v *Vector[T]) GetBulk(idxs []int64) []T {
	out := make([]T, len(idxs))
	v.InvokeBulkSync(idxs, core.Read, 8, func(_ *runtime.Location, bc *bcontainer.Vector[T], k int) {
		out[k] = bc.Get(idxs[k])
	})
	return out
}

// ApplyBulk applies fn to every element named by idxs in place,
// asynchronously (the bulk counterpart of Apply).  The index slice is
// retained until the operations execute; do not mutate it before the next
// Fence.
func (v *Vector[T]) ApplyBulk(idxs []int64, fn func(T) T) {
	v.InvokeBulk(idxs, core.Write, 8, func(_ *runtime.Location, bc *bcontainer.Vector[T], k int) {
		bc.Apply(idxs[k], fn)
	})
}

// CombineBulk merges vals into the named elements with op (element becomes
// op(current, vals[k])), asynchronously: the accumulate flavour of the bulk
// path, used by the blocked matrix kernels to flush per-row partial results
// as one grouped request per owning location.  op should be commutative when
// several locations combine into the same element concurrently.  Both slices
// are retained until the next Fence.
func (v *Vector[T]) CombineBulk(idxs []int64, vals []T, op func(cur, val T) T) {
	if len(idxs) != len(vals) {
		panic("pvector: CombineBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 8 + runtime.PayloadBytes(vals[0])
	v.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.Vector[T], k int) {
		bc.Apply(idxs[k], func(cur T) T { return op(cur, vals[k]) })
	})
}

// PushBack appends val at the global end of the vector (amortised O(1) plus
// one metadata broadcast).  Asynchronous.
func (v *Vector[T]) PushBack(val T) {
	last := v.table.prefixLen() - 1
	v.mutateBlock(last, func(bc *bcontainer.Vector[T]) { bc.PushBack(val) }, +1)
}

// prefixLen returns the number of blocks.
func (t *blockTable) prefixLen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sizes)
}

// PopBack removes the last element.  Asynchronous.
func (v *Vector[T]) PopBack() {
	last := v.table.prefixLen() - 1
	v.mutateBlock(last, func(bc *bcontainer.Vector[T]) { bc.PopBack() }, -1)
}

// Insert inserts val before global index i.  The owning block shifts its
// elements (linear in the block size) and the size change is broadcast to
// every location's metadata replica — the cost that separates pVector from
// pList on dynamic workloads.
func (v *Vector[T]) Insert(i int64, val T) {
	block, _, ok := v.table.locate(i)
	if !ok {
		// Appending at the very end.
		v.PushBack(val)
		return
	}
	v.mutateBlock(block, func(bc *bcontainer.Vector[T]) { bc.Insert(i, val) }, +1)
}

// Erase removes the element at global index i.  Asynchronous.
func (v *Vector[T]) Erase(i int64) {
	block, _, ok := v.table.locate(i)
	if !ok {
		return
	}
	v.mutateBlock(block, func(bc *bcontainer.Vector[T]) { bc.Erase(i) }, -1)
}

// mutateBlock runs a structural mutation on the owning location of a block
// and broadcasts the size delta to all metadata replicas.
func (v *Vector[T]) mutateBlock(block int, action func(bc *bcontainer.Vector[T]), delta int64) {
	loc := v.Location()
	owner := v.mapper.Map(partition.BCID(block))
	run := func(self *core.Container[int64, *bcontainer.Vector[T]], l *runtime.Location) {
		bc := self.LocationManager().MustGet(partition.BCID(block))
		self.ThreadSafety().DataAccessPre(partition.BCID(block), core.Write)
		action(bc)
		self.ThreadSafety().DataAccessPost(partition.BCID(block), core.Write)
	}
	if owner == loc.ID() {
		run(&v.Container, loc)
	} else {
		v.InvokeAt(owner, func(l *runtime.Location, self *core.Container[int64, *bcontainer.Vector[T]]) {
			run(self, l)
		})
	}
	// Broadcast the metadata update so every replica of the block table
	// reflects the new sizes.  The sender updates its replica immediately
	// (program order per location); remote replicas converge by the next
	// fence.
	for d := 0; d < loc.NumLocations(); d++ {
		if d == loc.ID() {
			v.table.adjust(block, delta)
			continue
		}
		v.InvokeAt(d, func(_ *runtime.Location, self *core.Container[int64, *bcontainer.Vector[T]]) {
			r := self.Resolver().(vectorResolver)
			r.table.adjust(block, delta)
		})
	}
	// Rebase the blocks after the mutated one so their elements' global
	// indices stay consistent with the prefix sums.
	v.rebaseAll()
}

// rebaseAll asks every location to realign its block's base index with the
// current prefix table.  Asynchronous; consistent by the next fence.  The
// rebase is a write to the block's storage metadata, so it runs under the
// thread-safety manager's write bracket (concurrent element reads hold the
// read bracket of the same block).
func (v *Vector[T]) rebaseAll() {
	loc := v.Location()
	for d := 0; d < loc.NumLocations(); d++ {
		v.InvokeAt(d, func(_ *runtime.Location, self *core.Container[int64, *bcontainer.Vector[T]]) {
			r := self.Resolver().(vectorResolver)
			ths := self.ThreadSafety()
			self.LocationManager().ForEach(func(bc *bcontainer.Vector[T]) {
				b := bc.BCID()
				ths.DataAccessPre(b, core.Write)
				bc.SetBase(r.table.blockBase(int(b)))
				ths.DataAccessPost(b, core.Write)
			})
		})
	}
}

// LocalSegment returns the raw storage backing the global index range
// [r.Lo, r.Hi) when one local block holds it entirely, and ok=false
// otherwise.  Only valid during phases without structural operations
// (push/insert/erase move and rebase blocks); pAlgorithm use over native
// views satisfies that, since structural mutation is fenced off from
// element-wise traversal.
func (v *Vector[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if r.Empty() {
		return nil, false
	}
	var out []T
	ok := false
	v.ForEachLocalBC(core.Read, func(bc *bcontainer.Vector[T]) {
		if ok {
			return
		}
		d := bc.Domain()
		if r.Lo >= d.Lo && r.Hi <= d.Hi {
			out = bc.Slice()[r.Lo-d.Lo : r.Hi-d.Lo]
			ok = true
		}
	})
	return out, ok
}

// LocalRange applies fn to every locally stored (index, value) pair.
func (v *Vector[T]) LocalRange(fn func(gid int64, val T) bool) {
	v.ForEachLocalBC(core.Read, func(bc *bcontainer.Vector[T]) { bc.Range(fn) })
}

// LocalUpdate replaces every locally stored element with fn's result.
func (v *Vector[T]) LocalUpdate(fn func(gid int64, val T) T) {
	v.ForEachLocalBC(core.Write, func(bc *bcontainer.Vector[T]) { bc.Update(fn) })
}

// LocalDomain returns the contiguous global index range stored locally.
func (v *Vector[T]) LocalDomain() domain.Range1D {
	var out domain.Range1D
	first := true
	v.ForEachLocalBC(core.Read, func(bc *bcontainer.Vector[T]) {
		if first {
			out = bc.Domain()
			first = false
		} else {
			d := bc.Domain()
			if d.Lo < out.Lo {
				out.Lo = d.Lo
			}
			if d.Hi > out.Hi {
				out.Hi = d.Hi
			}
		}
	})
	return out
}

// BlockSizes returns this location's view of the per-block sizes.
func (v *Vector[T]) BlockSizes() []int64 { return v.table.snapshot() }

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (v *Vector[T]) MemorySize() core.MemoryUsage {
	meta := int64(len(v.table.snapshot()))*16 + partition.MemoryBytes(v.mapper)
	return v.GlobalMemory(meta)
}
