package pvector

import (
	"testing"

	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestVectorConstructionAndIndexAccess(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		v := New[int](loc, 40)
		if v.Size() != 40 {
			t.Errorf("size = %d", v.Size())
		}
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 40; i++ {
				v.Set(i, int(i)*3)
			}
		}
		loc.Fence()
		for i := int64(0); i < 40; i++ {
			if got := v.Get(i); got != int(i)*3 {
				t.Errorf("Get(%d) = %d", i, got)
				return
			}
		}
		if f := v.GetSplit(17); f.Get() != 51 {
			t.Errorf("split get = %d", f.Get())
		}
		loc.Fence()
	})
}

func TestVectorPushBackGrowsAtEnd(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		v := New[int](loc, 9)
		loc.Barrier()
		if loc.ID() == 1 {
			for k := 0; k < 5; k++ {
				v.PushBack(100 + k)
			}
		}
		loc.Fence()
		if v.Size() != 14 {
			t.Errorf("size = %d, want 14", v.Size())
		}
		for k := 0; k < 5; k++ {
			if got := v.Get(int64(9 + k)); got != 100+k {
				t.Errorf("appended element %d = %d", 9+k, got)
			}
		}
		loc.Fence()
		// PopBack removes from the global end.
		if loc.ID() == 0 {
			v.PopBack()
		}
		loc.Fence()
		if v.Size() != 13 {
			t.Errorf("size after pop = %d", v.Size())
		}
		loc.Fence()
	})
}

func TestVectorInsertShiftsIndices(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		v := New[string](loc, 4)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 4; i++ {
				v.Set(i, string(rune('a'+i)))
			}
		}
		loc.Fence()
		if loc.ID() == 0 {
			v.Insert(2, "X") // a b X c d
		}
		loc.Fence()
		if v.Size() != 5 {
			t.Fatalf("size = %d", v.Size())
		}
		want := []string{"a", "b", "X", "c", "d"}
		for i, w := range want {
			if got := v.Get(int64(i)); got != w {
				t.Errorf("element %d = %q, want %q (block sizes %v)", i, got, w, v.BlockSizes())
			}
		}
		loc.Fence()
		if loc.ID() == 1 {
			v.Erase(2) // back to a b c d
		}
		loc.Fence()
		if v.Size() != 4 || v.Get(2) != "c" {
			t.Errorf("after erase: size=%d element2=%q", v.Size(), v.Get(2))
		}
		loc.Fence()
	})
}

func TestVectorApplyAndLocalTraversal(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		v := New[int64](loc, 64)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 64; i++ {
				v.Set(i, 1)
			}
		}
		loc.Fence()
		for i := int64(0); i < 64; i++ {
			v.Apply(i, func(x int64) int64 { return x + 1 })
		}
		loc.Fence()
		var localSum int64
		v.LocalRange(func(_ int64, x int64) bool { localSum += x; return true })
		total := runtime.AllReduceSum(loc, localSum)
		want := int64(64 * (1 + loc.NumLocations()))
		if total != want {
			t.Errorf("total = %d, want %d", total, want)
		}
		// Local update and domain.
		v.LocalUpdate(func(gid int64, _ int64) int64 { return gid })
		d := v.LocalDomain()
		if d.Size() != 16 {
			t.Errorf("local domain size = %d, want 16", d.Size())
		}
		loc.Fence()
	})
}

func TestVectorBlockTableConsistencyAfterManyInserts(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		v := New[int](loc, 10)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 10; i++ {
				v.Set(i, int(i))
			}
		}
		loc.Fence()
		// Interleave inserts at the front from one location only (the
		// paper's semantics do not define the outcome of concurrent
		// positional inserts without synchronisation).
		if loc.ID() == 1 {
			for k := 0; k < 10; k++ {
				v.Insert(0, 1000+k)
			}
		}
		loc.Fence()
		if v.Size() != 20 {
			t.Fatalf("size = %d", v.Size())
		}
		// The ten inserted values occupy the front in reverse insertion
		// order, followed by the original sequence.
		for k := 0; k < 10; k++ {
			if got := v.Get(int64(k)); got != 1009-k {
				t.Errorf("front element %d = %d, want %d", k, got, 1009-k)
			}
		}
		for i := 0; i < 10; i++ {
			if got := v.Get(int64(10 + i)); got != i {
				t.Errorf("shifted element %d = %d, want %d", 10+i, got, i)
			}
		}
		loc.Fence()
	})
}

func TestVectorMemoryAndBlockSizes(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		v := New[int64](loc, 100)
		sizes := v.BlockSizes()
		if len(sizes) != 2 || sizes[0]+sizes[1] != 100 {
			t.Errorf("block sizes = %v", sizes)
		}
		mu := v.MemorySize()
		if mu.Data < 800 || mu.Metadata <= 0 {
			t.Errorf("memory = %+v", mu)
		}
		loc.Fence()
	})
}

func TestVectorEmptyAndSingleLocation(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		v := New[int](loc, 0)
		if v.Size() != 0 {
			t.Errorf("size = %d", v.Size())
		}
		v.PushBack(1)
		v.PushBack(2)
		loc.Fence()
		if v.Size() != 2 || v.Get(0) != 1 || v.Get(1) != 2 {
			t.Error("push_back into empty vector broken")
		}
		v.Insert(1, 9)
		loc.Fence()
		if v.Get(1) != 9 || v.Get(2) != 2 {
			t.Error("insert into singleton block broken")
		}
		v.Erase(0)
		loc.Fence()
		if v.Size() != 2 || v.Get(0) != 9 {
			t.Error("erase broken")
		}
	})
}

// TestVectorTransientForwardingSurvivesPartitionFailFast pins the growing
// container's resolution contract against the closed-form partitions'
// fail-fast change: pVector resolves through its own block-table resolver,
// which still returns Forward(0) for an index it cannot see yet (a
// concurrent PushBack that has not reached this location's cached metadata),
// and the directory retries the hop until the table catches up.  Accessing
// indices far beyond the vector's construction-time domain therefore keeps
// working — they are a growth artefact, not a caller bug.
func TestVectorTransientForwardingSurvivesPartitionFailFast(t *testing.T) {
	const perLoc = 8
	run(4, func(loc *runtime.Location) {
		v := New[int](loc, 16) // initial domain [0, 16)
		loc.Fence()
		// Every location grows the shared vector past its initial domain.
		for i := 0; i < perLoc; i++ {
			v.PushBack(100*loc.ID() + i)
		}
		loc.Fence()
		// Indices in [16, 48) are outside the construction-time domain; a
		// closed-form partition would fail fast here, the vector's
		// transient-forwarding resolver must not.
		if v.Size() != 16+4*perLoc {
			t.Errorf("size = %d, want %d", v.Size(), 16+4*perLoc)
		}
		sum := 0
		for i := int64(16); i < v.Size(); i++ {
			sum += v.Get(i)
		}
		if sum <= 0 {
			t.Errorf("loc %d: pushed tail reads as %d, want positive content", loc.ID(), sum)
		}
		loc.Fence()
	})
}
