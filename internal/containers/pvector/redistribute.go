package pvector

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
)

// Redistribute reorganises the pVector's elements according to a new
// partition of the positional index space [0, Size()) and a new mapper,
// through the shared redistribution engine in package core.  The partition
// must be contiguous (Balanced, Blocked or Explicit): pVector blocks store
// consecutive positions, so a block-cyclic layout does not apply to its
// index space.  Collective; the container must be quiescent (fence first
// after structural mutations).
func (v *Vector[T]) Redistribute(newPart partition.Indexed, newMapper partition.Mapper) {
	requireContiguous(newPart)
	core.RedistributeIndexed[T](&v.Container, newPart, newMapper,
		func(b partition.BCID, dom domain.Range1D) *bcontainer.Vector[T] {
			return bcontainer.NewVector[T](b, dom)
		},
		func(lm *core.LocationManager[*bcontainer.Vector[T]]) {
			v.ReplaceLocationManager(lm)
			v.table.reset(newPart.SubSizes())
			v.mapper = newMapper
			v.SetResolver(vectorResolver{table: v.table, mapper: newMapper})
		})
}

// requireContiguous panics unless the partition's sub-domains are
// consecutive index ranges covering the domain in BCID order — the layout a
// pVector's positional block table can represent.  Block-cyclic partitions
// report a covering range wider than their sub-domain sizes and are caught
// here instead of corrupting index resolution later.
func requireContiguous(p partition.Indexed) {
	lo := p.Domain().Lo
	for b, want := range p.SubSizes() {
		d := p.SubDomain(partition.BCID(b))
		if d.Lo != lo || d.Size() != want {
			panic("pvector: Redistribute requires a contiguous partition (balanced, blocked or explicit)")
		}
		lo = d.Hi
	}
}

// Rebalance redistributes the elements into a balanced partition with one
// block per location, using the load-balance advisor's proposal.
// Collective.
func (v *Vector[T]) Rebalance() {
	stats := partition.CollectLoad(v.Location(), v.LocalSize())
	p, m := stats.ProposeBalanced(domain.NewRange1D(0, stats.Total))
	v.Redistribute(p, m)
}
