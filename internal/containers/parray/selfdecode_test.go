package parray

import (
	"testing"

	"repro/internal/runtime"
)

// TestElemOpsRegisteredForCodecTypes pins that every built-in pArray element
// operation — set, get, bulk-set, bulk-get — is registered under its stable
// name for codec-backed element types, so a cooperating process can resolve
// the same IDs from the shared binary alone.
func TestElemOpsRegisteredForCodecTypes(t *testing.T) {
	o := elemOpsFor[int64]()
	if o == nil {
		t.Fatal("int64 has a typed codec but no registered element ops")
	}
	for _, suffix := range []string{"/set", "/get", "/bulk-set", "/bulk-get"} {
		name := o.Name() + suffix
		if id, ok := runtime.OpIDOf(name); !ok || id == 0 {
			t.Errorf("operation %q not registered (id %#x, ok %v)", name, uint64(id), ok)
		}
	}
	for i, id := range o.OpIDs() {
		if id == 0 {
			t.Errorf("element op %d has the reserved closure id 0", i)
		}
	}
	// The per-type cache must return the same registration, not re-register
	// (a second registration would panic on the duplicate name).
	if again := elemOpsFor[int64](); again != o {
		t.Error("elemOpsFor re-registered instead of reusing the cached ops")
	}
}

// TestArrayOpsSelfDecodeAcrossWire drives every built-in pArray container
// operation (element set/get, split-phase get, bulk set/get) across the wire
// protocol and asserts zero rendezvous fallbacks: each request crossed as a
// self-decoding frame — op ID plus codec-encoded argument, reconstructed and
// executed from bytes with no sender-side state — exactly what a process
// boundary requires.
func TestArrayOpsSelfDecodeAcrossWire(t *testing.T) {
	const n = 120
	cfg := runtime.DefaultConfig()
	cfg.Transport = runtime.WireTransport
	m := runtime.NewMachine(3, cfg)
	m.Execute(func(loc *runtime.Location) {
		pa := New[int64](loc, n)
		loc.Barrier()
		// Element sets: location 0 writes everything (mostly remote).
		if loc.ID() == 0 {
			for i := int64(0); i < n; i++ {
				pa.Set(i, i*3)
			}
		}
		loc.Fence()
		// Element gets, everywhere.
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != i*3 {
				t.Errorf("loc %d: Get(%d) = %d, want %d", loc.ID(), i, got, i*3)
				return
			}
		}
		// Split-phase gets overlap the reply frames.
		futs := make([]*runtime.FutureOf[int64], 0, n/4)
		for i := int64(0); i < n; i += 4 {
			futs = append(futs, pa.GetSplit(i))
		}
		for k, f := range futs {
			i := int64(k * 4)
			if got := f.Get(); got != i*3 {
				t.Errorf("loc %d: GetSplit(%d) = %d, want %d", loc.ID(), i, got, i*3)
			}
		}
		loc.Fence()
		// Bulk set and bulk get with shuffled indices (every location).
		idxs := make([]int64, n)
		vals := make([]int64, n)
		for i := range idxs {
			idxs[i] = int64((i*37 + 11) % n)
			vals[i] = idxs[i] * 7
		}
		pa.SetBulk(idxs, vals)
		loc.Fence()
		got := pa.GetBulk(idxs)
		for k, i := range idxs {
			if got[k] != i*7 {
				t.Errorf("loc %d: bulk get idx %d = %d, want %d", loc.ID(), i, got[k], i*7)
				return
			}
		}
		loc.Fence()
	})
	ws := m.WireStats()
	if ws.RendezvousFallbacks != 0 {
		t.Errorf("container workload took %d rendezvous fallbacks; every built-in op must be self-decoding", ws.RendezvousFallbacks)
	}
	if ws.DataFrames == 0 {
		t.Error("workload moved no wire frames; the test did not exercise the wire path")
	}
}
