package parray

import (
	"reflect"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// The pArray's element methods route through REGISTERED operations whenever
// the element type has a wire codec (transport.RegisterTyped): the request
// then travels as a self-decoding frame — op ID plus encoded (index, value)
// — executable in a process that shares only the program binary, instead of
// a closure resolvable only through the sender's rendezvous table.  Element
// types without a codec keep the original closure paths unchanged.
//
// One registration serves every pArray instantiated at the same element
// type: the operation name is derived from the codec name (stable across
// processes and registration order), and the per-type result is cached so a
// second array at the same T reuses it instead of tripping the registry's
// duplicate-name panic.

var (
	elemOpsMu  sync.Mutex
	elemOpsReg = map[reflect.Type]any{} // *core.ElemOps[...] per T; nil when T has no codec
)

// elemOpsFor returns the registered element operations for element type T,
// or nil when T has no typed codec (closure fallback).
func elemOpsFor[T any]() *core.ElemOps[int64, *bcontainer.Array[T], T] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	elemOpsMu.Lock()
	defer elemOpsMu.Unlock()
	if v, ok := elemOpsReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.ElemOps[int64, *bcontainer.Array[T], T])
	}
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		elemOpsReg[t] = nil
		return nil
	}
	o := core.RegisterElemOps[int64, *bcontainer.Array[T], T](
		"parray["+codec.Name+"]",
		transport.Int64Codec,
		codec,
		func(_ *runtime.Location, bc *bcontainer.Array[T], gid int64, v T) { bc.Set(gid, v) },
		func(_ *runtime.Location, bc *bcontainer.Array[T], gid int64) T { return bc.Get(gid) },
	)
	elemOpsReg[t] = o
	return o
}
