package parray

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// run executes fn SPMD-style on p locations with the default RTS config.
func run(p int, fn func(loc *runtime.Location)) *runtime.Machine {
	m := runtime.NewMachine(p, runtime.DefaultConfig())
	m.Execute(fn)
	return m
}

func TestArrayConstructionAndSize(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, 103)
		if pa.Size() != 103 {
			t.Errorf("size = %d", pa.Size())
		}
		if pa.Domain() != domain.NewRange1D(0, 103) {
			t.Errorf("domain = %v", pa.Domain())
		}
		// Every location owns one balanced block by default.
		if got := pa.LocationManager().NumBContainers(); got != 1 {
			t.Errorf("local bContainers = %d, want 1", got)
		}
		// Global size equals the sum of local sizes.
		if got := pa.GlobalSize(); got != 103 {
			t.Errorf("global size = %d", got)
		}
		if pa.GlobalEmpty() {
			t.Error("non-empty array reported empty")
		}
		loc.Fence()
	})
}

func TestArraySetGetAllIndices(t *testing.T) {
	const n = 200
	run(4, func(loc *runtime.Location) {
		pa := New[int64](loc, n)
		loc.Barrier()
		// Location 0 writes every element (most writes are remote).
		if loc.ID() == 0 {
			for i := int64(0); i < n; i++ {
				pa.Set(i, i*10)
			}
		}
		loc.Fence()
		// Every location reads every element.
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != i*10 {
				t.Errorf("loc %d: Get(%d) = %d, want %d", loc.ID(), i, got, i*10)
				return
			}
		}
		loc.Fence()
	})
}

func TestArraySplitPhaseGet(t *testing.T) {
	const n = 64
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, n)
		loc.Barrier()
		// Each location writes its own block, then split-phase reads the
		// whole array, overlapping the requests.
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				pa.Set(i, int(i)+1)
			}
		}
		loc.Fence()
		futs := make([]*runtime.FutureOf[int], n)
		for i := int64(0); i < n; i++ {
			futs[i] = pa.GetSplit(i)
		}
		for i, f := range futs {
			if got := f.Get(); got != i+1 {
				t.Errorf("split get(%d) = %d, want %d", i, got, i+1)
			}
		}
		loc.Fence()
	})
}

func TestArrayApplySetApplyGet(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		pa := New[int](loc, 30)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 30; i++ {
				pa.Set(i, 1)
			}
		}
		loc.Fence()
		// All locations increment every element once.
		for i := int64(0); i < 30; i++ {
			pa.ApplySet(i, func(x int) int { return x + 1 })
		}
		loc.Fence()
		for i := int64(0); i < 30; i++ {
			want := 1 + loc.NumLocations()
			if got := pa.Get(i); got != want {
				t.Errorf("element %d = %d, want %d", i, got, want)
				return
			}
		}
		if got := pa.ApplyGet(5, func(x int) any { return x * 100 }); got != 400 {
			t.Errorf("ApplyGet = %v, want 400", got)
		}
		if pa.Get(5) != 4 {
			t.Error("ApplyGet must not modify the element")
		}
		loc.Fence()
	})
}

func TestArrayMCMSameElementOrdering(t *testing.T) {
	// Paper Chapter VII: an async write followed by a sync read of the
	// same element from the same location must observe the write, with no
	// fence in between.
	run(2, func(loc *runtime.Location) {
		pa := New[int](loc, 8)
		loc.Barrier()
		if loc.ID() == 0 {
			// Index 7 lives on location 1 (remote).
			pa.Set(7, 11)
			if got := pa.Get(7); got != 11 {
				t.Errorf("read after write returned %d, want 11", got)
			}
			pa.Set(7, 22)
			pa.Set(7, 33)
			if got := pa.Get(7); got != 33 {
				t.Errorf("read after two writes returned %d, want 33", got)
			}
		}
		loc.Fence()
	})
}

func TestArrayIsLocalAndLookup(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, 100)
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				if !pa.IsLocal(i) {
					t.Errorf("index %d should be local to %d", i, loc.ID())
				}
				if pa.Lookup(i) != loc.ID() {
					t.Errorf("lookup(%d) = %d, want %d", i, pa.Lookup(i), loc.ID())
				}
			}
		}
		// Count of local indices over all locations must equal the size.
		var local int64
		for i := int64(0); i < 100; i++ {
			if pa.IsLocal(i) {
				local++
			}
		}
		if total := runtime.AllReduceSum(loc, local); total != 100 {
			t.Errorf("total local indices = %d, want 100", total)
		}
		loc.Fence()
	})
}

func TestArrayCustomPartitions(t *testing.T) {
	const n = 60
	run(4, func(loc *runtime.Location) {
		dom := domain.NewRange1D(0, n)
		// Blocked partition with block size 7 and a cyclic mapper.
		part := partition.NewBlocked(dom, 7)
		mapper := partition.NewCyclicMapper(part.NumSubdomains(), loc.NumLocations())
		pa := New[int](loc, n, WithPartition(part), WithMapper(mapper))
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < n; i++ {
				pa.Set(i, int(i))
			}
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if pa.Get(i) != int(i) {
				t.Errorf("blocked/cyclic: element %d corrupted", i)
				return
			}
		}
		// Every location should own roughly numSub/P blocks.
		nLocal := pa.LocationManager().NumBContainers()
		if nLocal == 0 && loc.ID() < part.NumSubdomains() {
			t.Errorf("location %d owns no blocks", loc.ID())
		}
		loc.Fence()
	})
}

func TestArrayExplicitPartition(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		dom := domain.NewRange1D(0, 10)
		part, err := partition.NewExplicit(dom, []int64{3, 4, 3})
		if err != nil {
			t.Fatal(err)
		}
		pa := New[string](loc, 10, WithPartition(part))
		loc.Barrier()
		if loc.ID() == 1 {
			for i := int64(0); i < 10; i++ {
				pa.Set(i, string(rune('a'+i)))
			}
		}
		loc.Fence()
		if got := pa.Get(9); got != "j" {
			t.Errorf("Get(9) = %q", got)
		}
		loc.Fence()
	})
}

func TestArrayRangeAndUpdateLocal(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, 40)
		pa.UpdateLocal(func(gid int64, _ int) int { return int(gid) * 2 })
		loc.Fence()
		var count int64
		pa.RangeLocal(func(gid int64, val int) bool {
			if val != int(gid)*2 {
				t.Errorf("local element %d = %d", gid, val)
			}
			count++
			return true
		})
		if total := runtime.AllReduceSum(loc, count); total != 40 {
			t.Errorf("visited %d elements in total, want 40", total)
		}
		// Cross-check through the global interface.
		if loc.ID() == 0 {
			if pa.Get(39) != 78 {
				t.Errorf("Get(39) = %d, want 78", pa.Get(39))
			}
		}
		loc.Fence()
	})
}

func TestArrayMemorySize(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		pa := New[int64](loc, 1000)
		mu := pa.MemorySize()
		if mu.Data != 8000 {
			t.Errorf("data bytes = %d, want 8000", mu.Data)
		}
		if mu.Metadata <= 0 {
			t.Errorf("metadata bytes = %d", mu.Metadata)
		}
		if mu.Total() != mu.Data+mu.Metadata {
			t.Error("total mismatch")
		}
		if mu.String() == "" {
			t.Error("empty usage string")
		}
		loc.Fence()
	})
}

func TestArrayRedistribute(t *testing.T) {
	const n = 120
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, n)
		loc.Barrier()
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				pa.Set(i, int(i)+7)
			}
		}
		loc.Fence()
		// Redistribute to a block-size-5 partition mapped cyclically.
		part := partition.NewBlocked(domain.NewRange1D(0, n), 5)
		mapper := partition.NewCyclicMapper(part.NumSubdomains(), loc.NumLocations())
		pa.Redistribute(part, mapper)
		// All data survives under the new distribution.
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != int(i)+7 {
				t.Errorf("after redistribute: element %d = %d, want %d", i, got, int(i)+7)
				return
			}
		}
		// The new distribution is actually in effect.
		if pa.Partition().NumSubdomains() != part.NumSubdomains() {
			t.Error("partition not replaced")
		}
		if got := pa.LocationManager().NumBContainers(); got != len(mapper.LocalBCIDs(loc.ID())) {
			t.Errorf("local bContainers = %d, want %d", got, len(mapper.LocalBCIDs(loc.ID())))
		}
		loc.Fence()
		// And back to balanced.
		pa.Rebalance()
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != int(i)+7 {
				t.Errorf("after rebalance: element %d = %d", i, got)
				return
			}
		}
		if pa.LocationManager().NumBContainers() != 1 {
			t.Error("rebalance should leave one block per location")
		}
		loc.Fence()
	})
}

func TestArraySequentialConsistencyTraits(t *testing.T) {
	// Under the Sequential model asynchronous Set degrades to synchronous
	// execution: after Set returns the value is immediately visible from
	// any location without a fence.
	run(3, func(loc *runtime.Location) {
		pa := New[int](loc, 12, WithTraits(core.Traits{Locking: core.PolicyPerBContainer, Consistency: core.Sequential}))
		loc.Barrier()
		if loc.ID() == 2 {
			for i := int64(0); i < 12; i++ {
				pa.Set(i, 5)
			}
			// No fence: reads from the writing location must see the data
			// because writes completed synchronously.
			for i := int64(0); i < 12; i++ {
				if pa.Get(i) != 5 {
					t.Errorf("sequential model: element %d not visible", i)
				}
			}
		}
		loc.Fence()
	})
}

func TestArrayNoLockingTrait(t *testing.T) {
	// PolicyNone installs the no-op thread-safety manager; with disjoint
	// per-location writes this is safe and everything still works.
	run(2, func(loc *runtime.Location) {
		pa := New[int](loc, 20, WithTraits(core.Traits{Locking: core.PolicyNone}))
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				pa.Set(i, 3)
			}
		}
		loc.Fence()
		if loc.ID() == 0 && pa.Get(19) != 3 {
			t.Error("value lost under no-locking traits")
		}
		loc.Fence()
	})
}

func TestArrayConcurrentRemoteWritesAreAtomic(t *testing.T) {
	// Many locations increment the same element concurrently via
	// ApplySet.  The per-bContainer locks plus per-location RMI servers
	// make each increment atomic, so none may be lost.
	const perLoc = 200
	run(4, func(loc *runtime.Location) {
		pa := New[int64](loc, 4)
		loc.Barrier()
		for k := 0; k < perLoc; k++ {
			pa.ApplySet(0, func(x int64) int64 { return x + 1 })
		}
		loc.Fence()
		if got := pa.Get(0); got != 4*perLoc {
			t.Errorf("lost updates: element 0 = %d, want %d", got, 4*perLoc)
		}
		loc.Fence()
	})
}

func TestArrayLocalVsRemoteCounting(t *testing.T) {
	// Local accesses must not generate remote RMIs: the shared-object view
	// resolves them in place (the local/remote asymmetry behind Fig. 31).
	run(2, func(loc *runtime.Location) {
		pa := New[int](loc, 100)
		loc.Barrier()
		before := loc.RemoteRMIs()
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				pa.Set(i, 1)
			}
		}
		if loc.RemoteRMIs() != before {
			t.Errorf("local writes generated %d remote RMIs", loc.RemoteRMIs()-before)
		}
		loc.Fence()
	})
}

func TestArraySingleLocation(t *testing.T) {
	// Degenerate machine with one location: everything is local.
	run(1, func(loc *runtime.Location) {
		pa := New[int](loc, 10)
		for i := int64(0); i < 10; i++ {
			pa.Set(i, int(i))
		}
		loc.Fence()
		for i := int64(0); i < 10; i++ {
			if pa.Get(i) != int(i) {
				t.Errorf("element %d wrong", i)
			}
		}
		if pa.GlobalSize() != 10 {
			t.Error("global size wrong")
		}
	})
}

func TestArrayMoreLocationsThanElements(t *testing.T) {
	run(8, func(loc *runtime.Location) {
		pa := New[int](loc, 3)
		loc.Barrier()
		if loc.ID() == 7 {
			for i := int64(0); i < 3; i++ {
				pa.Set(i, 9)
			}
		}
		loc.Fence()
		for i := int64(0); i < 3; i++ {
			if pa.Get(i) != 9 {
				t.Errorf("element %d wrong", i)
			}
		}
		if pa.GlobalSize() != 3 {
			t.Error("global size wrong")
		}
		loc.Fence()
	})
}

func TestTwoArraysCoexist(t *testing.T) {
	// Two containers constructed in the same SPMD order get distinct
	// handles and do not interfere.
	run(2, func(loc *runtime.Location) {
		a := New[int](loc, 10)
		b := New[int](loc, 10)
		loc.Barrier()
		if loc.ID() == 0 {
			for i := int64(0); i < 10; i++ {
				a.Set(i, 1)
				b.Set(i, 2)
			}
		}
		loc.Fence()
		if a.Get(9) != 1 || b.Get(9) != 2 {
			t.Errorf("containers interfered: a=%d b=%d", a.Get(9), b.Get(9))
		}
		loc.Fence()
	})
}

func TestArrayDestroy(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		pa := New[int](loc, 10)
		loc.Fence()
		pa.Destroy()
		loc.Fence()
		// Construct another container afterwards; handles keep advancing
		// and nothing panics.
		pb := New[int](loc, 5)
		loc.Barrier()
		if loc.ID() == 1 {
			pb.Set(0, 42)
		}
		loc.Fence()
		if pb.Get(0) != 42 {
			t.Error("second container broken after destroying the first")
		}
		loc.Fence()
	})
}

func TestArrayStressManyWritersOneReader(t *testing.T) {
	// A denser mixed workload to exercise aggregation, forwarding-free
	// resolution and the locking managers together.
	const n = 512
	var writes atomic.Int64
	run(4, func(loc *runtime.Location) {
		pa := New[int64](loc, n)
		loc.Barrier()
		r := loc.Rand()
		for k := 0; k < 2000; k++ {
			i := int64(r.Intn(n))
			pa.ApplySet(i, func(x int64) int64 { return x + 1 })
			writes.Add(1)
		}
		loc.Fence()
		var local int64
		pa.RangeLocal(func(_ int64, v int64) bool { local += v; return true })
		total := runtime.AllReduceSum(loc, local)
		if total != writes.Load() {
			t.Errorf("sum of elements = %d, want %d (no update may be lost)", total, writes.Load())
		}
		loc.Fence()
	})
}

// TestArrayOutOfDomainFailsFast is the 1-D analogue of the pMatrix
// regression test: the closed-form partitions (Balanced here) used to
// return Forward(0) for out-of-domain indices, so an out-of-bounds access
// silently routed to sub-domain 0 — self-forwarding from its owner, or
// blowing up on the remote server goroutine from anywhere else.  Resolution
// is sender-side, so every location must now observe a clear out-of-domain
// panic on its own goroutine, and in-domain traffic must keep working after
// the recovered panic.
func TestArrayOutOfDomainFailsFast(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		a := New[int](loc, 40)
		expectPanic := func(name string, fn func()) {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("loc %d: %s outside the domain did not panic", loc.ID(), name)
					return
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "outside") {
					t.Errorf("loc %d: %s panicked with %q, want a clear out-of-domain message", loc.ID(), name, msg)
				}
			}()
			fn()
		}
		expectPanic("Get", func() { a.Get(40) })
		expectPanic("Set", func() { a.Set(-1, 1) })
		expectPanic("ApplySet", func() { a.ApplySet(1<<40, func(x int) int { return x }) })
		expectPanic("GetBulk", func() { a.GetBulk([]int64{0, 40}) })
		a.Set(int64(loc.ID()), 7+loc.ID())
		loc.Fence()
		if got := a.Get(int64(loc.ID())); got != 7+loc.ID() {
			t.Errorf("in-domain access after panic = %d", got)
		}
		loc.Fence()
	})
}
