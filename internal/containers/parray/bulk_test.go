package parray

import (
	"testing"

	"repro/internal/runtime"
)

// TestBulkEquivalence is the property test for the bulk element methods:
// SetBulk followed by a fence must leave the container in exactly the state
// the elementwise Set loop produces, for mixed local/remote, empty and
// all-local batches; GetBulk must agree with the Get loop.
func TestBulkEquivalence(t *testing.T) {
	const n = int64(4 * 64)
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		bulk := New[int64](loc, n)
		elem := New[int64](loc, n)

		// Mixed batch: every location writes a strided set of indices
		// spanning every other location's blocks.
		var idxs []int64
		var vals []int64
		for i := int64(loc.ID()); i < n; i += int64(loc.NumLocations()) {
			idxs = append(idxs, i)
			vals = append(vals, 1000*int64(loc.ID())+i)
		}
		bulk.SetBulk(idxs, vals)
		for k := range idxs {
			elem.Set(idxs[k], vals[k])
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if got, want := bulk.Get(i), elem.Get(i); got != want {
				t.Errorf("index %d: bulk=%d elementwise=%d", i, got, want)
			}
		}
		loc.Fence()

		// GetBulk agrees with the Get loop (indices deliberately unsorted
		// and with duplicates).
		probe := []int64{n - 1, 0, 3, 3, n / 2}
		got := bulk.GetBulk(probe)
		for k, i := range probe {
			if want := bulk.Get(i); got[k] != want {
				t.Errorf("GetBulk[%d] (index %d) = %d, want %d", k, i, got[k], want)
			}
		}

		// Empty batch: a no-op.
		bulk.SetBulk(nil, nil)
		if out := bulk.GetBulk(nil); len(out) != 0 {
			t.Errorf("GetBulk(nil) returned %d values", len(out))
		}
		loc.Fence()

		// ApplyBulk equals the ApplySet loop.
		bulk.ApplyBulk(idxs, func(x int64) int64 { return x + 1 })
		for _, i := range idxs {
			elem.ApplySet(i, func(x int64) int64 { return x + 1 })
		}
		loc.Fence()
		for i := int64(0); i < n; i++ {
			if got, want := bulk.Get(i), elem.Get(i); got != want {
				t.Errorf("after apply, index %d: bulk=%d elementwise=%d", i, got, want)
			}
		}
		loc.Fence()
	})
}

// TestBulkAllLocalSendsNoMessages pins the local fast path: a batch that
// resolves entirely to the calling location must not touch the interconnect.
func TestBulkAllLocalSendsNoMessages(t *testing.T) {
	const n = int64(4 * 32)
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	var before, after runtime.Stats
	m.Execute(func(loc *runtime.Location) {
		a := New[int64](loc, n)
		doms := a.LocalSubdomains()
		loc.Fence()
		if loc.ID() == 0 {
			before = m.Stats()
		}
		loc.Barrier()
		var idxs, vals []int64
		for _, d := range doms {
			for i := d.Lo; i < d.Hi; i++ {
				idxs = append(idxs, i)
				vals = append(vals, i*2)
			}
		}
		a.SetBulk(idxs, vals)
		if got := a.GetBulk(idxs); len(got) > 0 && got[0] != idxs[0]*2 {
			t.Errorf("local bulk read back %d, want %d", got[0], idxs[0]*2)
		}
		loc.Barrier()
		if loc.ID() == 0 {
			after = m.Stats()
		}
		loc.Fence()
	})
	if d := after.MessagesSent - before.MessagesSent; d != 0 {
		t.Errorf("all-local bulk batch sent %d messages, want 0", d)
	}
	if d := after.BytesSimulated - before.BytesSimulated; d != 0 {
		t.Errorf("all-local bulk batch accounted %d bytes, want 0", d)
	}
}

// TestBulkMessageReduction pins the acceptance target of the bulk overhaul:
// for the same remote element traffic, the bulk path must send at least 10x
// fewer physical messages than the per-element path at the default
// aggregation factor.
func TestBulkMessageReduction(t *testing.T) {
	const perLoc = int64(2000)
	run := func(bulk bool) runtime.Stats {
		p := 4
		n := perLoc * int64(p)
		m := runtime.NewMachine(p, runtime.DefaultConfig())
		m.Execute(func(loc *runtime.Location) {
			a := New[int64](loc, n)
			next := (loc.ID() + 1) % loc.NumLocations()
			base := int64(next) * perLoc
			if bulk {
				idxs := make([]int64, 0, perLoc)
				vals := make([]int64, 0, perLoc)
				for k := int64(0); k < perLoc; k++ {
					idxs = append(idxs, base+k)
					vals = append(vals, k)
				}
				a.SetBulk(idxs, vals)
			} else {
				for k := int64(0); k < perLoc; k++ {
					a.Set(base+k, k)
				}
			}
			loc.Fence()
		})
		return m.Stats()
	}
	elem := run(false)
	bulk := run(true)
	if bulk.MessagesSent*10 > elem.MessagesSent {
		t.Errorf("bulk sent %d messages vs %d elementwise; want >= 10x reduction",
			bulk.MessagesSent, elem.MessagesSent)
	}
}
