package parray

import "unsafe"

// unsafeElemSize reports the in-memory size of T, used only for simulated
// marshalling statistics when elements migrate between locations.
func unsafeElemSize[T any]() uintptr {
	var t T
	return unsafe.Sizeof(t)
}
