// Package parray implements the STAPL pArray (Chapter IX): the parallel
// counterpart of a fixed-size array, distributed across locations and
// globally addressable by index.
//
// A pArray is a static, indexed pContainer: its size is fixed at
// construction, which lets address translation use closed-form partitions
// (balanced, blocked, block-cyclic, explicit).  Element access is provided
// in the three flavours the paper evaluates: asynchronous Set/ApplySet,
// synchronous Get/ApplyGet and split-phase GetSplit.
package parray

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Array is the per-location representative of a pArray of element type T.
// All representatives together form one shared object: any location may
// read or write any index.
type Array[T any] struct {
	core.Container[int64, *bcontainer.Array[T]]

	dom    domain.Range1D
	part   partition.Indexed
	mapper partition.Mapper

	// ops is the registered (self-decoding) element operation set for T, or
	// nil when T has no typed wire codec and element methods use closures.
	ops *core.ElemOps[int64, *bcontainer.Array[T], T]
}

// options collects constructor customisations.
type options struct {
	part   partition.Indexed
	mapper partition.Mapper
	traits core.Traits
	hasTr  bool
}

// Option customises pArray construction.
type Option func(*options)

// WithPartition selects the index partition (default: balanced, one
// sub-domain per location).
func WithPartition(p partition.Indexed) Option { return func(o *options) { o.part = p } }

// WithMapper selects the sub-domain → location mapper (default: blocked).
func WithMapper(m partition.Mapper) Option { return func(o *options) { o.mapper = m } }

// WithTraits overrides the default traits (per-bContainer locking, relaxed
// consistency).
func WithTraits(t core.Traits) Option { return func(o *options) { o.traits = t; o.hasTr = true } }

// New constructs a pArray of n elements.  It is a collective operation:
// every location must call it in the same construction order, passing its
// own Location.
func New[T any](loc *runtime.Location, n int64, opts ...Option) *Array[T] {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	dom := domain.NewRange1D(0, n)
	if o.part == nil {
		o.part = partition.NewBalanced(dom, loc.NumLocations())
	}
	if o.mapper == nil {
		o.mapper = partition.NewBlockedMapper(o.part.NumSubdomains(), loc.NumLocations())
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	a := &Array[T]{dom: dom, part: o.part, mapper: o.mapper, ops: elemOpsFor[T]()}
	a.InitContainer(loc, core.IndexedResolver{Partition: o.part, Mapper: o.mapper}, o.traits)
	a.allocateLocal()
	// Constructors are collective: no location may issue element methods
	// before every representative is registered and its storage allocated.
	loc.Barrier()
	return a
}

// allocateLocal creates the base containers for the sub-domains mapped to
// this location.
func (a *Array[T]) allocateLocal() {
	for _, b := range a.mapper.LocalBCIDs(a.Location().ID()) {
		a.LocationManager().Add(bcontainer.NewArray[T](b, a.part.SubDomain(b)))
	}
}

// Size returns the number of elements.  The pArray is static, so no
// communication is needed.
func (a *Array[T]) Size() int64 { return a.dom.Size() }

// Domain returns the index domain [0, Size()).
func (a *Array[T]) Domain() domain.Range1D { return a.dom }

// Partition returns the index partition in use.
func (a *Array[T]) Partition() partition.Indexed { return a.part }

// Mapper returns the sub-domain mapper in use.
func (a *Array[T]) Mapper() partition.Mapper { return a.mapper }

// Set stores val at index i.  It is asynchronous: completion is guaranteed
// by the next Fence, or by a later Get/GetSplit of the same index from this
// location (the container's relaxed memory-consistency model).
func (a *Array[T]) Set(i int64, val T) {
	if a.ops != nil {
		a.ops.Set(&a.Container, i, val, runtime.PayloadBytes(val))
		return
	}
	a.InvokeSized(i, core.Write, runtime.PayloadBytes(val), func(_ *runtime.Location, bc *bcontainer.Array[T]) { bc.Set(i, val) })
}

// Get returns the element at index i (synchronous).
func (a *Array[T]) Get(i int64) T {
	if a.ops != nil {
		return a.ops.Get(&a.Container, i)
	}
	v := a.InvokeRet(i, core.Read, func(_ *runtime.Location, bc *bcontainer.Array[T]) any { return bc.Get(i) })
	return v.(T)
}

// GetSplit starts a split-phase read of index i and returns a future for
// its value (the paper's split_phase_get_element / pc_future).
func (a *Array[T]) GetSplit(i int64) *runtime.FutureOf[T] {
	if a.ops != nil {
		return runtime.NewFutureOf[T](a.ops.GetSplit(&a.Container, i))
	}
	f := a.InvokeSplit(i, core.Read, func(_ *runtime.Location, bc *bcontainer.Array[T]) any { return bc.Get(i) })
	return runtime.NewFutureOf[T](f)
}

// ApplySet applies fn to the element at index i in place, asynchronously
// (the paper's apply_set).
func (a *Array[T]) ApplySet(i int64, fn func(T) T) {
	a.Invoke(i, core.Write, func(_ *runtime.Location, bc *bcontainer.Array[T]) { bc.Apply(i, fn) })
}

// ApplyGet applies fn to the element at index i and returns fn's result,
// synchronously (the paper's apply_get).
func (a *Array[T]) ApplyGet(i int64, fn func(T) any) any {
	return a.InvokeRet(i, core.Read, func(_ *runtime.Location, bc *bcontainer.Array[T]) any {
		return bc.ApplyGet(i, fn)
	})
}

// SetBulk stores vals[k] at index idxs[k] for every k, asynchronously (like
// Set, completion is guaranteed by the next Fence).  The whole batch is
// resolved once, grouped by owning location and shipped as one sized RMI per
// destination, so a remote-heavy batch costs O(destinations) messages
// instead of O(len(idxs)) request descriptors.
//
// SetBulk retains both slices until the operations execute: callers hand
// over ownership and must not mutate them before the next Fence (unlike Set,
// which captures its value).
func (a *Array[T]) SetBulk(idxs []int64, vals []T) {
	if len(idxs) != len(vals) {
		panic("parray: SetBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 8 + runtime.PayloadBytes(vals[0]) // index + value
	if a.ops != nil {
		a.ops.SetBulk(&a.Container, idxs, vals, bytesPerOp)
		return
	}
	a.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.Array[T], k int) {
		bc.Set(idxs[k], vals[k])
	})
}

// GetBulk returns the elements at the given indices, in order (synchronous).
// One request and one response message per owning location, regardless of
// batch size.
func (a *Array[T]) GetBulk(idxs []int64) []T {
	out := make([]T, len(idxs))
	if a.ops != nil {
		a.ops.GetBulk(&a.Container, idxs, out, 8)
		return out
	}
	a.InvokeBulkSync(idxs, core.Read, 8, func(_ *runtime.Location, bc *bcontainer.Array[T], k int) {
		out[k] = bc.Get(idxs[k])
	})
	return out
}

// ApplyBulk applies fn to every element named by idxs in place,
// asynchronously (the bulk counterpart of ApplySet).  The index slice is
// retained until the operations execute; do not mutate it before the next
// Fence.
func (a *Array[T]) ApplyBulk(idxs []int64, fn func(T) T) {
	a.InvokeBulk(idxs, core.Write, 8, func(_ *runtime.Location, bc *bcontainer.Array[T], k int) {
		bc.Apply(idxs[k], fn)
	})
}

// LocalSubdomains returns the index ranges stored on this location, in BCID
// order.  Algorithms use it to build native views that access local data
// without communication.
func (a *Array[T]) LocalSubdomains() []domain.Range1D {
	ids := a.LocationManager().BCIDs()
	out := make([]domain.Range1D, len(ids))
	for i, id := range ids {
		out[i] = a.part.SubDomain(id)
	}
	return out
}

// LocalSegment returns the raw storage backing the global index range
// [r.Lo, r.Hi) when one local base container holds it entirely, and
// ok=false otherwise.  Native views hand the segment to pAlgorithms so a
// coarsened local chunk is walked at raw-slice speed; callers must only
// request ranges inside their own work decomposition and separate phases
// touching the same elements with fences (the bracket-free discipline of
// the paper's native views).
func (a *Array[T]) LocalSegment(r domain.Range1D) ([]T, bool) {
	if r.Empty() {
		return nil, false
	}
	for _, id := range a.LocationManager().BCIDs() {
		d := a.part.SubDomain(id)
		if r.Lo >= d.Lo && r.Hi <= d.Hi {
			bc, ok := a.LocationManager().Get(id)
			if !ok {
				return nil, false
			}
			s := bc.Slice()
			return s[r.Lo-d.Lo : r.Hi-d.Lo], true
		}
	}
	return nil, false
}

// RangeLocal applies fn to every locally stored (index, value) pair in index
// order within each base container, under the read bracket of the
// thread-safety manager.
func (a *Array[T]) RangeLocal(fn func(gid int64, val T) bool) {
	a.ForEachLocalBC(core.Read, func(bc *bcontainer.Array[T]) {
		bc.Range(fn)
	})
}

// UpdateLocal replaces every locally stored element with the value fn
// returns for it, under the write bracket of the thread-safety manager.
func (a *Array[T]) UpdateLocal(fn func(gid int64, val T) T) {
	a.ForEachLocalBC(core.Write, func(bc *bcontainer.Array[T]) {
		bc.Update(fn)
	})
}

// MemorySize returns the container-wide data/metadata footprint.  It is a
// collective operation (Tables XXII/XXIII).
func (a *Array[T]) MemorySize() core.MemoryUsage {
	meta := partition.MemoryBytes(a.mapper) + 48 // partition descriptor
	return a.GlobalMemory(meta)
}
