package parray

import (
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// redistState is the per-location staging area used while a redistribution
// is in flight: the freshly allocated base containers for the new partition,
// receiving elements from their old owners.
type redistState[T any] struct {
	mu      sync.Mutex
	staging map[partition.BCID]*bcontainer.Array[T]
}

// migrator is the handle-addressable object that receives migrated elements
// during redistribution.  The pArray registers one per redistribution so
// that element transfers are ordinary RMIs on the simulated interconnect
// (the paper ships marshalled bContainer fragments the same way).
type migrator[T any] struct {
	state *redistState[T]
}

func (m *migrator[T]) place(b partition.BCID, gid int64, val T) {
	m.state.mu.Lock()
	m.state.staging[b].Set(gid, val)
	m.state.mu.Unlock()
}

// Redistribute reorganises the pArray's data according to a new partition
// and mapper (Chapter V, Section G).  It is a collective operation: every
// location calls it with identical arguments.  Elements that change owner
// are shipped with asynchronous RMIs; elements that stay local are copied
// directly, which is what makes incremental repartitions (e.g. neighbouring
// block moves) cheap.
func (a *Array[T]) Redistribute(newPart partition.Indexed, newMapper partition.Mapper) {
	loc := a.Location()
	self := loc.ID()

	// Phase 1: allocate the new local base containers and register the
	// migration target.  Registration is collective and SPMD-ordered.
	state := &redistState[T]{staging: make(map[partition.BCID]*bcontainer.Array[T])}
	newLocal := newMapper.LocalBCIDs(self)
	for _, b := range newLocal {
		state.staging[b] = bcontainer.NewArray[T](b, newPart.SubDomain(b))
	}
	mig := &migrator[T]{state: state}
	h := loc.RegisterObject(mig)
	loc.Barrier()

	// Phase 2: route every locally stored element to its new owner.
	a.ForEachLocalBC(core.Read, func(bc *bcontainer.Array[T]) {
		bc.Range(func(gid int64, val T) bool {
			info := newPart.Find(gid)
			owner := newMapper.Map(info.BCID)
			if owner == self {
				mig.place(info.BCID, gid, val)
			} else {
				b := info.BCID
				loc.AsyncRMISized(owner, h, 8+int(unsafeElemSize[T]()), func(obj any, _ *runtime.Location) {
					obj.(*migrator[T]).place(b, gid, val)
				})
			}
			return true
		})
	})
	loc.Fence()

	// Phase 3: install the new distribution and storage, then retire the
	// migration object.
	lm := core.NewLocationManager[*bcontainer.Array[T]]()
	for _, b := range newLocal {
		lm.Add(state.staging[b])
	}
	a.ReplaceLocationManager(lm)
	a.SetResolver(core.IndexedResolver{Partition: newPart, Mapper: newMapper})
	a.part, a.mapper = newPart, newMapper
	loc.UnregisterObject(h)
	loc.Barrier()
}

// Rebalance redistributes the elements into a balanced partition with one
// sub-domain per location (the paper's rebalance() pattern).
func (a *Array[T]) Rebalance() {
	loc := a.Location()
	p := partition.NewBalanced(a.dom, loc.NumLocations())
	m := partition.NewBlockedMapper(p.NumSubdomains(), loc.NumLocations())
	a.Redistribute(p, m)
}
