package parray

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
)

// Redistribute reorganises the pArray's data according to a new partition
// and mapper (Chapter V, Section G).  It is a collective operation: every
// location calls it with identical arguments.  The element migration runs
// on the shared redistribution engine in package core: elements that change
// owner are shipped with asynchronous RMIs; elements that stay local are
// copied directly, which is what makes incremental repartitions (e.g.
// neighbouring block moves) cheap.
func (a *Array[T]) Redistribute(newPart partition.Indexed, newMapper partition.Mapper) {
	core.RedistributeIndexed[T](&a.Container, newPart, newMapper,
		func(b partition.BCID, dom domain.Range1D) *bcontainer.Array[T] {
			return bcontainer.NewArray[T](b, dom)
		},
		func(lm *core.LocationManager[*bcontainer.Array[T]]) {
			a.ReplaceLocationManager(lm)
			a.SetResolver(core.IndexedResolver{Partition: newPart, Mapper: newMapper})
			a.part, a.mapper = newPart, newMapper
		})
}

// Rebalance redistributes the elements into a balanced partition with one
// sub-domain per location (the paper's rebalance() pattern).  The pArray's
// domain is static, so the balanced proposal needs no load measurement —
// callers that want to rebalance only when it pays off measure with
// partition.CollectLoad and check ShouldRebalance first.
func (a *Array[T]) Rebalance() {
	n := a.Location().NumLocations()
	p := partition.NewBalanced(a.dom, n)
	a.Redistribute(p, partition.NewBlockedMapper(p.NumSubdomains(), n))
}
