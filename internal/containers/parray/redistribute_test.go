package parray

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestArrayRedistributeEmpty(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		pa := New[int](loc, 0)
		pa.Rebalance()
		if got := pa.GlobalSize(); got != 0 {
			t.Errorf("global size = %d, want 0", got)
		}
		loc.Fence()
	})
}

func TestArrayRedistributeSingleLocation(t *testing.T) {
	const n = 30
	run(1, func(loc *runtime.Location) {
		pa := New[int](loc, n)
		for i := int64(0); i < n; i++ {
			pa.Set(i, int(i)*2)
		}
		loc.Fence()
		part := partition.NewBlocked(domain.NewRange1D(0, n), 7)
		pa.Redistribute(part, partition.NewBlockedMapper(part.NumSubdomains(), 1))
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != int(i)*2 {
				t.Errorf("element %d = %d, want %d", i, got, int(i)*2)
				return
			}
		}
		loc.Fence()
	})
}

func TestArrayRedistributeIdentityNoTraffic(t *testing.T) {
	const n = 96
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		pa := New[int](loc, n)
		loc.Barrier()
		for _, d := range pa.LocalSubdomains() {
			for i := d.Lo; i < d.Hi; i++ {
				pa.Set(i, int(i)+1)
			}
		}
		loc.Fence()
		// An identity repartition keeps every element on its location:
		// the migration must not touch the interconnect at all.
		before := m.Stats().RMIsSent
		pa.Redistribute(pa.Partition(), pa.Mapper())
		after := m.Stats().RMIsSent
		if after != before {
			t.Errorf("identity repartition sent %d RMIs, want 0", after-before)
		}
		// Keep the verification reads out of the stats windows of the
		// other locations.
		loc.Barrier()
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != int(i)+1 {
				t.Errorf("element %d = %d, want %d", i, got, int(i)+1)
				return
			}
		}
		loc.Fence()
	})
}

func TestArraySkewRebalanceRoundTrip(t *testing.T) {
	const n = 200
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		skew, err := partition.NewExplicit(domain.NewRange1D(0, n), []int64{n - int64(p) + 1, 1, 1, 1})
		if err != nil {
			t.Fatalf("explicit partition: %v", err)
		}
		pa := New[int64](loc, n, WithPartition(skew), WithMapper(partition.NewBlockedMapper(p, p)))
		pa.UpdateLocal(func(gid, _ int64) int64 { return gid * 3 })
		loc.Fence()
		if f := partition.CollectLoad(loc, pa.LocalSize()).Imbalance(); f < 1.5 {
			t.Errorf("skewed start expected, imbalance = %.3f", f)
		}
		pa.Rebalance()
		if f := partition.CollectLoad(loc, pa.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		if got := pa.GlobalSize(); got != n {
			t.Errorf("global size = %d, want %d", got, n)
		}
		for i := int64(0); i < n; i++ {
			if got := pa.Get(i); got != i*3 {
				t.Errorf("element %d = %d, want %d", i, got, i*3)
				return
			}
		}
		loc.Fence()
	})
}
