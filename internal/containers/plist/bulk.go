package plist

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/runtime"
)

// Bulk element operations: the pList counterpart of the other families'
// SetBulk/GetBulk/ApplyBulk, built on core.InvokeBulk — the whole batch
// resolves under one metadata bracket, local groups execute under one data
// bracket, and each remote destination receives one sized RMI for its entire
// group.  Both address-translation modes are supported; in the directory
// mode, forwarded groups re-resolve per destination exactly like the
// per-element path.

// SetBulk stores vals[k] at gids[k] for every k, asynchronously.  Both
// slices are retained until the operations execute; callers hand over
// ownership and must not mutate them before the next Fence.
func (l *List[T]) SetBulk(gids []GID, vals []T) {
	if len(gids) != len(vals) {
		panic("plist: SetBulk gid/value length mismatch")
	}
	if len(gids) == 0 {
		return
	}
	bytesPerOp := 12 + runtime.PayloadBytes(vals[0]) // GID + value
	l.InvokeBulk(gids, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.List[T], k int) {
		bc.Set(gids[k].ID, vals[k])
	})
}

// GetBulk returns the elements named by gids, in order (synchronous).  It
// blocks until every element — local, remote and forwarded — has been read.
func (l *List[T]) GetBulk(gids []GID) []T {
	out := make([]T, len(gids))
	l.InvokeBulkSync(gids, core.Read, 12, func(_ *runtime.Location, bc *bcontainer.List[T], k int) {
		out[k] = bc.Get(gids[k].ID)
	})
	return out
}

// ApplyBulk applies fn to every element named by gids in place,
// asynchronously (the bulk counterpart of Apply).  The gid slice is retained
// until the operations execute; do not mutate it before the next Fence.
func (l *List[T]) ApplyBulk(gids []GID, fn func(T) T) {
	l.InvokeBulk(gids, core.Write, 12, func(_ *runtime.Location, bc *bcontainer.List[T], k int) {
		bc.Apply(gids[k].ID, fn)
	})
}
