package plist

import (
	"testing"

	"repro/internal/runtime"
)

// bulkEquivalence drives SetBulk/GetBulk/ApplyBulk against the element-wise
// loops on two lists built the same way, in the given mode.
func bulkEquivalence(t *testing.T, opts ...Option) {
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		bulk := New[int](loc, opts...)
		elem := New[int](loc, opts...)

		// Each location contributes a segment to both lists.
		const perLoc = 25
		bulkGIDs := make([]GID, perLoc)
		elemGIDs := make([]GID, perLoc)
		for i := 0; i < perLoc; i++ {
			bulkGIDs[i] = bulk.PushAnywhere(0)
			elemGIDs[i] = elem.PushAnywhere(0)
		}
		loc.Fence()
		// Every location writes the NEXT location's elements (remote batch).
		next := (loc.ID() + 1) % loc.NumLocations()
		bTargets := runtime.AllGatherT(loc, bulkGIDs)[next]
		eTargets := runtime.AllGatherT(loc, elemGIDs)[next]
		vals := make([]int, perLoc)
		for i := range vals {
			vals[i] = 100*next + i
		}
		bulk.SetBulk(bTargets, vals)
		for k := range eTargets {
			elem.Set(eTargets[k], vals[k])
		}
		loc.Fence()
		for k := range bulkGIDs {
			if got, want := bulk.Get(bulkGIDs[k]), elem.Get(elemGIDs[k]); got != want {
				t.Errorf("element %d: bulk=%d elementwise=%d", k, got, want)
			}
		}
		loc.Barrier()

		// GetBulk agrees with Get.
		got := bulk.GetBulk(bTargets)
		for k, g := range bTargets {
			if want := bulk.Get(g); got[k] != want {
				t.Errorf("GetBulk[%d] = %d, want %d", k, got[k], want)
			}
		}
		loc.Barrier()

		// ApplyBulk equals the elementwise Apply loop.
		bulk.ApplyBulk(bTargets, func(x int) int { return 2*x + 1 })
		for _, g := range eTargets {
			elem.Apply(g, func(x int) int { return 2*x + 1 })
		}
		loc.Fence()
		for k := range bulkGIDs {
			if got, want := bulk.Get(bulkGIDs[k]), elem.Get(elemGIDs[k]); got != want {
				t.Errorf("after apply, element %d: bulk=%d elementwise=%d", k, got, want)
			}
		}
		loc.Barrier()

		// Empty batch.
		bulk.SetBulk(nil, nil)
		bulk.ApplyBulk(nil, func(x int) int { return x })
		if out := bulk.GetBulk(nil); len(out) != 0 {
			t.Errorf("GetBulk(nil) returned %d values", len(out))
		}

		// All-local batch: one data bracket, no messages needed.
		localVals := make([]int, perLoc)
		for i := range localVals {
			localVals[i] = -i
		}
		bulk.SetBulk(bulkGIDs, localVals)
		for k := range elemGIDs {
			elem.Set(elemGIDs[k], localVals[k])
		}
		loc.Fence()
		for k := range bulkGIDs {
			if got, want := bulk.Get(bulkGIDs[k]), elem.Get(elemGIDs[k]); got != want {
				t.Errorf("after local batch, element %d: bulk=%d elementwise=%d", k, got, want)
			}
		}
		loc.Fence()
	})
}

func TestListBulkEquivalence(t *testing.T)          { bulkEquivalence(t) }
func TestListBulkEquivalenceDirectory(t *testing.T) { bulkEquivalence(t, WithDirectory()) }

func TestListBulkLengthMismatchPanics(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		l := New[int](loc)
		mustPanic(t, "length mismatch", func() { l.SetBulk(make([]GID, 2), make([]int, 1)) })
		loc.Fence()
	})
}
