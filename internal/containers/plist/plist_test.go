package plist

import (
	"testing"

	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestListGID(t *testing.T) {
	if InvalidGID.Valid() {
		t.Fatal("invalid GID reported valid")
	}
	g := GID{Loc: 2, ID: 7}
	if !g.Valid() || g.String() != "(2,7)" {
		t.Fatalf("GID basics wrong: %v", g)
	}
}

func TestListPushAnywhereAndSize(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		l := New[int](loc)
		const perLoc = 50
		for i := 0; i < perLoc; i++ {
			gid := l.PushAnywhere(loc.ID()*1000 + i)
			if int(gid.Loc) != loc.ID() {
				t.Errorf("push_anywhere placed element remotely: %v", gid)
			}
		}
		loc.Fence()
		if got := l.Size(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("size = %d, want %d", got, perLoc*loc.NumLocations())
		}
		// Local values match what this location inserted.
		vals := l.LocalValues()
		if len(vals) != perLoc || vals[0] != loc.ID()*1000 {
			t.Errorf("local values wrong: len=%d first=%d", len(vals), vals[0])
		}
		loc.Fence()
	})
}

func TestListPushFrontBackEnds(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		l := New[string](loc)
		loc.Barrier()
		if loc.ID() == 1 {
			l.PushFront("front")
			l.PushBack("back")
		}
		loc.Fence()
		// Front lives on location 0, back on the last location.
		if loc.ID() == 0 {
			vals := l.LocalValues()
			if len(vals) != 1 || vals[0] != "front" {
				t.Errorf("location 0 values = %v", vals)
			}
		}
		if loc.ID() == 2 {
			vals := l.LocalValues()
			if len(vals) != 1 || vals[0] != "back" {
				t.Errorf("last location values = %v", vals)
			}
		}
		if got := l.Size(); got != 2 {
			t.Errorf("size = %d", got)
		}
		loc.Fence()
	})
}

func TestListInsertEraseGetSet(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		l := New[int](loc)
		var a, b GID
		if loc.ID() == 0 {
			a = l.PushAnywhere(1)
			b = l.PushAnywhere(3)
			_ = b
			// Insert 2 before b, synchronously, getting its GID back.
			mid := l.Insert(b, 2)
			if !mid.Valid() {
				t.Error("insert returned invalid GID")
			}
			if got := l.Get(mid); got != 2 {
				t.Errorf("Get(mid) = %d", got)
			}
			vals := l.LocalValues()
			if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
				t.Errorf("local order = %v", vals)
			}
			l.Set(a, 10)
			l.Apply(a, func(x int) int { return x + 5 })
		}
		loc.Fence()
		if loc.ID() == 1 {
			// Remote read of location 0's element requires its GID; location 1
			// reads location 0's first element through Begin.
			first := l.Begin()
			if got := l.Get(first); got != 15 {
				t.Errorf("remote Get(first) = %d, want 15", got)
			}
			if f := l.GetSplit(first); f.Get() != 15 {
				t.Errorf("split get = %d", f.Get())
			}
		}
		loc.Fence()
		if loc.ID() == 0 {
			l.Erase(a)
		}
		loc.Fence()
		if got := l.Size(); got != 2 {
			t.Errorf("size after erase = %d", got)
		}
		loc.Fence()
	})
}

func TestListStableGIDsUnderConcurrentInserts(t *testing.T) {
	// Each location records GIDs of its own elements, then all locations
	// insert many more elements; the recorded GIDs must remain valid and
	// keep their values — the property that makes pList dynamic ops O(1).
	run(4, func(loc *runtime.Location) {
		l := New[int](loc)
		gids := make([]GID, 20)
		for i := range gids {
			gids[i] = l.PushAnywhere(loc.ID()*100 + i)
		}
		loc.Fence()
		for i := 0; i < 200; i++ {
			l.PushAnywhere(-1)
		}
		// Also insert remotely before the first recorded element of the
		// next location (wrap-around).
		next := (loc.ID() + 1) % loc.NumLocations()
		remote := GID{Loc: int32(next), ID: 0}
		l.InsertAsync(remote, -2)
		loc.Fence()
		for i, g := range gids {
			if got := l.Get(g); got != loc.ID()*100+i {
				t.Errorf("element %v changed value: %d", g, got)
			}
		}
		wantSize := int64(loc.NumLocations() * (20 + 200 + 1))
		if got := l.Size(); got != wantSize {
			t.Errorf("size = %d, want %d", got, wantSize)
		}
		loc.Fence()
	})
}

func TestListGlobalTraversal(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		l := New[int](loc)
		// Each location appends its id+1 elements locally.
		for i := 0; i <= loc.ID(); i++ {
			l.PushAnywhere(loc.ID())
		}
		loc.Fence()
		if loc.ID() == 0 {
			// Walk the global sequence: 1 element from loc 0, 2 from loc 1,
			// 3 from loc 2.
			var seen []int
			for g := l.Begin(); g.Valid(); g = l.Next(g) {
				seen = append(seen, l.Get(g))
			}
			want := []int{0, 1, 1, 2, 2, 2}
			if len(seen) != len(want) {
				t.Fatalf("traversal = %v", seen)
			}
			for i := range want {
				if seen[i] != want[i] {
					t.Fatalf("traversal = %v, want %v", seen, want)
				}
			}
		}
		loc.Fence()
	})
}

func TestListLocalFrontBackAndUpdate(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		l := New[int](loc)
		if l.LocalFront().Valid() || l.LocalBack().Valid() {
			t.Error("empty segment should have invalid front/back")
		}
		l.PushAnywhere(1)
		l.PushAnywhere(2)
		if !l.LocalFront().Valid() || !l.LocalBack().Valid() {
			t.Error("front/back should be valid after inserts")
		}
		if l.Get(l.LocalFront()) != 1 || l.Get(l.LocalBack()) != 2 {
			t.Error("front/back values wrong")
		}
		l.LocalUpdate(func(_ GID, v int) int { return v * 10 })
		sum := 0
		l.LocalRange(func(_ GID, v int) bool { sum += v; return true })
		if sum != 30 {
			t.Errorf("local sum = %d", sum)
		}
		loc.Fence()
		if l.MemorySize().Data <= 0 {
			t.Error("memory accounting wrong")
		}
		loc.Fence()
	})
}

func TestListEmptyBeginIsInvalid(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		l := New[int](loc)
		loc.Fence()
		if loc.ID() == 0 && l.Begin().Valid() {
			t.Error("Begin of empty list should be invalid")
		}
		loc.Fence()
	})
}
