package plist

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/runtime"
)

// mustPanic asserts that fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("expected panic containing %q", want)
			return
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Errorf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestListInvalidGIDFailsFast(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		plain := New[int](loc)
		backed := New[int](loc, WithDirectory())
		loc.Barrier()
		if loc.ID() == 0 {
			// Get(InvalidGID) used to return partition.Forward(0) and
			// ping-pong until the forward-hop limit panicked; now the
			// resolver fails fast with a clear error.
			mustPanic(t, "invalid GID", func() { plain.Get(InvalidGID) })
			mustPanic(t, "invalid GID", func() { backed.Get(InvalidGID) })
			mustPanic(t, "invalid GID", func() { plain.InsertAsync(GID{Loc: -3, ID: 1}, 9) })
		}
		loc.Barrier()
		// The fail-fast panic must not leak the metadata read bracket: a
		// later collective that takes the metadata write lock (rebalance
		// installs a new location manager) would deadlock if it did.
		backed.PushAnywhere(loc.ID())
		loc.Fence()
		backed.Rebalance()
		if got := backed.Size(); got != int64(loc.NumLocations()) {
			t.Errorf("size after post-recovery rebalance = %d", got)
		}
		loc.Fence()
	})
}

func TestListDirectoryModeBasicOps(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		if !l.DirectoryBacked() || l.Directory() == nil {
			t.Fatal("directory mode not active")
		}
		const perLoc = 20
		gids := make([]GID, perLoc)
		for i := range gids {
			gids[i] = l.PushAnywhere(loc.ID()*1000 + i)
		}
		loc.Fence()
		if got := l.Size(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("size = %d", got)
		}
		// Every location can read every other location's elements through
		// the directory (forwarding through the GID's home).
		all := runtime.AllGatherT(loc, gids)
		for owner, list := range all {
			for i, g := range list {
				if got := l.Get(g); got != owner*1000+i {
					t.Errorf("Get(%v) = %d, want %d", g, got, owner*1000+i)
				}
			}
		}
		loc.Barrier()
		// Remote mutation: every location bumps the first element of the
		// next location.
		next := all[(loc.ID()+1)%loc.NumLocations()]
		l.Apply(next[0], func(x int) int { return x + 7 })
		loc.Fence()
		if got := l.Get(gids[0]); got != loc.ID()*1000+7 {
			t.Errorf("after remote applies Get = %d", got)
		}
		loc.Barrier()
		// Insert before a remote element and erase it again.
		if loc.ID() == 0 {
			mid := l.Insert(next[1], -1)
			if !mid.Valid() {
				t.Error("insert returned invalid GID")
			}
			if got := l.Get(mid); got != -1 {
				t.Errorf("Get(inserted) = %d", got)
			}
			l.Erase(mid)
		}
		loc.Fence()
		if got := l.Size(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("size after insert+erase = %d", got)
		}
		loc.Fence()
	})
}

func TestListDirectoryModeEndsAndTraversal(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		l := New[string](loc, WithDirectory())
		loc.Barrier()
		if loc.ID() == 1 {
			l.PushFront("front")
			l.PushBack("back")
		}
		loc.Fence()
		if loc.ID() == 0 {
			if vals := l.LocalValues(); len(vals) != 1 || vals[0] != "front" {
				t.Errorf("location 0 values = %v", vals)
			}
		}
		if loc.ID() == 2 {
			if vals := l.LocalValues(); len(vals) != 1 || vals[0] != "back" {
				t.Errorf("last location values = %v", vals)
			}
		}
		loc.Barrier()
		// Global traversal crosses the segments in storage order.
		if loc.ID() == 2 {
			var seen []string
			for g := l.Begin(); g.Valid(); g = l.Next(g) {
				seen = append(seen, l.Get(g))
			}
			if len(seen) != 2 || seen[0] != "front" || seen[1] != "back" {
				t.Errorf("traversal = %v", seen)
			}
		}
		loc.Fence()
	})
}

func TestListMigrateElementsKeepsGIDs(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		const perLoc = 10
		gids := make([]GID, perLoc)
		for i := range gids {
			gids[i] = l.PushAnywhere(loc.ID()*100 + i)
		}
		loc.Fence()
		// Location 0 pulls the first half of location 3's elements to
		// location 1; everyone else requests nothing.
		all := runtime.AllGatherT(loc, gids)
		var moves []GID
		if loc.ID() == 0 {
			moves = all[3][:perLoc/2]
		}
		l.MigrateElements(moves, 1)
		if got := l.Size(); got != int64(perLoc*loc.NumLocations()) {
			t.Errorf("size after migration = %d", got)
		}
		if loc.ID() == 1 {
			if n := l.LocalSize(); n != perLoc+perLoc/2 {
				t.Errorf("destination holds %d elements, want %d", n, perLoc+perLoc/2)
			}
		}
		if loc.ID() == 3 {
			if n := l.LocalSize(); n != perLoc/2 {
				t.Errorf("source still holds %d elements, want %d", n, perLoc/2)
			}
		}
		loc.Barrier()
		// Every old GID still resolves to its value, from every location.
		for owner, list := range all {
			for i, g := range list {
				if got := l.Get(g); got != owner*100+i {
					t.Errorf("after migration Get(%v) = %d, want %d", g, got, owner*100+i)
				}
			}
		}
		loc.Fence()
	})
}

func TestListCacheInvalidationAfterMigration(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		var gids []GID
		if loc.ID() == 3 {
			for i := 0; i < 8; i++ {
				gids = append(gids, l.PushAnywhere(100+i))
			}
		}
		loc.Fence()
		all := runtime.AllGatherT(loc, gids)
		targets := all[3]
		// Warm every location's cache on the elements.
		for _, g := range targets {
			if got := l.Get(g); got < 100 {
				t.Errorf("warm-up Get(%v) = %d", g, got)
			}
		}
		loc.Fence()
		if loc.ID() != 3 {
			if hits, misses, _ := l.Directory().CacheStats(); hits+misses == 0 {
				t.Error("cache never consulted during warm-up")
			}
		}
		// Move the elements to location 0; warm cache entries naming
		// location 3 must not produce stale reads.
		var moves []GID
		if loc.ID() == 1 {
			moves = targets
		}
		l.MigrateElements(moves, 0)
		if loc.ID() == 0 {
			if n := l.LocalSize(); n != int64(len(targets)) {
				t.Errorf("destination holds %d elements", n)
			}
		}
		loc.Barrier()
		for i, g := range targets {
			if got := l.Get(g); got != 100+i {
				t.Errorf("stale read after migration: Get(%v) = %d, want %d", g, got, 100+i)
			}
		}
		loc.Fence()
		// The directory now names the new owner for every moved element.
		for _, g := range targets {
			if owner, ok := l.Directory().LookupOwner(g); !ok || owner != 0 {
				t.Errorf("directory entry for %v = %d,%v, want 0", g, owner, ok)
			}
		}
		loc.Fence()
	})
}

func TestListMigrateAllLocalAndEmpty(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		gid := l.PushAnywhere(loc.ID())
		loc.Fence()
		// All-local migration: destination == current owner.  No element
		// moves, no entry changes, everything still resolves.
		l.MigrateElements([]GID{gid}, loc.ID())
		if got := l.Get(gid); got != loc.ID() {
			t.Errorf("all-local migration lost element: %d", got)
		}
		// Empty request set on every location is a no-op round.
		l.MigrateElements(nil, 0)
		if got := l.Size(); got != int64(loc.NumLocations()) {
			t.Errorf("size after empty migration = %d", got)
		}
		loc.Fence()
	})
}

func TestListRebalanceSkewed(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		// Location 0 holds everything: maximal skew.
		const n = 120
		var gids []GID
		if loc.ID() == 0 {
			for i := 0; i < n; i++ {
				gids = append(gids, l.PushAnywhere(i))
			}
		}
		loc.Fence()
		before := partition.CollectLoad(loc, l.LocalSize())
		if before.Imbalance() < 3.9 {
			t.Errorf("skew not established: imbalance %.2f", before.Imbalance())
		}
		l.Rebalance()
		after := partition.CollectLoad(loc, l.LocalSize())
		if after.Imbalance() > 1.1 {
			t.Errorf("imbalance after rebalance = %.2fx, want <= 1.1x", after.Imbalance())
		}
		loc.Barrier()
		// Old GIDs keep resolving to their values from every location.
		all := runtime.AllGatherT(loc, gids)
		for i, g := range all[0] {
			if got := l.Get(g); got != i {
				t.Errorf("after rebalance Get(%v) = %d, want %d", g, got, i)
			}
		}
		loc.Fence()
	})
}

func TestListRebalanceEmptyAndRedistributeValidation(t *testing.T) {
	run(3, func(loc *runtime.Location) {
		l := New[int](loc, WithDirectory())
		loc.Fence()
		// Empty directory / empty list: a rebalance round is a no-op.
		l.Rebalance()
		if got := l.Size(); got != 0 {
			t.Errorf("size after empty rebalance = %d", got)
		}
		loc.Barrier()
		mustPanic(t, "target counts", func() { l.Redistribute([]int64{1, 0, 0}) })
		loc.Fence()
	})
}

func TestListEncodedModeRejectsMigration(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		l := New[int](loc)
		loc.Fence()
		mustPanic(t, "directory-backed", func() { l.Rebalance() })
		mustPanic(t, "directory-backed", func() { l.MigrateElements(nil, 0) })
		loc.Fence()
	})
}
