package plist

import (
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// Wire codec for pList GIDs.  Registering it typed makes the shared
// distributed directory's maintenance traffic (Publish / PublishBulk during
// push_anywhere and element migration) self-decoding, so directory-backed
// lists work across process boundaries.
var gidCodec = transport.RegisterTyped(transport.Register(transport.Codec[GID]{
	Name: "plist.gid",
	Encode: func(b *transport.Buffer, g GID) {
		b.PutVarint(int64(g.Loc))
		b.PutVarint(g.ID)
	},
	Decode: func(b *transport.Buffer) GID {
		return GID{Loc: int32(b.Varint()), ID: b.Varint()}
	},
}, GID{}, GID{Loc: 2, ID: 2<<gidShift | 7}, InvalidGID))

// Per-element-type cache of the list migration registration, mirroring the
// other families: one registration serves every pList at the same T; a T
// without a typed codec caches nil (closure fallback).
var (
	listMigMu  sync.Mutex
	listMigReg = map[reflect.Type]any{} // *core.MigrationOps[listElem[T]] per T
)

// listMigOpsFor returns the registered migration operation for listElem[T],
// or nil when T has no typed codec.
func listMigOpsFor[T any]() *core.MigrationOps[listElem[T]] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	listMigMu.Lock()
	defer listMigMu.Unlock()
	if v, ok := listMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.MigrationOps[listElem[T]])
	}
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		listMigReg[t] = nil
		return nil
	}
	o := core.RegisterMigrationOps("plist.elem["+codec.Name+"]",
		transport.Codec[listElem[T]]{
			Name: "plist.list-elem[" + codec.Name + "]",
			Encode: func(b *transport.Buffer, e listElem[T]) {
				b.PutVarint(e.id)
				codec.Encode(b, e.val)
			},
			Decode: func(b *transport.Buffer) listElem[T] {
				return listElem[T]{id: b.Varint(), val: codec.Decode(b)}
			},
		})
	listMigReg[t] = o
	return o
}
