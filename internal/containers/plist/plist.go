// Package plist implements the STAPL pList (Chapter X): a distributed
// doubly-linked sequence.  Unlike pVector, all dynamic operations
// (push_front/push_back/insert/erase and the parallel-friendly
// push_anywhere) run in constant time, because element identifiers are
// stable (location id + local node id) and never shift when other elements
// are inserted or removed.
//
// Two address-translation modes are supported:
//
//   - encoded (default): the storage location is embedded in the GID, so
//     resolution is O(1) with no directory — but elements can never move,
//     which rules out redistribution and load balancing;
//   - directory-backed (WithDirectory): GIDs carry only the element's birth
//     location and a counter, and the current storage location is recorded
//     in the shared distributed directory (core.Directory).  GIDs stay valid
//     when storage moves, unlocking MigrateElements / Redistribute /
//     Rebalance; repeat remote accesses skip the directory hop through the
//     per-location resolution cache.
package plist

import (
	"fmt"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// GID identifies one pList element.  In the encoded mode Loc is the location
// whose base container stores the element and ID the stable node identifier
// within that base container.  In the directory-backed mode Loc is the
// element's birth location (stable identity, not placement) and ID a
// globally unique identifier encoding birth location and counter; the
// current storage location is whatever the directory says.
type GID struct {
	Loc int32
	ID  int64
}

// InvalidGID is the reserved "no element" identifier.
var InvalidGID = GID{Loc: -1, ID: -1}

// Valid reports whether the GID refers to an element.
func (g GID) Valid() bool { return g.Loc >= 0 && g.ID >= 0 }

// String formats the GID for diagnostics.
func (g GID) String() string { return fmt.Sprintf("(%d,%d)", g.Loc, g.ID) }

// gidShift positions the birth location in the high bits of a
// directory-mode identifier (like pGraph's descriptor encoding).
const gidShift = 40

// checkValid fails fast on the reserved "no element" identifier: resolving
// it used to return partition.Forward(0) and ping-pong between locations
// until the forward-hop limit panicked far from the caller.
func checkValid(g GID) {
	if !g.Valid() {
		panic(fmt.Sprintf("plist: invalid GID %v does not address an element", g))
	}
}

// listResolver maps an encoded-mode GID to the base container on its home
// location: the location is embedded in the identifier, so resolution is
// O(1) with no directory.
type listResolver struct {
	mapper partition.Mapper
}

func (r listResolver) Find(g GID) partition.Info {
	checkValid(g)
	return partition.Found(partition.BCID(g.Loc))
}

func (r listResolver) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// listDirResolver resolves a directory-mode GID through the local base
// container first (under the data read bracket: resolution may race with
// local inserts), then the shared distributed directory — cache, then home.
type listDirResolver[T any] struct {
	l *List[T]
}

func (r listDirResolver[T]) Find(g GID) partition.Info {
	checkValid(g)
	self := r.l.Location().ID()
	b := partition.BCID(self)
	if bc, ok := r.l.LocationManager().Get(b); ok {
		r.l.ThreadSafety().DataAccessPre(b, core.Read)
		local := bc.Contains(g.ID)
		r.l.ThreadSafety().DataAccessPost(b, core.Read)
		if local {
			return partition.Found(b)
		}
	}
	return r.l.dir.Resolve(g)
}

func (r listDirResolver[T]) OwnerOf(b partition.BCID) int { return int(b) }

// List is the per-location representative of a pList of element type T.
type List[T any] struct {
	core.Container[GID, *bcontainer.List[T]]

	// directory marks the directory-backed mode; dir is nil otherwise.
	directory bool
	dir       *core.Directory[GID]

	// listHandle addresses the outer List representative for list-level
	// RMIs (GID allocation on the destination location).
	listHandle runtime.Handle

	// Directory-mode identifier allocation.
	ctrMu   sync.Mutex
	nextCtr int64
}

// Option customises pList construction.
type Option func(*options)

type options struct {
	traits    core.Traits
	hasTr     bool
	directory bool
	dirCache  bool
}

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *options) { o.traits = t; o.hasTr = true } }

// WithDirectory selects the directory-backed mode: stable GIDs recorded in
// the shared distributed directory, surviving storage movement.
func WithDirectory() Option { return func(o *options) { o.directory = true } }

// WithDirectoryCache enables or disables the directory's per-location
// resolution cache (directory-backed mode only; default enabled).
func WithDirectoryCache(on bool) Option { return func(o *options) { o.dirCache = on } }

// New constructs an empty pList with one list base container per location.
// Collective.
func New[T any](loc *runtime.Location, opts ...Option) *List[T] {
	o := options{dirCache: true}
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	p := loc.NumLocations()
	l := &List[T]{directory: o.directory}
	if o.directory {
		l.InitContainer(loc, listDirResolver[T]{l: l}, o.traits)
		l.dir = core.NewDirectory(loc, core.DirectoryConfig[GID]{
			Hash:  func(g GID) uint64 { return partition.Int64Hash(g.ID) },
			Cache: o.dirCache,
		})
	} else {
		l.InitContainer(loc, listResolver{mapper: partition.NewBlockedMapper(p, p)}, o.traits)
	}
	l.LocationManager().Add(bcontainer.NewList[T](partition.BCID(loc.ID())))
	l.listHandle = loc.RegisterObject(l)
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return l
}

// DirectoryBacked reports whether this list runs in the directory-backed
// mode.
func (l *List[T]) DirectoryBacked() bool { return l.directory }

// Directory exposes the shared distributed directory of the directory-backed
// mode (nil in the encoded mode); tests and experiments use it to inspect
// cache behaviour.
func (l *List[T]) Directory() *core.Directory[GID] { return l.dir }

// local returns this location's list base container.
func (l *List[T]) local() *bcontainer.List[T] {
	return l.LocationManager().MustGet(partition.BCID(l.Location().ID()))
}

// lockedLocal runs fn on this location's base container under the write (or
// read) bracket of the thread-safety manager and returns fn's result.
func (l *List[T]) lockedLocal(mode core.AccessMode, fn func(bc *bcontainer.List[T]) any) any {
	b := partition.BCID(l.Location().ID())
	l.ThreadSafety().DataAccessPre(b, mode)
	defer l.ThreadSafety().DataAccessPost(b, mode)
	return fn(l.local())
}

// allocGID allocates a globally unique directory-mode identifier born on
// this location.
func (l *List[T]) allocGID() GID {
	l.ctrMu.Lock()
	ctr := l.nextCtr
	l.nextCtr++
	l.ctrMu.Unlock()
	self := l.Location().ID()
	return GID{Loc: int32(self), ID: int64(self)<<gidShift | ctr}
}

// gidAt reconstructs the GID of the node with the given id stored on
// storage: in the directory mode the identity (birth location) is encoded in
// the id itself; in the encoded mode storage is the identity.
func (l *List[T]) gidAt(storage int, id int64) GID {
	if l.directory {
		return GID{Loc: int32(id >> gidShift), ID: id}
	}
	return GID{Loc: int32(storage), ID: id}
}

// atList runs fn against the List representative on location dest
// (asynchronously; runs immediately when dest is this location).
func (l *List[T]) atList(dest int, fn func(ol *List[T])) {
	l.Location().AsyncRMI(dest, l.listHandle, func(obj any, _ *runtime.Location) {
		fn(obj.(*List[T]))
	})
}

// pushLocal appends val to this location's segment and publishes the new
// element's directory entry (directory mode) or derives the encoded GID.
func (l *List[T]) pushLocal(val T) GID {
	if l.directory {
		gid := l.allocGID()
		l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any {
			bc.PushBackID(gid.ID, val)
			return nil
		})
		l.dir.Publish(gid, partition.BCID(l.Location().ID()))
		return gid
	}
	id := l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushBack(val) }).(int64)
	return GID{Loc: int32(l.Location().ID()), ID: id}
}

// PushAnywhere adds val at an unspecified position — on the calling
// location, with no element communication.  It is the paper's
// insert-anywhere extension that lets parallel producers fill a list without
// contending for its global ends.  It returns the new element's GID.  In the
// directory mode the ownership entry is published asynchronously (one small
// RMI to the GID's home), globally visible by the next fence.
func (l *List[T]) PushAnywhere(val T) GID {
	return l.pushLocal(val)
}

// PushBack appends val at the global end of the sequence (the last
// location's segment).  Asynchronous.
func (l *List[T]) PushBack(val T) {
	last := l.Location().NumLocations() - 1
	if l.directory {
		l.atList(last, func(ol *List[T]) { ol.pushLocal(val) })
		return
	}
	if last == l.Location().ID() {
		l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushBack(val) })
		return
	}
	l.InvokeAt(last, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) {
		b := partition.BCID(last)
		self.ThreadSafety().DataAccessPre(b, core.Write)
		self.LocationManager().MustGet(b).PushBack(val)
		self.ThreadSafety().DataAccessPost(b, core.Write)
	})
}

// PushFront prepends val at the global beginning of the sequence (location
// 0's segment).  Asynchronous.
func (l *List[T]) PushFront(val T) {
	if l.directory {
		l.atList(0, func(ol *List[T]) {
			gid := ol.allocGID()
			ol.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any {
				bc.PushFrontID(gid.ID, val)
				return nil
			})
			ol.dir.Publish(gid, partition.BCID(ol.Location().ID()))
		})
		return
	}
	if l.Location().ID() == 0 {
		l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushFront(val) })
		return
	}
	l.InvokeAt(0, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) {
		b := partition.BCID(0)
		self.ThreadSafety().DataAccessPre(b, core.Write)
		self.LocationManager().MustGet(b).PushFront(val)
		self.ThreadSafety().DataAccessPost(b, core.Write)
	})
}

// InsertAsync inserts val before the element identified by gid.
// Asynchronous; constant work on the owning location.
func (l *List[T]) InsertAsync(gid GID, val T) {
	if l.directory {
		h := l.listHandle
		l.Invoke(gid, core.Write, func(loc *runtime.Location, bc *bcontainer.List[T]) {
			ol := loc.Object(h).(*List[T])
			ng := ol.allocGID()
			bc.InsertBeforeID(gid.ID, ng.ID, val)
			ol.dir.Publish(ng, partition.BCID(loc.ID()))
		})
		return
	}
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) {
		bc.InsertBefore(gid.ID, val)
	})
}

// insertPlacement carries a synchronous insert's result back to the caller:
// the new GID and the location that stored it.
type insertPlacement struct {
	gid GID
	at  int
}

// Insert inserts val before gid and returns the new element's GID
// (synchronous).  In the directory mode the new entry is published
// asynchronously (globally visible by the next fence), but the caller's
// resolution cache is primed with the placement the reply carried, so the
// caller can use the returned GID immediately.
func (l *List[T]) Insert(gid GID, val T) GID {
	if l.directory {
		h := l.listHandle
		res := l.InvokeRet(gid, core.Write, func(loc *runtime.Location, bc *bcontainer.List[T]) any {
			ol := loc.Object(h).(*List[T])
			ng := ol.allocGID()
			bc.InsertBeforeID(gid.ID, ng.ID, val)
			ol.dir.Publish(ng, partition.BCID(loc.ID()))
			return insertPlacement{gid: ng, at: loc.ID()}
		}).(insertPlacement)
		l.dir.Prime(res.gid, partition.BCID(res.at))
		return res.gid
	}
	id := l.InvokeRet(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) any {
		return bc.InsertBefore(gid.ID, val)
	}).(int64)
	return GID{Loc: gid.Loc, ID: id}
}

// Erase removes the element identified by gid.  Asynchronous.
func (l *List[T]) Erase(gid GID) {
	if l.directory {
		h := l.listHandle
		l.Invoke(gid, core.Write, func(loc *runtime.Location, bc *bcontainer.List[T]) {
			bc.Erase(gid.ID)
			loc.Object(h).(*List[T]).dir.Unpublish(gid)
		})
		return
	}
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Erase(gid.ID) })
}

// Get returns the value of the element identified by gid (synchronous).
func (l *List[T]) Get(gid GID) T {
	v := l.InvokeRet(gid, core.Read, func(_ *runtime.Location, bc *bcontainer.List[T]) any { return bc.Get(gid.ID) })
	return v.(T)
}

// GetSplit starts a split-phase read of the element identified by gid.
func (l *List[T]) GetSplit(gid GID) *runtime.FutureOf[T] {
	f := l.InvokeSplit(gid, core.Read, func(_ *runtime.Location, bc *bcontainer.List[T]) any { return bc.Get(gid.ID) })
	return runtime.NewFutureOf[T](f)
}

// Set replaces the value of the element identified by gid.  Asynchronous.
func (l *List[T]) Set(gid GID, val T) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Set(gid.ID, val) })
}

// Apply applies fn to the element identified by gid in place. Asynchronous.
func (l *List[T]) Apply(gid GID, fn func(T) T) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Apply(gid.ID, fn) })
}

// Size returns the global number of elements.  Collective.
func (l *List[T]) Size() int64 { return l.GlobalSize() }

// LocalValues returns the values stored on this location, in segment order.
func (l *List[T]) LocalValues() []T {
	return l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.Values() }).([]T)
}

// LocalRange applies fn to every locally stored (GID, value) pair in segment
// order.
func (l *List[T]) LocalRange(fn func(gid GID, val T) bool) {
	self := l.Location().ID()
	l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any {
		bc.Range(func(id int64, val T) bool { return fn(l.gidAt(self, id), val) })
		return nil
	})
}

// LocalUpdate replaces every locally stored element with fn's result.
func (l *List[T]) LocalUpdate(fn func(gid GID, val T) T) {
	self := l.Location().ID()
	l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any {
		bc.Update(func(id int64, val T) T { return fn(l.gidAt(self, id), val) })
		return nil
	})
}

// LocalFront returns the GID of this location's first segment element, or
// InvalidGID if the segment is empty.
func (l *List[T]) LocalFront() GID {
	id := l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.FrontID() }).(int64)
	if id < 0 {
		return InvalidGID
	}
	return l.gidAt(l.Location().ID(), id)
}

// LocalBack returns the GID of this location's last segment element, or
// InvalidGID if the segment is empty.
func (l *List[T]) LocalBack() GID {
	id := l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.BackID() }).(int64)
	if id < 0 {
		return InvalidGID
	}
	return l.gidAt(l.Location().ID(), id)
}

// segmentStep is the result of asking an element's storage location for its
// successor: the next node id within the segment (or -1 at the segment end)
// and the location that answered.
type segmentStep struct {
	next int64
	at   int
}

// frontIDAt returns the first node id of location d's segment, or -1.
func (l *List[T]) frontIDAt(d int) int64 {
	return l.InvokeAtRet(d, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) any {
		b := partition.BCID(d)
		self.ThreadSafety().DataAccessPre(b, core.Read)
		defer self.ThreadSafety().DataAccessPost(b, core.Read)
		return self.LocationManager().MustGet(b).FrontID()
	}).(int64)
}

// Next returns the GID following gid in the global sequence, or InvalidGID
// at the end.  Crossing a segment boundary moves to the next non-empty
// location's segment.  Synchronous.
func (l *List[T]) Next(gid GID) GID {
	res := l.InvokeRet(gid, core.Read, func(loc *runtime.Location, bc *bcontainer.List[T]) any {
		return segmentStep{next: bc.NextID(gid.ID), at: loc.ID()}
	}).(segmentStep)
	if res.next >= 0 {
		return l.gidAt(res.at, res.next)
	}
	// Move to the first element of the next non-empty segment.
	for d := res.at + 1; d < l.Location().NumLocations(); d++ {
		if front := l.frontIDAt(d); front >= 0 {
			return l.gidAt(d, front)
		}
	}
	return InvalidGID
}

// Begin returns the GID of the first element of the global sequence, or
// InvalidGID if the list is empty.  Synchronous.
func (l *List[T]) Begin() GID {
	for d := 0; d < l.Location().NumLocations(); d++ {
		if front := l.frontIDAt(d); front >= 0 {
			return l.gidAt(d, front)
		}
	}
	return InvalidGID
}

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (l *List[T]) MemorySize() core.MemoryUsage {
	extra := int64(32)
	if l.dir != nil {
		extra += l.dir.MemoryBytes()
	}
	return l.GlobalMemory(extra)
}
