// Package plist implements the STAPL pList (Chapter X): a distributed
// doubly-linked sequence.  Unlike pVector, all dynamic operations
// (push_front/push_back/insert/erase and the parallel-friendly
// push_anywhere) run in constant time, because element identifiers are
// stable (location id + local node id) and never shift when other elements
// are inserted or removed.
package plist

import (
	"fmt"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// GID identifies one pList element: the location whose base container stores
// it and the stable node identifier within that base container.
type GID struct {
	Loc int32
	ID  int64
}

// InvalidGID is the reserved "no element" identifier.
var InvalidGID = GID{Loc: -1, ID: -1}

// Valid reports whether the GID refers to an element.
func (g GID) Valid() bool { return g.Loc >= 0 && g.ID >= 0 }

// String formats the GID for diagnostics.
func (g GID) String() string { return fmt.Sprintf("(%d,%d)", g.Loc, g.ID) }

// listResolver maps a GID to the base container on its home location: the
// location is embedded in the identifier, so resolution is O(1) with no
// directory.
type listResolver struct {
	mapper partition.Mapper
}

func (r listResolver) Find(g GID) partition.Info {
	if !g.Valid() {
		return partition.Forward(0)
	}
	return partition.Found(partition.BCID(g.Loc))
}

func (r listResolver) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// List is the per-location representative of a pList of element type T.
type List[T any] struct {
	core.Container[GID, *bcontainer.List[T]]
}

// Option customises pList construction.
type Option func(*options)

type options struct {
	traits core.Traits
	hasTr  bool
}

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *options) { o.traits = t; o.hasTr = true } }

// New constructs an empty pList with one list base container per location.
// Collective.
func New[T any](loc *runtime.Location, opts ...Option) *List[T] {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	p := loc.NumLocations()
	l := &List[T]{}
	l.InitContainer(loc, listResolver{mapper: partition.NewBlockedMapper(p, p)}, o.traits)
	l.LocationManager().Add(bcontainer.NewList[T](partition.BCID(loc.ID())))
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return l
}

// local returns this location's list base container.
func (l *List[T]) local() *bcontainer.List[T] {
	return l.LocationManager().MustGet(partition.BCID(l.Location().ID()))
}

// lockedLocal runs fn on this location's base container under the write (or
// read) bracket of the thread-safety manager and returns fn's result.
func (l *List[T]) lockedLocal(mode core.AccessMode, fn func(bc *bcontainer.List[T]) any) any {
	b := partition.BCID(l.Location().ID())
	l.ThreadSafety().DataAccessPre(b, mode)
	defer l.ThreadSafety().DataAccessPost(b, mode)
	return fn(l.local())
}

// PushAnywhere adds val at an unspecified position — on the calling
// location, with no communication.  It is the paper's insert-anywhere
// extension that lets parallel producers fill a list without contending for
// its global ends.  It returns the new element's GID.
func (l *List[T]) PushAnywhere(val T) GID {
	id := l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushBack(val) }).(int64)
	return GID{Loc: int32(l.Location().ID()), ID: id}
}

// PushBack appends val at the global end of the sequence (the last
// location's segment).  Asynchronous.
func (l *List[T]) PushBack(val T) {
	last := l.Location().NumLocations() - 1
	if last == l.Location().ID() {
		l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushBack(val) })
		return
	}
	l.InvokeAt(last, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) {
		b := partition.BCID(last)
		self.ThreadSafety().DataAccessPre(b, core.Write)
		self.LocationManager().MustGet(b).PushBack(val)
		self.ThreadSafety().DataAccessPost(b, core.Write)
	})
}

// PushFront prepends val at the global beginning of the sequence (location
// 0's segment).  Asynchronous.
func (l *List[T]) PushFront(val T) {
	if l.Location().ID() == 0 {
		l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any { return bc.PushFront(val) })
		return
	}
	l.InvokeAt(0, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) {
		b := partition.BCID(0)
		self.ThreadSafety().DataAccessPre(b, core.Write)
		self.LocationManager().MustGet(b).PushFront(val)
		self.ThreadSafety().DataAccessPost(b, core.Write)
	})
}

// InsertAsync inserts val before the element identified by gid.
// Asynchronous; constant work on the owning location.
func (l *List[T]) InsertAsync(gid GID, val T) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) {
		bc.InsertBefore(gid.ID, val)
	})
}

// Insert inserts val before gid and returns the new element's GID
// (synchronous).
func (l *List[T]) Insert(gid GID, val T) GID {
	id := l.InvokeRet(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) any {
		return bc.InsertBefore(gid.ID, val)
	}).(int64)
	return GID{Loc: gid.Loc, ID: id}
}

// Erase removes the element identified by gid.  Asynchronous.
func (l *List[T]) Erase(gid GID) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Erase(gid.ID) })
}

// Get returns the value of the element identified by gid (synchronous).
func (l *List[T]) Get(gid GID) T {
	v := l.InvokeRet(gid, core.Read, func(_ *runtime.Location, bc *bcontainer.List[T]) any { return bc.Get(gid.ID) })
	return v.(T)
}

// GetSplit starts a split-phase read of the element identified by gid.
func (l *List[T]) GetSplit(gid GID) *runtime.FutureOf[T] {
	f := l.InvokeSplit(gid, core.Read, func(_ *runtime.Location, bc *bcontainer.List[T]) any { return bc.Get(gid.ID) })
	return runtime.NewFutureOf[T](f)
}

// Set replaces the value of the element identified by gid.  Asynchronous.
func (l *List[T]) Set(gid GID, val T) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Set(gid.ID, val) })
}

// Apply applies fn to the element identified by gid in place. Asynchronous.
func (l *List[T]) Apply(gid GID, fn func(T) T) {
	l.Invoke(gid, core.Write, func(_ *runtime.Location, bc *bcontainer.List[T]) { bc.Apply(gid.ID, fn) })
}

// Size returns the global number of elements.  Collective.
func (l *List[T]) Size() int64 { return l.GlobalSize() }

// LocalValues returns the values stored on this location, in segment order.
func (l *List[T]) LocalValues() []T {
	return l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.Values() }).([]T)
}

// LocalRange applies fn to every locally stored (GID, value) pair in segment
// order.
func (l *List[T]) LocalRange(fn func(gid GID, val T) bool) {
	self := int32(l.Location().ID())
	l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any {
		bc.Range(func(id int64, val T) bool { return fn(GID{Loc: self, ID: id}, val) })
		return nil
	})
}

// LocalUpdate replaces every locally stored element with fn's result.
func (l *List[T]) LocalUpdate(fn func(gid GID, val T) T) {
	self := int32(l.Location().ID())
	l.lockedLocal(core.Write, func(bc *bcontainer.List[T]) any {
		bc.Update(func(id int64, val T) T { return fn(GID{Loc: self, ID: id}, val) })
		return nil
	})
}

// LocalFront returns the GID of this location's first segment element, or
// InvalidGID if the segment is empty.
func (l *List[T]) LocalFront() GID {
	id := l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.FrontID() }).(int64)
	if id < 0 {
		return InvalidGID
	}
	return GID{Loc: int32(l.Location().ID()), ID: id}
}

// LocalBack returns the GID of this location's last segment element, or
// InvalidGID if the segment is empty.
func (l *List[T]) LocalBack() GID {
	id := l.lockedLocal(core.Read, func(bc *bcontainer.List[T]) any { return bc.BackID() }).(int64)
	if id < 0 {
		return InvalidGID
	}
	return GID{Loc: int32(l.Location().ID()), ID: id}
}

// Next returns the GID following gid in the global sequence, or InvalidGID
// at the end.  Crossing a segment boundary moves to the next non-empty
// location's segment.  Synchronous.
func (l *List[T]) Next(gid GID) GID {
	next := l.InvokeRet(gid, core.Read, func(_ *runtime.Location, bc *bcontainer.List[T]) any {
		return bc.NextID(gid.ID)
	}).(int64)
	if next >= 0 {
		return GID{Loc: gid.Loc, ID: next}
	}
	// Move to the first element of the next non-empty segment.
	for d := int(gid.Loc) + 1; d < l.Location().NumLocations(); d++ {
		front := l.InvokeAtRet(d, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) any {
			b := partition.BCID(d)
			self.ThreadSafety().DataAccessPre(b, core.Read)
			defer self.ThreadSafety().DataAccessPost(b, core.Read)
			return self.LocationManager().MustGet(b).FrontID()
		}).(int64)
		if front >= 0 {
			return GID{Loc: int32(d), ID: front}
		}
	}
	return InvalidGID
}

// Begin returns the GID of the first element of the global sequence, or
// InvalidGID if the list is empty.  Synchronous.
func (l *List[T]) Begin() GID {
	for d := 0; d < l.Location().NumLocations(); d++ {
		front := l.InvokeAtRet(d, func(_ *runtime.Location, self *core.Container[GID, *bcontainer.List[T]]) any {
			b := partition.BCID(d)
			self.ThreadSafety().DataAccessPre(b, core.Read)
			defer self.ThreadSafety().DataAccessPost(b, core.Read)
			return self.LocationManager().MustGet(b).FrontID()
		}).(int64)
		if front >= 0 {
			return GID{Loc: int32(d), ID: front}
		}
	}
	return InvalidGID
}

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (l *List[T]) MemorySize() core.MemoryUsage {
	return l.GlobalMemory(32)
}
