package plist

import (
	"fmt"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Element migration and load balancing for the directory-backed mode.  The
// encoded mode hard-codes the storage location into every GID, so its
// elements can never move; the directory-backed mode records placement in
// the shared distributed directory, and these services move elements and
// republish their entries through core.MigrateElements.
//
// Ordering: elements that stay on a location keep their relative order;
// migrated elements are appended to the destination segment (the arrival
// order of elements from different source locations is unspecified, like
// push_anywhere's placement).

// listElem is the element record shipped between locations: the globally
// unique node id (which encodes the GID) and the value.
type listElem[T any] struct {
	id  int64
	val T
}

// requireDirectory panics when a service that needs movable elements is
// invoked on an encoded-mode list.
func (l *List[T]) requireDirectory(op string) {
	if !l.directory {
		panic(fmt.Sprintf("plist: %s requires the directory-backed mode (WithDirectory); encoded GIDs cannot move", op))
	}
}

// migrate runs the collective element-migration protocol for this location's
// move requests (gid → destination location); see core.MigrateElements.
func (l *List[T]) migrate(moves map[GID]int) {
	l.requireDirectory("element migration")
	elemBytes := core.ElemBytes[T]()
	core.MigrateElements(l.Location(), l.dir, moves, core.DirectoryMigration[listElem[T], GID, *bcontainer.List[T]]{
		Alloc: func(b partition.BCID) *bcontainer.List[T] { return bcontainer.NewList[T](b) },
		Enumerate: func(emit func(listElem[T])) {
			l.ForEachLocalBC(core.Read, func(bc *bcontainer.List[T]) {
				bc.Range(func(id int64, val T) bool {
					emit(listElem[T]{id: id, val: val})
					return true
				})
			})
		},
		GID:   func(e listElem[T]) GID { return GID{Loc: int32(e.id >> gidShift), ID: e.id} },
		Place: func(bc *bcontainer.List[T], e listElem[T]) { bc.PushBackID(e.id, e.val) },
		Bytes: func(listElem[T]) int { return elemBytes },
		Ops:   listMigOpsFor[T](),
		Install: func(lm *core.LocationManager[*bcontainer.List[T]]) {
			l.ReplaceLocationManager(lm)
		},
	})
}

// MigrateElements moves the named elements to the given destination
// location.  Their GIDs stay valid: the directory entries are republished by
// the migration and every location's resolution cache is invalidated.
// Collective — every location calls it; the union of all locations' requests
// is applied in one protocol round, so different locations may name
// different elements (and destinations) in the same call.  The container
// must be quiescent (fence first after element traffic).
func (l *List[T]) MigrateElements(gids []GID, dest int) {
	l.requireDirectory("MigrateElements")
	moves := make(map[GID]int, len(gids))
	for _, g := range gids {
		checkValid(g)
		moves[g] = dest
	}
	l.migrate(moves)
}

// Redistribute moves elements between locations until location i holds
// exactly targets[i] elements (the counts must sum to the list size).
// Surplus locations ship their front elements to deficit locations in
// location order — a deterministic flow plan every location derives from the
// same gathered counts, with each location contributing the move requests
// for its own elements.  Directory-backed mode only.  Collective.
func (l *List[T]) Redistribute(targets []int64) {
	l.requireDirectory("Redistribute")
	loc := l.Location()
	p := loc.NumLocations()
	if len(targets) != p {
		panic(fmt.Sprintf("plist: Redistribute needs %d target counts, got %d", p, len(targets)))
	}
	counts := runtime.AllGatherT(loc, l.LocalSize())
	var total, want int64
	for i := range counts {
		total += counts[i]
		want += targets[i]
	}
	if total != want {
		panic(fmt.Sprintf("plist: target counts sum to %d, list has %d elements", want, total))
	}
	// Two-pointer flow plan over the surplus vector.
	surplus := make([]int64, p)
	for i := range counts {
		surplus[i] = counts[i] - targets[i]
	}
	moves := make(map[GID]int)
	self := loc.ID()
	var mine []GID
	next := 0
	s, d := 0, 0
	for {
		for s < p && surplus[s] <= 0 {
			s++
		}
		for d < p && surplus[d] >= 0 {
			d++
		}
		if s >= p || d >= p {
			break
		}
		n := surplus[s]
		if need := -surplus[d]; need < n {
			n = need
		}
		if s == self {
			if mine == nil {
				l.LocalRange(func(g GID, _ T) bool {
					mine = append(mine, g)
					return true
				})
			}
			for i := int64(0); i < n; i++ {
				moves[mine[next]] = d
				next++
			}
		}
		surplus[s] -= n
		surplus[d] += n
	}
	l.migrate(moves)
}

// Rebalance evens out the per-location element counts using the
// load-balance advisor's balanced proposal.  Directory-backed mode only.
// Collective.
func (l *List[T]) Rebalance() {
	l.requireDirectory("Rebalance")
	stats := partition.CollectLoad(l.Location(), l.LocalSize())
	part, _ := stats.ProposeBalanced(domain.NewRange1D(0, stats.Total))
	l.Redistribute(part.SubSizes())
}
