// Package pmatrix implements the STAPL pMatrix: a dense two-dimensional
// indexed pContainer partitioned into rectangular blocks (by rows, by
// columns or checkerboard) distributed over the locations.
package pmatrix

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// matrixResolver adapts a 2-D matrix partition plus a mapper into a
// core.Resolver over Index2D GIDs.
type matrixResolver struct {
	part   *partition.Matrix
	mapper partition.Mapper
}

func (r matrixResolver) Find(g domain.Index2D) partition.Info { return r.part.Find(g) }
func (r matrixResolver) OwnerOf(b partition.BCID) int         { return r.mapper.Map(b) }

// Matrix is the per-location representative of a pMatrix of element type T.
type Matrix[T any] struct {
	core.Container[domain.Index2D, *bcontainer.MatrixBlock[T]]

	dom    domain.Range2D
	part   *partition.Matrix
	mapper partition.Mapper
}

// Option customises pMatrix construction.
type Option func(*options)

type options struct {
	layout partition.MatrixLayout
	blocks int
	traits core.Traits
	hasTr  bool
}

// WithLayout selects the block decomposition (default RowBlocked).
func WithLayout(l partition.MatrixLayout) Option { return func(o *options) { o.layout = l } }

// WithBlocks overrides the number of blocks (default: one per location).
func WithBlocks(n int) Option { return func(o *options) { o.blocks = n } }

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *options) { o.traits = t; o.hasTr = true } }

// New constructs a rows×cols pMatrix.  Collective.
func New[T any](loc *runtime.Location, rows, cols int64, opts ...Option) *Matrix[T] {
	o := options{layout: partition.RowBlocked}
	for _, fn := range opts {
		fn(&o)
	}
	if o.blocks <= 0 {
		o.blocks = loc.NumLocations()
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	dom := domain.NewRange2D(rows, cols)
	part := partition.NewMatrix(dom, o.blocks, o.layout)
	mapper := partition.NewBlockedMapper(part.NumSubdomains(), loc.NumLocations())
	m := &Matrix[T]{dom: dom, part: part, mapper: mapper}
	m.InitContainer(loc, matrixResolver{part: part, mapper: mapper}, o.traits)
	for _, b := range mapper.LocalBCIDs(loc.ID()) {
		r, c := part.Block(b)
		m.LocationManager().Add(bcontainer.NewMatrixBlock[T](b, r, c))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return m
}

// Rows returns the number of rows.
func (m *Matrix[T]) Rows() int64 { return m.dom.Rows }

// Cols returns the number of columns.
func (m *Matrix[T]) Cols() int64 { return m.dom.Cols }

// Size returns the number of elements.
func (m *Matrix[T]) Size() int64 { return m.dom.Size() }

// Domain returns the 2-D index domain.
func (m *Matrix[T]) Domain() domain.Range2D { return m.dom }

// Partition returns the block partition in use.
func (m *Matrix[T]) Partition() *partition.Matrix { return m.part }

// Get returns the element at (row, col).  Synchronous.
func (m *Matrix[T]) Get(row, col int64) T {
	g := domain.Index2D{Row: row, Col: col}
	v := m.InvokeRet(g, core.Read, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) any { return bc.Get(g) })
	return v.(T)
}

// Set stores val at (row, col).  Asynchronous.
func (m *Matrix[T]) Set(row, col int64, val T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) { bc.Set(g, val) })
}

// Apply applies fn to the element at (row, col) in place.  Asynchronous.
func (m *Matrix[T]) Apply(row, col int64, fn func(T) T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) { bc.Apply(g, fn) })
}

// GetSplit starts a split-phase read of the element at (row, col).
func (m *Matrix[T]) GetSplit(row, col int64) *runtime.FutureOf[T] {
	g := domain.Index2D{Row: row, Col: col}
	f := m.InvokeSplit(g, core.Read, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) any { return bc.Get(g) })
	return runtime.NewFutureOf[T](f)
}

// LocalBlocks returns the (row range, column range) of every block stored on
// this location.
func (m *Matrix[T]) LocalBlocks() (rows, cols []domain.Range1D) {
	for _, b := range m.LocationManager().BCIDs() {
		r, c := m.part.Block(b)
		rows = append(rows, r)
		cols = append(cols, c)
	}
	return rows, cols
}

// RangeLocal applies fn to every locally stored (index, value) pair.
func (m *Matrix[T]) RangeLocal(fn func(g domain.Index2D, val T) bool) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) { bc.Range(fn) })
}

// UpdateLocal replaces every locally stored element with fn's result.
func (m *Matrix[T]) UpdateLocal(fn func(g domain.Index2D, val T) T) {
	m.ForEachLocalBC(core.Write, func(bc *bcontainer.MatrixBlock[T]) { bc.Update(fn) })
}

// LocalRowRange invokes fn for every locally stored row fragment: the global
// row index and the contiguous slice of that row's locally stored columns
// (starting at the block's first column).  Row-oriented algorithms (e.g. the
// row-minimum composition study, Fig. 62) use it to process local data
// without per-element calls.
func (m *Matrix[T]) LocalRowRange(fn func(row int64, colStart int64, vals []T)) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) {
		rows := bc.Rows()
		for r := rows.Lo; r < rows.Hi; r++ {
			fn(r, bc.Cols().Lo, bc.RowSlice(r))
		}
	})
}

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (m *Matrix[T]) MemorySize() core.MemoryUsage {
	meta := partition.MemoryBytes(m.mapper) + 64
	return m.GlobalMemory(meta)
}
