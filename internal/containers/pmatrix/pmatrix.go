// Package pmatrix implements the STAPL pMatrix: a dense two-dimensional
// indexed pContainer partitioned into rectangular blocks (by rows, by
// columns or checkerboard) distributed over the locations.
package pmatrix

import (
	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// matrixResolver adapts a 2-D matrix partition plus a mapper into a
// core.Resolver over Index2D GIDs.
type matrixResolver struct {
	part   *partition.Matrix
	mapper partition.Mapper
}

func (r matrixResolver) Find(g domain.Index2D) partition.Info { return r.part.Find(g) }
func (r matrixResolver) OwnerOf(b partition.BCID) int         { return r.mapper.Map(b) }

// Matrix is the per-location representative of a pMatrix of element type T.
type Matrix[T any] struct {
	core.Container[domain.Index2D, *bcontainer.MatrixBlock[T]]

	dom    domain.Range2D
	part   *partition.Matrix
	mapper partition.Mapper
}

// Option customises pMatrix construction.
type Option func(*options)

type options struct {
	layout partition.MatrixLayout
	blocks int
	traits core.Traits
	hasTr  bool
}

// WithLayout selects the block decomposition (default RowBlocked).
func WithLayout(l partition.MatrixLayout) Option { return func(o *options) { o.layout = l } }

// WithBlocks overrides the number of blocks (default: one per location).
func WithBlocks(n int) Option { return func(o *options) { o.blocks = n } }

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *options) { o.traits = t; o.hasTr = true } }

// New constructs a rows×cols pMatrix.  Collective.
func New[T any](loc *runtime.Location, rows, cols int64, opts ...Option) *Matrix[T] {
	o := options{layout: partition.RowBlocked}
	for _, fn := range opts {
		fn(&o)
	}
	if o.blocks <= 0 {
		o.blocks = loc.NumLocations()
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	dom := domain.NewRange2D(rows, cols)
	part := partition.NewMatrix(dom, o.blocks, o.layout)
	mapper := partition.NewBlockedMapper(part.NumSubdomains(), loc.NumLocations())
	m := &Matrix[T]{dom: dom, part: part, mapper: mapper}
	m.InitContainer(loc, matrixResolver{part: part, mapper: mapper}, o.traits)
	for _, b := range mapper.LocalBCIDs(loc.ID()) {
		r, c := part.Block(b)
		m.LocationManager().Add(bcontainer.NewMatrixBlock[T](b, r, c))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return m
}

// Rows returns the number of rows.
func (m *Matrix[T]) Rows() int64 { return m.dom.Rows }

// Cols returns the number of columns.
func (m *Matrix[T]) Cols() int64 { return m.dom.Cols }

// Size returns the number of elements.
func (m *Matrix[T]) Size() int64 { return m.dom.Size() }

// Domain returns the 2-D index domain.
func (m *Matrix[T]) Domain() domain.Range2D { return m.dom }

// Partition returns the block partition in use.
func (m *Matrix[T]) Partition() *partition.Matrix { return m.part }

// Mapper returns the block → location mapper in use.
func (m *Matrix[T]) Mapper() partition.Mapper { return m.mapper }

// Get returns the element at (row, col).  Synchronous.
func (m *Matrix[T]) Get(row, col int64) T {
	g := domain.Index2D{Row: row, Col: col}
	v := m.InvokeRet(g, core.Read, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) any { return bc.Get(g) })
	return v.(T)
}

// Set stores val at (row, col).  Asynchronous.
func (m *Matrix[T]) Set(row, col int64, val T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) { bc.Set(g, val) })
}

// Apply applies fn to the element at (row, col) in place.  Asynchronous.
func (m *Matrix[T]) Apply(row, col int64, fn func(T) T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) { bc.Apply(g, fn) })
}

// GetSplit starts a split-phase read of the element at (row, col).
func (m *Matrix[T]) GetSplit(row, col int64) *runtime.FutureOf[T] {
	g := domain.Index2D{Row: row, Col: col}
	f := m.InvokeSplit(g, core.Read, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T]) any { return bc.Get(g) })
	return runtime.NewFutureOf[T](f)
}

// SetBulk stores vals[k] at index idxs[k] for every k, asynchronously.  The
// whole batch is resolved under one metadata bracket, grouped by owning
// location and shipped as one sized RMI per destination (AsyncRMIBulk), like
// the bulk element methods of the other container families.  Both slices are
// retained until the operations execute; callers hand over ownership and
// must not mutate them before the next Fence.
func (m *Matrix[T]) SetBulk(idxs []domain.Index2D, vals []T) {
	if len(idxs) != len(vals) {
		panic("pmatrix: SetBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 16 + runtime.PayloadBytes(vals[0]) // (row, col) + value
	m.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T], k int) {
		bc.Set(idxs[k], vals[k])
	})
}

// GetBulk returns the elements at the given indices, in order (synchronous).
// One request and one response message per owning location, regardless of
// batch size.
func (m *Matrix[T]) GetBulk(idxs []domain.Index2D) []T {
	out := make([]T, len(idxs))
	m.InvokeBulkSync(idxs, core.Read, 16, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T], k int) {
		out[k] = bc.Get(idxs[k])
	})
	return out
}

// ApplyBulk applies fn to every element named by idxs in place,
// asynchronously (the bulk counterpart of Apply).  The index slice is
// retained until the operations execute; do not mutate it before the next
// Fence.
func (m *Matrix[T]) ApplyBulk(idxs []domain.Index2D, fn func(T) T) {
	m.InvokeBulk(idxs, core.Write, 16, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T], k int) {
		bc.Apply(idxs[k], fn)
	})
}

// CombineBulk merges vals into the named elements with op (element becomes
// op(current, vals[k])), asynchronously.  It is the accumulate flavour the
// blocked kernels use to flush partial results: one bulk RMI per destination
// per call, commutative-op semantics across concurrent contributors.  Both
// slices are retained until the next Fence.
func (m *Matrix[T]) CombineBulk(idxs []domain.Index2D, vals []T, op func(cur, val T) T) {
	if len(idxs) != len(vals) {
		panic("pmatrix: CombineBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 16 + runtime.PayloadBytes(vals[0])
	m.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.MatrixBlock[T], k int) {
		bc.Apply(idxs[k], func(cur T) T { return op(cur, vals[k]) })
	})
}

// rowStripIdxs materialises the 2-D indices of one row strip.
func rowStripIdxs(row int64, cols domain.Range1D) []domain.Index2D {
	idxs := make([]domain.Index2D, 0, cols.Size())
	for c := cols.Lo; c < cols.Hi; c++ {
		idxs = append(idxs, domain.Index2D{Row: row, Col: c})
	}
	return idxs
}

// GetRowStrip reads the row strip (row, [cols.Lo, cols.Hi)) in column order:
// one grouped bulk request per owning location, however many blocks the
// strip crosses.  Synchronous.
func (m *Matrix[T]) GetRowStrip(row int64, cols domain.Range1D) []T {
	return m.GetBulk(rowStripIdxs(row, cols))
}

// SetRowStrip writes vals over the row strip (row, [cols.Lo, cols.Hi)),
// asynchronously, one grouped bulk request per owning location.  vals is
// retained until the next Fence.
func (m *Matrix[T]) SetRowStrip(row int64, cols domain.Range1D, vals []T) {
	if int64(len(vals)) != cols.Size() {
		panic("pmatrix: SetRowStrip value/range length mismatch")
	}
	m.SetBulk(rowStripIdxs(row, cols), vals)
}

// RowSegment returns the raw storage backing the row strip
// (row, [cols.Lo, cols.Hi)) when one local block holds it entirely, and
// ok=false otherwise.  Like the 1-D LocalSegment methods it bypasses the
// per-access brackets: callers follow the native-view discipline (touch only
// their own work decomposition, fence between conflicting phases).
func (m *Matrix[T]) RowSegment(row int64, cols domain.Range1D) ([]T, bool) {
	if cols.Empty() {
		return nil, false
	}
	for _, id := range m.LocationManager().BCIDs() {
		r, c := m.part.Block(id)
		if r.Contains(row) && cols.Lo >= c.Lo && cols.Hi <= c.Hi {
			bc, ok := m.LocationManager().Get(id)
			if !ok {
				return nil, false
			}
			s := bc.RowSlice(row)
			return s[cols.Lo-c.Lo : cols.Hi-c.Lo], true
		}
	}
	return nil, false
}

// LinearSegment returns the raw storage backing the row-major linearised
// index range [r.Lo, r.Hi) — index row*Cols+col — when one local block backs
// it contiguously: either the run stays inside a single row of a block, or
// the owning block spans every column, in which case its whole row-major
// storage is one contiguous linear run.  The 2-D views hand these segments
// to Coarsen so native chunks are walked at raw-slice speed.
func (m *Matrix[T]) LinearSegment(r domain.Range1D) ([]T, bool) {
	if r.Empty() || m.dom.Cols == 0 {
		return nil, false
	}
	cols := m.dom.Cols
	row, col := r.Lo/cols, r.Lo%cols
	if (r.Hi-1)/cols == row {
		// The run stays inside one row.
		return m.RowSegment(row, domain.NewRange1D(col, col+r.Size()))
	}
	// Multi-row runs are contiguous only in full-width blocks.
	for _, id := range m.LocationManager().BCIDs() {
		br, bc := m.part.Block(id)
		if bc.Lo != 0 || bc.Hi != cols {
			continue
		}
		if r.Lo >= br.Lo*cols && r.Hi <= br.Hi*cols {
			blk, ok := m.LocationManager().Get(id)
			if !ok {
				return nil, false
			}
			s := blk.Slice()
			return s[r.Lo-br.Lo*cols : r.Hi-br.Lo*cols], true
		}
	}
	return nil, false
}

// LocalBlocks returns the (row range, column range) of every block stored on
// this location.
func (m *Matrix[T]) LocalBlocks() (rows, cols []domain.Range1D) {
	for _, b := range m.LocationManager().BCIDs() {
		r, c := m.part.Block(b)
		rows = append(rows, r)
		cols = append(cols, c)
	}
	return rows, cols
}

// RangeLocal applies fn to every locally stored (index, value) pair.
func (m *Matrix[T]) RangeLocal(fn func(g domain.Index2D, val T) bool) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) { bc.Range(fn) })
}

// UpdateLocal replaces every locally stored element with fn's result.
func (m *Matrix[T]) UpdateLocal(fn func(g domain.Index2D, val T) T) {
	m.ForEachLocalBC(core.Write, func(bc *bcontainer.MatrixBlock[T]) { bc.Update(fn) })
}

// LocalRowRange invokes fn for every locally stored row fragment: the global
// row index and the contiguous slice of that row's locally stored columns
// (starting at the block's first column).  Row-oriented algorithms (e.g. the
// row-minimum composition study, Fig. 62) use it to process local data
// without per-element calls.
func (m *Matrix[T]) LocalRowRange(fn func(row int64, colStart int64, vals []T)) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) {
		rows := bc.Rows()
		for r := rows.Lo; r < rows.Hi; r++ {
			fn(r, bc.Cols().Lo, bc.RowSlice(r))
		}
	})
}

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (m *Matrix[T]) MemorySize() core.MemoryUsage {
	meta := partition.MemoryBytes(m.mapper) + 64
	return m.GlobalMemory(meta)
}
