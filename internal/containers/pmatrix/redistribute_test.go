package pmatrix

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// fillAndCheck fills the matrix with a deterministic pattern and verifies
// every element still reads it back.
func checkPattern(t *testing.T, m *Matrix[int64]) {
	t.Helper()
	rows, cols := m.Rows(), m.Cols()
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if got := m.Get(r, c); got != r*cols+c {
				t.Errorf("(%d,%d) = %d, want %d", r, c, got, r*cols+c)
				return
			}
		}
	}
}

func TestMatrixRelayoutRoundTrip(t *testing.T) {
	const rows, cols = int64(12), int64(8)
	run(4, func(loc *runtime.Location) {
		m := New[int64](loc, rows, cols) // row-blocked
		m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*cols + g.Col })
		loc.Fence()

		// Row-blocked → checkerboard → column-blocked → row-blocked: the
		// data survives every relayout and element methods keep resolving.
		for _, layout := range []partition.MatrixLayout{
			partition.Checkerboard, partition.ColBlocked, partition.RowBlocked,
		} {
			m.Relayout(layout, 0)
			checkPattern(t, m)
			loc.Fence()
		}
		gr, gc := m.Partition().GridDims()
		if gr != 4 || gc != 1 {
			t.Errorf("final grid = %dx%d, want 4x1", gr, gc)
		}
		// Writes after the relayouts land correctly.
		m.Set(0, 0, 999)
		loc.Fence()
		if got := m.Get(0, 0); got != 999 {
			t.Errorf("(0,0) after relayout writes = %d", got)
		}
		loc.Fence()
	})
}

func TestMatrixRedistributeIdentityNoTraffic(t *testing.T) {
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	var before, after int64
	m.Execute(func(loc *runtime.Location) {
		a := New[int64](loc, 8, 8, WithLayout(partition.Checkerboard))
		a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row })
		loc.Fence()
		if loc.ID() == 0 {
			before = m.Stats().RMIsSent
		}
		loc.Barrier()
		// Same partition, same mapper: every element stays put and the
		// migration must not touch the interconnect.
		a.Redistribute(a.Partition(), a.Mapper())
		loc.Barrier()
		if loc.ID() == 0 {
			after = m.Stats().RMIsSent
		}
		loc.Barrier()
		if got := a.Get(3, 5); got != 3 {
			t.Errorf("(3,5) = %d after identity relayout", got)
		}
		loc.Fence()
	})
	if after != before {
		t.Errorf("identity relayout sent %d RMIs, want 0", after-before)
	}
}

func TestMatrixSkewRebalanceRoundTrip(t *testing.T) {
	const rows, cols = int64(16), int64(4)
	run(4, func(loc *runtime.Location) {
		p := loc.NumLocations()
		m := New[int64](loc, rows, cols, WithBlocks(2*p))
		m.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*cols + g.Col })
		loc.Fence()

		// Skew: map every block onto location 0.
		m.Redistribute(m.Partition(), partition.NewArbitraryMapper(make([]int, m.Partition().NumSubdomains()), p))
		if f := partition.CollectLoad(loc, m.LocalSize()).Imbalance(); f != float64(p) {
			t.Errorf("all-on-one imbalance = %.3f, want %d", f, p)
		}
		checkPattern(t, m)
		loc.Fence()

		// The advisor's greedy remap brings the block loads back level.
		m.Rebalance()
		if f := partition.CollectLoad(loc, m.LocalSize()).Imbalance(); f > 1.1 {
			t.Errorf("imbalance after rebalance = %.3f, want <= 1.1", f)
		}
		checkPattern(t, m)
		loc.Fence()
	})
}

func TestMatrixRedistributeEmptyAndSingleLocation(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		m := New[int64](loc, 0, 0)
		m.Rebalance()
		if m.Size() != 0 {
			t.Errorf("empty matrix size = %d", m.Size())
		}
		n := New[int64](loc, 6, 6)
		n.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*6 + g.Col })
		loc.Fence()
		n.Relayout(partition.Checkerboard, 4)
		checkPattern(t, n)
		loc.Fence()
	})
}

func TestMatrixRedistributeDomainMismatchPanics(t *testing.T) {
	run(1, func(loc *runtime.Location) {
		m := New[int64](loc, 4, 4)
		defer func() {
			if recover() == nil {
				t.Error("Redistribute with a different domain did not panic")
			}
		}()
		p := partition.NewMatrix(domain.NewRange2D(5, 4), 1, partition.RowBlocked)
		m.Redistribute(p, partition.NewBlockedMapper(1, 1))
	})
}
