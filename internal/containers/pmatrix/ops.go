package pmatrix

import (
	"reflect"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/transport"
)

// Registered migration operations for the two pMatrix storage
// representations, cached per element type like the other families: one
// registration serves every matrix at the same T, and a T without a typed
// wire codec caches nil (closure fallback, in-process transports only).
var (
	matMigMu  sync.Mutex
	matMigReg = map[reflect.Type]any{} // *core.MigrationOps[matrixElem[T]] per T

	rowMigMu  sync.Mutex
	rowMigReg = map[reflect.Type]any{} // *core.MigrationOps[bcontainer.SparseRow[T]] per T
)

// matMigOpsFor returns the registered migration operation for the dense
// element record matrixElem[T], or nil when T has no typed codec.
func matMigOpsFor[T any]() *core.MigrationOps[matrixElem[T]] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	matMigMu.Lock()
	defer matMigMu.Unlock()
	if v, ok := matMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.MigrationOps[matrixElem[T]])
	}
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		matMigReg[t] = nil
		return nil
	}
	o := core.RegisterMigrationOps("pmatrix.elem["+codec.Name+"]",
		transport.Codec[matrixElem[T]]{
			Name: "pmatrix.matrix-elem[" + codec.Name + "]",
			Encode: func(b *transport.Buffer, e matrixElem[T]) {
				b.PutVarint(e.g.Row)
				b.PutVarint(e.g.Col)
				codec.Encode(b, e.val)
			},
			Decode: func(b *transport.Buffer) matrixElem[T] {
				var e matrixElem[T]
				e.g.Row = b.Varint()
				e.g.Col = b.Varint()
				e.val = codec.Decode(b)
				return e
			},
		})
	matMigReg[t] = o
	return o
}

// sparseRowMigOpsFor returns the registered migration operation for the CSR
// row record SparseRow[T], or nil when T has no typed codec.  The wire form
// is the compressed row itself (bcontainer.SparseRowCodec), so relayout
// traffic of a sparse matrix scales with the nonzeros shipped.
func sparseRowMigOpsFor[T any]() *core.MigrationOps[bcontainer.SparseRow[T]] {
	t := reflect.TypeOf((*T)(nil)).Elem()
	rowMigMu.Lock()
	defer rowMigMu.Unlock()
	if v, ok := rowMigReg[t]; ok {
		if v == nil {
			return nil
		}
		return v.(*core.MigrationOps[bcontainer.SparseRow[T]])
	}
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		rowMigReg[t] = nil
		return nil
	}
	o := core.RegisterMigrationOps("pmatrix.sparse-row["+codec.Name+"]",
		bcontainer.SparseRowCodec[T](codec))
	rowMigReg[t] = o
	return o
}

// sparseRowCodecFor returns the wire codec for SparseRow[T] when T has a
// typed codec; the sparse migration's byte accounting encodes each shipped
// row against it so the counters report real compressed sizes.
func sparseRowCodecFor[T any]() (transport.Codec[bcontainer.SparseRow[T]], bool) {
	codec, ok := transport.TypedCodecFor[T]()
	if !ok {
		return transport.Codec[bcontainer.SparseRow[T]]{}, false
	}
	return bcontainer.SparseRowCodec[T](codec), true
}
