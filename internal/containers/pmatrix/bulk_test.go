package pmatrix

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// TestMatrixBulkEquivalence is the property test for the 2-D bulk element
// methods: SetBulk followed by a fence must leave the matrix in exactly the
// state the elementwise Set loop produces, for mixed local/remote, empty and
// checkerboard-spanning batches; GetBulk must agree with the Get loop.
func TestMatrixBulkEquivalence(t *testing.T) {
	const rows, cols = int64(12), int64(8)
	run(4, func(loc *runtime.Location) {
		bulk := New[int64](loc, rows, cols, WithLayout(partition.Checkerboard))
		elem := New[int64](loc, rows, cols, WithLayout(partition.Checkerboard))

		// Mixed batch: every location writes a strided set of indices
		// spanning every block of the checkerboard.
		var idxs []domain.Index2D
		var vals []int64
		for r := int64(loc.ID()); r < rows; r += int64(loc.NumLocations()) {
			for c := int64(0); c < cols; c++ {
				idxs = append(idxs, domain.Index2D{Row: r, Col: c})
				vals = append(vals, 1000*int64(loc.ID())+r*cols+c)
			}
		}
		bulk.SetBulk(idxs, vals)
		for k, g := range idxs {
			elem.Set(g.Row, g.Col, vals[k])
		}
		loc.Fence()
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				if got, want := bulk.Get(r, c), elem.Get(r, c); got != want {
					t.Errorf("(%d,%d): bulk=%d elementwise=%d", r, c, got, want)
				}
			}
		}
		loc.Fence()

		// GetBulk agrees with the Get loop (unsorted, duplicated indices).
		probe := []domain.Index2D{{Row: rows - 1, Col: cols - 1}, {Row: 0, Col: 0}, {Row: 3, Col: 5}, {Row: 3, Col: 5}}
		got := bulk.GetBulk(probe)
		for k, g := range probe {
			if want := bulk.Get(g.Row, g.Col); got[k] != want {
				t.Errorf("GetBulk[%d] (%v) = %d, want %d", k, g, got[k], want)
			}
		}

		// Row strips round-trip across block boundaries.
		strip := bulk.GetRowStrip(2, domain.NewRange1D(0, cols))
		for c := int64(0); c < cols; c++ {
			if strip[c] != bulk.Get(2, c) {
				t.Errorf("row strip col %d = %d, want %d", c, strip[c], bulk.Get(2, c))
			}
		}

		// Empty batch: a no-op.
		bulk.SetBulk(nil, nil)
		if out := bulk.GetBulk(nil); len(out) != 0 {
			t.Errorf("GetBulk(nil) returned %d values", len(out))
		}
		loc.Fence()

		// ApplyBulk equals the Apply loop; CombineBulk accumulates.
		bulk.ApplyBulk(idxs, func(x int64) int64 { return x + 1 })
		for _, g := range idxs {
			elem.Apply(g.Row, g.Col, func(x int64) int64 { return x + 1 })
		}
		loc.Fence()
		add := func(cur, val int64) int64 { return cur + val }
		bulk.CombineBulk(idxs, vals, add)
		for k, g := range idxs {
			k := k
			elem.Apply(g.Row, g.Col, func(x int64) int64 { return x + vals[k] })
		}
		loc.Fence()
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				if got, want := bulk.Get(r, c), elem.Get(r, c); got != want {
					t.Errorf("after apply/combine (%d,%d): bulk=%d elementwise=%d", r, c, got, want)
				}
			}
		}
		loc.Fence()
	})
}

// TestMatrixBulkAllLocalSendsNoMessages pins the local fast path: a batch
// that resolves entirely to the calling location's blocks must not touch the
// interconnect.
func TestMatrixBulkAllLocalSendsNoMessages(t *testing.T) {
	const rows, cols = int64(16), int64(8)
	m := runtime.NewMachine(4, runtime.DefaultConfig())
	var before, after runtime.Stats
	m.Execute(func(loc *runtime.Location) {
		a := New[int64](loc, rows, cols)
		var idxs []domain.Index2D
		var vals []int64
		a.RangeLocal(func(g domain.Index2D, _ int64) bool {
			idxs = append(idxs, g)
			vals = append(vals, g.Row*cols+g.Col)
			return true
		})
		loc.Fence()
		if loc.ID() == 0 {
			before = m.Stats()
		}
		loc.Barrier()
		a.SetBulk(idxs, vals)
		if got := a.GetBulk(idxs); len(got) > 0 && got[0] != idxs[0].Row*cols+idxs[0].Col {
			t.Errorf("local bulk read back %d, want %d", got[0], idxs[0].Row*cols+idxs[0].Col)
		}
		loc.Barrier()
		if loc.ID() == 0 {
			after = m.Stats()
		}
		loc.Fence()
	})
	if d := after.MessagesSent - before.MessagesSent; d != 0 {
		t.Errorf("all-local bulk batch sent %d messages, want 0", d)
	}
	if d := after.BytesSimulated - before.BytesSimulated; d != 0 {
		t.Errorf("all-local bulk batch accounted %d bytes, want 0", d)
	}
}

// TestMatrixBulkSingleLocation: the bulk methods degenerate cleanly on a
// one-location machine (everything local, no messages).
func TestMatrixBulkSingleLocation(t *testing.T) {
	m := runtime.NewMachine(1, runtime.DefaultConfig())
	m.Execute(func(loc *runtime.Location) {
		a := New[int64](loc, 5, 5, WithLayout(partition.Checkerboard), WithBlocks(4))
		var idxs []domain.Index2D
		var vals []int64
		for r := int64(0); r < 5; r++ {
			for c := int64(0); c < 5; c++ {
				idxs = append(idxs, domain.Index2D{Row: r, Col: c})
				vals = append(vals, r*5+c)
			}
		}
		a.SetBulk(idxs, vals)
		loc.Fence()
		for k, g := range idxs {
			if got := a.Get(g.Row, g.Col); got != vals[k] {
				t.Errorf("(%d,%d) = %d, want %d", g.Row, g.Col, got, vals[k])
			}
		}
		loc.Fence()
	})
	if s := m.Stats(); s.MessagesSent != 0 {
		t.Errorf("single-location bulk writes sent %d messages", s.MessagesSent)
	}
}

// TestMatrixSegments covers the raw-segment accessors the 2-D views build
// on: row segments inside one block, linear segments across full-width
// blocks, and refusal everywhere else.
func TestMatrixSegments(t *testing.T) {
	const rows, cols = int64(8), int64(6)
	run(2, func(loc *runtime.Location) {
		a := New[int64](loc, rows, cols) // row-blocked: full-width blocks
		a.UpdateLocal(func(g domain.Index2D, _ int64) int64 { return g.Row*cols + g.Col })
		loc.Fence()
		rs, cs := a.LocalBlocks()
		if len(rs) != 1 {
			t.Fatalf("expected one local block, got %d", len(rs))
		}
		// A whole local row.
		row := rs[0].Lo
		seg, ok := a.RowSegment(row, cs[0])
		if !ok || int64(len(seg)) != cols {
			t.Fatalf("RowSegment(%d) ok=%v len=%d", row, ok, len(seg))
		}
		if seg[2] != row*cols+2 {
			t.Errorf("RowSegment value = %d", seg[2])
		}
		// The full local block as one linear run (full-width storage).
		lin := domain.NewRange1D(rs[0].Lo*cols, rs[0].Hi*cols)
		seg, ok = a.LinearSegment(lin)
		if !ok || int64(len(seg)) != lin.Size() {
			t.Fatalf("LinearSegment(%v) ok=%v len=%d", lin, ok, len(seg))
		}
		if seg[0] != rs[0].Lo*cols {
			t.Errorf("LinearSegment first value = %d", seg[0])
		}
		// A sub-run inside one row.
		seg, ok = a.LinearSegment(domain.NewRange1D(row*cols+1, row*cols+4))
		if !ok || len(seg) != 3 || seg[0] != row*cols+1 {
			t.Errorf("within-row LinearSegment ok=%v seg=%v", ok, seg)
		}
		// A remote row refuses.
		otherRow := (rs[0].Lo + rows/2) % rows
		if _, ok := a.RowSegment(otherRow, cs[0]); ok {
			t.Errorf("RowSegment(%d) should not be local", otherRow)
		}
		loc.Fence()
	})
}
