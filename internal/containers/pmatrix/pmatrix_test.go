package pmatrix

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func run(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestMatrixConstructionAndAccess(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		m := New[float64](loc, 8, 6)
		if m.Rows() != 8 || m.Cols() != 6 || m.Size() != 48 {
			t.Errorf("dims wrong: %dx%d", m.Rows(), m.Cols())
		}
		loc.Barrier()
		if loc.ID() == 0 {
			for r := int64(0); r < 8; r++ {
				for c := int64(0); c < 6; c++ {
					m.Set(r, c, float64(r*10+c))
				}
			}
		}
		loc.Fence()
		for r := int64(0); r < 8; r++ {
			for c := int64(0); c < 6; c++ {
				if got := m.Get(r, c); got != float64(r*10+c) {
					t.Errorf("(%d,%d) = %v", r, c, got)
					return
				}
			}
		}
		if f := m.GetSplit(7, 5); f.Get() != 75 {
			t.Errorf("split get = %v", f.Get())
		}
		// All locations must finish the read-only checks before any of them
		// starts mutating (0,0).
		loc.Barrier()
		m.Apply(0, 0, func(x float64) float64 { return x + 1 })
		loc.Fence()
		if got := m.Get(0, 0); got != float64(loc.NumLocations()) {
			t.Errorf("after %d applies (0,0) = %v", loc.NumLocations(), got)
		}
		loc.Fence()
	})
}

func TestMatrixLayouts(t *testing.T) {
	for _, layout := range []partition.MatrixLayout{partition.RowBlocked, partition.ColBlocked, partition.Checkerboard} {
		layout := layout
		run(4, func(loc *runtime.Location) {
			m := New[int](loc, 12, 12, WithLayout(layout))
			loc.Barrier()
			if loc.ID() == 0 {
				for r := int64(0); r < 12; r++ {
					for c := int64(0); c < 12; c++ {
						m.Set(r, c, int(r*12+c))
					}
				}
			}
			loc.Fence()
			// Sample a few entries from every location.
			for _, rc := range [][2]int64{{0, 0}, {11, 11}, {5, 7}, {7, 5}} {
				if got := m.Get(rc[0], rc[1]); got != int(rc[0]*12+rc[1]) {
					t.Errorf("layout %v: (%d,%d) = %d", layout, rc[0], rc[1], got)
				}
			}
			// Every element is stored on exactly one location.
			var localCount int64
			m.RangeLocal(func(domainIdx domain.Index2D, _ int) bool { localCount++; return true })
			if total := runtime.AllReduceSum(loc, localCount); total != 144 {
				t.Errorf("layout %v: total stored elements = %d", layout, total)
			}
			loc.Fence()
		})
	}
}

func TestMatrixLocalRowRange(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		m := New[int](loc, 6, 4)
		m.UpdateLocal(func(g domain.Index2D, _ int) int { return int(g.Row) })
		loc.Fence()
		rowsSeen := map[int64]int{}
		m.LocalRowRange(func(row int64, colStart int64, vals []int) {
			rowsSeen[row] += len(vals)
			for _, v := range vals {
				if v != int(row) {
					t.Errorf("row %d has value %d", row, v)
				}
			}
			if colStart != 0 {
				t.Errorf("row-blocked layout should give full rows, colStart=%d", colStart)
			}
		})
		// Row-blocked over 2 locations: each location holds 3 full rows.
		if len(rowsSeen) != 3 {
			t.Errorf("local rows = %v", rowsSeen)
		}
		for r, n := range rowsSeen {
			if n != 4 {
				t.Errorf("row %d has %d cols", r, n)
			}
		}
		rows, cols := m.LocalBlocks()
		if len(rows) != 1 || rows[0].Size() != 3 || cols[0].Size() != 4 {
			t.Errorf("local blocks = %v x %v", rows, cols)
		}
		loc.Fence()
	})
}

// TestMatrixOutOfDomainFailsFast is the regression test for the 2-D
// resolution bug: partition.Matrix.Find used to return Forward(0) for
// out-of-domain indices, so an out-of-bounds Get/Set/Apply issued from
// location 0 self-forwarded (and from any other location shipped an RMI that
// blew up on location 0's server goroutine) instead of failing fast at the
// caller.  Every location must now observe a clear resolver panic on its own
// goroutine, exactly like pList's invalid-GID path.
func TestMatrixOutOfDomainFailsFast(t *testing.T) {
	run(4, func(loc *runtime.Location) {
		m := New[int](loc, 6, 4, WithLayout(partition.Checkerboard))
		expectPanic := func(name string, fn func()) {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("loc %d: %s outside the domain did not panic", loc.ID(), name)
					return
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "outside") {
					t.Errorf("loc %d: %s panicked with %q, want a clear out-of-domain message", loc.ID(), name, msg)
				}
			}()
			fn()
		}
		expectPanic("Get", func() { m.Get(6, 0) })
		expectPanic("Set", func() { m.Set(0, 4, 1) })
		expectPanic("Apply", func() { m.Apply(-1, 0, func(x int) int { return x }) })
		expectPanic("GetBulk", func() { m.GetBulk([]domain.Index2D{{Row: 0, Col: 0}, {Row: 99, Col: 99}}) })
		// In-domain accesses still work after the recovered panics (the
		// resolver releases the metadata bracket by defer).
		m.Set(0, 0, 7+loc.ID())
		loc.Fence()
		if got := m.Get(0, 0); got < 7 {
			t.Errorf("in-domain access after panic = %d", got)
		}
		loc.Fence()
	})
}

func TestMatrixExplicitBlocksAndMemory(t *testing.T) {
	run(2, func(loc *runtime.Location) {
		m := New[int64](loc, 10, 10, WithBlocks(4), WithLayout(partition.Checkerboard))
		if m.Partition().NumSubdomains() != 4 {
			t.Errorf("blocks = %d", m.Partition().NumSubdomains())
		}
		mu := m.MemorySize()
		if mu.Data != 800 {
			t.Errorf("data bytes = %d, want 800", mu.Data)
		}
		if m.Domain().Size() != 100 {
			t.Error("domain wrong")
		}
		loc.Fence()
	})
}
