package pmatrix

import (
	"fmt"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/transport"
)

// SparseMatrix is the CSR-backed storage representation of the pMatrix: the
// same rows×cols index domain, block partitions and element methods as the
// dense Matrix, but each block stores only its explicitly set entries in
// compressed sparse rows (bcontainer.SparseMatrixBlock).  Unset elements
// read as the zero value, so a SparseMatrix is element-for-element
// interchangeable with a dense Matrix whose remaining elements are zero — at
// a resident footprint, and a relayout traffic, that scale with the nonzeros
// instead of rows×cols.
type SparseMatrix[T any] struct {
	core.Container[domain.Index2D, *bcontainer.SparseMatrixBlock[T]]

	dom    domain.Range2D
	part   *partition.Matrix
	mapper partition.Mapper
}

// NewSparse constructs an all-zero rows×cols sparse pMatrix.  Collective.
func NewSparse[T any](loc *runtime.Location, rows, cols int64, opts ...Option) *SparseMatrix[T] {
	o := options{layout: partition.RowBlocked}
	for _, fn := range opts {
		fn(&o)
	}
	if o.blocks <= 0 {
		o.blocks = loc.NumLocations()
	}
	if !o.hasTr {
		o.traits = core.DefaultTraits()
	}
	dom := domain.NewRange2D(rows, cols)
	part := partition.NewMatrix(dom, o.blocks, o.layout)
	mapper := partition.NewBlockedMapper(part.NumSubdomains(), loc.NumLocations())
	m := &SparseMatrix[T]{dom: dom, part: part, mapper: mapper}
	m.InitContainer(loc, matrixResolver{part: part, mapper: mapper}, o.traits)
	for _, b := range mapper.LocalBCIDs(loc.ID()) {
		r, c := part.Block(b)
		m.LocationManager().Add(bcontainer.NewSparseMatrixBlock[T](b, r, c))
	}
	// Constructors are collective: wait for every representative.
	loc.Barrier()
	return m
}

// Rows returns the number of rows.
func (m *SparseMatrix[T]) Rows() int64 { return m.dom.Rows }

// Cols returns the number of columns.
func (m *SparseMatrix[T]) Cols() int64 { return m.dom.Cols }

// Size returns the dense element count of the domain (rows × cols).
func (m *SparseMatrix[T]) Size() int64 { return m.dom.Size() }

// Domain returns the 2-D index domain.
func (m *SparseMatrix[T]) Domain() domain.Range2D { return m.dom }

// Partition returns the block partition in use.
func (m *SparseMatrix[T]) Partition() *partition.Matrix { return m.part }

// Mapper returns the block → location mapper in use.
func (m *SparseMatrix[T]) Mapper() partition.Mapper { return m.mapper }

// LocalNNZ returns the number of explicitly stored entries on this location.
func (m *SparseMatrix[T]) LocalNNZ() int64 {
	var n int64
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SparseMatrixBlock[T]) { n += bc.NNZ() })
	return n
}

// NNZ returns the global number of explicitly stored entries.  Collective.
func (m *SparseMatrix[T]) NNZ() int64 {
	return runtime.AllReduceSum(m.Location(), m.LocalNNZ())
}

// Get returns the element at (row, col) — the stored entry, or the zero
// value.  Synchronous.
func (m *SparseMatrix[T]) Get(row, col int64) T {
	g := domain.Index2D{Row: row, Col: col}
	v := m.InvokeRet(g, core.Read, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T]) any { return bc.Get(g) })
	return v.(T)
}

// Set stores val at (row, col) as an explicit entry.  Asynchronous.
func (m *SparseMatrix[T]) Set(row, col int64, val T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T]) { bc.Set(g, val) })
}

// Apply applies fn to the element at (row, col) in place (reading zero when
// absent, storing the result as an explicit entry).  Asynchronous.
func (m *SparseMatrix[T]) Apply(row, col int64, fn func(T) T) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T]) { bc.Apply(g, fn) })
}

// EraseEntry removes the explicit entry at (row, col); the element reads as
// zero afterwards.  Asynchronous.
func (m *SparseMatrix[T]) EraseEntry(row, col int64) {
	g := domain.Index2D{Row: row, Col: col}
	m.Invoke(g, core.Write, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T]) { bc.Erase(g) })
}

// GetBulk returns the elements at the given indices, in order (synchronous).
// One request and one response message per owning location.
func (m *SparseMatrix[T]) GetBulk(idxs []domain.Index2D) []T {
	out := make([]T, len(idxs))
	m.InvokeBulkSync(idxs, core.Read, 16, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T], k int) {
		out[k] = bc.Get(idxs[k])
	})
	return out
}

// SetBulk stores vals[k] at index idxs[k] for every k, asynchronously, one
// sized RMI per owning location.  Both slices are retained until the
// operations execute; do not mutate them before the next Fence.
func (m *SparseMatrix[T]) SetBulk(idxs []domain.Index2D, vals []T) {
	if len(idxs) != len(vals) {
		panic("pmatrix: SetBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 16 + runtime.PayloadBytes(vals[0])
	m.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T], k int) {
		bc.Set(idxs[k], vals[k])
	})
}

// CombineBulk merges vals into the named elements with op (element becomes
// op(current, vals[k]), current reading zero when absent), asynchronously —
// the accumulate flavour the sparse kernels use to flush partial results.
// Both slices are retained until the next Fence.
func (m *SparseMatrix[T]) CombineBulk(idxs []domain.Index2D, vals []T, op func(cur, val T) T) {
	if len(idxs) != len(vals) {
		panic("pmatrix: CombineBulk index/value length mismatch")
	}
	if len(idxs) == 0 {
		return
	}
	bytesPerOp := 16 + runtime.PayloadBytes(vals[0])
	m.InvokeBulk(idxs, core.Write, bytesPerOp, func(_ *runtime.Location, bc *bcontainer.SparseMatrixBlock[T], k int) {
		bc.Apply(idxs[k], func(cur T) T { return op(cur, vals[k]) })
	})
}

// SetLocal stores val at (row, col) directly into the local block owning it,
// reporting false when no local block covers the index.  It is the
// construction fast path the bench harness uses to build each location's
// share without communication; callers follow the native-view discipline.
func (m *SparseMatrix[T]) SetLocal(row, col int64, val T) bool {
	g := domain.Index2D{Row: row, Col: col}
	done := false
	m.ForEachLocalBC(core.Write, func(bc *bcontainer.SparseMatrixBlock[T]) {
		if !done && bc.Rows().Contains(row) && bc.Cols().Contains(col) {
			bc.Set(g, val)
			done = true
		}
	})
	return done
}

// LocalBlocks returns the (row range, column range) of every block stored on
// this location.
func (m *SparseMatrix[T]) LocalBlocks() (rows, cols []domain.Range1D) {
	for _, b := range m.LocationManager().BCIDs() {
		r, c := m.part.Block(b)
		rows = append(rows, r)
		cols = append(cols, c)
	}
	return rows, cols
}

// RangeLocalNZ applies fn to every locally stored entry in block, row-major
// order.
func (m *SparseMatrix[T]) RangeLocalNZ(fn func(g domain.Index2D, val T) bool) {
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SparseMatrixBlock[T]) { bc.RangeNZ(fn) })
}

// RangeLocalBlocks invokes fn for every locally stored CSR block under the
// read bracket, giving coarsened kernels the block's native row spans
// (RowNZ) without per-element calls.  Native-view discipline applies: treat
// the block as read-only and fence between conflicting phases.
func (m *SparseMatrix[T]) RangeLocalBlocks(fn func(bc *bcontainer.SparseMatrixBlock[T])) {
	m.ForEachLocalBC(core.Read, fn)
}

// RowNZSegment returns the native CSR span of one row — ascending global
// column indices and their values, without a copy — when a single local
// block holds the row and its column range lies inside cols; ok=false
// otherwise.  The sparse sibling of the dense RowSegment.
func (m *SparseMatrix[T]) RowNZSegment(row int64, cols domain.Range1D) (nzCols []int64, vals []T, ok bool) {
	var found bool
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SparseMatrixBlock[T]) {
		if !found && bc.Rows().Contains(row) && cols.Lo <= bc.Cols().Lo && bc.Cols().Hi <= cols.Hi {
			nzCols, vals = bc.RowNZ(row)
			found = true
		}
	})
	return nzCols, vals, found
}

// MemorySize returns the container-wide data/metadata footprint. Collective.
func (m *SparseMatrix[T]) MemorySize() core.MemoryUsage {
	meta := partition.MemoryBytes(m.mapper) + 64
	return m.GlobalMemory(meta)
}

// Redistribute reorganises the sparse matrix's entries according to a new
// 2-D block partition and mapper through the shared redistribution engine.
// The unit of migration is one compressed row fragment (SparseRow): each
// local row's CSR span is split at the new partition's column boundaries and
// shipped in wire form, so migration bytes scale with the nonzeros moved —
// never with the dense block sizes the same relayout would ship on a dense
// Matrix.  Collective.
func (m *SparseMatrix[T]) Redistribute(newPart *partition.Matrix, newMapper partition.Mapper) {
	if newPart.Domain() != m.dom {
		panic(fmt.Sprintf("pmatrix: Redistribute must keep the %dx%d domain, got %dx%d",
			m.dom.Rows, m.dom.Cols, newPart.Domain().Rows, newPart.Domain().Cols))
	}
	loc := m.Location()
	rowCodec, haveCodec := sparseRowCodecFor[T]()
	var scratch transport.Buffer
	core.RunMigration(loc, core.MigrationSpec[bcontainer.SparseRow[T], *bcontainer.SparseMatrixBlock[T]]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.SparseMatrixBlock[T] {
			r, c := newPart.Block(b)
			return bcontainer.NewSparseMatrixBlock[T](b, r, c)
		},
		Enumerate: func(emit func(bcontainer.SparseRow[T])) {
			m.ForEachLocalBC(core.Read, func(bc *bcontainer.SparseMatrixBlock[T]) {
				rows := bc.Rows()
				for r := rows.Lo; r < rows.Hi; r++ {
					// The old storage is immutable for the whole migration
					// and dropped at install, so row spans ship without a
					// copy; a row crossing new column boundaries is split
					// into per-target fragments (entries are ascending, so
					// each fragment is one contiguous sub-span).
					cs, vs := bc.RowNZ(r)
					for i := 0; i < len(cs); {
						info := newPart.Find(domain.Index2D{Row: r, Col: cs[i]})
						_, colRange := newPart.Block(info.BCID)
						j := i + 1
						for j < len(cs) && cs[j] < colRange.Hi {
							j++
						}
						emit(bcontainer.SparseRow[T]{Row: r, Cols: cs[i:j:j], Vals: vs[i:j:j]})
						i = j
					}
				}
			})
		},
		Route: func(seg bcontainer.SparseRow[T]) (partition.BCID, int) {
			info := newPart.Find(domain.Index2D{Row: seg.Row, Col: seg.Cols[0]})
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.SparseMatrixBlock[T], seg bcontainer.SparseRow[T]) {
			bc.InstallRow(seg)
		},
		Bytes: func(seg bcontainer.SparseRow[T]) int {
			if haveCodec {
				// Exact wire size: the counters report real compressed bytes.
				return bcontainer.EncodedRowBytes(rowCodec, &scratch, seg)
			}
			// No typed codec: approximate with the in-memory CSR footprint.
			return 8 + 16*len(seg.Cols)
		},
		Ops: sparseRowMigOpsFor[T](),
		Install: func(lm *core.LocationManager[*bcontainer.SparseMatrixBlock[T]]) {
			m.ReplaceLocationManager(lm)
			m.SetResolver(matrixResolver{part: newPart, mapper: newMapper})
			m.part, m.mapper = newPart, newMapper
		},
	})
}

// Relayout rebuilds the block decomposition with the given layout and block
// count (0 means one block per location) and migrates the entries into it.
// Collective.
func (m *SparseMatrix[T]) Relayout(layout partition.MatrixLayout, blocks int) {
	if blocks <= 0 {
		blocks = m.Location().NumLocations()
	}
	p := partition.NewMatrix(m.dom, blocks, layout)
	m.Redistribute(p, partition.NewBlockedMapper(p.NumSubdomains(), m.Location().NumLocations()))
}

// Rebalance evens out the per-location nonzero loads by remapping the
// existing blocks with the load-balance advisor's greedy proposal (the block
// grid stays fixed, only ownership moves).  Dense blocks weigh by element
// count; sparse blocks weigh by what they actually store.  Collective.
func (m *SparseMatrix[T]) Rebalance() {
	loc := m.Location()
	local := make([]int64, m.part.NumSubdomains())
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.SparseMatrixBlock[T]) {
		local[int(bc.BCID())] = bc.NNZ()
	})
	sizes := partition.CollectSubSizes(loc, local)
	m.Redistribute(m.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}
