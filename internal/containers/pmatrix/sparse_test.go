package pmatrix

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func runSparse(p int, fn func(loc *runtime.Location)) {
	runtime.NewMachine(p, runtime.DefaultConfig()).Execute(fn)
}

func TestSparseMatrixSetGetErase(t *testing.T) {
	runSparse(4, func(loc *runtime.Location) {
		m := NewSparse[int64](loc, 64, 64)
		if loc.ID() == 0 {
			m.Set(3, 5, 35)
			m.Set(60, 1, 601) // remote block
			m.Apply(3, 5, func(v int64) int64 { return v + 1 })
			m.Apply(10, 10, func(v int64) int64 { return v + 7 }) // absent: reads zero
		}
		loc.Fence()
		if got := m.Get(3, 5); got != 36 {
			t.Errorf("Get(3,5) = %d, want 36", got)
		}
		if got := m.Get(60, 1); got != 601 {
			t.Errorf("Get(60,1) = %d, want 601", got)
		}
		if got := m.Get(10, 10); got != 7 {
			t.Errorf("Get(10,10) = %d, want 7", got)
		}
		if got := m.Get(0, 0); got != 0 {
			t.Errorf("Get(0,0) = %d, want 0 (unset)", got)
		}
		if got := m.NNZ(); got != 3 {
			t.Errorf("NNZ = %d, want 3", got)
		}
		if loc.ID() == 0 {
			m.EraseEntry(3, 5)
		}
		loc.Fence()
		if got := m.Get(3, 5); got != 0 {
			t.Errorf("Get(3,5) after erase = %d, want 0", got)
		}
		if got := m.NNZ(); got != 2 {
			t.Errorf("NNZ after erase = %d, want 2", got)
		}
		loc.Fence()
	})
}

// TestSparseMatrixRelayoutRoundTrip builds the same sparse population in a
// CSR matrix and a dense reference, relayouts the sparse one row-blocked →
// checkerboard → row-blocked, and checks element-for-element equality after
// each migration (including rows split across column boundaries).
func TestSparseMatrixRelayoutRoundTrip(t *testing.T) {
	runSparse(4, func(loc *runtime.Location) {
		const rows, cols = 48, 48
		m := NewSparse[int64](loc, rows, cols)
		ref := make(map[domain.Index2D]int64)
		// Deterministic scattered population, built by every location's view
		// of the same rule; only location 0 issues the writes.
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				if (r*31+c*17)%11 == 0 {
					ref[domain.Index2D{Row: r, Col: c}] = r*1000 + c
				}
			}
		}
		if loc.ID() == 0 {
			for g, v := range ref {
				m.Set(g.Row, g.Col, v)
			}
		}
		loc.Fence()
		want := int64(len(ref))

		check := func(stage string) {
			if got := m.NNZ(); got != want {
				t.Errorf("%s: NNZ = %d, want %d", stage, got, want)
			}
			var local int64
			m.RangeLocalNZ(func(g domain.Index2D, v int64) bool {
				if refV, ok := ref[g]; !ok || refV != v {
					t.Errorf("%s: entry %v = %d, want (%d,%v)", stage, g, v, refV, ok)
				}
				local++
				return true
			})
			if total := runtime.AllReduceSum(loc, local); total != want {
				t.Errorf("%s: enumerated %d entries, want %d", stage, total, want)
			}
			// Unset elements still read zero.
			if got := m.Get(0, 1); got != 0 {
				t.Errorf("%s: Get(0,1) = %d, want 0", stage, got)
			}
		}

		check("initial")
		m.Relayout(partition.Checkerboard, loc.NumLocations())
		check("checkerboard")
		m.Relayout(partition.RowBlocked, 0)
		check("row-blocked")
		m.Rebalance()
		check("rebalanced")
		loc.Fence()
	})
}

// TestSparseDenseRedistributeEquivalence runs the same relayout on a dense
// and a sparse matrix holding the same values and verifies the results
// agree element-for-element — the acceptance check that compressed
// redistribution is semantics-preserving.
func TestSparseDenseRedistributeEquivalence(t *testing.T) {
	runSparse(2, func(loc *runtime.Location) {
		const rows, cols = 24, 24
		d := New[int64](loc, rows, cols)
		s := NewSparse[int64](loc, rows, cols)
		if loc.ID() == 0 {
			for r := int64(0); r < rows; r++ {
				for c := int64(0); c < cols; c++ {
					if (r+c)%7 == 0 {
						d.Set(r, c, r*100+c)
						s.Set(r, c, r*100+c)
					}
				}
			}
		}
		loc.Fence()
		d.Relayout(partition.ColBlocked, 0)
		s.Relayout(partition.ColBlocked, 0)
		for r := int64(0); r < rows; r++ {
			for c := int64(0); c < cols; c++ {
				if dv, sv := d.Get(r, c), s.Get(r, c); dv != sv {
					t.Fatalf("(%d,%d): dense %d != sparse %d", r, c, dv, sv)
				}
			}
		}
		loc.Fence()
	})
}
