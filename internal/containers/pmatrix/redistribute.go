package pmatrix

import (
	"fmt"
	"unsafe"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
)

// matrixElem is the element record shipped between locations when a pMatrix
// redistributes: the 2-D index and its value.
type matrixElem[T any] struct {
	g   domain.Index2D
	val T
}

// Redistribute reorganises the pMatrix's elements according to a new 2-D
// block partition and mapper through the shared redistribution engine in
// package core (Chapter V, Section G): row-blocked ↔ checkerboard relayouts,
// finer or coarser block grids, and arbitrary block → location remappings
// all take the same path.  Elements that stay on their location are placed
// directly; elements that change owner travel as asynchronous RMIs.
// Collective; every location passes equivalent arguments over the same
// rows×cols domain.
func (m *Matrix[T]) Redistribute(newPart *partition.Matrix, newMapper partition.Mapper) {
	if newPart.Domain() != m.dom {
		panic(fmt.Sprintf("pmatrix: Redistribute must keep the %dx%d domain, got %dx%d",
			m.dom.Rows, m.dom.Cols, newPart.Domain().Rows, newPart.Domain().Cols))
	}
	loc := m.Location()
	var probe matrixElem[T]
	elemBytes := int(unsafe.Sizeof(probe))
	core.RunMigration(loc, core.MigrationSpec[matrixElem[T], *bcontainer.MatrixBlock[T]]{
		NewLocal: newMapper.LocalBCIDs(loc.ID()),
		Alloc: func(b partition.BCID) *bcontainer.MatrixBlock[T] {
			r, c := newPart.Block(b)
			return bcontainer.NewMatrixBlock[T](b, r, c)
		},
		Enumerate: func(emit func(matrixElem[T])) {
			m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) {
				bc.Range(func(g domain.Index2D, val T) bool {
					emit(matrixElem[T]{g: g, val: val})
					return true
				})
			})
		},
		Route: func(e matrixElem[T]) (partition.BCID, int) {
			info := newPart.Find(e.g)
			return info.BCID, newMapper.Map(info.BCID)
		},
		Place: func(bc *bcontainer.MatrixBlock[T], e matrixElem[T]) { bc.Set(e.g, e.val) },
		Bytes: func(matrixElem[T]) int { return elemBytes },
		Ops:   matMigOpsFor[T](),
		Install: func(lm *core.LocationManager[*bcontainer.MatrixBlock[T]]) {
			m.ReplaceLocationManager(lm)
			m.SetResolver(matrixResolver{part: newPart, mapper: newMapper})
			m.part, m.mapper = newPart, newMapper
		},
	})
}

// Relayout rebuilds the block decomposition with the given layout and block
// count (0 means one block per location) and migrates the elements into it —
// the row-blocked ↔ checkerboard switch of the paper's composition studies
// as a one-call operation.  Collective.
func (m *Matrix[T]) Relayout(layout partition.MatrixLayout, blocks int) {
	if blocks <= 0 {
		blocks = m.Location().NumLocations()
	}
	p := partition.NewMatrix(m.dom, blocks, layout)
	m.Redistribute(p, partition.NewBlockedMapper(p.NumSubdomains(), m.Location().NumLocations()))
}

// Rebalance evens out the per-location element loads by remapping the
// existing blocks with the load-balance advisor's greedy proposal (the block
// grid stays fixed, only ownership moves), exactly like the associative
// families.  Collective.
func (m *Matrix[T]) Rebalance() {
	loc := m.Location()
	local := make([]int64, m.part.NumSubdomains())
	m.ForEachLocalBC(core.Read, func(bc *bcontainer.MatrixBlock[T]) {
		local[int(bc.BCID())] = bc.Size()
	})
	sizes := partition.CollectSubSizes(loc, local)
	m.Redistribute(m.part, partition.ProposeMapping(sizes, loc.NumLocations()))
}
