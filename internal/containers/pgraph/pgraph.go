// Package pgraph implements the STAPL pGraph (Chapter XI): a relational
// pContainer storing vertices and edges distributed over the locations,
// globally addressable by vertex descriptor.
//
// Three address-translation strategies from the paper's evaluation are
// supported:
//
//   - Static: the vertex set [0, N) is fixed at construction and partitioned
//     with a closed form (like pArray); add_vertex is rejected.
//   - DynamicEncoded ("dynamic, no forwarding"): vertices can be added and
//     removed at run time; the owner location is encoded in the descriptor,
//     so translation stays closed-form.
//   - DynamicDirectory ("dynamic, with forwarding"): ownership is recorded
//     in a distributed directory keyed by descriptor hash; resolving a
//     non-local vertex forwards the request to its directory location and
//     from there to its home (the method-forwarding path of Fig. 7).
package pgraph

import (
	"fmt"
	"sync"

	"repro/internal/bcontainer"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// The DynamicDirectory strategy runs on the shared distributed-directory
// subsystem (core.Directory): ownership entries live on the home location
// hash(vd) % P, remote resolutions forward through the home, and a
// per-location resolution cache removes the directory hop from repeat
// remote accesses (see internal/core/directory.go).

// Strategy selects the pGraph address-translation scheme.
type Strategy int

// Address-translation strategies.
const (
	Static Strategy = iota
	DynamicEncoded
	DynamicDirectory
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case Static:
		return "static"
	case DynamicEncoded:
		return "dynamic-no-forwarding"
	default:
		return "dynamic-forwarding"
	}
}

// descriptor encoding for dynamic strategies: the high bits carry the home
// location, the low bits a per-location counter.
const homeShift = 40

func encodeDescriptor(home int, counter int64) int64 { return int64(home)<<homeShift | counter }

func descriptorHome(vd int64) int { return int(vd >> homeShift) }

// Edge is re-exported from the base container for callers of OutEdges.
type Edge[EP any] = bcontainer.Edge[EP]

// Vertex is re-exported from the base container for local traversals.
type Vertex[VP any, EP any] = bcontainer.Vertex[VP, EP]

// Graph is the per-location representative of a pGraph with vertex property
// VP and edge property EP.
type Graph[VP any, EP any] struct {
	core.Container[int64, *bcontainer.Graph[VP, EP]]

	directed bool
	multi    bool

	// edgeOps is the registered add_edge operation set for this (VP, EP)
	// pair (nil when either property type has no wire codec): with it,
	// asynchronous edge additions travel as self-decoding frames.  See
	// ops.go.
	edgeOps  *core.ElemOps[int64, *bcontainer.Graph[VP, EP], edgeMsg[EP]]
	strategy Strategy

	staticN    int64
	staticPart partition.Indexed

	// Dynamic descriptor allocation.
	ctrMu   sync.Mutex
	nextCtr int64

	// dir is the shared distributed directory recording vd → home for the
	// DynamicDirectory strategy (nil for the other strategies).
	dir *core.Directory[int64]

	// graphHandle addresses the outer Graph representative for graph-level
	// RMIs (reverse-edge insertion, visit dispatch).
	graphHandle runtime.Handle
}

// Options configure pGraph construction.
type Options struct {
	// Directed selects a directed graph (default true).  Undirected graphs
	// store every edge with both endpoints.
	Directed bool
	// Multi allows parallel edges between the same endpoints.
	Multi bool
	// Strategy selects the address-translation scheme (default Static when
	// N > 0, DynamicEncoded otherwise).
	Strategy Strategy
	// HasStrategy marks Strategy as explicitly set.
	HasStrategy bool
	// DirectoryCache disables the directory's per-location resolution cache
	// when false (DynamicDirectory strategy only; default on).
	DirectoryCache bool
	// Traits overrides the default container traits.
	Traits *core.Traits
}

// Option mutates Options.
type Option func(*Options)

// WithDirected selects directedness.
func WithDirected(d bool) Option { return func(o *Options) { o.Directed = d } }

// WithMulti allows or rejects parallel edges.
func WithMulti(m bool) Option { return func(o *Options) { o.Multi = m } }

// WithStrategy selects the address-translation strategy.
func WithStrategy(s Strategy) Option {
	return func(o *Options) { o.Strategy = s; o.HasStrategy = true }
}

// WithDirectoryCache enables or disables the per-location resolution cache
// of the DynamicDirectory strategy (default enabled).  Disabling it restores
// the pure forwarding path of the paper's "dynamic, with forwarding"
// partition — every remote access pays the directory hop — which the
// `directory` bench experiment uses as its baseline.
func WithDirectoryCache(on bool) Option {
	return func(o *Options) { o.DirectoryCache = on }
}

// WithTraits overrides the default traits.
func WithTraits(t core.Traits) Option { return func(o *Options) { o.Traits = &t } }

// staticResolver is the closed-form translation of the Static strategy.
type staticResolver struct {
	part   partition.Indexed
	mapper partition.Mapper
}

func (r staticResolver) Find(vd int64) partition.Info { return r.part.Find(vd) }
func (r staticResolver) OwnerOf(b partition.BCID) int { return r.mapper.Map(b) }

// encodedResolver extracts the owner from the descriptor (dynamic, no
// forwarding).
type encodedResolver struct{}

func (encodedResolver) Find(vd int64) partition.Info {
	return partition.Found(partition.BCID(descriptorHome(vd)))
}
func (encodedResolver) OwnerOf(b partition.BCID) int { return int(b) }

// directoryResolver resolves through the local bContainer first, then the
// shared distributed directory (cache, then home), forwarding when neither
// knows the vertex.
type directoryResolver[VP any, EP any] struct {
	g *Graph[VP, EP]
}

func (r directoryResolver[VP, EP]) Find(vd int64) partition.Info {
	self := r.g.Location().ID()
	// Fast path: the vertex is stored locally.
	if bc, ok := r.g.LocationManager().Get(partition.BCID(self)); ok && bc.HasVertex(vd) {
		return partition.Found(partition.BCID(self))
	}
	return r.g.dir.Resolve(vd)
}

func (r directoryResolver[VP, EP]) OwnerOf(b partition.BCID) int { return int(b) }

// New constructs a pGraph.  n is the number of pre-created vertices (0..n-1)
// for the Static strategy; dynamic strategies typically pass n == 0 and add
// vertices at run time.  Collective.
func New[VP any, EP any](loc *runtime.Location, n int64, opts ...Option) *Graph[VP, EP] {
	o := Options{Directed: true, Multi: true, DirectoryCache: true}
	for _, fn := range opts {
		fn(&o)
	}
	if !o.HasStrategy {
		if n > 0 {
			o.Strategy = Static
		} else {
			o.Strategy = DynamicEncoded
		}
	}
	traits := core.DefaultTraits()
	if o.Traits != nil {
		traits = *o.Traits
	}
	g := &Graph[VP, EP]{
		directed: o.Directed,
		multi:    o.Multi,
		strategy: o.Strategy,
		staticN:  n,
		edgeOps:  edgeOpsFor[VP, EP](),
	}
	p := loc.NumLocations()
	switch o.Strategy {
	case Static:
		part := partition.NewBalanced(domain.NewRange1D(0, n), p)
		g.staticPart = part
		// One bContainer per location holding that location's balanced
		// blocks (the mapper is the identity over locations).
		g.InitContainer(loc, staticResolver{part: part, mapper: partition.NewBlockedMapper(part.NumSubdomains(), p)}, traits)
	case DynamicEncoded:
		g.InitContainer(loc, encodedResolver{}, traits)
	case DynamicDirectory:
		g.InitContainer(loc, directoryResolver[VP, EP]{g: g}, traits)
		g.dir = core.NewDirectory(loc, core.DirectoryConfig[int64]{
			Hash:  partition.Int64Hash,
			Cache: o.DirectoryCache,
		})
	}
	// One graph base container per location, identified by the location id.
	bc := bcontainer.NewGraph[VP, EP](partition.BCID(loc.ID()))
	g.LocationManager().Add(bc)
	g.graphHandle = loc.RegisterObject(g)
	// Pre-create the static vertex set.
	if o.Strategy == Static {
		var zero VP
		for _, b := range partition.NewBlockedMapper(g.staticPart.NumSubdomains(), p).LocalBCIDs(loc.ID()) {
			d := g.staticPart.SubDomain(b)
			for vd := d.Lo; vd < d.Hi; vd++ {
				bc.AddVertex(vd, zero)
			}
		}
	}
	// Constructors are collective: no location may address peers before
	// every representative has registered both of its handles.
	loc.Barrier()
	return g
}

// Strategy returns the address-translation strategy in use.
func (g *Graph[VP, EP]) Strategy() Strategy { return g.strategy }

// Directed reports whether the graph is directed.
func (g *Graph[VP, EP]) Directed() bool { return g.directed }

// local returns this location's graph base container.
func (g *Graph[VP, EP]) local() *bcontainer.Graph[VP, EP] {
	return g.LocationManager().MustGet(partition.BCID(g.Location().ID()))
}

// localBCID returns the BCID of this location's base container.
func (g *Graph[VP, EP]) localBCID() partition.BCID { return partition.BCID(g.Location().ID()) }

// withLocal runs fn on this location's base container under the data
// bracket of the thread-safety manager.
func (g *Graph[VP, EP]) withLocal(mode core.AccessMode, fn func(bc *bcontainer.Graph[VP, EP]) any) any {
	b := g.localBCID()
	g.ThreadSafety().DataAccessPre(b, mode)
	defer g.ThreadSafety().DataAccessPost(b, mode)
	return fn(g.local())
}

// staticResolve panics helpers -------------------------------------------------

// requireDynamic panics when a mutation that needs a dynamic strategy is
// attempted on a static graph (the paper's static partition triggers an
// assertion on add_vertex).
func (g *Graph[VP, EP]) requireDynamic(op string) {
	if g.strategy == Static {
		panic(fmt.Sprintf("pgraph: %s requires a dynamic partition; this graph uses the static strategy", op))
	}
}

// AddVertex creates a new vertex with the given property on this location
// and returns its descriptor.  For the directory strategy the directory
// entry is published asynchronously; it is globally visible by the next
// fence.  Dynamic strategies only.
func (g *Graph[VP, EP]) AddVertex(prop VP) int64 {
	g.requireDynamic("add_vertex")
	loc := g.Location()
	g.ctrMu.Lock()
	ctr := g.nextCtr
	g.nextCtr++
	g.ctrMu.Unlock()
	vd := encodeDescriptor(loc.ID(), ctr)
	g.withLocal(core.Write, func(bc *bcontainer.Graph[VP, EP]) any { return bc.AddVertex(vd, prop) })
	if g.strategy == DynamicDirectory {
		g.dir.Publish(vd, partition.BCID(loc.ID()))
	}
	return vd
}

// AddVertexWithDescriptor creates (or, on a static graph, re-initialises)
// the vertex with an explicit descriptor and property.  The vertex is placed
// on its natural home: the partition's owner for static graphs, the encoded
// home for dynamic ones.  Asynchronous.
func (g *Graph[VP, EP]) AddVertexWithDescriptor(vd int64, prop VP) {
	switch g.strategy {
	case Static:
		g.Invoke(vd, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
			bc.SetProperty(vd, prop)
		})
	case DynamicEncoded:
		home := descriptorHome(vd)
		g.atGraph(home, func(og *Graph[VP, EP]) {
			og.withLocal(core.Write, func(bc *bcontainer.Graph[VP, EP]) any { return bc.AddVertex(vd, prop) })
		})
	case DynamicDirectory:
		home := descriptorHome(vd)
		g.atGraph(home, func(og *Graph[VP, EP]) {
			og.withLocal(core.Write, func(bc *bcontainer.Graph[VP, EP]) any { return bc.AddVertex(vd, prop) })
			// Publish from the home AFTER the vertex exists: a directory
			// entry must never lead a resolver to a home that has not
			// created the vertex yet.
			og.dir.Publish(vd, partition.BCID(home))
		})
	}
}

// atGraph runs fn against the Graph representative on location dest
// (asynchronously; runs immediately when dest is this location).
func (g *Graph[VP, EP]) atGraph(dest int, fn func(og *Graph[VP, EP])) {
	g.Location().AsyncRMI(dest, g.graphHandle, func(obj any, _ *runtime.Location) {
		fn(obj.(*Graph[VP, EP]))
	})
}

// atGraphRet runs fn against the Graph representative on location dest and
// returns its result (synchronously).
func (g *Graph[VP, EP]) atGraphRet(dest int, fn func(og *Graph[VP, EP]) any) any {
	return g.Location().SyncRMI(dest, g.graphHandle, func(obj any, _ *runtime.Location) any {
		return fn(obj.(*Graph[VP, EP]))
	})
}

// DeleteVertex removes the vertex and its out-edges.  As in the paper the
// operation is not one global transaction: edges pointing to the vertex from
// elsewhere are not chased.  Asynchronous.  Dynamic strategies only.
func (g *Graph[VP, EP]) DeleteVertex(vd int64) {
	g.requireDynamic("delete_vertex")
	g.Invoke(vd, core.Write, func(_ *runtime.Location, bc *bcontainer.Graph[VP, EP]) {
		bc.DeleteVertex(vd)
	})
	if g.strategy == DynamicDirectory {
		g.dir.Unpublish(vd)
	}
}

// Directory exposes the shared distributed directory of the DynamicDirectory
// strategy (nil for the other strategies); tests and experiments use it to
// inspect cache behaviour.
func (g *Graph[VP, EP]) Directory() *core.Directory[int64] { return g.dir }
